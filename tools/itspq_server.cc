// itspq_server — the network edge as a process.
//
// Boots a deterministic venue fleet (same generator and seed semantics
// as the benches: identical --venues/--seed/--max-floors on a different
// process rebuilds the identical catalog — how itspq_loadgen knows what
// workload to aim at it), fronts it with a QueryService + NetServer on
// loopback TCP, and serves until a client sends the kShutdown frame.
//
//   itspq_server --venues=2 --seed=7 [--max-floors=2] [--port=0]
//                [--port-file=PATH] [--workers=2] [--queue=64]
//                [--target-delay-micros=0] [--deadline-micros=0]
//
// --port=0 (default) takes a kernel-assigned ephemeral port;
// --port-file writes the bound port as a decimal line once listening,
// which is how the CI smoke scripts coordinate without racing on a
// fixed port. On shutdown the tool prints the final service ledger and
// exits non-zero if the quiesced accounting invariant
// (submitted == served + shed + rejected + timed_out) does not hold —
// the server process is itself the accounting check.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>

#include "gen/workload_gen.h"
#include "net/server.h"
#include "query/venue_catalog.h"
#include "server/query_service.h"

namespace {

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "itspq_server: %s\n", message.c_str());
  std::exit(1);
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

long ParseLong(const std::string& value, const char* flag) {
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    Die(std::string("bad value for ") + flag + ": " + value);
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  int venues = 2;
  int max_floors = 2;
  uint64_t seed = 7;
  long port = 0;
  std::string port_file;
  itspq::ServiceOptions service_opts;
  service_opts.num_workers = 2;
  service_opts.queue_capacity = 64;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--venues", &value)) {
      venues = static_cast<int>(ParseLong(value, "--venues"));
    } else if (ParseFlag(argv[i], "--max-floors", &value)) {
      max_floors = static_cast<int>(ParseLong(value, "--max-floors"));
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      seed = static_cast<uint64_t>(ParseLong(value, "--seed"));
    } else if (ParseFlag(argv[i], "--port", &value)) {
      port = ParseLong(value, "--port");
    } else if (ParseFlag(argv[i], "--port-file", &value)) {
      port_file = value;
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      service_opts.num_workers = static_cast<int>(ParseLong(value, "--workers"));
    } else if (ParseFlag(argv[i], "--queue", &value)) {
      service_opts.queue_capacity =
          static_cast<size_t>(ParseLong(value, "--queue"));
    } else if (ParseFlag(argv[i], "--target-delay-micros", &value)) {
      service_opts.target_queue_delay_micros =
          static_cast<double>(ParseLong(value, "--target-delay-micros"));
    } else if (ParseFlag(argv[i], "--deadline-micros", &value)) {
      service_opts.default_deadline_micros =
          static_cast<double>(ParseLong(value, "--deadline-micros"));
    } else {
      Die(std::string("unknown flag: ") + argv[i]);
    }
  }
  if (port < 0 || port > 65535) Die("--port must be in [0, 65535]");

  itspq::FleetConfig fleet_config;
  fleet_config.num_venues = venues;
  fleet_config.seed = seed;
  fleet_config.min_floors = 1;
  fleet_config.max_floors = max_floors;
  auto fleet = itspq::GenerateVenueFleet(fleet_config);
  if (!fleet.ok()) Die("fleet generation failed: " + fleet.status().ToString());

  itspq::VenueCatalog catalog;
  for (itspq::Venue& venue : *fleet) {
    auto id = catalog.AddVenue(std::move(venue), "itg-a+");
    if (!id.ok()) Die("AddVenue failed: " + id.status().ToString());
  }

  auto service = itspq::MakeQueryService(std::move(catalog), service_opts);
  if (!service.ok()) {
    Die("MakeQueryService failed: " + service.status().ToString());
  }

  itspq::net::NetServerOptions net_opts;
  net_opts.port = static_cast<uint16_t>(port);
  auto server = itspq::net::MakeNetServer(std::move(*service), net_opts);
  if (!server.ok()) Die("MakeNetServer failed: " + server.status().ToString());

  std::printf("itspq_server: %d venues (seed %llu), %d workers, listening on "
              "127.0.0.1:%u\n",
              venues, static_cast<unsigned long long>(seed),
              service_opts.num_workers, (*server)->port());
  std::fflush(stdout);
  if (!port_file.empty()) {
    // Written only once the listener is live, so a reader never races a
    // half-started server; the temp+rename dance is unnecessary for a
    // single decimal line consumed by a polling shell loop.
    std::ofstream out(port_file);
    if (!out) Die("cannot write --port-file " + port_file);
    out << (*server)->port() << "\n";
  }

  (*server)->WaitForShutdownRequest();
  (*server)->Stop();

  const itspq::net::NetServerStats net = (*server)->Stats();
  const itspq::ServiceStats s = (*server)->service().Stats();
  const size_t shed = s.shed_displaced + s.shed_infeasible;
  const size_t rejected = s.rejected_queue_full + s.rejected_expired +
                          s.rejected_invalid + s.rejected_shutdown;
  const size_t timed_out = s.timed_out_in_queue + s.timed_out_in_flight;
  std::printf("itspq_server: %zu conns (%zu dropped), %zu frames in / %zu "
              "out, %zu decode errors\n",
              net.connections_accepted, net.connections_dropped,
              net.frames_received, net.frames_sent, net.decode_errors);
  std::printf("itspq_server: submitted %zu = served %zu + shed %zu + "
              "rejected %zu + timed-out %zu\n",
              s.submitted, s.served, shed, rejected, timed_out);
  if (s.served + shed + rejected + timed_out != s.submitted) {
    std::fprintf(stderr, "itspq_server: ACCOUNTING VIOLATION\n");
    return 1;
  }
  return 0;
}

// itspq_loadgen — open-loop traffic against a running itspq_server.
//
// Rebuilds the server's deterministic fleet from the same
// --venues/--seed/--max-floors flags (the generators are seeded, so
// both processes derive the identical catalog without shipping it),
// draws a Zipf multi-venue workload plus Poisson arrival offsets, and
// fires it over N pipelined connections on the arrival schedule no
// matter how far behind the server is — offered load, not closed-loop.
//
//   itspq_loadgen --port=P | --port-file=PATH
//                 [--venues=2] [--seed=7] [--max-floors=2]
//                 [--requests=256] [--qps=2000] [--connections=2]
//                 [--mix=70,20,10] [--deadline-micros=50000]
//                 [--smoke] [--shutdown] [--json-out=PATH]
//
// --mix assigns QoS classes deterministically by request index
// (percent interactive, batch, background). --smoke audits the edge:
// every Send must come back as exactly one reply, and the server's
// stats frame must satisfy submitted == served + shed + rejected +
// timed-out with submitted equal to what this (only) client sent —
// exit non-zero otherwise. --shutdown sends the kShutdown frame when
// done; --json-out appends one JSON result line for bench capture.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/workload_gen.h"
#include "net/client.h"
#include "query/venue_catalog.h"

namespace {

using itspq::QosClass;
using itspq::QueryRequest;
using itspq::StatusCode;
using itspq::net::NetClient;

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "itspq_loadgen: %s\n", message.c_str());
  std::exit(1);
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

long ParseLong(const std::string& value, const char* flag) {
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    Die(std::string("bad value for ") + flag + ": " + value);
  }
  return parsed;
}

/// "70,20,10" -> cumulative percent thresholds for the three classes.
void ParseMix(const std::string& value, int thresholds[2]) {
  int parts[3] = {0, 0, 0};
  if (std::sscanf(value.c_str(), "%d,%d,%d", &parts[0], &parts[1],
                  &parts[2]) != 3 ||
      parts[0] < 0 || parts[1] < 0 || parts[2] < 0 ||
      parts[0] + parts[1] + parts[2] != 100) {
    Die("--mix must be three non-negative percentages summing to 100");
  }
  thresholds[0] = parts[0];
  thresholds[1] = parts[0] + parts[1];
}

/// Class of request i under the mix: spread deterministically by index
/// so every run (and both smoke re-runs) sees the same assignment.
QosClass ClassForIndex(int i, const int thresholds[2]) {
  const int slot = i % 100;
  if (slot < thresholds[0]) return QosClass::kInteractive;
  if (slot < thresholds[1]) return QosClass::kBatch;
  return QosClass::kBackground;
}

uint16_t ReadPortFile(const std::string& path) {
  // The server writes the file only once listening; poll briefly so the
  // loadgen can be launched first in CI scripts.
  for (int attempt = 0; attempt < 300; ++attempt) {
    std::ifstream in(path);
    long port = 0;
    if (in && (in >> port) && port > 0 && port <= 65535) {
      return static_cast<uint16_t>(port);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  Die("timed out waiting for --port-file " + path);
}

struct ConnOutcome {
  size_t sent = 0;
  size_t replies = 0;
  size_t ok = 0;
  size_t found = 0;
  size_t resource_exhausted = 0;
  size_t deadline_exceeded = 0;
  size_t other_errors = 0;
  bool transport_ok = true;
  std::string transport_error;
};

}  // namespace

int main(int argc, char** argv) {
  long port = 0;
  std::string port_file, json_out;
  int venues = 2, max_floors = 2, requests = 256, connections = 2;
  uint64_t seed = 7;
  double qps = 2000, deadline_micros = 50'000;
  int mix_thresholds[2] = {70, 90};
  bool smoke = false, shutdown = false;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--port", &value)) {
      port = ParseLong(value, "--port");
    } else if (ParseFlag(argv[i], "--port-file", &value)) {
      port_file = value;
    } else if (ParseFlag(argv[i], "--venues", &value)) {
      venues = static_cast<int>(ParseLong(value, "--venues"));
    } else if (ParseFlag(argv[i], "--max-floors", &value)) {
      max_floors = static_cast<int>(ParseLong(value, "--max-floors"));
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      seed = static_cast<uint64_t>(ParseLong(value, "--seed"));
    } else if (ParseFlag(argv[i], "--requests", &value)) {
      requests = static_cast<int>(ParseLong(value, "--requests"));
    } else if (ParseFlag(argv[i], "--qps", &value)) {
      qps = static_cast<double>(ParseLong(value, "--qps"));
    } else if (ParseFlag(argv[i], "--connections", &value)) {
      connections = static_cast<int>(ParseLong(value, "--connections"));
    } else if (ParseFlag(argv[i], "--mix", &value)) {
      ParseMix(value, mix_thresholds);
    } else if (ParseFlag(argv[i], "--deadline-micros", &value)) {
      deadline_micros = static_cast<double>(ParseLong(value, "--deadline-micros"));
    } else if (ParseFlag(argv[i], "--json-out", &value)) {
      json_out = value;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--shutdown") == 0) {
      shutdown = true;
    } else {
      Die(std::string("unknown flag: ") + argv[i]);
    }
  }
  if (port == 0 && port_file.empty()) Die("need --port or --port-file");
  if (connections < 1) Die("--connections must be >= 1");
  if (requests < 1) Die("--requests must be >= 1");
  const uint16_t target_port =
      port != 0 ? static_cast<uint16_t>(port) : ReadPortFile(port_file);

  // Mirror the server's deterministic boot: same fleet, then the bench
  // seeding convention (seed+1 workload, seed+2 arrivals) so a printed
  // seed reproduces the whole run.
  itspq::FleetConfig fleet_config;
  fleet_config.num_venues = venues;
  fleet_config.seed = seed;
  fleet_config.min_floors = 1;
  fleet_config.max_floors = max_floors;
  auto fleet = itspq::GenerateVenueFleet(fleet_config);
  if (!fleet.ok()) Die("fleet generation failed: " + fleet.status().ToString());
  itspq::VenueCatalog catalog;
  for (itspq::Venue& venue : *fleet) {
    auto id = catalog.AddVenue(std::move(venue), "itg-a+");
    if (!id.ok()) Die("AddVenue failed: " + id.status().ToString());
  }
  itspq::MultiVenueWorkloadConfig workload_config;
  workload_config.num_requests = requests;
  workload_config.seed = seed + 1;
  workload_config.options.use_snapshot_cache = true;
  auto workload = itspq::GenerateMultiVenueWorkload(catalog, workload_config);
  if (!workload.ok()) {
    Die("workload generation failed: " + workload.status().ToString());
  }
  itspq::ArrivalScheduleConfig arrival_config;
  arrival_config.offered_qps = qps;
  arrival_config.seed = seed + 2;
  auto arrivals = itspq::GenerateOpenLoopArrivals(requests, arrival_config);
  if (!arrivals.ok()) {
    Die("arrival generation failed: " + arrivals.status().ToString());
  }

  // Request i rides connection i % connections; each connection submits
  // its slice on the shared arrival schedule, then drains its replies.
  using SteadyClock = std::chrono::steady_clock;
  std::vector<ConnOutcome> outcomes(static_cast<size_t>(connections));
  std::vector<std::thread> threads;
  const SteadyClock::time_point start = SteadyClock::now();
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      ConnOutcome& out = outcomes[static_cast<size_t>(c)];
      auto client = NetClient::Connect(target_port);
      if (!client.ok()) {
        out.transport_ok = false;
        out.transport_error = client.status().ToString();
        return;
      }
      for (int i = c; i < requests; i += connections) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<SteadyClock::duration>(
                        std::chrono::duration<double>(
                            (*arrivals)[static_cast<size_t>(i)])));
        auto id = (*client)->Send((*workload)[static_cast<size_t>(i)],
                                  deadline_micros,
                                  ClassForIndex(i, mix_thresholds));
        if (!id.ok()) {
          out.transport_ok = false;
          out.transport_error = id.status().ToString();
          return;
        }
        ++out.sent;
      }
      for (size_t r = 0; r < out.sent; ++r) {
        auto reply = (*client)->ReceiveReply();
        if (!reply.ok()) {
          out.transport_ok = false;
          out.transport_error = reply.status().ToString();
          return;
        }
        ++out.replies;
        switch (reply->code) {
          case StatusCode::kOk:
            ++out.ok;
            if (reply->found) ++out.found;
            break;
          case StatusCode::kResourceExhausted:
            ++out.resource_exhausted;
            break;
          case StatusCode::kDeadlineExceeded:
            ++out.deadline_exceeded;
            break;
          default:
            ++out.other_errors;
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(SteadyClock::now() - start).count();

  ConnOutcome total;
  bool transport_ok = true;
  for (const ConnOutcome& out : outcomes) {
    if (!out.transport_ok) {
      std::fprintf(stderr, "itspq_loadgen: connection failed: %s\n",
                   out.transport_error.c_str());
      transport_ok = false;
    }
    total.sent += out.sent;
    total.replies += out.replies;
    total.ok += out.ok;
    total.found += out.found;
    total.resource_exhausted += out.resource_exhausted;
    total.deadline_exceeded += out.deadline_exceeded;
    total.other_errors += out.other_errors;
  }

  // The stats frame rides a fresh connection: worker pipelines are
  // fully drained (every Send answered), so the server-side ledger is
  // quiesced for everything this process submitted.
  auto stats_client = NetClient::Connect(target_port);
  if (!stats_client.ok()) {
    Die("stats connection failed: " + stats_client.status().ToString());
  }
  auto stats = (*stats_client)->FetchStats();
  if (!stats.ok()) Die("stats fetch failed: " + stats.status().ToString());

  const double achieved_qps = static_cast<double>(total.replies) / seconds;
  std::printf("itspq_loadgen: offered %.0f q/s over %d conns, achieved %.0f "
              "q/s (%zu replies in %.2fs)\n",
              qps, connections, achieved_qps, total.replies, seconds);
  std::printf("itspq_loadgen: client view: %zu ok (%zu found), %zu shed/full, "
              "%zu deadline, %zu other\n",
              total.ok, total.found, total.resource_exhausted,
              total.deadline_exceeded, total.other_errors);
  std::printf("itspq_loadgen: server view: submitted %llu = served %llu + "
              "shed %llu + rejected %llu + timed-out %llu; p50 %.0f us, "
              "p99 %.0f us\n",
              static_cast<unsigned long long>(stats->submitted),
              static_cast<unsigned long long>(stats->served),
              static_cast<unsigned long long>(stats->shed),
              static_cast<unsigned long long>(stats->rejected),
              static_cast<unsigned long long>(stats->timed_out),
              stats->p50_micros, stats->p99_micros);
  std::printf("itspq_loadgen: served by class: interactive %llu, batch %llu, "
              "background %llu; shed by class: %llu / %llu / %llu\n",
              static_cast<unsigned long long>(stats->served_by_class[0]),
              static_cast<unsigned long long>(stats->served_by_class[1]),
              static_cast<unsigned long long>(stats->served_by_class[2]),
              static_cast<unsigned long long>(stats->shed_by_class[0]),
              static_cast<unsigned long long>(stats->shed_by_class[1]),
              static_cast<unsigned long long>(stats->shed_by_class[2]));

  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::app);
    if (!out) Die("cannot write --json-out " + json_out);
    char line[512];
    std::snprintf(line, sizeof line,
                  "{\"offered_qps\": %.0f, \"requests\": %d, "
                  "\"connections\": %d, \"achieved_qps\": %.1f, "
                  "\"p50_micros\": %.1f, \"p99_micros\": %.1f, "
                  "\"served\": %llu, \"shed\": %llu, \"rejected\": %llu, "
                  "\"timed_out\": %llu}",
                  qps, requests, connections, achieved_qps, stats->p50_micros,
                  stats->p99_micros,
                  static_cast<unsigned long long>(stats->served),
                  static_cast<unsigned long long>(stats->shed),
                  static_cast<unsigned long long>(stats->rejected),
                  static_cast<unsigned long long>(stats->timed_out));
    out << line << "\n";
  }

  bool ok = transport_ok;
  if (smoke) {
    if (total.sent != static_cast<size_t>(requests) ||
        total.replies != total.sent) {
      std::fprintf(stderr,
                   "itspq_loadgen: SMOKE VIOLATION: sent %zu of %d, got %zu "
                   "replies\n",
                   total.sent, requests, total.replies);
      ok = false;
    }
    if (stats->submitted != static_cast<uint64_t>(requests)) {
      std::fprintf(stderr,
                   "itspq_loadgen: SMOKE VIOLATION: server saw %llu submitted "
                   "for %d sent\n",
                   static_cast<unsigned long long>(stats->submitted), requests);
      ok = false;
    }
    if (stats->served + stats->shed + stats->rejected + stats->timed_out !=
        stats->submitted) {
      std::fprintf(stderr,
                   "itspq_loadgen: SMOKE VIOLATION: submitted %llu != served "
                   "%llu + shed %llu + rejected %llu + timed-out %llu\n",
                   static_cast<unsigned long long>(stats->submitted),
                   static_cast<unsigned long long>(stats->served),
                   static_cast<unsigned long long>(stats->shed),
                   static_cast<unsigned long long>(stats->rejected),
                   static_cast<unsigned long long>(stats->timed_out));
      ok = false;
    }
    if (stats->served == 0) {
      std::fprintf(stderr, "itspq_loadgen: SMOKE VIOLATION: nothing served\n");
      ok = false;
    }
  }

  if (shutdown) {
    itspq::Status down = (*stats_client)->RequestShutdown();
    if (!down.ok()) {
      std::fprintf(stderr, "itspq_loadgen: shutdown request failed: %s\n",
                   down.ToString().c_str());
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

// bench_diff: compares two micro_core benchmark snapshots and reports
// the per-benchmark delta — the regression gate behind BENCH_*.json.
//
//   bench_diff old.json new.json            # report only
//   bench_diff --gate old.json new.json     # exit 1 on a regression
//   bench_diff --gate --threshold=0.15 ...  # custom gate (fraction)
//
// Accepts either raw google-benchmark JSON ({"context", "benchmarks"})
// or a wrapped BENCH_prN.json ({"micro_core": {...}, ...}); the scan is
// a tolerant hand-rolled pass over the text (no JSON dependency): each
// "name" inside the benchmarks array is paired with the next
// "real_time"/"time_unit". Build types ("library_build_type" in the
// benchmark context) are printed prominently — a debug-vs-release diff
// is not a like-for-like comparison and is flagged as such.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct BenchEntry {
  std::string name;
  double time_ns = 0;
};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

/// Extracts the JSON string value following `key` at/after `from`;
/// npos-safe. Returns the empty string when absent.
std::string StringAfter(const std::string& text, const std::string& key,
                        size_t from = 0) {
  const size_t at = text.find("\"" + key + "\"", from);
  if (at == std::string::npos) return "";
  const size_t open = text.find('"', text.find(':', at) + 1);
  if (open == std::string::npos) return "";
  const size_t close = text.find('"', open + 1);
  if (close == std::string::npos) return "";
  return text.substr(open + 1, close - open - 1);
}

double NumberAfter(const std::string& text, const std::string& key,
                   size_t from, size_t limit, bool* ok) {
  *ok = false;
  const size_t at = text.find("\"" + key + "\"", from);
  if (at == std::string::npos || at >= limit) return 0;
  const size_t colon = text.find(':', at);
  if (colon == std::string::npos) return 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str() + colon + 1, &end);
  if (end == text.c_str() + colon + 1) return 0;
  *ok = true;
  return v;
}

double UnitToNs(const std::string& unit) {
  if (unit == "ns" || unit.empty()) return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;
}

/// All (name, real_time in ns) pairs of the benchmarks array. When the
/// file wraps the run under "micro_core", the scan is narrowed to it so
/// sibling sections can never contribute phantom entries.
std::vector<BenchEntry> ExtractBenchmarks(const std::string& full_text) {
  std::string text = full_text;
  const size_t wrapped = full_text.find("\"micro_core\"");
  if (wrapped != std::string::npos) text = full_text.substr(wrapped);
  const size_t array = text.find("\"benchmarks\"");
  if (array == std::string::npos) return {};

  std::vector<BenchEntry> entries;
  size_t at = array;
  for (;;) {
    const size_t name_at = text.find("\"name\"", at);
    if (name_at == std::string::npos) break;
    const size_t next_name = text.find("\"name\"", name_at + 1);
    const size_t limit =
        next_name == std::string::npos ? text.size() : next_name;
    BenchEntry e;
    e.name = StringAfter(text, "name", name_at);
    bool ok = false;
    const double real_time =
        NumberAfter(text, "real_time", name_at, limit, &ok);
    if (ok && !e.name.empty()) {
      e.time_ns = real_time * UnitToNs(StringAfter(text, "time_unit",
                                                   name_at));
      entries.push_back(std::move(e));
    }
    at = limit;
  }
  return entries;
}

std::string BuildType(const std::string& text) {
  const std::string v = StringAfter(text, "library_build_type");
  return v.empty() ? "unknown" : v;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--gate] [--threshold=FRACTION] OLD.json NEW.json\n"
               "  --gate            exit 1 when any benchmark regresses by\n"
               "                    more than the threshold (default 0.10)\n"
               "  --threshold=0.10  regression gate as a fraction of the\n"
               "                    old time\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool gate = false;
  double threshold = 0.10;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gate") {
      gate = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::strtod(arg.c_str() + 12, nullptr);
      if (threshold <= 0) return Usage(argv[0]);
    } else if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      return Usage(argv[0]);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) return Usage(argv[0]);

  std::string old_text, new_text;
  if (!ReadFile(paths[0], &old_text)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", paths[0].c_str());
    return 2;
  }
  if (!ReadFile(paths[1], &new_text)) {
    std::fprintf(stderr, "bench_diff: cannot read %s\n", paths[1].c_str());
    return 2;
  }

  std::map<std::string, double> old_times;
  for (const BenchEntry& e : ExtractBenchmarks(old_text)) {
    old_times.emplace(e.name, e.time_ns);
  }
  const std::vector<BenchEntry> new_entries = ExtractBenchmarks(new_text);
  if (old_times.empty() || new_entries.empty()) {
    std::fprintf(stderr,
                 "bench_diff: no micro_core benchmarks found in %s\n",
                 old_times.empty() ? paths[0].c_str() : paths[1].c_str());
    return 2;
  }

  const std::string old_build = BuildType(old_text);
  const std::string new_build = BuildType(new_text);
  std::printf("old: %s (%s build)\nnew: %s (%s build)\n\n", paths[0].c_str(),
              old_build.c_str(), paths[1].c_str(), new_build.c_str());
  if (old_build != new_build) {
    std::printf(
        "WARNING: build types differ (%s vs %s) — deltas are NOT a\n"
        "like-for-like comparison.\n\n",
        old_build.c_str(), new_build.c_str());
  }

  std::printf("%-34s %14s %14s %9s\n", "benchmark", "old (ns)", "new (ns)",
              "delta");
  int regressions = 0;
  size_t matched = 0;
  for (const BenchEntry& e : new_entries) {
    const auto it = old_times.find(e.name);
    if (it == old_times.end()) {
      std::printf("%-34s %14s %14.1f %9s\n", e.name.c_str(), "-", e.time_ns,
                  "new");
      continue;
    }
    ++matched;
    const double delta = (e.time_ns - it->second) / it->second;
    const bool regressed = delta > threshold;
    std::printf("%-34s %14.1f %14.1f %+8.1f%%%s\n", e.name.c_str(),
                it->second, e.time_ns, delta * 100.0,
                regressed ? "  << REGRESSION" : "");
    if (regressed) ++regressions;
  }
  for (const auto& [name, time_ns] : old_times) {
    if (std::none_of(new_entries.begin(), new_entries.end(),
                     [&](const BenchEntry& e) { return e.name == name; })) {
      std::printf("%-34s %14.1f %14s %9s\n", name.c_str(), time_ns, "-",
                  "gone");
    }
  }

  std::printf("\n%zu benchmarks compared, %d over the %.0f%% threshold\n",
              matched, regressions, threshold * 100.0);
  if (gate && matched == 0) {
    std::fprintf(stderr, "bench_diff: --gate with no comparable benchmarks\n");
    return 2;
  }
  return gate && regressions > 0 ? 1 : 0;
}

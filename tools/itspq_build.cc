// itspq_build — the offline artifact builder.
//
// One pass from fleet-generator parameters to a directory of packed
// `.itspq` artifacts plus a fleet manifest: generation, graph
// compilation, checkpoint-ledger derivation, and (optionally) the D2D
// Dijkstra sweep all happen here, once, so serving boots load the
// result in O(file size).
//
//   itspq_build --out=fleet_dir [--venues=12] [--seed=7]
//               [--min-floors=1] [--max-floors=3] [--d2d]
//               [--label-prefix=venue]
//
// Output: fleet_dir/venue_0000.itspq ... and fleet_dir/fleet.manifest
// (one artifact filename per line, '#' comments), consumable by
// ReadFleetManifest + VenueCatalog::AddArtifactShard.
//
// The inverse verb checks a packed fleet end to end — registers every
// manifest entry in a lazy VenueCatalog and loads each shard, exiting
// non-zero on the first rejected or unloadable artifact:
//
//   itspq_build --load=fleet_dir/fleet.manifest [--strategy=itg-a+]

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "artifact/artifact.h"
#include "artifact/format.h"
#include "common/memory_tracker.h"
#include "common/stats.h"
#include "gen/workload_gen.h"
#include "query/venue_catalog.h"

namespace {

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "itspq_build: %s\n", message.c_str());
  std::exit(1);
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

long ParseLong(const std::string& value, const char* flag) {
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    Die(std::string("bad value for ") + flag + ": " + value);
  }
  return parsed;
}

/// The --load verb: prove a packed fleet still boots. Registers every
/// manifest entry (header + table validation), loads every shard, and
/// reports what came up — the CI smoke for cached artifact fleets.
int LoadFleet(const std::string& manifest_path, const std::string& strategy) {
  auto paths = itspq::ReadFleetManifest(manifest_path);
  if (!paths.ok()) Die("--load: " + paths.status().ToString());

  itspq::VenueCatalog catalog;
  for (const std::string& path : *paths) {
    auto id = catalog.AddArtifactShard(path, strategy);
    if (!id.ok()) Die(path + ": " + id.status().ToString());
  }
  itspq::Timer load_timer;
  size_t resident_bytes = 0;
  for (size_t i = 0; i < catalog.NumVenues(); ++i) {
    auto world = catalog.EnsureResident(static_cast<itspq::VenueId>(i));
    if (!world.ok()) {
      Die((*paths)[i] + ": " + world.status().ToString());
    }
    resident_bytes += (*world)->MemoryUsage();
  }
  std::printf(
      "itspq_build: loaded %zu shards from %s in %.1f ms (%s resident, "
      "strategy %s)\n",
      catalog.NumVenues(), manifest_path.c_str(), load_timer.ElapsedMillis(),
      itspq::FormatBytes(resident_bytes).c_str(), strategy.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  std::string manifest_to_load;
  std::string strategy = "itg-a+";
  std::string label_prefix = "venue";
  itspq::FleetConfig fleet;
  fleet.num_venues = 12;
  bool include_d2d = false;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--out", &value)) {
      out_dir = value;
    } else if (ParseFlag(argv[i], "--load", &value)) {
      manifest_to_load = value;
    } else if (ParseFlag(argv[i], "--strategy", &value)) {
      strategy = value;
    } else if (ParseFlag(argv[i], "--venues", &value)) {
      fleet.num_venues = static_cast<int>(ParseLong(value, "--venues"));
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      fleet.seed = static_cast<uint64_t>(ParseLong(value, "--seed"));
    } else if (ParseFlag(argv[i], "--min-floors", &value)) {
      fleet.min_floors = static_cast<int>(ParseLong(value, "--min-floors"));
    } else if (ParseFlag(argv[i], "--max-floors", &value)) {
      fleet.max_floors = static_cast<int>(ParseLong(value, "--max-floors"));
    } else if (ParseFlag(argv[i], "--label-prefix", &value)) {
      label_prefix = value;
    } else if (std::strcmp(argv[i], "--d2d") == 0) {
      include_d2d = true;
    } else {
      Die(std::string("unknown flag ") + argv[i] +
          " (flags: --out=DIR --venues=N --seed=S --min-floors=F "
          "--max-floors=F --label-prefix=P --d2d | --load=MANIFEST "
          "--strategy=NAME)");
    }
  }
  if (!manifest_to_load.empty()) {
    return LoadFleet(manifest_to_load, strategy);
  }
  if (out_dir.empty()) Die("--out=DIR or --load=MANIFEST is required");
  if (fleet.num_venues <= 0) Die("--venues must be positive");

  // mkdir -p, one level (fleet dirs are flat).
  if (mkdir(out_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    Die("cannot create output directory " + out_dir);
  }

  itspq::Timer total_timer;
  itspq::Timer gen_timer;
  auto venues = itspq::GenerateVenueFleet(fleet);
  if (!venues.ok()) Die("fleet generation: " + venues.status().ToString());
  const double gen_ms = gen_timer.ElapsedMillis();

  std::printf("itspq_build: %d venues, seed %llu, format v%u%s -> %s\n",
              fleet.num_venues,
              static_cast<unsigned long long>(fleet.seed),
              itspq::kArtifactFormatVersion, include_d2d ? ", with D2D" : "",
              out_dir.c_str());
  std::printf("%-18s %10s %10s %12s\n", "artifact", "doors", "encode_ms",
              "bytes");

  itspq::Timer encode_timer;
  std::vector<std::string> names;
  size_t total_bytes = 0;
  for (size_t i = 0; i < venues->size(); ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "venue_%04zu.itspq", i);
    itspq::ArtifactWriteOptions options;
    options.include_d2d = include_d2d;
    options.label = label_prefix + "-" + std::to_string(i);

    itspq::Timer venue_timer;
    const itspq::Venue& venue = (*venues)[i];
    itspq::Status written =
        itspq::WriteVenueArtifact(out_dir + "/" + name, venue, options);
    if (!written.ok()) {
      Die(std::string(name) + ": " + written.ToString());
    }
    struct stat st;
    const size_t bytes =
        stat((out_dir + "/" + name).c_str(), &st) == 0
            ? static_cast<size_t>(st.st_size)
            : 0;
    total_bytes += bytes;
    std::printf("%-18s %10zu %10.1f %12zu\n", name, venue.NumDoors(),
                venue_timer.ElapsedMillis(), bytes);
    names.emplace_back(name);
  }
  const double encode_ms = encode_timer.ElapsedMillis();

  // The manifest ties the directory together; loaders resolve entries
  // relative to the manifest's location.
  const std::string manifest_path = out_dir + "/fleet.manifest";
  {
    std::ofstream manifest(manifest_path, std::ios::trunc);
    if (!manifest) Die("cannot write " + manifest_path);
    manifest << "# itspq fleet manifest\n"
             << "# format_version " << itspq::kArtifactFormatVersion << "\n"
             << "# venues " << fleet.num_venues << " seed " << fleet.seed
             << (include_d2d ? " d2d" : "") << "\n";
    for (const std::string& name : names) manifest << name << "\n";
  }

  std::printf(
      "wrote %zu artifacts (%s) + %s: generate %.1f ms, "
      "compile+encode %.1f ms, total %.1f ms\n",
      names.size(), itspq::FormatBytes(total_bytes).c_str(),
      manifest_path.c_str(), gen_ms, encode_ms, total_timer.ElapsedMillis());
  return 0;
}

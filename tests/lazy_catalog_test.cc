// The lazy fleet: VenueCatalog shards registered by `.itspq` artifact
// path, loaded on first query, evicted under a catalog-wide residency
// budget, and pinned resident once an online update diverges them from
// their artifact. The concurrency test at the bottom is the one the
// tsan CI preset race-checks: 8 readers on a Zipf-shaped workload while
// cold shards load, the evictor reclaims others, and an updater
// publishes new epochs.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "artifact/artifact.h"
#include "common/time.h"
#include "gen/workload_gen.h"
#include "query/sharded_router.h"
#include "query/venue_catalog.h"
#include "update/ati_update.h"

namespace itspq {
namespace {

constexpr size_t kFleetSize = 4;

template <typename T>
T ValueOrDie(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    ADD_FAILURE() << what << ": " << value.status().ToString();
    std::abort();
  }
  return *std::move(value);
}

// One shared fixture directory: the fleet is deterministic (fixed
// seed), so every test can reuse the same artifacts.
class LazyCatalogTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    (void)std::system("mkdir -p lazy_catalog_test");
    fleet_ = new std::vector<Venue>(MakeFleet());
    for (size_t i = 0; i < fleet_->size(); ++i) {
      ASSERT_TRUE(
          WriteVenueArtifact(ArtifactPath(i), (*fleet_)[i]).ok());
    }
  }

  static std::vector<Venue> MakeFleet() {
    FleetConfig config;
    config.num_venues = static_cast<int>(kFleetSize);
    config.seed = 7;
    config.min_floors = 1;
    config.max_floors = 2;
    config.min_shop_rows = 2;
    config.max_shop_rows = 3;
    return ValueOrDie(GenerateVenueFleet(config), "GenerateVenueFleet");
  }

  static std::string ArtifactPath(size_t i) {
    return "lazy_catalog_test/venue_" + std::to_string(i) + ".itspq";
  }

  static VenueCatalog MakeEagerCatalog() {
    VenueCatalog catalog;
    for (const Venue& venue : *fleet_) {
      (void)ValueOrDie(catalog.AddVenue(Venue(venue), "itg-s"), "AddVenue");
    }
    return catalog;
  }

  static VenueCatalog MakeLazyCatalog() {
    VenueCatalog catalog;
    for (size_t i = 0; i < fleet_->size(); ++i) {
      (void)ValueOrDie(catalog.AddArtifactShard(ArtifactPath(i), "itg-s"),
                       "AddArtifactShard");
    }
    return catalog;
  }

  static std::vector<QueryRequest> MakeWorkload(const VenueCatalog& eager,
                                                int num_requests) {
    MultiVenueWorkloadConfig config;
    config.num_requests = num_requests;
    config.seed = 99;
    config.pairs_per_venue = 4;
    // Zipf-skewed venue choice: a hot head and a cold tail, the traffic
    // shape the residency budget exists for.
    config.zipf_exponent = 1.0;
    return ValueOrDie(GenerateMultiVenueWorkload(eager, config), "workload");
  }

  /// Bytes of the largest shard once loaded — the floor any useful
  /// residency budget must clear.
  static size_t MaxShardBytes(const VenueCatalog& lazy_probe) {
    size_t max_bytes = 0;
    for (size_t i = 0; i < lazy_probe.NumVenues(); ++i) {
      auto world = lazy_probe.EnsureResident(static_cast<VenueId>(i));
      EXPECT_TRUE(world.ok());
      max_bytes = std::max(max_bytes, (*world)->MemoryUsage());
    }
    return max_bytes;
  }

  static std::vector<Venue>* fleet_;
};

std::vector<Venue>* LazyCatalogTest::fleet_ = nullptr;

TEST_F(LazyCatalogTest, ShardsLoadOnFirstQueryOnly) {
  VenueCatalog eager = MakeEagerCatalog();
  VenueCatalog lazy = MakeLazyCatalog();

  // Registration alone loads nothing.
  CatalogStats cold = lazy.Stats();
  EXPECT_EQ(cold.lazy_shards, kFleetSize);
  EXPECT_EQ(cold.resident_shards, 0u);
  EXPECT_EQ(cold.total_loads, 0u);
  EXPECT_EQ(cold.total_memory_bytes, 0u);
  for (size_t i = 0; i < kFleetSize; ++i) {
    EXPECT_FALSE(lazy.IsResident(static_cast<VenueId>(i)));
    EXPECT_EQ(lazy.world(static_cast<VenueId>(i)), nullptr);
  }

  // One query touches exactly one shard.
  std::vector<QueryRequest> requests = MakeWorkload(eager, 40);
  ShardedRouter eager_router(eager), lazy_router(lazy);
  QueryContext eager_context, lazy_context;
  const QueryRequest& first = requests[0];
  auto expect = eager_router.Route(first, &eager_context);
  auto got = lazy_router.Route(first, &lazy_context);
  ASSERT_TRUE(expect.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(expect->found, got->found);
  if (expect->found) {
    EXPECT_EQ(expect->path.length_m(), got->path.length_m());
  }
  CatalogStats touched = lazy.Stats();
  EXPECT_EQ(touched.resident_shards, 1u);
  EXPECT_EQ(touched.total_loads, 1u);
  EXPECT_TRUE(lazy.IsResident(first.venue_id));

  // The full workload answers bit-identically; each shard loads once.
  for (const QueryRequest& request : requests) {
    auto e = eager_router.Route(request, &eager_context);
    auto l = lazy_router.Route(request, &lazy_context);
    ASSERT_TRUE(e.ok());
    ASSERT_TRUE(l.ok());
    ASSERT_EQ(e->found, l->found);
    if (e->found) {
      EXPECT_EQ(e->path.length_m(), l->path.length_m());
    }
  }
  CatalogStats warm = lazy.Stats();
  EXPECT_LE(warm.total_loads, kFleetSize);  // no budget, so no reloads
  for (const ShardStats& s : warm.shards) {
    EXPECT_TRUE(s.lazy);
    EXPECT_LE(s.loads, 1u);
    if (s.resident) {
      EXPECT_GT(s.memory_bytes, 0u);
    }
  }
}

// The load-failure path still reconciles the shard ledger: a query
// that dies in EnsureResident (artifact corrupted after registration)
// must land in queries_served AND route_errors together — not one
// without the other, which is exactly the drift the reconciliation
// invariant exists to catch.
TEST_F(LazyCatalogTest, FailedLoadStillReconcilesShardCounters) {
  const std::string path = "lazy_catalog_test/truncated.itspq";
  (void)std::system(("cp " + ArtifactPath(0) + " " + path).c_str());

  VenueCatalog catalog;
  const VenueId id =
      ValueOrDie(catalog.AddArtifactShard(path, "itg-s"), "AddArtifactShard");
  // Registration validated the header + section table; chopping the
  // payload afterwards makes the first load — not the registration —
  // the thing that fails.
  ASSERT_EQ(::truncate(path.c_str(), 64), 0);

  ShardedRouter sharded(catalog);
  QueryRequest request;
  request.venue_id = id;
  QueryContext context;
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto result = sharded.Route(request, &context);
    EXPECT_FALSE(result.ok()) << attempt;
  }

  const CatalogStats stats = catalog.Stats();
  ASSERT_EQ(stats.shards.size(), 1u);
  const ShardStats& s = stats.shards[0];
  EXPECT_EQ(s.queries_served, 2u);
  EXPECT_EQ(s.route_errors, 2u);
  EXPECT_EQ(s.routes_found, 0u);
  EXPECT_EQ(s.routes_not_found, 0u);
  EXPECT_EQ(s.queries_served,
            s.routes_found + s.routes_not_found + s.route_errors);
  EXPECT_EQ(stats.total_queries,
            stats.total_found + stats.total_not_found + stats.total_errors);
}

TEST_F(LazyCatalogTest, BudgetEvictsColdShardsAndAnswersStayIdentical) {
  VenueCatalog eager = MakeEagerCatalog();
  VenueCatalog probe = MakeLazyCatalog();
  const size_t max_bytes = MaxShardBytes(probe);

  VenueCatalog lazy = MakeLazyCatalog();
  // Room for the largest shard plus change, but never the whole fleet:
  // serving the workload must evict.
  const size_t budget = max_bytes + max_bytes / 2;
  ASSERT_TRUE(lazy.SetResidencyBudget(budget, "lru").ok());

  std::vector<QueryRequest> requests = MakeWorkload(eager, 120);
  ShardedRouter eager_router(eager), lazy_router(lazy);
  QueryContext eager_context, lazy_context;
  for (const QueryRequest& request : requests) {
    auto expect = eager_router.Route(request, &eager_context);
    auto got = lazy_router.Route(request, &lazy_context);
    ASSERT_TRUE(expect.ok());
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(expect->found, got->found);
    if (expect->found) {
      EXPECT_EQ(expect->path.length_m(), got->path.length_m());
    }
    // The budget invariant holds at every step, not just at the end.
    EXPECT_LE(lazy.Stats().resident_lazy_bytes, budget);
  }

  const CatalogStats stats = lazy.Stats();
  EXPECT_EQ(stats.residency_budget_bytes, budget);
  EXPECT_GT(stats.total_shard_evictions, 0u);
  EXPECT_GT(stats.total_loads, kFleetSize);  // evicted shards reloaded
  EXPECT_LT(stats.resident_shards, kFleetSize);
  EXPECT_GT(stats.load_latency.total, 0u);

  // keep-all is the advisory escape hatch: same tiny budget, no
  // evictions ever.
  VenueCatalog advisory = MakeLazyCatalog();
  ASSERT_TRUE(advisory.SetResidencyBudget(1, "keep-all").ok());
  QueryContext advisory_context;
  ShardedRouter advisory_router(advisory);
  for (const QueryRequest& request : requests) {
    ASSERT_TRUE(advisory_router.Route(request, &advisory_context).ok());
  }
  EXPECT_EQ(advisory.Stats().total_shard_evictions, 0u);
  EXPECT_EQ(advisory.Stats().total_loads, kFleetSize);

  // Unknown policies are rejected up front.
  EXPECT_EQ(lazy.SetResidencyBudget(budget, "no-such-policy").code(),
            StatusCode::kNotFound);
}

TEST_F(LazyCatalogTest, UpdatedShardIsPinnedAndNeverEvicted) {
  VenueCatalog probe = MakeLazyCatalog();
  const size_t max_bytes = MaxShardBytes(probe);

  VenueCatalog lazy = MakeLazyCatalog();
  ASSERT_TRUE(lazy.SetResidencyBudget(max_bytes + max_bytes / 2, "lru").ok());

  // Updating a cold shard loads it, applies on top, and pins it.
  AtiUpdate update;
  update.venue_id = 0;
  update.door_id = 0;
  update.intervals = {TimeInterval{9 * 3600.0, 17 * 3600.0}};
  UpdateOutcome outcome =
      ValueOrDie(lazy.ApplyAtiUpdate(update), "ApplyAtiUpdate");
  EXPECT_EQ(outcome.epoch, 1u);
  EXPECT_TRUE(lazy.IsResident(0));

  // Hammer every other shard to churn the budget; the updated shard
  // must survive (its state has diverged from the artifact on disk).
  VenueCatalog eager = MakeEagerCatalog();
  ShardedRouter lazy_router(lazy);
  QueryContext context;
  for (int round = 0; round < 3; ++round) {
    for (const QueryRequest& request : MakeWorkload(eager, 60)) {
      if (request.venue_id == 0) continue;
      ASSERT_TRUE(lazy_router.Route(request, &context).ok());
    }
  }
  EXPECT_TRUE(lazy.IsResident(0));
  const CatalogStats stats = lazy.Stats();
  EXPECT_EQ(stats.shards[0].epoch, 1u);
  EXPECT_EQ(stats.shards[0].loads, 1u);
  EXPECT_EQ(stats.shards[0].updates_applied, 1u);
  // Pinned shards serve outside the budget's accounting.
  EXPECT_LE(stats.resident_lazy_bytes, stats.residency_budget_bytes);
}

// The race the lazy plane must survive: 8 readers over a Zipf workload
// against a budget that forces cold loads and evictions mid-traffic,
// plus an updater publishing new epochs on one shard. Every answer must
// be coherent against exactly one epoch — bit-identical to the pre- or
// post-update reference, never a blend.
TEST_F(LazyCatalogTest, ConcurrentReadersSurviveLoadsEvictionsAndUpdates) {
  VenueCatalog eager = MakeEagerCatalog();
  VenueCatalog probe = MakeLazyCatalog();
  const size_t max_bytes = MaxShardBytes(probe);

  VenueCatalog lazy = MakeLazyCatalog();
  ASSERT_TRUE(lazy.SetResidencyBudget(max_bytes + max_bytes / 2, "lru").ok());

  const std::vector<QueryRequest> requests = MakeWorkload(eager, 64);
  AtiUpdate update;
  update.venue_id = 0;
  update.door_id = 0;
  update.intervals = {TimeInterval{10 * 3600.0, 16 * 3600.0}};

  // Reference answers on both sides of the update, from the eager twin.
  struct Reference {
    bool ok = false;
    bool found = false;
    double length = -1.0;
  };
  auto snapshot = [&requests](const VenueCatalog& catalog) {
    ShardedRouter router(catalog);
    QueryContext context;
    std::vector<Reference> out;
    for (const QueryRequest& request : requests) {
      auto r = router.Route(request, &context);
      Reference ref;
      ref.ok = r.ok();
      if (r.ok()) {
        ref.found = r->found;
        ref.length = r->found ? r->path.length_m() : -1.0;
      }
      out.push_back(ref);
    }
    return out;
  };
  const std::vector<Reference> before = snapshot(eager);
  (void)ValueOrDie(eager.ApplyAtiUpdate(update), "eager ApplyAtiUpdate");
  const std::vector<Reference> after = snapshot(eager);

  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  std::atomic<int> mismatches{0};
  std::atomic<bool> updated{false};
  ShardedRouter lazy_router(lazy);

  auto matches = [](const StatusOr<QueryResult>& got, const Reference& ref) {
    if (!got.ok() || !ref.ok) return got.ok() == ref.ok;
    if (got->found != ref.found) return false;
    return !got->found || got->path.length_m() == ref.length;
  };

  auto reader = [&](int thread_index) {
    QueryContext context;
    for (int round = 0; round < kRounds; ++round) {
      for (size_t i = 0; i < requests.size(); ++i) {
        // Stagger the order so threads collide on different shards.
        const size_t k = (i + static_cast<size_t>(thread_index) * 7) %
                         requests.size();
        auto got = lazy_router.Route(requests[k], &context);
        const bool pre_ok = matches(got, before[k]);
        const bool post_ok = matches(got, after[k]);
        // Shard 0 may legitimately serve either epoch while the update
        // is in flight; every other shard has exactly one truth. Once
        // the update is known committed, shard 0 answers must come from
        // the new epoch or a pin taken before it.
        if (!pre_ok && !post_ok) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        if (requests[k].venue_id != 0 && !pre_ok) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(reader, t);
  {
    // The writer lands mid-traffic.
    std::thread updater([&] {
      auto outcome = lazy.ApplyAtiUpdate(update);
      EXPECT_TRUE(outcome.ok());
      updated.store(true, std::memory_order_release);
    });
    updater.join();
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(updated.load());

  const CatalogStats stats = lazy.Stats();
  EXPECT_EQ(stats.shards[0].epoch, 1u);
  EXPECT_TRUE(lazy.IsResident(0));  // pinned by the update
  EXPECT_GT(stats.total_loads, 0u);
  EXPECT_LE(stats.resident_lazy_bytes, stats.residency_budget_bytes);
  // Post-quiesce, every request must answer from the committed epoch.
  QueryContext context;
  for (size_t i = 0; i < requests.size(); ++i) {
    auto got = lazy_router.Route(requests[i], &context);
    EXPECT_TRUE(matches(got, after[i])) << i;
  }
}

}  // namespace
}  // namespace itspq

// The live-world update plane: ItGraph::BuildFrom copy-on-write,
// the boundary-ledger flip index vs the probe-built one,
// UpdateApplier/VenueCatalog epoch transitions, snapshot carry and
// targeted invalidation across versions, and the rebuild-equivalence
// property — N online updates answer bit-identically to a from-scratch
// rebuild of the mutated fleet.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "gen/ati_gen.h"
#include "gen/venue_gen.h"
#include "gen/workload_gen.h"
#include "itgraph/checkpoints.h"
#include "itgraph/graph_update.h"
#include "itgraph/snapshot_store.h"
#include "query/sharded_router.h"
#include "query/venue_catalog.h"
#include "update/ati_update.h"
#include "update/update_applier.h"
#include "update/versioned_graph.h"

namespace itspq {
namespace {

template <typename T>
T ValueOrDie(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    ADD_FAILURE() << what << ": " << value.status().ToString();
    std::abort();
  }
  return *std::move(value);
}

Venue MakeVariedVenue(uint64_t seed = 5, int checkpoints = 8,
                      int floors = 2) {
  MallConfig mall = MallConfig::Paper();
  mall.floors = floors;
  mall.seed = seed;
  Venue shell = ValueOrDie(GenerateMall(mall), "GenerateMall");
  AtiGenConfig ati;
  ati.checkpoint_count = checkpoints;
  ati.seed = seed + 1;
  return ValueOrDie(AssignTemporalVariations(shell, ati),
                    "AssignTemporalVariations");
}

VenueCatalog MakeCatalog(const std::string& strategy,
                         const RouterBuildOptions& options =
                             RouterBuildOptions(),
                         uint64_t seed = 5) {
  VenueCatalog catalog;
  ValueOrDie(catalog.AddVenue(MakeVariedVenue(seed), strategy, "", options),
             "AddVenue");
  return catalog;
}

// Bit-identical answer comparison: same algorithm over equal graphs
// must produce equal doubles, so exact == is the intended check.
void ExpectSameAnswer(const StatusOr<QueryResult>& a,
                      const StatusOr<QueryResult>& b, size_t index) {
  ASSERT_EQ(a.ok(), b.ok()) << "request " << index;
  if (!a.ok()) return;
  ASSERT_EQ(a->found, b->found) << "request " << index;
  if (!a->found) return;
  EXPECT_EQ(a->path.length_m(), b->path.length_m()) << "request " << index;
  ASSERT_EQ(a->path.steps().size(), b->path.steps().size())
      << "request " << index;
  for (size_t s = 0; s < a->path.steps().size(); ++s) {
    EXPECT_EQ(a->path.steps()[s].door, b->path.steps()[s].door)
        << "request " << index << " step " << s;
    EXPECT_EQ(a->path.steps()[s].cumulative_m, b->path.steps()[s].cumulative_m)
        << "request " << index << " step " << s;
    EXPECT_EQ(a->path.steps()[s].arrival_seconds,
              b->path.steps()[s].arrival_seconds)
        << "request " << index << " step " << s;
  }
}

TEST(ItGraphBuildFromTest, MatchesFullRebuildAfterSingleDoorEdit) {
  Venue venue = MakeVariedVenue();
  ItGraph before = ValueOrDie(ItGraph::Build(venue), "ItGraph::Build");

  const DoorId door = 3;
  Venue::Builder builder = Venue::Builder::FromVenue(venue);
  ASSERT_TRUE(
      builder.SetDoorAti(door, {MakeInterval(9, 30, 17, 45)}).ok());
  Venue edited = ValueOrDie(std::move(builder).Build(), "Builder::Build");

  ItGraph incremental =
      ValueOrDie(ItGraph::BuildFrom(before, edited, door), "BuildFrom");
  ItGraph scratch = ValueOrDie(ItGraph::Build(edited), "ItGraph::Build");

  ASSERT_EQ(incremental.NumDoors(), scratch.NumDoors());
  for (size_t d = 0; d < scratch.NumDoors(); ++d) {
    const auto bounds_a =
        incremental.Ati(static_cast<DoorId>(d)).InteriorBoundaries();
    const auto bounds_b =
        scratch.Ati(static_cast<DoorId>(d)).InteriorBoundaries();
    EXPECT_EQ(bounds_a, bounds_b) << "door " << d;
    for (double t = 0; t < kSecondsPerDay; t += 1800.0) {
      EXPECT_EQ(incremental.Ati(static_cast<DoorId>(d)).ContainsTimeOfDay(t),
                scratch.Ati(static_cast<DoorId>(d)).ContainsTimeOfDay(t))
          << "door " << d << " t " << t;
    }
  }
}

TEST(ItGraphBuildFromTest, RejectsDoorCountMismatchAndUnknownDoor) {
  Venue venue = MakeVariedVenue();
  ItGraph graph = ValueOrDie(ItGraph::Build(venue), "ItGraph::Build");
  Venue other = MakeVariedVenue(/*seed=*/6, /*checkpoints=*/8, /*floors=*/1);
  ASSERT_NE(other.NumDoors(), venue.NumDoors());
  EXPECT_EQ(ItGraph::BuildFrom(graph, other, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ItGraph::BuildFrom(graph, venue,
                               static_cast<DoorId>(venue.NumDoors()))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(VersionedGraphTest, LedgerFlipIndexMatchesProbeBuild) {
  auto world = ValueOrDie(
      VersionedGraph::Build(MakeVariedVenue(), "itg-a+"), "Build");
  // The ledger-derived checkpoint set and CSR flip index must be
  // bit-identical to the from-scratch derivations.
  const CheckpointSet probe_cps = CheckpointSet::FromGraph(world->graph());
  EXPECT_EQ(world->checkpoints().times(), probe_cps.times());

  const BoundaryFlipIndex probe =
      BoundaryFlipIndex::Build(world->graph(), probe_cps);
  const BoundaryFlipIndex& ledger = world->flip_index();
  ASSERT_EQ(ledger.NumBoundaries(), probe.NumBoundaries());
  ASSERT_GT(ledger.NumBoundaries(), 0u);
  for (size_t b = 0; b < probe.NumBoundaries(); ++b) {
    const std::vector<DoorId> from_ledger(ledger.FlipsBegin(b),
                                          ledger.FlipsEnd(b));
    const std::vector<DoorId> from_probe(probe.FlipsBegin(b),
                                         probe.FlipsEnd(b));
    EXPECT_EQ(from_ledger, from_probe) << "boundary " << b;
  }
}

TEST(VersionedGraphTest, LedgerStaysConsistentAcrossUpdates) {
  auto world = ValueOrDie(
      VersionedGraph::Build(MakeVariedVenue(), "itg-a+"), "Build");
  Rng rng(17);
  for (int round = 0; round < 8; ++round) {
    AtiUpdate update;
    update.door_id =
        static_cast<DoorId>(rng.UniformIndex(world->venue().NumDoors()));
    const double open = rng.UniformDouble(5 * 3600.0, 11 * 3600.0);
    const double close = rng.UniformDouble(13 * 3600.0, 23 * 3600.0);
    update.intervals = {TimeInterval{open, close}};
    world = ValueOrDie(UpdateApplier::Apply(*world, update), "Apply");

    const CheckpointSet probe_cps = CheckpointSet::FromGraph(world->graph());
    ASSERT_EQ(world->checkpoints().times(), probe_cps.times())
        << "round " << round;
    const BoundaryFlipIndex probe =
        BoundaryFlipIndex::Build(world->graph(), probe_cps);
    const BoundaryFlipIndex& ledger = world->flip_index();
    ASSERT_EQ(ledger.NumBoundaries(), probe.NumBoundaries());
    for (size_t b = 0; b < probe.NumBoundaries(); ++b) {
      ASSERT_EQ(std::vector<DoorId>(ledger.FlipsBegin(b), ledger.FlipsEnd(b)),
                std::vector<DoorId>(probe.FlipsBegin(b), probe.FlipsEnd(b)))
          << "round " << round << " boundary " << b;
    }
  }
  EXPECT_EQ(world->epoch(), 8u);
}

TEST(UpdateApplierTest, ErrorsLeaveCatalogOnCurrentEpoch) {
  VenueCatalog catalog = MakeCatalog("itg-s");
  EXPECT_EQ(catalog.epoch(0), 0u);

  AtiUpdate unknown_venue;
  unknown_venue.venue_id = 42;
  unknown_venue.door_id = 0;
  EXPECT_EQ(catalog.ApplyAtiUpdate(unknown_venue).status().code(),
            StatusCode::kNotFound);

  AtiUpdate unknown_door;
  unknown_door.door_id = static_cast<DoorId>(catalog.venue(0).NumDoors());
  EXPECT_EQ(catalog.ApplyAtiUpdate(unknown_door).status().code(),
            StatusCode::kNotFound);

  AtiUpdate zero_length;
  zero_length.door_id = 0;
  zero_length.intervals = {TimeInterval{3600, 3600}};
  EXPECT_EQ(catalog.ApplyAtiUpdate(zero_length).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(catalog.epoch(0), 0u);
  const CatalogStats stats = catalog.Stats();
  EXPECT_EQ(stats.total_updates_applied, 0u);
  // The unknown-venue rejection has no shard to charge; only the two
  // that reached shard 0 count.
  EXPECT_EQ(stats.total_updates_rejected, 2u);

  AtiUpdate good;
  good.door_id = 0;
  good.intervals = {MakeInterval(8, 0, 20, 0)};
  const UpdateOutcome outcome =
      ValueOrDie(catalog.ApplyAtiUpdate(good), "ApplyAtiUpdate");
  EXPECT_EQ(outcome.epoch, 1u);
  EXPECT_EQ(catalog.epoch(0), 1u);
  EXPECT_EQ(catalog.Stats().total_updates_applied, 1u);
}

TEST(UpdateApplierTest, OldEpochStaysPinnedAndServable) {
  VenueCatalog catalog = MakeCatalog("itg-s");
  const std::shared_ptr<const VersionedGraph> pinned = catalog.world(0);
  const std::vector<double> bounds_before =
      pinned->graph().Ati(1).InteriorBoundaries();

  AtiUpdate update;
  update.door_id = 1;
  update.intervals = {MakeInterval(10, 0, 16, 0)};
  ValueOrDie(catalog.ApplyAtiUpdate(update), "ApplyAtiUpdate");

  // The pre-update world is untouched by the swap; the catalog serves
  // the new epoch.
  EXPECT_EQ(pinned->epoch(), 0u);
  EXPECT_EQ(catalog.world(0)->epoch(), 1u);
  EXPECT_NE(pinned.get(), catalog.world(0).get());
  EXPECT_EQ(pinned->graph().Ati(1).InteriorBoundaries(), bounds_before);
  EXPECT_TRUE(catalog.world(0)->graph().Ati(1).ContainsTimeOfDay(11 * 3600.0));
  EXPECT_FALSE(catalog.world(0)->graph().Ati(1).ContainsTimeOfDay(9 * 3600.0));
}

TEST(UpdateApplierTest, CarriesResidentSnapshotsOnSingleDoorUpdate) {
  // An evicting store is not needed; what matters is that snapshots are
  // RESIDENT before the update, so warm every interval first.
  RouterBuildOptions options;
  VenueCatalog catalog = MakeCatalog("itg-a+", options);
  const std::shared_ptr<const VersionedGraph> before = catalog.world(0);
  const SnapshotStore* store = before->router().snapshot_store();
  ASSERT_NE(store, nullptr);
  const size_t intervals_before = before->checkpoints().NumIntervals();
  ASSERT_GT(intervals_before, 4u) << "need a multi-checkpoint venue";
  for (size_t i = 0; i < intervals_before; ++i) store->Get(i);
  ASSERT_EQ(store->Stats().resident_snapshots, intervals_before);

  // Replace one door's hours with a window whose boundaries are new
  // checkpoint times; every interval not touching the changed door's
  // old/new applicability flips must carry.
  AtiUpdate update;
  update.door_id = 2;
  update.intervals = {MakeInterval(9, 17, 18, 43)};
  const UpdateOutcome outcome =
      ValueOrDie(catalog.ApplyAtiUpdate(update), "ApplyAtiUpdate");

  EXPECT_GT(outcome.snapshots_carried, 0u);
  EXPECT_GT(outcome.intervals_invalidated, 0u);
  // Carry + rebase + invalidate can never exceed what was resident.
  EXPECT_LE(outcome.snapshots_carried + outcome.snapshots_rebased +
                outcome.intervals_invalidated,
            intervals_before);

  // Every mask in the new store — carried, rebased, or rebuilt on
  // demand — must equal the from-scratch derivation for the new graph.
  const std::shared_ptr<const VersionedGraph> after = catalog.world(0);
  const SnapshotStore* new_store = after->router().snapshot_store();
  ASSERT_NE(new_store, nullptr);
  for (size_t i = 0; i < after->checkpoints().NumIntervals(); ++i) {
    const std::shared_ptr<const GraphSnapshot> got = new_store->Get(i);
    const GraphSnapshot expect =
        BuildSnapshot(after->graph(), after->checkpoints(), i);
    EXPECT_EQ(got->interval_index, i);
    EXPECT_TRUE(got->open == expect.open) << "interval " << i;
    EXPECT_EQ(got->open_door_count, expect.open_door_count)
        << "interval " << i;
  }
}

TEST(SnapshotStoreTest, InvalidateIntervalsDropsExactlyTheListed) {
  Venue venue = MakeVariedVenue();
  ItGraph graph = ValueOrDie(ItGraph::Build(venue), "ItGraph::Build");
  const CheckpointSet cps = CheckpointSet::FromGraph(graph);
  SnapshotStore store(graph, cps);
  const size_t n = cps.NumIntervals();
  ASSERT_GT(n, 3u);
  for (size_t i = 0; i < n; ++i) store.Get(i);
  ASSERT_EQ(store.Stats().resident_snapshots, n);

  // Out-of-range and duplicate entries are ignored; each listed
  // resident interval drops exactly once.
  const std::shared_ptr<const GraphSnapshot> pinned = store.Get(1);
  EXPECT_EQ(store.InvalidateIntervals({1, 3, 3, n + 7}), 2u);
  CacheStatsSnapshot stats = store.Stats();
  EXPECT_EQ(stats.resident_snapshots, n - 2);
  EXPECT_EQ(stats.intervals_invalidated, 2u);

  // The pinned shared_ptr survives the drop, and a re-Get rebuilds a
  // mask identical to the from-scratch derivation.
  EXPECT_TRUE(pinned->open == BuildSnapshot(graph, cps, 1).open);
  const std::shared_ptr<const GraphSnapshot> rebuilt = store.Get(1);
  EXPECT_TRUE(rebuilt->open == BuildSnapshot(graph, cps, 1).open);
  EXPECT_EQ(store.Stats().resident_snapshots, n - 1);
}

// The acceptance property: after N random online updates — including a
// midnight-wrapping replacement and one landing exactly on an existing
// checkpoint — a 200-query workload answers bit-identically to a
// catalog rebuilt from scratch on the mutated venues.
TEST(RebuildEquivalenceTest, OnlineUpdatesMatchFromScratchRebuild) {
  const char* const strategies[] = {"itg-s", "itg-a+", "snap"};
  FleetConfig fleet_config;
  fleet_config.num_venues = 3;
  fleet_config.seed = 21;
  fleet_config.min_floors = 1;
  fleet_config.max_floors = 2;
  std::vector<Venue> fleet =
      ValueOrDie(GenerateVenueFleet(fleet_config), "GenerateVenueFleet");

  VenueCatalog live;
  for (size_t i = 0; i < fleet.size(); ++i) {
    ValueOrDie(live.AddVenue(std::move(fleet[i]), strategies[i]),
               strategies[i]);
  }

  // Two deterministic edge cases first. #1: a midnight-wrapping
  // replacement (22:00 -> 02:00, split by normalisation). #2: a window
  // opening exactly on an existing checkpoint of venue 1.
  AtiUpdate wrap;
  wrap.venue_id = 0;
  wrap.door_id = 4;
  wrap.intervals = {TimeInterval{22 * 3600.0, 2 * 3600.0}};
  ValueOrDie(live.ApplyAtiUpdate(wrap), "wrap update");

  const std::vector<double>& cps1 = live.world(1)->checkpoints().times();
  ASSERT_FALSE(cps1.empty());
  AtiUpdate on_checkpoint;
  on_checkpoint.venue_id = 1;
  on_checkpoint.door_id = 2;
  on_checkpoint.intervals = {
      TimeInterval{cps1.front(), cps1.front() + 3 * 3600.0}};
  ValueOrDie(live.ApplyAtiUpdate(on_checkpoint), "on-checkpoint update");

  // Then a random stream across the fleet.
  UpdateStreamConfig stream_config;
  stream_config.num_updates = 30;
  stream_config.seed = 33;
  const std::vector<TimedAtiUpdate> stream =
      ValueOrDie(GenerateUpdateStream(live, stream_config), "stream");
  for (const TimedAtiUpdate& timed : stream) {
    ValueOrDie(live.ApplyAtiUpdate(timed.update), "stream update");
  }

  // From-scratch control: copy each mutated venue out of the live
  // catalog and rebuild under the same strategy.
  VenueCatalog rebuilt;
  for (size_t i = 0; i < live.NumVenues(); ++i) {
    Venue copy = live.venue(static_cast<VenueId>(i));
    ValueOrDie(rebuilt.AddVenue(std::move(copy), strategies[i]),
               strategies[i]);
    EXPECT_EQ(rebuilt.world(static_cast<VenueId>(i))->epoch(), 0u);
  }

  MultiVenueWorkloadConfig workload_config;
  workload_config.num_requests = 200;
  workload_config.seed = 77;
  workload_config.pairs_per_venue = 5;
  // Route through the snapshot store so carried snapshots are on the
  // compared path.
  workload_config.options.use_snapshot_cache = true;
  const std::vector<QueryRequest> workload = ValueOrDie(
      GenerateMultiVenueWorkload(live, workload_config), "workload");

  ShardedRouter live_router(live);
  ShardedRouter rebuilt_router(rebuilt);
  QueryContext live_context, rebuilt_context;
  size_t found = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    const StatusOr<QueryResult> a = live_router.Route(workload[i],
                                                      &live_context);
    const StatusOr<QueryResult> b =
        rebuilt_router.Route(workload[i], &rebuilt_context);
    ExpectSameAnswer(a, b, i);
    if (a.ok() && a->found) ++found;
  }
  EXPECT_GT(found, 0u) << "workload found no routes; test is vacuous";
  EXPECT_GT(live.Stats().total_updates_applied, 30u);
}

}  // namespace
}  // namespace itspq

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "venue/venue.h"

namespace itspq {
namespace {

// Two rooms side by side sharing a wall at x = 10, plus a hall above.
//
//   +--------+--------+
//   |  hall (y 10..20) |
//   +---d1---+---d2---+
//   | room a | room b |
//   +--------+--------+
Venue MakeTinyVenue() {
  Venue::Builder builder;
  const PartitionId a = builder.AddPartition(Rect{0, 0, 10, 10}, 0);
  const PartitionId b = builder.AddPartition(Rect{10, 0, 20, 10}, 0);
  const PartitionId hall = builder.AddPartition(Rect{0, 10, 20, 20}, 0);
  builder.AddDoor(Point2d{5, 10}, 0, a, hall);
  builder.AddDoor(Point2d{15, 10}, 0, b, hall);
  auto venue = std::move(builder).Build();
  EXPECT_TRUE(venue.ok());
  return *std::move(venue);
}

TEST(VenueBuilderTest, BuildsAndIndexes) {
  const Venue venue = MakeTinyVenue();
  EXPECT_EQ(venue.NumPartitions(), 3u);
  EXPECT_EQ(venue.NumDoors(), 2u);
  EXPECT_EQ(venue.DoorsOf(0).size(), 1u);
  EXPECT_EQ(venue.DoorsOf(2).size(), 2u);  // the hall touches both doors
  EXPECT_GT(venue.MemoryUsage(), 0u);
}

TEST(VenueBuilderTest, RejectsBadInput) {
  {
    Venue::Builder builder;
    builder.AddPartition(Rect{0, 0, 10, 0}, 0);  // degenerate
    EXPECT_FALSE(std::move(builder).Build().ok());
  }
  {
    Venue::Builder builder;
    const PartitionId a = builder.AddPartition(Rect{0, 0, 10, 10}, 0);
    builder.AddDoor(Point2d{5, 5}, 0, a, a);  // self-loop
    EXPECT_FALSE(std::move(builder).Build().ok());
  }
  {
    Venue::Builder builder;
    const PartitionId a = builder.AddPartition(Rect{0, 0, 10, 10}, 0);
    builder.AddDoor(Point2d{5, 5}, 0, a, 7);  // unknown partition
    EXPECT_FALSE(std::move(builder).Build().ok());
  }
}

TEST(VenueTest, LocateAllInterior) {
  const Venue venue = MakeTinyVenue();
  const auto in_a = venue.LocateAll(IndoorPoint{{3, 3}, 0});
  ASSERT_EQ(in_a.size(), 1u);
  EXPECT_EQ(in_a[0], 0);
  // Wrong floor: nowhere.
  EXPECT_TRUE(venue.LocateAll(IndoorPoint{{3, 3}, 1}).empty());
  // Outside the footprint entirely.
  EXPECT_TRUE(venue.LocateAll(IndoorPoint{{50, 50}, 0}).empty());
}

TEST(VenueTest, LocateAllOnSharedBoundaryReturnsBoth) {
  const Venue venue = MakeTinyVenue();
  auto shared = venue.LocateAll(IndoorPoint{{10, 5}, 0});  // wall a|b
  std::sort(shared.begin(), shared.end());
  ASSERT_EQ(shared.size(), 2u);
  EXPECT_EQ(shared[0], 0);
  EXPECT_EQ(shared[1], 1);
}

TEST(VenueTest, DistanceMatrixIsEuclideanAndSymmetric) {
  const Venue venue = MakeTinyVenue();
  const DistanceMatrix& dm = venue.distance_matrix(2);  // hall, 2 doors
  ASSERT_EQ(dm.NumDoors(), 2u);
  EXPECT_DOUBLE_EQ(dm.DistanceUnchecked(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(dm.DistanceUnchecked(1, 0), 10.0);
  EXPECT_DOUBLE_EQ(dm.DistanceUnchecked(0, 0), 0.0);
}

TEST(VenueBuilderTest, SetDoorAtiValidatesDoorId) {
  Venue::Builder builder = Venue::Builder::FromVenue(MakeTinyVenue());
  EXPECT_TRUE(builder.SetDoorAti(0, {MakeInterval(8, 0, 20, 0)}).ok());
  EXPECT_FALSE(builder.SetDoorAti(99, {}).ok());
  auto venue = std::move(builder).Build();
  ASSERT_TRUE(venue.ok());
  EXPECT_EQ(venue->door(0).ati_intervals.size(), 1u);
  EXPECT_TRUE(venue->door(1).ati_intervals.empty());
}

TEST(VenueBuilderTest, FromVenueRoundTrips) {
  const Venue original = MakeTinyVenue();
  auto copy = std::move(Venue::Builder::FromVenue(original)).Build();
  ASSERT_TRUE(copy.ok());
  EXPECT_EQ(copy->NumPartitions(), original.NumPartitions());
  EXPECT_EQ(copy->NumDoors(), original.NumDoors());
  EXPECT_DOUBLE_EQ(copy->distance_matrix(2).DistanceUnchecked(0, 1),
                   original.distance_matrix(2).DistanceUnchecked(0, 1));
}

}  // namespace
}  // namespace itspq

// The multi-venue serving layer: VenueCatalog shard assembly,
// ShardedRouter dispatch by QueryRequest::venue_id, batch fan-out over
// heterogeneous shards, the CatalogStats report, QueryContext reuse
// across routers/strategies/venues, and an 8-thread hammer over one
// shared ShardedRouter (the test the tsan CI preset exists for).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/time.h"
#include "gen/workload_gen.h"
#include "query/registry.h"
#include "query/router.h"
#include "query/sharded_router.h"
#include "query/venue_catalog.h"

namespace itspq {
namespace {

const char* const kShardStrategies[] = {"itg-s", "itg-a+", "snap"};

// Catalog/workload construction runs before the assertions under test;
// a half-built fixture would only resurface as undefined behavior
// later, so fail loudly with the status instead.
template <typename T>
T ValueOrDie(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    ADD_FAILURE() << what << ": " << value.status().ToString();
    std::abort();
  }
  return *std::move(value);
}

// Three heterogeneous venues (different floor counts, shop densities,
// checkpoint pools), each behind a different strategy.
VenueCatalog MakeCatalog(uint64_t seed = 7) {
  FleetConfig config;
  config.num_venues = 3;
  config.seed = seed;
  config.min_floors = 1;
  config.max_floors = 2;
  config.min_shop_rows = 2;
  config.max_shop_rows = 3;
  std::vector<Venue> fleet =
      ValueOrDie(GenerateVenueFleet(config), "GenerateVenueFleet");

  VenueCatalog catalog;
  for (size_t i = 0; i < fleet.size(); ++i) {
    const VenueId id = ValueOrDie(
        catalog.AddVenue(std::move(fleet[i]), kShardStrategies[i]),
        kShardStrategies[i]);
    EXPECT_EQ(id, static_cast<VenueId>(i));
  }
  return catalog;
}

std::vector<QueryRequest> MakeWorkload(const VenueCatalog& catalog,
                                       int num_requests = 60,
                                       uint64_t seed = 99) {
  MultiVenueWorkloadConfig config;
  config.num_requests = num_requests;
  config.seed = seed;
  config.pairs_per_venue = 4;
  return ValueOrDie(GenerateMultiVenueWorkload(catalog, config),
                    "GenerateMultiVenueWorkload");
}

TEST(VenueCatalogTest, AddVenueBuildsShardsAndLabels) {
  FleetConfig config;
  config.num_venues = 2;
  config.min_floors = 1;
  config.max_floors = 1;
  auto fleet = GenerateVenueFleet(config);
  ASSERT_TRUE(fleet.ok());

  VenueCatalog catalog;
  EXPECT_EQ(catalog.NumVenues(), 0u);
  EXPECT_FALSE(catalog.Contains(0));

  auto first = catalog.AddVenue(std::move((*fleet)[0]), "itg-s", "flagship");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0);
  EXPECT_EQ(catalog.label(0), "flagship");
  EXPECT_EQ(catalog.router(0).name(), "itg-s");

  auto second = catalog.AddVenue(std::move((*fleet)[1]), "snap");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 1);
  EXPECT_EQ(catalog.label(1), "venue-1");  // default label
  EXPECT_EQ(catalog.router(1).name(), "snap");

  EXPECT_EQ(catalog.NumVenues(), 2u);
  EXPECT_TRUE(catalog.Contains(0));
  EXPECT_TRUE(catalog.Contains(1));
  EXPECT_FALSE(catalog.Contains(2));
  EXPECT_FALSE(catalog.Contains(-1));
  // Each shard's graph is compiled from that shard's venue.
  EXPECT_EQ(&catalog.graph(0).venue(), &catalog.venue(0));
  EXPECT_EQ(&catalog.graph(1).venue(), &catalog.venue(1));
  // Heterogeneous shards: the venues are genuinely different.
  EXPECT_NE(catalog.venue(0).NumDoors(), 0u);
}

TEST(VenueCatalogTest, AddVenueUnknownStrategyLeavesCatalogUnchanged) {
  FleetConfig config;
  config.num_venues = 3;
  config.min_floors = 1;
  config.max_floors = 1;
  auto fleet = GenerateVenueFleet(config);
  ASSERT_TRUE(fleet.ok());

  VenueCatalog catalog;
  auto id = catalog.AddVenue(std::move((*fleet)[0]), "no-such-strategy");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.NumVenues(), 0u);
  EXPECT_FALSE(catalog.Contains(0));

  // A failed add burns no id: subsequent ids stay dense from 0.
  auto first = catalog.AddVenue(std::move((*fleet)[1]), "itg-s");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0);
  EXPECT_EQ(catalog.NumVenues(), 1u);

  // A bad snapshot-store policy is caught before the shard lands too.
  RouterBuildOptions bad_policy;
  bad_policy.snapshot_cache.policy = "no-such-policy";
  auto rejected =
      catalog.AddVenue(std::move((*fleet)[2]), "itg-a+", "", bad_policy);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.NumVenues(), 1u);
  EXPECT_EQ(catalog.label(0), "venue-0");
  EXPECT_FALSE(catalog.Contains(1));
}

TEST(ShardedRouterTest, DispatchesByVenueId) {
  VenueCatalog catalog = MakeCatalog();
  ShardedRouter sharded(catalog);
  EXPECT_FALSE(sharded.has_graph());
  EXPECT_EQ(sharded.name(), "sharded");

  QueryContext sharded_context, direct_context;
  for (const QueryRequest& request : MakeWorkload(catalog)) {
    auto via_shard = sharded.Route(request, &sharded_context);
    auto direct =
        catalog.router(request.venue_id).Route(request, &direct_context);
    ASSERT_TRUE(via_shard.ok());
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(via_shard->found, direct->found);
    if (via_shard->found) {
      EXPECT_NEAR(via_shard->path.length_m(), direct->path.length_m(), 1e-9);
    }
  }
}

TEST(ShardedRouterTest, RejectsUnknownVenueIds) {
  VenueCatalog catalog = MakeCatalog();
  ShardedRouter sharded(catalog);
  QueryContext context;
  QueryRequest request = MakeWorkload(catalog, 1)[0];

  request.venue_id = -1;
  EXPECT_EQ(sharded.Route(request, &context).status().code(),
            StatusCode::kNotFound);
  request.venue_id = static_cast<VenueId>(catalog.NumVenues());
  EXPECT_EQ(sharded.Route(request, &context).status().code(),
            StatusCode::kNotFound);

  VenueCatalog empty;
  ShardedRouter empty_sharded(empty);
  request.venue_id = 0;
  EXPECT_EQ(empty_sharded.Route(request, &context).status().code(),
            StatusCode::kNotFound);
}

TEST(ShardedRouterTest, RouteBatchFansOutAcrossShards) {
  VenueCatalog catalog = MakeCatalog();
  ShardedRouter sharded(catalog);
  const std::vector<QueryRequest> requests = MakeWorkload(catalog, 48);

  // Reference answers straight off the shard routers.
  QueryContext context;
  std::vector<StatusOr<QueryResult>> direct;
  for (const QueryRequest& request : requests) {
    direct.push_back(
        catalog.router(request.venue_id).Route(request, &context));
  }

  BatchOptions threaded;
  threaded.num_threads = 4;
  const auto batched = sharded.RouteBatch(requests, threaded);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(batched[i].ok(), direct[i].ok()) << i;
    if (!batched[i].ok()) continue;
    EXPECT_EQ(batched[i]->found, direct[i]->found) << i;
    if (batched[i]->found) {
      EXPECT_NEAR(batched[i]->path.length_m(), direct[i]->path.length_m(),
                  1e-9)
          << i;
    }
  }
}

TEST(VenueCatalogTest, StatsCountTrafficPerShardAndAggregate) {
  VenueCatalog catalog = MakeCatalog();
  ShardedRouter sharded(catalog);

  CatalogStats before = sharded.catalog().Stats();
  ASSERT_EQ(before.shards.size(), 3u);
  EXPECT_EQ(before.total_queries, 0u);
  EXPECT_EQ(before.total_found, 0u);
  EXPECT_EQ(before.total_errors, 0u);
  for (const ShardStats& s : before.shards) {
    EXPECT_EQ(s.queries_served, 0u);
    EXPECT_GT(s.memory_bytes, 0u);  // venue + graph are resident up front
  }

  // Route a workload, tracking the expected per-shard tallies from the
  // results themselves; inject one per-request error into shard 1.
  std::vector<QueryRequest> requests = MakeWorkload(catalog, 40);
  requests[5].venue_id = 1;
  requests[5].source = IndoorPoint{{1e7, 1e7}, 0};  // outside every venue
  // Exercise shard 1's snapshot cache (itg-a+ reads it when asked).
  for (QueryRequest& request : requests) {
    if (request.venue_id == 1) request.options.use_snapshot_cache = true;
  }

  std::vector<size_t> expect_queries(3, 0), expect_found(3, 0),
      expect_not_found(3, 0), expect_errors(3, 0);
  QueryContext context;
  for (const QueryRequest& request : requests) {
    const size_t shard = static_cast<size_t>(request.venue_id);
    ++expect_queries[shard];
    auto result = sharded.Route(request, &context);
    if (!result.ok()) {
      ++expect_errors[shard];
    } else if (result->found) {
      ++expect_found[shard];
    } else {
      ++expect_not_found[shard];
    }
  }

  CatalogStats after = sharded.catalog().Stats();
  size_t sum_queries = 0;
  for (size_t i = 0; i < 3; ++i) {
    const ShardStats& s = after.shards[i];
    EXPECT_EQ(s.venue_id, static_cast<VenueId>(i));
    EXPECT_EQ(s.strategy, kShardStrategies[i]);
    EXPECT_EQ(s.queries_served, expect_queries[i]) << i;
    EXPECT_EQ(s.routes_found, expect_found[i]) << i;
    EXPECT_EQ(s.routes_not_found, expect_not_found[i]) << i;
    EXPECT_EQ(s.route_errors, expect_errors[i]) << i;
    // The reconciliation contract: every dispatched query lands in
    // exactly one outcome counter — no path bumps queries_served
    // without also bumping found, not-found, or errors.
    EXPECT_EQ(s.queries_served,
              s.routes_found + s.routes_not_found + s.route_errors)
        << i;
    sum_queries += s.queries_served;
  }
  EXPECT_EQ(expect_errors[1], 1u);
  EXPECT_EQ(after.total_queries, sum_queries);
  EXPECT_EQ(after.total_queries, requests.size());
  EXPECT_EQ(after.total_queries,
            after.total_found + after.total_not_found + after.total_errors);
  // The itg-a+ shard derived reduced graphs through its shared store,
  // and the store's counters thread through ShardStats.
  EXPECT_GT(after.shards[1].snapshot_builds, 0u);
  EXPECT_EQ(after.shards[1].snapshot_builds, after.shards[1].cache.builds());
  EXPECT_EQ(after.shards[1].cache.policy, "keep-all");  // the default
  EXPECT_EQ(after.shards[1].cache.misses, after.shards[1].cache.builds());
  EXPECT_EQ(after.shards[1].cache.evictions, 0u);  // unbudgeted
  EXPECT_GT(after.shards[1].cache.resident_bytes, 0u);
  // The ntv-free fleet aggregates into the catalog-wide cache totals.
  EXPECT_GE(after.total_snapshot_builds, after.shards[1].snapshot_builds);
  EXPECT_EQ(after.total_cache.builds(), after.total_snapshot_builds);
  EXPECT_GE(after.total_cache.resident_bytes,
            after.shards[1].cache.resident_bytes);
  EXPECT_GT(after.total_memory_bytes, 0u);
}

// A catalog-wide snapshot budget split across lru shards: per-shard
// stores evict under their slice, and answers stay identical to the
// unbudgeted catalog.
TEST(VenueCatalogTest, ApportionSnapshotBudgetSqueezesShardsSafely) {
  FleetConfig config;
  config.num_venues = 3;
  config.seed = 7;
  config.min_floors = 1;
  config.max_floors = 2;
  config.min_shop_rows = 2;
  config.max_shop_rows = 3;
  std::vector<Venue> fleet_a =
      ValueOrDie(GenerateVenueFleet(config), "GenerateVenueFleet");
  std::vector<Venue> fleet_b =
      ValueOrDie(GenerateVenueFleet(config), "GenerateVenueFleet");

  RouterBuildOptions lru;
  lru.snapshot_cache.policy = "lru";
  VenueCatalog unbudgeted, budgeted;
  for (size_t i = 0; i < fleet_a.size(); ++i) {
    (void)ValueOrDie(unbudgeted.AddVenue(std::move(fleet_a[i]), "itg-a+"),
                     "add");
    (void)ValueOrDie(
        budgeted.AddVenue(std::move(fleet_b[i]), "itg-a+", "", lru), "add");
  }
  ShardedRouter reference(unbudgeted);
  ShardedRouter squeezed(budgeted);

  // ~2 snapshots of headroom per shard, measured off the largest shard
  // so the slice stays binding-but-satisfiable whatever the generator
  // produced: the lru stores must evict whenever a query walks a third
  // interval.
  size_t snap_bytes = 0;
  for (size_t i = 0; i < budgeted.NumVenues(); ++i) {
    const ItGraph& graph = budgeted.graph(static_cast<VenueId>(i));
    snap_bytes = std::max(
        snap_bytes,
        BuildSnapshot(graph, CheckpointSet::FromGraph(graph), 0).TotalBytes());
  }
  const size_t total_budget = budgeted.NumVenues() * 2 * snap_bytes;
  budgeted.ApportionSnapshotBudget(total_budget);

  std::vector<QueryRequest> requests = MakeWorkload(unbudgeted, 60);
  for (QueryRequest& request : requests) {
    request.options.use_snapshot_cache = true;
  }
  QueryContext ref_context, squeezed_context;
  for (const QueryRequest& request : requests) {
    auto expect = reference.Route(request, &ref_context);
    auto got = squeezed.Route(request, &squeezed_context);
    ASSERT_TRUE(expect.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(expect->found, got->found);
    if (expect->found && got->found) {
      EXPECT_EQ(expect->path.length_m(), got->path.length_m());
    }
  }

  const CatalogStats stats = budgeted.Stats();
  for (const ShardStats& s : stats.shards) {
    EXPECT_EQ(s.cache.budget_bytes, total_budget / stats.shards.size())
        << s.label;
    EXPECT_EQ(s.cache.policy, "lru") << s.label;
    EXPECT_LE(s.cache.resident_bytes, s.cache.budget_bytes) << s.label;
  }
  EXPECT_EQ(stats.total_cache.budget_bytes,
            (total_budget / stats.shards.size()) * stats.shards.size());
  EXPECT_EQ(stats.total_cache.policy, "lru");
}

// Apportioning fewer bytes than shards must stay a binding budget, not
// underflow to 0 ("unlimited"): each store gets the 1-byte floor, runs
// in keep-one-snapshot mode, and answers exactly like an unbudgeted
// catalog. Apportioning 0 is the documented way back to unlimited.
TEST(VenueCatalogTest, ApportionMoreShardsThanBytesDegradesGracefully) {
  RouterBuildOptions lru;
  lru.snapshot_cache.policy = "lru";
  VenueCatalog reference_catalog, squeezed_catalog;
  for (VenueCatalog* catalog : {&reference_catalog, &squeezed_catalog}) {
    FleetConfig config;
    config.num_venues = 3;
    config.seed = 7;
    config.min_floors = 1;
    config.max_floors = 2;
    std::vector<Venue> fleet =
        ValueOrDie(GenerateVenueFleet(config), "GenerateVenueFleet");
    for (Venue& venue : fleet) {
      (void)ValueOrDie(catalog->AddVenue(std::move(venue), "itg-a+", "", lru),
                       "AddVenue");
    }
  }
  // 2 bytes across 3 shards: the naive integer split would be 0.
  squeezed_catalog.ApportionSnapshotBudget(2);

  ShardedRouter reference(reference_catalog);
  ShardedRouter squeezed(squeezed_catalog);
  std::vector<QueryRequest> requests = MakeWorkload(reference_catalog, 48);
  for (QueryRequest& request : requests) {
    request.options.use_snapshot_cache = true;
  }
  QueryContext reference_context, squeezed_context;
  for (const QueryRequest& request : requests) {
    auto expect = reference.Route(request, &reference_context);
    auto got = squeezed.Route(request, &squeezed_context);
    ASSERT_TRUE(expect.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(expect->found, got->found);
    if (expect->found && got->found) {
      EXPECT_EQ(expect->path.length_m(), got->path.length_m());
    }
  }

  for (const ShardStats& s : squeezed_catalog.Stats().shards) {
    EXPECT_EQ(s.cache.budget_bytes, 1u) << s.label;
    EXPECT_LE(s.cache.resident_snapshots, 1u) << s.label;
  }

  // Back to unlimited: 0 propagates as "no budget" to every store.
  squeezed_catalog.ApportionSnapshotBudget(0);
  for (const ShardStats& s : squeezed_catalog.Stats().shards) {
    EXPECT_EQ(s.cache.budget_bytes, 0u) << s.label;
  }
}

// One QueryContext hopping across venues of different sizes and all
// five strategies (plus the composite) must answer exactly like fresh
// contexts: per-query scratch is fully re-initialised per Route call.
TEST(QueryContextReuseTest, OneContextAcrossRoutersStrategiesAndVenues) {
  VenueCatalog catalog = MakeCatalog();
  ShardedRouter sharded(catalog);
  const std::vector<QueryRequest> requests = MakeWorkload(catalog, 30);

  // Extra single-venue routers, all five strategies on shard 0's graph.
  std::vector<std::unique_ptr<Router>> extra;
  for (const char* name : {"itg-s", "itg-a", "itg-a+", "snap", "ntv"}) {
    auto router = MakeRouter(name, catalog.graph(0));
    ASSERT_TRUE(router.ok());
    extra.push_back(*std::move(router));
  }

  // The call schedule interleaves shards and strategies so consecutive
  // calls on the shared context see different graph sizes, checkpoint
  // sets, and search kinds.
  struct Call {
    const Router* router;
    QueryRequest request;
  };
  std::vector<Call> schedule;
  for (size_t i = 0; i < requests.size(); ++i) {
    schedule.push_back({&sharded, requests[i]});
    QueryRequest on_zero = requests[i];
    on_zero.venue_id = 0;
    schedule.push_back({extra[i % extra.size()].get(), on_zero});
  }

  // Reference: a fresh context for every call.
  std::vector<StatusOr<QueryResult>> fresh_answers;
  for (const Call& call : schedule) {
    QueryContext fresh;
    fresh_answers.push_back(call.router->Route(call.request, &fresh));
  }

  // One context straight through, then the same context again in
  // reverse order — any scratch leaking between graphs shows up as a
  // result drift.
  QueryContext shared;
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t k = 0; k < schedule.size(); ++k) {
      const size_t i = pass == 0 ? k : schedule.size() - 1 - k;
      auto result = schedule[i].router->Route(schedule[i].request, &shared);
      ASSERT_EQ(result.ok(), fresh_answers[i].ok()) << "call " << i;
      if (!result.ok()) continue;
      EXPECT_EQ(result->found, fresh_answers[i]->found) << "call " << i;
      if (result->found) {
        EXPECT_NEAR(result->path.length_m(),
                    fresh_answers[i]->path.length_m(), 1e-9)
            << "call " << i;
        EXPECT_EQ(result->path.steps().size(),
                  fresh_answers[i]->path.steps().size())
            << "call " << i;
      }
    }
  }
}

// The shard fan-out concurrency contract: one shared ShardedRouter,
// 8 threads, per-thread contexts, mixed snapshot-cache options. This is
// the test the tsan CI preset race-checks continuously.
TEST(ShardedRouterConcurrencyTest, SharedRouterSurvivesHammering) {
  VenueCatalog catalog = MakeCatalog();
  ShardedRouter sharded(catalog);
  const std::vector<QueryRequest> requests = MakeWorkload(catalog, 64);

  // Reference answers, single-threaded.
  QueryContext context;
  std::vector<bool> expect_found;
  std::vector<double> expect_length;
  for (const QueryRequest& request : requests) {
    auto r = sharded.Route(request, &context);
    ASSERT_TRUE(r.ok());
    expect_found.push_back(r->found);
    expect_length.push_back(r->found ? r->path.length_m() : -1.0);
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 2;
  std::atomic<int> mismatches{0};
  auto worker = [&](int thread_index) {
    QueryContext ctx;
    for (int round = 0; round < kRounds; ++round) {
      for (size_t i = 0; i < requests.size(); ++i) {
        QueryRequest request = requests[i];
        // Alternate the shared-cache path so every shard's
        // SnapshotStore sees concurrent first-build races.
        request.options.use_snapshot_cache =
            ((thread_index + round) % 2) == 0;
        auto r = sharded.Route(request, &ctx);
        if (!r.ok() || r->found != expect_found[i] ||
            (r->found &&
             std::abs(r->path.length_m() - expect_length[i]) > 1e-9)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Every request went through: 8 threads x 2 rounds + the reference
  // pass, all attributed to the shards the venue_ids name.
  const CatalogStats stats = catalog.Stats();
  EXPECT_EQ(stats.total_queries, requests.size() * (kThreads * kRounds + 1));
}

}  // namespace
}  // namespace itspq

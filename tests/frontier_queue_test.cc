// FrontierQueue in isolation: the three disciplines (binary heap,
// 4-ary heap, Dial bucket queue) against std::priority_queue on
// randomized workloads, plus the edge cases the search core leans on —
// duplicate keys, stale-entry skipping, +inf overflow entries, bucket
// ring wraparound/growth, and the NaN-rejection regression for the
// strict-weak-ordering hazard the old push_heap code carried.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "itgraph/frontier_queue.h"

namespace itspq {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

const FrontierQueue::Kind kAllKinds[] = {FrontierQueue::Kind::kBinaryHeap,
                                         FrontierQueue::Kind::kFourAryHeap,
                                         FrontierQueue::Kind::kBucketQueue};

void Reset(FrontierQueue& q, FrontierQueue::Kind kind,
           double bucket_width = 1.0) {
  if (kind == FrontierQueue::Kind::kBucketQueue) {
    q.ResetBuckets(bucket_width);
  } else {
    q.ResetHeap(kind);
  }
}

TEST(FrontierQueueTest, NanPushIsRejectedNotEnqueued) {
  for (FrontierQueue::Kind kind : kAllKinds) {
    FrontierQueue q;
    Reset(q, kind);
    ASSERT_TRUE(q.Push(3.0, 1));
    // Regression: a NaN fed to the old push_heap comparator violated
    // strict weak ordering and silently corrupted the heap. It must be
    // refused at the door, leaving the queue fully functional.
    EXPECT_FALSE(q.Push(std::nan(""), 2));
    EXPECT_EQ(q.rejected_nan(), 1u);
    EXPECT_EQ(q.size(), 1u);
    ASSERT_TRUE(q.Push(1.0, 3));

    double dist;
    uint32_t id;
    ASSERT_TRUE(q.Pop(&dist, &id));
    EXPECT_EQ(id, 3u);
    ASSERT_TRUE(q.Pop(&dist, &id));
    EXPECT_EQ(id, 1u);
    EXPECT_FALSE(q.Pop(&dist, &id));

    // The counter resets with the queue.
    Reset(q, kind);
    EXPECT_EQ(q.rejected_nan(), 0u);
  }
}

TEST(FrontierQueueTest, DuplicateKeysAllComeBack) {
  for (FrontierQueue::Kind kind : kAllKinds) {
    FrontierQueue q;
    Reset(q, kind);
    // The search never decrease-keys: a re-labelled door is pushed
    // again, so equal and duplicate keys must all surface.
    for (uint32_t id = 0; id < 8; ++id) ASSERT_TRUE(q.Push(5.0, id));
    ASSERT_TRUE(q.Push(2.0, 100));
    ASSERT_TRUE(q.Push(5.0, 3));  // duplicate (dist, id) pair

    double dist;
    uint32_t id;
    ASSERT_TRUE(q.Pop(&dist, &id));
    EXPECT_EQ(id, 100u);
    size_t fives = 0;
    while (q.Pop(&dist, &id)) {
      EXPECT_EQ(dist, 5.0);
      ++fives;
    }
    EXPECT_EQ(fives, 9u);
  }
}

// The caller-side stale-skip pattern: re-labelled doors leave their old
// entries queued; the settled check must be the only filter needed.
TEST(FrontierQueueTest, StaleEntriesAreSkippableBySettledCheck) {
  for (FrontierQueue::Kind kind : kAllKinds) {
    FrontierQueue q;
    Reset(q, kind);
    ASSERT_TRUE(q.Push(10.0, 7));
    ASSERT_TRUE(q.Push(4.0, 7));  // improvement; 10.0 entry is now stale
    ASSERT_TRUE(q.Push(6.0, 8));

    std::vector<bool> settled(16, false);
    std::vector<uint32_t> settle_order;
    double dist;
    uint32_t id;
    while (q.Pop(&dist, &id)) {
      if (settled[id]) continue;
      settled[id] = true;
      settle_order.push_back(id);
    }
    ASSERT_EQ(settle_order.size(), 2u);
    EXPECT_EQ(settle_order[0], 7u);
    EXPECT_EQ(settle_order[1], 8u);
  }
}

TEST(FrontierQueueTest, InfinityPopsAfterEveryFiniteEntry) {
  for (FrontierQueue::Kind kind : kAllKinds) {
    FrontierQueue q;
    Reset(q, kind);
    ASSERT_TRUE(q.Push(kInf, 1));
    ASSERT_TRUE(q.Push(2.0, 2));
    ASSERT_TRUE(q.Push(kInf, 3));
    ASSERT_TRUE(q.Push(700.0, 4));  // far bucket: forces ring growth too

    double dist;
    uint32_t id;
    ASSERT_TRUE(q.Pop(&dist, &id));
    EXPECT_EQ(id, 2u);
    ASSERT_TRUE(q.Pop(&dist, &id));
    EXPECT_EQ(id, 4u);
    for (int k = 0; k < 2; ++k) {
      ASSERT_TRUE(q.Pop(&dist, &id));
      EXPECT_TRUE(std::isinf(dist));
    }
    EXPECT_TRUE(q.Empty());
    EXPECT_EQ(q.MinBound(), kInf);
  }
}

TEST(FrontierQueueTest, BucketRingWrapsAndGrows) {
  FrontierQueue q;
  q.ResetBuckets(2.0);
  // Interleave pushes and pops so the drain cursor travels far past the
  // initial ring size (64 buckets), exercising modulo wraparound, and
  // occasionally push far ahead to force Grow() re-slotting.
  Rng rng(99);
  std::vector<double> pending;
  double frontier = 0.0;
  uint32_t next_id = 0;
  for (int round = 0; round < 400; ++round) {
    const double d = frontier + rng.UniformDouble(2.0, round % 50 == 7
                                                           ? 500.0
                                                           : 9.0);
    ASSERT_TRUE(q.Push(d, next_id++));
    pending.push_back(d);
    if (round % 2 == 1) {
      double dist;
      uint32_t id;
      ASSERT_TRUE(q.Pop(&dist, &id));
      // Bucket-granular order: pops never regress below the current
      // bucket floor, and MinBound stays a true lower bound.
      EXPECT_GE(dist, q.kind() == FrontierQueue::Kind::kBucketQueue
                          ? std::floor(frontier / 2.0) * 2.0
                          : frontier);
      frontier = std::max(frontier, std::floor(dist / 2.0) * 2.0);
      pending.erase(std::find(pending.begin(), pending.end(), dist));
      for (double p : pending) {
        EXPECT_LE(q.MinBound(), p);
      }
    }
  }
  // Drain; every remaining entry must surface exactly once.
  double dist;
  uint32_t id;
  while (q.Pop(&dist, &id)) {
    auto it = std::find(pending.begin(), pending.end(), dist);
    ASSERT_NE(it, pending.end());
    pending.erase(it);
  }
  EXPECT_TRUE(pending.empty());
}

// A miniature Dijkstra over random graphs: all three disciplines and
// std::priority_queue must produce identical distance arrays, and the
// two heaps identical (sorted) pop sequences.
TEST(FrontierQueueTest, RandomizedCrossCheckAgainstStdPriorityQueue) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    const size_t n = 60;
    // Random connected-ish graph with weights in [1, 4): every edge
    // weight >= 1, so a width-1 bucket queue is exact.
    std::vector<std::vector<std::pair<uint32_t, double>>> edges(n);
    for (size_t v = 1; v < n; ++v) {
      const uint32_t u = static_cast<uint32_t>(rng.UniformIndex(v));
      const double w = rng.UniformDouble(1.0, 4.0);
      edges[u].push_back({static_cast<uint32_t>(v), w});
      edges[v].push_back({u, w});
    }
    for (size_t extra = 0; extra < 2 * n; ++extra) {
      const uint32_t a = static_cast<uint32_t>(rng.UniformIndex(n));
      const uint32_t b = static_cast<uint32_t>(rng.UniformIndex(n));
      if (a == b) continue;
      const double w = rng.UniformDouble(1.0, 4.0);
      edges[a].push_back({b, w});
      edges[b].push_back({a, w});
    }

    auto dijkstra = [&](FrontierQueue::Kind kind,
                        std::vector<double>* popped) {
      std::vector<double> dist(n, kInf);
      std::vector<bool> settled(n, false);
      FrontierQueue q;
      Reset(q, kind);
      dist[0] = 0;
      q.Push(0, 0);
      double d;
      uint32_t u;
      while (q.Pop(&d, &u)) {
        if (settled[u]) continue;
        settled[u] = true;
        if (popped != nullptr) popped->push_back(d);
        for (const auto& [v, w] : edges[u]) {
          if (!settled[v] && d + w < dist[v]) {
            dist[v] = d + w;
            q.Push(dist[v], v);
          }
        }
      }
      return dist;
    };

    // Reference: std::priority_queue, the discipline the search used
    // before FrontierQueue existed.
    std::vector<double> ref_dist(n, kInf);
    {
      std::vector<bool> settled(n, false);
      using Entry = std::pair<double, uint32_t>;
      std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
      ref_dist[0] = 0;
      pq.push({0, 0});
      while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (settled[u]) continue;
        settled[u] = true;
        for (const auto& [v, w] : edges[u]) {
          if (!settled[v] && d + w < ref_dist[v]) {
            ref_dist[v] = d + w;
            pq.push({ref_dist[v], v});
          }
        }
      }
    }

    std::vector<double> pops2, pops4;
    EXPECT_EQ(dijkstra(FrontierQueue::Kind::kBinaryHeap, &pops2), ref_dist)
        << "seed " << seed;
    EXPECT_EQ(dijkstra(FrontierQueue::Kind::kFourAryHeap, &pops4), ref_dist)
        << "seed " << seed;
    EXPECT_EQ(dijkstra(FrontierQueue::Kind::kBucketQueue, nullptr), ref_dist)
        << "seed " << seed;

    // Heap pops are globally sorted, hence identical across arities.
    EXPECT_EQ(pops2, pops4) << "seed " << seed;
    EXPECT_TRUE(std::is_sorted(pops2.begin(), pops2.end()));
  }
}

}  // namespace
}  // namespace itspq

#include <gtest/gtest.h>

#include "common/time.h"
#include "itgraph/ati.h"

namespace itspq {
namespace {

TEST(AtiSetTest, HalfOpenBoundaries) {
  const AtiSet ati = *AtiSet::Create({MakeInterval(8, 0, 12, 0)});
  // [start, end): the opening instant is in, the closing instant is out.
  EXPECT_TRUE(ati.ContainsTimeOfDay(Instant::FromHMS(8).seconds()));
  EXPECT_TRUE(ati.ContainsTimeOfDay(Instant::FromHMS(11, 59, 59).seconds()));
  EXPECT_FALSE(ati.ContainsTimeOfDay(Instant::FromHMS(12).seconds()));
  EXPECT_FALSE(ati.ContainsTimeOfDay(Instant::FromHMS(7, 59, 59).seconds()));
}

TEST(AtiSetTest, MultipleIntervalsWithGap) {
  const AtiSet ati = *AtiSet::Create(
      {MakeInterval(8, 0, 12, 0), MakeInterval(13, 0, 18, 0)});
  EXPECT_TRUE(ati.ContainsTimeOfDay(Instant::FromHMS(9).seconds()));
  EXPECT_FALSE(ati.ContainsTimeOfDay(Instant::FromHMS(12, 30).seconds()));
  EXPECT_TRUE(ati.ContainsTimeOfDay(Instant::FromHMS(13).seconds()));
  EXPECT_FALSE(ati.ContainsTimeOfDay(Instant::FromHMS(18).seconds()));
}

TEST(AtiSetTest, MidnightWrapSplits) {
  // A bar open 22:00 -> 02:00 wraps past midnight.
  const AtiSet ati = *AtiSet::Create({MakeInterval(22, 0, 2, 0)});
  EXPECT_TRUE(ati.ContainsTimeOfDay(Instant::FromHMS(23).seconds()));
  EXPECT_TRUE(ati.ContainsTimeOfDay(0.0));
  EXPECT_TRUE(ati.ContainsTimeOfDay(Instant::FromHMS(1, 59, 59).seconds()));
  EXPECT_FALSE(ati.ContainsTimeOfDay(Instant::FromHMS(2).seconds()));
  EXPECT_FALSE(ati.ContainsTimeOfDay(Instant::FromHMS(12).seconds()));
  EXPECT_TRUE(ati.ContainsTimeOfDay(Instant::FromHMS(22).seconds()));
  // And the day boundary itself: 24:00 == 00:00, inside.
  EXPECT_TRUE(ati.ContainsTimeOfDay(kSecondsPerDay));
}

TEST(AtiSetTest, AbsoluteTimesWrapIntoTheDay) {
  const AtiSet ati = *AtiSet::Create({MakeInterval(8, 0, 12, 0)});
  // Tomorrow 09:00, projected from a long walk.
  EXPECT_TRUE(ati.ContainsTimeOfDay(kSecondsPerDay +
                                    Instant::FromHMS(9).seconds()));
  EXPECT_FALSE(ati.ContainsTimeOfDay(kSecondsPerDay +
                                     Instant::FromHMS(13).seconds()));
}

TEST(AtiSetTest, OverlappingIntervalsMerge) {
  const AtiSet ati = *AtiSet::Create(
      {MakeInterval(8, 0, 12, 0), MakeInterval(11, 0, 14, 0)});
  EXPECT_EQ(ati.NumIntervals(), 1u);
  EXPECT_TRUE(ati.ContainsTimeOfDay(Instant::FromHMS(12).seconds()));
  EXPECT_FALSE(ati.ContainsTimeOfDay(Instant::FromHMS(14).seconds()));
}

TEST(AtiSetTest, EmptyAndFullDayAreAlwaysOpen) {
  const AtiSet empty = *AtiSet::Create({});
  EXPECT_TRUE(empty.IsAlwaysOpen());
  EXPECT_TRUE(empty.ContainsTimeOfDay(Instant::FromHMS(3).seconds()));

  const AtiSet full = *AtiSet::Create({TimeInterval{0, kSecondsPerDay}});
  EXPECT_TRUE(full.IsAlwaysOpen());
  EXPECT_TRUE(full.InteriorBoundaries().empty());
}

TEST(AtiSetTest, StartAtDayEndNormalisesToMidnight) {
  // [24:00, 01:00) is [00:00, 01:00); no phantom 86400 boundary.
  const AtiSet ati =
      *AtiSet::Create({TimeInterval{kSecondsPerDay, 3600.0}});
  EXPECT_TRUE(ati.ContainsTimeOfDay(0.0));
  EXPECT_TRUE(ati.ContainsTimeOfDay(3599.0));
  EXPECT_FALSE(ati.ContainsTimeOfDay(3600.0));
  const std::vector<double> boundaries = ati.InteriorBoundaries();
  ASSERT_EQ(boundaries.size(), 1u);
  EXPECT_DOUBLE_EQ(boundaries[0], 3600.0);
}

TEST(AtiSetTest, RejectsMalformedIntervals) {
  EXPECT_FALSE(AtiSet::Create({TimeInterval{-1, 100}}).ok());
  EXPECT_FALSE(AtiSet::Create({TimeInterval{0, kSecondsPerDay + 1}}).ok());
  EXPECT_FALSE(AtiSet::Create({TimeInterval{300, 300}}).ok());
  // [24:00, 00:00) is the same empty instant as [00:00, 00:00).
  EXPECT_FALSE(AtiSet::Create({TimeInterval{kSecondsPerDay, 0}}).ok());
}

TEST(AtiSetTest, InteriorBoundariesExcludeDayEdges) {
  const AtiSet ati = *AtiSet::Create({MakeInterval(22, 0, 2, 0)});
  // Split into [0, 2:00) and [22:00, 24:00); boundaries at 0 and 86400
  // are not checkpoints.
  const std::vector<double> boundaries = ati.InteriorBoundaries();
  ASSERT_EQ(boundaries.size(), 2u);
  EXPECT_DOUBLE_EQ(boundaries[0], Instant::FromHMS(2).seconds());
  EXPECT_DOUBLE_EQ(boundaries[1], Instant::FromHMS(22).seconds());
}

}  // namespace
}  // namespace itspq

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "common/time.h"
#include "gen/ati_gen.h"
#include "gen/venue_gen.h"
#include "itgraph/d2d_index.h"
#include "itgraph/itgraph.h"
#include "query/registry.h"
#include "query/router.h"

namespace itspq {
namespace {

struct IndexWorld {
  std::unique_ptr<Venue> venue;
  std::unique_ptr<ItGraph> graph;
};

IndexWorld MakeWorld() {
  MallConfig config = MallConfig::Paper();
  config.floors = 1;
  auto mall = GenerateMall(config);
  EXPECT_TRUE(mall.ok());
  auto varied = AssignTemporalVariations(*mall, AtiGenConfig{});
  EXPECT_TRUE(varied.ok());
  IndexWorld world;
  world.venue = std::make_unique<Venue>(*std::move(varied));
  auto graph = ItGraph::Build(*world.venue);
  EXPECT_TRUE(graph.ok());
  world.graph = std::make_unique<ItGraph>(*std::move(graph));
  return world;
}

TEST(D2dIndexTest, MatchesStaticDijkstra) {
  IndexWorld world = MakeWorld();
  auto index = D2dIndex::Build(*world.graph);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->NumDoors(), world.graph->NumDoors());
  EXPECT_GT(index->MemoryUsage(), 0u);

  auto ntv = MakeRouter("ntv", *world.graph);
  ASSERT_TRUE(ntv.ok());
  const IndoorPoint ps{{100, 12}, 0};   // corridor band 0
  const IndoorPoint pt{{1200, 700}, 0};
  auto from_index = index->Query(ps, pt);
  auto from_dijkstra = (*ntv)->Route(
      QueryRequest{ps, pt, Instant(), QueryOptions()}, nullptr);
  ASSERT_TRUE(from_index.ok());
  ASSERT_TRUE(from_dijkstra.ok());
  ASSERT_TRUE(from_index->found);
  ASSERT_TRUE(from_dijkstra->found);
  EXPECT_NEAR(from_index->distance_m, from_dijkstra->path.length_m(), 1e-6);
}

TEST(D2dIndexTest, QueryErrorsOutsideVenue) {
  IndexWorld world = MakeWorld();
  auto index = D2dIndex::Build(*world.graph);
  ASSERT_TRUE(index.ok());
  auto answer = index->Query(IndoorPoint{{-50, -50}, 0},
                             IndoorPoint{{100, 12}, 0});
  EXPECT_FALSE(answer.ok());
}

TEST(D2dIndexTest, StalenessDayShape) {
  IndexWorld world = MakeWorld();
  auto index = D2dIndex::Build(*world.graph);
  ASSERT_TRUE(index.ok());

  // 3 am: every shop door is shut — all materialised entries are dead.
  const auto night = index->SampleStaleness(Instant::FromHMS(3), 40, 1);
  EXPECT_EQ(night.sampled, 40u);
  EXPECT_DOUBLE_EQ(night.InvalidFraction(), 1.0);

  // Noon: the mall is fully open — the index is still accurate.
  const auto noon = index->SampleStaleness(Instant::FromHMS(12), 40, 1);
  EXPECT_EQ(noon.sampled, 40u);
  EXPECT_DOUBLE_EQ(noon.InvalidFraction(), 0.0);
}

}  // namespace
}  // namespace itspq

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/time.h"
#include "gen/ati_gen.h"
#include "gen/query_gen.h"
#include "gen/venue_gen.h"
#include "gen/workload_gen.h"
#include "itgraph/checkpoints.h"
#include "itgraph/itgraph.h"
#include "query/registry.h"

namespace itspq {
namespace {

TEST(VenueGenTest, PaperCountsPerFloor) {
  MallConfig config = MallConfig::Paper();
  config.floors = 1;
  const auto venue = GenerateMall(config);
  ASSERT_TRUE(venue.ok());
  EXPECT_EQ(venue->NumPartitions(), 141u);
  EXPECT_EQ(venue->NumDoors(), 224u);
}

TEST(VenueGenTest, PaperCountsFiveFloors) {
  const auto venue = GenerateMall(MallConfig::Paper());
  ASSERT_TRUE(venue.ok());
  EXPECT_EQ(venue->NumPartitions(), 705u);
  // 5 x 224 horizontal doors + 2 staircases x 4 floor gaps.
  EXPECT_EQ(venue->NumDoors(), 1128u);
}

TEST(VenueGenTest, EveryDoorSitsInBothItsPartitions) {
  MallConfig config = MallConfig::Paper();
  config.floors = 2;
  const auto venue = GenerateMall(config);
  ASSERT_TRUE(venue.ok());
  for (size_t d = 0; d < venue->NumDoors(); ++d) {
    const Door& door = venue->door(static_cast<DoorId>(d));
    for (PartitionId p : door.partitions) {
      EXPECT_TRUE(venue->partition(p).rect.Contains(door.pos))
          << "door " << d << " outside partition " << p;
    }
  }
}

TEST(VenueGenTest, RejectsBadConfig) {
  MallConfig config;
  config.floors = 0;
  EXPECT_FALSE(GenerateMall(config).ok());
  config = MallConfig::Paper();
  config.corridor_height_m = 500;  // bands exceed the floor
  EXPECT_FALSE(GenerateMall(config).ok());
}

TEST(AtiGenTest, ChecksGraphCheckpointsMatchPool) {
  MallConfig config = MallConfig::Paper();
  config.floors = 1;
  const auto mall = GenerateMall(config);
  ASSERT_TRUE(mall.ok());

  AtiGenConfig ati_config;
  ati_config.checkpoint_count = 8;
  std::vector<double> pool;
  const auto varied = AssignTemporalVariations(*mall, ati_config, &pool);
  ASSERT_TRUE(varied.ok());
  ASSERT_EQ(pool.size(), 8u);

  const auto graph = ItGraph::Build(*varied);
  ASSERT_TRUE(graph.ok());
  const CheckpointSet cps = CheckpointSet::FromGraph(*graph);
  // Every derived checkpoint comes from the pool (some pool entries may
  // go unused on tiny venues, never the reverse).
  const std::set<double> pool_set(pool.begin(), pool.end());
  for (double t : cps.times()) {
    EXPECT_TRUE(pool_set.count(t)) << "checkpoint " << t << " not in pool";
  }
  EXPECT_LE(cps.NumCheckpoints(), pool.size());
  EXPECT_GE(cps.NumCheckpoints(), 2u);
}

TEST(AtiGenTest, ShopHoursShapeAndRejects) {
  MallConfig config = MallConfig::Paper();
  config.floors = 1;
  const auto mall = GenerateMall(config);
  ASSERT_TRUE(mall.ok());

  AtiGenConfig ati_config;
  const auto varied = AssignTemporalVariations(*mall, ati_config);
  ASSERT_TRUE(varied.ok());
  const auto graph = ItGraph::Build(*varied);
  ASSERT_TRUE(graph.ok());
  // All-horizontal mall (1 floor): every door varies, open at noon,
  // closed at 3 am.
  for (size_t d = 0; d < graph->NumDoors(); ++d) {
    const AtiSet& ati = graph->Ati(static_cast<DoorId>(d));
    EXPECT_FALSE(ati.IsAlwaysOpen());
    EXPECT_TRUE(ati.ContainsTimeOfDay(Instant::FromHMS(12).seconds()));
    EXPECT_FALSE(ati.ContainsTimeOfDay(Instant::FromHMS(3).seconds()));
  }

  AtiGenConfig bad;
  bad.checkpoint_count = 1;
  EXPECT_FALSE(AssignTemporalVariations(*mall, bad).ok());
}

TEST(AtiGenTest, StairDoorsStayAlwaysOpen) {
  MallConfig config = MallConfig::Paper();
  config.floors = 2;
  const auto mall = GenerateMall(config);
  ASSERT_TRUE(mall.ok());
  const auto varied = AssignTemporalVariations(*mall, AtiGenConfig{});
  ASSERT_TRUE(varied.ok());
  size_t vertical = 0;
  for (size_t d = 0; d < varied->NumDoors(); ++d) {
    const Door& door = varied->door(static_cast<DoorId>(d));
    const int fa = varied->partition(door.partitions[0]).floor;
    const int fb = varied->partition(door.partitions[1]).floor;
    if (fa != fb) {
      ++vertical;
      EXPECT_TRUE(door.ati_intervals.empty());
    }
  }
  EXPECT_EQ(vertical, 2u);  // two staircases, one floor gap
}

TEST(QueryGenTest, PairsLandInTheBand) {
  MallConfig config = MallConfig::Paper();
  config.floors = 2;
  const auto mall = GenerateMall(config);
  ASSERT_TRUE(mall.ok());
  const auto varied = AssignTemporalVariations(*mall, AtiGenConfig{});
  ASSERT_TRUE(varied.ok());
  const auto graph = ItGraph::Build(*varied);
  ASSERT_TRUE(graph.ok());

  QueryGenConfig query_config;
  query_config.s2t_distance = 900;
  query_config.tolerance = 90;
  query_config.num_pairs = 5;
  const auto queries = GenerateQueries(*graph, query_config);
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries->size(), 5u);
  for (const QueryInstance& q : *queries) {
    EXPECT_GE(q.s2t_m, 810);
    EXPECT_LE(q.s2t_m, 990);
    EXPECT_FALSE(varied->LocateAll(q.ps).empty());
    EXPECT_FALSE(varied->LocateAll(q.pt).empty());
  }
}

TEST(QueryGenTest, ImpossibleBandErrs) {
  MallConfig config = MallConfig::Paper();
  config.floors = 1;
  const auto mall = GenerateMall(config);
  ASSERT_TRUE(mall.ok());
  const auto graph = ItGraph::Build(*mall);
  ASSERT_TRUE(graph.ok());

  QueryGenConfig query_config;
  query_config.s2t_distance = 1e6;  // no such pair in a 1368 m mall
  query_config.tolerance = 10;
  query_config.max_source_attempts = 5;
  query_config.targets_per_source = 10;
  const auto queries = GenerateQueries(*graph, query_config);
  EXPECT_FALSE(queries.ok());
  EXPECT_EQ(queries.status().code(), StatusCode::kResourceExhausted);
}

TEST(ArrivalGenTest, OpenLoopArrivalsAreSortedSeededAndRateShaped) {
  ArrivalScheduleConfig config;
  config.offered_qps = 1000;
  config.seed = 11;
  const auto arrivals = GenerateOpenLoopArrivals(4096, config);
  ASSERT_TRUE(arrivals.ok());
  ASSERT_EQ(arrivals->size(), 4096u);

  double previous = 0;
  for (double t : *arrivals) {
    EXPECT_GE(t, previous);  // non-decreasing offsets
    previous = t;
  }
  // Mean inter-arrival ~ 1/qps: 4096 exponential gaps land well within
  // 20% of the offered rate.
  const double mean_gap = arrivals->back() / 4096.0;
  EXPECT_NEAR(mean_gap, 1.0 / config.offered_qps, 0.2 / config.offered_qps);

  // Same seed, same schedule; different seed, different schedule.
  const auto replay = GenerateOpenLoopArrivals(4096, config);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(*arrivals, *replay);
  config.seed = 12;
  const auto other = GenerateOpenLoopArrivals(4096, config);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(*arrivals, *other);

  EXPECT_TRUE(GenerateOpenLoopArrivals(0, config)->empty());
  config.offered_qps = 0;
  EXPECT_EQ(GenerateOpenLoopArrivals(8, config).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(GenerateOpenLoopArrivals(-1, ArrivalScheduleConfig())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(FamilyGenTest, GeneratesWellFormedRequestsForEveryFamily) {
  MallConfig mall_config = MallConfig::Paper();
  mall_config.floors = 1;
  const auto mall = GenerateMall(mall_config);
  ASSERT_TRUE(mall.ok());
  const auto venue = AssignTemporalVariations(*mall, AtiGenConfig());
  ASSERT_TRUE(venue.ok());
  const auto graph = ItGraph::Build(*venue);
  ASSERT_TRUE(graph.ok());

  FamilyGenConfig config;
  config.num_queries = 12;
  config.min_departure_seconds = 3600;
  config.max_departure_seconds = 7200;

  config.kind = QueryKind::kReachability;
  config.min_budget_seconds = 120;
  config.max_budget_seconds = 900;
  auto reach = GenerateFamilyQueries(*graph, config);
  ASSERT_TRUE(reach.ok());
  ASSERT_EQ(reach->size(), 12u);
  for (const QueryRequest& r : *reach) {
    EXPECT_EQ(r.kind, QueryKind::kReachability);
    EXPECT_GE(r.departure.seconds(), 3600);
    EXPECT_LE(r.departure.seconds(), 7200);
    EXPECT_GE(r.budget_seconds, 120);
    EXPECT_LE(r.budget_seconds, 900);
  }

  config.kind = QueryKind::kNearestFacility;
  config.min_k = 2;
  config.max_k = 4;
  config.num_facilities = 9;
  auto knn = GenerateFamilyQueries(*graph, config);
  ASSERT_TRUE(knn.ok());
  for (const QueryRequest& r : *knn) {
    EXPECT_GE(r.k, 2u);
    EXPECT_LE(r.k, 4u);
    ASSERT_EQ(r.facilities.size(), 9u);
    std::set<DoorId> distinct(r.facilities.begin(), r.facilities.end());
    EXPECT_EQ(distinct.size(), r.facilities.size()) << "duplicate facilities";
    for (DoorId d : r.facilities) {
      EXPECT_GE(d, 0);
      EXPECT_LT(static_cast<size_t>(d), graph->NumDoors());
    }
  }

  config.kind = QueryKind::kMultiStop;
  config.num_waypoints = 3;
  auto trips = GenerateFamilyQueries(*graph, config);
  ASSERT_TRUE(trips.ok());
  for (const QueryRequest& r : *trips) {
    EXPECT_EQ(r.waypoints.size(), 3u);
  }

  // Every generated request is routable as-is: no validation errors.
  const auto router = MakeRouter("itg-s", *graph);
  ASSERT_TRUE(router.ok());
  QueryContext context;
  for (const auto* batch : {&*reach, &*knn, &*trips}) {
    for (const QueryRequest& r : *batch) {
      EXPECT_TRUE((*router)->Route(r, &context).ok());
    }
  }
}

TEST(FamilyGenTest, RejectsBadConfigs) {
  MallConfig mall_config = MallConfig::Paper();
  mall_config.floors = 1;
  const auto mall = GenerateMall(mall_config);
  ASSERT_TRUE(mall.ok());
  const auto graph = ItGraph::Build(*mall);
  ASSERT_TRUE(graph.ok());

  FamilyGenConfig config;
  config.kind = QueryKind::kPointToPoint;  // wrong generator
  EXPECT_EQ(GenerateFamilyQueries(*graph, config).status().code(),
            StatusCode::kInvalidArgument);

  config.kind = QueryKind::kReachability;
  config.num_queries = 0;
  EXPECT_EQ(GenerateFamilyQueries(*graph, config).status().code(),
            StatusCode::kInvalidArgument);
  config.num_queries = 5;
  config.min_budget_seconds = 600;
  config.max_budget_seconds = 60;  // inverted range
  EXPECT_EQ(GenerateFamilyQueries(*graph, config).status().code(),
            StatusCode::kInvalidArgument);

  config = FamilyGenConfig();
  config.kind = QueryKind::kNearestFacility;
  config.min_k = 0;
  EXPECT_EQ(GenerateFamilyQueries(*graph, config).status().code(),
            StatusCode::kInvalidArgument);
  config.min_k = 1;
  config.num_facilities = 0;
  EXPECT_EQ(GenerateFamilyQueries(*graph, config).status().code(),
            StatusCode::kInvalidArgument);
  config.num_facilities = static_cast<int>(graph->NumDoors()) + 1;
  EXPECT_EQ(GenerateFamilyQueries(*graph, config).status().code(),
            StatusCode::kFailedPrecondition);

  config = FamilyGenConfig();
  config.kind = QueryKind::kMultiStop;
  config.num_waypoints = 0;
  EXPECT_EQ(GenerateFamilyQueries(*graph, config).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace itspq

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "common/memory_tracker.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"

namespace itspq {
namespace {

TEST(StatusTest, OkAndError) {
  EXPECT_TRUE(Status::Ok().ok());
  EXPECT_EQ(Status::Ok().ToString(), "OK");
  const Status err = InvalidArgumentError("bad door");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "INVALID_ARGUMENT: bad door");
}

TEST(StatusTest, ServingCodesRoundTrip) {
  const Status exhausted = ResourceExhaustedError("queue full");
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(exhausted.ToString(), "RESOURCE_EXHAUSTED: queue full");
  const Status late = DeadlineExceededError("50ms SLO blown");
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.ToString(), "DEADLINE_EXCEEDED: 50ms SLO blown");
  const Status gone = FailedPreconditionError("shut down");
  EXPECT_EQ(gone.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(gone.ToString(), "FAILED_PRECONDITION: shut down");
}

TEST(StatusOrTest, ValueAccess) {
  StatusOr<int> ok_value(41);
  ASSERT_TRUE(ok_value.ok());
  EXPECT_EQ(*ok_value, 41);
  *ok_value += 1;
  EXPECT_EQ(ok_value.value(), 42);

  StatusOr<int> err(NotFoundError("no route"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyPayload) {
  StatusOr<std::unique_ptr<int>> holder(std::make_unique<int>(7));
  ASSERT_TRUE(holder.ok());
  std::unique_ptr<int> taken = *std::move(holder);
  EXPECT_EQ(*taken, 7);
}

TEST(TimeTest, InstantFromHMS) {
  EXPECT_DOUBLE_EQ(Instant::FromHMS(12).seconds(), 43200.0);
  EXPECT_DOUBLE_EQ(Instant::FromHMS(8, 30).seconds(), 30600.0);
  EXPECT_DOUBLE_EQ(Instant::FromHMS(0, 0, 5).seconds(), 5.0);
}

TEST(TimeTest, WrapTimeOfDay) {
  EXPECT_DOUBLE_EQ(WrapTimeOfDay(0), 0.0);
  EXPECT_DOUBLE_EQ(WrapTimeOfDay(kSecondsPerDay), 0.0);
  EXPECT_DOUBLE_EQ(WrapTimeOfDay(kSecondsPerDay + 60), 60.0);
  EXPECT_DOUBLE_EQ(WrapTimeOfDay(-60), kSecondsPerDay - 60);
}

TEST(TimeTest, MakeInterval) {
  const TimeInterval iv = MakeInterval(8, 0, 12, 30);
  EXPECT_DOUBLE_EQ(iv.start, 28800.0);
  EXPECT_DOUBLE_EQ(iv.end, 45000.0);
}

TEST(RngTest, DeterministicAndInRange) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    const double va = a.UniformDouble(5, 9);
    EXPECT_DOUBLE_EQ(va, b.UniformDouble(5, 9));
    EXPECT_GE(va, 5);
    EXPECT_LT(va, 9);
  }
  Rng c(7);
  for (int i = 0; i < 100; ++i) {
    const int64_t v = c.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(MemoryTrackerTest, PeakTracksHighWaterMark) {
  MemoryTracker tracker;
  tracker.Add(100);
  tracker.Add(50);
  tracker.Release(120);
  tracker.Add(10);
  EXPECT_EQ(tracker.current(), 40u);
  EXPECT_EQ(tracker.peak(), 150u);
  tracker.Release(1000);  // saturates at zero
  EXPECT_EQ(tracker.current(), 0u);
}

TEST(FormatBytesTest, Units) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(5 * 1024 * 1024 + 256 * 1024), "5.2 MB");
}

}  // namespace
}  // namespace itspq

// The serving frontend: MakeQueryService validation, the end-to-end
// replay proof (500 Zipf queries served through QueryService are
// bit-identical to direct Router::Route calls), an 8-thread submit
// hammer the tsan CI preset race-checks, and the admission edge cases —
// backpressure, pre-expired and in-queue-expired deadlines, graceful
// drain, and late-submit rejection. start_paused makes the admission
// tests deterministic: requests queue up while dispatch is held, and
// Shutdown() performs the drain under test.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <future>
#include <limits>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "gen/query_gen.h"
#include "gen/workload_gen.h"
#include "query/router.h"
#include "query/venue_catalog.h"
#include "server/query_service.h"

namespace itspq {
namespace {

const char* const kShardStrategies[] = {"itg-s", "itg-a+", "snap"};

template <typename T>
T ValueOrDie(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    ADD_FAILURE() << what << ": " << value.status().ToString();
    std::abort();
  }
  return *std::move(value);
}

// Three heterogeneous venues behind three different strategies — the
// same fleet shape the sharding suite pins down.
VenueCatalog MakeCatalog(uint64_t seed = 7) {
  FleetConfig config;
  config.num_venues = 3;
  config.seed = seed;
  config.min_floors = 1;
  config.max_floors = 2;
  config.min_shop_rows = 2;
  config.max_shop_rows = 3;
  std::vector<Venue> fleet =
      ValueOrDie(GenerateVenueFleet(config), "GenerateVenueFleet");
  VenueCatalog catalog;
  for (size_t i = 0; i < fleet.size(); ++i) {
    (void)ValueOrDie(catalog.AddVenue(std::move(fleet[i]), kShardStrategies[i]),
                     kShardStrategies[i]);
  }
  return catalog;
}

std::vector<QueryRequest> MakeWorkload(const VenueCatalog& catalog,
                                       int num_requests, uint64_t seed = 99) {
  MultiVenueWorkloadConfig config;
  config.num_requests = num_requests;
  config.seed = seed;
  config.pairs_per_venue = 4;
  return ValueOrDie(GenerateMultiVenueWorkload(catalog, config),
                    "GenerateMultiVenueWorkload");
}

std::unique_ptr<QueryService> MakeService(ServiceOptions options,
                                          uint64_t seed = 7) {
  return ValueOrDie(MakeQueryService(MakeCatalog(seed), options),
                    "MakeQueryService");
}

// Bit-identical: same found flag and, when found, the exact same doubles
// in the exact same steps. Routing is deterministic, so the served
// answer must be indistinguishable from a direct call — EQ on doubles,
// not NEAR.
void ExpectBitIdentical(const QueryResult& served, const QueryResult& direct,
                        size_t index) {
  EXPECT_EQ(served.found, direct.found) << "request " << index;
  if (!served.found || !direct.found) return;
  EXPECT_EQ(served.path.length_m(), direct.path.length_m())
      << "request " << index;
  EXPECT_EQ(served.path.departure_seconds(), direct.path.departure_seconds())
      << "request " << index;
  ASSERT_EQ(served.path.steps().size(), direct.path.steps().size())
      << "request " << index;
  for (size_t s = 0; s < served.path.steps().size(); ++s) {
    EXPECT_EQ(served.path.steps()[s].door, direct.path.steps()[s].door)
        << "request " << index << " step " << s;
    EXPECT_EQ(served.path.steps()[s].cumulative_m,
              direct.path.steps()[s].cumulative_m)
        << "request " << index << " step " << s;
    EXPECT_EQ(served.path.steps()[s].arrival_seconds,
              direct.path.steps()[s].arrival_seconds)
        << "request " << index << " step " << s;
  }
}

TEST(MakeQueryServiceTest, ValidatesCatalogAndOptions) {
  VenueCatalog empty;
  auto no_venues = MakeQueryService(std::move(empty));
  ASSERT_FALSE(no_venues.ok());
  EXPECT_EQ(no_venues.status().code(), StatusCode::kFailedPrecondition);

  struct BadCase {
    const char* label;
    ServiceOptions options;
  };
  std::vector<BadCase> bad;
  bad.push_back({"zero capacity", {}});
  bad.back().options.queue_capacity = 0;
  bad.push_back({"zero workers", {}});
  bad.back().options.num_workers = 0;
  bad.push_back({"zero batch", {}});
  bad.back().options.max_batch = 0;
  bad.push_back({"negative wait", {}});
  bad.back().options.max_wait_micros = -1;
  bad.push_back({"infinite wait", {}});
  bad.back().options.max_wait_micros =
      std::numeric_limits<double>::infinity();
  bad.push_back({"negative deadline", {}});
  bad.back().options.default_deadline_micros = -1;
  for (BadCase& c : bad) {
    auto service = MakeQueryService(MakeCatalog(), c.options);
    ASSERT_FALSE(service.ok()) << c.label;
    EXPECT_EQ(service.status().code(), StatusCode::kInvalidArgument)
        << c.label;
  }

  auto service = MakeQueryService(MakeCatalog());
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->catalog().NumVenues(), 3u);
  (*service)->Shutdown();
}

// The end-to-end replay proof: record a 500-query Zipf workload, serve
// it through the full frontend (queue, workers, micro-batching), and
// check every served answer against Router::Route called directly on
// the owned catalog's shard routers.
TEST(QueryServiceReplayTest, ServedAnswersBitIdenticalToDirectRoute) {
  ServiceOptions options;
  options.queue_capacity = 600;  // admit the whole replay, no rejections
  options.num_workers = 3;
  options.max_batch = 16;
  std::unique_ptr<QueryService> service = MakeService(options);
  const std::vector<QueryRequest> requests =
      MakeWorkload(service->catalog(), 500);

  std::vector<std::future<StatusOr<QueryResult>>> futures;
  futures.reserve(requests.size());
  for (const QueryRequest& request : requests) {
    futures.push_back(service->Submit(request));
  }

  QueryContext direct_context;
  size_t found = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    StatusOr<QueryResult> served = futures[i].get();
    StatusOr<QueryResult> direct =
        service->catalog()
            .router(requests[i].venue_id)
            .Route(requests[i], &direct_context);
    ASSERT_TRUE(served.ok()) << "request " << i << ": "
                             << served.status().ToString();
    ASSERT_TRUE(direct.ok()) << "request " << i;
    ExpectBitIdentical(*served, *direct, i);
    if (served->found) ++found;
  }
  EXPECT_GT(found, 0u);

  service->Shutdown();
  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.submitted, requests.size());
  EXPECT_EQ(stats.admitted, requests.size());
  EXPECT_EQ(stats.served, requests.size());
  EXPECT_EQ(stats.served_found, found);
  EXPECT_EQ(stats.rejected_queue_full, 0u);
  EXPECT_EQ(stats.timed_out_in_queue + stats.timed_out_in_flight, 0u);
  EXPECT_EQ(stats.latency.total, stats.served);
  EXPECT_GT(stats.queue_high_water, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  // Every dispatched batch lands in the histogram, none above
  // max_batch, and the sizes sum back to the served count. The direct
  // comparison calls above hit the shard routers, not the composite
  // ShardedRouter, so the catalog traffic counters saw each request
  // exactly once — through the service.
  size_t dispatched = 0;
  ASSERT_EQ(stats.batch_size_counts.size(), options.max_batch + 1);
  for (size_t b = 1; b < stats.batch_size_counts.size(); ++b) {
    dispatched += b * stats.batch_size_counts[b];
  }
  EXPECT_EQ(dispatched, stats.served);
  EXPECT_EQ(stats.catalog.total_queries, stats.served);
}

// The submit-side concurrency contract: 8 threads hammer Submit on one
// shared service while the workers drain. Runs green under the TSan
// preset; every answer must match the single-threaded reference.
TEST(QueryServiceConcurrencyTest, EightThreadSubmitHammer) {
  ServiceOptions options;
  options.queue_capacity = 2048;  // 8 x 64 x 2 admitted even if workers lag
  options.num_workers = 3;
  options.max_batch = 8;
  std::unique_ptr<QueryService> service = MakeService(options);
  const std::vector<QueryRequest> requests =
      MakeWorkload(service->catalog(), 64);

  // Single-threaded reference, straight off the shard routers.
  QueryContext context;
  std::vector<StatusOr<QueryResult>> reference;
  for (const QueryRequest& request : requests) {
    reference.push_back(
        service->catalog().router(request.venue_id).Route(request, &context));
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 2;
  std::atomic<int> mismatches{0};
  auto worker = [&](int thread_index) {
    for (int round = 0; round < kRounds; ++round) {
      std::vector<std::future<StatusOr<QueryResult>>> futures;
      futures.reserve(requests.size());
      for (size_t i = 0; i < requests.size(); ++i) {
        QueryRequest request = requests[i];
        // Alternate the shared-cache path so the shard stores see
        // concurrent first-build races through the service too.
        request.options.use_snapshot_cache =
            ((thread_index + round) % 2) == 0;
        futures.push_back(service->Submit(request));
      }
      for (size_t i = 0; i < futures.size(); ++i) {
        StatusOr<QueryResult> served = futures[i].get();
        if (!served.ok() || !reference[i].ok() ||
            served->found != reference[i]->found ||
            (served->found &&
             served->path.length_m() != reference[i]->path.length_m())) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  service->Shutdown();
  const ServiceStats stats = service->Stats();
  const size_t total = requests.size() * kThreads * kRounds;
  EXPECT_EQ(stats.submitted, total);
  EXPECT_EQ(stats.served, total);  // capacity held: nothing rejected
  EXPECT_EQ(stats.rejected_queue_full, 0u);
  EXPECT_EQ(stats.latency.total, total);
}

TEST(QueryServiceAdmissionTest, QueueFullRejectsWithResourceExhausted) {
  ServiceOptions options;
  options.queue_capacity = 4;
  options.num_workers = 1;
  options.start_paused = true;  // hold dispatch so the queue really fills
  std::unique_ptr<QueryService> service = MakeService(options);
  const std::vector<QueryRequest> requests =
      MakeWorkload(service->catalog(), 5);

  std::vector<std::future<StatusOr<QueryResult>>> futures;
  for (const QueryRequest& request : requests) {
    futures.push_back(service->Submit(request));
  }

  // The fifth future bounced immediately — no worker involvement.
  ASSERT_EQ(futures[4].wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const StatusOr<QueryResult> bounced = futures[4].get();
  ASSERT_FALSE(bounced.ok());
  EXPECT_EQ(bounced.status().code(), StatusCode::kResourceExhausted);

  ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.submitted, 5u);
  EXPECT_EQ(stats.admitted, 4u);
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.queue_depth, 4u);
  EXPECT_EQ(stats.queue_high_water, 4u);

  // Backpressure is a signal, not a failure: the drain serves the four
  // admitted requests.
  service->Shutdown();
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(futures[i].get().ok()) << i;
  }
  stats = service->Stats();
  EXPECT_EQ(stats.served, 4u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(QueryServiceAdmissionTest, ExpiredDeadlineRejectedWithoutDispatch) {
  ServiceOptions options;
  options.start_paused = true;
  std::unique_ptr<QueryService> service = MakeService(options);
  const QueryRequest request = MakeWorkload(service->catalog(), 1)[0];

  // A non-positive deadline is dead on arrival — never enqueued, never
  // dispatched.
  std::future<StatusOr<QueryResult>> expired = service->Submit(request, 0);
  ASSERT_EQ(expired.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const StatusOr<QueryResult> result = expired.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  service->Shutdown();
  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.rejected_expired, 1u);
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.served, 0u);
  EXPECT_EQ(stats.batches, 0u);
  // The router never saw it.
  EXPECT_EQ(stats.catalog.total_queries, 0u);
}

TEST(QueryServiceAdmissionTest, DeadlineExpiringInQueueSkipsDispatch) {
  ServiceOptions options;
  options.start_paused = true;
  std::unique_ptr<QueryService> service = MakeService(options);
  const QueryRequest request = MakeWorkload(service->catalog(), 1)[0];

  // Admitted with a 2 ms deadline, then held paused well past it: the
  // drain must reject it at the pre-dispatch gate.
  std::future<StatusOr<QueryResult>> future = service->Submit(request, 2000);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service->Shutdown();

  const StatusOr<QueryResult> result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);

  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.admitted, 1u);
  EXPECT_EQ(stats.timed_out_in_queue, 1u);
  EXPECT_EQ(stats.served, 0u);
  EXPECT_EQ(stats.catalog.total_queries, 0u);
}

TEST(QueryServiceAdmissionTest, ShutdownDrainsThenRejectsLateSubmits) {
  ServiceOptions options;
  options.queue_capacity = 16;
  options.num_workers = 1;
  options.max_batch = 8;
  options.start_paused = true;
  std::unique_ptr<QueryService> service = MakeService(options);
  std::vector<QueryRequest> requests = MakeWorkload(service->catalog(), 8);

  std::vector<std::future<StatusOr<QueryResult>>> futures;
  for (const QueryRequest& request : requests) {
    futures.push_back(service->Submit(request));
  }

  // Shutdown lifts the pause and drains: every admitted request is
  // served before Shutdown returns.
  service->Shutdown();
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_TRUE(futures[i].get().ok()) << i;
  }

  // Late submits bounce without touching the queue.
  std::future<StatusOr<QueryResult>> late = service->Submit(requests[0]);
  ASSERT_EQ(late.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const StatusOr<QueryResult> rejected = late.get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);

  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.served, 8u);
  EXPECT_EQ(stats.rejected_shutdown, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
  // Shutdown is idempotent.
  service->Shutdown();
}

// Micro-batching shape: with one worker, a paused queue of 8 and
// max_batch = 3, the drain must dispatch coalesced batches of 3, 3, 2.
TEST(QueryServiceBatchingTest, DrainCoalescesUpToMaxBatch) {
  ServiceOptions options;
  options.num_workers = 1;
  options.max_batch = 3;
  options.start_paused = true;
  std::unique_ptr<QueryService> service = MakeService(options);
  const std::vector<QueryRequest> requests =
      MakeWorkload(service->catalog(), 8);

  std::vector<std::future<StatusOr<QueryResult>>> futures;
  for (const QueryRequest& request : requests) {
    futures.push_back(service->Submit(request));
  }
  service->Shutdown();
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());

  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.batches, 3u);
  ASSERT_EQ(stats.batch_size_counts.size(), 4u);
  EXPECT_EQ(stats.batch_size_counts[3], 2u);
  EXPECT_EQ(stats.batch_size_counts[2], 1u);
  EXPECT_EQ(stats.batch_size_counts[1], 0u);
}

// Resume() lifts start_paused without shutting down: the same service
// keeps serving afterwards.
TEST(QueryServiceBatchingTest, ResumeLiftsPausedDispatch) {
  ServiceOptions options;
  options.num_workers = 2;
  options.start_paused = true;
  std::unique_ptr<QueryService> service = MakeService(options);
  const std::vector<QueryRequest> requests =
      MakeWorkload(service->catalog(), 4);

  std::vector<std::future<StatusOr<QueryResult>>> futures;
  for (const QueryRequest& request : requests) {
    futures.push_back(service->Submit(request));
  }
  EXPECT_EQ(service->Stats().served, 0u);
  EXPECT_EQ(service->Stats().queue_depth, 4u);

  service->Resume();
  for (auto& future : futures) EXPECT_TRUE(future.get().ok());

  // Still accepting after the resume-drain.
  EXPECT_TRUE(service->Submit(requests[0]).get().ok());
  service->Shutdown();
  EXPECT_EQ(service->Stats().served, 5u);
}

// A NaN deadline used to slip through admission as "no deadline" —
// every Clock comparison against NaN reads false, so the request could
// neither expire nor be feasibility-checked. It is malformed input and
// must bounce as such, along with plain negative budgets.
TEST(QueryServiceAdmissionTest, NanAndNegativeDeadlinesRejectedAsInvalid) {
  ServiceOptions options;
  options.start_paused = true;
  std::unique_ptr<QueryService> service = MakeService(options);
  const QueryRequest request = MakeWorkload(service->catalog(), 1)[0];

  const double bad_deadlines[] = {std::nan(""), -1.0, -1e9,
                                  -std::numeric_limits<double>::infinity()};
  for (double deadline : bad_deadlines) {
    std::future<StatusOr<QueryResult>> future =
        service->Submit(request, deadline);
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << deadline;
    const StatusOr<QueryResult> result = future.get();
    ASSERT_FALSE(result.ok()) << deadline;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << deadline;
  }

  service->Shutdown();
  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.rejected_invalid, 4u);
  EXPECT_EQ(stats.rejected_expired, 0u);  // distinct from a 0 deadline
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.catalog.total_queries, 0u);
  // The accounting identity covers the new bucket.
  EXPECT_EQ(stats.submitted, stats.rejected_invalid);
}

TEST(QueryServiceAdmissionTest, UnknownQosClassRejectedAsInvalid) {
  ServiceOptions options;
  options.start_paused = true;
  std::unique_ptr<QueryService> service = MakeService(options);
  const QueryRequest request = MakeWorkload(service->catalog(), 1)[0];

  std::future<StatusOr<QueryResult>> future = service->Submit(
      request, 1000.0, static_cast<QosClass>(kNumQosClasses));
  const StatusOr<QueryResult> result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  service->Shutdown();
  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.rejected_invalid, 1u);
  EXPECT_EQ(stats.admitted, 0u);
}

// Displacement at queue limit: higher-class arrivals evict the
// youngest queued request of the lowest class strictly below them, and
// never touch their own class or above.
TEST(QueryServiceQosTest, FullQueueDisplacesLowestClassFirst) {
  ServiceOptions options;
  options.queue_capacity = 4;
  options.num_workers = 1;
  options.start_paused = true;
  std::unique_ptr<QueryService> service = MakeService(options);
  const std::vector<QueryRequest> requests =
      MakeWorkload(service->catalog(), 8);
  constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

  // Fill with background...
  std::vector<std::future<StatusOr<QueryResult>>> background;
  for (int i = 0; i < 4; ++i) {
    background.push_back(
        service->Submit(requests[i], kNoDeadline, QosClass::kBackground));
  }
  // ...then two interactive arrivals displace two background requests.
  std::vector<std::future<StatusOr<QueryResult>>> interactive;
  for (int i = 4; i < 6; ++i) {
    interactive.push_back(
        service->Submit(requests[i], kNoDeadline, QosClass::kInteractive));
  }

  // The youngest background futures resolved immediately as shed.
  for (int i = 3; i >= 2; --i) {
    ASSERT_EQ(background[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << i;
    const StatusOr<QueryResult> shed = background[i].get();
    ASSERT_FALSE(shed.ok()) << i;
    EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted) << i;
  }

  // A batch arrival at the (still full) queue sheds background, not
  // interactive.
  std::future<StatusOr<QueryResult>> batch =
      service->Submit(requests[6], kNoDeadline, QosClass::kBatch);
  const StatusOr<QueryResult> shed_for_batch = background[1].get();
  ASSERT_FALSE(shed_for_batch.ok());
  EXPECT_EQ(shed_for_batch.status().code(), StatusCode::kResourceExhausted);

  // A background arrival at the limit has nothing below it to shed —
  // plain queue-full rejection, existing semantics preserved.
  std::future<StatusOr<QueryResult>> rejected =
      service->Submit(requests[7], kNoDeadline, QosClass::kBackground);
  const StatusOr<QueryResult> bounced = rejected.get();
  ASSERT_FALSE(bounced.ok());
  EXPECT_EQ(bounced.status().code(), StatusCode::kResourceExhausted);

  service->Shutdown();
  EXPECT_TRUE(background[0].get().ok());
  for (auto& f : interactive) EXPECT_TRUE(f.get().ok());
  EXPECT_TRUE(batch.get().ok());

  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.submitted, 8u);
  EXPECT_EQ(stats.shed_displaced, 3u);
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.served, 4u);
  EXPECT_EQ(stats.shed_by_class[static_cast<size_t>(QosClass::kBackground)],
            3u);
  EXPECT_EQ(stats.served_by_class[static_cast<size_t>(QosClass::kInteractive)],
            2u);
  EXPECT_EQ(stats.served_by_class[static_cast<size_t>(QosClass::kBatch)], 1u);
  EXPECT_EQ(stats.submitted, stats.served + stats.shed_displaced +
                                 stats.rejected_queue_full);
}

// Feasibility shedding: once an EWMA of the per-request route time
// exists, a deadline the queue can provably not meet is shed at
// admission instead of timing out later.
TEST(QueryServiceQosTest, InfeasibleDeadlineShedAtAdmission) {
  ServiceOptions options;
  options.num_workers = 1;
  std::unique_ptr<QueryService> service = MakeService(options);
  const std::vector<QueryRequest> requests =
      MakeWorkload(service->catalog(), 4);

  // Serve a little traffic to establish the EWMA (real routes take
  // hundreds of microseconds here).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service->Submit(requests[static_cast<size_t>(i)]).get().ok());
  }
  ASSERT_GT(service->Stats().ewma_route_micros, 0.0);

  // A 1-nanosecond budget cannot survive even an empty queue at that
  // service rate — shed, not admitted-then-expired.
  std::future<StatusOr<QueryResult>> future =
      service->Submit(requests[3], 1e-3);
  const StatusOr<QueryResult> result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);

  service->Shutdown();
  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.shed_infeasible, 1u);
  EXPECT_EQ(stats.timed_out_in_queue, 0u);
  EXPECT_EQ(stats.served, 3u);
}

// The adaptive limit: a target queue delay shrinks the admission bound
// from the fixed capacity to roughly target/ewma once dispatches have
// taught the service its own speed.
TEST(QueryServiceQosTest, AdaptiveQueueLimitTracksObservedRouteTime) {
  ServiceOptions options;
  options.num_workers = 1;
  options.queue_capacity = 64;
  options.target_queue_delay_micros = 1.0;  // ~one microsecond of queue
  options.min_queue_limit = 2;
  options.feasibility_shedding = false;  // isolate the limit mechanism
  std::unique_ptr<QueryService> service = MakeService(options);
  const std::vector<QueryRequest> requests =
      MakeWorkload(service->catalog(), 3);

  // Cold: no EWMA yet, the limit is the full capacity.
  EXPECT_EQ(service->Stats().queue_limit, 64u);

  for (const QueryRequest& request : requests) {
    ASSERT_TRUE(service->Submit(request).get().ok());
  }
  // Routes take far longer than the 1 us target, so the ideal depth
  // rounds to zero and the floor holds the limit up.
  const ServiceStats stats = service->Stats();
  ASSERT_GT(stats.ewma_route_micros, 1.0);
  EXPECT_EQ(stats.queue_limit, 2u);
  service->Shutdown();
}

TEST(MakeQueryServiceTest, ValidatesOverloadControlOptions) {
  ServiceOptions bad_target;
  bad_target.target_queue_delay_micros = std::nan("");
  EXPECT_EQ(MakeQueryService(MakeCatalog(), bad_target).status().code(),
            StatusCode::kInvalidArgument);

  ServiceOptions negative_target;
  negative_target.target_queue_delay_micros = -1;
  EXPECT_EQ(MakeQueryService(MakeCatalog(), negative_target).status().code(),
            StatusCode::kInvalidArgument);

  ServiceOptions zero_floor;
  zero_floor.target_queue_delay_micros = 100;
  zero_floor.min_queue_limit = 0;
  EXPECT_EQ(MakeQueryService(MakeCatalog(), zero_floor).status().code(),
            StatusCode::kInvalidArgument);

  ServiceOptions nan_deadline;
  nan_deadline.default_deadline_micros = std::nan("");
  EXPECT_EQ(MakeQueryService(MakeCatalog(), nan_deadline).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(LatencyHistogramTest, RecordsBucketsAndQuantiles) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.Quantile(0.5), 0);  // empty

  // 90 one-microsecond samples and 10 at ~1 ms: p50 sits in the low
  // bucket, p99 in the millisecond bucket.
  for (int i = 0; i < 90; ++i) histogram.Record(1.0);
  for (int i = 0; i < 10; ++i) histogram.Record(1000.0);
  EXPECT_EQ(histogram.total, 100u);
  EXPECT_LE(histogram.P50(), 2.0);
  EXPECT_GE(histogram.P99(), 1000.0);
  EXPECT_LE(histogram.P99(), 2048.0);
  // Quantiles are monotone in q.
  EXPECT_LE(histogram.Quantile(0.1), histogram.Quantile(0.9));

  LatencyHistogram other;
  other.Record(1.0);
  histogram.Accumulate(other);
  EXPECT_EQ(histogram.total, 101u);

  // Out-of-range samples clamp to the last bucket instead of writing
  // out of bounds.
  LatencyHistogram huge;
  huge.Record(1e30);
  EXPECT_EQ(huge.total, 1u);
  EXPECT_EQ(huge.counts[LatencyHistogram::kNumBuckets - 1], 1u);
}

// The overflow bucket is a clamp, not a measurement: +inf lands there
// too (casting log2(inf) to an integer is UB — this is the regression
// guard), and a quantile resolving to it reports the saturated top
// edge rather than inventing a finite latency.
TEST(LatencyHistogramTest, OverflowBucketClampsInfinity) {
  LatencyHistogram histogram;
  histogram.Record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(histogram.total, 1u);
  EXPECT_EQ(histogram.counts[LatencyHistogram::kNumBuckets - 1], 1u);
  EXPECT_EQ(histogram.P99(),
            std::ldexp(1.0, static_cast<int>(LatencyHistogram::kNumBuckets)));
}

// NaN durations are dropped and ledgered, never bucketed: a NaN would
// land in bucket 0 (every comparison reads false) and silently skew
// p50 downward — the exact class of stats corruption the NaN deadline
// fix keeps out of admission.
TEST(LatencyHistogramTest, NanSamplesAreDroppedAndCounted) {
  LatencyHistogram histogram;
  histogram.Record(100.0);
  histogram.Record(std::nan(""));
  EXPECT_EQ(histogram.total, 1u);
  EXPECT_EQ(histogram.nan_dropped, 1u);
  EXPECT_EQ(histogram.counts[0], 0u);

  LatencyHistogram other;
  other.Record(std::nan(""));
  histogram.Accumulate(other);
  EXPECT_EQ(histogram.total, 1u);
  EXPECT_EQ(histogram.nan_dropped, 2u);
}

// The per-kind accounting ledger: a mixed workload of all four query
// kinds served to completion must land every request in exactly one
// submitted_by_kind slot and every delivered answer in the matching
// served_by_kind slot, with sum(served_by_kind) == served.
TEST(QueryServiceFamilyTest, PerKindLedgerBalances) {
  ServiceOptions options;
  options.queue_capacity = 256;
  options.num_workers = 2;
  std::unique_ptr<QueryService> service = MakeService(options);

  // Venue 0's graph feeds the family generators; the requests carry
  // venue_id 0, which the sharded dispatch sends to shard 0 (ids are
  // dense from 0, so "unaddressed" and "venue 0" coincide by design).
  const ItGraph& graph = service->catalog().graph(0);
  std::vector<QueryRequest> requests = MakeWorkload(service->catalog(), 10);
  size_t expected[kNumQueryKinds] = {requests.size(), 0, 0, 0};
  for (QueryKind kind : {QueryKind::kReachability,
                         QueryKind::kNearestFacility, QueryKind::kMultiStop}) {
    FamilyGenConfig config;
    config.kind = kind;
    config.num_queries = 3 + static_cast<int>(kind);
    config.seed = 50 + static_cast<uint64_t>(kind);
    std::vector<QueryRequest> family =
        ValueOrDie(GenerateFamilyQueries(graph, config), "family gen");
    expected[static_cast<size_t>(kind)] = family.size();
    requests.insert(requests.end(), family.begin(), family.end());
  }

  std::vector<std::future<StatusOr<QueryResult>>> futures;
  for (const QueryRequest& request : requests) {
    futures.push_back(service->Submit(request));
  }
  for (auto& future : futures) {
    const StatusOr<QueryResult> served = future.get();
    EXPECT_TRUE(served.ok()) << served.status().ToString();
  }
  service->Shutdown();

  const ServiceStats stats = service->Stats();
  size_t submitted_sum = 0, served_sum = 0;
  for (size_t kind = 0; kind < kNumQueryKinds; ++kind) {
    EXPECT_EQ(stats.submitted_by_kind[kind], expected[kind])
        << "kind " << kind;
    EXPECT_EQ(stats.served_by_kind[kind], expected[kind]) << "kind " << kind;
    submitted_sum += stats.submitted_by_kind[kind];
    served_sum += stats.served_by_kind[kind];
  }
  EXPECT_EQ(submitted_sum, stats.submitted);
  EXPECT_EQ(served_sum, stats.served);
}

// An out-of-range kind byte (a corrupt or hostile enum value) is
// rejected at admission with kInvalidArgument, ledgered under
// rejected_invalid, and appears in NEITHER per-kind array — the arrays
// only ever index known kinds.
TEST(QueryServiceFamilyTest, UnknownKindRejectedAtAdmission) {
  std::unique_ptr<QueryService> service = MakeService(ServiceOptions{});
  std::vector<QueryRequest> requests = MakeWorkload(service->catalog(), 1);
  QueryRequest bogus = requests[0];
  bogus.kind = static_cast<QueryKind>(7);

  auto future = service->Submit(bogus);
  const StatusOr<QueryResult> result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  service->Shutdown();
  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.rejected_invalid, 1u);
  EXPECT_EQ(stats.served, 0u);
  for (size_t kind = 0; kind < kNumQueryKinds; ++kind) {
    EXPECT_EQ(stats.submitted_by_kind[kind], 0u) << "kind " << kind;
    EXPECT_EQ(stats.served_by_kind[kind], 0u) << "kind " << kind;
  }
}

}  // namespace
}  // namespace itspq

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "gen/ati_gen.h"
#include "gen/query_gen.h"
#include "gen/venue_gen.h"
#include "itgraph/itgraph.h"
#include "query/registry.h"
#include "query/router.h"
#include "query/verifier.h"

namespace itspq {
namespace {

struct TestWorld {
  std::unique_ptr<Venue> venue;
  std::unique_ptr<ItGraph> graph;
  std::vector<QueryInstance> queries;

  /// Null on failure (with the failure recorded); callers ASSERT on the
  /// result so a registry error fails the test instead of crashing it.
  std::unique_ptr<Router> Make(const std::string& name) const {
    auto router = MakeRouter(name, *graph);
    if (!router.ok()) {
      ADD_FAILURE() << "MakeRouter(" << name
                    << "): " << router.status().ToString();
      return nullptr;
    }
    return std::move(*router);
  }
};

// One-floor paper mall with |T| = 6 and a handful of medium queries.
TestWorld MakeWorld(uint64_t seed = 42) {
  MallConfig mall_config = MallConfig::Paper();
  mall_config.floors = 1;
  mall_config.seed = seed;
  auto mall = GenerateMall(mall_config);
  EXPECT_TRUE(mall.ok());

  AtiGenConfig ati_config;
  ati_config.checkpoint_count = 6;
  ati_config.seed = seed + 1;
  auto varied = AssignTemporalVariations(*mall, ati_config);
  EXPECT_TRUE(varied.ok());

  TestWorld world;
  world.venue = std::make_unique<Venue>(*std::move(varied));
  auto graph = ItGraph::Build(*world.venue);
  EXPECT_TRUE(graph.ok());
  world.graph = std::make_unique<ItGraph>(*std::move(graph));

  QueryGenConfig query_config;
  query_config.s2t_distance = 700;
  query_config.tolerance = 100;
  query_config.num_pairs = 6;
  query_config.seed = seed + 2;
  auto queries = GenerateQueries(*world.graph, query_config);
  EXPECT_TRUE(queries.ok());
  world.queries = *std::move(queries);
  return world;
}

TEST(RouterTest, FindsValidPathsAtNoon) {
  TestWorld world = MakeWorld();
  const auto router = world.Make("itg-s");
  ASSERT_NE(router, nullptr);
  QueryContext context;
  const Instant noon = Instant::FromHMS(12);
  for (const QueryInstance& q : world.queries) {
    auto result = router->Route(
        QueryRequest{q.ps, q.pt, noon, QueryOptions()}, &context);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->found);
    EXPECT_GT(result->path.length_m(), 0);
    EXPECT_GT(result->stats.doors_popped, 0u);
    EXPECT_GT(result->stats.peak_memory_bytes, 0u);
    // The engine's own answers always satisfy rule 1.
    EXPECT_TRUE(VerifyPath(*world.graph, result->path).ok());
  }
}

TEST(RouterTest, NoRouteBeforeOpening) {
  TestWorld world = MakeWorld();
  const auto router = world.Make("itg-s");
  ASSERT_NE(router, nullptr);
  QueryContext context;
  const Instant night = Instant::FromHMS(3);
  for (const QueryInstance& q : world.queries) {
    auto result = router->Route(
        QueryRequest{q.ps, q.pt, night, QueryOptions()}, &context);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->found);
  }
}

TEST(RouterTest, ErrorsOnOutsidePoints) {
  TestWorld world = MakeWorld();
  const auto router = world.Make("itg-s");
  ASSERT_NE(router, nullptr);
  const IndoorPoint outside{{1e6, 1e6}, 0};
  // Null context: Route creates a throwaway one.
  auto result = router->Route(
      QueryRequest{outside, world.queries[0].pt, Instant::FromHMS(12),
                   QueryOptions()},
      nullptr);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(RouterTest, StrictAsynchronousMatchesSynchronous) {
  TestWorld world = MakeWorld();
  const auto itg_s = world.Make("itg-s");
  ASSERT_NE(itg_s, nullptr);
  const auto itg_ap = world.Make("itg-a+");
  ASSERT_NE(itg_ap, nullptr);
  QueryContext context;
  // Probe across the whole day, including hours near checkpoints.
  for (int hour : {7, 8, 9, 12, 18, 20, 21, 22}) {
    const Instant t = Instant::FromHMS(hour);
    for (const QueryInstance& q : world.queries) {
      const QueryRequest request{q.ps, q.pt, t, QueryOptions()};
      auto rs = itg_s->Route(request, &context);
      auto ra = itg_ap->Route(request, &context);
      ASSERT_TRUE(rs.ok());
      ASSERT_TRUE(ra.ok());
      EXPECT_EQ(rs->found, ra->found) << "hour " << hour;
      if (rs->found && ra->found) {
        EXPECT_NEAR(rs->path.length_m(), ra->path.length_m(), 1e-6)
            << "hour " << hour;
      }
    }
  }
}

TEST(RouterTest, AsynchronousCountsGraphUpdates) {
  TestWorld world = MakeWorld();
  const auto itg_a = world.Make("itg-a");
  ASSERT_NE(itg_a, nullptr);
  // A fresh context per query has no warm resident mask: every
  // asynchronous query derives at least its departure snapshot.
  size_t cold_updates = 0;
  for (const QueryInstance& q : world.queries) {
    QueryContext fresh;
    auto result = itg_a->Route(
        QueryRequest{q.ps, q.pt, Instant::FromHMS(12), QueryOptions()},
        &fresh);
    ASSERT_TRUE(result.ok());
    cold_updates += result->stats.graph_updates;
  }
  EXPECT_GE(cold_updates, world.queries.size());

  // A reused context keeps its resident mask warm across queries: the
  // same workload at one departure interval rebuilds far less than
  // once per query (only the first query plus interval crossings).
  QueryContext warm;
  size_t warm_updates = 0;
  for (const QueryInstance& q : world.queries) {
    auto result = itg_a->Route(
        QueryRequest{q.ps, q.pt, Instant::FromHMS(12), QueryOptions()},
        &warm);
    ASSERT_TRUE(result.ok());
    warm_updates += result->stats.graph_updates;
  }
  EXPECT_GE(warm_updates, 1u);
  EXPECT_LT(warm_updates, cold_updates);
}

TEST(RouterTest, SnapshotStoreKeepsAnswersAndCutsRebuilds) {
  TestWorld world = MakeWorld();
  const auto itg_a = world.Make("itg-a");
  ASSERT_NE(itg_a, nullptr);
  QueryOptions rebuild;
  QueryOptions cached;
  cached.use_snapshot_cache = true;

  // Fresh contexts per query model independent callers — the warm
  // per-context resident mask can't help, so the comparison isolates
  // what the shared store contributes.
  size_t rebuild_updates = 0, cached_updates = 0;
  for (int pass = 0; pass < 3; ++pass) {
    for (const QueryInstance& q : world.queries) {
      const Instant t = Instant::FromHMS(12);
      QueryContext fresh_r, fresh_c;
      auto rr = itg_a->Route(QueryRequest{q.ps, q.pt, t, rebuild}, &fresh_r);
      auto rc = itg_a->Route(QueryRequest{q.ps, q.pt, t, cached}, &fresh_c);
      ASSERT_TRUE(rr.ok());
      ASSERT_TRUE(rc.ok());
      EXPECT_EQ(rr->found, rc->found);
      if (rr->found) {
        EXPECT_NEAR(rr->path.length_m(), rc->path.length_m(), 1e-9);
      }
      rebuild_updates += rr->stats.graph_updates;
      cached_updates += rc->stats.graph_updates;
    }
  }
  EXPECT_LT(cached_updates, rebuild_updates);
}

TEST(RouterTest, PruningNeverBeatsFullSearch) {
  TestWorld world = MakeWorld();
  const auto itg_s = world.Make("itg-s");
  ASSERT_NE(itg_s, nullptr);
  QueryContext context;
  QueryOptions pruned;
  QueryOptions full;
  full.partition_visited_pruning = false;
  const Instant noon = Instant::FromHMS(12);
  for (const QueryInstance& q : world.queries) {
    auto rp = itg_s->Route(QueryRequest{q.ps, q.pt, noon, pruned}, &context);
    auto rf = itg_s->Route(QueryRequest{q.ps, q.pt, noon, full}, &context);
    ASSERT_TRUE(rp.ok());
    ASSERT_TRUE(rf.ok());
    ASSERT_TRUE(rf->found);
    if (rp->found) {
      // Alg. 1's pruning can only lengthen paths, never shorten them.
      EXPECT_GE(rp->path.length_m(), rf->path.length_m() - 1e-9);
    }
    // Pop counts are no longer comparable across the two options: the
    // full search runs goal-directed A* (often settling fewer doors
    // than the pruned search), while the pruned search keeps plain
    // Dijkstra order so Alg. 1's published answers are reproduced.
    EXPECT_GT(rp->stats.doors_popped, 0u);
    EXPECT_GT(rf->stats.doors_popped, 0u);
  }
}

TEST(RouterTest, SamePartitionDirectWalk) {
  TestWorld world = MakeWorld();
  const auto router = world.Make("itg-s");
  ASSERT_NE(router, nullptr);
  // Two points inside partition 0 (a corridor band).
  const Rect& rect = world.venue->partition(0).rect;
  const IndoorPoint a{{rect.min_x + 5, rect.min_y + 5}, 0};
  const IndoorPoint b{{rect.min_x + 45, rect.min_y + 8}, 0};
  auto result = router->Route(
      QueryRequest{a, b, Instant::FromHMS(3), QueryOptions()}, nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);  // no door needed, even at night
  EXPECT_NEAR(result->path.length_m(),
              std::hypot(40.0, 3.0), 1e-9);
  EXPECT_TRUE(result->path.steps().empty());
}

}  // namespace
}  // namespace itspq

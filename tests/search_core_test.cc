// The cache-conscious search core's compiled views, pinned to the
// object-graph sources they replaced: CsrAdjacency vs the venue's
// DoorsOf/DistanceMatrix walk, flat ATI rows vs AtiSet membership,
// DoorMask's word-wise scan helpers vs the per-bit loop, generation-
// stamped scratch reuse vs fresh contexts, and epoch adjacency sharing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "gen/ati_gen.h"
#include "gen/query_gen.h"
#include "gen/venue_gen.h"
#include "itgraph/csr_adjacency.h"
#include "itgraph/door_mask.h"
#include "itgraph/itgraph.h"
#include "query/registry.h"
#include "query/router.h"
#include "venue/venue.h"

namespace itspq {
namespace {

template <typename T>
T ValueOrDie(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    ADD_FAILURE() << what << ": " << value.status().ToString();
    std::abort();
  }
  return *std::move(value);
}

// Bit-identical path comparison: same length, same door sequence, same
// cumulative distances and projected arrivals.
void ExpectSamePath(const Path& a, const Path& b, const std::string& label) {
  EXPECT_EQ(a.length_m(), b.length_m()) << label;
  ASSERT_EQ(a.steps().size(), b.steps().size()) << label;
  for (size_t i = 0; i < a.steps().size(); ++i) {
    EXPECT_EQ(a.steps()[i].door, b.steps()[i].door) << label << " step " << i;
    EXPECT_EQ(a.steps()[i].cumulative_m, b.steps()[i].cumulative_m)
        << label << " step " << i;
    EXPECT_EQ(a.steps()[i].arrival_seconds, b.steps()[i].arrival_seconds)
        << label << " step " << i;
  }
}

struct CoreWorld {
  std::unique_ptr<Venue> venue;
  std::unique_ptr<ItGraph> graph;
  std::vector<QueryInstance> queries;
};

CoreWorld MakeWorld(uint64_t seed) {
  MallConfig mall_config = MallConfig::Paper();
  mall_config.floors = 1;
  mall_config.shop_rows = 3;
  mall_config.shops_per_row = 16;
  mall_config.seed = seed;
  Venue mall = ValueOrDie(GenerateMall(mall_config), "GenerateMall");

  AtiGenConfig ati_config;
  ati_config.checkpoint_count = 5;
  ati_config.seed = seed + 1;
  CoreWorld world;
  world.venue = std::make_unique<Venue>(
      ValueOrDie(AssignTemporalVariations(mall, ati_config, nullptr),
                 "AssignTemporalVariations"));
  world.graph = std::make_unique<ItGraph>(
      ValueOrDie(ItGraph::Build(*world.venue), "ItGraph::Build"));

  QueryGenConfig query_config;
  query_config.s2t_distance = 500;
  query_config.tolerance = 250;
  query_config.num_pairs = 5;
  query_config.seed = seed + 2;
  world.queries = ValueOrDie(GenerateQueries(*world.graph, query_config),
                             "GenerateQueries");
  return world;
}

// The CSR is exactly the venue's implicit adjacency, flattened: per
// door, one segment per partition side, each listing that partition's
// other doors in DoorsOf order with DistanceMatrix weights.
TEST(SearchCoreTest, CsrAdjacencyMatchesVenueWalk) {
  const CoreWorld world = MakeWorld(11);
  const Venue& venue = *world.venue;
  const CsrAdjacency& adj = world.graph->adjacency();
  const size_t n = venue.NumDoors();
  ASSERT_EQ(adj.num_doors, n);
  ASSERT_EQ(adj.seg_offsets.size(), 2 * n + 1);
  ASSERT_EQ(adj.seg_partition.size(), 2 * n);

  double min_w = std::numeric_limits<double>::infinity();
  double max_w = 0;
  for (size_t d = 0; d < n; ++d) {
    const DoorId door = static_cast<DoorId>(d);
    const auto& partitions = venue.door(door).partitions;
    for (size_t side = 0; side < 2; ++side) {
      const size_t seg = 2 * d + side;
      const PartitionId p = partitions[side];
      EXPECT_EQ(adj.seg_partition[seg], p);
      const DistanceMatrix& dm = venue.distance_matrix(p);
      uint32_t k = adj.seg_offsets[seg];
      for (DoorId v : venue.DoorsOf(p)) {
        if (v == door) continue;
        ASSERT_LT(k, adj.seg_offsets[seg + 1]);
        EXPECT_EQ(adj.neighbor_ids[k], static_cast<uint32_t>(v));
        const double w = dm.DistanceUnchecked(door, v);
        EXPECT_EQ(adj.neighbor_weights[k], w);
        min_w = std::min(min_w, w);
        max_w = std::max(max_w, w);
        ++k;
      }
      EXPECT_EQ(k, adj.seg_offsets[seg + 1]);
    }
  }
  EXPECT_EQ(adj.min_edge_weight, min_w);
  EXPECT_EQ(adj.max_edge_weight, max_w);
}

// The flat rows answer exactly as the AtiSets they were compiled from,
// including boundaries, empty (always-open) rows, and wrapped times.
TEST(SearchCoreTest, FlatAtiRowsMatchAtiSets) {
  const CoreWorld world = MakeWorld(23);
  const ItGraph& graph = *world.graph;
  Rng rng(5);
  for (size_t d = 0; d < graph.NumDoors(); ++d) {
    const DoorId door = static_cast<DoorId>(d);
    const AtiSet& ati = graph.Ati(door);
    for (int probe = 0; probe < 64; ++probe) {
      const double t = rng.UniformDouble(0, kSecondsPerDay);
      EXPECT_EQ(graph.AtiContainsTimeOfDay(door, t),
                ati.ContainsTimeOfDay(t))
          << "door " << d << " t " << t;
    }
    // Interval boundaries: start is inside a [start, end) interval,
    // end is outside; the exactly-at-checkpoint cases.
    for (size_t i = 0; i < ati.NumIntervals(); ++i) {
      for (double t : {ati.starts()[i], ati.ends()[i]}) {
        if (t >= kSecondsPerDay) continue;
        EXPECT_EQ(graph.AtiContainsTimeOfDay(door, t),
                  ati.ContainsTimeOfDay(t))
            << "door " << d << " boundary " << t;
      }
    }
    // Projected arrivals past midnight arrive unwrapped.
    EXPECT_EQ(graph.AtiContainsTimeOfDay(door, kSecondsPerDay + 3600),
              ati.ContainsTimeOfDay(WrapTimeOfDay(kSecondsPerDay + 3600)));
  }
}

TEST(SearchCoreTest, DoorMaskScanHelpersMatchPerBitLoop) {
  Rng rng(77);
  for (size_t n : {1u, 63u, 64u, 65u, 200u, 515u}) {
    DoorMask mask(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng.UniformIndex(3) == 0) mask.Set(static_cast<DoorId>(i));
    }

    // ForEachSetAmong over a random (sorted, CSR-like) id list.
    std::vector<uint32_t> ids;
    for (size_t i = 0; i < n; ++i) {
      if (rng.UniformIndex(2) == 0) ids.push_back(static_cast<uint32_t>(i));
    }
    std::vector<size_t> got;
    mask.ForEachSetAmong(ids.data(), ids.size(),
                         [&](size_t k) { got.push_back(k); });
    std::vector<size_t> want;
    for (size_t k = 0; k < ids.size(); ++k) {
      if (mask.Test(static_cast<DoorId>(ids[k]))) want.push_back(k);
    }
    EXPECT_EQ(got, want) << "n=" << n;

    // ForEachSetInRange across word-boundary-straddling windows.
    for (int probe = 0; probe < 16; ++probe) {
      const size_t lo = rng.UniformIndex(n + 1);
      const size_t hi = lo + rng.UniformIndex(n + 1 - lo);
      std::vector<DoorId> got_range;
      mask.ForEachSetInRange(lo, hi,
                             [&](DoorId d) { got_range.push_back(d); });
      std::vector<DoorId> want_range;
      for (size_t i = lo; i < hi; ++i) {
        if (mask.Test(static_cast<DoorId>(i))) {
          want_range.push_back(static_cast<DoorId>(i));
        }
      }
      EXPECT_EQ(got_range, want_range) << "n=" << n << " [" << lo << ", "
                                       << hi << ")";
    }
  }
}

// A generously sampled mall has coincident doors nowhere, so the
// compiled adjacency qualifies for the bucket frontier; the eligibility
// predicate must also reject the degenerate cases.
TEST(SearchCoreTest, BucketEligibilityGuardsDegenerateWeights) {
  const CoreWorld world = MakeWorld(31);
  const CsrAdjacency& adj = world.graph->adjacency();
  EXPECT_GT(adj.min_edge_weight, 0);
  EXPECT_TRUE(adj.BucketEligible());

  CsrAdjacency zero = adj;
  zero.min_edge_weight = 0;  // a zero-weight edge breaks Dial exactness
  EXPECT_FALSE(zero.BucketEligible());

  CsrAdjacency wide = adj;
  wide.min_edge_weight = 1.0;
  wide.max_edge_weight = 2.0 * CsrAdjacency::kMaxBucketSpan;
  EXPECT_FALSE(wide.BucketEligible());  // ring would be unbounded

  CsrAdjacency empty;
  EXPECT_FALSE(empty.BucketEligible());  // min stays +inf with no edges
}

// Generation-stamped scratch: a context reused across many queries (the
// whole point of the stamping) answers bit-identically to a fresh
// context per query, for every strategy, across interleaved venues of
// different sizes (forcing the resize/stamp-reset paths).
TEST(SearchCoreTest, ReusedContextIsBitIdenticalToFreshContexts) {
  const CoreWorld small = MakeWorld(41);
  const CoreWorld big = [] {
    CoreWorld big;
    MallConfig mall_config = MallConfig::Paper();
    mall_config.floors = 2;
    mall_config.shop_rows = 3;
    mall_config.shops_per_row = 16;
    mall_config.seed = 43;
    Venue mall = ValueOrDie(GenerateMall(mall_config), "GenerateMall");
    AtiGenConfig ati_config;
    ati_config.checkpoint_count = 5;
    ati_config.seed = 44;
    big.venue = std::make_unique<Venue>(
        ValueOrDie(AssignTemporalVariations(mall, ati_config, nullptr),
                   "AssignTemporalVariations"));
    big.graph = std::make_unique<ItGraph>(
        ValueOrDie(ItGraph::Build(*big.venue), "ItGraph::Build"));
    QueryGenConfig query_config;
    query_config.s2t_distance = 500;
    query_config.tolerance = 250;
    query_config.num_pairs = 5;
    query_config.seed = 45;
    big.queries = ValueOrDie(GenerateQueries(*big.graph, query_config),
                             "GenerateQueries");
    return big;
  }();
  ASSERT_NE(small.graph->NumDoors(), big.graph->NumDoors());

  for (const std::string& strategy : RouterRegistry::Global().Names()) {
    std::unique_ptr<Router> small_router = ValueOrDie(
        RouterRegistry::Global().Create(strategy, *small.graph), "Create");
    std::unique_ptr<Router> big_router = ValueOrDie(
        RouterRegistry::Global().Create(strategy, *big.graph), "Create");

    QueryContext reused;
    for (int round = 0; round < 3; ++round) {
      for (const CoreWorld* world : {&small, &big}) {
        const Router& router =
            world == &small ? *small_router : *big_router;
        for (const QueryInstance& q : world->queries) {
          for (int hour : {9, 13, 20}) {
            const QueryRequest request{q.ps, q.pt, Instant::FromHMS(hour),
                                       QueryOptions()};
            QueryContext fresh;
            const QueryResult a =
                ValueOrDie(router.Route(request, &reused), "Route");
            const QueryResult b =
                ValueOrDie(router.Route(request, &fresh), "Route");
            ASSERT_EQ(a.found, b.found)
                << strategy << " h" << hour << " round " << round;
            if (!a.found) continue;
            ExpectSamePath(a.path, b.path,
                           strategy + " h" + std::to_string(hour));
          }
        }
      }
    }
  }
}

// Batch-shared pins: RouteBatch on a shared context with the snapshot
// cache answers exactly as one-by-one Route calls on fresh contexts.
TEST(SearchCoreTest, BatchWithRetainedPinsMatchesSingleQueries) {
  const CoreWorld world = MakeWorld(53);
  for (const std::string& strategy : {std::string("itg-a+"),
                                      std::string("itg-a"),
                                      std::string("itg-s")}) {
    std::unique_ptr<Router> router = ValueOrDie(
        RouterRegistry::Global().Create(strategy, *world.graph), "Create");
    std::vector<QueryRequest> requests;
    QueryOptions options;
    options.use_snapshot_cache = true;
    for (const QueryInstance& q : world.queries) {
      for (int hour : {8, 12, 18, 22}) {
        requests.push_back(
            QueryRequest{q.ps, q.pt, Instant::FromHMS(hour), options});
      }
    }
    QueryContext shared;
    BatchOptions batch;
    batch.context = &shared;
    const auto batched = router->RouteBatch(requests, batch);
    ASSERT_EQ(batched.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(batched[i].ok()) << strategy;
      const QueryResult single =
          ValueOrDie(router->Route(requests[i], nullptr), "Route");
      ASSERT_EQ(batched[i]->found, single.found) << strategy << " #" << i;
      if (!single.found) continue;
      ExpectSamePath(batched[i]->path, single.path,
                     strategy + " #" + std::to_string(i));
    }
  }
}

// BuildFrom epochs alias their predecessor's compiled adjacency — ATI
// edits never change geometry, so recompiling (or copying) the CSR per
// epoch would be pure waste.
TEST(SearchCoreTest, BuildFromSharesTheAdjacencyHandle) {
  const CoreWorld world = MakeWorld(61);
  const DoorId changed = 3;
  Venue::Builder builder = Venue::Builder::FromVenue(*world.venue);
  ASSERT_TRUE(
      builder.SetDoorAti(changed, {MakeInterval(9, 0, 17, 0)}).ok());
  const Venue edited = ValueOrDie(std::move(builder).Build(), "Build");
  const ItGraph next = ValueOrDie(
      ItGraph::BuildFrom(*world.graph, edited, changed), "BuildFrom");
  EXPECT_EQ(next.adjacency_handle().get(),
            world.graph->adjacency_handle().get());
  EXPECT_TRUE(next.AtiContainsTimeOfDay(changed, 10 * 3600.0));
  EXPECT_FALSE(next.AtiContainsTimeOfDay(changed, 18 * 3600.0));
}

}  // namespace
}  // namespace itspq

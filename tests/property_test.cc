// Randomized cross-strategy property suite.
//
// For seeded random venues, temporal variations, and query workloads,
// the five strategies are pinned to each other by the properties the
// paper's design implies, instead of by hand-picked expected values:
//
//   * ITG/S and ITG/A+ are exact: identical found flags and costs.
//   * ITG/A answers inside a correctness envelope: identical to ITG/S,
//     or conservatively worse (longer / not found), or — when it
//     undercuts ITG/S via its stale frontier snapshot — its path must
//     fail VerifyPath. Gross divergence (>10% of queries) fails.
//   * NTV ignores ATIs entirely, so it is a true lower bound: it finds
//     a route whenever ITG/S does, never a longer one.
//   * SNAP freezes the reduced graph at departure, so any answer that
//     beats ITG/S (or answers where ITG/S proves nothing valid exists)
//     must violate rule 1 — VerifyPath has to reject it.
//   * Every path ITG/S or ITG/A+ returns passes VerifyPath, including
//     departures exactly at ATI checkpoints and walks that cross
//     midnight.
//
// The whole suite runs under the asan and tsan CI presets.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "gen/ati_gen.h"
#include "gen/query_gen.h"
#include "gen/venue_gen.h"
#include "itgraph/itgraph.h"
#include "query/registry.h"
#include "query/router.h"
#include "query/verifier.h"
#include "venue/venue.h"

namespace itspq {
namespace {

constexpr double kLenEps = 1e-6;

// World construction runs before the assertions under test; a
// half-built world would only resurface as undefined behavior later,
// so fail loudly with the status instead.
template <typename T>
T ValueOrDie(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    ADD_FAILURE() << what << ": " << value.status().ToString();
    std::abort();
  }
  return *std::move(value);
}

struct PropertyWorld {
  std::unique_ptr<Venue> venue;
  std::unique_ptr<ItGraph> graph;
  std::vector<double> checkpoints;
  std::vector<QueryInstance> queries;
};

// A compact single-floor mall: big enough for multi-door routes, small
// enough that the whole suite stays fast under TSan.
PropertyWorld MakeWorld(uint64_t seed) {
  MallConfig mall_config = MallConfig::Paper();
  mall_config.floors = 1;
  mall_config.shop_rows = 3;
  mall_config.shops_per_row = 20;
  mall_config.seed = seed;
  Venue mall = ValueOrDie(GenerateMall(mall_config), "GenerateMall");

  AtiGenConfig ati_config;
  ati_config.checkpoint_count = 6;
  ati_config.seed = seed + 1;
  PropertyWorld world;
  world.venue = std::make_unique<Venue>(ValueOrDie(
      AssignTemporalVariations(mall, ati_config, &world.checkpoints),
      "AssignTemporalVariations"));
  world.graph = std::make_unique<ItGraph>(
      ValueOrDie(ItGraph::Build(*world.venue), "ItGraph::Build"));

  QueryGenConfig query_config;
  query_config.s2t_distance = 600;
  query_config.tolerance = 250;
  query_config.num_pairs = 6;
  query_config.seed = seed + 2;
  world.queries =
      ValueOrDie(GenerateQueries(*world.graph, query_config),
                 "GenerateQueries");
  return world;
}

struct StrategyAnswers {
  QueryResult itg_s, itg_a, itg_ap, snap, ntv;
  /// ITG/S with partition-visited pruning off: exact temporal Dijkstra,
  /// the ground-truth optimum the bound properties anchor on (the
  /// pruned checkers may legitimately return longer valid paths —
  /// that's what ablation_pruning measures).
  QueryResult optimum;
};

// Routes one request through all five strategies plus the unpruned
// ground truth, failing the test on any transport-level error
// (endpoints are generated inside the venue).
StrategyAnswers RouteAll(const PropertyWorld& world,
                         const std::vector<std::unique_ptr<Router>>& routers,
                         const QueryRequest& request, QueryContext* context) {
  StrategyAnswers answers;
  QueryResult* slots[] = {&answers.itg_s, &answers.itg_a, &answers.itg_ap,
                          &answers.snap, &answers.ntv};
  for (size_t i = 0; i < routers.size(); ++i) {
    auto result = routers[i]->Route(request, context);
    EXPECT_TRUE(result.ok()) << routers[i]->name() << ": "
                             << result.status().ToString();
    if (result.ok()) *slots[i] = *std::move(result);
  }
  QueryRequest unpruned = request;
  unpruned.options.partition_visited_pruning = false;
  auto result = routers[0]->Route(unpruned, context);  // itg-s
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok()) answers.optimum = *std::move(result);
  (void)world;
  return answers;
}

std::vector<std::unique_ptr<Router>> MakeAllRouters(
    const PropertyWorld& world) {
  std::vector<std::unique_ptr<Router>> routers;
  for (const char* name : {"itg-s", "itg-a", "itg-a+", "snap", "ntv"}) {
    routers.push_back(ValueOrDie(MakeRouter(name, *world.graph), name));
  }
  return routers;
}

// Applies every cross-strategy property to one query's answers.
// Returns whether ITG/A agreed exactly with ITG/S.
bool CheckProperties(const PropertyWorld& world, const QueryRequest& request,
                     const StrategyAnswers& a, const std::string& where) {
  const ItGraph& graph = *world.graph;

  // ITG/S == ITG/A+ exactly.
  EXPECT_EQ(a.itg_s.found, a.itg_ap.found) << where;
  if (a.itg_s.found && a.itg_ap.found) {
    EXPECT_NEAR(a.itg_s.path.length_m(), a.itg_ap.path.length_m(), kLenEps)
        << where;
  }

  // Rule-1 validity of the exact checkers' paths (pruned and not).
  if (a.itg_s.found) {
    EXPECT_TRUE(VerifyPath(graph, a.itg_s.path).ok()) << where;
  }
  if (a.itg_ap.found) {
    EXPECT_TRUE(VerifyPath(graph, a.itg_ap.path).ok()) << where;
  }
  if (a.optimum.found) {
    EXPECT_TRUE(VerifyPath(graph, a.optimum.path).ok()) << where;
  }

  // The pruned checker never beats the unpruned optimum, and whenever
  // it answers, a valid route certainly exists.
  if (a.itg_s.found) {
    EXPECT_TRUE(a.optimum.found) << where;
    if (a.optimum.found) {
      EXPECT_LE(a.optimum.path.length_m(),
                a.itg_s.path.length_m() + kLenEps)
          << where;
    }
  }

  // NTV is a lower bound on every valid route.
  if (a.optimum.found) {
    EXPECT_TRUE(a.ntv.found) << where;
    if (a.ntv.found) {
      EXPECT_LE(a.ntv.path.length_m(),
                a.optimum.path.length_m() + kLenEps)
          << where;
    }
  }

  // SNAP runs on a subgraph of NTV's static graph.
  if (a.snap.found) {
    EXPECT_TRUE(a.ntv.found) << where;
    if (a.ntv.found) {
      EXPECT_GE(a.snap.path.length_m() + kLenEps, a.ntv.path.length_m())
          << where;
    }
  }

  // A SNAP answer that beats the exact optimum — or exists where no
  // temporally valid route does — must be a rule-1 violation.
  if (a.snap.found &&
      (!a.optimum.found ||
       a.snap.path.length_m() < a.optimum.path.length_m() - kLenEps)) {
    EXPECT_FALSE(VerifyPath(graph, a.snap.path).ok()) << where;
  }

  // The ITG/A envelope: identical to ITG/S, conservatively worse, or —
  // when its stale frontier undercuts the exact optimum — temporally
  // invalid.
  const bool a_agrees =
      a.itg_a.found == a.itg_s.found &&
      (!a.itg_a.found || std::abs(a.itg_a.path.length_m() -
                                  a.itg_s.path.length_m()) <= kLenEps);
  if (a.itg_a.found &&
      (!a.optimum.found ||
       a.itg_a.path.length_m() < a.optimum.path.length_m() - kLenEps)) {
    EXPECT_FALSE(VerifyPath(graph, a.itg_a.path).ok()) << where;
  }

  (void)request;
  return a_agrees;
}

TEST(CrossStrategyPropertyTest, RandomWorldsAgreeAcrossStrategies) {
  int total = 0;
  int itg_a_agreements = 0;
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    PropertyWorld world = MakeWorld(seed);
    auto routers = MakeAllRouters(world);
    QueryContext context;
    for (size_t pair = 0; pair < world.queries.size(); ++pair) {
      const QueryInstance& q = world.queries[pair];
      for (int hour : {3, 7, 9, 11, 13, 15, 17, 19, 21, 23}) {
        const QueryRequest request{q.ps, q.pt, Instant::FromHMS(hour),
                                   QueryOptions()};
        const std::string where = "seed " + std::to_string(seed) + " pair " +
                                  std::to_string(pair) + " hour " +
                                  std::to_string(hour);
        const StrategyAnswers answers =
            RouteAll(world, routers, request, &context);
        ++total;
        if (CheckProperties(world, request, answers, where)) {
          ++itg_a_agreements;
        }
      }
    }
  }
  // The satellite contract: at least 200 randomized queries.
  EXPECT_GE(total, 200);
  // ITG/A's frontier gap shows up near closing checkpoints only; if it
  // disagrees with ITG/S on more than 10% of a broad workload,
  // something beyond the documented gap broke.
  EXPECT_GE(itg_a_agreements, total - total / 10)
      << itg_a_agreements << "/" << total << " ITG/A agreements";
}

// Departures sitting exactly on ATI boundaries (and half a second to
// each side) are where interval indexing off-by-ones would live.
TEST(CrossStrategyPropertyTest, CheckpointBoundaryDepartures) {
  for (uint64_t seed : {55u, 66u}) {
    PropertyWorld world = MakeWorld(seed);
    auto routers = MakeAllRouters(world);
    QueryContext context;
    ASSERT_FALSE(world.checkpoints.empty());
    for (double checkpoint : world.checkpoints) {
      for (double offset : {-0.5, 0.0, 0.5}) {
        for (size_t pair = 0; pair < 3 && pair < world.queries.size();
             ++pair) {
          const QueryInstance& q = world.queries[pair];
          const QueryRequest request{q.ps, q.pt,
                                     Instant(checkpoint + offset),
                                     QueryOptions()};
          const std::string where =
              "seed " + std::to_string(seed) + " pair " +
              std::to_string(pair) + " depart " +
              std::to_string(checkpoint + offset);
          const StrategyAnswers answers =
              RouteAll(world, routers, request, &context);
          CheckProperties(world, request, answers, where);
        }
      }
    }
  }
}

// A hand-built corridor venue whose far door is open 22:00 -> 02:00
// (wrapping midnight). The ~28-minute walk pins down arrival-time
// projection across the midnight fold.
TEST(CrossStrategyPropertyTest, MidnightWrapAti) {
  Venue::Builder builder;
  const PartitionId room_a = builder.AddPartition(Rect{0, 0, 10, 10}, 0);
  const PartitionId corridor = builder.AddPartition(Rect{10, 0, 2000, 10}, 0);
  const PartitionId room_b = builder.AddPartition(Rect{2000, 0, 2010, 10}, 0);
  builder.AddDoor(Point2d{10, 5}, 0, room_a, corridor);  // always open
  const DoorId far_door =
      builder.AddDoor(Point2d{2000, 5}, 0, corridor, room_b);
  ASSERT_TRUE(
      builder.SetDoorAti(far_door, {TimeInterval{22 * 3600.0, 2 * 3600.0}})
          .ok());
  auto venue = std::move(builder).Build();
  ASSERT_TRUE(venue.ok());
  auto graph = ItGraph::Build(*venue);
  ASSERT_TRUE(graph.ok());

  const IndoorPoint ps{{5, 5}, 0};
  const IndoorPoint pt{{2005, 5}, 0};
  QueryContext context;
  for (const char* name : {"itg-s", "itg-a+"}) {
    auto made = MakeRouter(name, *graph);
    ASSERT_TRUE(made.ok());
    const std::unique_ptr<Router>& router = *made;

    auto route_at = [&](double departure_seconds) {
      auto result = router->Route(
          QueryRequest{ps, pt, Instant(departure_seconds), QueryOptions()},
          &context);
      EXPECT_TRUE(result.ok()) << name;
      return *std::move(result);
    };

    // 23:00: the walk stays inside [22:00, 24:00).
    QueryResult before_midnight = route_at(23 * 3600.0);
    EXPECT_TRUE(before_midnight.found) << name;
    EXPECT_TRUE(VerifyPath(*graph, before_midnight.path).ok()) << name;

    // 23:50: arrival at the far door lands past midnight, inside the
    // wrapped [00:00, 02:00) half of the interval.
    QueryResult across_midnight = route_at(23 * 3600.0 + 50 * 60.0);
    EXPECT_TRUE(across_midnight.found) << name;
    EXPECT_TRUE(VerifyPath(*graph, across_midnight.path).ok()) << name;
    ASSERT_FALSE(across_midnight.path.steps().empty());
    EXPECT_GT(across_midnight.path.steps().back().arrival_seconds,
              kSecondsPerDay)
        << name << ": far-door arrival should project past midnight";

    // 01:45: the walker reaches the far door after it shut at 02:00.
    EXPECT_FALSE(route_at(1 * 3600.0 + 45 * 60.0).found) << name;

    // Midday: shut the whole time.
    EXPECT_FALSE(route_at(12 * 3600.0).found) << name;

    // Arrival lands ~1.5 s before / after the 02:00 close: the walk
    // takes 1995 m / 1.2 mps = 1662.5 s to the far door.
    EXPECT_TRUE(route_at(2 * 3600.0 - 1662.5 - 1.5).found) << name;
    EXPECT_FALSE(route_at(2 * 3600.0 - 1662.5 + 1.5).found) << name;
  }

  // NTV ignores the ATI and always finds the corridor route.
  auto ntv = MakeRouter("ntv", *graph);
  ASSERT_TRUE(ntv.ok());
  auto midday = (*ntv)->Route(
      QueryRequest{ps, pt, Instant::FromHMS(12), QueryOptions()}, &context);
  ASSERT_TRUE(midday.ok());
  EXPECT_TRUE(midday->found);
}

// The eviction-transparency property: a SnapshotStore squeezed to two
// resident snapshots (forcing evictions all day) must answer the
// randomized workload bit-identically to the unbudgeted keep-all
// store — eviction may cost rebuilds, never correctness.
TEST(CrossStrategyPropertyTest, BudgetedEvictingStoresMatchKeepAll) {
  for (uint64_t seed : {11u, 22u}) {
    PropertyWorld world = MakeWorld(seed);
    auto keep_all = ValueOrDie(MakeRouter("itg-a+", *world.graph), "keep-all");

    const CheckpointSet cps = CheckpointSet::FromGraph(*world.graph);
    const size_t snap_bytes = BuildSnapshot(*world.graph, cps, 0).TotalBytes();
    for (const char* policy : {"lru", "clock"}) {
      RouterBuildOptions tight;
      tight.snapshot_cache.policy = policy;
      // Two resident snapshots — far below |T|+1 intervals, so the
      // store evicts continuously.
      tight.snapshot_cache.budget_bytes = 2 * snap_bytes;
      auto evicting =
          ValueOrDie(MakeRouter("itg-a+", *world.graph, tight), policy);

      QueryOptions cached;
      cached.use_snapshot_cache = true;
      QueryContext context;
      for (size_t pair = 0; pair < world.queries.size(); ++pair) {
        const QueryInstance& q = world.queries[pair];
        for (int hour : {3, 7, 9, 11, 13, 15, 17, 19, 21, 23}) {
          const QueryRequest request{q.ps, q.pt, Instant::FromHMS(hour),
                                     cached};
          const std::string where = std::string(policy) + " seed " +
                                    std::to_string(seed) + " pair " +
                                    std::to_string(pair) + " hour " +
                                    std::to_string(hour);
          auto full = keep_all->Route(request, &context);
          auto tight_result = evicting->Route(request, &context);
          ASSERT_TRUE(full.ok()) << where;
          ASSERT_TRUE(tight_result.ok()) << where;
          EXPECT_EQ(full->found, tight_result->found) << where;
          if (full->found && tight_result->found) {
            EXPECT_EQ(full->path.length_m(), tight_result->path.length_m())
                << where;
            EXPECT_EQ(full->path.steps().size(),
                      tight_result->path.steps().size())
                << where;
          }
        }
      }
      const CacheStatsSnapshot stats = evicting->CacheStats();
      EXPECT_EQ(stats.policy, policy);
      EXPECT_GT(stats.evictions, 0u) << policy << ": budget never bound";
      EXPECT_LE(stats.resident_bytes, tight.snapshot_cache.budget_bytes);
    }
  }
}

}  // namespace
}  // namespace itspq

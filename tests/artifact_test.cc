// The packed-artifact subsystem (artifact/): header + section-table
// validation on hostile files (truncation, bit flips, wrong magic,
// future format versions — each a precise Status, never UB), and the
// round-trip property: a venue world rebuilt from its `.itspq` bytes
// answers a randomized workload bit-identically to the in-process
// build, for every registered strategy, midnight-wrap ATIs included.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "artifact/artifact.h"
#include "artifact/format.h"
#include "common/time.h"
#include "gen/workload_gen.h"
#include "query/registry.h"
#include "query/sharded_router.h"
#include "query/venue_catalog.h"
#include "venue/venue.h"

namespace itspq {
namespace {

template <typename T>
T ValueOrDie(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    ADD_FAILURE() << what << ": " << value.status().ToString();
    std::abort();
  }
  return *std::move(value);
}

// Each test writes into its own directory under the test runner's cwd
// so parallel ctest shards never collide.
std::string TestDir(const char* name) {
  const std::string dir = std::string("artifact_test_") + name;
  std::remove((dir + "/a.itspq").c_str());
  (void)std::system(("mkdir -p " + dir).c_str());
  return dir;
}

Venue MakeSmallVenue(uint64_t seed = 7) {
  FleetConfig config;
  config.num_venues = 1;
  config.seed = seed;
  config.min_floors = 1;
  config.max_floors = 2;
  config.min_shop_rows = 2;
  config.max_shop_rows = 2;
  std::vector<Venue> fleet =
      ValueOrDie(GenerateVenueFleet(config), "GenerateVenueFleet");
  return std::move(fleet[0]);
}

std::vector<uint8_t> EncodeSmallVenue() {
  return ValueOrDie(EncodeVenueArtifact(MakeSmallVenue()),
                    "EncodeVenueArtifact");
}

void WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// A corrupt or stale artifact must be rejected at registration with the
// same status the raw loader reports, and the catalog must stay
// untouched — no shard slot, no id burned.
void ExpectRegistrationRejected(const std::string& path, StatusCode code,
                                const std::string& message_fragment) {
  VenueCatalog catalog;
  auto id = catalog.AddArtifactShard(path, "itg-s");
  ASSERT_FALSE(id.ok()) << path;
  EXPECT_EQ(id.status().code(), code) << id.status().ToString();
  EXPECT_NE(id.status().message().find(message_fragment), std::string::npos)
      << id.status().ToString();
  EXPECT_EQ(catalog.NumVenues(), 0u);
  EXPECT_FALSE(catalog.Contains(0));
}

TEST(ArtifactNegativeTest, TruncatedFileRejected) {
  const std::string dir = TestDir("truncated");
  const std::vector<uint8_t> image = EncodeSmallVenue();

  // Cut mid-payload: the header still declares the full size.
  std::vector<uint8_t> cut(image.begin(),
                           image.begin() + static_cast<long>(image.size() / 2));
  WriteBytes(dir + "/a.itspq", cut);
  auto loaded = LoadVenueArtifact(dir + "/a.itspq");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos)
      << loaded.status().ToString();
  ExpectRegistrationRejected(dir + "/a.itspq", StatusCode::kInvalidArgument,
                             "truncated");

  // Cut inside the fixed header: too small to even carry the magic.
  std::vector<uint8_t> stub(image.begin(), image.begin() + 16);
  WriteBytes(dir + "/a.itspq", stub);
  ExpectRegistrationRejected(dir + "/a.itspq", StatusCode::kInvalidArgument,
                             "truncated");
}

TEST(ArtifactNegativeTest, FlippedPayloadByteRejectedByChecksum) {
  const std::string dir = TestDir("bitflip");
  std::vector<uint8_t> image = EncodeSmallVenue();

  // Flip one bit in the last payload byte — far from the header, so
  // only the per-section checksum can catch it.
  image[image.size() - 1] ^= 0x01;
  WriteBytes(dir + "/a.itspq", image);

  auto loaded = LoadVenueArtifact(dir + "/a.itspq");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("checksum mismatch"),
            std::string::npos)
      << loaded.status().ToString();

  // Payload corruption is not visible to the header-only registration
  // check, so the shard registers — the damage must surface as a load
  // error on first touch, with the shard staying cold, not as UB.
  VenueCatalog catalog;
  const VenueId id =
      ValueOrDie(catalog.AddArtifactShard(dir + "/a.itspq", "itg-s"),
                 "AddArtifactShard");
  EXPECT_FALSE(catalog.IsResident(id));
  auto world = catalog.EnsureResident(id);
  ASSERT_FALSE(world.ok());
  EXPECT_EQ(world.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(catalog.IsResident(id));
  EXPECT_EQ(catalog.Stats().total_loads, 0u);
}

TEST(ArtifactNegativeTest, FlippedTableByteRejectedByTableChecksum) {
  const std::string dir = TestDir("tableflip");
  std::vector<uint8_t> image = EncodeSmallVenue();
  // First byte past the fixed header sits in the section table.
  image[sizeof(ArtifactHeader)] ^= 0x80;
  WriteBytes(dir + "/a.itspq", image);
  ExpectRegistrationRejected(dir + "/a.itspq", StatusCode::kInvalidArgument,
                             "section table checksum mismatch");
}

TEST(ArtifactNegativeTest, WrongMagicRejected) {
  const std::string dir = TestDir("magic");
  std::vector<uint8_t> image = EncodeSmallVenue();
  image[0] = 'X';
  WriteBytes(dir + "/a.itspq", image);
  ExpectRegistrationRejected(dir + "/a.itspq", StatusCode::kInvalidArgument,
                             "bad magic");
}

TEST(ArtifactNegativeTest, FutureFormatVersionRejected) {
  const std::string dir = TestDir("version");
  std::vector<uint8_t> image = EncodeSmallVenue();
  // The version field (offset 8, after the magic) is deliberately not
  // covered by any checksum, so a version-only patch is exactly what a
  // newer builder would produce.
  const uint32_t future = kArtifactFormatVersion + 1;
  std::memcpy(image.data() + 8, &future, sizeof(future));
  WriteBytes(dir + "/a.itspq", image);
  ExpectRegistrationRejected(dir + "/a.itspq", StatusCode::kFailedPrecondition,
                             "newer than this build supports");
}

TEST(ArtifactNegativeTest, OldFormatVersionRejected) {
  const std::string dir = TestDir("oldversion");
  std::vector<uint8_t> image = EncodeSmallVenue();
  // A pre-AdjacencyCsr (v1) file: the layout genuinely differs, so the
  // reader must refuse it outright instead of guessing at sections.
  const uint32_t old_version = kArtifactFormatVersion - 1;
  std::memcpy(image.data() + 8, &old_version, sizeof(old_version));
  WriteBytes(dir + "/a.itspq", image);
  ExpectRegistrationRejected(
      dir + "/a.itspq", StatusCode::kFailedPrecondition,
      "unsupported artifact format version " + std::to_string(old_version) +
          " (supported: " + std::to_string(kArtifactFormatVersion) + ")");
}

// Structural validation behind the checksums: an AdjacencyCsr payload
// whose bytes are corrupt but whose section and table checksums have
// been faithfully recomputed (a hostile writer, not random bit rot)
// must still be rejected before the unchecked relaxation loop can
// index out of bounds.
TEST(ArtifactNegativeTest, CorruptAdjacencyEdgeRejectedByValidation) {
  const std::string dir = TestDir("adjcorrupt");
  std::vector<uint8_t> image = EncodeSmallVenue();

  ArtifactHeader header;
  std::memcpy(&header, image.data(), sizeof(header));
  std::vector<ArtifactSectionEntry> table(header.section_count);
  std::memcpy(table.data(), image.data() + sizeof(header),
              table.size() * sizeof(table[0]));
  ArtifactSectionEntry* adj_entry = nullptr;
  for (ArtifactSectionEntry& e : table) {
    if (e.kind == static_cast<uint32_t>(ArtifactSection::kAdjacencyCsr)) {
      adj_entry = &e;
    }
  }
  ASSERT_NE(adj_entry, nullptr) << "v2 artifact must carry AdjacencyCsr";

  // Payload layout: u64 num_doors | u32 seg_offsets[2n+1] |
  // i32 seg_partition[2n] | u32 neighbor_ids[E] | f64 weights[E].
  uint8_t* payload = image.data() + adj_entry->offset;
  uint64_t num_doors;
  std::memcpy(&num_doors, payload, sizeof(num_doors));
  ASSERT_GT(num_doors, 0u);
  const size_t ids_at =
      8 + (2 * num_doors + 1) * sizeof(uint32_t) +
      2 * num_doors * sizeof(int32_t);
  ASSERT_LT(ids_at + sizeof(uint32_t), adj_entry->bytes);
  const uint32_t bogus = 0xFFFFFFFFu;  // id far outside [0, num_doors)
  std::memcpy(payload + ids_at, &bogus, sizeof(bogus));

  // Recompute the section checksum and the table checksum over it, so
  // only the structural validator stands between the bytes and UB.
  adj_entry->checksum = ArtifactChecksum(payload, adj_entry->bytes);
  header.table_checksum =
      ArtifactChecksum(table.data(), table.size() * sizeof(table[0]));
  std::memcpy(image.data(), &header, sizeof(header));
  std::memcpy(image.data() + sizeof(header), table.data(),
              table.size() * sizeof(table[0]));

  WriteBytes(dir + "/a.itspq", image);
  auto loaded = LoadVenueArtifact(dir + "/a.itspq");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("AdjacencyCsr"), std::string::npos)
      << loaded.status().ToString();
  EXPECT_NE(loaded.status().message().find("corrupt edge"), std::string::npos)
      << loaded.status().ToString();
}

// The loaded world carries the compiled adjacency verbatim; assembling
// a world from it must adopt that CSR (with recomputed weight
// extremes), not recompile it.
TEST(ArtifactTest, AdjacencyRoundTripsAndIsAdopted) {
  const std::string dir = TestDir("adjroundtrip");
  Venue venue = MakeSmallVenue();
  ASSERT_TRUE(WriteVenueArtifact(dir + "/a.itspq", venue).ok());
  LoadedVenueWorld world =
      ValueOrDie(LoadVenueArtifact(dir + "/a.itspq"), "LoadVenueArtifact");
  ASSERT_NE(world.adjacency, nullptr);
  EXPECT_EQ(world.adjacency->num_doors, world.venue->NumDoors());

  const CsrAdjacency fresh = CsrAdjacency::Compile(*world.venue);
  EXPECT_EQ(world.adjacency->seg_offsets, fresh.seg_offsets);
  EXPECT_EQ(world.adjacency->seg_partition, fresh.seg_partition);
  EXPECT_EQ(world.adjacency->neighbor_ids, fresh.neighbor_ids);
  EXPECT_EQ(world.adjacency->neighbor_weights, fresh.neighbor_weights);
  EXPECT_EQ(world.adjacency->min_edge_weight, fresh.min_edge_weight);
  EXPECT_EQ(world.adjacency->max_edge_weight, fresh.max_edge_weight);

  const CsrAdjacency* loaded_ptr = world.adjacency.get();
  auto published = BuildWorldFromArtifact(std::move(world), "itg-s");
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_EQ((*published)->graph().adjacency_handle().get(), loaded_ptr);
}

TEST(ArtifactNegativeTest, UnknownStrategyRejectedAtRegistration) {
  const std::string dir = TestDir("strategy");
  WriteBytes(dir + "/a.itspq", EncodeSmallVenue());
  VenueCatalog catalog;
  auto id = catalog.AddArtifactShard(dir + "/a.itspq", "no-such-strategy");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.NumVenues(), 0u);
}

TEST(ArtifactNegativeTest, MissingFileRejected) {
  VenueCatalog catalog;
  auto id = catalog.AddArtifactShard("no/such/dir/a.itspq", "itg-s");
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.NumVenues(), 0u);
}

// The metadata round-trips: label, D2D flag, and the manifest loader's
// relative-path resolution.
TEST(ArtifactTest, LabelAndD2dRoundTrip) {
  const std::string dir = TestDir("meta");
  Venue venue = MakeSmallVenue();
  ArtifactWriteOptions options;
  options.include_d2d = true;
  options.label = "flagship";
  ASSERT_TRUE(WriteVenueArtifact(dir + "/a.itspq", venue, options).ok());

  LoadedVenueWorld world =
      ValueOrDie(LoadVenueArtifact(dir + "/a.itspq"), "LoadVenueArtifact");
  EXPECT_EQ(world.label, "flagship");
  const size_t n = world.venue->NumDoors();
  ASSERT_EQ(world.d2d_matrix.size(), n * n);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(world.d2d_matrix[i * n + i], 0.0);

  {
    std::ofstream manifest(dir + "/fleet.manifest");
    manifest << "# comment\n\na.itspq\n";
  }
  auto listed = ReadFleetManifest(dir + "/fleet.manifest");
  ASSERT_TRUE(listed.ok());
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_EQ((*listed)[0], dir + "/a.itspq");
}

// The tentpole property: for EVERY registered strategy, a shard loaded
// from its artifact answers a 200-query randomized workload
// bit-identically to the same venue built in-process — including a
// venue whose ATIs wrap past midnight (the normalisation-sensitive
// case: wrapped intervals are split at 0/86400 during compilation, and
// the artifact carries both the raw and the compiled form).
TEST(ArtifactRoundTripTest, LoadedWorldAnswersBitIdenticallyPerStrategy) {
  const std::string dir = TestDir("roundtrip");

  // Venue 0: generator output as-is. Venue 1: same geometry with every
  // third door forced onto a 22:00 -> 02:00 midnight-wrap schedule.
  std::vector<Venue> sources;
  sources.push_back(MakeSmallVenue(7));
  {
    const Venue& base = sources[0];
    Venue::Builder wrap = Venue::Builder::FromVenue(base);
    for (DoorId d = 0; d < static_cast<DoorId>(base.NumDoors()); d += 3) {
      ASSERT_TRUE(
          wrap.SetDoorAti(d, {TimeInterval{22 * 3600.0, 2 * 3600.0}}).ok());
    }
    sources.push_back(ValueOrDie(std::move(wrap).Build(), "wrap Build"));
  }

  for (const std::string& strategy : RouterRegistry::Global().Names()) {
    VenueCatalog eager, loaded;
    for (size_t i = 0; i < sources.size(); ++i) {
      const std::string path =
          dir + "/" + strategy + "_" + std::to_string(i) + ".itspq";
      ASSERT_TRUE(WriteVenueArtifact(path, sources[i]).ok()) << path;
      (void)ValueOrDie(eager.AddVenue(Venue(sources[i]), strategy),
                       strategy.c_str());
      (void)ValueOrDie(loaded.AddArtifactShard(path, strategy),
                       strategy.c_str());
    }

    MultiVenueWorkloadConfig workload;
    workload.num_requests = 200;
    workload.seed = 1234;
    workload.pairs_per_venue = 6;
    std::vector<QueryRequest> requests = ValueOrDie(
        GenerateMultiVenueWorkload(eager, workload), "workload");
    // Exercise the snapshot read path too where the strategy has one.
    for (size_t i = 0; i < requests.size(); i += 2) {
      requests[i].options.use_snapshot_cache = true;
    }

    ShardedRouter expect_router(eager), got_router(loaded);
    QueryContext expect_context, got_context;
    for (size_t i = 0; i < requests.size(); ++i) {
      auto expect = expect_router.Route(requests[i], &expect_context);
      auto got = got_router.Route(requests[i], &got_context);
      ASSERT_EQ(expect.ok(), got.ok())
          << strategy << " #" << i << ": " << got.status().ToString();
      if (!expect.ok()) continue;
      ASSERT_EQ(expect->found, got->found) << strategy << " #" << i;
      if (!expect->found) continue;
      // Bit-identical, not approximately equal: the artifact carries
      // the exact doubles the in-process build computes.
      EXPECT_EQ(expect->path.length_m(), got->path.length_m())
          << strategy << " #" << i;
      EXPECT_EQ(expect->path.steps().size(), got->path.steps().size())
          << strategy << " #" << i;
    }

    const CatalogStats stats = loaded.Stats();
    EXPECT_EQ(stats.lazy_shards, sources.size());
    EXPECT_EQ(stats.resident_shards, sources.size());  // all touched
    EXPECT_EQ(stats.total_loads, sources.size());      // exactly once each
  }
}

}  // namespace
}  // namespace itspq

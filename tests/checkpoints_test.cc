#include <gtest/gtest.h>

#include <vector>

#include "common/time.h"
#include "itgraph/checkpoints.h"

namespace itspq {
namespace {

CheckpointSet MakeSet(std::vector<double> times) {
  auto set = CheckpointSet::FromTimes(std::move(times));
  EXPECT_TRUE(set.ok());
  return *std::move(set);
}

TEST(CheckpointSetTest, FromTimesSortsAndDedups) {
  const CheckpointSet set = MakeSet({300, 100, 200, 200});
  ASSERT_EQ(set.NumCheckpoints(), 3u);
  EXPECT_DOUBLE_EQ(set.times()[0], 100);
  EXPECT_DOUBLE_EQ(set.times()[2], 300);
  EXPECT_EQ(set.NumIntervals(), 4u);
}

TEST(CheckpointSetTest, FromTimesRejectsOutOfRange) {
  EXPECT_FALSE(CheckpointSet::FromTimes({0}).ok());
  EXPECT_FALSE(CheckpointSet::FromTimes({-5}).ok());
  EXPECT_FALSE(CheckpointSet::FromTimes({kSecondsPerDay}).ok());
}

TEST(CheckpointSetTest, NextCheckpointStrictlyAfter) {
  const CheckpointSet set = MakeSet({100, 200, 300});
  EXPECT_DOUBLE_EQ(set.NextCheckpoint(0), 100);
  EXPECT_DOUBLE_EQ(set.NextCheckpoint(99), 100);
  // At a checkpoint: the next one, not itself.
  EXPECT_DOUBLE_EQ(set.NextCheckpoint(100), 200);
  EXPECT_DOUBLE_EQ(set.NextCheckpoint(250), 300);
}

TEST(CheckpointSetTest, NextCheckpointAtAndAfterTheLast) {
  const CheckpointSet set = MakeSet({100, 200, 300});
  // At the last checkpoint and beyond: end of day.
  EXPECT_DOUBLE_EQ(set.NextCheckpoint(300), kSecondsPerDay);
  EXPECT_DOUBLE_EQ(set.NextCheckpoint(80000), kSecondsPerDay);
}

TEST(CheckpointSetTest, EmptySetIsOneInterval) {
  const CheckpointSet set;
  EXPECT_EQ(set.NumIntervals(), 1u);
  EXPECT_EQ(set.IntervalIndexOf(12345), 0u);
  EXPECT_DOUBLE_EQ(set.NextCheckpoint(12345), kSecondsPerDay);
}

TEST(CheckpointSetTest, IntervalIndexing) {
  const CheckpointSet set = MakeSet({100, 200});
  EXPECT_EQ(set.IntervalIndexOf(50), 0u);
  EXPECT_EQ(set.IntervalIndexOf(100), 1u);  // intervals are [cp, next)
  EXPECT_EQ(set.IntervalIndexOf(150), 1u);
  EXPECT_EQ(set.IntervalIndexOf(200), 2u);
  EXPECT_EQ(set.IntervalIndexOf(86000), 2u);

  EXPECT_DOUBLE_EQ(set.IntervalMidpoint(0), 50);
  EXPECT_DOUBLE_EQ(set.IntervalMidpoint(1), 150);
  EXPECT_DOUBLE_EQ(set.IntervalMidpoint(2), (200 + kSecondsPerDay) / 2);
}

}  // namespace
}  // namespace itspq

// The network edge end to end over real loopback sockets: the replay
// proof (answers served through the wire are bit-identical to direct
// Router::Route calls), the QoS overload property from the admission
// contract (under 2x overload only the lowest class present is shed and
// the accounting identity stays exact), the stats/shutdown control
// frames, and the hostile-peer taxonomy — truncated frames, oversized
// length prefixes, garbage bytes, mid-frame disconnects, slow-loris
// stalls — each of which must end in a precise kError frame and a
// dropped connection, never UB (the asan/tsan CI presets run this
// file against real sockets).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gen/query_gen.h"
#include "gen/workload_gen.h"
#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"
#include "query/venue_catalog.h"
#include "server/query_service.h"

namespace itspq {
namespace net {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

template <typename T>
T ValueOrDie(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    ADD_FAILURE() << what << ": " << value.status().ToString();
    std::abort();
  }
  return *std::move(value);
}

VenueCatalog MakeCatalog(int num_venues = 2, uint64_t seed = 7) {
  FleetConfig config;
  config.num_venues = num_venues;
  config.seed = seed;
  config.min_floors = 1;
  config.max_floors = 2;
  config.min_shop_rows = 2;
  config.max_shop_rows = 3;
  std::vector<Venue> fleet =
      ValueOrDie(GenerateVenueFleet(config), "GenerateVenueFleet");
  VenueCatalog catalog;
  for (Venue& venue : fleet) {
    (void)ValueOrDie(catalog.AddVenue(std::move(venue), "itg-a+"), "AddVenue");
  }
  return catalog;
}

std::unique_ptr<NetServer> MakeTestServer(
    ServiceOptions service_opts = ServiceOptions(),
    NetServerOptions net_opts = NetServerOptions()) {
  auto service =
      ValueOrDie(MakeQueryService(MakeCatalog(), service_opts),
                 "MakeQueryService");
  return ValueOrDie(MakeNetServer(std::move(service), net_opts),
                    "MakeNetServer");
}

/// Spins until `cond` holds or ~5 s pass (sanitizer presets are slow).
bool WaitFor(const std::function<bool()>& cond) {
  for (int i = 0; i < 1000; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return cond();
}

/// Reads the next frame off a raw socket and decodes it as the server's
/// kError verdict; fails the test otherwise.
WireReply ReadErrorFrame(int fd) {
  std::string payload;
  Status error;
  WireReply reply;
  const FrameRead got = ReadFrame(fd, kDefaultMaxFrameBytes, &payload, &error);
  if (got != FrameRead::kFrame) {
    ADD_FAILURE() << "expected kError frame, got FrameRead "
                  << static_cast<int>(got) << ": " << error.ToString();
    return reply;
  }
  MsgType type = MsgType::kError;
  std::string_view body;
  EXPECT_TRUE(DecodeFrameHeader(payload, &type, &body).ok());
  EXPECT_EQ(type, MsgType::kError);
  EXPECT_TRUE(DecodeReplyBody(body, &reply).ok());
  return reply;
}

/// After the server's goodbye the socket must deliver EOF.
void ExpectEof(int fd) {
  std::string payload;
  Status error;
  EXPECT_EQ(ReadFrame(fd, kDefaultMaxFrameBytes, &payload, &error),
            FrameRead::kCleanClose)
      << error.ToString();
}

// ---------------------------------------------------------------------
// Replay: the socket answers exactly what the router answers.

TEST(NetReplayTest, WireAnswersAreBitIdenticalToDirectRoute) {
  ServiceOptions opts;
  opts.num_workers = 2;
  auto server = MakeTestServer(opts);

  MultiVenueWorkloadConfig config;
  config.num_requests = 60;
  config.seed = 11;
  config.options.use_snapshot_cache = true;
  std::vector<QueryRequest> workload = ValueOrDie(
      GenerateMultiVenueWorkload(server->service().catalog(), config),
      "GenerateMultiVenueWorkload");

  auto client =
      ValueOrDie(NetClient::Connect(server->port()), "NetClient::Connect");
  QueryContext ctx;
  for (const QueryRequest& request : workload) {
    const WireReply reply = ValueOrDie(
        client->Query(request, kInf, QosClass::kInteractive), "Query");
    const StatusOr<QueryResult> direct =
        server->service().router().Route(request, &ctx);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    ASSERT_EQ(reply.code, StatusCode::kOk);
    ASSERT_EQ(reply.found, direct->found);
    if (!direct->found) continue;
    // Bit-exact, not approximately-equal: the wire carries the doubles
    // verbatim and the backend is deterministic.
    EXPECT_EQ(reply.length_m, direct->path.length_m());
    EXPECT_EQ(reply.departure_seconds, direct->path.departure_seconds());
    const std::vector<PathStep>& steps = direct->path.steps();
    ASSERT_EQ(reply.steps.size(), steps.size());
    for (size_t i = 0; i < steps.size(); ++i) {
      EXPECT_EQ(reply.steps[i].door, steps[i].door);
      EXPECT_EQ(reply.steps[i].cumulative_m, steps[i].cumulative_m);
      EXPECT_EQ(reply.steps[i].arrival_seconds, steps[i].arrival_seconds);
    }
  }
  server->Stop();
  const NetServerStats net = server->Stats();
  EXPECT_EQ(net.decode_errors, 0u);
  EXPECT_EQ(net.connections_dropped, 0u);
}

// The three query families ride the same socket: every reachable entry
// and every itinerary leg that comes back over a kTemporalReply frame
// is bit-identical to a direct Route() call on the serving shard.
TEST(NetReplayTest, FamilyAnswersOverWireBitIdenticalToDirectRoute) {
  ServiceOptions opts;
  opts.num_workers = 2;
  auto server = MakeTestServer(opts);
  const ItGraph& graph = server->service().catalog().graph(0);

  std::vector<QueryRequest> workload;
  for (QueryKind kind : {QueryKind::kReachability,
                         QueryKind::kNearestFacility, QueryKind::kMultiStop}) {
    FamilyGenConfig config;
    config.kind = kind;
    config.num_queries = 6;
    config.seed = 23 + static_cast<uint64_t>(kind);
    std::vector<QueryRequest> family =
        ValueOrDie(GenerateFamilyQueries(graph, config), "family gen");
    workload.insert(workload.end(), family.begin(), family.end());
  }

  auto client =
      ValueOrDie(NetClient::Connect(server->port()), "NetClient::Connect");
  QueryContext ctx;
  size_t nonempty = 0;
  for (const QueryRequest& request : workload) {
    const WireReply reply = ValueOrDie(
        client->Query(request, kInf, QosClass::kInteractive), "Query");
    const StatusOr<QueryResult> direct =
        server->service().router().Route(request, &ctx);
    ASSERT_TRUE(direct.ok()) << direct.status().ToString();
    ASSERT_EQ(reply.code, StatusCode::kOk);
    EXPECT_EQ(reply.found, direct->found);

    ASSERT_EQ(reply.reachable.size(), direct->reachable.size());
    for (size_t i = 0; i < direct->reachable.size(); ++i) {
      EXPECT_EQ(reply.reachable[i].door, direct->reachable[i].door);
      EXPECT_EQ(reply.reachable[i].distance_m, direct->reachable[i].distance_m);
      EXPECT_EQ(reply.reachable[i].arrival_seconds,
                direct->reachable[i].arrival_seconds);
    }
    ASSERT_EQ(reply.legs.size(), direct->legs.size());
    for (size_t l = 0; l < direct->legs.size(); ++l) {
      EXPECT_EQ(reply.legs[l].length_m, direct->legs[l].length_m());
      EXPECT_EQ(reply.legs[l].departure_seconds,
                direct->legs[l].departure_seconds());
      const std::vector<PathStep>& steps = direct->legs[l].steps();
      ASSERT_EQ(reply.legs[l].steps.size(), steps.size());
      for (size_t s = 0; s < steps.size(); ++s) {
        EXPECT_EQ(reply.legs[l].steps[s].door, steps[s].door);
        EXPECT_EQ(reply.legs[l].steps[s].cumulative_m, steps[s].cumulative_m);
        EXPECT_EQ(reply.legs[l].steps[s].arrival_seconds,
                  steps[s].arrival_seconds);
      }
    }
    if (!reply.reachable.empty() || !reply.legs.empty()) ++nonempty;
  }
  EXPECT_GT(nonempty, 0u);
  server->Stop();
  EXPECT_EQ(server->Stats().decode_errors, 0u);
}

// A NaN departure fails over the wire exactly like a local Route()
// call would — never a silent found == false. The decoder treats it as
// connection-fatal (structural, not semantic), so each probe needs a
// fresh client.
TEST(NetReplayTest, NanDepartureOverWireFailsLikeLocal) {
  auto server = MakeTestServer();
  const ItGraph& graph = server->service().catalog().graph(0);

  MultiVenueWorkloadConfig p2p_config;
  p2p_config.num_requests = 1;
  p2p_config.seed = 29;
  QueryRequest p2p = ValueOrDie(
      GenerateMultiVenueWorkload(server->service().catalog(), p2p_config),
      "GenerateMultiVenueWorkload")[0];
  p2p.departure = Instant(std::numeric_limits<double>::quiet_NaN());

  FamilyGenConfig family_config;
  family_config.kind = QueryKind::kReachability;
  family_config.num_queries = 1;
  family_config.seed = 31;
  QueryRequest family =
      ValueOrDie(GenerateFamilyQueries(graph, family_config), "family gen")[0];
  family.departure = Instant(std::numeric_limits<double>::quiet_NaN());

  // Both codecs — the kQuery path and the kTemporalQuery path.
  for (const QueryRequest& request : {p2p, family}) {
    auto client =
        ValueOrDie(NetClient::Connect(server->port()), "NetClient::Connect");
    auto reply = client->Query(request, kInf, QosClass::kInteractive);
    ASSERT_FALSE(reply.ok());
    EXPECT_EQ(reply.status().code(), StatusCode::kFailedPrecondition);
    EXPECT_NE(reply.status().message().find("departure"), std::string::npos)
        << reply.status().ToString();
  }
  // The malformed frames never reached admission.
  EXPECT_EQ(server->service().Stats().submitted, 0u);
}

// Semantically malformed family parameters (k == 0 here) are per-query
// failures: the reply carries kInvalidArgument and the connection keeps
// serving.
TEST(NetReplayTest, SemanticFamilyErrorsAreReplyNotConnectionFatal) {
  auto server = MakeTestServer();
  const ItGraph& graph = server->service().catalog().graph(0);
  FamilyGenConfig config;
  config.kind = QueryKind::kNearestFacility;
  config.num_queries = 1;
  config.seed = 37;
  QueryRequest request =
      ValueOrDie(GenerateFamilyQueries(graph, config), "family gen")[0];
  request.k = 0;

  auto client =
      ValueOrDie(NetClient::Connect(server->port()), "NetClient::Connect");
  const WireReply bad = ValueOrDie(
      client->Query(request, kInf, QosClass::kInteractive), "Query");
  EXPECT_EQ(bad.code, StatusCode::kInvalidArgument);
  // Same connection, same query with a legal k: served.
  request.k = 1;
  const WireReply good = ValueOrDie(
      client->Query(request, kInf, QosClass::kInteractive), "Query");
  EXPECT_EQ(good.code, StatusCode::kOk);
  EXPECT_EQ(server->Stats().connections_dropped, 0u);
}

// ---------------------------------------------------------------------
// The QoS overload property: 2x the queue limit offered, all of it
// surviving except the background class, accounting exact.

TEST(NetQosTest, OverloadShedsOnlyLowestClassWithExactAccounting) {
  constexpr size_t kCapacity = 12;
  ServiceOptions opts;
  opts.num_workers = 2;
  opts.queue_capacity = kCapacity;
  opts.start_paused = true;  // admission only, until Resume()
  auto server = MakeTestServer(opts);
  QueryService& service = server->service();

  MultiVenueWorkloadConfig config;
  config.num_requests = static_cast<int>(2 * kCapacity);
  config.seed = 13;
  std::vector<QueryRequest> workload =
      ValueOrDie(GenerateMultiVenueWorkload(service.catalog(), config),
                 "GenerateMultiVenueWorkload");

  // Background first: fills the queue to its limit.
  auto background =
      ValueOrDie(NetClient::Connect(server->port()), "connect background");
  for (size_t i = 0; i < kCapacity; ++i) {
    (void)ValueOrDie(
        background->Send(workload[i], kInf, QosClass::kBackground), "Send");
  }
  ASSERT_TRUE(WaitFor([&] {
    ServiceStats s = service.Stats();
    return s.submitted == kCapacity && s.queue_depth == kCapacity;
  })) << "background traffic never filled the queue";

  // 2x overload: a second queue's worth of higher-class traffic. Every
  // arrival finds the queue full and must displace the youngest
  // background request — interactive and batch never shed each other
  // because together they fit exactly.
  auto foreground =
      ValueOrDie(NetClient::Connect(server->port()), "connect foreground");
  for (size_t i = 0; i < kCapacity; ++i) {
    const QosClass qos =
        i < kCapacity / 2 ? QosClass::kInteractive : QosClass::kBatch;
    (void)ValueOrDie(
        foreground->Send(workload[kCapacity + i], kInf, qos), "Send");
  }

  // Every background reply must come back shed; reading them all is
  // also the barrier proving displacement completed.
  for (size_t i = 0; i < kCapacity; ++i) {
    const WireReply reply =
        ValueOrDie(background->ReceiveReply(), "background reply");
    EXPECT_EQ(reply.code, StatusCode::kResourceExhausted) << "reply " << i;
  }

  service.Resume();
  for (size_t i = 0; i < kCapacity; ++i) {
    const WireReply reply =
        ValueOrDie(foreground->ReceiveReply(), "foreground reply");
    EXPECT_EQ(reply.code, StatusCode::kOk) << "reply " << i;
  }

  // The audited ledger over the wire, exactly as the loadgen reads it.
  auto auditor =
      ValueOrDie(NetClient::Connect(server->port()), "connect auditor");
  const WireStats stats = ValueOrDie(auditor->FetchStats(), "FetchStats");
  EXPECT_EQ(stats.submitted, 2 * kCapacity);
  EXPECT_EQ(stats.served, kCapacity);
  EXPECT_EQ(stats.shed, kCapacity);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.timed_out, 0u);
  EXPECT_EQ(stats.served + stats.shed + stats.rejected + stats.timed_out,
            stats.submitted);
  // The shed mass sits entirely in the background class; both higher
  // classes came through unscathed.
  EXPECT_EQ(stats.shed_by_class[0], 0u);
  EXPECT_EQ(stats.shed_by_class[1], 0u);
  EXPECT_EQ(stats.shed_by_class[2], kCapacity);
  EXPECT_EQ(stats.served_by_class[0], kCapacity / 2);
  EXPECT_EQ(stats.served_by_class[1], kCapacity / 2);
  EXPECT_EQ(stats.served_by_class[2], 0u);
}

// ---------------------------------------------------------------------
// Control frames.

TEST(NetControlTest, ShutdownFrameAcksAndUnblocksTheServer) {
  auto server = MakeTestServer();
  EXPECT_FALSE(server->shutdown_requested());
  auto client =
      ValueOrDie(NetClient::Connect(server->port()), "NetClient::Connect");
  ASSERT_TRUE(client->RequestShutdown().ok());
  EXPECT_TRUE(server->shutdown_requested());
  server->WaitForShutdownRequest();  // must not block
  server->Stop();
}

TEST(NetControlTest, StatsFrameReflectsTraffic) {
  auto server = MakeTestServer();
  auto client =
      ValueOrDie(NetClient::Connect(server->port()), "NetClient::Connect");
  MultiVenueWorkloadConfig config;
  config.num_requests = 8;
  config.seed = 17;
  std::vector<QueryRequest> workload = ValueOrDie(
      GenerateMultiVenueWorkload(server->service().catalog(), config),
      "GenerateMultiVenueWorkload");
  for (const QueryRequest& request : workload) {
    (void)ValueOrDie(client->Query(request, kInf, QosClass::kBatch), "Query");
  }
  const WireStats stats = ValueOrDie(client->FetchStats(), "FetchStats");
  EXPECT_EQ(stats.submitted, 8u);
  EXPECT_EQ(stats.served, 8u);
  EXPECT_EQ(stats.served_by_class[1], 8u);
}

// ---------------------------------------------------------------------
// Hostile peers. Every scenario must end in a precise kError frame
// (best effort), a dropped connection, and an intact server.

TEST(NetHostileTest, OversizedLengthPrefixIsRejectedBeforeAllocation) {
  NetServerOptions net_opts;
  net_opts.max_frame_bytes = 1024;
  auto server = MakeTestServer(ServiceOptions(), net_opts);
  ScopedFd fd = ValueOrDie(ConnectLoopback(server->port()), "connect");
  const uint32_t huge = 0xFFFFFFFFu;
  std::string bytes(reinterpret_cast<const char*>(&huge), sizeof huge);
  ASSERT_TRUE(WriteFrame(fd.get(), bytes).ok());
  const WireReply err = ReadErrorFrame(fd.get());
  EXPECT_EQ(err.code, StatusCode::kInvalidArgument);
  EXPECT_NE(err.message.find("exceeds limit"), std::string::npos);
  ExpectEof(fd.get());
  EXPECT_TRUE(WaitFor([&] { return server->Stats().connections_dropped == 1; }));
}

TEST(NetHostileTest, ZeroLengthFrameIsRejected) {
  auto server = MakeTestServer();
  ScopedFd fd = ValueOrDie(ConnectLoopback(server->port()), "connect");
  const uint32_t zero = 0;
  ASSERT_TRUE(WriteFrame(fd.get(),
                         std::string(reinterpret_cast<const char*>(&zero),
                                     sizeof zero))
                  .ok());
  const WireReply err = ReadErrorFrame(fd.get());
  EXPECT_EQ(err.code, StatusCode::kInvalidArgument);
  EXPECT_NE(err.message.find("zero-length"), std::string::npos);
  ExpectEof(fd.get());
}

TEST(NetHostileTest, GarbageMessageTypeIsRejected) {
  auto server = MakeTestServer();
  ScopedFd fd = ValueOrDie(ConnectLoopback(server->port()), "connect");
  // A well-formed frame carrying nonsense: type byte 0x2a.
  const uint32_t len = 5;
  std::string bytes(reinterpret_cast<const char*>(&len), sizeof len);
  bytes += "\x2ajunk";
  ASSERT_TRUE(WriteFrame(fd.get(), bytes).ok());
  const WireReply err = ReadErrorFrame(fd.get());
  EXPECT_EQ(err.code, StatusCode::kInvalidArgument);
  EXPECT_NE(err.message.find("message type"), std::string::npos);
  ExpectEof(fd.get());
}

TEST(NetHostileTest, TruncatedQueryBodyIsRejected) {
  auto server = MakeTestServer();
  ScopedFd fd = ValueOrDie(ConnectLoopback(server->port()), "connect");
  // A kQuery frame whose body stops mid-field: take a valid frame and
  // re-declare a shorter payload, sending only that much.
  WireQuery query;
  query.request_id = 1;
  query.deadline_micros = kInf;
  std::string frame = EncodeQueryFrame(query);
  const uint32_t short_len = 9;  // type byte + request_id only
  std::memcpy(&frame[0], &short_len, sizeof short_len);
  frame.resize(sizeof short_len + short_len);
  ASSERT_TRUE(WriteFrame(fd.get(), frame).ok());
  const WireReply err = ReadErrorFrame(fd.get());
  EXPECT_EQ(err.code, StatusCode::kInvalidArgument);
  EXPECT_NE(err.message.find("truncated"), std::string::npos);
  ExpectEof(fd.get());
}

TEST(NetHostileTest, BadQosByteOnTheWireIsRejected) {
  auto server = MakeTestServer();
  ScopedFd fd = ValueOrDie(ConnectLoopback(server->port()), "connect");
  WireQuery query;
  query.request_id = 1;
  query.deadline_micros = 100;
  std::string frame = EncodeQueryFrame(query);
  frame[4 + 1 + 8 + 4] = static_cast<char>(kNumQosClasses);  // qos byte
  ASSERT_TRUE(WriteFrame(fd.get(), frame).ok());
  const WireReply err = ReadErrorFrame(fd.get());
  EXPECT_EQ(err.code, StatusCode::kInvalidArgument);
  EXPECT_NE(err.message.find("QoS"), std::string::npos);
  ExpectEof(fd.get());
  // The malformed submission never reached admission.
  EXPECT_EQ(server->service().Stats().submitted, 0u);
}

TEST(NetHostileTest, MidFrameDisconnectIsCountedAndSurvived) {
  auto server = MakeTestServer();
  {
    ScopedFd fd = ValueOrDie(ConnectLoopback(server->port()), "connect");
    const uint32_t len = 100;
    std::string bytes(reinterpret_cast<const char*>(&len), sizeof len);
    bytes += "\x01only-ten";  // 9 of the promised 100 bytes
    ASSERT_TRUE(WriteFrame(fd.get(), bytes).ok());
  }  // destructor closes mid-frame
  EXPECT_TRUE(WaitFor([&] { return server->Stats().connections_dropped == 1; }));
  // The server is still fully alive for well-behaved clients.
  auto client =
      ValueOrDie(NetClient::Connect(server->port()), "NetClient::Connect");
  EXPECT_TRUE(client->FetchStats().ok());
}

TEST(NetHostileTest, SlowLorisMidFrameIsDroppedButIdleIsKept) {
  NetServerOptions net_opts;
  net_opts.recv_timeout_seconds = 0.2;
  auto server = MakeTestServer(ServiceOptions(), net_opts);

  // Idle BETWEEN frames far past the guard window: the connection must
  // survive and still answer.
  auto idle_client =
      ValueOrDie(NetClient::Connect(server->port()), "NetClient::Connect");
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  EXPECT_TRUE(idle_client->FetchStats().ok())
      << "idle connection was dropped by the slow-loris guard";

  // Stalling MID-frame trips the guard: send half a length prefix and
  // nothing more.
  ScopedFd loris = ValueOrDie(ConnectLoopback(server->port()), "connect");
  ASSERT_TRUE(WriteFrame(loris.get(), std::string("\x08\x00", 2)).ok());
  const WireReply err = ReadErrorFrame(loris.get());
  EXPECT_EQ(err.code, StatusCode::kDeadlineExceeded);
  EXPECT_NE(err.message.find("slow-loris"), std::string::npos);
  ExpectEof(loris.get());
  EXPECT_TRUE(WaitFor([&] { return server->Stats().connections_dropped == 1; }));
}

}  // namespace
}  // namespace net
}  // namespace itspq

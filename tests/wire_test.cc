// The frame codec under friendly and hostile input: bit-exact round
// trips for every message type, then the malformed-frame taxonomy —
// truncations at every field boundary, counts that overrun the body,
// garbage enum bytes, trailing bytes — each rejected with a precise
// Status instead of an out-of-bounds read (the asan CI preset is the
// teeth behind that claim).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>

#include "net/wire.h"

namespace itspq {
namespace net {
namespace {

// Splits an encoded frame into (type, body) the way a receiver would,
// asserting the length prefix is self-consistent.
std::string_view FrameBody(const std::string& frame, MsgType expect) {
  EXPECT_GE(frame.size(), 5u);
  uint32_t len = 0;
  std::memcpy(&len, frame.data(), sizeof len);
  EXPECT_EQ(frame.size(), sizeof len + len);
  std::string_view payload(frame.data() + sizeof len, len);
  MsgType type;
  std::string_view body;
  EXPECT_TRUE(DecodeFrameHeader(payload, &type, &body).ok());
  EXPECT_EQ(type, expect);
  return body;
}

WireQuery SampleQuery() {
  WireQuery q;
  q.request_id = 0xDEADBEEFCAFE1234ull;
  q.venue_id = 7;
  q.qos = QosClass::kBatch;
  q.deadline_micros = 12345.678;
  q.use_snapshot_cache = true;
  q.partition_visited_pruning = false;
  q.source_x = 1.25;
  q.source_y = -3.5;
  q.source_floor = 2;
  q.target_x = 901.0625;
  q.target_y = 0.1;  // not exactly representable: bit-exactness matters
  q.target_floor = -1;
  q.departure_seconds = 43200.25;
  return q;
}

TEST(WireQueryTest, RoundTripIsBitExact) {
  const WireQuery q = SampleQuery();
  const std::string frame = EncodeQueryFrame(q);
  WireQuery out;
  ASSERT_TRUE(DecodeQueryBody(FrameBody(frame, MsgType::kQuery), &out).ok());
  EXPECT_EQ(out.request_id, q.request_id);
  EXPECT_EQ(out.venue_id, q.venue_id);
  EXPECT_EQ(out.qos, q.qos);
  EXPECT_EQ(out.deadline_micros, q.deadline_micros);
  EXPECT_EQ(out.use_snapshot_cache, q.use_snapshot_cache);
  EXPECT_EQ(out.partition_visited_pruning, q.partition_visited_pruning);
  EXPECT_EQ(out.source_x, q.source_x);
  EXPECT_EQ(out.source_y, q.source_y);
  EXPECT_EQ(out.source_floor, q.source_floor);
  EXPECT_EQ(out.target_x, q.target_x);
  EXPECT_EQ(out.target_y, q.target_y);
  EXPECT_EQ(out.target_floor, q.target_floor);
  EXPECT_EQ(out.departure_seconds, q.departure_seconds);
}

TEST(WireQueryTest, QueryRequestConversionPreservesEverything) {
  const WireQuery q = SampleQuery();
  const QueryRequest request = ToQueryRequest(q);
  const WireQuery back = FromQueryRequest(request, q.request_id, q.qos,
                                          q.deadline_micros);
  EXPECT_EQ(back.venue_id, q.venue_id);
  EXPECT_EQ(back.source_x, q.source_x);
  EXPECT_EQ(back.source_floor, q.source_floor);
  EXPECT_EQ(back.target_y, q.target_y);
  EXPECT_EQ(back.departure_seconds, q.departure_seconds);
  EXPECT_EQ(back.use_snapshot_cache, q.use_snapshot_cache);
  EXPECT_EQ(back.partition_visited_pruning, q.partition_visited_pruning);
}

TEST(WireQueryTest, InfiniteDeadlineSurvivesTheWire) {
  WireQuery q = SampleQuery();
  q.deadline_micros = std::numeric_limits<double>::infinity();
  WireQuery out;
  ASSERT_TRUE(DecodeQueryBody(
                  FrameBody(EncodeQueryFrame(q), MsgType::kQuery), &out)
                  .ok());
  EXPECT_TRUE(std::isinf(out.deadline_micros));
}

TEST(WireQueryTest, TruncationAtEveryBoundaryIsRejected) {
  const std::string frame = EncodeQueryFrame(SampleQuery());
  const std::string_view body = FrameBody(frame, MsgType::kQuery);
  // Every strict prefix of the body must fail decode — never crash,
  // never succeed with garbage.
  for (size_t n = 0; n < body.size(); ++n) {
    WireQuery out;
    const Status s = DecodeQueryBody(body.substr(0, n), &out);
    EXPECT_FALSE(s.ok()) << "prefix of " << n << " bytes decoded";
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireQueryTest, TrailingBytesAreRejected) {
  std::string frame = EncodeQueryFrame(SampleQuery());
  std::string body(FrameBody(frame, MsgType::kQuery));
  body.push_back('\0');
  WireQuery out;
  const Status s = DecodeQueryBody(body, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("trailing"), std::string::npos);
}

TEST(WireQueryTest, UnknownQosByteIsRejected) {
  std::string frame = EncodeQueryFrame(SampleQuery());
  // Body layout: request_id (8) + venue_id (4) + qos byte.
  const size_t qos_offset = 4 /*prefix*/ + 1 /*type*/ + 8 + 4;
  frame[qos_offset] = static_cast<char>(kNumQosClasses);
  WireQuery out;
  const Status s =
      DecodeQueryBody(FrameBody(frame, MsgType::kQuery), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("QoS"), std::string::npos);
}

TEST(WireQueryTest, NanAndNegativeDeadlinesNeverDecode) {
  for (double bad : {std::nan(""), -1.0,
                     -std::numeric_limits<double>::infinity()}) {
    WireQuery q = SampleQuery();
    q.deadline_micros = bad;
    WireQuery out;
    const Status s = DecodeQueryBody(
        FrameBody(EncodeQueryFrame(q), MsgType::kQuery), &out);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(WireReplyTest, RoundTripWithPathSteps) {
  WireReply reply;
  reply.request_id = 42;
  reply.code = StatusCode::kOk;
  reply.found = true;
  reply.length_m = 633.41;
  reply.departure_seconds = 30600;
  for (int i = 0; i < 5; ++i) {
    PathStep step;
    step.door = i * 3;
    step.cumulative_m = i * 12.5;
    step.arrival_seconds = 30600 + i * 10.41;
    reply.steps.push_back(step);
  }
  const std::string frame = EncodeReplyFrame(reply, MsgType::kQueryReply);
  WireReply out;
  ASSERT_TRUE(
      DecodeReplyBody(FrameBody(frame, MsgType::kQueryReply), &out).ok());
  EXPECT_EQ(out.request_id, reply.request_id);
  EXPECT_EQ(out.code, StatusCode::kOk);
  EXPECT_TRUE(out.found);
  EXPECT_EQ(out.length_m, reply.length_m);
  ASSERT_EQ(out.steps.size(), reply.steps.size());
  for (size_t i = 0; i < out.steps.size(); ++i) {
    EXPECT_EQ(out.steps[i].door, reply.steps[i].door);
    EXPECT_EQ(out.steps[i].cumulative_m, reply.steps[i].cumulative_m);
    EXPECT_EQ(out.steps[i].arrival_seconds, reply.steps[i].arrival_seconds);
  }
}

TEST(WireReplyTest, ErrorReplyCarriesStatus) {
  WireReply reply;
  reply.request_id = 9;
  reply.code = StatusCode::kResourceExhausted;
  reply.message = "shed: displaced by higher-priority traffic";
  const std::string frame = EncodeReplyFrame(reply, MsgType::kQueryReply);
  WireReply out;
  ASSERT_TRUE(
      DecodeReplyBody(FrameBody(frame, MsgType::kQueryReply), &out).ok());
  EXPECT_EQ(out.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(out.message, reply.message);
  EXPECT_FALSE(out.found);
}

TEST(WireReplyTest, UnknownStatusByteIsRejected) {
  WireReply reply;
  reply.request_id = 1;
  std::string frame = EncodeReplyFrame(reply, MsgType::kQueryReply);
  const size_t code_offset = 4 + 1 + 8;  // prefix + type + request_id
  frame[code_offset] = static_cast<char>(kNumWireStatusCodes);
  WireReply out;
  const Status s =
      DecodeReplyBody(FrameBody(frame, MsgType::kQueryReply), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("status code"), std::string::npos);
}

TEST(WireReplyTest, StepCountOverrunningBodyIsRejectedBeforeAllocation) {
  WireReply reply;
  reply.request_id = 1;
  std::string frame = EncodeReplyFrame(reply, MsgType::kQueryReply);
  // Body tail is the uint32 step count (0 in this frame); claim 2^16-1
  // steps with no bytes behind them.
  const uint32_t huge = kMaxWireSteps - 1;
  std::memcpy(&frame[frame.size() - 4], &huge, sizeof huge);
  WireReply out;
  const Status s =
      DecodeReplyBody(FrameBody(frame, MsgType::kQueryReply), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("truncated"), std::string::npos);
  // And a count beyond the hard cap is its own precise rejection.
  const uint32_t absurd = kMaxWireSteps + 1;
  std::memcpy(&frame[frame.size() - 4], &absurd, sizeof absurd);
  const Status cap =
      DecodeReplyBody(FrameBody(frame, MsgType::kQueryReply), &out);
  EXPECT_EQ(cap.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(cap.message().find("limit"), std::string::npos);
}

TEST(WireReplyTest, OversizedMessageStringIsRejected) {
  WireReply reply;
  reply.request_id = 1;
  reply.code = StatusCode::kInternal;
  std::string frame = EncodeReplyFrame(reply, MsgType::kQueryReply);
  // The message length field sits after request_id + code byte; claim
  // a string longer than the cap (and the body).
  const size_t len_offset = 4 + 1 + 8 + 1;
  const uint32_t huge = kMaxWireString + 1;
  std::memcpy(&frame[len_offset], &huge, sizeof huge);
  WireReply out;
  const Status s =
      DecodeReplyBody(FrameBody(frame, MsgType::kQueryReply), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(WireReplyTest, EncoderTruncatesOverlongMessages) {
  WireReply reply;
  reply.request_id = 1;
  reply.code = StatusCode::kInternal;
  reply.message.assign(kMaxWireString * 2, 'x');
  const std::string frame = EncodeReplyFrame(reply, MsgType::kQueryReply);
  WireReply out;
  ASSERT_TRUE(
      DecodeReplyBody(FrameBody(frame, MsgType::kQueryReply), &out).ok());
  EXPECT_EQ(out.message.size(), kMaxWireString);
}

TEST(WireStatsTest, RoundTrip) {
  WireStats stats;
  stats.submitted = 1000;
  stats.served = 800;
  stats.shed = 120;
  stats.rejected = 50;
  stats.timed_out = 30;
  stats.served_by_class[0] = 500;
  stats.served_by_class[1] = 200;
  stats.served_by_class[2] = 100;
  stats.shed_by_class[2] = 120;
  stats.p50_micros = 512;
  stats.p99_micros = 8192;
  const std::string frame = EncodeStatsReplyFrame(stats);
  WireStats out;
  ASSERT_TRUE(
      DecodeStatsReplyBody(FrameBody(frame, MsgType::kStatsReply), &out).ok());
  EXPECT_EQ(out.submitted, stats.submitted);
  EXPECT_EQ(out.served, stats.served);
  EXPECT_EQ(out.shed, stats.shed);
  EXPECT_EQ(out.rejected, stats.rejected);
  EXPECT_EQ(out.timed_out, stats.timed_out);
  EXPECT_EQ(out.served_by_class[1], 200u);
  EXPECT_EQ(out.shed_by_class[2], 120u);
  EXPECT_EQ(out.p99_micros, 8192);
}

TEST(FrameHeaderTest, EmptyAndUnknownTypesRejected) {
  MsgType type;
  std::string_view body;
  EXPECT_EQ(DecodeFrameHeader("", &type, &body).code(),
            StatusCode::kInvalidArgument);
  const std::string garbage = "\x2a junk";
  EXPECT_EQ(DecodeFrameHeader(garbage, &type, &body).code(),
            StatusCode::kInvalidArgument);
  const std::string zero("\0", 1);
  EXPECT_EQ(DecodeFrameHeader(zero, &type, &body).code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameHeaderTest, EmptyBodyFramesDecode) {
  for (MsgType t :
       {MsgType::kStatsRequest, MsgType::kShutdown, MsgType::kShutdownAck}) {
    const std::string frame = EncodeEmptyFrame(t);
    EXPECT_TRUE(FrameBody(frame, t).empty());
  }
}

}  // namespace
}  // namespace net
}  // namespace itspq

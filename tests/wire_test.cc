// The frame codec under friendly and hostile input: bit-exact round
// trips for every message type, then the malformed-frame taxonomy —
// truncations at every field boundary, counts that overrun the body,
// garbage enum bytes, trailing bytes — each rejected with a precise
// Status instead of an out-of-bounds read (the asan CI preset is the
// teeth behind that claim).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>

#include "net/wire.h"

namespace itspq {
namespace net {
namespace {

// Splits an encoded frame into (type, body) the way a receiver would,
// asserting the length prefix is self-consistent.
std::string_view FrameBody(const std::string& frame, MsgType expect) {
  EXPECT_GE(frame.size(), 5u);
  uint32_t len = 0;
  std::memcpy(&len, frame.data(), sizeof len);
  EXPECT_EQ(frame.size(), sizeof len + len);
  std::string_view payload(frame.data() + sizeof len, len);
  MsgType type;
  std::string_view body;
  EXPECT_TRUE(DecodeFrameHeader(payload, &type, &body).ok());
  EXPECT_EQ(type, expect);
  return body;
}

WireQuery SampleQuery() {
  WireQuery q;
  q.request_id = 0xDEADBEEFCAFE1234ull;
  q.venue_id = 7;
  q.qos = QosClass::kBatch;
  q.deadline_micros = 12345.678;
  q.use_snapshot_cache = true;
  q.partition_visited_pruning = false;
  q.source_x = 1.25;
  q.source_y = -3.5;
  q.source_floor = 2;
  q.target_x = 901.0625;
  q.target_y = 0.1;  // not exactly representable: bit-exactness matters
  q.target_floor = -1;
  q.departure_seconds = 43200.25;
  return q;
}

TEST(WireQueryTest, RoundTripIsBitExact) {
  const WireQuery q = SampleQuery();
  const std::string frame = EncodeQueryFrame(q);
  WireQuery out;
  ASSERT_TRUE(DecodeQueryBody(FrameBody(frame, MsgType::kQuery), &out).ok());
  EXPECT_EQ(out.request_id, q.request_id);
  EXPECT_EQ(out.venue_id, q.venue_id);
  EXPECT_EQ(out.qos, q.qos);
  EXPECT_EQ(out.deadline_micros, q.deadline_micros);
  EXPECT_EQ(out.use_snapshot_cache, q.use_snapshot_cache);
  EXPECT_EQ(out.partition_visited_pruning, q.partition_visited_pruning);
  EXPECT_EQ(out.source_x, q.source_x);
  EXPECT_EQ(out.source_y, q.source_y);
  EXPECT_EQ(out.source_floor, q.source_floor);
  EXPECT_EQ(out.target_x, q.target_x);
  EXPECT_EQ(out.target_y, q.target_y);
  EXPECT_EQ(out.target_floor, q.target_floor);
  EXPECT_EQ(out.departure_seconds, q.departure_seconds);
}

TEST(WireQueryTest, QueryRequestConversionPreservesEverything) {
  const WireQuery q = SampleQuery();
  const QueryRequest request = ToQueryRequest(q);
  const WireQuery back = FromQueryRequest(request, q.request_id, q.qos,
                                          q.deadline_micros);
  EXPECT_EQ(back.venue_id, q.venue_id);
  EXPECT_EQ(back.source_x, q.source_x);
  EXPECT_EQ(back.source_floor, q.source_floor);
  EXPECT_EQ(back.target_y, q.target_y);
  EXPECT_EQ(back.departure_seconds, q.departure_seconds);
  EXPECT_EQ(back.use_snapshot_cache, q.use_snapshot_cache);
  EXPECT_EQ(back.partition_visited_pruning, q.partition_visited_pruning);
}

TEST(WireQueryTest, InfiniteDeadlineSurvivesTheWire) {
  WireQuery q = SampleQuery();
  q.deadline_micros = std::numeric_limits<double>::infinity();
  WireQuery out;
  ASSERT_TRUE(DecodeQueryBody(
                  FrameBody(EncodeQueryFrame(q), MsgType::kQuery), &out)
                  .ok());
  EXPECT_TRUE(std::isinf(out.deadline_micros));
}

TEST(WireQueryTest, TruncationAtEveryBoundaryIsRejected) {
  const std::string frame = EncodeQueryFrame(SampleQuery());
  const std::string_view body = FrameBody(frame, MsgType::kQuery);
  // Every strict prefix of the body must fail decode — never crash,
  // never succeed with garbage.
  for (size_t n = 0; n < body.size(); ++n) {
    WireQuery out;
    const Status s = DecodeQueryBody(body.substr(0, n), &out);
    EXPECT_FALSE(s.ok()) << "prefix of " << n << " bytes decoded";
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireQueryTest, TrailingBytesAreRejected) {
  std::string frame = EncodeQueryFrame(SampleQuery());
  std::string body(FrameBody(frame, MsgType::kQuery));
  body.push_back('\0');
  WireQuery out;
  const Status s = DecodeQueryBody(body, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("trailing"), std::string::npos);
}

TEST(WireQueryTest, UnknownQosByteIsRejected) {
  std::string frame = EncodeQueryFrame(SampleQuery());
  // Body layout: request_id (8) + venue_id (4) + qos byte.
  const size_t qos_offset = 4 /*prefix*/ + 1 /*type*/ + 8 + 4;
  frame[qos_offset] = static_cast<char>(kNumQosClasses);
  WireQuery out;
  const Status s =
      DecodeQueryBody(FrameBody(frame, MsgType::kQuery), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("QoS"), std::string::npos);
}

TEST(WireQueryTest, NanAndNegativeDeadlinesNeverDecode) {
  for (double bad : {std::nan(""), -1.0,
                     -std::numeric_limits<double>::infinity()}) {
    WireQuery q = SampleQuery();
    q.deadline_micros = bad;
    WireQuery out;
    const Status s = DecodeQueryBody(
        FrameBody(EncodeQueryFrame(q), MsgType::kQuery), &out);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(WireReplyTest, RoundTripWithPathSteps) {
  WireReply reply;
  reply.request_id = 42;
  reply.code = StatusCode::kOk;
  reply.found = true;
  reply.length_m = 633.41;
  reply.departure_seconds = 30600;
  for (int i = 0; i < 5; ++i) {
    PathStep step;
    step.door = i * 3;
    step.cumulative_m = i * 12.5;
    step.arrival_seconds = 30600 + i * 10.41;
    reply.steps.push_back(step);
  }
  const std::string frame = EncodeReplyFrame(reply, MsgType::kQueryReply);
  WireReply out;
  ASSERT_TRUE(
      DecodeReplyBody(FrameBody(frame, MsgType::kQueryReply), &out).ok());
  EXPECT_EQ(out.request_id, reply.request_id);
  EXPECT_EQ(out.code, StatusCode::kOk);
  EXPECT_TRUE(out.found);
  EXPECT_EQ(out.length_m, reply.length_m);
  ASSERT_EQ(out.steps.size(), reply.steps.size());
  for (size_t i = 0; i < out.steps.size(); ++i) {
    EXPECT_EQ(out.steps[i].door, reply.steps[i].door);
    EXPECT_EQ(out.steps[i].cumulative_m, reply.steps[i].cumulative_m);
    EXPECT_EQ(out.steps[i].arrival_seconds, reply.steps[i].arrival_seconds);
  }
}

TEST(WireReplyTest, ErrorReplyCarriesStatus) {
  WireReply reply;
  reply.request_id = 9;
  reply.code = StatusCode::kResourceExhausted;
  reply.message = "shed: displaced by higher-priority traffic";
  const std::string frame = EncodeReplyFrame(reply, MsgType::kQueryReply);
  WireReply out;
  ASSERT_TRUE(
      DecodeReplyBody(FrameBody(frame, MsgType::kQueryReply), &out).ok());
  EXPECT_EQ(out.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(out.message, reply.message);
  EXPECT_FALSE(out.found);
}

TEST(WireReplyTest, UnknownStatusByteIsRejected) {
  WireReply reply;
  reply.request_id = 1;
  std::string frame = EncodeReplyFrame(reply, MsgType::kQueryReply);
  const size_t code_offset = 4 + 1 + 8;  // prefix + type + request_id
  frame[code_offset] = static_cast<char>(kNumWireStatusCodes);
  WireReply out;
  const Status s =
      DecodeReplyBody(FrameBody(frame, MsgType::kQueryReply), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("status code"), std::string::npos);
}

TEST(WireReplyTest, StepCountOverrunningBodyIsRejectedBeforeAllocation) {
  WireReply reply;
  reply.request_id = 1;
  std::string frame = EncodeReplyFrame(reply, MsgType::kQueryReply);
  // Body tail is the uint32 step count (0 in this frame); claim 2^16-1
  // steps with no bytes behind them.
  const uint32_t huge = kMaxWireSteps - 1;
  std::memcpy(&frame[frame.size() - 4], &huge, sizeof huge);
  WireReply out;
  const Status s =
      DecodeReplyBody(FrameBody(frame, MsgType::kQueryReply), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("truncated"), std::string::npos);
  // And a count beyond the hard cap is its own precise rejection.
  const uint32_t absurd = kMaxWireSteps + 1;
  std::memcpy(&frame[frame.size() - 4], &absurd, sizeof absurd);
  const Status cap =
      DecodeReplyBody(FrameBody(frame, MsgType::kQueryReply), &out);
  EXPECT_EQ(cap.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(cap.message().find("limit"), std::string::npos);
}

TEST(WireReplyTest, OversizedMessageStringIsRejected) {
  WireReply reply;
  reply.request_id = 1;
  reply.code = StatusCode::kInternal;
  std::string frame = EncodeReplyFrame(reply, MsgType::kQueryReply);
  // The message length field sits after request_id + code byte; claim
  // a string longer than the cap (and the body).
  const size_t len_offset = 4 + 1 + 8 + 1;
  const uint32_t huge = kMaxWireString + 1;
  std::memcpy(&frame[len_offset], &huge, sizeof huge);
  WireReply out;
  const Status s =
      DecodeReplyBody(FrameBody(frame, MsgType::kQueryReply), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(WireReplyTest, EncoderTruncatesOverlongMessages) {
  WireReply reply;
  reply.request_id = 1;
  reply.code = StatusCode::kInternal;
  reply.message.assign(kMaxWireString * 2, 'x');
  const std::string frame = EncodeReplyFrame(reply, MsgType::kQueryReply);
  WireReply out;
  ASSERT_TRUE(
      DecodeReplyBody(FrameBody(frame, MsgType::kQueryReply), &out).ok());
  EXPECT_EQ(out.message.size(), kMaxWireString);
}

// A kTemporalQuery carrying every extension field at once; the kind is
// whatever the test needs.
WireQuery SampleTemporalQuery(QueryKind kind) {
  WireQuery q = SampleQuery();
  q.kind = kind;
  q.budget_seconds = 1234.0625;
  q.k = 3;
  q.facilities = {4, 0, 219};
  q.waypoints = {IndoorPoint{{12.5, -0.1}, 1}, IndoorPoint{{900.25, 3.5}, 0}};
  return q;
}

TEST(WireTemporalQueryTest, RoundTripIsBitExactForEveryKind) {
  for (QueryKind kind : {QueryKind::kReachability, QueryKind::kNearestFacility,
                         QueryKind::kMultiStop}) {
    const WireQuery q = SampleTemporalQuery(kind);
    const std::string frame = EncodeTemporalQueryFrame(q);
    WireQuery out;
    ASSERT_TRUE(DecodeTemporalQueryBody(
                    FrameBody(frame, MsgType::kTemporalQuery), &out)
                    .ok());
    EXPECT_EQ(out.request_id, q.request_id);
    EXPECT_EQ(out.kind, kind);
    EXPECT_EQ(out.budget_seconds, q.budget_seconds);
    EXPECT_EQ(out.k, q.k);
    EXPECT_EQ(out.facilities, q.facilities);
    ASSERT_EQ(out.waypoints.size(), q.waypoints.size());
    for (size_t i = 0; i < q.waypoints.size(); ++i) {
      EXPECT_EQ(out.waypoints[i].p.x, q.waypoints[i].p.x);
      EXPECT_EQ(out.waypoints[i].p.y, q.waypoints[i].p.y);
      EXPECT_EQ(out.waypoints[i].floor, q.waypoints[i].floor);
    }
    EXPECT_EQ(out.departure_seconds, q.departure_seconds);
  }
}

TEST(WireTemporalQueryTest, ConversionCarriesFamilyFieldsBothWays) {
  const WireQuery q = SampleTemporalQuery(QueryKind::kNearestFacility);
  const QueryRequest request = ToQueryRequest(q);
  EXPECT_EQ(request.kind, QueryKind::kNearestFacility);
  EXPECT_EQ(request.budget_seconds, q.budget_seconds);
  EXPECT_EQ(request.k, q.k);
  EXPECT_EQ(request.facilities, q.facilities);
  const WireQuery back =
      FromQueryRequest(request, q.request_id, q.qos, q.deadline_micros);
  EXPECT_EQ(back.kind, q.kind);
  EXPECT_EQ(back.facilities, q.facilities);
  EXPECT_EQ(back.waypoints.size(), q.waypoints.size());
}

TEST(WireTemporalQueryTest, TruncationAtEveryBoundaryIsRejected) {
  const std::string frame =
      EncodeTemporalQueryFrame(SampleTemporalQuery(QueryKind::kMultiStop));
  const std::string_view body = FrameBody(frame, MsgType::kTemporalQuery);
  for (size_t n = 0; n < body.size(); ++n) {
    WireQuery out;
    const Status s = DecodeTemporalQueryBody(body.substr(0, n), &out);
    EXPECT_FALSE(s.ok()) << "prefix of " << n << " bytes decoded";
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireTemporalQueryTest, TrailingBytesAreRejected) {
  std::string body(FrameBody(
      EncodeTemporalQueryFrame(SampleTemporalQuery(QueryKind::kReachability)),
      MsgType::kTemporalQuery));
  body.push_back('\0');
  WireQuery out;
  const Status s = DecodeTemporalQueryBody(body, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("trailing"), std::string::npos);
}

TEST(WireTemporalQueryTest, UnknownKindByteIsRejected) {
  std::string frame =
      EncodeTemporalQueryFrame(SampleTemporalQuery(QueryKind::kReachability));
  // The kind byte follows the 70-byte common body: prefix (4) + type
  // (1) + common (70).
  const size_t kind_offset = 4 + 1 + 70;
  frame[kind_offset] = static_cast<char>(kNumQueryKinds);
  WireQuery out;
  const Status s = DecodeTemporalQueryBody(
      FrameBody(frame, MsgType::kTemporalQuery), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("kind"), std::string::npos);
}

TEST(WireTemporalQueryTest, NonFiniteDepartureRejectedByBothCodecs) {
  for (double bad : {std::nan(""), std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()}) {
    WireQuery q = SampleQuery();
    q.departure_seconds = bad;
    WireQuery out;
    const Status plain =
        DecodeQueryBody(FrameBody(EncodeQueryFrame(q), MsgType::kQuery), &out);
    EXPECT_EQ(plain.code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(plain.message().find("departure"), std::string::npos);

    WireQuery tq = SampleTemporalQuery(QueryKind::kMultiStop);
    tq.departure_seconds = bad;
    const Status temporal = DecodeTemporalQueryBody(
        FrameBody(EncodeTemporalQueryFrame(tq), MsgType::kTemporalQuery),
        &out);
    EXPECT_EQ(temporal.code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(temporal.message().find("departure"), std::string::npos);
  }
}

TEST(WireTemporalQueryTest, NonFiniteBudgetRejectedForReachabilityOnly) {
  for (double bad : {std::nan(""), std::numeric_limits<double>::infinity()}) {
    WireQuery q = SampleTemporalQuery(QueryKind::kReachability);
    q.budget_seconds = bad;
    WireQuery out;
    const Status s = DecodeTemporalQueryBody(
        FrameBody(EncodeTemporalQueryFrame(q), MsgType::kTemporalQuery), &out);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << bad;
    EXPECT_NE(s.message().find("budget"), std::string::npos);

    // Other kinds never read the budget, so its bits pass through.
    q.kind = QueryKind::kNearestFacility;
    ASSERT_TRUE(DecodeTemporalQueryBody(
                    FrameBody(EncodeTemporalQueryFrame(q),
                              MsgType::kTemporalQuery),
                    &out)
                    .ok())
        << bad;
  }
}

TEST(WireTemporalQueryTest, FacilityCountOverrunsAreRejected) {
  WireQuery q = SampleTemporalQuery(QueryKind::kReachability);
  q.facilities.clear();
  q.waypoints.clear();
  std::string frame = EncodeTemporalQueryFrame(q);
  // Facility count offset: prefix (4) + type (1) + common (70) + kind
  // (1) + budget (8) + k (4).
  const size_t count_offset = 4 + 1 + 70 + 1 + 8 + 4;
  // Within the cap but with no bytes behind it: a truncation.
  const uint32_t claims = 1024;
  std::memcpy(&frame[count_offset], &claims, sizeof claims);
  WireQuery out;
  Status s = DecodeTemporalQueryBody(
      FrameBody(frame, MsgType::kTemporalQuery), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("truncated"), std::string::npos);
  // Beyond the cap: its own precise rejection, before any allocation.
  const uint32_t absurd = kMaxWireFacilities + 1;
  std::memcpy(&frame[count_offset], &absurd, sizeof absurd);
  s = DecodeTemporalQueryBody(FrameBody(frame, MsgType::kTemporalQuery), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("limit"), std::string::npos);
}

TEST(WireTemporalQueryTest, WaypointCountOverrunsAreRejected) {
  WireQuery q = SampleTemporalQuery(QueryKind::kMultiStop);
  q.facilities.clear();
  q.waypoints.clear();
  std::string frame = EncodeTemporalQueryFrame(q);
  // Waypoint count follows the (empty) facility list: facility count
  // offset + 4.
  const size_t count_offset = 4 + 1 + 70 + 1 + 8 + 4 + 4;
  const uint32_t claims = 512;
  std::memcpy(&frame[count_offset], &claims, sizeof claims);
  WireQuery out;
  Status s = DecodeTemporalQueryBody(
      FrameBody(frame, MsgType::kTemporalQuery), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("truncated"), std::string::npos);
  const uint32_t absurd = kMaxWireWaypoints + 1;
  std::memcpy(&frame[count_offset], &absurd, sizeof absurd);
  s = DecodeTemporalQueryBody(FrameBody(frame, MsgType::kTemporalQuery), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("limit"), std::string::npos);
}

WireReply SampleTemporalReply() {
  WireReply reply;
  reply.request_id = 77;
  reply.code = StatusCode::kOk;
  reply.found = true;
  for (int i = 0; i < 4; ++i) {
    ReachableDoor door;
    door.door = i * 7;
    door.distance_m = 100.125 * (i + 1);
    door.arrival_seconds = 43200 + 83.4375 * (i + 1);
    reply.reachable.push_back(door);
  }
  for (int l = 0; l < 2; ++l) {
    WireLeg leg;
    leg.length_m = 250.5 + l;
    leg.departure_seconds = 43200 + 200.0 * l;
    for (int s = 0; s < 3; ++s) {
      PathStep step;
      step.door = l * 10 + s;
      step.cumulative_m = s * 12.25;
      step.arrival_seconds = leg.departure_seconds + s * 10.5;
      leg.steps.push_back(step);
    }
    reply.legs.push_back(leg);
  }
  return reply;
}

TEST(WireTemporalReplyTest, RoundTripWithReachableAndLegsIsBitExact) {
  const WireReply reply = SampleTemporalReply();
  const std::string frame = EncodeReplyFrame(reply, MsgType::kTemporalReply);
  WireReply out;
  ASSERT_TRUE(DecodeTemporalReplyBody(
                  FrameBody(frame, MsgType::kTemporalReply), &out)
                  .ok());
  ASSERT_EQ(out.reachable.size(), reply.reachable.size());
  for (size_t i = 0; i < reply.reachable.size(); ++i) {
    EXPECT_EQ(out.reachable[i].door, reply.reachable[i].door);
    EXPECT_EQ(out.reachable[i].distance_m, reply.reachable[i].distance_m);
    EXPECT_EQ(out.reachable[i].arrival_seconds,
              reply.reachable[i].arrival_seconds);
  }
  ASSERT_EQ(out.legs.size(), reply.legs.size());
  for (size_t l = 0; l < reply.legs.size(); ++l) {
    EXPECT_EQ(out.legs[l].length_m, reply.legs[l].length_m);
    EXPECT_EQ(out.legs[l].departure_seconds, reply.legs[l].departure_seconds);
    ASSERT_EQ(out.legs[l].steps.size(), reply.legs[l].steps.size());
    for (size_t s = 0; s < reply.legs[l].steps.size(); ++s) {
      EXPECT_EQ(out.legs[l].steps[s].door, reply.legs[l].steps[s].door);
      EXPECT_EQ(out.legs[l].steps[s].cumulative_m,
                reply.legs[l].steps[s].cumulative_m);
      EXPECT_EQ(out.legs[l].steps[s].arrival_seconds,
                reply.legs[l].steps[s].arrival_seconds);
    }
  }
}

TEST(WireTemporalReplyTest, QueryReplyFramesCarryNoExtension) {
  // Encoding the same reply as kQueryReply drops the extension — the
  // old layout stays byte-stable for old peers...
  const WireReply reply = SampleTemporalReply();
  const std::string frame = EncodeReplyFrame(reply, MsgType::kQueryReply);
  WireReply out;
  ASSERT_TRUE(
      DecodeReplyBody(FrameBody(frame, MsgType::kQueryReply), &out).ok());
  EXPECT_TRUE(out.reachable.empty());
  EXPECT_TRUE(out.legs.empty());
  // ...and the base decoder refuses a temporal body rather than
  // silently ignoring the extension bytes.
  const std::string temporal = EncodeReplyFrame(reply, MsgType::kTemporalReply);
  const Status s =
      DecodeReplyBody(FrameBody(temporal, MsgType::kTemporalReply), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("trailing"), std::string::npos);
}

TEST(WireTemporalReplyTest, TruncationAtEveryBoundaryIsRejected) {
  const std::string frame =
      EncodeReplyFrame(SampleTemporalReply(), MsgType::kTemporalReply);
  const std::string_view body = FrameBody(frame, MsgType::kTemporalReply);
  for (size_t n = 0; n < body.size(); ++n) {
    WireReply out;
    const Status s = DecodeTemporalReplyBody(body.substr(0, n), &out);
    EXPECT_FALSE(s.ok()) << "prefix of " << n << " bytes decoded";
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireTemporalReplyTest, ReachableAndLegCountOverrunsAreRejected) {
  WireReply reply;
  reply.request_id = 1;
  std::string frame = EncodeReplyFrame(reply, MsgType::kTemporalReply);
  // An all-empty temporal reply body: request_id (8) + code (1) +
  // message length (4) + found (1) + length (8) + departure (8) + step
  // count (4) = 34 bytes, then the reachable count and the leg count.
  const size_t reachable_offset = 4 + 1 + 34;
  const size_t legs_offset = reachable_offset + 4;
  WireReply out;

  uint32_t claims = 2048;
  std::memcpy(&frame[reachable_offset], &claims, sizeof claims);
  Status s = DecodeTemporalReplyBody(
      FrameBody(frame, MsgType::kTemporalReply), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("truncated"), std::string::npos);
  uint32_t absurd = kMaxWireReachable + 1;
  std::memcpy(&frame[reachable_offset], &absurd, sizeof absurd);
  s = DecodeTemporalReplyBody(FrameBody(frame, MsgType::kTemporalReply), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("limit"), std::string::npos);

  claims = 0;
  std::memcpy(&frame[reachable_offset], &claims, sizeof claims);
  claims = 64;
  std::memcpy(&frame[legs_offset], &claims, sizeof claims);
  s = DecodeTemporalReplyBody(FrameBody(frame, MsgType::kTemporalReply), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("truncated"), std::string::npos);
  absurd = kMaxWireLegs + 1;
  std::memcpy(&frame[legs_offset], &absurd, sizeof absurd);
  s = DecodeTemporalReplyBody(FrameBody(frame, MsgType::kTemporalReply), &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("limit"), std::string::npos);
}

TEST(WireStatsTest, RoundTrip) {
  WireStats stats;
  stats.submitted = 1000;
  stats.served = 800;
  stats.shed = 120;
  stats.rejected = 50;
  stats.timed_out = 30;
  stats.served_by_class[0] = 500;
  stats.served_by_class[1] = 200;
  stats.served_by_class[2] = 100;
  stats.shed_by_class[2] = 120;
  stats.p50_micros = 512;
  stats.p99_micros = 8192;
  const std::string frame = EncodeStatsReplyFrame(stats);
  WireStats out;
  ASSERT_TRUE(
      DecodeStatsReplyBody(FrameBody(frame, MsgType::kStatsReply), &out).ok());
  EXPECT_EQ(out.submitted, stats.submitted);
  EXPECT_EQ(out.served, stats.served);
  EXPECT_EQ(out.shed, stats.shed);
  EXPECT_EQ(out.rejected, stats.rejected);
  EXPECT_EQ(out.timed_out, stats.timed_out);
  EXPECT_EQ(out.served_by_class[1], 200u);
  EXPECT_EQ(out.shed_by_class[2], 120u);
  EXPECT_EQ(out.p99_micros, 8192);
}

TEST(FrameHeaderTest, EmptyAndUnknownTypesRejected) {
  MsgType type;
  std::string_view body;
  EXPECT_EQ(DecodeFrameHeader("", &type, &body).code(),
            StatusCode::kInvalidArgument);
  const std::string garbage = "\x2a junk";
  EXPECT_EQ(DecodeFrameHeader(garbage, &type, &body).code(),
            StatusCode::kInvalidArgument);
  const std::string zero("\0", 1);
  EXPECT_EQ(DecodeFrameHeader(zero, &type, &body).code(),
            StatusCode::kInvalidArgument);
}

TEST(FrameHeaderTest, EmptyBodyFramesDecode) {
  for (MsgType t :
       {MsgType::kStatsRequest, MsgType::kShutdown, MsgType::kShutdownAck}) {
    const std::string frame = EncodeEmptyFrame(t);
    EXPECT_TRUE(FrameBody(frame, t).empty());
  }
}

}  // namespace
}  // namespace net
}  // namespace itspq

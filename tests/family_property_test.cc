// Randomized property suite for the temporal query families:
// kReachability, kNearestFacility, and kMultiStop, across all five
// strategies.
//
// Each sweep family is pinned BIT-IDENTICALLY to an independent
// brute-force oracle: a plain binary-heap temporal Dijkstra that
// replicates the strategy's door-usability semantics (per-arrival ATI
// probe for ITG/S and ITG/A+, the frontier-interval refresh for ITG/A,
// the departure-interval freeze for SNAP, nothing for NTV) but none of
// its machinery — no scratch reuse, no snapshot stores, no Dial
// buckets, no early exit. Distances accumulate as `dist + weight` and
// arrivals project as `dep + dist * kInvWalkSpeedMps`, the exact
// arithmetic the engine documents, so every double must match to the
// bit. kMultiStop is pinned to chained point-to-point Route() calls,
// which is its documented definition.
//
// The request-validation satellites live here too: non-finite
// departures, malformed family parameters, and venue-id binding all
// fail with kInvalidArgument on every strategy.
//
// The whole suite runs under the asan and tsan CI presets.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "gen/ati_gen.h"
#include "gen/query_gen.h"
#include "gen/venue_gen.h"
#include "itgraph/checkpoints.h"
#include "itgraph/door_search.h"
#include "itgraph/itgraph.h"
#include "query/registry.h"
#include "query/router.h"
#include "venue/venue.h"

namespace itspq {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

template <typename T>
T ValueOrDie(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    ADD_FAILURE() << what << ": " << value.status().ToString();
    std::abort();
  }
  return *std::move(value);
}

struct FamilyWorld {
  std::unique_ptr<Venue> venue;
  std::unique_ptr<ItGraph> graph;
  std::unique_ptr<CheckpointSet> checkpoints;
};

// The compact single-floor mall the cross-strategy suite uses: big
// enough for multi-door sweeps, small enough for TSan.
FamilyWorld MakeWorld(uint64_t seed) {
  MallConfig mall_config = MallConfig::Paper();
  mall_config.floors = 1;
  mall_config.shop_rows = 3;
  mall_config.shops_per_row = 20;
  mall_config.seed = seed;
  Venue mall = ValueOrDie(GenerateMall(mall_config), "GenerateMall");

  AtiGenConfig ati_config;
  ati_config.checkpoint_count = 6;
  ati_config.seed = seed + 1;
  FamilyWorld world;
  world.venue = std::make_unique<Venue>(ValueOrDie(
      AssignTemporalVariations(mall, ati_config), "AssignTemporalVariations"));
  world.graph = std::make_unique<ItGraph>(
      ValueOrDie(ItGraph::Build(*world.venue), "ItGraph::Build"));
  world.checkpoints =
      std::make_unique<CheckpointSet>(CheckpointSet::FromGraph(*world.graph));
  return world;
}

const char* const kAllStrategies[] = {"itg-s", "itg-a", "itg-a+", "snap",
                                      "ntv"};

// How the oracle decides whether a relaxation may pass a door — one
// case per strategy's documented temporal-validity semantics.
enum class OracleTv { kSync, kAsync, kStrict, kSnap, kNtv };

OracleTv OracleModeFor(const std::string& name) {
  if (name == "itg-s") return OracleTv::kSync;
  if (name == "itg-a") return OracleTv::kAsync;
  if (name == "itg-a+") return OracleTv::kStrict;
  if (name == "snap") return OracleTv::kSnap;
  return OracleTv::kNtv;
}

// Brute-force sweep: lazy-deletion binary-heap Dijkstra over the whole
// door graph, gated per mode. Returns the family's deterministic
// output — (distance, door)-sorted reachable set, truncated to k for
// kNearestFacility.
std::vector<ReachableDoor> OracleSweep(const ItGraph& graph,
                                       const CheckpointSet& cps,
                                       const QueryRequest& request,
                                       OracleTv mode) {
  auto attached = internal::AttachPoint(graph.venue(), request.source);
  if (!attached.ok()) {
    ADD_FAILURE() << "oracle source attach: "
                  << attached.status().ToString();
    return {};
  }
  const double dep = request.departure.seconds();
  const bool reachability = request.kind == QueryKind::kReachability;
  const size_t n = graph.NumDoors();

  std::vector<double> dist(n, internal::kInfDistance);
  std::vector<char> settled(n, 0);

  // ITG/A's frontier snapshot: door states frozen to the interval of
  // the last popped arrival. Any probe time inside the interval works —
  // checkpoints cover every ATI boundary, so state is constant there.
  double frontier_lo = 0, frontier_hi = -1, frontier_probe = 0;
  auto refresh_frontier = [&](double arrival_abs) {
    const double tod = WrapTimeOfDay(arrival_abs);
    if (tod < frontier_lo || tod >= frontier_hi) {
      const size_t interval = cps.IntervalIndexOf(tod);
      frontier_lo = cps.IntervalStart(interval);
      frontier_hi = cps.IntervalEnd(interval);
      frontier_probe = tod;
    }
  };
  if (mode == OracleTv::kAsync) refresh_frontier(dep);

  auto usable = [&](DoorId door, double arrival_abs) {
    switch (mode) {
      case OracleTv::kSync:
      case OracleTv::kStrict:
        // ITG/A+'s arrival-interval snapshot answers exactly what the
        // ATI answers at the arrival (state is interval-constant).
        return graph.AtiContainsTimeOfDay(door, arrival_abs);
      case OracleTv::kAsync:
        return graph.AtiContainsTimeOfDay(door, frontier_probe);
      case OracleTv::kSnap:
        return graph.AtiContainsTimeOfDay(door, dep);
      case OracleTv::kNtv:
        return true;
    }
    return false;
  };

  using Entry = std::pair<double, size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  auto relax = [&](DoorId door, double nd) {
    const size_t i = static_cast<size_t>(door);
    if (nd >= dist[i]) return;
    if (reachability && nd * kInvWalkSpeedMps > request.budget_seconds) {
      return;
    }
    if (!usable(door, dep + nd * kInvWalkSpeedMps)) return;
    dist[i] = nd;
    queue.push({nd, i});
  };
  for (const auto& [door, offset] : attached->door_offsets) {
    relax(door, offset);
  }

  const CsrAdjacency& adj = graph.adjacency();
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (settled[u]) continue;
    settled[u] = 1;
    if (mode == OracleTv::kAsync) {
      refresh_frontier(dep + d * kInvWalkSpeedMps);
    }
    for (size_t seg = 2 * u; seg < 2 * u + 2; ++seg) {
      const uint32_t begin = adj.seg_offsets[seg];
      const uint32_t end = adj.seg_offsets[seg + 1];
      for (uint32_t k = begin; k < end; ++k) {
        const size_t next = adj.neighbor_ids[k];
        if (settled[next]) continue;
        relax(static_cast<DoorId>(next), d + adj.neighbor_weights[k]);
      }
    }
  }

  std::vector<char> is_facility(n, 0);
  if (!reachability) {
    for (DoorId door : request.facilities) {
      is_facility[static_cast<size_t>(door)] = 1;
    }
  }
  std::vector<ReachableDoor> reachable;
  for (size_t i = 0; i < n; ++i) {
    if (!settled[i]) continue;
    if (!reachability && !is_facility[i]) continue;
    ReachableDoor entry;
    entry.door = static_cast<DoorId>(i);
    entry.distance_m = dist[i];
    entry.arrival_seconds = dep + dist[i] * kInvWalkSpeedMps;
    reachable.push_back(entry);
  }
  std::sort(reachable.begin(), reachable.end(),
            [](const ReachableDoor& a, const ReachableDoor& b) {
              if (a.distance_m != b.distance_m) {
                return a.distance_m < b.distance_m;
              }
              return a.door < b.door;
            });
  if (!reachability && reachable.size() > request.k) {
    reachable.resize(request.k);
  }
  return reachable;
}

// Element-for-element, bit-for-bit agreement with the oracle.
void ExpectBitIdentical(const QueryResult& actual,
                        const std::vector<ReachableDoor>& expected,
                        const std::string& where) {
  EXPECT_EQ(actual.found, !expected.empty()) << where;
  ASSERT_EQ(actual.reachable.size(), expected.size()) << where;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual.reachable[i].door, expected[i].door)
        << where << " entry " << i;
    EXPECT_EQ(actual.reachable[i].distance_m, expected[i].distance_m)
        << where << " entry " << i;
    EXPECT_EQ(actual.reachable[i].arrival_seconds,
              expected[i].arrival_seconds)
        << where << " entry " << i;
  }
  // Sweeps answer with the reachable set only — never a path or legs.
  EXPECT_TRUE(actual.path.steps().empty()) << where;
  EXPECT_TRUE(actual.legs.empty()) << where;
}

std::vector<std::unique_ptr<Router>> MakeAllRouters(const FamilyWorld& world) {
  std::vector<std::unique_ptr<Router>> routers;
  for (const char* name : kAllStrategies) {
    routers.push_back(ValueOrDie(MakeRouter(name, *world.graph), name));
  }
  return routers;
}

TEST(FamilySweepPropertyTest, ReachabilityMatchesOracleBitIdentical) {
  int nonempty = 0;
  for (uint64_t seed : {11u, 22u}) {
    FamilyWorld world = MakeWorld(seed);
    auto routers = MakeAllRouters(world);
    QueryContext context;

    FamilyGenConfig config;
    config.kind = QueryKind::kReachability;
    config.num_queries = 10;
    config.seed = seed + 3;
    config.min_budget_seconds = 60;
    config.max_budget_seconds = 2400;
    const std::vector<QueryRequest> requests =
        ValueOrDie(GenerateFamilyQueries(*world.graph, config),
                   "GenerateFamilyQueries");

    for (size_t qi = 0; qi < requests.size(); ++qi) {
      const QueryRequest& request = requests[qi];
      for (const auto& router : routers) {
        const std::string where = router->name() + " seed " +
                                  std::to_string(seed) + " query " +
                                  std::to_string(qi);
        auto result = router->Route(request, &context);
        ASSERT_TRUE(result.ok()) << where << ": "
                                 << result.status().ToString();
        const std::vector<ReachableDoor> oracle = OracleSweep(
            *world.graph, *world.checkpoints, request,
            OracleModeFor(router->name()));
        ExpectBitIdentical(*result, oracle, where);
        if (!oracle.empty()) ++nonempty;

        // The sweeps are exempt from partition-visited pruning by
        // contract: flipping the option must change nothing.
        QueryRequest unpruned = request;
        unpruned.options.partition_visited_pruning =
            !request.options.partition_visited_pruning;
        auto same = router->Route(unpruned, &context);
        ASSERT_TRUE(same.ok()) << where;
        ExpectBitIdentical(*same, oracle, where + " (pruning flipped)");
      }
    }
  }
  // The workload must actually exercise non-trivial sweeps.
  EXPECT_GE(nonempty, 30);
}

TEST(FamilySweepPropertyTest, ReachabilitySnapshotCachePathIsIdentical) {
  FamilyWorld world = MakeWorld(33);
  QueryContext context;
  FamilyGenConfig config;
  config.kind = QueryKind::kReachability;
  config.num_queries = 8;
  config.seed = 44;
  const std::vector<QueryRequest> requests = ValueOrDie(
      GenerateFamilyQueries(*world.graph, config), "GenerateFamilyQueries");

  for (const char* name : {"itg-a", "itg-a+"}) {
    auto router = ValueOrDie(MakeRouter(name, *world.graph), name);
    for (size_t qi = 0; qi < requests.size(); ++qi) {
      auto plain = router->Route(requests[qi], &context);
      QueryRequest cached_request = requests[qi];
      cached_request.options.use_snapshot_cache = true;
      auto cached = router->Route(cached_request, &context);
      ASSERT_TRUE(plain.ok());
      ASSERT_TRUE(cached.ok());
      const std::string where =
          std::string(name) + " query " + std::to_string(qi);
      ASSERT_EQ(cached->reachable.size(), plain->reachable.size()) << where;
      for (size_t i = 0; i < plain->reachable.size(); ++i) {
        EXPECT_EQ(cached->reachable[i].door, plain->reachable[i].door)
            << where;
        EXPECT_EQ(cached->reachable[i].distance_m,
                  plain->reachable[i].distance_m)
            << where;
      }
    }
  }
}

TEST(FamilySweepPropertyTest, NearestFacilityMatchesOracleBitIdentical) {
  for (uint64_t seed : {11u, 55u}) {
    FamilyWorld world = MakeWorld(seed);
    auto routers = MakeAllRouters(world);
    QueryContext context;

    FamilyGenConfig config;
    config.kind = QueryKind::kNearestFacility;
    config.num_queries = 10;
    config.seed = seed + 5;
    config.min_k = 1;
    config.max_k = 5;
    config.num_facilities = 12;
    const std::vector<QueryRequest> requests =
        ValueOrDie(GenerateFamilyQueries(*world.graph, config),
                   "GenerateFamilyQueries");

    for (size_t qi = 0; qi < requests.size(); ++qi) {
      const QueryRequest& request = requests[qi];
      for (const auto& router : routers) {
        const std::string where = router->name() + " seed " +
                                  std::to_string(seed) + " query " +
                                  std::to_string(qi);
        auto result = router->Route(request, &context);
        ASSERT_TRUE(result.ok()) << where << ": "
                                 << result.status().ToString();
        EXPECT_LE(result->reachable.size(), request.k) << where;
        const std::vector<ReachableDoor> oracle = OracleSweep(
            *world.graph, *world.checkpoints, request,
            OracleModeFor(router->name()));
        ExpectBitIdentical(*result, oracle, where);

        // Every returned facility must be one the request asked for.
        for (const ReachableDoor& entry : result->reachable) {
          EXPECT_NE(std::find(request.facilities.begin(),
                              request.facilities.end(), entry.door),
                    request.facilities.end())
              << where;
        }
      }
    }
  }
}

// Duplicate facility ids collapse: the answer is identical to the
// deduplicated request's.
TEST(FamilySweepPropertyTest, DuplicateFacilitiesCollapse) {
  FamilyWorld world = MakeWorld(66);
  auto router = ValueOrDie(MakeRouter("itg-s", *world.graph), "itg-s");
  QueryContext context;

  FamilyGenConfig config;
  config.kind = QueryKind::kNearestFacility;
  config.num_queries = 3;
  config.seed = 77;
  config.num_facilities = 6;
  std::vector<QueryRequest> requests = ValueOrDie(
      GenerateFamilyQueries(*world.graph, config), "GenerateFamilyQueries");
  for (QueryRequest& request : requests) {
    auto clean = router->Route(request, &context);
    ASSERT_TRUE(clean.ok());
    QueryRequest doubled = request;
    doubled.facilities.insert(doubled.facilities.end(),
                              request.facilities.begin(),
                              request.facilities.end());
    auto dup = router->Route(doubled, &context);
    ASSERT_TRUE(dup.ok());
    ASSERT_EQ(dup->reachable.size(), clean->reachable.size());
    for (size_t i = 0; i < clean->reachable.size(); ++i) {
      EXPECT_EQ(dup->reachable[i].door, clean->reachable[i].door);
      EXPECT_EQ(dup->reachable[i].distance_m, clean->reachable[i].distance_m);
    }
  }
}

TEST(FamilyMultiStopTest, MatchesChainedPointToPointBitIdentical) {
  for (uint64_t seed : {11u, 22u}) {
    FamilyWorld world = MakeWorld(seed);
    auto routers = MakeAllRouters(world);
    QueryContext context;

    FamilyGenConfig config;
    config.kind = QueryKind::kMultiStop;
    config.num_queries = 8;
    config.seed = seed + 7;
    config.num_waypoints = 2;
    const std::vector<QueryRequest> requests =
        ValueOrDie(GenerateFamilyQueries(*world.graph, config),
                   "GenerateFamilyQueries");

    int found_itineraries = 0;
    for (size_t qi = 0; qi < requests.size(); ++qi) {
      const QueryRequest& request = requests[qi];
      for (const auto& router : routers) {
        const std::string where = router->name() + " seed " +
                                  std::to_string(seed) + " query " +
                                  std::to_string(qi);
        auto result = router->Route(request, &context);
        ASSERT_TRUE(result.ok()) << where << ": "
                                 << result.status().ToString();

        // The oracle IS the definition: chain point-to-point legs, each
        // departing at the previous leg's projected arrival.
        QueryRequest leg = request;
        leg.kind = QueryKind::kPointToPoint;
        leg.waypoints.clear();
        IndoorPoint from = request.source;
        double dep = request.departure.seconds();
        std::vector<Path> expected_legs;
        bool expected_found = true;
        const size_t num_legs = request.waypoints.size() + 1;
        for (size_t i = 0; i < num_legs; ++i) {
          leg.source = from;
          leg.target = i < request.waypoints.size() ? request.waypoints[i]
                                                    : request.target;
          leg.departure = Instant(dep);
          auto answer = router->Route(leg, &context);
          ASSERT_TRUE(answer.ok()) << where << " leg " << i;
          if (!answer->found) {
            expected_found = false;
            break;
          }
          dep += answer->path.length_m() * kInvWalkSpeedMps;
          from = leg.target;
          expected_legs.push_back(std::move(answer->path));
        }

        EXPECT_EQ(result->found, expected_found) << where;
        ASSERT_EQ(result->legs.size(), expected_legs.size()) << where;
        for (size_t i = 0; i < expected_legs.size(); ++i) {
          EXPECT_EQ(result->legs[i].length_m(), expected_legs[i].length_m())
              << where << " leg " << i;
          const auto& got = result->legs[i].steps();
          const auto& want = expected_legs[i].steps();
          ASSERT_EQ(got.size(), want.size()) << where << " leg " << i;
          for (size_t s = 0; s < want.size(); ++s) {
            EXPECT_EQ(got[s].door, want[s].door) << where;
            EXPECT_EQ(got[s].cumulative_m, want[s].cumulative_m) << where;
            EXPECT_EQ(got[s].arrival_seconds, want[s].arrival_seconds)
                << where;
          }
        }
        if (result->found && router->name() == "itg-s") ++found_itineraries;
      }
    }
    // The workload must produce complete itineraries, not just refusals.
    EXPECT_GE(found_itineraries, 1) << "seed " << seed;
  }
}

// Departures sitting exactly on ATI checkpoints (and half a second to
// each side) are where interval-indexing off-by-ones would live for the
// sweep families, exactly as for point-to-point.
TEST(FamilySweepPropertyTest, CheckpointBoundaryDepartures) {
  FamilyWorld world = MakeWorld(55);
  auto routers = MakeAllRouters(world);
  QueryContext context;
  ASSERT_FALSE(world.checkpoints->times().empty());

  FamilyGenConfig reach_config;
  reach_config.kind = QueryKind::kReachability;
  reach_config.num_queries = 2;
  reach_config.seed = 91;
  reach_config.min_budget_seconds = 600;
  reach_config.max_budget_seconds = 1200;
  FamilyGenConfig knn_config;
  knn_config.kind = QueryKind::kNearestFacility;
  knn_config.num_queries = 2;
  knn_config.seed = 92;
  knn_config.min_k = 2;
  knn_config.max_k = 3;
  knn_config.num_facilities = 10;

  std::vector<QueryRequest> templates = ValueOrDie(
      GenerateFamilyQueries(*world.graph, reach_config), "reach templates");
  std::vector<QueryRequest> knn_templates = ValueOrDie(
      GenerateFamilyQueries(*world.graph, knn_config), "knn templates");
  templates.insert(templates.end(), knn_templates.begin(),
                   knn_templates.end());

  for (double checkpoint : world.checkpoints->times()) {
    for (double offset : {-0.5, 0.0, 0.5}) {
      for (size_t ti = 0; ti < templates.size(); ++ti) {
        QueryRequest request = templates[ti];
        request.departure = Instant(checkpoint + offset);
        for (const auto& router : routers) {
          const std::string where =
              router->name() + " template " + std::to_string(ti) +
              " depart " + std::to_string(checkpoint + offset);
          auto result = router->Route(request, &context);
          ASSERT_TRUE(result.ok()) << where;
          const std::vector<ReachableDoor> oracle = OracleSweep(
              *world.graph, *world.checkpoints, request,
              OracleModeFor(router->name()));
          ExpectBitIdentical(*result, oracle, where);
        }
      }
    }
  }
}

// The corridor venue whose far door wraps midnight (open 22:00 ->
// 02:00): family answers must project arrivals across the fold the
// same way point-to-point does.
TEST(FamilyMidnightWrapTest, FamiliesProjectAcrossMidnight) {
  Venue::Builder builder;
  const PartitionId room_a = builder.AddPartition(Rect{0, 0, 10, 10}, 0);
  const PartitionId corridor = builder.AddPartition(Rect{10, 0, 2000, 10}, 0);
  const PartitionId room_b = builder.AddPartition(Rect{2000, 0, 2010, 10}, 0);
  (void)room_a;
  (void)room_b;
  const DoorId near_door =
      builder.AddDoor(Point2d{10, 5}, 0, room_a, corridor);  // always open
  const DoorId far_door =
      builder.AddDoor(Point2d{2000, 5}, 0, corridor, room_b);
  ASSERT_TRUE(
      builder.SetDoorAti(far_door, {TimeInterval{22 * 3600.0, 2 * 3600.0}})
          .ok());
  auto venue = std::move(builder).Build();
  ASSERT_TRUE(venue.ok());
  auto graph = ItGraph::Build(*venue);
  ASSERT_TRUE(graph.ok());
  const CheckpointSet cps = CheckpointSet::FromGraph(*graph);

  const IndoorPoint ps{{5, 5}, 0};
  QueryContext context;
  for (const char* name : {"itg-s", "itg-a+"}) {
    auto router = ValueOrDie(MakeRouter(name, *graph), name);

    // 23:50 with half an hour of budget: the far door is ~1662.5 s of
    // walking away, so its projected arrival crosses midnight into the
    // wrapped [00:00, 02:00) half of its ATI.
    QueryRequest reach;
    reach.kind = QueryKind::kReachability;
    reach.source = ps;
    reach.departure = Instant(23 * 3600.0 + 50 * 60.0);
    reach.budget_seconds = 1800;
    auto result = router->Route(reach, &context);
    ASSERT_TRUE(result.ok()) << name;
    ExpectBitIdentical(*result, OracleSweep(*graph, cps, reach,
                                            OracleModeFor(name)),
                       std::string(name) + " midnight reach");
    ASSERT_EQ(result->reachable.size(), 2u) << name;
    EXPECT_EQ(result->reachable[0].door, near_door) << name;
    EXPECT_EQ(result->reachable[1].door, far_door) << name;
    EXPECT_GT(result->reachable[1].arrival_seconds, kSecondsPerDay)
        << name << ": far-door arrival should project past midnight";

    // A budget just short of the far door keeps only the near one.
    reach.budget_seconds = 1600;
    result = router->Route(reach, &context);
    ASSERT_TRUE(result.ok()) << name;
    ASSERT_EQ(result->reachable.size(), 1u) << name;
    EXPECT_EQ(result->reachable[0].door, near_door) << name;

    // Midday: the far door is shut, so k = 2 over both doors returns
    // only the near one.
    QueryRequest knn;
    knn.kind = QueryKind::kNearestFacility;
    knn.source = ps;
    knn.departure = Instant::FromHMS(12);
    knn.k = 2;
    knn.facilities = {near_door, far_door};
    auto nearest = router->Route(knn, &context);
    ASSERT_TRUE(nearest.ok()) << name;
    ExpectBitIdentical(*nearest,
                       OracleSweep(*graph, cps, knn, OracleModeFor(name)),
                       std::string(name) + " midday knn");
    ASSERT_EQ(nearest->reachable.size(), 1u) << name;
    EXPECT_EQ(nearest->reachable[0].door, near_door) << name;

    // Multi-stop across midnight: room_a -> corridor -> room_b departs
    // 23:50 and the final leg's arrival lands past the fold.
    QueryRequest trip;
    trip.kind = QueryKind::kMultiStop;
    trip.source = ps;
    trip.waypoints = {IndoorPoint{{1000, 5}, 0}};
    trip.target = IndoorPoint{{2005, 5}, 0};
    trip.departure = Instant(23 * 3600.0 + 50 * 60.0);
    auto itinerary = router->Route(trip, &context);
    ASSERT_TRUE(itinerary.ok()) << name;
    EXPECT_TRUE(itinerary->found) << name;
    ASSERT_EQ(itinerary->legs.size(), 2u) << name;
    ASSERT_FALSE(itinerary->legs[1].steps().empty()) << name;
    EXPECT_GT(itinerary->legs[1].steps().back().arrival_seconds,
              kSecondsPerDay)
        << name;

    // The same trip at midday dies at the far door: found == false with
    // the routed first leg kept as the prefix.
    trip.departure = Instant::FromHMS(12);
    auto refused = router->Route(trip, &context);
    ASSERT_TRUE(refused.ok()) << name;
    EXPECT_FALSE(refused->found) << name;
    EXPECT_EQ(refused->legs.size(), 1u) << name;
  }
}

// ---------------------------------------------------------------------
// Request-validation satellites: every strategy rejects malformed
// family requests with kInvalidArgument before touching search state.

TEST(FamilyValidationTest, NonFiniteDeparturesRejectedEverywhere) {
  FamilyWorld world = MakeWorld(42);
  auto routers = MakeAllRouters(world);
  QueryContext context;

  const IndoorPoint inside =
      IndoorPoint{{world.venue->partition(0).rect.min_x + 1,
                   world.venue->partition(0).rect.min_y + 1},
                  world.venue->partition(0).floor};
  for (const auto& router : routers) {
    for (double bad : {kNan, kInf, -kInf}) {
      for (QueryKind kind :
           {QueryKind::kPointToPoint, QueryKind::kReachability,
            QueryKind::kNearestFacility, QueryKind::kMultiStop}) {
        QueryRequest request;
        request.kind = kind;
        request.source = inside;
        request.target = inside;
        request.departure = Instant(bad);
        request.budget_seconds = 600;
        request.k = 1;
        request.facilities = {0};
        request.waypoints = {inside};
        auto result = router->Route(request, &context);
        ASSERT_FALSE(result.ok())
            << router->name() << " kind " << static_cast<int>(kind);
        EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
            << router->name();
        EXPECT_NE(result.status().message().find("departure"),
                  std::string::npos)
            << router->name() << ": " << result.status().message();
      }
    }
  }
}

TEST(FamilyValidationTest, MalformedFamilyParametersRejected) {
  FamilyWorld world = MakeWorld(42);
  auto routers = MakeAllRouters(world);
  QueryContext context;
  const IndoorPoint inside =
      IndoorPoint{{world.venue->partition(0).rect.min_x + 1,
                   world.venue->partition(0).rect.min_y + 1},
                  world.venue->partition(0).floor};

  for (const auto& router : routers) {
    auto expect_invalid = [&](const QueryRequest& request, const char* what) {
      auto result = router->Route(request, &context);
      ASSERT_FALSE(result.ok()) << router->name() << ": " << what;
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
          << router->name() << ": " << what;
    };

    QueryRequest reach;
    reach.kind = QueryKind::kReachability;
    reach.source = inside;
    reach.departure = Instant::FromHMS(12);
    for (double bad : {kNan, kInf, -1.0}) {
      reach.budget_seconds = bad;
      expect_invalid(reach, "bad budget");
    }
    reach.budget_seconds = 0;  // zero budget is legal: an empty sweep
    auto empty = router->Route(reach, &context);
    ASSERT_TRUE(empty.ok()) << router->name();
    EXPECT_FALSE(empty->found) << router->name();

    QueryRequest knn;
    knn.kind = QueryKind::kNearestFacility;
    knn.source = inside;
    knn.departure = Instant::FromHMS(12);
    knn.k = 0;
    knn.facilities = {0};
    expect_invalid(knn, "k == 0");
    knn.k = 1;
    knn.facilities.clear();
    expect_invalid(knn, "no facilities");
    knn.facilities = {static_cast<DoorId>(world.graph->NumDoors())};
    expect_invalid(knn, "facility out of range");
    knn.facilities = {-1};
    expect_invalid(knn, "negative facility");

    QueryRequest trip;
    trip.kind = QueryKind::kMultiStop;
    trip.source = inside;
    trip.target = inside;
    trip.departure = Instant::FromHMS(12);
    expect_invalid(trip, "no waypoints");
  }
}

TEST(FamilyValidationTest, VenueIdBindingEnforcedPerStrategy) {
  FamilyWorld world = MakeWorld(42);
  const IndoorPoint inside =
      IndoorPoint{{world.venue->partition(0).rect.min_x + 1,
                   world.venue->partition(0).rect.min_y + 1},
                  world.venue->partition(0).floor};
  QueryRequest request;
  request.kind = QueryKind::kReachability;
  request.source = inside;
  request.departure = Instant::FromHMS(12);
  request.budget_seconds = 300;

  RouterBuildOptions bound;
  bound.bound_venue_id = 5;
  QueryContext context;
  for (const char* name : kAllStrategies) {
    auto router = ValueOrDie(MakeRouter(name, *world.graph, bound), name);
    EXPECT_EQ(router->bound_venue_id(), 5) << name;

    request.venue_id = 0;  // unaddressed: always accepted
    EXPECT_TRUE(router->Route(request, &context).ok()) << name;
    request.venue_id = 5;  // the bound id
    EXPECT_TRUE(router->Route(request, &context).ok()) << name;
    request.venue_id = 9;  // someone else's venue
    auto wrong = router->Route(request, &context);
    ASSERT_FALSE(wrong.ok()) << name;
    EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument) << name;
    EXPECT_NE(wrong.status().message().find("venue"), std::string::npos)
        << name;

    // A router built without a binding (the pre-catalog default) still
    // rejects any non-zero id.
    auto unbound = ValueOrDie(MakeRouter(name, *world.graph), name);
    EXPECT_EQ(unbound->bound_venue_id(), 0) << name;
    request.venue_id = 3;
    auto r = unbound->Route(request, &context);
    ASSERT_FALSE(r.ok()) << name;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << name;
    request.venue_id = 0;
  }
}

// Mixed-kind batches ride the same RouteBatch plumbing: every slot
// answers exactly what a direct Route() call answers.
TEST(FamilyBatchTest, MixedKindBatchMatchesSequentialRoutes) {
  FamilyWorld world = MakeWorld(42);
  auto router = ValueOrDie(MakeRouter("itg-a+", *world.graph), "itg-a+");

  std::vector<QueryRequest> requests;
  for (QueryKind kind : {QueryKind::kReachability,
                         QueryKind::kNearestFacility, QueryKind::kMultiStop}) {
    FamilyGenConfig config;
    config.kind = kind;
    config.num_queries = 4;
    config.seed = 17 + static_cast<uint64_t>(kind);
    auto generated = ValueOrDie(GenerateFamilyQueries(*world.graph, config),
                                "GenerateFamilyQueries");
    requests.insert(requests.end(), generated.begin(), generated.end());
  }

  QueryContext context;
  std::vector<StatusOr<QueryResult>> sequential;
  for (const QueryRequest& request : requests) {
    sequential.push_back(router->Route(request, &context));
  }

  for (int num_threads : {1, 4}) {
    BatchOptions options;
    options.num_threads = num_threads;
    const auto batched = router->RouteBatch(requests, options);
    ASSERT_EQ(batched.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      const std::string where =
          std::to_string(num_threads) + " threads slot " + std::to_string(i);
      ASSERT_EQ(batched[i].ok(), sequential[i].ok()) << where;
      if (!batched[i].ok()) continue;
      EXPECT_EQ(batched[i]->found, sequential[i]->found) << where;
      ASSERT_EQ(batched[i]->reachable.size(), sequential[i]->reachable.size())
          << where;
      for (size_t e = 0; e < sequential[i]->reachable.size(); ++e) {
        EXPECT_EQ(batched[i]->reachable[e].door,
                  sequential[i]->reachable[e].door)
            << where;
        EXPECT_EQ(batched[i]->reachable[e].distance_m,
                  sequential[i]->reachable[e].distance_m)
            << where;
      }
      ASSERT_EQ(batched[i]->legs.size(), sequential[i]->legs.size()) << where;
      for (size_t l = 0; l < sequential[i]->legs.size(); ++l) {
        EXPECT_EQ(batched[i]->legs[l].length_m(),
                  sequential[i]->legs[l].length_m())
            << where;
      }
    }
  }
}

}  // namespace
}  // namespace itspq

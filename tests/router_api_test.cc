#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/time.h"
#include "gen/ati_gen.h"
#include "gen/query_gen.h"
#include "gen/venue_gen.h"
#include "itgraph/itgraph.h"
#include "query/registry.h"
#include "query/router.h"
#include "query/strategies.h"

namespace itspq {
namespace {

const char* const kBuiltinStrategies[] = {"itg-s", "itg-a", "itg-a+", "snap",
                                          "ntv"};

struct ApiWorld {
  std::unique_ptr<Venue> venue;
  std::unique_ptr<ItGraph> graph;
  std::vector<QueryInstance> queries;
};

ApiWorld MakeWorld(uint64_t seed = 42) {
  MallConfig mall_config = MallConfig::Paper();
  mall_config.floors = 1;
  mall_config.seed = seed;
  auto mall = GenerateMall(mall_config);
  EXPECT_TRUE(mall.ok());
  AtiGenConfig ati_config;
  ati_config.checkpoint_count = 6;
  ati_config.seed = seed + 1;
  auto varied = AssignTemporalVariations(*mall, ati_config);
  EXPECT_TRUE(varied.ok());

  ApiWorld world;
  world.venue = std::make_unique<Venue>(*std::move(varied));
  auto graph = ItGraph::Build(*world.venue);
  EXPECT_TRUE(graph.ok());
  world.graph = std::make_unique<ItGraph>(*std::move(graph));

  QueryGenConfig query_config;
  query_config.s2t_distance = 700;
  query_config.tolerance = 100;
  query_config.num_pairs = 6;
  query_config.seed = seed + 2;
  auto queries = GenerateQueries(*world.graph, query_config);
  EXPECT_TRUE(queries.ok());
  world.queries = *std::move(queries);
  return world;
}

// A day-spanning mixed workload: several hours per pair, so batches hit
// found and not-found answers and multiple checkpoint intervals.
std::vector<QueryRequest> MakeRequests(const ApiWorld& world) {
  std::vector<QueryRequest> requests;
  for (const QueryInstance& q : world.queries) {
    for (int hour : {3, 8, 12, 18, 21}) {
      requests.push_back(
          QueryRequest{q.ps, q.pt, Instant::FromHMS(hour), QueryOptions()});
    }
  }
  return requests;
}

TEST(RouterRegistryTest, ResolvesEveryBuiltinStrategy) {
  ApiWorld world = MakeWorld();
  for (const char* name : kBuiltinStrategies) {
    ASSERT_TRUE(RouterRegistry::Global().Contains(name)) << name;
    auto router = MakeRouter(name, *world.graph);
    ASSERT_TRUE(router.ok()) << name;
    EXPECT_EQ((*router)->name(), name);
    // Every strategy answers a midday query through the same interface.
    const QueryInstance& q = world.queries[0];
    auto result = (*router)->Route(
        QueryRequest{q.ps, q.pt, Instant::FromHMS(12), QueryOptions()},
        nullptr);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_TRUE(result->found) << name;
  }
}

TEST(RouterRegistryTest, RejectsUnknownName) {
  ApiWorld world = MakeWorld();
  auto router = MakeRouter("itg-z", *world.graph);
  ASSERT_FALSE(router.ok());
  EXPECT_EQ(router.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(RouterRegistry::Global().Contains("itg-z"));
}

TEST(RouterRegistryTest, GlobalNamesListsBuiltins) {
  const std::vector<std::string> names = RouterRegistry::Global().Names();
  for (const char* name : kBuiltinStrategies) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << name;
  }
}

TEST(RouterRegistryTest, RegisterRejectsDuplicatesAndEmptyNames) {
  RouterRegistry registry;
  auto factory = [](const ItGraph& graph,
                    const RouterBuildOptions&) -> std::unique_ptr<Router> {
    return std::make_unique<StaticRouter>(graph);
  };
  EXPECT_TRUE(registry.Register("custom", factory).ok());
  EXPECT_EQ(registry.Register("custom", factory).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register("", factory).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(registry.Contains("custom"));
  EXPECT_FALSE(registry.Contains("itg-s"));  // isolated from Global()
}

TEST(RouteBatchTest, AgreesWithSequentialRoute) {
  ApiWorld world = MakeWorld();
  const std::vector<QueryRequest> requests = MakeRequests(world);
  for (const char* name : {"itg-s", "itg-a", "snap"}) {
    auto router = MakeRouter(name, *world.graph);
    ASSERT_TRUE(router.ok());

    QueryContext context;
    std::vector<StatusOr<QueryResult>> sequential;
    for (const QueryRequest& request : requests) {
      sequential.push_back((*router)->Route(request, &context));
    }

    BatchOptions threaded;
    threaded.num_threads = 4;
    const auto batched = (*router)->RouteBatch(requests, threaded);
    ASSERT_EQ(batched.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_EQ(batched[i].ok(), sequential[i].ok()) << name << " #" << i;
      if (!batched[i].ok()) continue;
      EXPECT_EQ(batched[i]->found, sequential[i]->found)
          << name << " #" << i;
      if (batched[i]->found) {
        EXPECT_NEAR(batched[i]->path.length_m(),
                    sequential[i]->path.length_m(), 1e-9)
            << name << " #" << i;
      }
    }
  }
}

// Regression: an empty batch must return cleanly — no worker spawn, no
// placeholder slots — whatever the thread option says.
TEST(RouteBatchTest, EmptyRequestVectorReturnsCleanly) {
  ApiWorld world = MakeWorld();
  auto router = MakeRouter("itg-s", *world.graph);
  ASSERT_TRUE(router.ok());

  const std::vector<QueryRequest> empty;
  EXPECT_TRUE((*router)->RouteBatch(empty).empty());

  BatchOptions threaded;
  threaded.num_threads = 8;
  EXPECT_TRUE((*router)->RouteBatch(empty, threaded).empty());
}

// Regression: more worker threads than requests — the pool must clamp
// to the batch size and still answer every slot.
TEST(RouteBatchTest, MoreThreadsThanRequests) {
  ApiWorld world = MakeWorld();
  auto router = MakeRouter("itg-s", *world.graph);
  ASSERT_TRUE(router.ok());
  std::vector<QueryRequest> requests(MakeRequests(world));
  requests.resize(3);

  QueryContext context;
  std::vector<StatusOr<QueryResult>> sequential;
  for (const QueryRequest& request : requests) {
    sequential.push_back((*router)->Route(request, &context));
  }

  for (int num_threads : {16, 1000}) {
    BatchOptions oversubscribed;
    oversubscribed.num_threads = num_threads;
    const auto results = (*router)->RouteBatch(requests, oversubscribed);
    ASSERT_EQ(results.size(), requests.size()) << num_threads;
    for (size_t i = 0; i < requests.size(); ++i) {
      ASSERT_TRUE(results[i].ok()) << num_threads << " #" << i;
      EXPECT_EQ(results[i]->found, sequential[i]->found)
          << num_threads << " #" << i;
      if (results[i]->found) {
        EXPECT_NEAR(results[i]->path.length_m(),
                    sequential[i]->path.length_m(), 1e-9)
            << num_threads << " #" << i;
      }
    }
  }
}

// The BatchOptions::context contract, pinned: the sequential path may
// reuse the caller's context, the threaded fan-out ignores it entirely
// (workers bring their own), and either way the answers are identical
// and the caller's context remains usable afterwards.
TEST(RouteBatchTest, ThreadedFanOutIgnoresCallerContext) {
  ApiWorld world = MakeWorld();
  auto router = MakeRouter("itg-a+", *world.graph);
  ASSERT_TRUE(router.ok());
  const std::vector<QueryRequest> requests = MakeRequests(world);

  QueryContext context;
  BatchOptions sequential;
  sequential.context = &context;  // scratch-reuse path
  const auto seq_results = (*router)->RouteBatch(requests, sequential);

  BatchOptions threaded;
  threaded.num_threads = 4;
  threaded.context = &context;  // ignored by contract, not raced on
  const auto thr_results = (*router)->RouteBatch(requests, threaded);

  ASSERT_EQ(seq_results.size(), requests.size());
  ASSERT_EQ(thr_results.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_EQ(thr_results[i].ok(), seq_results[i].ok()) << "#" << i;
    if (!thr_results[i].ok()) continue;
    EXPECT_EQ(thr_results[i]->found, seq_results[i]->found) << "#" << i;
    if (thr_results[i]->found) {
      EXPECT_EQ(thr_results[i]->path.length_m(),
                seq_results[i]->path.length_m())
          << "#" << i;
    }
  }

  // The context survives both batches: a direct Route through it still
  // answers, and an empty batch with a context touches nothing.
  auto after = (*router)->Route(requests[0], &context);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->found, seq_results[0]->found);
  BatchOptions empty_with_context;
  empty_with_context.context = &context;
  EXPECT_TRUE((*router)->RouteBatch({}, empty_with_context).empty());
}

TEST(RouteBatchTest, ReportsPerRequestErrors) {
  ApiWorld world = MakeWorld();
  auto router = MakeRouter("itg-s", *world.graph);
  ASSERT_TRUE(router.ok());
  std::vector<QueryRequest> requests = MakeRequests(world);
  requests[1].source = IndoorPoint{{1e6, 1e6}, 0};  // outside the venue

  BatchOptions threaded;
  threaded.num_threads = 2;
  const auto results = (*router)->RouteBatch(requests, threaded);
  ASSERT_EQ(results.size(), requests.size());
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[2].ok());
}

// The thread-safety claim: one shared router, many threads, per-thread
// contexts, mixed per-request options. Run under the asan and tsan
// presets in CI.
TEST(RouterConcurrencyTest, SharedRouterSurvivesHammering) {
  ApiWorld world = MakeWorld();
  const std::vector<QueryRequest> requests = MakeRequests(world);
  for (const char* name : kBuiltinStrategies) {
    auto made = MakeRouter(name, *world.graph);
    ASSERT_TRUE(made.ok());
    const std::unique_ptr<Router> router = std::move(*made);

    // Reference answers, computed single-threaded.
    QueryContext context;
    std::vector<bool> expect_found;
    std::vector<double> expect_length;
    for (const QueryRequest& request : requests) {
      auto r = router->Route(request, &context);
      ASSERT_TRUE(r.ok());
      expect_found.push_back(r->found);
      expect_length.push_back(r->found ? r->path.length_m() : -1.0);
    }

    constexpr int kThreads = 8;
    constexpr int kRounds = 3;
    std::atomic<int> mismatches{0};
    auto worker = [&](int thread_index) {
      QueryContext ctx;
      for (int round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < requests.size(); ++i) {
          QueryRequest request = requests[i];
          // Alternate the shared-cache path so the SnapshotStore sees
          // concurrent first-build races.
          request.options.use_snapshot_cache =
              ((thread_index + round) % 2) == 0;
          auto r = router->Route(request, &ctx);
          if (!r.ok() || r->found != expect_found[i] ||
              (r->found &&
               std::abs(r->path.length_m() - expect_length[i]) > 1e-9)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    };
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(mismatches.load(), 0) << name;
  }
}

}  // namespace
}  // namespace itspq

// The snapshot layer: bit-packed DoorMask snapshots, the boundary flip
// index, delta-vs-full Graph_Update builds, and the budgeted,
// policy-pluggable SnapshotStore (eviction correctness, pinned readers,
// an 8-thread pin/evict hammer the tsan CI preset race-checks).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/time.h"
#include "gen/ati_gen.h"
#include "gen/venue_gen.h"
#include "itgraph/checkpoints.h"
#include "itgraph/door_mask.h"
#include "itgraph/graph_update.h"
#include "itgraph/itgraph.h"
#include "itgraph/snapshot_store.h"

namespace itspq {
namespace {

template <typename T>
T ValueOrDie(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    ADD_FAILURE() << what << ": " << value.status().ToString();
    std::abort();
  }
  return *std::move(value);
}

struct StoreWorld {
  std::unique_ptr<Venue> venue;
  std::unique_ptr<ItGraph> graph;
  CheckpointSet cps;
};

StoreWorld MakeWorld(uint64_t seed = 42, int checkpoint_count = 6) {
  MallConfig mall_config = MallConfig::Paper();
  mall_config.floors = 1;
  mall_config.seed = seed;
  Venue mall = ValueOrDie(GenerateMall(mall_config), "GenerateMall");

  AtiGenConfig ati_config;
  ati_config.checkpoint_count = checkpoint_count;
  ati_config.seed = seed + 1;
  StoreWorld world;
  world.venue = std::make_unique<Venue>(
      ValueOrDie(AssignTemporalVariations(mall, ati_config),
                 "AssignTemporalVariations"));
  world.graph = std::make_unique<ItGraph>(
      ValueOrDie(ItGraph::Build(*world.venue), "ItGraph::Build"));
  world.cps = CheckpointSet::FromGraph(*world.graph);
  return world;
}

size_t SnapBytes(const GraphSnapshot& snap) { return snap.TotalBytes(); }

TEST(DoorMaskTest, SetResetFlipCountRoundTrip) {
  DoorMask mask(130);  // spans three words, with a ragged tail
  EXPECT_EQ(mask.size(), 130u);
  EXPECT_EQ(mask.Count(), 0u);
  for (DoorId d : {0, 1, 63, 64, 65, 127, 128, 129}) {
    EXPECT_FALSE(mask.Test(d));
    mask.Set(d);
    EXPECT_TRUE(mask.Test(d));
  }
  EXPECT_EQ(mask.Count(), 8u);
  mask.Reset(64);
  EXPECT_FALSE(mask.Test(64));
  EXPECT_EQ(mask.Count(), 7u);
  EXPECT_FALSE(mask.Flip(63));
  EXPECT_TRUE(mask.Flip(64));
  EXPECT_EQ(mask.Count(), 7u);

  DoorMask other(130);
  for (DoorId d : {0, 1, 64, 65, 127, 128, 129}) other.Set(d);
  EXPECT_EQ(mask, other);
  other.Flip(2);
  EXPECT_NE(mask, other);
  // 8x packing: 130 doors fit three 64-bit words.
  EXPECT_EQ(mask.MemoryUsage(), 3 * sizeof(uint64_t));
}

TEST(GraphSnapshotTest, BitPackedMaskMatchesAtiProbes) {
  StoreWorld world = MakeWorld();
  const size_t n = world.graph->NumDoors();
  ASSERT_GT(n, 0u);
  for (size_t i = 0; i < world.cps.NumIntervals(); ++i) {
    const GraphSnapshot snap = BuildSnapshot(*world.graph, world.cps, i);
    const double probe = world.cps.IntervalMidpoint(i);
    size_t expect_open = 0;
    for (size_t d = 0; d < n; ++d) {
      const bool open =
          world.graph->Ati(static_cast<DoorId>(d)).ContainsTimeOfDay(probe);
      EXPECT_EQ(snap.IsOpen(static_cast<DoorId>(d)), open)
          << "interval " << i << " door " << d;
      if (open) ++expect_open;
    }
    EXPECT_EQ(snap.open_door_count, expect_open) << "interval " << i;
    EXPECT_EQ(snap.open.Count(), expect_open) << "interval " << i;
    // The packed mask is ~8x smaller than the byte-per-door layout.
    EXPECT_LE(snap.MemoryUsage(), (n + 63) / 64 * sizeof(uint64_t) + 8);
  }
}

TEST(BoundaryFlipIndexTest, ListsExactlyTheDoorsThatFlip) {
  StoreWorld world = MakeWorld();
  const BoundaryFlipIndex flips =
      BoundaryFlipIndex::Build(*world.graph, world.cps);
  ASSERT_EQ(flips.NumBoundaries(), world.cps.NumCheckpoints());

  for (size_t b = 0; b < flips.NumBoundaries(); ++b) {
    const GraphSnapshot before = BuildSnapshot(*world.graph, world.cps, b);
    const GraphSnapshot after = BuildSnapshot(*world.graph, world.cps, b + 1);
    size_t expect_flips = 0;
    DoorMask in_list(world.graph->NumDoors());
    for (const DoorId* it = flips.FlipsBegin(b); it != flips.FlipsEnd(b);
         ++it) {
      in_list.Set(*it);
    }
    for (size_t d = 0; d < world.graph->NumDoors(); ++d) {
      const DoorId door = static_cast<DoorId>(d);
      const bool flipped = before.IsOpen(door) != after.IsOpen(door);
      if (flipped) ++expect_flips;
      EXPECT_EQ(in_list.Test(door), flipped)
          << "boundary " << b << " door " << d;
    }
    EXPECT_EQ(flips.NumFlips(b), expect_flips) << "boundary " << b;
    // A checkpoint exists because SOME door flips there.
    EXPECT_GT(flips.NumFlips(b), 0u) << "boundary " << b;
  }
}

TEST(GraphSnapshotTest, DeltaBuildMatchesFullBuildBothDirections) {
  StoreWorld world = MakeWorld();
  const BoundaryFlipIndex flips =
      BoundaryFlipIndex::Build(*world.graph, world.cps);
  const size_t intervals = world.cps.NumIntervals();
  ASSERT_GT(intervals, 2u);

  for (size_t i = 0; i + 1 < intervals; ++i) {
    const GraphSnapshot from = BuildSnapshot(*world.graph, world.cps, i);
    const GraphSnapshot full = BuildSnapshot(*world.graph, world.cps, i + 1);

    size_t touched = 0;
    const GraphSnapshot forward = BuildSnapshotDelta(
        *world.graph, world.cps, flips, from, i + 1, &touched);
    EXPECT_EQ(forward.interval_index, i + 1);
    EXPECT_EQ(forward.open, full.open) << "forward delta into " << i + 1;
    EXPECT_EQ(forward.open_door_count, full.open_door_count);
    // The acceptance bound: a delta build touches no more doors than
    // the boundary's flip list holds.
    EXPECT_LE(touched, flips.NumFlips(i));

    const GraphSnapshot backward =
        BuildSnapshotDelta(*world.graph, world.cps, flips, full, i, &touched);
    EXPECT_EQ(backward.open, from.open) << "backward delta into " << i;
    EXPECT_EQ(backward.open_door_count, from.open_door_count);
    EXPECT_LE(touched, flips.NumFlips(i));
  }
}

TEST(EvictionPolicyTest, FactoryResolvesKnownNamesAndRejectsUnknown) {
  for (const char* name : {"keep-all", "lru", "clock"}) {
    auto policy = MakeEvictionPolicy(name, 8);
    ASSERT_TRUE(policy.ok()) << name;
    EXPECT_EQ((*policy)->name(), name);
  }
  auto unknown = MakeEvictionPolicy("fifo", 8);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotStoreTest, KeepAllMemoisesAndNeverEvicts) {
  StoreWorld world = MakeWorld();
  SnapshotStoreOptions options;  // keep-all, unlimited — the old cache
  SnapshotStore store(*world.graph, world.cps, options);

  bool built_now = false;
  auto first = store.Get(0, &built_now);
  EXPECT_TRUE(built_now);
  auto again = store.Get(0, &built_now);
  EXPECT_FALSE(built_now);
  EXPECT_EQ(first.get(), again.get());  // same resident snapshot

  for (size_t i = 0; i < store.NumIntervals(); ++i) (void)store.Get(i);
  const CacheStatsSnapshot stats = store.Stats();
  EXPECT_EQ(stats.policy, "keep-all");
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.resident_snapshots, store.NumIntervals());
  EXPECT_EQ(stats.misses, store.NumIntervals());
  EXPECT_EQ(stats.builds(), store.NumIntervals());
  EXPECT_GT(stats.hits, 0u);
}

TEST(SnapshotStoreTest, EvictedIntervalRebuildsBitIdentical) {
  StoreWorld world = MakeWorld();
  // Budget of exactly one snapshot: every Get of a new interval evicts
  // the previous one.
  const GraphSnapshot probe = BuildSnapshot(*world.graph, world.cps, 0);
  SnapshotStoreOptions options;
  options.policy = "lru";
  options.budget_bytes = SnapBytes(probe);
  SnapshotStore store(*world.graph, world.cps, options);
  ASSERT_GE(store.NumIntervals(), 3u);

  const std::shared_ptr<const GraphSnapshot> pinned = store.Get(0);
  const DoorMask before = pinned->open;

  (void)store.Get(1);  // evicts interval 0 (budget fits one snapshot)
  (void)store.Get(2);  // evicts interval 1
  CacheStatsSnapshot stats = store.Stats();
  EXPECT_GE(stats.evictions, 2u);
  EXPECT_EQ(stats.resident_snapshots, 1u);
  EXPECT_LE(stats.resident_bytes, options.budget_bytes);

  // The pin kept the evicted mask alive and untouched.
  EXPECT_EQ(pinned->open, before);

  // Re-Get rebuilds (miss, not hit) bit-identically.
  const size_t misses_before = stats.misses;
  bool built_now = false;
  auto rebuilt = store.Get(0, &built_now);
  EXPECT_TRUE(built_now);
  EXPECT_NE(rebuilt.get(), pinned.get());
  EXPECT_EQ(rebuilt->open, before);
  EXPECT_EQ(rebuilt->open_door_count, pinned->open_door_count);
  EXPECT_EQ(store.Stats().misses, misses_before + 1);
}

TEST(SnapshotStoreTest, ClockPolicyEvictsAndRebuildsCorrectly) {
  StoreWorld world = MakeWorld();
  const GraphSnapshot probe = BuildSnapshot(*world.graph, world.cps, 0);
  SnapshotStoreOptions options;
  options.policy = "clock";
  options.budget_bytes = 2 * SnapBytes(probe);
  SnapshotStore store(*world.graph, world.cps, options);

  // Reference masks straight from the builder.
  std::vector<DoorMask> expect;
  for (size_t i = 0; i < store.NumIntervals(); ++i) {
    expect.push_back(BuildSnapshot(*world.graph, world.cps, i).open);
  }
  // Three passes over all intervals under a two-snapshot budget: every
  // mask handed out must match its from-G0 derivation.
  for (int pass = 0; pass < 3; ++pass) {
    for (size_t i = 0; i < store.NumIntervals(); ++i) {
      EXPECT_EQ(store.Get(i)->open, expect[i]) << "pass " << pass << " interval " << i;
    }
  }
  const CacheStatsSnapshot stats = store.Stats();
  EXPECT_EQ(stats.policy, "clock");
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.resident_bytes, options.budget_bytes);
}

TEST(SnapshotStoreTest, DeltaBuildsServeMissesWithinFlipBudget) {
  StoreWorld world = MakeWorld();
  SnapshotStoreOptions options;  // unlimited keep-all, delta on
  SnapshotStore store(*world.graph, world.cps, options);
  const BoundaryFlipIndex& flips = store.flip_index();

  // Sequential walk: interval 0 is a full build, every later interval
  // has its predecessor resident, so all misses fill via delta.
  size_t max_flips = 0;
  for (size_t b = 0; b < flips.NumBoundaries(); ++b) {
    max_flips = std::max(max_flips, flips.NumFlips(b));
  }
  for (size_t i = 0; i < store.NumIntervals(); ++i) (void)store.Get(i);

  const CacheStatsSnapshot stats = store.Stats();
  EXPECT_EQ(stats.full_builds, 1u);
  EXPECT_EQ(stats.delta_builds, store.NumIntervals() - 1);
  EXPECT_EQ(stats.delta_door_touches, flips.TotalFlips());
  // Per-miss door touches never exceed the flip-list bound.
  EXPECT_LE(stats.delta_door_touches, stats.delta_builds * max_flips);

  // Every delta-derived mask equals its from-G0 derivation.
  for (size_t i = 0; i < store.NumIntervals(); ++i) {
    EXPECT_EQ(store.Get(i)->open,
              BuildSnapshot(*world.graph, world.cps, i).open)
        << "interval " << i;
  }
}

TEST(SnapshotStoreTest, DeltaDisabledFallsBackToFullBuilds) {
  StoreWorld world = MakeWorld();
  SnapshotStoreOptions options;
  options.delta_builds = false;
  SnapshotStore store(*world.graph, world.cps, options);
  for (size_t i = 0; i < store.NumIntervals(); ++i) (void)store.Get(i);
  const CacheStatsSnapshot stats = store.Stats();
  EXPECT_EQ(stats.full_builds, store.NumIntervals());
  EXPECT_EQ(stats.delta_builds, 0u);
  EXPECT_EQ(stats.delta_door_touches, 0u);
}

TEST(SnapshotStoreTest, UnknownPolicyFallsBackToKeepAll) {
  StoreWorld world = MakeWorld();
  SnapshotStoreOptions options;
  options.policy = "no-such-policy";
  SnapshotStore store(*world.graph, world.cps, options);
  EXPECT_EQ(store.Stats().policy, "keep-all");
}

TEST(SnapshotStoreTest, SetBudgetEvictsImmediately) {
  StoreWorld world = MakeWorld();
  SnapshotStoreOptions options;
  options.policy = "lru";  // unlimited budget to start
  SnapshotStore store(*world.graph, world.cps, options);
  for (size_t i = 0; i < store.NumIntervals(); ++i) (void)store.Get(i);
  ASSERT_EQ(store.Stats().resident_snapshots, store.NumIntervals());

  const GraphSnapshot probe = BuildSnapshot(*world.graph, world.cps, 0);
  store.SetBudget(2 * SnapBytes(probe));
  const CacheStatsSnapshot stats = store.Stats();
  EXPECT_LE(stats.resident_bytes, 2 * SnapBytes(probe));
  EXPECT_LE(stats.resident_snapshots, 2u);
  EXPECT_GE(stats.evictions, store.NumIntervals() - 2);
  // The store still answers, bit-identically, after the squeeze.
  EXPECT_EQ(store.Get(3)->open,
            BuildSnapshot(*world.graph, world.cps, 3).open);
}

// Budget edge cases the store must degrade through gracefully — never
// crash, never hand out a wrong mask.

// budget_bytes = 0 is "unlimited", even under an evicting policy: lru
// with no budget behaves exactly like keep-all.
TEST(SnapshotStoreBudgetEdgeTest, ZeroBudgetMeansUnlimitedUnderLru) {
  StoreWorld world = MakeWorld();
  SnapshotStoreOptions options;
  options.policy = "lru";
  options.budget_bytes = 0;
  SnapshotStore store(*world.graph, world.cps, options);
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < store.NumIntervals(); ++i) {
      EXPECT_EQ(store.Get(i)->open,
                BuildSnapshot(*world.graph, world.cps, i).open)
          << "pass " << pass << " interval " << i;
    }
  }
  const CacheStatsSnapshot stats = store.Stats();
  EXPECT_EQ(stats.budget_bytes, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.resident_snapshots, store.NumIntervals());
}

// A budget smaller than any single snapshot: the one-resident-snapshot
// floor holds (the caller needs the mask it just asked for), every new
// interval evicts the previous one, and answers stay bit-identical.
TEST(SnapshotStoreBudgetEdgeTest, BudgetBelowOneSnapshotKeepsExactlyOne) {
  StoreWorld world = MakeWorld();
  SnapshotStoreOptions options;
  options.policy = "lru";
  options.budget_bytes = 1;  // smaller than any snapshot
  SnapshotStore store(*world.graph, world.cps, options);
  ASSERT_GE(store.NumIntervals(), 2u);

  for (size_t i = 0; i < store.NumIntervals(); ++i) {
    EXPECT_EQ(store.Get(i)->open,
              BuildSnapshot(*world.graph, world.cps, i).open)
        << "interval " << i;
    EXPECT_EQ(store.Stats().resident_snapshots, 1u) << "interval " << i;
  }
  const CacheStatsSnapshot stats = store.Stats();
  EXPECT_EQ(stats.evictions, store.NumIntervals() - 1);
  EXPECT_EQ(stats.misses, store.NumIntervals());
  // The floor overrides the budget: resident bytes exceed 1 by design.
  EXPECT_GT(stats.resident_bytes, options.budget_bytes);
}

// SetBudget squeezing a full store below one snapshot collapses the
// resident set to the floor, and the store still answers correctly.
TEST(SnapshotStoreBudgetEdgeTest, SetBudgetBelowOneSnapshotCollapsesToOne) {
  StoreWorld world = MakeWorld();
  SnapshotStoreOptions options;
  options.policy = "clock";
  SnapshotStore store(*world.graph, world.cps, options);
  for (size_t i = 0; i < store.NumIntervals(); ++i) (void)store.Get(i);
  ASSERT_EQ(store.Stats().resident_snapshots, store.NumIntervals());

  // With no Get in flight there is nothing to protect, so the squeeze
  // may evict everything; the one-resident floor is a Get-time
  // guarantee.
  store.SetBudget(1);
  EXPECT_LE(store.Stats().resident_snapshots, 1u);
  for (size_t i = 0; i < store.NumIntervals(); ++i) {
    EXPECT_EQ(store.Get(i)->open,
              BuildSnapshot(*world.graph, world.cps, i).open)
        << "interval " << i;
    EXPECT_EQ(store.Stats().resident_snapshots, 1u) << "interval " << i;
  }

  // And back to unlimited: the store refills without complaint.
  store.SetBudget(0);
  for (size_t i = 0; i < store.NumIntervals(); ++i) (void)store.Get(i);
  EXPECT_EQ(store.Stats().resident_snapshots, store.NumIntervals());
}

// The pin/evict concurrency contract: 8 threads hammer a store whose
// budget fits a single snapshot, so almost every Get is a miss that
// evicts what another thread may still be reading. Runs under the
// existing TSan preset. Masks handed out must always be complete and
// bit-identical to the from-G0 derivation.
TEST(SnapshotStoreConcurrencyTest, PinEvictHammer) {
  StoreWorld world = MakeWorld();
  const GraphSnapshot probe = BuildSnapshot(*world.graph, world.cps, 0);
  SnapshotStoreOptions options;
  options.policy = "lru";
  options.budget_bytes = SnapBytes(probe);
  SnapshotStore store(*world.graph, world.cps, options);
  const size_t intervals = store.NumIntervals();

  std::vector<DoorMask> expect;
  std::vector<size_t> expect_count;
  for (size_t i = 0; i < intervals; ++i) {
    const GraphSnapshot snap = BuildSnapshot(*world.graph, world.cps, i);
    expect.push_back(snap.open);
    expect_count.push_back(snap.open_door_count);
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 40;
  std::atomic<int> mismatches{0};
  auto worker = [&](int thread_index) {
    for (int round = 0; round < kRounds; ++round) {
      // Threads stride the interval space out of phase, maximising
      // evict-while-pinned interleavings.
      for (size_t k = 0; k < intervals; ++k) {
        const size_t i =
            (k * (1 + static_cast<size_t>(thread_index)) + round) % intervals;
        const std::shared_ptr<const GraphSnapshot> snap = store.Get(i);
        if (snap->interval_index != i || snap->open != expect[i] ||
            snap->open_door_count != expect_count[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const CacheStatsSnapshot stats = store.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.resident_bytes, options.budget_bytes);
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<size_t>(kThreads) * kRounds * intervals);
}

}  // namespace
}  // namespace itspq

// Concurrent read/write hammers for the update plane, written to run
// under TSan: readers route while a writer flips a door between two ATI
// configurations. Every answer must be coherent — bit-identical to the
// answer under configuration A's world or configuration B's world,
// never a mix — and the service keeps serving throughout (no drain, no
// pause). Pre-building two static control catalogs gives the exact
// answer set for each world.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/time.h"
#include "gen/ati_gen.h"
#include "gen/venue_gen.h"
#include "gen/workload_gen.h"
#include "query/sharded_router.h"
#include "query/venue_catalog.h"
#include "server/query_service.h"
#include "update/ati_update.h"

namespace itspq {
namespace {

template <typename T>
T ValueOrDie(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    ADD_FAILURE() << what << ": " << value.status().ToString();
    std::abort();
  }
  return *std::move(value);
}

// Configuration A keeps the toggled door open across every workload
// departure hour; configuration B confines it to a short night window,
// i.e. effectively closed — so any on-path door must reroute.
const std::vector<TimeInterval> kConfigA = {MakeInterval(6, 0, 23, 30)};
const std::vector<TimeInterval> kConfigB = {MakeInterval(2, 0, 2, 30)};

Venue MakeHammerVenue() {
  MallConfig mall = MallConfig::Paper();
  mall.floors = 1;
  mall.seed = 13;
  Venue shell = ValueOrDie(GenerateMall(mall), "GenerateMall");
  AtiGenConfig ati;
  ati.seed = 14;
  return ValueOrDie(AssignTemporalVariations(shell, ati),
                    "AssignTemporalVariations");
}

Venue WithDoorConfig(const Venue& base, DoorId door,
                     const std::vector<TimeInterval>& intervals) {
  Venue::Builder builder = Venue::Builder::FromVenue(base);
  Status status = builder.SetDoorAti(door, intervals);
  if (!status.ok()) {
    ADD_FAILURE() << "SetDoorAti: " << status.ToString();
    std::abort();
  }
  return ValueOrDie(std::move(builder).Build(), "Builder::Build");
}

VenueCatalog MakeCatalogWith(const Venue& venue) {
  VenueCatalog catalog;
  ValueOrDie(catalog.AddVenue(venue, "itg-a+"), "AddVenue");
  return catalog;
}

// A coherent answer equals exactly one of the two worlds' answers for
// the same request (or both, when the toggled door doesn't matter).
bool Matches(const StatusOr<QueryResult>& got,
             const StatusOr<QueryResult>& expect) {
  if (got.ok() != expect.ok()) return false;
  if (!got.ok()) return got.status().code() == expect.status().code();
  if (got->found != expect->found) return false;
  if (!got->found) return true;
  if (got->path.length_m() != expect->path.length_m()) return false;
  if (got->path.steps().size() != expect->path.steps().size()) return false;
  for (size_t s = 0; s < got->path.steps().size(); ++s) {
    if (got->path.steps()[s].door != expect->path.steps()[s].door ||
        got->path.steps()[s].cumulative_m !=
            expect->path.steps()[s].cumulative_m ||
        got->path.steps()[s].arrival_seconds !=
            expect->path.steps()[s].arrival_seconds) {
      return false;
    }
  }
  return true;
}

struct HammerFixture {
  Venue base = MakeHammerVenue();
  DoorId door = kInvalidDoor;

  // Live catalog starts in configuration A; static controls hold A and
  // B frozen for answer comparison.
  VenueCatalog live, control_a, control_b;

  std::vector<QueryRequest> workload;
  std::vector<StatusOr<QueryResult>> expect_a, expect_b;

  HammerFixture() {
    // Draw the workload against the unmodified venue (configs only
    // change door hours, never geometry, so endpoints stay valid).
    VenueCatalog plain = MakeCatalogWith(base);
    MultiVenueWorkloadConfig config;
    config.num_requests = 64;
    config.seed = 55;
    config.pairs_per_venue = 8;
    workload = ValueOrDie(GenerateMultiVenueWorkload(plain, config),
                          "GenerateMultiVenueWorkload");

    // Toggle the door the workload's shortest paths cross most often —
    // closing it (config B) must reroute some answers.
    std::vector<size_t> door_hits(base.NumDoors(), 0);
    {
      ShardedRouter router(plain);
      QueryContext context;
      for (const QueryRequest& request : workload) {
        const StatusOr<QueryResult> result = router.Route(request, &context);
        if (!result.ok() || !result->found) continue;
        for (const PathStep& step : result->path.steps()) {
          if (step.door != kInvalidDoor) ++door_hits[step.door];
        }
      }
    }
    size_t best = 0;
    for (size_t d = 1; d < door_hits.size(); ++d) {
      if (door_hits[d] > door_hits[best]) best = d;
    }
    if (door_hits[best] == 0) {
      ADD_FAILURE() << "workload found no routes";
      std::abort();
    }
    door = static_cast<DoorId>(best);

    live = MakeCatalogWith(WithDoorConfig(base, door, kConfigA));
    control_a = MakeCatalogWith(WithDoorConfig(base, door, kConfigA));
    control_b = MakeCatalogWith(WithDoorConfig(base, door, kConfigB));

    ShardedRouter router_a(control_a);
    ShardedRouter router_b(control_b);
    QueryContext context_a, context_b;
    size_t differs = 0;
    for (const QueryRequest& request : workload) {
      expect_a.push_back(router_a.Route(request, &context_a));
      expect_b.push_back(router_b.Route(request, &context_b));
      if (!Matches(expect_a.back(), expect_b.back())) ++differs;
    }
    // The hammer is only meaningful if the toggled door changes some
    // answers — otherwise "matches A or B" is vacuous.
    EXPECT_GT(differs, 0u) << "toggled door affects no workload answer";
  }
};

TEST(UpdateConcurrencyTest, CatalogReadersSeeCoherentEpochsUnderWriter) {
  HammerFixture fx;
  ShardedRouter router(fx.live);

  constexpr int kReaders = 8;
  constexpr int kWriterRounds = 50;
  std::atomic<bool> stop{false};
  std::atomic<size_t> incoherent{0};
  std::atomic<size_t> answered{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      QueryContext context;
      size_t i = static_cast<size_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t q = i++ % fx.workload.size();
        const StatusOr<QueryResult> got =
            router.Route(fx.workload[q], &context);
        if (!Matches(got, fx.expect_a[q]) && !Matches(got, fx.expect_b[q])) {
          incoherent.fetch_add(1, std::memory_order_relaxed);
        }
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  size_t applied = 0;
  for (int round = 0; round < kWriterRounds; ++round) {
    AtiUpdate update;
    update.venue_id = 0;
    update.door_id = fx.door;
    update.intervals = (round % 2 == 0) ? kConfigB : kConfigA;
    ValueOrDie(fx.live.ApplyAtiUpdate(update), "ApplyAtiUpdate");
    ++applied;
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(incoherent.load(), 0u);
  EXPECT_GT(answered.load(), 0u);
  EXPECT_EQ(applied, static_cast<size_t>(kWriterRounds));
  EXPECT_EQ(fx.live.epoch(0), static_cast<uint64_t>(kWriterRounds));
  EXPECT_EQ(fx.live.Stats().total_updates_applied,
            static_cast<size_t>(kWriterRounds));
}

TEST(UpdateConcurrencyTest, ServiceServesThroughoutUpdateStream) {
  HammerFixture fx;

  ServiceOptions options;
  options.num_workers = 4;
  options.queue_capacity = 4096;
  options.update_queue_capacity = 256;
  auto service = ValueOrDie(
      MakeQueryService(std::move(fx.live), options), "MakeQueryService");

  constexpr int kSubmitters = 8;
  constexpr int kQueriesPerSubmitter = 40;
  constexpr int kWriterRounds = 30;

  std::atomic<size_t> incoherent{0};
  std::atomic<size_t> served_ok{0};
  std::atomic<size_t> backpressured{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      for (int i = 0; i < kQueriesPerSubmitter; ++i) {
        const size_t q = static_cast<size_t>(s * kQueriesPerSubmitter + i) %
                         fx.workload.size();
        StatusOr<QueryResult> got =
            service->Submit(fx.workload[q]).get();
        if (!got.ok() &&
            got.status().code() == StatusCode::kResourceExhausted) {
          // Admission backpressure is a valid serving outcome, not an
          // epoch-coherence violation.
          backpressured.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (!Matches(got, fx.expect_a[q]) && !Matches(got, fx.expect_b[q])) {
          incoherent.fetch_add(1, std::memory_order_relaxed);
        } else {
          served_ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Writer runs concurrently with the submitters: the service never
  // drains or pauses while the door toggles A <-> B.
  std::vector<std::future<Status>> commits;
  commits.reserve(kWriterRounds);
  std::thread writer([&] {
    for (int round = 0; round < kWriterRounds; ++round) {
      AtiUpdate update;
      update.venue_id = 0;
      update.door_id = fx.door;
      update.intervals = (round % 2 == 0) ? kConfigB : kConfigA;
      commits.push_back(service->SubmitUpdate(update));
    }
  });

  for (std::thread& t : submitters) t.join();
  writer.join();
  for (std::future<Status>& commit : commits) {
    const Status status = commit.get();
    EXPECT_TRUE(status.ok() ||
                status.code() == StatusCode::kResourceExhausted)
        << status.ToString();
  }
  service->Shutdown();

  EXPECT_EQ(incoherent.load(), 0u);
  EXPECT_GT(served_ok.load(), 0u);

  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.updates_submitted, static_cast<size_t>(kWriterRounds));
  EXPECT_EQ(stats.updates_submitted,
            stats.updates_applied + stats.updates_rejected);
  EXPECT_GT(stats.updates_applied, 0u);
  EXPECT_EQ(stats.submitted,
            static_cast<size_t>(kSubmitters * kQueriesPerSubmitter));
}

}  // namespace
}  // namespace itspq

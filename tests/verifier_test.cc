#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "common/time.h"
#include "itgraph/itgraph.h"
#include "query/registry.h"
#include "query/router.h"
#include "query/verifier.h"

namespace itspq {
namespace {

// Three rooms in a row; the middle one is 300 m long, so crossing it
// takes 250 s at walking speed:
//
//   A --d1-- B(300 m) --d2-- C      d2 closes at 12:00.
//
// Queried just before noon, the snapshot baseline routes through d2
// even though it shuts mid-walk — the paper's rule-1 violation.
struct Corridor {
  std::unique_ptr<Venue> venue;
  std::unique_ptr<ItGraph> graph;
  IndoorPoint ps{{5, 5}, 0};
  IndoorPoint pt{{315, 5}, 0};
};

Corridor MakeCorridor() {
  Venue::Builder builder;
  const PartitionId a = builder.AddPartition(Rect{0, 0, 10, 10}, 0);
  const PartitionId b = builder.AddPartition(Rect{10, 0, 310, 10}, 0);
  const PartitionId c = builder.AddPartition(Rect{310, 0, 320, 10}, 0);
  const DoorId d1 = builder.AddDoor(Point2d{10, 5}, 0, a, b);
  const DoorId d2 = builder.AddDoor(Point2d{310, 5}, 0, b, c);
  EXPECT_TRUE(builder.SetDoorAti(d1, {MakeInterval(8, 0, 22, 0)}).ok());
  EXPECT_TRUE(builder.SetDoorAti(d2, {MakeInterval(8, 0, 12, 0)}).ok());
  auto venue = std::move(builder).Build();
  EXPECT_TRUE(venue.ok());

  Corridor corridor;
  corridor.venue = std::make_unique<Venue>(*std::move(venue));
  auto graph = ItGraph::Build(*corridor.venue);
  EXPECT_TRUE(graph.ok());
  corridor.graph = std::make_unique<ItGraph>(*std::move(graph));
  return corridor;
}

TEST(VerifierTest, AcceptsPathWithAllDoorsOpenOnArrival) {
  Corridor corridor = MakeCorridor();
  auto snap = MakeRouter("snap", *corridor.graph);
  ASSERT_TRUE(snap.ok());
  // Mid-morning: d2 stays open long past the ~260 s walk.
  auto result = (*snap)->Route(
      QueryRequest{corridor.ps, corridor.pt, Instant::FromHMS(10),
                   QueryOptions()},
      nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  ASSERT_EQ(result->path.steps().size(), 2u);
  EXPECT_TRUE(VerifyPath(*corridor.graph, result->path).ok());
}

TEST(VerifierTest, RejectsSnapshotPathClosingMidWalk) {
  Corridor corridor = MakeCorridor();
  auto snap = MakeRouter("snap", *corridor.graph);
  ASSERT_TRUE(snap.ok());
  // 11:59: the snapshot still shows d2 open, but the walker reaches it
  // ~254 s later — after the 12:00 close.
  auto result = (*snap)->Route(
      QueryRequest{corridor.ps, corridor.pt, Instant::FromHMS(11, 59),
                   QueryOptions()},
      nullptr);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  const Status verdict = VerifyPath(*corridor.graph, result->path);
  EXPECT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.code(), StatusCode::kFailedPrecondition);
}

TEST(VerifierTest, EngineRefusesWhatSnapWronglyAnswers) {
  Corridor corridor = MakeCorridor();
  auto itg_s = MakeRouter("itg-s", *corridor.graph);
  ASSERT_TRUE(itg_s.ok());
  QueryContext context;
  // Arrival projection sees d2 closed by arrival time: no valid route.
  auto result = (*itg_s)->Route(
      QueryRequest{corridor.ps, corridor.pt, Instant::FromHMS(11, 59),
                   QueryOptions()},
      &context);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->found);
  // A minute after opening time in the morning it works fine.
  auto morning = (*itg_s)->Route(
      QueryRequest{corridor.ps, corridor.pt, Instant::FromHMS(8, 1),
                   QueryOptions()},
      &context);
  ASSERT_TRUE(morning.ok());
  EXPECT_TRUE(morning->found);
  EXPECT_TRUE(VerifyPath(*corridor.graph, morning->path).ok());
}

TEST(VerifierTest, EmptyPathIsTriviallyValid) {
  Corridor corridor = MakeCorridor();
  EXPECT_TRUE(VerifyPath(*corridor.graph, Path{}).ok());
}

}  // namespace
}  // namespace itspq

// Figure 7: memory cost vs query time t (0:00 .. 22:00, step 2 h).
//
// Memory model (DESIGN.md): per-query search state (heap peak + touched
// door labels) plus, for ITG/A, the resident reduced graph. Expected
// shape: near-zero off-hours, a stable high plateau 10:00-20:00, dropping
// after 20:00 — the day-shape of the open-door population.

#include "bench/bench_common.h"

namespace itspq {
namespace bench {
namespace {

void Run(uint64_t seed) {
  PrintHeader("Figure 7: memory cost vs t (|T|=8, dS2T=1500m, seed " +
                  std::to_string(seed) + ")",
              "t (o'clock)", {"ITG/S", "ITG/A"});
  World world = BuildWorld(kDefaultT, /*floors=*/5, seed);
  const auto queries =
      MakeWorkload(world, kDefaultS2t, kPairsPerSetting, seed + 57);
  const auto itg_s = MakeRouterOrDie(world, "itg-s");
  const auto itg_a = MakeRouterOrDie(world, "itg-a");
  for (int hour = 0; hour <= 22; hour += 2) {
    const Cell s = RunCell(*itg_s, queries, Instant::FromHMS(hour));
    const Cell a = RunCell(*itg_a, queries, Instant::FromHMS(hour));
    PrintRow(std::to_string(hour), {s.mean_memory_kb, a.mean_memory_kb},
             "KB");
  }
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main(int argc, char** argv) {
  itspq::bench::Run(itspq::bench::ParseSeedFlag(argc, argv, 42));
  return 0;
}

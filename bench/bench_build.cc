// Construction cost: venue generation, temporal-variation assignment,
// IT-Graph build, and checkpoint derivation, as the mall grows from one to
// five floors.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/memory_tracker.h"
#include "common/stats.h"

namespace itspq {
namespace bench {
namespace {

void Run() {
  std::printf(
      "\n== Construction cost vs floors (paper mall) ==\n"
      "%-8s %10s %10s %12s %12s %12s %14s %14s\n",
      "floors", "parts", "doors", "gen ms", "atis ms", "graph ms",
      "venue mem", "graph mem");
  for (int floors = 1; floors <= 5; ++floors) {
    MallConfig mc = MallConfig::Paper();
    mc.floors = floors;
    Timer t_gen;
    auto mall = GenerateMall(mc);
    const double gen_ms = t_gen.ElapsedMillis();
    if (!mall.ok()) return;

    Timer t_ati;
    AtiGenConfig ac;
    auto varied = AssignTemporalVariations(*mall, ac);
    const double ati_ms = t_ati.ElapsedMillis();
    if (!varied.ok()) return;

    Timer t_graph;
    auto graph = ItGraph::Build(*varied);
    if (!graph.ok()) return;
    const CheckpointSet cps = CheckpointSet::FromGraph(*graph);
    const double graph_ms = t_graph.ElapsedMillis();

    std::printf("%-8d %10zu %10zu %9.2f ms %9.2f ms %9.2f ms %14s %14s\n",
                floors, varied->NumPartitions(), varied->NumDoors(), gen_ms,
                ati_ms, graph_ms,
                FormatBytes(varied->MemoryUsage()).c_str(),
                FormatBytes(graph->MemoryUsage()).c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main() {
  itspq::bench::Run();
  return 0;
}

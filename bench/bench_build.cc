// Construction cost: venue generation, temporal-variation assignment,
// IT-Graph build, and checkpoint derivation, as the mall grows from one to
// five floors — plus the PR-7 fleet cold-start experiment: booting a
// city-scale catalog of full venue worlds (geometry + compiled graph +
// checkpoint ledger + materialised D2D index, the world an artifact
// packs) from `.itspq` files versus generate+build-at-boot, and serving
// a Zipf workload through a residency-budgeted lazy catalog versus a
// fully resident one.
//
// Flags:
//   --seed=S          fleet + workload seed (default 7)
//   --fleet=N         fleet size for the cold-start experiment (256;
//                     12 under --smoke unless given explicitly)
//   --artifacts=DIR   where the packed fleet is written (pr7_artifacts)
//   --json=PATH       machine-readable results (e.g. BENCH_pr7.json)
//   --smoke           CI-sized run; exits non-zero unless artifact boot
//                     beats eager boot, the lazy catalog answers
//                     bit-identically, and resident bytes respect the
//                     budget

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <memory>

#include "artifact/artifact.h"
#include "bench/bench_common.h"
#include "common/memory_tracker.h"
#include "common/stats.h"
#include "itgraph/d2d_index.h"
#include "query/sharded_router.h"
#include "query/venue_catalog.h"
#include "update/versioned_graph.h"

namespace itspq {
namespace bench {
namespace {

void RunConstructionTable() {
  std::printf(
      "\n== Construction cost vs floors (paper mall) ==\n"
      "%-8s %10s %10s %12s %12s %12s %14s %14s\n",
      "floors", "parts", "doors", "gen ms", "atis ms", "graph ms",
      "venue mem", "graph mem");
  for (int floors = 1; floors <= 5; ++floors) {
    MallConfig mc = MallConfig::Paper();
    mc.floors = floors;
    Timer t_gen;
    auto mall = GenerateMall(mc);
    const double gen_ms = t_gen.ElapsedMillis();
    if (!mall.ok()) return;

    Timer t_ati;
    AtiGenConfig ac;
    auto varied = AssignTemporalVariations(*mall, ac);
    const double ati_ms = t_ati.ElapsedMillis();
    if (!varied.ok()) return;

    Timer t_graph;
    auto graph = ItGraph::Build(*varied);
    if (!graph.ok()) return;
    const CheckpointSet cps = CheckpointSet::FromGraph(*graph);
    const double graph_ms = t_graph.ElapsedMillis();

    std::printf("%-8d %10zu %10zu %9.2f ms %9.2f ms %9.2f ms %14s %14s\n",
                floors, varied->NumPartitions(), varied->NumDoors(), gen_ms,
                ati_ms, graph_ms,
                FormatBytes(varied->MemoryUsage()).c_str(),
                FormatBytes(graph->MemoryUsage()).c_str());
  }
}

constexpr const char* kFleetStrategy = "itg-a+";

struct FleetResult {
  size_t fleet_size = 0;
  uint64_t seed = 0;
  double generate_ms = 0;       // fleet generation alone
  double eager_graph_ms = 0;    // graph compile + router build, all shards
  double eager_d2d_ms = 0;      // D2D Dijkstra sweep, all shards
  double eager_boot_ms = 0;     // generate + build the full world in-process
  double artifact_build_ms = 0; // offline: compile + D2D + encode + write
  double artifact_boot_ms = 0;  // load the full world from disk
  double cold_start_speedup = 0;
  size_t artifact_bytes = 0;
  size_t resident_bytes_full = 0;   // whole fleet loaded
  size_t residency_budget_bytes = 0;
  size_t max_resident_lazy_bytes = 0;  // high-water while serving
  size_t lazy_loads = 0;
  size_t lazy_evictions = 0;
  double cold_load_p50_us = 0;
  double cold_load_p99_us = 0;
  size_t requests = 0;
  size_t mismatches = 0;
  bool ok = false;
};

FleetResult RunFleetColdStart(size_t fleet_size, uint64_t seed,
                              const std::string& artifacts_dir, bool smoke) {
  FleetResult result;
  result.fleet_size = fleet_size;
  result.seed = seed;

  std::printf("\n== Fleet cold start: artifacts vs generate+build (%zu "
              "venues, seed %llu) ==\n",
              fleet_size, static_cast<unsigned long long>(seed));

  FleetConfig config;
  config.num_venues = static_cast<int>(fleet_size);
  config.seed = seed;

  // Eager boot: what a server pays today to assemble the full venue
  // world in-process — generate the fleet, build every shard (graph
  // compile, checkpoint ledger, router), then run the D2D Dijkstra
  // sweep per venue. The D2D index is part of the world an artifact
  // packs (it is the expensive piece the offline builder amortises), so
  // both sides of the comparison produce it.
  Timer eager_timer;
  auto fleet = GenerateVenueFleet(config);
  if (!fleet.ok()) {
    std::printf("fleet generation failed: %s\n",
                fleet.status().ToString().c_str());
    return result;
  }
  result.generate_ms = eager_timer.ElapsedMillis();
  VenueCatalog eager;
  for (Venue& venue : *fleet) {
    auto id = eager.AddVenue(std::move(venue), kFleetStrategy);
    if (!id.ok()) {
      std::printf("AddVenue failed: %s\n", id.status().ToString().c_str());
      return result;
    }
  }
  result.eager_graph_ms = eager_timer.ElapsedMillis() - result.generate_ms;
  std::vector<D2dIndex> eager_d2d;
  eager_d2d.reserve(eager.NumVenues());
  size_t eager_d2d_bytes = 0;
  for (size_t i = 0; i < eager.NumVenues(); ++i) {
    auto d2d = D2dIndex::Build(eager.graph(static_cast<VenueId>(i)));
    if (!d2d.ok()) {
      std::printf("D2dIndex::Build failed: %s\n",
                  d2d.status().ToString().c_str());
      return result;
    }
    eager_d2d_bytes += d2d->MemoryUsage();
    eager_d2d.push_back(*std::move(d2d));
  }
  result.eager_boot_ms = eager_timer.ElapsedMillis();
  result.eager_d2d_ms =
      result.eager_boot_ms - result.generate_ms - result.eager_graph_ms;

  // Offline build: regenerate (artifacts must not depend on the eager
  // catalog's state) and pack with the D2D matrix embedded. This is the
  // cost itspq_build pays once per format version, not the serving boot.
  (void)std::system(("mkdir -p " + artifacts_dir).c_str());
  Timer build_timer;
  auto source = GenerateVenueFleet(config);
  if (!source.ok()) return result;
  std::vector<std::string> paths;
  for (size_t i = 0; i < source->size(); ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "/venue_%04zu.itspq", i);
    paths.push_back(artifacts_dir + name);
    ArtifactWriteOptions options;
    options.include_d2d = true;
    Status written = WriteVenueArtifact(paths.back(), (*source)[i], options);
    if (!written.ok()) {
      std::printf("WriteVenueArtifact failed: %s\n",
                  written.ToString().c_str());
      return result;
    }
  }
  result.artifact_build_ms = build_timer.ElapsedMillis();

  // Artifact boot: reconstruct the same full worlds from disk — decode,
  // adopt the packed D2D matrix, publish epoch 0. This is the path the
  // ≥10x claim is about.
  Timer boot_timer;
  std::vector<std::shared_ptr<const VersionedGraph>> worlds;
  std::vector<std::vector<double>> loaded_d2d;
  worlds.reserve(paths.size());
  loaded_d2d.reserve(paths.size());
  for (const std::string& path : paths) {
    auto decoded = LoadVenueArtifact(path);
    if (!decoded.ok()) {
      std::printf("LoadVenueArtifact failed: %s\n",
                  decoded.status().ToString().c_str());
      return result;
    }
    loaded_d2d.push_back(std::move(decoded->d2d_matrix));
    auto world = BuildWorldFromArtifact(*std::move(decoded), kFleetStrategy);
    if (!world.ok()) {
      std::printf("BuildWorldFromArtifact failed: %s\n",
                  world.status().ToString().c_str());
      return result;
    }
    worlds.push_back(*std::move(world));
  }
  result.artifact_boot_ms = boot_timer.ElapsedMillis();
  result.cold_start_speedup =
      result.artifact_boot_ms > 0
          ? result.eager_boot_ms / result.artifact_boot_ms
          : 0;
  size_t loaded_d2d_bytes = 0;
  for (size_t i = 0; i < worlds.size(); ++i) {
    result.resident_bytes_full += worlds[i]->MemoryUsage();
    loaded_d2d_bytes += loaded_d2d[i].size() * sizeof(double);
  }
  for (const std::string& path : paths) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f != nullptr) {
      std::fseek(f, 0, SEEK_END);
      result.artifact_bytes += static_cast<size_t>(std::ftell(f));
      std::fclose(f);
    }
  }
  if (loaded_d2d_bytes != eager_d2d_bytes) {
    std::printf("warning: loaded D2D bytes (%zu) != eager D2D bytes (%zu)\n",
                loaded_d2d_bytes, eager_d2d_bytes);
  }

  std::printf("%-34s %12s\n", "phase", "wall ms");
  std::printf("%-34s %12.1f\n", "generate fleet", result.generate_ms);
  std::printf("%-34s %12.1f\n", "eager: graph+router build",
              result.eager_graph_ms);
  std::printf("%-34s %12.1f\n", "eager: D2D sweep", result.eager_d2d_ms);
  std::printf("%-34s %12.1f\n", "eager boot total (gen+build+D2D)",
              result.eager_boot_ms);
  std::printf("%-34s %12.1f\n", "offline pack (once, with D2D)",
              result.artifact_build_ms);
  std::printf("%-34s %12.1f\n", "artifact boot (load full world)",
              result.artifact_boot_ms);
  std::printf("cold-start speedup: %.1fx (artifacts %s on disk, %s graphs "
              "+ %s D2D resident)\n",
              result.cold_start_speedup,
              FormatBytes(result.artifact_bytes).c_str(),
              FormatBytes(result.resident_bytes_full).c_str(),
              FormatBytes(loaded_d2d_bytes).c_str());
  worlds.clear();
  loaded_d2d.clear();
  eager_d2d.clear();

  // Lazy serve: a fresh lazy catalog under a budget of ~25% of the
  // fully resident fleet, against the eager catalog as ground truth.
  // The workload is generated on the eager catalog (the lazy one is
  // cold — that is the point) and Zipf-skewed so there is a hot head
  // worth keeping resident and a cold tail worth evicting.
  VenueCatalog lazy;
  for (const std::string& path : paths) {
    auto id = lazy.AddArtifactShard(path, kFleetStrategy);
    if (!id.ok()) return result;
  }
  const size_t budget = std::max<size_t>(result.resident_bytes_full / 4, 1);
  result.residency_budget_bytes = budget;
  Status budgeted = lazy.SetResidencyBudget(budget, "lru");
  if (!budgeted.ok()) {
    std::printf("SetResidencyBudget failed: %s\n",
                budgeted.ToString().c_str());
    return result;
  }

  MultiVenueWorkloadConfig workload;
  workload.num_requests = smoke ? 256 : 2048;
  workload.seed = seed + 1;
  workload.zipf_exponent = 1.0;
  workload.pairs_per_venue = 4;
  auto requests = GenerateMultiVenueWorkload(eager, workload);
  if (!requests.ok()) {
    std::printf("workload generation failed: %s\n",
                requests.status().ToString().c_str());
    return result;
  }
  result.requests = requests->size();

  ShardedRouter truth(eager), served(lazy);
  QueryContext truth_context, served_context;
  Timer serve_timer;
  size_t served_count = 0;
  for (const QueryRequest& request : *requests) {
    auto expect = truth.Route(request, &truth_context);
    auto got = served.Route(request, &served_context);
    const bool same =
        expect.ok() == got.ok() &&
        (!expect.ok() ||
         (expect->found == got->found &&
          (!expect->found ||
           expect->path.length_m() == got->path.length_m())));
    if (!same) ++result.mismatches;
    // Stats() walks every shard; sampling every 8th request keeps the
    // high-water probe out of the serve numbers (the per-request bound
    // itself is asserted exhaustively in lazy_catalog_test).
    if (++served_count % 8 == 0) {
      result.max_resident_lazy_bytes =
          std::max(result.max_resident_lazy_bytes,
                   lazy.Stats().resident_lazy_bytes);
    }
  }
  result.max_resident_lazy_bytes = std::max(
      result.max_resident_lazy_bytes, lazy.Stats().resident_lazy_bytes);
  const double serve_ms = serve_timer.ElapsedMillis();

  const CatalogStats stats = lazy.Stats();
  result.lazy_loads = stats.total_loads;
  result.lazy_evictions = stats.total_shard_evictions;
  result.cold_load_p50_us = stats.load_latency.P50();
  result.cold_load_p99_us = stats.load_latency.P99();

  std::printf(
      "\nlazy serve @ 25%% budget (%s): %zu requests in %.1f ms, "
      "%zu mismatches\n",
      FormatBytes(budget).c_str(), result.requests, serve_ms,
      result.mismatches);
  std::printf(
      "  loads %zu (fleet %zu), evictions %zu, resident high-water %s, "
      "cold-load p50 %.0f us p99 %.0f us\n",
      result.lazy_loads, fleet_size, result.lazy_evictions,
      FormatBytes(result.max_resident_lazy_bytes).c_str(),
      result.cold_load_p50_us, result.cold_load_p99_us);

  result.ok = result.mismatches == 0 &&
              result.max_resident_lazy_bytes <= budget &&
              result.cold_start_speedup > 1.0;
  return result;
}

void WriteJson(const FleetResult& r, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::printf("cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"fleet_cold_start\",\n"
               "  \"fleet_size\": %zu,\n"
               "  \"seed\": %llu,\n"
               "  \"strategy\": \"%s\",\n"
               "  \"generate_ms\": %.3f,\n"
               "  \"eager_graph_ms\": %.3f,\n"
               "  \"eager_d2d_ms\": %.3f,\n"
               "  \"eager_boot_ms\": %.3f,\n"
               "  \"artifact_build_ms\": %.3f,\n"
               "  \"artifact_boot_ms\": %.3f,\n"
               "  \"cold_start_speedup\": %.2f,\n"
               "  \"artifact_bytes\": %zu,\n"
               "  \"resident_bytes_full\": %zu,\n"
               "  \"residency_budget_bytes\": %zu,\n"
               "  \"max_resident_lazy_bytes\": %zu,\n"
               "  \"lazy_loads\": %zu,\n"
               "  \"lazy_evictions\": %zu,\n"
               "  \"cold_load_p50_us\": %.1f,\n"
               "  \"cold_load_p99_us\": %.1f,\n"
               "  \"requests\": %zu,\n"
               "  \"mismatches\": %zu,\n"
               "  \"ok\": %s\n"
               "}\n",
               r.fleet_size, static_cast<unsigned long long>(r.seed),
               kFleetStrategy, r.generate_ms, r.eager_graph_ms,
               r.eager_d2d_ms, r.eager_boot_ms,
               r.artifact_build_ms, r.artifact_boot_ms, r.cold_start_speedup,
               r.artifact_bytes, r.resident_bytes_full,
               r.residency_budget_bytes, r.max_resident_lazy_bytes,
               r.lazy_loads, r.lazy_evictions, r.cold_load_p50_us,
               r.cold_load_p99_us, r.requests, r.mismatches,
               r.ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main(int argc, char** argv) {
  bool smoke = false;
  long fleet_size = -1;
  std::string artifacts_dir = "pr7_artifacts";
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--fleet=", 8) == 0) {
      fleet_size = std::atol(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--artifacts=", 12) == 0) {
      artifacts_dir = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  const uint64_t seed = itspq::bench::ParseSeedFlag(argc, argv, 7);
  if (fleet_size <= 0) fleet_size = smoke ? 12 : 256;

  if (!smoke) itspq::bench::RunConstructionTable();
  const itspq::bench::FleetResult result = itspq::bench::RunFleetColdStart(
      static_cast<size_t>(fleet_size), seed, artifacts_dir, smoke);
  if (!json_path.empty()) itspq::bench::WriteJson(result, json_path);
  if (smoke && !result.ok) {
    std::printf("SMOKE FAILED: mismatches=%zu speedup=%.2f high_water=%zu "
                "budget=%zu\n",
                result.mismatches, result.cold_start_speedup,
                result.max_resident_lazy_bytes,
                result.residency_budget_bytes);
    return 1;
  }
  return 0;
}

#ifndef ITSPQ_BENCH_BENCH_COMMON_H_
#define ITSPQ_BENCH_BENCH_COMMON_H_

// Shared harness for the figure-reproduction benches.
//
// Experimental setup (paper §III): a 5-floor synthetic mall (705
// partitions, 1120 doors), temporal variations drawn from a synthetic
// shop-hours pool with |T| checkpoints, five (ps, pt) query pairs per
// δs2t setting, each query run ten times, reporting average search time
// (µs) and memory cost (KB). Defaults (bold in Table II): |T| = 8,
// δs2t = 1500 m, t = 12:00.
//
// Strategies are resolved by registry name ("itg-s", "itg-a", "itg-a+",
// "snap", "ntv") via MakeRouterOrDie; per-call knobs travel in
// QueryOptions.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"  // micro_core.cc takes Rng from this header
#include "common/time.h"
#include "gen/ati_gen.h"
#include "gen/query_gen.h"
#include "gen/venue_gen.h"
#include "gen/workload_gen.h"
#include "itgraph/itgraph.h"
#include "query/registry.h"
#include "query/router.h"
#include "query/venue_catalog.h"
#include "venue/venue.h"

namespace itspq {
namespace bench {

/// Table II defaults.
inline constexpr int kDefaultT = 8;
inline constexpr double kDefaultS2t = 1500;
inline constexpr int kDefaultHour = 12;
inline constexpr int kRunsPerQuery = 10;
inline constexpr int kPairsPerSetting = 5;

/// A fully built experimental world: venue + IT-Graph. Routers are
/// created per strategy with MakeRouterOrDie.
struct World {
  std::unique_ptr<Venue> venue;
  std::unique_ptr<ItGraph> graph;
  std::vector<double> checkpoints;
};

/// Builds the paper's default world with `checkpoint_count = |T|`.
/// `floors` defaults to the paper's 5; smaller values speed up smoke runs.
World BuildWorld(int checkpoint_count = kDefaultT, int floors = 5,
                 uint64_t seed = 42);

/// Resolves `name` through the global RouterRegistry; aborts the bench
/// on an unknown strategy. `options` carries the snapshot-store config
/// (budget, eviction policy) for the cache ablations.
std::unique_ptr<Router> MakeRouterOrDie(
    const World& world, const std::string& name,
    const RouterBuildOptions& options = RouterBuildOptions());

/// Generates the δs2t-controlled workload on `world` (5 pairs by default).
std::vector<QueryInstance> MakeWorkload(const World& world, double s2t,
                                        int pairs = kPairsPerSetting,
                                        uint64_t seed = 99);

/// Aggregate of one (method, setting) cell: averages over pairs x runs.
struct Cell {
  double mean_micros = 0;
  double mean_memory_kb = 0;
  double found_fraction = 0;
  double mean_doors_popped = 0;
  double mean_graph_updates = 0;
};

/// Routes `queries` at time `t` under `options`, `runs` times each,
/// reusing one QueryContext.
Cell RunCell(const Router& router, const std::vector<QueryInstance>& queries,
             Instant t, const QueryOptions& options = QueryOptions(),
             int runs = kRunsPerQuery);

/// The serving benches' shared fleet: `num_venues` small heterogeneous
/// malls (1..max_floors floors, seed-threaded for reproducibility),
/// every venue behind "itg-a+" so the stats reports show real
/// snapshot-store traffic. Aborts the bench on setup failure.
VenueCatalog BuildServingCatalog(int num_venues, int max_floors,
                                 uint64_t seed);

/// Parses the shared reproducibility flag "--seed=N" out of argv,
/// returning `fallback` when absent or malformed. Benches thread the
/// result through GenerateVenueFleet / GenerateMultiVenueWorkload /
/// BuildWorld so a printed seed reproduces the exact run.
uint64_t ParseSeedFlag(int argc, char** argv, uint64_t fallback);

/// Prints a markdown-ish table header / row.
void PrintHeader(const std::string& title, const std::string& x_label,
                 const std::vector<std::string>& series);
void PrintRow(const std::string& x_value, const std::vector<double>& values,
              const char* unit);

}  // namespace bench
}  // namespace itspq

#endif  // ITSPQ_BENCH_BENCH_COMMON_H_

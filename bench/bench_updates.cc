// The update plane's two costs: (1) how long one online ATI mutation
// takes to commit — incremental re-derivation plus RCU publication —
// against the from-scratch VersionedGraph rebuild it replaces, and
// (2) what a live write stream does to read throughput, by serving an
// open-loop query load through a QueryService while SubmitUpdate
// traffic flows concurrently (no drain, no pause).
//
// Part 1 columns: apply-latency mean/p50/p99 µs over a Zipf-skewed
// Poisson update stream, totals of snapshots carried / rebased /
// invalidated across the stream, and the mean full-rebuild time for
// scale. Part 2 rows: the same offered query load with zero writers
// and with the update stream running, so the delta is the write tax.
//
// `--smoke` shrinks to a CI-sized run and exits non-zero if the update
// invariants break (epoch/counter coherence, carried > 0 on a warmed
// catalog, service accounting). `--seed=N` reproduces a run exactly.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "gen/workload_gen.h"
#include "query/sharded_router.h"
#include "server/query_service.h"
#include "update/versioned_graph.h"

namespace itspq {
namespace bench {
namespace {

[[noreturn]] void DieStatus(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

using SteadyClock = std::chrono::steady_clock;

double MicrosSince(SteadyClock::time_point start) {
  return std::chrono::duration<double, std::micro>(SteadyClock::now() - start)
      .count();
}

double Quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0;
  std::sort(sorted.begin(), sorted.end());
  const size_t i = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  return sorted[std::min(i, sorted.size() - 1)];
}

struct RunShape {
  int num_venues = 3;
  int max_floors = 2;
  int num_updates = 128;
  int num_requests = 2048;
  double offered_qps = 8000;
  ServiceOptions service;
};

// Warms every shard's snapshot store to full residency so the apply
// loop below measures carry against a realistic steady serving state.
void WarmSnapshotStores(const VenueCatalog& catalog) {
  for (size_t v = 0; v < catalog.NumVenues(); ++v) {
    const std::shared_ptr<const VersionedGraph> world =
        catalog.world(static_cast<VenueId>(v));
    const SnapshotStore* store = world->router().snapshot_store();
    if (store == nullptr) continue;
    for (size_t i = 0; i < store->NumIntervals(); ++i) store->Get(i);
  }
}

struct ApplyResult {
  std::vector<double> latencies_micros;
  size_t applied = 0;
  size_t carried = 0;
  size_t rebased = 0;
  size_t invalidated = 0;
};

ApplyResult ApplyStream(VenueCatalog* catalog,
                        const std::vector<TimedAtiUpdate>& stream) {
  ApplyResult result;
  result.latencies_micros.reserve(stream.size());
  for (const TimedAtiUpdate& timed : stream) {
    const SteadyClock::time_point start = SteadyClock::now();
    auto outcome = catalog->ApplyAtiUpdate(timed.update);
    result.latencies_micros.push_back(MicrosSince(start));
    if (!outcome.ok()) DieStatus("ApplyAtiUpdate failed", outcome.status());
    ++result.applied;
    result.carried += outcome->snapshots_carried;
    result.rebased += outcome->snapshots_rebased;
    result.invalidated += outcome->intervals_invalidated;
  }
  return result;
}

// Mean from-scratch VersionedGraph::Build time across the catalog's
// venues — the cost one online apply avoids.
double MeanRebuildMicros(const VenueCatalog& catalog) {
  double total = 0;
  for (size_t v = 0; v < catalog.NumVenues(); ++v) {
    Venue copy = catalog.venue(static_cast<VenueId>(v));
    const SteadyClock::time_point start = SteadyClock::now();
    auto rebuilt = VersionedGraph::Build(std::move(copy), "itg-a+");
    const double micros = MicrosSince(start);
    if (!rebuilt.ok()) DieStatus("rebuild failed", rebuilt.status());
    total += micros;
  }
  return total / static_cast<double>(catalog.NumVenues());
}

bool RunApplyLatency(const RunShape& shape, uint64_t seed, bool smoke) {
  VenueCatalog catalog =
      BuildServingCatalog(shape.num_venues, shape.max_floors, seed);
  WarmSnapshotStores(catalog);

  UpdateStreamConfig stream_config;
  stream_config.num_updates = shape.num_updates;
  stream_config.seed = seed + 3;
  auto stream = GenerateUpdateStream(catalog, stream_config);
  if (!stream.ok()) DieStatus("update stream generation failed", stream.status());

  const double rebuild_micros = MeanRebuildMicros(catalog);
  const ApplyResult result = ApplyStream(&catalog, *stream);

  double mean = 0;
  for (double m : result.latencies_micros) mean += m;
  mean /= static_cast<double>(result.latencies_micros.size());

  std::printf("\n== part 1: update-apply latency, %d updates over %d venues "
              "==\n",
              shape.num_updates, shape.num_venues);
  std::printf("apply  mean %8.1f us   p50 %8.1f us   p99 %8.1f us\n", mean,
              Quantile(result.latencies_micros, 0.50),
              Quantile(result.latencies_micros, 0.99));
  std::printf("vs     full rebuild mean %8.1f us  (%.1fx)\n", rebuild_micros,
              rebuild_micros / std::max(mean, 1e-9));
  std::printf("snapshots: %zu carried, %zu rebased, %zu invalidated across "
              "the stream\n",
              result.carried, result.rebased, result.invalidated);

  bool ok = true;
  const CatalogStats stats = catalog.Stats();
  if (stats.total_updates_applied != static_cast<size_t>(shape.num_updates)) {
    std::fprintf(stderr, "invariant violated: %d updates sent, %zu applied\n",
                 shape.num_updates, stats.total_updates_applied);
    ok = false;
  }
  uint64_t epoch_total = 0;
  for (size_t v = 0; v < catalog.NumVenues(); ++v) {
    epoch_total += catalog.epoch(static_cast<VenueId>(v));
  }
  if (epoch_total != static_cast<uint64_t>(shape.num_updates)) {
    std::fprintf(stderr,
                 "invariant violated: epochs sum to %llu, expected %d\n",
                 static_cast<unsigned long long>(epoch_total),
                 shape.num_updates);
    ok = false;
  }
  if (smoke && result.carried == 0) {
    std::fprintf(stderr,
                 "invariant violated: warmed catalog carried no snapshots\n");
    ok = false;
  }
  return ok;
}

struct LoadResult {
  double achieved_kqps = 0;
  ServiceStats stats;
};

// One serving point: open-loop queries at `offered_qps`, with an update
// stream running concurrently when `with_writes` is set. The service
// never drains or pauses while writes flow.
LoadResult RunLoadPoint(const RunShape& shape, bool with_writes,
                        uint64_t seed) {
  VenueCatalog catalog =
      BuildServingCatalog(shape.num_venues, shape.max_floors, seed);

  MultiVenueWorkloadConfig workload_config;
  workload_config.num_requests = shape.num_requests;
  workload_config.seed = seed + 1;
  workload_config.options.use_snapshot_cache = true;
  auto workload = GenerateMultiVenueWorkload(catalog, workload_config);
  if (!workload.ok()) DieStatus("workload generation failed", workload.status());

  ArrivalScheduleConfig arrival_config;
  arrival_config.offered_qps = shape.offered_qps;
  arrival_config.seed = seed + 2;
  auto arrivals = GenerateOpenLoopArrivals(shape.num_requests, arrival_config);
  if (!arrivals.ok()) DieStatus("arrival generation failed", arrivals.status());

  std::vector<TimedAtiUpdate> stream;
  if (with_writes) {
    UpdateStreamConfig stream_config;
    stream_config.num_updates = shape.num_updates;
    stream_config.seed = seed + 3;
    // Pace the writers to span the query phase.
    stream_config.offered_ups =
        static_cast<double>(shape.num_updates) /
        std::max(static_cast<double>(shape.num_requests) / shape.offered_qps,
                 1e-3);
    auto generated = GenerateUpdateStream(catalog, stream_config);
    if (!generated.ok()) {
      DieStatus("update stream generation failed", generated.status());
    }
    stream = *std::move(generated);
  }

  auto service = MakeQueryService(std::move(catalog), shape.service);
  if (!service.ok()) DieStatus("MakeQueryService failed", service.status());

  // Writer thread submits on the stream's own Poisson schedule.
  std::thread writer;
  std::vector<std::future<Status>> commits;
  const SteadyClock::time_point start = SteadyClock::now();
  if (with_writes) {
    commits.reserve(stream.size());
    writer = std::thread([&] {
      for (const TimedAtiUpdate& timed : stream) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<SteadyClock::duration>(
                        std::chrono::duration<double>(timed.offset_seconds)));
        commits.push_back((*service)->SubmitUpdate(timed.update));
      }
    });
  }

  std::vector<std::future<StatusOr<QueryResult>>> futures;
  futures.reserve(static_cast<size_t>(shape.num_requests));
  for (int i = 0; i < shape.num_requests; ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double>(
                        (*arrivals)[static_cast<size_t>(i)])));
    futures.push_back((*service)->Submit((*workload)[static_cast<size_t>(i)]));
  }
  for (auto& f : futures) (void)f.get();
  const double seconds =
      std::chrono::duration<double>(SteadyClock::now() - start).count();

  if (with_writes) {
    writer.join();
    for (std::future<Status>& commit : commits) {
      const Status status = commit.get();
      if (!status.ok()) DieStatus("SubmitUpdate failed", status);
    }
  }
  (*service)->Shutdown();

  LoadResult result;
  result.stats = (*service)->Stats();
  result.achieved_kqps =
      static_cast<double>(result.stats.served) / seconds / 1e3;
  return result;
}

bool CheckServiceInvariants(const ServiceStats& stats, bool with_writes,
                            int num_updates) {
  bool ok = true;
  const size_t accounted = stats.rejected_queue_full + stats.rejected_expired +
                           stats.rejected_shutdown + stats.timed_out_in_queue +
                           stats.timed_out_in_flight + stats.served;
  if (accounted != stats.submitted) {
    std::fprintf(stderr,
                 "invariant violated: %zu submitted but %zu accounted\n",
                 stats.submitted, accounted);
    ok = false;
  }
  if (stats.served == 0) {
    std::fprintf(stderr, "invariant violated: nothing was served\n");
    ok = false;
  }
  if (stats.updates_submitted !=
      stats.updates_applied + stats.updates_rejected) {
    std::fprintf(stderr,
                 "invariant violated: %zu updates submitted, %zu applied + "
                 "%zu rejected\n",
                 stats.updates_submitted, stats.updates_applied,
                 stats.updates_rejected);
    ok = false;
  }
  const size_t expected_updates =
      with_writes ? static_cast<size_t>(num_updates) : 0;
  if (stats.updates_submitted != expected_updates) {
    std::fprintf(stderr,
                 "invariant violated: %zu updates submitted, expected %zu\n",
                 stats.updates_submitted, expected_updates);
    ok = false;
  }
  if (with_writes && stats.updates_applied == 0) {
    std::fprintf(stderr, "invariant violated: no update committed\n");
    ok = false;
  }
  return ok;
}

bool RunReadUnderWrite(const RunShape& shape, uint64_t seed) {
  std::printf("\n== part 2: read throughput under write load, %.0f q/s "
              "offered, %d requests ==\n",
              shape.offered_qps, shape.num_requests);
  std::printf("%-12s %9s %8s %9s %8s %9s %9s %11s\n", "writers", "submitted",
              "served", "updates", "rej-full", "p50", "p99", "achieved");

  bool ok = true;
  for (const bool with_writes : {false, true}) {
    const LoadResult r = RunLoadPoint(shape, with_writes, seed);
    const ServiceStats& s = r.stats;
    std::printf("%-12s %9zu %8zu %9zu %8zu %7.0fus %7.0fus %8.1fkq/s\n",
                with_writes ? "update-strm" : "none", s.submitted, s.served,
                s.updates_applied, s.rejected_queue_full, s.latency.P50(),
                s.latency.P99(), r.achieved_kqps);
    ok = CheckServiceInvariants(s, with_writes, shape.num_updates) && ok;
  }
  return ok;
}

int Run(bool smoke, uint64_t seed) {
  RunShape shape;
  shape.service.num_workers = smoke ? 2 : 4;
  shape.service.queue_capacity = smoke ? 64 : 512;
  shape.service.update_queue_capacity = 256;
  shape.service.max_batch = 16;
  shape.service.max_wait_micros = 200;
  if (smoke) {
    shape.num_venues = 2;
    shape.max_floors = 1;
    shape.num_updates = 16;
    shape.num_requests = 96;
    shape.offered_qps = 50000;
  }

  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  std::printf("seed: %llu (rerun with --seed=%llu)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));

  bool ok = RunApplyLatency(shape, seed, smoke);
  ok = RunReadUnderWrite(shape, seed) && ok;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const uint64_t seed = itspq::bench::ParseSeedFlag(argc, argv, 4242);
  return itspq::bench::Run(smoke, seed);
}

// Figure 5: search time vs δs2t (source-target indoor distance) at the
// defaults |T| = 8, t = 12:00.
//
// Expected shape (paper §III-2 "Effect of δs2t"): search time grows mildly
// with the distance — longer queries settle more doors.

#include "bench/bench_common.h"

namespace itspq {
namespace bench {
namespace {

void Run(uint64_t seed) {
  PrintHeader("Figure 5: search time vs dS2T (|T|=8, t=12:00, seed " +
                  std::to_string(seed) + ")",
              "dS2T(m)", {"ITG/S", "ITG/A"});
  World world = BuildWorld(kDefaultT, /*floors=*/5, seed);
  const auto itg_s = MakeRouterOrDie(world, "itg-s");
  const auto itg_a = MakeRouterOrDie(world, "itg-a");
  for (double s2t : {1100.0, 1300.0, 1500.0, 1700.0, 1900.0}) {
    const auto queries = MakeWorkload(world, s2t, kPairsPerSetting, seed + 57);
    const Cell s = RunCell(*itg_s, queries, Instant::FromHMS(12));
    const Cell a = RunCell(*itg_a, queries, Instant::FromHMS(12));
    PrintRow(std::to_string(static_cast<int>(s2t)),
             {s.mean_micros, a.mean_micros}, "us");
  }
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main(int argc, char** argv) {
  itspq::bench::Run(itspq::bench::ParseSeedFlag(argc, argv, 42));
  return 0;
}

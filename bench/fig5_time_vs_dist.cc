// Figure 5: search time vs δs2t (source-target indoor distance) at the
// defaults |T| = 8, t = 12:00.
//
// Expected shape (paper §III-2 "Effect of δs2t"): search time grows mildly
// with the distance — longer queries settle more doors.

#include "bench/bench_common.h"

namespace itspq {
namespace bench {
namespace {

void Run() {
  PrintHeader("Figure 5: search time vs dS2T (|T|=8, t=12:00)", "dS2T(m)",
              {"ITG/S", "ITG/A"});
  World world = BuildWorld();
  for (double s2t : {1100.0, 1300.0, 1500.0, 1700.0, 1900.0}) {
    const auto queries = MakeWorkload(world, s2t);
    ItspqOptions syn;
    ItspqOptions asyn;
    asyn.mode = TvMode::kAsynchronous;
    const Cell s =
        RunCell(*world.engine, queries, Instant::FromHMS(12), syn);
    const Cell a =
        RunCell(*world.engine, queries, Instant::FromHMS(12), asyn);
    PrintRow(std::to_string(static_cast<int>(s2t)),
             {s.mean_micros, a.mean_micros}, "us");
  }
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main() {
  itspq::bench::Run();
  return 0;
}

// Figure 5: search time vs δs2t (source-target indoor distance) at the
// defaults |T| = 8, t = 12:00.
//
// Expected shape (paper §III-2 "Effect of δs2t"): search time grows mildly
// with the distance — longer queries settle more doors.

#include "bench/bench_common.h"

namespace itspq {
namespace bench {
namespace {

void Run() {
  PrintHeader("Figure 5: search time vs dS2T (|T|=8, t=12:00)", "dS2T(m)",
              {"ITG/S", "ITG/A"});
  World world = BuildWorld();
  const auto itg_s = MakeRouterOrDie(world, "itg-s");
  const auto itg_a = MakeRouterOrDie(world, "itg-a");
  for (double s2t : {1100.0, 1300.0, 1500.0, 1700.0, 1900.0}) {
    const auto queries = MakeWorkload(world, s2t);
    const Cell s = RunCell(*itg_s, queries, Instant::FromHMS(12));
    const Cell a = RunCell(*itg_a, queries, Instant::FromHMS(12));
    PrintRow(std::to_string(static_cast<int>(s2t)),
             {s.mean_micros, a.mean_micros}, "us");
  }
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main() {
  itspq::bench::Run();
  return 0;
}

// Ablation: the materialized door-to-door index (the pre-computed approach
// the paper's introduction argues against) on the temporally-varying mall.
//
// Three measurements:
//   1. build cost + memory of the all-pairs matrix;
//   2. static point-query speedup over the NTV Dijkstra;
//   3. *staleness*: the fraction of materialized entries whose distance is
//      wrong (detour needed) or dead (no route) at each hour — the paper's
//      motivating claim, quantified.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/memory_tracker.h"
#include "common/stats.h"
#include "itgraph/d2d_index.h"

namespace itspq {
namespace bench {
namespace {

void Run(uint64_t seed) {
  // Two floors keep the all-pairs build in comfortable bench time.
  World world = BuildWorld(kDefaultT, /*floors=*/2, seed);
  Timer build_timer;
  auto index = D2dIndex::Build(*world.graph);
  if (!index.ok()) return;
  std::printf(
      "\n== Ablation: materialized D2D index (2-floor mall, %zu doors, "
      "seed %llu) ==\n",
      world.graph->NumDoors(), static_cast<unsigned long long>(seed));
  std::printf("build: %.1f ms, memory: %s\n", build_timer.ElapsedMillis(),
              FormatBytes(index->MemoryUsage()).c_str());

  // Static query speed: index lookup vs NTV Dijkstra.
  const auto queries = MakeWorkload(world, 900, 5, seed + 57);
  const auto ntv = MakeRouterOrDie(world, "ntv");
  QueryContext context;
  Timer t_idx;
  for (int r = 0; r < 100; ++r) {
    for (const QueryInstance& q : queries) {
      auto a = index->Query(q.ps, q.pt);
      (void)a;
    }
  }
  const double idx_us = t_idx.ElapsedMicros() / (100.0 * queries.size());
  Timer t_ntv;
  for (int r = 0; r < 100; ++r) {
    for (const QueryInstance& q : queries) {
      auto a = ntv->Route(QueryRequest{q.ps, q.pt, Instant(), QueryOptions()},
                          &context);
      (void)a;
    }
  }
  const double ntv_us = t_ntv.ElapsedMicros() / (100.0 * queries.size());
  std::printf("static query: index %.1f us vs Dijkstra %.1f us (%.0fx)\n",
              idx_us, ntv_us, ntv_us / idx_us);

  // Staleness by hour.
  std::printf("\n%-6s %10s %12s %12s %10s\n", "t", "sampled", "changed",
              "unreachable", "invalid");
  for (int hour = 0; hour <= 22; hour += 2) {
    const auto s =
        index->SampleStaleness(Instant::FromHMS(hour), /*samples=*/60,
                               /*seed=*/seed + hour + 1);
    std::printf("%-6d %10zu %12zu %12zu %9.0f%%\n", hour, s.sampled,
                s.changed, s.unreachable, s.InvalidFraction() * 100);
  }
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main(int argc, char** argv) {
  itspq::bench::Run(itspq::bench::ParseSeedFlag(argc, argv, 42));
  return 0;
}

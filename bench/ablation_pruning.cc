// Ablation: Alg. 1's partition-visited pruning (line 18-19: each partition
// is expanded through exactly one entry door) vs a conventional door-graph
// Dijkstra without it.
//
// Pruning cuts work (fewer door relaxations) but, as DESIGN.md documents,
// can in principle return a slightly longer path when a partition's best
// exit is served by a later entry door. This bench measures both effects.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"

namespace itspq {
namespace bench {
namespace {

void Run(uint64_t seed) {
  World world = BuildWorld(kDefaultT, /*floors=*/5, seed);
  const auto itg_s = MakeRouterOrDie(world, "itg-s");
  std::printf(
      "\n== Ablation: partition-visited pruning (ITG/S, seed %llu) ==\n"
      "%-10s %12s %12s %14s %14s %12s\n",
      static_cast<unsigned long long>(seed), "dS2T(m)", "pruned us",
      "full us", "pruned pops", "full pops", "len ratio");
  QueryContext context;
  for (double s2t : {1100.0, 1500.0, 1900.0}) {
    const auto queries = MakeWorkload(world, s2t, kPairsPerSetting, seed + 57);
    QueryOptions pruned;
    QueryOptions full;
    full.partition_visited_pruning = false;
    const Instant t = Instant::FromHMS(12);
    const Cell cp = RunCell(*itg_s, queries, t, pruned);
    const Cell cf = RunCell(*itg_s, queries, t, full);
    // Length ratio pruned/full over the queries both answered.
    double ratio_sum = 0;
    int ratio_n = 0;
    for (const QueryInstance& q : queries) {
      auto rp = itg_s->Route(QueryRequest{q.ps, q.pt, t, pruned}, &context);
      auto rf = itg_s->Route(QueryRequest{q.ps, q.pt, t, full}, &context);
      if (rp.ok() && rf.ok() && rp->found && rf->found) {
        ratio_sum += rp->path.length_m() / rf->path.length_m();
        ++ratio_n;
      }
    }
    std::printf("%-10.0f %9.1f us %9.1f us %14.1f %14.1f %12.4f\n", s2t,
                cp.mean_micros, cf.mean_micros, cp.mean_doors_popped,
                cf.mean_doors_popped,
                ratio_n > 0 ? ratio_sum / ratio_n : 0.0);
  }
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main(int argc, char** argv) {
  itspq::bench::Run(itspq::bench::ParseSeedFlag(argc, argv, 42));
  return 0;
}

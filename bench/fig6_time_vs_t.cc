// Figure 6: search time vs query time t (0:00 .. 22:00, step 2 h) at the
// defaults |T| = 8, δs2t = 1500 m.
//
// Expected shape (paper §III-2 "Effect of t"): cheap before ~10:00 and
// after ~20:00 (most doors closed, tiny reachable graph), an expensive
// stable plateau between 10:00 and 20:00 when the mall is fully open.

#include "bench/bench_common.h"

namespace itspq {
namespace bench {
namespace {

void Run(uint64_t seed) {
  // The third series is an extension: ITG/A with the router's shared
  // per-interval snapshot cache, isolating Graph_Update rebuild cost (the
  // source of ITG/A's evening spike — see EXPERIMENTS.md).
  PrintHeader("Figure 6: search time vs t (|T|=8, dS2T=1500m, seed " +
                  std::to_string(seed) + ")",
              "t (o'clock)", {"ITG/S", "ITG/A", "ITG/A+cache"});
  World world = BuildWorld(kDefaultT, /*floors=*/5, seed);
  const auto queries =
      MakeWorkload(world, kDefaultS2t, kPairsPerSetting, seed + 57);
  const auto itg_s = MakeRouterOrDie(world, "itg-s");
  const auto itg_a = MakeRouterOrDie(world, "itg-a");
  QueryOptions cached;
  cached.use_snapshot_cache = true;
  std::vector<double> found_pct;
  for (int hour = 0; hour <= 22; hour += 2) {
    const Cell s = RunCell(*itg_s, queries, Instant::FromHMS(hour));
    const Cell a = RunCell(*itg_a, queries, Instant::FromHMS(hour));
    const Cell c = RunCell(*itg_a, queries, Instant::FromHMS(hour), cached);
    PrintRow(std::to_string(hour),
             {s.mean_micros, a.mean_micros, c.mean_micros}, "us");
    found_pct.push_back(s.found_fraction * 100.0);
  }
  PrintHeader("Answered queries vs t (same sweep)", "t (o'clock)",
              {"found"});
  int hour = 0;
  for (double pct : found_pct) {
    PrintRow(std::to_string(hour), {pct}, "%");
    hour += 2;
  }
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main(int argc, char** argv) {
  itspq::bench::Run(itspq::bench::ParseSeedFlag(argc, argv, 42));
  return 0;
}

// Figure 4: search time vs |T| (checkpoint count), at t = 12:00 and
// t = 8:00, for ITG/S and ITG/A.
//
// Expected shape (paper §III-2 "Effect of |T|"): at 12:00 nearly all doors
// are open, so |T| barely matters; at 8:00 larger |T| closes more doors,
// shrinking the searchable graph and making both methods faster.

#include "bench/bench_common.h"

namespace itspq {
namespace bench {
namespace {

void Run(uint64_t base_seed) {
  PrintHeader("Figure 4: search time vs |T| (5-floor mall, dS2T=1500m, seed " +
                  std::to_string(base_seed) + ")",
              "|T|",
              {"ITG/S(t=12)", "ITG/A(t=12)", "ITG/S(t=8)", "ITG/A(t=8)"});
  for (int t_size : {4, 8, 12, 16}) {
    // Average over several checkpoint draws: which (open, close) pairs end
    // up in T is random, and at off-peak hours a single draw dominates the
    // open-door population.
    const std::vector<uint64_t> seeds = {base_seed, base_seed + 1000,
                                         base_seed + 2000};
    double s12 = 0, a12 = 0, s8 = 0, a8 = 0;
    for (uint64_t seed : seeds) {
      World world = BuildWorld(t_size, /*floors=*/5, seed);
      const auto queries =
          MakeWorkload(world, kDefaultS2t, kPairsPerSetting, seed + 57);
      const auto itg_s = MakeRouterOrDie(world, "itg-s");
      const auto itg_a = MakeRouterOrDie(world, "itg-a");
      s12 += RunCell(*itg_s, queries, Instant::FromHMS(12)).mean_micros;
      a12 += RunCell(*itg_a, queries, Instant::FromHMS(12)).mean_micros;
      s8 += RunCell(*itg_s, queries, Instant::FromHMS(8)).mean_micros;
      a8 += RunCell(*itg_a, queries, Instant::FromHMS(8)).mean_micros;
    }
    const double n = static_cast<double>(seeds.size());
    PrintRow(std::to_string(t_size), {s12 / n, a12 / n, s8 / n, a8 / n},
             "us");
  }
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main(int argc, char** argv) {
  itspq::bench::Run(itspq::bench::ParseSeedFlag(argc, argv, 42));
  return 0;
}

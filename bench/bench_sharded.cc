// Sharded serving throughput: RouteBatch over a ShardedRouter fanning a
// Zipf-skewed multi-venue workload out across per-venue shards.
//
// Two readings:
//   1. Thread scaling at fixed fleet size — the batch thread pool over a
//      mixed-venue request stream (work-stealing hops shards freely).
//   2. Capacity scaling along the diagonal — traffic and worker threads
//      grow with the fleet (requests/shard and threads/shard constant),
//      the acceptance check that aggregate throughput is near-linear in
//      shard count from 1 to 4.
//
// Ends with the CatalogStats report of the largest fleet: per-shard
// traffic, answer counts, snapshot-cache builds, and resident memory.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/memory_tracker.h"
#include "common/stats.h"
#include "gen/workload_gen.h"
#include "query/sharded_router.h"
#include "query/venue_catalog.h"

namespace itspq {
namespace bench {
namespace {

constexpr int kRequestsPerShard = 2048;
constexpr uint64_t kDefaultSeed = 2020;

// Small heterogeneous venues (1-2 floors) keep the CI smoke run fast;
// per-query cost is identical across fleet sizes, which is what makes
// the shard-scaling comparison clean.
VenueCatalog BuildCatalog(int num_venues, uint64_t seed) {
  return BuildServingCatalog(num_venues, /*max_floors=*/2, seed);
}

std::vector<QueryRequest> BuildWorkload(const VenueCatalog& catalog,
                                        int num_requests, uint64_t seed) {
  MultiVenueWorkloadConfig config;
  config.num_requests = num_requests;
  config.seed = seed + 1;
  config.options.use_snapshot_cache = true;  // serving shape: shared cache on
  auto workload = GenerateMultiVenueWorkload(catalog, config);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 workload.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(workload);
}

// Kilo-queries per second of one RouteBatch call (after a warm-up batch
// that populates every shard's snapshot cache).
double MeasureKqps(const ShardedRouter& router,
                   const std::vector<QueryRequest>& requests, int threads) {
  BatchOptions options;
  options.num_threads = threads;
  Timer timer;
  const auto results = router.RouteBatch(requests, options);
  const double seconds = timer.ElapsedSeconds();
  for (const auto& r : results) {
    if (!r.ok()) {
      std::fprintf(stderr, "request failed: %s\n", r.status().ToString().c_str());
      std::exit(1);
    }
  }
  return static_cast<double>(requests.size()) / seconds / 1e3;
}

void Run(int threads_override, uint64_t seed) {
  // Thread and diagonal scaling are hardware-bound: on a 1-core host
  // every row collapses to sequential throughput (the interesting
  // signal there is that fan-out costs nothing), so print the budget.
  // `--threads=N` pins the sweep to {1, N} for rerunning single rows on
  // real multi-core hardware.
  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  std::printf("seed: %llu (rerun with --seed=%llu)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));
  std::vector<int> thread_counts = {1, 2, 4, 8};
  if (threads_override > 0) {
    std::printf("thread override: --threads=%d\n", threads_override);
    thread_counts = {1, threads_override};
  }

  // --- Reading 1: thread scaling at fixed fleet sizes.
  std::vector<std::string> series;
  for (int threads : thread_counts) {
    series.push_back(std::to_string(threads) +
                     (threads == 1 ? " thread" : " threads"));
  }
  PrintHeader("bench_sharded: batch throughput, Zipf(1.0) traffic",
              "shards", series);
  for (int shards : {1, 2, 4}) {
    VenueCatalog catalog = BuildCatalog(shards, seed);
    ShardedRouter router(catalog);
    const auto requests =
        BuildWorkload(catalog, kRequestsPerShard * shards, seed);
    (void)MeasureKqps(router, requests, 1);  // warm the snapshot caches
    std::vector<double> row;
    for (int threads : thread_counts) {
      row.push_back(MeasureKqps(router, requests, threads));
    }
    PrintRow(std::to_string(shards), row, "kq/s");
  }

  // --- Reading 2: the capacity diagonal (threads = shards, traffic
  // proportional to the fleet). Near-linear kq/s growth 1 -> 4 shards
  // is the sharding acceptance check.
  std::printf("\n== capacity diagonal: threads = shards, %d requests/shard ==\n",
              kRequestsPerShard);
  std::printf("%-8s %12s %10s\n", "shards", "throughput", "speedup");
  double base_kqps = 0;
  CatalogStats last_stats;
  for (int shards : {1, 2, 4}) {
    VenueCatalog catalog = BuildCatalog(shards, seed);
    ShardedRouter router(catalog);
    const auto requests =
        BuildWorkload(catalog, kRequestsPerShard * shards, seed);
    (void)MeasureKqps(router, requests, 1);
    const double kqps = MeasureKqps(router, requests, shards);
    if (shards == 1) base_kqps = kqps;
    std::printf("%-8d %8.1f kq/s %9.2fx\n", shards, kqps, kqps / base_kqps);
    last_stats = catalog.Stats();
  }

  // --- The CatalogStats report of the last (4-shard) fleet, with the
  // per-shard snapshot-store columns (hits/misses/evictions, full vs
  // delta builds, resident cache bytes).
  std::printf("\n== catalog stats (4 shards, after %d queries) ==\n",
              static_cast<int>(last_stats.total_queries));
  std::printf("%-10s %-8s %8s %8s %6s %8s %7s %6s %5s %5s %9s %9s\n", "venue",
              "strategy", "queries", "found", "errors", "policy", "hits",
              "miss", "evict", "delta", "cache", "memory");
  auto print_stats_row = [](const char* label, const char* strategy,
                            size_t queries, size_t found, size_t errors,
                            const CacheStatsSnapshot& cache,
                            size_t memory_bytes) {
    std::printf("%-10s %-8s %8zu %8zu %6zu %8s %7zu %6zu %5zu %5zu %9s %9s\n",
                label, strategy, queries, found, errors,
                cache.policy.empty() ? "-" : cache.policy.c_str(), cache.hits,
                cache.misses, cache.evictions, cache.delta_builds,
                FormatBytes(cache.resident_bytes).c_str(),
                FormatBytes(memory_bytes).c_str());
  };
  for (const ShardStats& s : last_stats.shards) {
    print_stats_row(s.label.c_str(), s.strategy.c_str(), s.queries_served,
                    s.routes_found, s.route_errors, s.cache, s.memory_bytes);
  }
  print_stats_row("total", "-", last_stats.total_queries,
                  last_stats.total_found, last_stats.total_errors,
                  last_stats.total_cache, last_stats.total_memory_bytes);
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main(int argc, char** argv) {
  int threads_override = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads_override = std::atoi(argv[i] + 10);
    }
  }
  const uint64_t seed =
      itspq::bench::ParseSeedFlag(argc, argv, itspq::bench::kDefaultSeed);
  itspq::bench::Run(threads_override, seed);
  return 0;
}

// Ablation: the three TV_Check strategies against each other and against
// the SNAP baseline (snapshot-at-query-time Dijkstra, no arrival
// projection).
//
// Reports, per query hour: mean time, answer rate, agreement with ITG/S
// (same found flag and length within 1e-6), and — for SNAP — the fraction
// of its answers that violate ITSPQ rule 1 (doors closed by the time the
// walker arrives), which is the paper's motivation in a number.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "query/verifier.h"

namespace itspq {
namespace bench {
namespace {

void Run(uint64_t seed) {
  World world = BuildWorld(kDefaultT, /*floors=*/5, seed);
  const auto queries =
      MakeWorkload(world, kDefaultS2t, kPairsPerSetting, seed + 57);
  const auto itg_s = MakeRouterOrDie(world, "itg-s");
  const auto itg_a = MakeRouterOrDie(world, "itg-a");
  const auto itg_ap = MakeRouterOrDie(world, "itg-a+");
  const auto snap = MakeRouterOrDie(world, "snap");

  std::printf(
      "\n== Ablation: TV_Check strategies (|T|=8, dS2T=1500m, seed %llu) ==\n"
      "%-6s %12s %12s %12s %10s %10s\n",
      static_cast<unsigned long long>(seed), "t", "ITG/S us", "ITG/A us",
      "ITG/A+ us", "A=S?", "A+=S?");

  QueryContext context;
  for (int hour : {6, 8, 10, 12, 14, 16, 18, 20, 22}) {
    const Instant t = Instant::FromHMS(hour);
    const Cell cs = RunCell(*itg_s, queries, t);
    const Cell ca = RunCell(*itg_a, queries, t);
    const Cell cp = RunCell(*itg_ap, queries, t);

    // Agreement with ITG/S, one pass per query.
    int agree_a = 0, agree_p = 0;
    for (const QueryInstance& q : queries) {
      const QueryRequest request{q.ps, q.pt, t, QueryOptions()};
      auto rs = itg_s->Route(request, &context);
      auto ra = itg_a->Route(request, &context);
      auto rp = itg_ap->Route(request, &context);
      if (!rs.ok() || !ra.ok() || !rp.ok()) continue;
      auto agrees = [&](const QueryResult& x) {
        if (x.found != rs->found) return false;
        if (!x.found) return true;
        return std::abs(x.path.length_m() - rs->path.length_m()) < 1e-6;
      };
      if (agrees(*ra)) ++agree_a;
      if (agrees(*rp)) ++agree_p;
    }
    const double n = static_cast<double>(queries.size());
    std::printf("%-6d %9.1f us %9.1f us %9.1f us %9.0f%% %9.0f%%\n", hour,
                cs.mean_micros, ca.mean_micros, cp.mean_micros,
                100.0 * agree_a / n, 100.0 * agree_p / n);
  }

  // SNAP validity: the snapshot baseline is most dangerous right before a
  // closing checkpoint — the route is open *now* but shuts mid-walk.
  int snap_found = 0, snap_invalid = 0;
  for (const QueryInstance& q : queries) {
    for (double cp : snap->checkpoints().times()) {
      auto rsnap = snap->Route(
          QueryRequest{q.ps, q.pt, Instant(cp - 60), QueryOptions()},
          &context);
      if (rsnap.ok() && rsnap->found) {
        ++snap_found;
        if (!VerifyPath(*world.graph, rsnap->path).ok()) ++snap_invalid;
      }
    }
  }
  if (snap_found > 0) {
    std::printf(
        "\nSNAP baseline probed 1 min before each checkpoint: %d/%d answers"
        " (%.0f%%) violate ITSPQ rule 1 (door closed at arrival).\n",
        snap_invalid, snap_found, 100.0 * snap_invalid / snap_found);
  }
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main(int argc, char** argv) {
  itspq::bench::Run(itspq::bench::ParseSeedFlag(argc, argv, 42));
  return 0;
}

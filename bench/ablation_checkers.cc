// Ablation: the three TV_Check strategies against each other and against
// the SNAP baseline (snapshot-at-query-time Dijkstra, no arrival
// projection).
//
// Reports, per query hour: mean time, answer rate, agreement with ITG/S
// (same found flag and length within 1e-6), and — for SNAP — the fraction
// of its answers that violate ITSPQ rule 1 (doors closed by the time the
// walker arrives), which is the paper's motivation in a number.

#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "query/baseline.h"
#include "query/verifier.h"

namespace itspq {
namespace bench {
namespace {

void Run() {
  World world = BuildWorld();
  const auto queries = MakeWorkload(world, kDefaultS2t);
  SnapshotDijkstra snap(*world.graph);

  std::printf(
      "\n== Ablation: TV_Check strategies (|T|=8, dS2T=1500m) ==\n"
      "%-6s %12s %12s %12s %10s %10s\n",
      "t", "ITG/S us", "ITG/A us", "ITG/A+ us", "A=S?", "A+=S?");

  for (int hour : {6, 8, 10, 12, 14, 16, 18, 20, 22}) {
    const Instant t = Instant::FromHMS(hour);
    ItspqOptions syn, asyn, strict;
    asyn.mode = TvMode::kAsynchronous;
    strict.mode = TvMode::kAsynchronousStrict;

    const Cell cs = RunCell(*world.engine, queries, t, syn);
    const Cell ca = RunCell(*world.engine, queries, t, asyn);
    const Cell cp = RunCell(*world.engine, queries, t, strict);

    // Agreement with ITG/S, one pass per query.
    int agree_a = 0, agree_p = 0;
    for (const QueryInstance& q : queries) {
      auto rs = world.engine->Query(q.ps, q.pt, t, syn);
      auto ra = world.engine->Query(q.ps, q.pt, t, asyn);
      auto rp = world.engine->Query(q.ps, q.pt, t, strict);
      if (!rs.ok() || !ra.ok() || !rp.ok()) continue;
      auto agrees = [&](const QueryResult& x) {
        if (x.found != rs->found) return false;
        if (!x.found) return true;
        return std::abs(x.path.length_m() - rs->path.length_m()) < 1e-6;
      };
      if (agrees(*ra)) ++agree_a;
      if (agrees(*rp)) ++agree_p;
    }
    const double n = static_cast<double>(queries.size());
    std::printf("%-6d %9.1f us %9.1f us %9.1f us %9.0f%% %9.0f%%\n", hour,
                cs.mean_micros, ca.mean_micros, cp.mean_micros,
                100.0 * agree_a / n, 100.0 * agree_p / n);
  }

  // SNAP validity: the snapshot baseline is most dangerous right before a
  // closing checkpoint — the route is open *now* but shuts mid-walk.
  int snap_found = 0, snap_invalid = 0;
  for (const QueryInstance& q : queries) {
    for (double cp : world.engine->checkpoints().times()) {
      auto rsnap = snap.Query(q.ps, q.pt, Instant(cp - 60));
      if (rsnap.ok() && rsnap->found) {
        ++snap_found;
        if (!VerifyPath(*world.graph, rsnap->path).ok()) ++snap_invalid;
      }
    }
  }
  if (snap_found > 0) {
    std::printf(
        "\nSNAP baseline probed 1 min before each checkpoint: %d/%d answers"
        " (%.0f%%) violate ITSPQ rule 1 (door closed at arrival).\n",
        snap_invalid, snap_found, 100.0 * snap_invalid / snap_found);
  }
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main() {
  itspq::bench::Run();
  return 0;
}

#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace itspq {
namespace bench {

namespace {

// Aborts the bench on setup failure: these binaries are experiment
// drivers, not library code.
[[noreturn]] void Die(const Status& status) {
  std::fprintf(stderr, "bench setup failed: %s\n",
               status.ToString().c_str());
  std::exit(1);
}

}  // namespace

World BuildWorld(int checkpoint_count, int floors, uint64_t seed) {
  MallConfig mc = MallConfig::Paper();
  mc.floors = floors;
  mc.seed = seed;
  auto mall = GenerateMall(mc);
  if (!mall.ok()) Die(mall.status());

  AtiGenConfig ac;
  ac.checkpoint_count = checkpoint_count;
  ac.seed = seed + 1;
  World world;
  auto varied = AssignTemporalVariations(*mall, ac, &world.checkpoints);
  if (!varied.ok()) Die(varied.status());

  world.venue = std::make_unique<Venue>(std::move(*varied));
  auto graph = ItGraph::Build(*world.venue);
  if (!graph.ok()) Die(graph.status());
  world.graph = std::make_unique<ItGraph>(std::move(*graph));
  return world;
}

std::unique_ptr<Router> MakeRouterOrDie(const World& world,
                                        const std::string& name,
                                        const RouterBuildOptions& options) {
  auto router = MakeRouter(name, *world.graph, options);
  if (!router.ok()) Die(router.status());
  return std::move(*router);
}

std::vector<QueryInstance> MakeWorkload(const World& world, double s2t,
                                        int pairs, uint64_t seed) {
  QueryGenConfig qc;
  qc.s2t_distance = s2t;
  qc.tolerance = s2t * 0.1;
  qc.num_pairs = pairs;
  qc.seed = seed;
  auto queries = GenerateQueries(*world.graph, qc);
  if (!queries.ok()) Die(queries.status());
  return std::move(*queries);
}

Cell RunCell(const Router& router, const std::vector<QueryInstance>& queries,
             Instant t, const QueryOptions& options, int runs) {
  Cell cell;
  size_t samples = 0;
  size_t found = 0;
  QueryContext context;
  for (const QueryInstance& q : queries) {
    for (int r = 0; r < runs; ++r) {
      auto res = router.Route(QueryRequest{q.ps, q.pt, t, options}, &context);
      if (!res.ok()) Die(res.status());
      ++samples;
      if (res->found) ++found;
      cell.mean_micros += res->stats.search_micros;
      cell.mean_memory_kb +=
          static_cast<double>(res->stats.peak_memory_bytes) / 1024.0;
      cell.mean_doors_popped +=
          static_cast<double>(res->stats.doors_popped);
      cell.mean_graph_updates +=
          static_cast<double>(res->stats.graph_updates);
    }
  }
  if (samples > 0) {
    const double n = static_cast<double>(samples);
    cell.mean_micros /= n;
    cell.mean_memory_kb /= n;
    cell.mean_doors_popped /= n;
    cell.mean_graph_updates /= n;
    cell.found_fraction = static_cast<double>(found) / n;
  }
  return cell;
}

VenueCatalog BuildServingCatalog(int num_venues, int max_floors,
                                 uint64_t seed) {
  FleetConfig fleet_config;
  fleet_config.num_venues = num_venues;
  fleet_config.seed = seed;
  fleet_config.min_floors = 1;
  fleet_config.max_floors = max_floors;
  auto fleet = GenerateVenueFleet(fleet_config);
  if (!fleet.ok()) Die(fleet.status());
  VenueCatalog catalog;
  for (Venue& venue : *fleet) {
    // ITG/A+ answers like ITG/S but reads reduced graphs through the
    // shard's shared SnapshotStore, so the stats reports show real
    // per-shard Graph_Update counts.
    auto id = catalog.AddVenue(std::move(venue), "itg-a+");
    if (!id.ok()) Die(id.status());
  }
  return catalog;
}

uint64_t ParseSeedFlag(int argc, char** argv, uint64_t fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(argv[i] + 7, &end, 10);
      if (end != argv[i] + 7 && *end == '\0') {
        return static_cast<uint64_t>(parsed);
      }
      std::fprintf(stderr, "ignoring malformed %s (want --seed=N)\n",
                   argv[i]);
    }
  }
  return fallback;
}

void PrintHeader(const std::string& title, const std::string& x_label,
                 const std::vector<std::string>& series) {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-12s", x_label.c_str());
  for (const std::string& s : series) {
    std::printf(" %14s", s.c_str());
  }
  std::printf("\n");
}

void PrintRow(const std::string& x_value, const std::vector<double>& values,
              const char* unit) {
  std::printf("%-12s", x_value.c_str());
  for (double v : values) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, unit);
    std::printf(" %14s", buf);
  }
  std::printf("\n");
}

}  // namespace bench
}  // namespace itspq

// Micro-benchmarks (google-benchmark) for the hot primitives underneath
// the ITSPQ search: ATI membership, checkpoint lookup, reduced-graph
// derivation, point location, DM lookup, frontier disciplines, masked
// neighbour scans, and end-to-end queries.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "itgraph/csr_adjacency.h"
#include "itgraph/frontier_queue.h"
#include "itgraph/graph_update.h"

namespace itspq {
namespace bench {
namespace {

const World& SharedWorld() {
  static World* world = new World(BuildWorld(kDefaultT, /*floors=*/2));
  return *world;
}

void BM_AtiContains(benchmark::State& state) {
  const AtiSet atis = *AtiSet::Create(
      {MakeInterval(8, 0, 12, 0), MakeInterval(13, 0, 18, 0),
       MakeInterval(19, 0, 23, 0)});
  double tod = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(atis.ContainsTimeOfDay(tod));
    tod += 977.0;
    if (tod >= kSecondsPerDay) tod -= kSecondsPerDay;
  }
}
BENCHMARK(BM_AtiContains);

void BM_CheckpointLookup(benchmark::State& state) {
  std::vector<double> times;
  for (int i = 1; i <= state.range(0); ++i) {
    times.push_back(i * kSecondsPerDay / (state.range(0) + 1));
  }
  const CheckpointSet cps = *CheckpointSet::FromTimes(times);
  double tod = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cps.NextCheckpoint(tod));
    tod += 977.0;
    if (tod >= kSecondsPerDay) tod -= kSecondsPerDay;
  }
}
BENCHMARK(BM_CheckpointLookup)->Arg(4)->Arg(16);

void BM_GraphUpdate(benchmark::State& state) {
  const World& world = SharedWorld();
  const CheckpointSet cps = CheckpointSet::FromGraph(*world.graph);
  int idx = 0;
  for (auto _ : state) {
    GraphSnapshot snap = BuildSnapshot(*world.graph, cps, idx);
    benchmark::DoNotOptimize(snap.open_door_count);
    idx = (idx + 1) % static_cast<int>(cps.NumIntervals());
  }
}
BENCHMARK(BM_GraphUpdate);

void BM_GraphUpdateDelta(benchmark::State& state) {
  const World& world = SharedWorld();
  const CheckpointSet cps = CheckpointSet::FromGraph(*world.graph);
  const BoundaryFlipIndex flips = BoundaryFlipIndex::Build(*world.graph, cps);
  std::vector<GraphSnapshot> snaps;
  for (size_t i = 0; i < cps.NumIntervals(); ++i) {
    snaps.push_back(BuildSnapshot(*world.graph, cps, i));
  }
  size_t i = 0;
  for (auto _ : state) {
    GraphSnapshot snap =
        BuildSnapshotDelta(*world.graph, cps, flips, snaps[i], i + 1);
    benchmark::DoNotOptimize(snap.open_door_count);
    i = (i + 1) % (cps.NumIntervals() - 1);
  }
}
BENCHMARK(BM_GraphUpdateDelta);

void BM_PointLocation(benchmark::State& state) {
  const World& world = SharedWorld();
  Rng rng(5);
  std::vector<IndoorPoint> probes;
  for (int i = 0; i < 256; ++i) {
    probes.push_back(IndoorPoint{{rng.UniformDouble(0, 1368),
                                  rng.UniformDouble(0, 1368)},
                                 0});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.venue->LocateAll(probes[i & 255]));
    ++i;
  }
}
BENCHMARK(BM_PointLocation);

void BM_DistanceMatrixLookup(benchmark::State& state) {
  const World& world = SharedWorld();
  // The largest-degree partition gives a representative DM.
  PartitionId big = 0;
  for (size_t v = 0; v < world.venue->NumPartitions(); ++v) {
    if (world.venue->DoorsOf(static_cast<PartitionId>(v)).size() >
        world.venue->DoorsOf(big).size()) {
      big = static_cast<PartitionId>(v);
    }
  }
  const auto& doors = world.venue->DoorsOf(big);
  const DistanceMatrix& dm = world.venue->distance_matrix(big);
  size_t i = 0;
  for (auto _ : state) {
    const DoorId a = doors[i % doors.size()];
    const DoorId b = doors[(i * 7 + 3) % doors.size()];
    benchmark::DoNotOptimize(dm.DistanceUnchecked(a, b));
    ++i;
  }
}
BENCHMARK(BM_DistanceMatrixLookup);

void BM_FrontierQueue(benchmark::State& state) {
  // A synthetic Dijkstra-shaped workload: pushes drift upward from the
  // running pop frontier (as relaxations do), ~2 pushes per pop until
  // the tail drains. Arg selects the discipline.
  const FrontierQueue::Kind kind =
      static_cast<FrontierQueue::Kind>(state.range(0));
  constexpr size_t kOps = 4096;
  Rng rng(17);
  std::vector<double> jitter(kOps);
  for (double& j : jitter) j = rng.UniformDouble(1.0, 32.0);
  FrontierQueue q;
  for (auto _ : state) {
    if (kind == FrontierQueue::Kind::kBucketQueue) {
      q.ResetBuckets(1.0);
    } else {
      q.ResetHeap(kind);
    }
    q.Push(0.0, 0);
    double frontier = 0.0;
    uint32_t id;
    size_t pushed = 1;
    while (q.Pop(&frontier, &id)) {
      for (int c = 0; c < 2 && pushed < kOps; ++c, ++pushed) {
        q.Push(frontier + jitter[pushed], static_cast<uint32_t>(pushed));
      }
    }
    benchmark::DoNotOptimize(frontier);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kOps));
}
BENCHMARK(BM_FrontierQueue)->Arg(0)->Arg(1)->Arg(2);

void BM_MaskedNeighborScan(benchmark::State& state) {
  // The CSR relaxation's masked scan over every door's neighbour
  // segments. Arg 0: per-neighbour DoorMask::Test. Arg 1: the word-wise
  // ForEachSetAmong helper the search core uses.
  const World& world = SharedWorld();
  const CsrAdjacency& adj = world.graph->adjacency();
  const CheckpointSet cps = CheckpointSet::FromGraph(*world.graph);
  const GraphSnapshot snap =
      BuildSnapshot(*world.graph, cps, cps.NumIntervals() / 2);
  const DoorMask& open = snap.open;
  const bool word_wise = state.range(0) == 1;
  for (auto _ : state) {
    double acc = 0;
    for (size_t d = 0; d < adj.num_doors; ++d) {
      const uint32_t begin = adj.seg_offsets[2 * d];
      const uint32_t end = adj.seg_offsets[2 * d + 2];
      if (word_wise) {
        open.ForEachSetAmong(
            adj.neighbor_ids.data() + begin, end - begin,
            [&](size_t k) { acc += adj.neighbor_weights[begin + k]; });
      } else {
        for (uint32_t k = begin; k < end; ++k) {
          if (open.Test(static_cast<DoorId>(adj.neighbor_ids[k]))) {
            acc += adj.neighbor_weights[k];
          }
        }
      }
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_MaskedNeighborScan)->Arg(0)->Arg(1);

void BM_QueryEndToEnd(benchmark::State& state) {
  const World& world = SharedWorld();
  static std::vector<QueryInstance>* queries = new std::vector<QueryInstance>(
      MakeWorkload(world, 900, /*pairs=*/3));
  const Router& router = [&]() -> const Router& {
    static std::unique_ptr<Router> itg_s =
        MakeRouterOrDie(SharedWorld(), "itg-s");
    static std::unique_ptr<Router> itg_a =
        MakeRouterOrDie(SharedWorld(), "itg-a");
    return state.range(0) == 1 ? *itg_a : *itg_s;
  }();
  // Arg 2: itg-s in exact mode (Alg. 1's partition pruning off), the
  // goal-directed A* path — the pruned default keeps plain Dijkstra
  // order to reproduce the paper's answers.
  QueryOptions options;
  if (state.range(0) == 2) options.partition_visited_pruning = false;
  QueryContext context;
  size_t i = 0;
  for (auto _ : state) {
    const QueryInstance& q = (*queries)[i % queries->size()];
    auto r = router.Route(
        QueryRequest{q.ps, q.pt, Instant::FromHMS(12), options}, &context);
    benchmark::DoNotOptimize(r);
    ++i;
  }
}
BENCHMARK(BM_QueryEndToEnd)->Arg(0)->Arg(1)->Arg(2);

void BM_RouteBatch(benchmark::State& state) {
  const World& world = SharedWorld();
  static std::unique_ptr<Router> router = MakeRouterOrDie(world, "itg-s");
  static std::vector<QueryRequest>* requests = [] {
    auto* reqs = new std::vector<QueryRequest>();
    for (const QueryInstance& q : MakeWorkload(SharedWorld(), 900,
                                               /*pairs=*/4)) {
      for (int hour : {10, 12, 14, 16}) {
        reqs->push_back(QueryRequest{q.ps, q.pt, Instant::FromHMS(hour),
                                     QueryOptions()});
      }
    }
    return reqs;
  }();
  BatchOptions opts;
  opts.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto results = router->RouteBatch(*requests, opts);
    benchmark::DoNotOptimize(results.size());
  }
}
BENCHMARK(BM_RouteBatch)->Arg(1)->Arg(4);

}  // namespace
}  // namespace bench
}  // namespace itspq

BENCHMARK_MAIN();

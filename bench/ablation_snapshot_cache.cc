// Ablation: Alg. 3 as published (rebuild the reduced graph from G0 at
// every update) vs the router's shared per-interval snapshot cache
// extension.
//
// The workload alternates query times across checkpoint intervals so the
// time-dependent graph must switch on every query — the worst case for
// rebuild-from-G0 and the best case for the cache.

#include <cstdio>

#include "bench/bench_common.h"

namespace itspq {
namespace bench {
namespace {

void Run() {
  std::printf(
      "\n== Ablation: Graph_Update rebuild vs snapshot cache ==\n"
      "%-8s %16s %16s %16s\n",
      "|T|", "rebuild us", "cached us", "updates/query");
  for (int t_size : {4, 8, 12, 16}) {
    World world = BuildWorld(t_size);
    const auto queries = MakeWorkload(world, kDefaultS2t);
    const auto itg_a = MakeRouterOrDie(world, "itg-a");
    // Alternate hours across the day to force interval switches.
    const std::vector<int> hours = {6, 12, 8, 18, 10, 20, 12, 22};

    auto sweep = [&](bool use_cache) {
      QueryOptions opts;
      opts.use_snapshot_cache = use_cache;
      QueryContext context;
      double total_us = 0, total_updates = 0;
      size_t n = 0;
      for (int rep = 0; rep < 3; ++rep) {
        for (int hour : hours) {
          for (const QueryInstance& q : queries) {
            auto r = itg_a->Route(
                QueryRequest{q.ps, q.pt, Instant::FromHMS(hour), opts},
                &context);
            if (!r.ok()) continue;
            total_us += r->stats.search_micros;
            total_updates += static_cast<double>(r->stats.graph_updates);
            ++n;
          }
        }
      }
      return std::pair<double, double>(total_us / n, total_updates / n);
    };

    const auto [rebuild_us, rebuild_upd] = sweep(false);
    const auto [cached_us, cached_upd] = sweep(true);
    std::printf("%-8d %13.1f us %13.1f us %16.2f\n", t_size, rebuild_us,
                cached_us, rebuild_upd);
    (void)cached_upd;
  }
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main() {
  itspq::bench::Run();
  return 0;
}

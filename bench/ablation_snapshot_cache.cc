// Ablation over the SnapshotStore: Alg. 3 as published (rebuild the
// reduced graph from G0 at every update) vs the budgeted,
// policy-pluggable per-interval store, swept over eviction policy x
// byte budget x delta-vs-full miss fills.
//
// The workload alternates query times across checkpoint intervals so
// the time-dependent graph must switch on every query — the worst case
// for rebuild-from-G0, and under a tight budget the worst case for
// eviction too (every interval keeps coming back).
//
// `--smoke` shrinks the venue to one floor and one |T| setting so CI
// can exercise the eviction paths of every policy on each push;
// `--seed=N` threads through venue and workload generation so a
// printed seed reproduces the exact run.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/memory_tracker.h"
#include "common/stats.h"
#include "itgraph/graph_update.h"
#include "itgraph/snapshot_store.h"

namespace itspq {
namespace bench {
namespace {

// Alternate hours across the day to force interval switches.
const std::vector<int> kHours = {6, 12, 8, 18, 10, 20, 12, 22};

// --- Part 1: the builders head to head. Mean cost of deriving one
// reduced graph from G0 vs from the adjacent interval's snapshot (the
// acceptance check: delta strictly cheaper on the fig-sized venue).
void BuildCostComparison(const World& world, int reps) {
  const CheckpointSet cps = CheckpointSet::FromGraph(*world.graph);
  const BoundaryFlipIndex flips = BoundaryFlipIndex::Build(*world.graph, cps);
  const size_t intervals = cps.NumIntervals();

  double full_us = 0, delta_us = 0;
  size_t builds = 0, touches = 0;
  std::vector<GraphSnapshot> snaps(intervals);
  for (size_t i = 0; i < intervals; ++i) {
    snaps[i] = BuildSnapshot(*world.graph, cps, i);
  }
  for (int rep = 0; rep < reps; ++rep) {
    for (size_t i = 0; i + 1 < intervals; ++i) {
      Timer full_timer;
      GraphSnapshot full = BuildSnapshot(*world.graph, cps, i + 1);
      full_us += full_timer.ElapsedMicros();

      size_t touched = 0;
      Timer delta_timer;
      GraphSnapshot delta = BuildSnapshotDelta(*world.graph, cps, flips,
                                               snaps[i], i + 1, &touched);
      delta_us += delta_timer.ElapsedMicros();
      touches += touched;
      ++builds;
      if (delta.open_door_count != full.open_door_count) {
        std::fprintf(stderr, "delta/full divergence at interval %zu\n", i + 1);
        std::exit(1);
      }
    }
  }
  std::printf(
      "\n== Graph_Update builders: from G0 vs delta from neighbour ==\n"
      "doors %zu, intervals %zu, flip entries %zu (%.1f doors/boundary)\n"
      "%-12s %12s %16s\n",
      world.graph->NumDoors(), intervals, flips.TotalFlips(),
      static_cast<double>(flips.TotalFlips()) /
          static_cast<double>(cps.NumCheckpoints() ? cps.NumCheckpoints() : 1),
      "builder", "us/build", "doors touched");
  std::printf("%-12s %12.2f %16zu\n", "full (G0)",
              full_us / static_cast<double>(builds), world.graph->NumDoors());
  std::printf("%-12s %12.2f %16zu\n", "delta",
              delta_us / static_cast<double>(builds), touches / builds);
  std::printf("delta/full cost ratio: %.3f (%s)\n", delta_us / full_us,
              delta_us < full_us ? "delta strictly cheaper" : "NOT cheaper");
}

// --- Part 2: the serving path. ITG/A+ reading reduced graphs through a
// SnapshotStore, swept over policy x budget x delta, against the
// rebuild-from-G0 baseline.
struct SweepRow {
  std::string label;
  double mean_us = 0;
  CacheStatsSnapshot cache;
};

SweepRow RunStore(const World& world,
                  const std::vector<QueryInstance>& queries, int reps,
                  bool use_cache, const std::string& policy,
                  size_t budget_bytes, bool delta) {
  RouterBuildOptions options;
  options.snapshot_cache.policy = policy;
  options.snapshot_cache.budget_bytes = budget_bytes;
  options.snapshot_cache.delta_builds = delta;
  const auto router = MakeRouterOrDie(world, "itg-a+", options);

  QueryOptions query_options;
  query_options.use_snapshot_cache = use_cache;
  QueryContext context;
  double total_us = 0;
  size_t n = 0;
  for (int rep = 0; rep < reps; ++rep) {
    for (int hour : kHours) {
      for (const QueryInstance& q : queries) {
        auto r = router->Route(
            QueryRequest{q.ps, q.pt, Instant::FromHMS(hour), query_options},
            &context);
        if (!r.ok()) continue;
        total_us += r->stats.search_micros;
        ++n;
      }
    }
  }
  SweepRow row;
  row.mean_us = total_us / static_cast<double>(n);
  row.cache = router->CacheStats();
  return row;
}

void PolicySweep(const World& world, int t_size, int reps,
                 const std::vector<std::string>& policies, uint64_t seed) {
  const auto queries =
      MakeWorkload(world, kDefaultS2t, kPairsPerSetting, seed + 1);

  // Budgets in units of one resident snapshot, so the sweep scales with
  // the venue instead of hard-coding byte counts.
  const CheckpointSet cps = CheckpointSet::FromGraph(*world.graph);
  const GraphSnapshot one = BuildSnapshot(*world.graph, cps, 0);
  const size_t snap_bytes = sizeof(GraphSnapshot) + one.MemoryUsage();
  const size_t intervals = cps.NumIntervals();

  std::printf(
      "\n== |T| = %d: policy x budget x delta sweep (ITG/A+, %zu intervals, "
      "%s/snapshot) ==\n"
      "%-10s %-10s %-6s %10s %7s %7s %7s %6s %6s %8s %10s\n",
      t_size, intervals, FormatBytes(snap_bytes).c_str(), "policy", "budget",
      "delta", "us/query", "hits", "misses", "evict", "full", "delta",
      "touches", "resident");

  const SweepRow rebuild =
      RunStore(world, queries, reps, /*use_cache=*/false, "keep-all", 0, true);
  std::printf("%-10s %-10s %-6s %10.1f %7s %7s %7s %6s %6s %8s %10s\n",
              "(no store)", "-", "-", rebuild.mean_us, "-", "-", "-", "-", "-",
              "-", "-");

  struct BudgetSetting {
    const char* label;
    size_t snapshots;  // 0 = unlimited
  };
  const BudgetSetting budgets[] = {
      {"unlimited", 0},
      {"half", (intervals + 1) / 2},
      {"2 snaps", 2},
  };
  for (const std::string& policy : policies) {
    for (const BudgetSetting& budget : budgets) {
      // keep-all ignores budgets by design; show it once, unlimited.
      if (policy == "keep-all" && budget.snapshots != 0) continue;
      for (bool delta : {true, false}) {
        const SweepRow row =
            RunStore(world, queries, reps, /*use_cache=*/true, policy,
                     budget.snapshots * snap_bytes, delta);
        std::printf(
            "%-10s %-10s %-6s %10.1f %7zu %7zu %7zu %6zu %6zu %8zu %10s\n",
            policy.c_str(), budget.label, delta ? "on" : "off", row.mean_us,
            row.cache.hits, row.cache.misses, row.cache.evictions,
            row.cache.full_builds, row.cache.delta_builds,
            row.cache.delta_door_touches,
            FormatBytes(row.cache.resident_bytes).c_str());
      }
    }
  }
}

void Run(bool smoke, uint64_t seed) {
  std::printf("seed: %llu (rerun with --seed=%llu)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));
  const std::vector<std::string> policies = {"keep-all", "lru", "clock"};
  if (smoke) {
    // Tiny venue, every policy, budgets tight enough that lru/clock
    // evict constantly — the CI check that eviction paths stay healthy.
    World world = BuildWorld(/*checkpoint_count=*/6, /*floors=*/1, seed);
    BuildCostComparison(world, /*reps=*/3);
    PolicySweep(world, 6, /*reps=*/1, policies, seed);
    return;
  }
  {
    // The fig-sized venue (paper's 5-floor mall) for the builder
    // acceptance comparison.
    World world = BuildWorld(kDefaultT, /*floors=*/5, seed);
    BuildCostComparison(world, /*reps=*/10);
  }
  for (int t_size : {4, 8, 16}) {
    World world = BuildWorld(t_size, /*floors=*/5, seed);
    PolicySweep(world, t_size, /*reps=*/3, policies, seed);
  }
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const uint64_t seed = itspq::bench::ParseSeedFlag(argc, argv, 42);
  itspq::bench::Run(smoke, seed);
  return 0;
}

// Serving-frontend throughput and latency: an open-loop Poisson request
// stream (GenerateOpenLoopArrivals) submitted to a QueryService at a
// sweep of offered loads. Open loop means the driver submits on the
// arrival schedule no matter how far behind the service is — overload
// shows up as queue-full rejections and deadline timeouts, exactly the
// admission behaviour the frontend exists to provide, instead of the
// driver silently slowing down.
//
// Columns per load point: offered q/s, submitted/served/rejected/timed
// out, achieved kq/s, and p50/p99 submit-to-delivery latency from the
// service's fixed-bucket histogram. Ends with the ServiceStats detail
// of the heaviest point (queue high-water, batch-size histogram,
// catalog cache totals).
//
// Latency numbers are scheduling-sensitive: on a 1-core host the
// submitter and the workers time-share, so p99 reflects contention, not
// service capacity — same caveat as bench_sharded's scaling rows; rerun
// on multi-core hardware for real numbers. `--smoke` shrinks the run to
// a CI-sized single point and exits non-zero if the serving invariants
// break; `--seed=N` reproduces a run exactly.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "common/memory_tracker.h"
#include "common/stats.h"
#include "gen/workload_gen.h"
#include "server/query_service.h"

namespace itspq {
namespace bench {
namespace {

[[noreturn]] void DieStatus(const char* what, const Status& status) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

struct RunShape {
  int num_venues = 3;
  int max_floors = 2;
  int num_requests = 2048;
  ServiceOptions service;
};

struct LoadResult {
  double offered_qps = 0;
  double achieved_kqps = 0;
  ServiceStats stats;
};

// One load point end to end: fresh catalog + service (the service owns
// its catalog, so points can't share one), paced submission, full
// drain, final stats.
LoadResult RunLoadPoint(const RunShape& shape, double offered_qps,
                        uint64_t seed) {
  VenueCatalog catalog =
      BuildServingCatalog(shape.num_venues, shape.max_floors, seed);

  MultiVenueWorkloadConfig workload_config;
  workload_config.num_requests = shape.num_requests;
  workload_config.seed = seed + 1;
  workload_config.options.use_snapshot_cache = true;  // serving shape
  auto workload = GenerateMultiVenueWorkload(catalog, workload_config);
  if (!workload.ok()) DieStatus("workload generation failed", workload.status());

  ArrivalScheduleConfig arrival_config;
  arrival_config.offered_qps = offered_qps;
  arrival_config.seed = seed + 2;
  auto arrivals = GenerateOpenLoopArrivals(shape.num_requests, arrival_config);
  if (!arrivals.ok()) DieStatus("arrival generation failed", arrivals.status());

  auto service = MakeQueryService(std::move(catalog), shape.service);
  if (!service.ok()) DieStatus("MakeQueryService failed", service.status());

  // Warm the shard snapshot caches so the measured latencies are the
  // steady serving state, not first-touch Graph_Update builds.
  {
    std::vector<std::future<StatusOr<QueryResult>>> warmers;
    for (int i = 0; i < std::min(shape.num_requests, 32); ++i) {
      warmers.push_back((*service)->Submit((*workload)[static_cast<size_t>(i)]));
    }
    for (auto& f : warmers) (void)f.get();
  }
  const size_t warm_served = (*service)->Stats().served;

  using SteadyClock = std::chrono::steady_clock;
  std::vector<std::future<StatusOr<QueryResult>>> futures;
  futures.reserve(static_cast<size_t>(shape.num_requests));
  const SteadyClock::time_point start = SteadyClock::now();
  for (int i = 0; i < shape.num_requests; ++i) {
    std::this_thread::sleep_until(
        start + std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double>((*arrivals)[static_cast<size_t>(i)])));
    futures.push_back((*service)->Submit((*workload)[static_cast<size_t>(i)]));
  }
  for (auto& f : futures) (void)f.get();
  const double seconds =
      std::chrono::duration<double>(SteadyClock::now() - start).count();

  (*service)->Shutdown();
  LoadResult result;
  result.offered_qps = offered_qps;
  result.stats = (*service)->Stats();
  result.achieved_kqps =
      static_cast<double>(result.stats.served - warm_served) / seconds / 1e3;
  return result;
}

void PrintServiceDetail(const ServiceStats& stats) {
  std::printf("\n== service detail (heaviest load point) ==\n");
  std::printf("queue high-water: %zu   batches: %zu\n",
              stats.queue_high_water, stats.batches);
  std::printf("batch-size histogram:");
  size_t coalesced = 0;
  for (size_t b = 1; b < stats.batch_size_counts.size(); ++b) {
    if (stats.batch_size_counts[b] == 0) continue;
    std::printf("  %zux%zu", b, stats.batch_size_counts[b]);
    coalesced += b * stats.batch_size_counts[b];
  }
  std::printf("  (%zu dispatched)\n", coalesced);
  std::printf("latency p50 %.0f us, p99 %.0f us over %zu served\n",
              stats.latency.P50(), stats.latency.P99(), stats.latency.total);
  std::printf("catalog: %zu queries, %zu cache hits / %zu misses / "
              "%zu evictions, %s resident masks\n",
              stats.catalog.total_queries, stats.catalog.total_cache.hits,
              stats.catalog.total_cache.misses,
              stats.catalog.total_cache.evictions,
              FormatBytes(stats.catalog.total_cache.resident_bytes).c_str());
}

// The quiesced-accounting invariant from ServiceStats' contract; the CI
// smoke run turns any violation into a red build.
bool CheckInvariants(const ServiceStats& stats) {
  bool ok = true;
  const size_t accounted = stats.rejected_queue_full + stats.rejected_expired +
                           stats.rejected_invalid + stats.rejected_shutdown +
                           stats.shed_displaced + stats.shed_infeasible +
                           stats.timed_out_in_queue +
                           stats.timed_out_in_flight + stats.served;
  if (accounted != stats.submitted) {
    std::fprintf(stderr,
                 "invariant violated: %zu submitted but %zu accounted\n",
                 stats.submitted, accounted);
    ok = false;
  }
  if (stats.served == 0) {
    std::fprintf(stderr, "invariant violated: nothing was served\n");
    ok = false;
  }
  if (stats.latency.total != stats.served) {
    std::fprintf(stderr,
                 "invariant violated: %zu latency samples for %zu served\n",
                 stats.latency.total, stats.served);
    ok = false;
  }
  if (stats.queue_depth != 0) {
    std::fprintf(stderr, "invariant violated: %zu requests still queued\n",
                 stats.queue_depth);
    ok = false;
  }
  return ok;
}

int Run(bool smoke, uint64_t seed) {
  RunShape shape;
  shape.service.num_workers = smoke ? 2 : 4;
  shape.service.queue_capacity = smoke ? 64 : 512;
  shape.service.max_batch = 16;
  shape.service.max_wait_micros = 200;
  shape.service.default_deadline_micros = 50'000;  // 50 ms SLO
  std::vector<double> loads = {500, 2000, 8000, 32000};
  if (smoke) {
    shape.num_venues = 2;
    shape.max_floors = 1;
    shape.num_requests = 96;
    loads = {50000};
  }

  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());
  std::printf("seed: %llu (rerun with --seed=%llu)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));
  // Stats columns are service-lifetime, so they include the cache
  // warm-up submissions; the achieved column measures the paced phase
  // only.
  std::printf("\n== bench_service: open-loop Zipf traffic, %d requests "
              "(+%d warm-up), %d workers, 50 ms deadline ==\n",
              shape.num_requests, std::min(shape.num_requests, 32),
              shape.service.num_workers);
  std::printf("%-10s %9s %8s %9s %7s %9s %9s %9s %11s\n", "offered",
              "submitted", "served", "rej-full", "shed", "timeout", "p50",
              "p99", "achieved");

  bool ok = true;
  ServiceStats last;
  for (double qps : loads) {
    const LoadResult r = RunLoadPoint(shape, qps, seed);
    const ServiceStats& s = r.stats;
    std::printf(
        "%-7.0f1/s %9zu %8zu %9zu %7zu %9zu %7.0fus %7.0fus %8.1fkq/s\n",
        r.offered_qps, s.submitted, s.served, s.rejected_queue_full,
        s.shed_displaced + s.shed_infeasible,
        s.timed_out_in_queue + s.timed_out_in_flight, s.latency.P50(),
        s.latency.P99(), r.achieved_kqps);
    ok = CheckInvariants(s) && ok;
    last = s;
  }
  PrintServiceDetail(last);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace itspq

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const uint64_t seed = itspq::bench::ParseSeedFlag(argc, argv, 2020);
  return itspq::bench::Run(smoke, seed);
}

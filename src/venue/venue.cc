#include "venue/venue.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

namespace itspq {

namespace {

// Location-grid cell edge in metres. Partitions in the synthetic malls
// are tens to hundreds of metres; 64 m keeps cell lists short without
// bloating small venues.
constexpr double kLocateCellMetres = 64.0;

}  // namespace

PartitionId Venue::Builder::AddPartition(const Rect& rect, int floor) {
  carried_.reset();
  partitions_.push_back(Partition{rect, floor});
  return static_cast<PartitionId>(partitions_.size() - 1);
}

DoorId Venue::Builder::AddDoor(const Point2d& pos, int floor, PartitionId a,
                               PartitionId b) {
  carried_.reset();
  Door door;
  door.pos = pos;
  door.floor = floor;
  door.partitions = {a, b};
  doors_.push_back(std::move(door));
  return static_cast<DoorId>(doors_.size() - 1);
}

Status Venue::Builder::SetDoorAti(DoorId d,
                                  std::vector<TimeInterval> intervals) {
  if (d < 0 || static_cast<size_t>(d) >= doors_.size()) {
    return InvalidArgumentError("SetDoorAti: unknown door " +
                                std::to_string(d));
  }
  doors_[static_cast<size_t>(d)].ati_intervals = std::move(intervals);
  return Status::Ok();
}

Venue::Builder Venue::Builder::FromVenue(const Venue& venue) {
  Builder builder;
  builder.partitions_ = venue.partitions_;
  builder.doors_ = venue.doors_;
  CarriedGeometry carried;
  carried.doors_of = venue.doors_of_;
  carried.distance_matrices = venue.distance_matrices_;
  carried.min_floor = venue.min_floor_;
  carried.floor_index = venue.floor_index_;
  builder.carried_ = std::move(carried);
  return builder;
}

StatusOr<Venue> Venue::Builder::Build() && {
  const auto num_partitions = static_cast<PartitionId>(partitions_.size());
  for (size_t i = 0; i < partitions_.size(); ++i) {
    const Rect& r = partitions_[i].rect;
    if (r.width() <= 0 || r.height() <= 0) {
      return InvalidArgumentError("partition " + std::to_string(i) +
                                  " has a degenerate rectangle");
    }
  }
  for (size_t i = 0; i < doors_.size(); ++i) {
    const Door& d = doors_[i];
    for (PartitionId p : d.partitions) {
      if (p < 0 || p >= num_partitions) {
        return InvalidArgumentError("door " + std::to_string(i) +
                                    " references unknown partition " +
                                    std::to_string(p));
      }
    }
    if (d.partitions[0] == d.partitions[1]) {
      return InvalidArgumentError("door " + std::to_string(i) +
                                  " connects a partition to itself");
    }
  }

  Venue venue;
  venue.partitions_ = std::move(partitions_);
  venue.doors_ = std::move(doors_);

  // Geometry untouched since FromVenue: every derived structure (door
  // lists, distance matrices, point-location grid) is a pure function
  // of partitions + door positions, so adopt the carried-over copies
  // instead of recomputing.
  if (carried_.has_value()) {
    venue.doors_of_ = std::move(carried_->doors_of);
    venue.distance_matrices_ = std::move(carried_->distance_matrices);
    venue.min_floor_ = carried_->min_floor;
    venue.floor_index_ = std::move(carried_->floor_index);
    return venue;
  }

  venue.doors_of_.resize(venue.partitions_.size());
  for (size_t d = 0; d < venue.doors_.size(); ++d) {
    for (PartitionId p : venue.doors_[d].partitions) {
      venue.doors_of_[static_cast<size_t>(p)].push_back(
          static_cast<DoorId>(d));
    }
  }

  venue.distance_matrices_.reserve(venue.partitions_.size());
  std::vector<Point2d> positions;
  for (size_t p = 0; p < venue.partitions_.size(); ++p) {
    const std::vector<DoorId>& doors = venue.doors_of_[p];
    positions.clear();
    for (DoorId d : doors) positions.push_back(venue.doors_[d].pos);
    venue.distance_matrices_.emplace_back(doors, positions);
  }

  venue.BuildLocationIndex();
  return venue;
}

void Venue::BuildLocationIndex() {
  if (partitions_.empty()) return;
  int min_floor = partitions_[0].floor;
  int max_floor = partitions_[0].floor;
  for (const Partition& p : partitions_) {
    min_floor = std::min(min_floor, p.floor);
    max_floor = std::max(max_floor, p.floor);
  }
  min_floor_ = min_floor;
  floor_index_.assign(static_cast<size_t>(max_floor - min_floor) + 1, {});

  // Per-floor bounding box.
  for (size_t f = 0; f < floor_index_.size(); ++f) {
    const int floor = min_floor_ + static_cast<int>(f);
    double min_x = 0, min_y = 0, max_x = 0, max_y = 0;
    bool any = false;
    for (const Partition& p : partitions_) {
      if (p.floor != floor) continue;
      if (!any) {
        min_x = p.rect.min_x;
        min_y = p.rect.min_y;
        max_x = p.rect.max_x;
        max_y = p.rect.max_y;
        any = true;
      } else {
        min_x = std::min(min_x, p.rect.min_x);
        min_y = std::min(min_y, p.rect.min_y);
        max_x = std::max(max_x, p.rect.max_x);
        max_y = std::max(max_y, p.rect.max_y);
      }
    }
    FloorIndex& index = floor_index_[f];
    index.origin_x = min_x;
    index.origin_y = min_y;
    index.cell = kLocateCellMetres;
    index.cols =
        any ? std::max(1, static_cast<int>(
                              std::ceil((max_x - min_x) / index.cell)))
            : 0;
    index.rows =
        any ? std::max(1, static_cast<int>(
                              std::ceil((max_y - min_y) / index.cell)))
            : 0;
    index.cells.assign(static_cast<size_t>(index.cols) * index.rows, {});
  }

  for (size_t pid = 0; pid < partitions_.size(); ++pid) {
    const Partition& p = partitions_[pid];
    FloorIndex& index = floor_index_[static_cast<size_t>(p.floor - min_floor_)];
    const int c0 = std::clamp(
        static_cast<int>((p.rect.min_x - index.origin_x) / index.cell), 0,
        index.cols - 1);
    const int c1 = std::clamp(
        static_cast<int>((p.rect.max_x - index.origin_x) / index.cell), 0,
        index.cols - 1);
    const int r0 = std::clamp(
        static_cast<int>((p.rect.min_y - index.origin_y) / index.cell), 0,
        index.rows - 1);
    const int r1 = std::clamp(
        static_cast<int>((p.rect.max_y - index.origin_y) / index.cell), 0,
        index.rows - 1);
    for (int r = r0; r <= r1; ++r) {
      for (int c = c0; c <= c1; ++c) {
        index.cells[static_cast<size_t>(r) * index.cols + c].push_back(
            static_cast<PartitionId>(pid));
      }
    }
  }
}

std::vector<PartitionId> Venue::LocateAll(const IndoorPoint& point) const {
  std::vector<PartitionId> out;
  const size_t f = static_cast<size_t>(point.floor - min_floor_);
  if (point.floor < min_floor_ || f >= floor_index_.size()) return out;
  const FloorIndex& index = floor_index_[f];
  if (index.cols == 0 || index.rows == 0) return out;
  const int c = std::clamp(
      static_cast<int>((point.p.x - index.origin_x) / index.cell), 0,
      index.cols - 1);
  const int r = std::clamp(
      static_cast<int>((point.p.y - index.origin_y) / index.cell), 0,
      index.rows - 1);
  for (PartitionId pid :
       index.cells[static_cast<size_t>(r) * index.cols + c]) {
    if (partitions_[static_cast<size_t>(pid)].rect.Contains(point.p)) {
      out.push_back(pid);
    }
  }
  return out;
}

size_t Venue::MemoryUsage() const {
  size_t total = partitions_.capacity() * sizeof(Partition) +
                 doors_.capacity() * sizeof(Door);
  for (const Door& d : doors_) {
    total += d.ati_intervals.capacity() * sizeof(TimeInterval);
  }
  for (const auto& list : doors_of_) {
    total += list.capacity() * sizeof(DoorId);
  }
  for (const DistanceMatrix& dm : distance_matrices_) {
    total += dm.MemoryUsage();
  }
  for (const FloorIndex& index : floor_index_) {
    total += index.cells.capacity() * sizeof(std::vector<PartitionId>);
    for (const auto& cell : index.cells) {
      total += cell.capacity() * sizeof(PartitionId);
    }
  }
  return total;
}

}  // namespace itspq

#include "venue/distance_matrix.h"

#include <algorithm>
#include <cassert>

namespace itspq {

DistanceMatrix::DistanceMatrix(const std::vector<DoorId>& doors,
                               const std::vector<Point2d>& positions) {
  assert(doors.size() == positions.size());
  num_doors_ = doors.size();
  if (num_doors_ == 0) return;

  DoorId min_id = doors[0];
  DoorId max_id = doors[0];
  for (DoorId d : doors) {
    min_id = std::min(min_id, d);
    max_id = std::max(max_id, d);
  }
  base_id_ = min_id;
  local_index_.assign(static_cast<size_t>(max_id - min_id) + 1, -1);
  for (size_t i = 0; i < doors.size(); ++i) {
    local_index_[doors[i] - base_id_] = static_cast<int32_t>(i);
  }

  matrix_.assign(num_doors_ * num_doors_, 0.0);
  for (size_t i = 0; i < num_doors_; ++i) {
    for (size_t j = i + 1; j < num_doors_; ++j) {
      const double d = EuclideanDistance(positions[i], positions[j]);
      matrix_[i * num_doors_ + j] = d;
      matrix_[j * num_doors_ + i] = d;
    }
  }
}

}  // namespace itspq

#include "server/query_service.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace itspq {

namespace {

constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

std::chrono::steady_clock::duration DurationFromMicros(double micros) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::micro>(micros));
}

/// Absolute deadline `micros` from `now`; +infinity (or anything past
/// the clock's range) means no deadline.
std::chrono::steady_clock::time_point DeadlineFor(
    std::chrono::steady_clock::time_point now, double micros) {
  if (!(micros < 1e15)) return std::chrono::steady_clock::time_point::max();
  return now + DurationFromMicros(micros);
}

}  // namespace

QueryService::QueryService(VenueCatalog catalog, ServiceOptions options)
    : catalog_(std::move(catalog)),
      router_(catalog_),
      options_(options),
      paused_(options.start_paused),
      batch_size_counts_(options.max_batch + 1, 0) {
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  updater_ = std::thread([this] { UpdaterLoop(); });
}

QueryService::~QueryService() { Shutdown(); }

std::future<StatusOr<QueryResult>> QueryService::Submit(
    const QueryRequest& request) {
  return Submit(request,
                options_.default_deadline_micros == 0
                    ? std::numeric_limits<double>::infinity()
                    : options_.default_deadline_micros,
                QosClass::kInteractive);
}

std::future<StatusOr<QueryResult>> QueryService::Submit(
    const QueryRequest& request, double deadline_micros) {
  return Submit(request, deadline_micros, QosClass::kInteractive);
}

size_t QueryService::TotalQueuedLocked() const {
  size_t total = 0;
  for (const std::deque<Pending>& queue : queues_) total += queue.size();
  return total;
}

size_t QueryService::QueueLimitLocked() const {
  size_t limit = options_.queue_capacity;
  if (options_.target_queue_delay_micros > 0) {
    const double ewma = ewma_route_micros_.load(kRelaxed);
    if (ewma > 0) {
      const double ideal = options_.target_queue_delay_micros *
                           static_cast<double>(options_.num_workers) / ewma;
      size_t adaptive = options_.min_queue_limit;
      if (ideal > static_cast<double>(adaptive)) {
        adaptive = ideal >= static_cast<double>(options_.queue_capacity)
                       ? options_.queue_capacity
                       : static_cast<size_t>(ideal);
      }
      limit = std::min(limit, adaptive);
    }
  }
  return limit;
}

QueryService::Pending QueryService::PopHighestLocked() {
  for (std::deque<Pending>& queue : queues_) {
    if (queue.empty()) continue;
    Pending pending = std::move(queue.front());
    queue.pop_front();
    return pending;
  }
  // Unreachable per contract; keeps the compiler happy.
  return Pending();
}

std::future<StatusOr<QueryResult>> QueryService::Submit(
    const QueryRequest& request, double deadline_micros, QosClass qos) {
  submitted_.fetch_add(1, kRelaxed);
  const size_t class_index = static_cast<size_t>(qos);
  const bool known_class = class_index < kNumQosClasses;
  if (known_class) submitted_by_class_[class_index].fetch_add(1, kRelaxed);
  const size_t kind_index = static_cast<size_t>(request.kind);
  const bool known_kind = kind_index < kNumQueryKinds;
  if (known_kind) submitted_by_kind_[kind_index].fetch_add(1, kRelaxed);
  const Clock::time_point now = Clock::now();

  // Everything that allocates (the request copy, the promise's shared
  // state) happens outside mu_ — workers contend on that mutex, so the
  // admission critical section is just the queue push / displacement.
  Pending pending;
  pending.request = request;
  pending.qos = qos;
  pending.submit = now;
  pending.deadline = DeadlineFor(now, deadline_micros);
  std::future<StatusOr<QueryResult>> future = pending.promise.get_future();

  Status rejection;
  Pending victim;
  bool have_victim = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      rejected_shutdown_.fetch_add(1, kRelaxed);
      rejection = FailedPreconditionError("query service is shut down");
    } else if (!known_class) {
      rejected_invalid_.fetch_add(1, kRelaxed);
      rejection = InvalidArgumentError(
          "unknown QoS class " + std::to_string(class_index));
    } else if (!known_kind) {
      // Rejecting here (not at the router) keeps a malformed kind from
      // wasting a queue slot just to fail the strategy's validation.
      rejected_invalid_.fetch_add(1, kRelaxed);
      rejection = InvalidArgumentError(
          "unknown query kind " + std::to_string(kind_index));
    } else if (std::isnan(deadline_micros) || deadline_micros < 0) {
      // NaN must never reach DeadlineFor: !(NaN < 1e15) reads as "no
      // deadline", silently admitting a malformed request as immortal.
      rejected_invalid_.fetch_add(1, kRelaxed);
      rejection =
          InvalidArgumentError("deadline_micros must be a non-negative "
                               "number, got NaN or a negative value");
    } else if (deadline_micros == 0) {
      rejected_expired_.fetch_add(1, kRelaxed);
      rejection = DeadlineExceededError("deadline expired before admission");
    } else {
      // Feasibility gate: with the observed per-request route time and
      // the queue depth this class would wait behind, can the deadline
      // still be met? Shedding now beats timing out in the queue later
      // — the client learns immediately and the slot serves someone
      // who can still win.
      const double ewma = ewma_route_micros_.load(kRelaxed);
      bool infeasible = false;
      if (options_.feasibility_shedding && ewma > 0 &&
          deadline_micros < 1e15) {
        size_t queued_ahead = 0;
        for (size_t c = 0; c <= class_index; ++c) {
          queued_ahead += queues_[c].size();
        }
        const double predicted_micros =
            static_cast<double>(queued_ahead + 1) * ewma /
            static_cast<double>(options_.num_workers);
        infeasible = predicted_micros > deadline_micros;
      }
      const size_t limit = QueueLimitLocked();
      if (infeasible) {
        shed_infeasible_.fetch_add(1, kRelaxed);
        shed_by_class_[class_index].fetch_add(1, kRelaxed);
        rejection = ResourceExhaustedError(
            "shed: deadline infeasible at current queue depth");
      } else if (TotalQueuedLocked() >= limit) {
        // At the limit: a higher-priority arrival displaces the
        // youngest queued request of the lowest class present; an
        // arrival with nothing below it bounces with plain
        // backpressure.
        size_t victim_class = kNumQosClasses;
        for (size_t c = kNumQosClasses; c-- > class_index + 1;) {
          if (!queues_[c].empty()) {
            victim_class = c;
            break;
          }
        }
        if (victim_class < kNumQosClasses) {
          victim = std::move(queues_[victim_class].back());
          queues_[victim_class].pop_back();
          have_victim = true;
          shed_displaced_.fetch_add(1, kRelaxed);
          shed_by_class_[victim_class].fetch_add(1, kRelaxed);
          queues_[class_index].push_back(std::move(pending));
          admitted_.fetch_add(1, kRelaxed);
        } else {
          rejected_queue_full_.fetch_add(1, kRelaxed);
          rejection = ResourceExhaustedError("submission queue is full");
        }
      } else {
        queues_[class_index].push_back(std::move(pending));
        queue_high_water_ = std::max(queue_high_water_, TotalQueuedLocked());
        admitted_.fetch_add(1, kRelaxed);
      }
    }
  }
  if (have_victim) {
    victim.promise.set_value(StatusOr<QueryResult>(ResourceExhaustedError(
        "shed: displaced by higher-priority traffic")));
  }
  if (!rejection.ok()) {
    pending.promise.set_value(StatusOr<QueryResult>(std::move(rejection)));
  } else {
    cv_.notify_one();
  }
  return future;
}

std::future<Status> QueryService::SubmitUpdate(const AtiUpdate& update) {
  updates_submitted_.fetch_add(1, kRelaxed);

  PendingUpdate pending;
  pending.update = update;
  std::future<Status> future = pending.promise.get_future();

  Status rejection;
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    if (update_draining_) {
      rejection = FailedPreconditionError("query service is shut down");
    } else if (update_queue_.size() >= options_.update_queue_capacity) {
      rejection = ResourceExhaustedError("update queue is full");
    } else {
      update_queue_.push_back(std::move(pending));
    }
  }
  if (!rejection.ok()) {
    updates_rejected_.fetch_add(1, kRelaxed);
    pending.promise.set_value(std::move(rejection));
  } else {
    update_cv_.notify_one();
  }
  return future;
}

void QueryService::UpdaterLoop() {
  for (;;) {
    PendingUpdate pending;
    {
      std::unique_lock<std::mutex> lock(update_mu_);
      update_cv_.wait(lock, [this] {
        return update_draining_ || !update_queue_.empty();
      });
      // Drain-to-empty before exiting: every admitted update commits.
      if (update_queue_.empty()) return;
      pending = std::move(update_queue_.front());
      update_queue_.pop_front();
    }
    // The epoch transition runs outside update_mu_ so SubmitUpdate
    // admission never blocks on an in-flight apply; FIFO order is
    // preserved because this is the only consumer.
    Status status = catalog_.ApplyAtiUpdate(pending.update).status();
    if (status.ok()) {
      updates_applied_.fetch_add(1, kRelaxed);
    } else {
      updates_rejected_.fetch_add(1, kRelaxed);
    }
    pending.promise.set_value(std::move(status));
  }
}

void QueryService::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    paused_ = false;
  }
  cv_.notify_all();
  {
    std::lock_guard<std::mutex> lock(update_mu_);
    update_draining_ = true;
  }
  update_cv_.notify_all();
  // Exactly one caller joins; concurrent Shutdowns block here until the
  // drain completes, so "Shutdown returned" always means "quiesced".
  // The updater drains its admitted queue before exiting, so every
  // SubmitUpdate future is resolved by the time Shutdown returns.
  std::call_once(join_once_, [this] {
    for (std::thread& worker : workers_) worker.join();
    updater_.join();
  });
}

void QueryService::WorkerLoop() {
  // One context for the worker's lifetime: scratch allocations amortise
  // across every batch this thread ever serves.
  QueryContext context;
  std::vector<Pending> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return draining_ || (!paused_ && TotalQueuedLocked() > 0);
      });
      // The predicate only passes with empty queues when draining.
      if (TotalQueuedLocked() == 0) return;
      batch.push_back(PopHighestLocked());
      // Micro-batching: soak up whatever is queued — strictly in class
      // order, so interactive work never waits behind background —
      // waiting up to max_wait after the first request for stragglers.
      // While draining there is no one left to wait for.
      const Clock::time_point stragglers_until =
          Clock::now() + DurationFromMicros(options_.max_wait_micros);
      while (batch.size() < options_.max_batch) {
        if (TotalQueuedLocked() > 0) {
          batch.push_back(PopHighestLocked());
          continue;
        }
        if (draining_) break;
        if (!cv_.wait_until(lock, stragglers_until, [this] {
              return TotalQueuedLocked() > 0 || draining_;
            })) {
          break;
        }
      }
    }
    Dispatch(&batch, &context);
  }
}

void QueryService::Dispatch(std::vector<Pending>* batch,
                            QueryContext* context) {
  // Deadline gate #1: requests that died waiting never reach the
  // router.
  const Clock::time_point start = Clock::now();
  std::vector<Pending> live;
  live.reserve(batch->size());
  for (Pending& pending : *batch) {
    if (start >= pending.deadline) {
      timed_out_in_queue_.fetch_add(1, kRelaxed);
      pending.promise.set_value(StatusOr<QueryResult>(
          DeadlineExceededError("deadline expired in the submission queue")));
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (live.empty()) return;

  std::vector<QueryRequest> requests;
  requests.reserve(live.size());
  for (const Pending& pending : live) requests.push_back(pending.request);
  // The coalesced call. Workers are the parallelism, so the batch runs
  // sequentially on this worker's long-lived context.
  BatchOptions sequential;
  sequential.context = context;
  std::vector<StatusOr<QueryResult>> results =
      router_.RouteBatch(requests, sequential);

  // Feed the admission-side signals: per-request route time, smoothed.
  // The first sample seeds the EWMA; later ones decay at 0.9 so a load
  // shift shows up within a few dozen batches.
  const Clock::time_point completed = Clock::now();
  const double per_request_micros =
      std::chrono::duration<double, std::micro>(completed - start).count() /
      static_cast<double>(live.size());
  const double previous = ewma_route_micros_.load(kRelaxed);
  ewma_route_micros_.store(
      previous == 0 ? per_request_micros
                    : 0.9 * previous + 0.1 * per_request_micros,
      kRelaxed);

  // Deadline gate #2: a client whose deadline passed mid-dispatch has
  // given up — the computed answer is dropped, not delivered late.
  LatencyHistogram batch_latency;
  for (size_t i = 0; i < live.size(); ++i) {
    Pending& pending = live[i];
    if (completed >= pending.deadline) {
      timed_out_in_flight_.fetch_add(1, kRelaxed);
      pending.promise.set_value(StatusOr<QueryResult>(
          DeadlineExceededError("deadline expired during dispatch")));
      continue;
    }
    served_.fetch_add(1, kRelaxed);
    served_by_class_[static_cast<size_t>(pending.qos)].fetch_add(1, kRelaxed);
    const size_t kind = static_cast<size_t>(pending.request.kind);
    if (kind < kNumQueryKinds) served_by_kind_[kind].fetch_add(1, kRelaxed);
    if (results[i].ok()) {
      if (results[i]->found) served_found_.fetch_add(1, kRelaxed);
    } else {
      route_errors_.fetch_add(1, kRelaxed);
    }
    batch_latency.Record(
        std::chrono::duration<double, std::micro>(completed - pending.submit)
            .count());
    pending.promise.set_value(std::move(results[i]));
  }

  std::lock_guard<std::mutex> lock(stats_mu_);
  ++batches_;
  ++batch_size_counts_[live.size()];
  latency_.Accumulate(batch_latency);
}

ServiceStats QueryService::Stats() const {
  ServiceStats stats;
  stats.submitted = submitted_.load(kRelaxed);
  stats.admitted = admitted_.load(kRelaxed);
  stats.rejected_queue_full = rejected_queue_full_.load(kRelaxed);
  stats.rejected_expired = rejected_expired_.load(kRelaxed);
  stats.rejected_invalid = rejected_invalid_.load(kRelaxed);
  stats.rejected_shutdown = rejected_shutdown_.load(kRelaxed);
  stats.shed_displaced = shed_displaced_.load(kRelaxed);
  stats.shed_infeasible = shed_infeasible_.load(kRelaxed);
  stats.timed_out_in_queue = timed_out_in_queue_.load(kRelaxed);
  stats.timed_out_in_flight = timed_out_in_flight_.load(kRelaxed);
  stats.served = served_.load(kRelaxed);
  stats.served_found = served_found_.load(kRelaxed);
  stats.route_errors = route_errors_.load(kRelaxed);
  for (size_t c = 0; c < kNumQosClasses; ++c) {
    stats.submitted_by_class[c] = submitted_by_class_[c].load(kRelaxed);
    stats.served_by_class[c] = served_by_class_[c].load(kRelaxed);
    stats.shed_by_class[c] = shed_by_class_[c].load(kRelaxed);
  }
  for (size_t k = 0; k < kNumQueryKinds; ++k) {
    stats.submitted_by_kind[k] = submitted_by_kind_[k].load(kRelaxed);
    stats.served_by_kind[k] = served_by_kind_[k].load(kRelaxed);
  }
  stats.ewma_route_micros = ewma_route_micros_.load(kRelaxed);
  stats.updates_submitted = updates_submitted_.load(kRelaxed);
  stats.updates_applied = updates_applied_.load(kRelaxed);
  stats.updates_rejected = updates_rejected_.load(kRelaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.queue_depth = TotalQueuedLocked();
    stats.queue_high_water = queue_high_water_;
    stats.queue_limit = QueueLimitLocked();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats.batches = batches_;
    stats.batch_size_counts = batch_size_counts_;
    stats.latency = latency_;
  }
  stats.catalog = catalog_.Stats();
  stats.cold_loads = stats.catalog.total_loads;
  stats.cold_load_latency = stats.catalog.load_latency;
  return stats;
}

StatusOr<std::unique_ptr<QueryService>> MakeQueryService(
    VenueCatalog catalog, ServiceOptions options) {
  if (catalog.NumVenues() == 0) {
    return FailedPreconditionError(
        "query service needs a catalog with at least one venue");
  }
  if (options.queue_capacity == 0) {
    return InvalidArgumentError(
        "service options: queue_capacity must be positive");
  }
  if (options.num_workers < 1) {
    return InvalidArgumentError(
        "service options: num_workers must be positive");
  }
  if (options.max_batch == 0) {
    return InvalidArgumentError("service options: max_batch must be positive");
  }
  // The 1e15 µs (~31 year) ceiling keeps the wait arithmetic inside
  // steady_clock's range — same bound DeadlineFor treats as "never".
  if (!(options.max_wait_micros >= 0) || !(options.max_wait_micros < 1e15)) {
    return InvalidArgumentError(
        "service options: max_wait_micros must be in [0, 1e15)");
  }
  // !(x >= 0) also catches NaN: a NaN default would make every
  // defaulted Submit() bounce with kInvalidArgument at admission.
  if (!(options.default_deadline_micros >= 0)) {
    return InvalidArgumentError(
        "service options: default_deadline_micros must be a non-negative "
        "number (NaN rejected)");
  }
  if (!(options.target_queue_delay_micros >= 0) ||
      !(options.target_queue_delay_micros < 1e15)) {
    return InvalidArgumentError(
        "service options: target_queue_delay_micros must be in [0, 1e15)");
  }
  if (options.min_queue_limit == 0) {
    return InvalidArgumentError(
        "service options: min_queue_limit must be positive");
  }
  if (options.update_queue_capacity == 0) {
    return InvalidArgumentError(
        "service options: update_queue_capacity must be positive");
  }
  return std::unique_ptr<QueryService>(
      new QueryService(std::move(catalog), options));
}

}  // namespace itspq

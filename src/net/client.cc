#include "net/client.h"

#include <string_view>
#include <utility>

namespace itspq {
namespace net {

StatusOr<std::unique_ptr<NetClient>> NetClient::Connect(
    uint16_t port, size_t max_frame_bytes) {
  auto fd = ConnectLoopback(port);
  if (!fd.ok()) return fd.status();
  return std::unique_ptr<NetClient>(
      new NetClient(std::move(*fd), max_frame_bytes));
}

Status NetClient::ReadReplyFrame(std::string* payload, MsgType* type,
                                 std::string_view* body) {
  Status error;
  const FrameRead got = ReadFrame(fd_.get(), max_frame_bytes_, payload, &error);
  if (got == FrameRead::kCleanClose) {
    return InternalError("server closed the connection");
  }
  if (got == FrameRead::kIdleTimeout) {
    return DeadlineExceededError("timed out waiting for server reply");
  }
  if (got == FrameRead::kError) return error;
  Status header = DecodeFrameHeader(*payload, type, body);
  if (!header.ok()) return header;
  if (*type == MsgType::kError) {
    WireReply err;
    Status decoded = DecodeReplyBody(*body, &err);
    if (!decoded.ok()) return decoded;
    // The server judged this connection protocol-broken and will close
    // it; not retryable on this connection, hence kFailedPrecondition.
    return FailedPreconditionError("server reported protocol error: " +
                                   std::string(StatusCodeName(err.code)) +
                                   ": " + err.message);
  }
  return Status::Ok();
}

Status NetClient::ReadExpected(MsgType want, std::string* payload,
                               std::string_view* body) {
  MsgType type;
  Status read = ReadReplyFrame(payload, &type, body);
  if (!read.ok()) return read;
  if (type != want) {
    return InternalError("expected message type " +
                         std::to_string(static_cast<int>(want)) + ", got " +
                         std::to_string(static_cast<int>(type)));
  }
  return Status::Ok();
}

StatusOr<uint64_t> NetClient::Send(const QueryRequest& request,
                                   double deadline_micros, QosClass qos) {
  const uint64_t id = next_request_id_++;
  WireQuery wire = FromQueryRequest(request, id, qos, deadline_micros);
  // Point-to-point requests stay on the original kQuery frame so this
  // client keeps interoperating with servers that predate the family
  // extension; anything else needs the temporal codec to survive the
  // trip.
  const std::string frame = request.kind == QueryKind::kPointToPoint
                                ? EncodeQueryFrame(wire)
                                : EncodeTemporalQueryFrame(wire);
  Status sent = WriteFrame(fd_.get(), frame);
  if (!sent.ok()) return sent;
  return id;
}

StatusOr<WireReply> NetClient::ReceiveReply() {
  std::string payload;
  std::string_view body;
  // The server answers in the codec the request arrived in, so a
  // pipelined mix of kQuery and kTemporalQuery sends gets a mix of
  // reply types back — accept either and decode per the actual type.
  MsgType type;
  Status read = ReadReplyFrame(&payload, &type, &body);
  if (!read.ok()) return read;
  if (type != MsgType::kQueryReply && type != MsgType::kTemporalReply) {
    return InternalError("expected a reply frame, got message type " +
                         std::to_string(static_cast<int>(type)));
  }
  WireReply reply;
  Status decoded = type == MsgType::kQueryReply
                       ? DecodeReplyBody(body, &reply)
                       : DecodeTemporalReplyBody(body, &reply);
  if (!decoded.ok()) return decoded;
  return reply;
}

StatusOr<WireReply> NetClient::Query(const QueryRequest& request,
                                     double deadline_micros, QosClass qos) {
  auto id = Send(request, deadline_micros, qos);
  if (!id.ok()) return id.status();
  auto reply = ReceiveReply();
  if (!reply.ok()) return reply;
  if (reply->request_id != *id) {
    return InternalError("reply id " + std::to_string(reply->request_id) +
                         " does not match request id " + std::to_string(*id));
  }
  return reply;
}

StatusOr<WireStats> NetClient::FetchStats() {
  Status sent =
      WriteFrame(fd_.get(), EncodeEmptyFrame(MsgType::kStatsRequest));
  if (!sent.ok()) return sent;
  std::string payload;
  std::string_view body;
  Status read = ReadExpected(MsgType::kStatsReply, &payload, &body);
  if (!read.ok()) return read;
  WireStats stats;
  Status decoded = DecodeStatsReplyBody(body, &stats);
  if (!decoded.ok()) return decoded;
  return stats;
}

Status NetClient::RequestShutdown() {
  Status sent = WriteFrame(fd_.get(), EncodeEmptyFrame(MsgType::kShutdown));
  if (!sent.ok()) return sent;
  std::string payload;
  std::string_view body;
  return ReadExpected(MsgType::kShutdownAck, &payload, &body);
}

}  // namespace net
}  // namespace itspq

#include "net/server.h"

#include <sys/socket.h>

#include <cmath>
#include <deque>
#include <future>
#include <utility>

namespace itspq {
namespace net {

// One accepted socket plus its reply pipeline. The reader pushes an
// entry per query (future resolved by the service) or per immediate
// frame (stats, shutdown ack); the writer drains them strictly FIFO so
// a client can pipeline queries and match replies by order as well as
// by id.
struct NetServer::Connection {
  ScopedFd fd;
  std::thread reader;
  std::thread writer;

  struct Outgoing {
    /// Query replies carry the future + id; immediate frames (stats,
    /// acks, errors) arrive pre-encoded in `frame`.
    bool is_query = false;
    uint64_t request_id = 0;
    /// What the writer encodes the resolved future as: kQueryReply for
    /// kQuery requests, kTemporalReply (base + family extension) for
    /// kTemporalQuery ones.
    MsgType reply_type = MsgType::kQueryReply;
    std::future<StatusOr<QueryResult>> future;
    std::string frame;
  };

  std::mutex mu;
  std::condition_variable cv;
  std::deque<Outgoing> outgoing;  // guarded by mu
  bool closing = false;           // guarded by mu

  void Push(Outgoing item) {
    {
      std::lock_guard<std::mutex> lock(mu);
      outgoing.push_back(std::move(item));
    }
    cv.notify_one();
  }

  /// Tells the writer to drain what's queued and exit. `force` also
  /// shuts the socket down immediately — Stop() uses it to yank a
  /// reader out of recv and a writer out of send; the reader's natural
  /// exit does NOT force, so the final error/ack frame it just pushed
  /// still reaches the peer before the writer sends FIN.
  void Close(bool force) {
    {
      std::lock_guard<std::mutex> lock(mu);
      closing = true;
    }
    cv.notify_all();
    if (force && fd.valid()) ::shutdown(fd.get(), SHUT_RDWR);
  }
};

NetServer::NetServer(std::unique_ptr<QueryService> service,
                     NetServerOptions options, ScopedFd listen_fd,
                     uint16_t port)
    : service_(std::move(service)),
      options_(options),
      listen_fd_(std::move(listen_fd)),
      port_(port) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

NetServer::~NetServer() { Stop(); }

void NetServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int raw = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (raw < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;  // EINTR / transient accept failure
    }
    auto conn = std::make_unique<Connection>();
    conn->fd.Reset(raw);
    if (options_.recv_timeout_seconds > 0) {
      (void)SetRecvTimeout(raw, options_.recv_timeout_seconds);
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    Connection* raw_conn = conn.get();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_.load(std::memory_order_acquire)) return;
      connections_.push_back(std::move(conn));
    }
    raw_conn->reader = std::thread([this, raw_conn] { ReaderLoop(raw_conn); });
    raw_conn->writer = std::thread([this, raw_conn] { WriterLoop(raw_conn); });
  }
}

void NetServer::ReaderLoop(Connection* conn) {
  std::string payload;
  while (true) {
    Status error;
    const FrameRead got =
        ReadFrame(conn->fd.get(), options_.max_frame_bytes, &payload, &error);
    if (got == FrameRead::kIdleTimeout) continue;  // quiet, not stalled
    if (got == FrameRead::kCleanClose) break;
    if (got == FrameRead::kError) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      connections_dropped_.fetch_add(1, std::memory_order_relaxed);
      // Best-effort goodbye naming the violation, then drop the peer.
      WireReply err;
      err.request_id = 0;
      err.code = error.code();
      err.message = error.message();
      Connection::Outgoing out;
      out.frame = EncodeReplyFrame(err, MsgType::kError);
      conn->Push(std::move(out));
      break;
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    MsgType type;
    std::string_view body;
    Status header = DecodeFrameHeader(payload, &type, &body);
    if (!header.ok()) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      connections_dropped_.fetch_add(1, std::memory_order_relaxed);
      WireReply err;
      err.code = header.code();
      err.message = header.message();
      Connection::Outgoing out;
      out.frame = EncodeReplyFrame(err, MsgType::kError);
      conn->Push(std::move(out));
      break;
    }
    if (!HandleFrame(conn, type, body)) break;
  }
  conn->Close(/*force=*/false);
}

bool NetServer::HandleFrame(Connection* conn, MsgType type,
                            std::string_view body) {
  switch (type) {
    case MsgType::kQuery:
    case MsgType::kTemporalQuery: {
      WireQuery query;
      Status decoded = type == MsgType::kQuery
                           ? DecodeQueryBody(body, &query)
                           : DecodeTemporalQueryBody(body, &query);
      if (!decoded.ok()) {
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
        connections_dropped_.fetch_add(1, std::memory_order_relaxed);
        WireReply err;
        err.code = decoded.code();
        err.message = decoded.message();
        Connection::Outgoing out;
        out.frame = EncodeReplyFrame(err, MsgType::kError);
        conn->Push(std::move(out));
        return false;
      }
      Connection::Outgoing out;
      out.is_query = true;
      out.request_id = query.request_id;
      // A temporal request is answered in kind: the reply frame carries
      // the family extension only when the peer asked through the
      // temporal codec, so plain-kQuery clients never see layout skew.
      if (type == MsgType::kTemporalQuery) {
        out.reply_type = MsgType::kTemporalReply;
      }
      // Hand the request straight to admission: the service's bounded
      // queue (and its QoS shedding) is the only buffer between the
      // socket and the routers.
      out.future = service_->Submit(ToQueryRequest(query),
                                    query.deadline_micros, query.qos);
      conn->Push(std::move(out));
      return true;
    }
    case MsgType::kStatsRequest: {
      Connection::Outgoing out;
      out.frame = EncodeStatsReplyFrame(MakeWireStats(service_->Stats()));
      conn->Push(std::move(out));
      return true;
    }
    case MsgType::kShutdown: {
      Connection::Outgoing out;
      out.frame = EncodeEmptyFrame(MsgType::kShutdownAck);
      conn->Push(std::move(out));
      {
        std::lock_guard<std::mutex> lock(mu_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
      return true;  // keep the connection until the client hangs up
    }
    default:
      // Server-bound traffic only; a client sending reply/ack types
      // is confused or hostile.
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      connections_dropped_.fetch_add(1, std::memory_order_relaxed);
      WireReply err;
      err.code = StatusCode::kInvalidArgument;
      err.message = "unexpected client-bound message type";
      Connection::Outgoing out;
      out.frame = EncodeReplyFrame(err, MsgType::kError);
      conn->Push(std::move(out));
      return false;
  }
}

void NetServer::WriterLoop(Connection* conn) {
  while (true) {
    Connection::Outgoing item;
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      conn->cv.wait(lock,
                    [conn] { return conn->closing || !conn->outgoing.empty(); });
      // Drain what's queued even when closing: the error/ack frame the
      // reader pushed on its way out must still reach the peer.
      if (conn->outgoing.empty()) break;
      item = std::move(conn->outgoing.front());
      conn->outgoing.pop_front();
    }
    std::string frame;
    if (item.is_query) {
      frame = EncodeReplyFrame(MakeReply(item.request_id, item.future.get()),
                               item.reply_type);
    } else {
      frame = std::move(item.frame);
    }
    // A dead peer just ends the pipeline; replies still queued are
    // dropped (their promises resolve in the service regardless).
    if (!WriteFrame(conn->fd.get(), frame).ok()) break;
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
  }
  // The writer owns the goodbye: FIN after the last delivered frame,
  // which also pops a reader still parked in recv on this socket.
  if (conn->fd.valid()) ::shutdown(conn->fd.get(), SHUT_RDWR);
}

void NetServer::WaitForShutdownRequest() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [this] {
    return shutdown_requested_ || stopping_.load(std::memory_order_acquire);
  });
}

bool NetServer::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_requested_;
}

void NetServer::Stop() {
  std::call_once(stop_once_, [this] {
    stopping_.store(true, std::memory_order_release);
    // Unblock accept: shutdown() on a listening socket pops a parked
    // accept with EINVAL. The fd itself is closed only after the join —
    // mutating the ScopedFd while the accept thread still reads it
    // would race (and closing early invites fd-number reuse under it).
    if (listen_fd_.valid()) ::shutdown(listen_fd_.get(), SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();
    listen_fd_.Reset();
    // Drain the service first: every future a writer may be blocked on
    // resolves (served or kDeadlineExceeded), so the joins below cannot
    // deadlock behind a paused or backed-up backend.
    service_->Shutdown();
    std::vector<std::unique_ptr<Connection>> conns;
    {
      std::lock_guard<std::mutex> lock(mu_);
      conns.swap(connections_);
    }
    for (auto& conn : conns) {
      conn->Close(/*force=*/true);
      if (conn->reader.joinable()) conn->reader.join();
      if (conn->writer.joinable()) conn->writer.join();
    }
    shutdown_cv_.notify_all();
  });
}

NetServerStats NetServer::Stats() const {
  NetServerStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_dropped =
      connections_dropped_.load(std::memory_order_relaxed);
  stats.frames_received = frames_received_.load(std::memory_order_relaxed);
  stats.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  stats.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  return stats;
}

StatusOr<std::unique_ptr<NetServer>> MakeNetServer(
    std::unique_ptr<QueryService> service, NetServerOptions options) {
  if (service == nullptr) {
    return InvalidArgumentError("MakeNetServer requires a service");
  }
  if (options.max_frame_bytes < 64) {
    return InvalidArgumentError(
        "max_frame_bytes must fit at least one query frame (>= 64)");
  }
  if (std::isnan(options.recv_timeout_seconds) ||
      options.recv_timeout_seconds < 0) {
    return InvalidArgumentError(
        "recv_timeout_seconds must be >= 0 (0 disables the guard)");
  }
  auto listener = ListenLoopback(options.port);
  if (!listener.ok()) return listener.status();
  return std::unique_ptr<NetServer>(
      new NetServer(std::move(service), options, std::move(listener->first),
                    listener->second));
}

}  // namespace net
}  // namespace itspq

#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace itspq {
namespace net {
namespace {

std::string ErrnoText(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Reads exactly `n` bytes. Outcomes mirror FrameRead: kFrame = got
/// them all; kCleanClose = EOF before the FIRST byte (only meaningful
/// when `n` starts a frame); kIdleTimeout = receive timeout before the
/// first byte; kError = EOF or timeout after a partial read, or a recv
/// failure — `error` is filled with `what` for context.
FrameRead RecvExact(int fd, char* out, size_t n, const char* what,
                    Status* error) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, out + got, n - got, 0);
    if (r > 0) {
      got += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return FrameRead::kCleanClose;
      *error = InvalidArgumentError(std::string("connection closed mid-") +
                                    what + " after " + std::to_string(got) +
                                    " bytes");
      return FrameRead::kError;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (got == 0) return FrameRead::kIdleTimeout;
      *error = DeadlineExceededError(
          std::string("receive timeout mid-") + what +
          " (slow-loris guard): peer stalled after " + std::to_string(got) +
          " bytes");
      return FrameRead::kError;
    }
    *error = InternalError(ErrnoText("recv"));
    return FrameRead::kError;
  }
  return FrameRead::kFrame;
}

}  // namespace

void ScopedFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

FrameRead ReadFrame(int fd, size_t max_frame_bytes, std::string* payload,
                    Status* error) {
  uint32_t len = 0;
  char prefix[sizeof len];
  const FrameRead head =
      RecvExact(fd, prefix, sizeof prefix, "length prefix", error);
  if (head != FrameRead::kFrame) return head;
  std::memcpy(&len, prefix, sizeof len);
  if (len == 0) {
    *error = InvalidArgumentError("frame with zero-length payload");
    return FrameRead::kError;
  }
  if (len > max_frame_bytes) {
    *error = InvalidArgumentError(
        "frame length prefix " + std::to_string(len) + " exceeds limit " +
        std::to_string(max_frame_bytes));
    return FrameRead::kError;
  }
  payload->resize(len);
  // A frame whose prefix arrived must finish promptly: EOF, timeout,
  // and recv failure here are all kError — never another clean close.
  const FrameRead body = RecvExact(fd, payload->data(), len, "frame", error);
  if (body == FrameRead::kCleanClose) {
    *error = InvalidArgumentError("connection closed between prefix and body");
    return FrameRead::kError;
  }
  if (body == FrameRead::kIdleTimeout) {
    *error = DeadlineExceededError(
        "receive timeout between prefix and body (slow-loris guard)");
    return FrameRead::kError;
  }
  return body;
}

Status WriteFrame(int fd, std::string_view frame) {
  size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a peer that vanished mid-write surfaces as EPIPE,
    // not a process-killing SIGPIPE.
    const ssize_t r = ::send(fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (r >= 0) {
      sent += static_cast<size_t>(r);
      continue;
    }
    if (errno == EINTR) continue;
    return InternalError(ErrnoText("send"));
  }
  return Status::Ok();
}

Status SetRecvTimeout(int fd, double seconds) {
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0) {
    return InternalError(ErrnoText("setsockopt(SO_RCVTIMEO)"));
  }
  return Status::Ok();
}

StatusOr<ScopedFd> ConnectLoopback(uint16_t port) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return InternalError(ErrnoText("socket"));
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    return InternalError(ErrnoText("connect"));
  }
  // Frames are small and latency-sensitive; don't let Nagle batch them.
  int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

StatusOr<std::pair<ScopedFd, uint16_t>> ListenLoopback(uint16_t port,
                                                       int backlog) {
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return InternalError(ErrnoText("socket"));
  int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    return InternalError(ErrnoText("bind"));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return InternalError(ErrnoText("listen"));
  }
  socklen_t addr_len = sizeof addr;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    return InternalError(ErrnoText("getsockname"));
  }
  return std::make_pair(std::move(fd), ntohs(addr.sin_port));
}

}  // namespace net
}  // namespace itspq

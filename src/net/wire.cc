#include "net/wire.h"

#include <cmath>
#include <cstring>
#include <utility>

namespace itspq {
namespace net {
namespace {

// ---------------------------------------------------------------------
// Little-endian primitive writers over a growing string buffer.

class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutRaw(&v, sizeof v); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof v); }
  void PutI32(int32_t v) { PutRaw(&v, sizeof v); }
  void PutF64(double v) { PutRaw(&v, sizeof v); }

  void PutString(std::string_view s) {
    if (s.size() > kMaxWireString) s = s.substr(0, kMaxWireString);
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  /// Seals the frame: prefixes the accumulated payload with its length.
  std::string Frame() && {
    const uint32_t len = static_cast<uint32_t>(buf_.size());
    std::string frame;
    frame.reserve(sizeof len + buf_.size());
    frame.append(reinterpret_cast<const char*>(&len), sizeof len);
    frame += buf_;
    return frame;
  }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }

  std::string buf_;
};

// ---------------------------------------------------------------------
// Bounds-checked little-endian readers over a frame body. Every getter
// returns false once the body runs short; the caller converts that into
// one precise truncation Status so a hostile frame can never read past
// the buffer.

class WireReader {
 public:
  explicit WireReader(std::string_view body) : rest_(body) {}

  bool GetU8(uint8_t* v) { return GetRaw(v, sizeof *v); }
  bool GetU32(uint32_t* v) { return GetRaw(v, sizeof *v); }
  bool GetU64(uint64_t* v) { return GetRaw(v, sizeof *v); }
  bool GetI32(int32_t* v) { return GetRaw(v, sizeof *v); }
  bool GetF64(double* v) { return GetRaw(v, sizeof *v); }

  /// False on a truncated count, a count beyond kMaxWireString, or
  /// fewer bytes remaining than the count claims.
  bool GetString(std::string* s) {
    uint32_t n = 0;
    if (!GetU32(&n)) return false;
    if (n > kMaxWireString || n > rest_.size()) return false;
    s->assign(rest_.data(), n);
    rest_.remove_prefix(n);
    return true;
  }

  bool Empty() const { return rest_.empty(); }
  size_t Remaining() const { return rest_.size(); }

 private:
  bool GetRaw(void* v, size_t n) {
    if (rest_.size() < n) return false;
    std::memcpy(v, rest_.data(), n);
    rest_.remove_prefix(n);
    return true;
  }

  std::string_view rest_;
};

Status Truncated(const char* what) {
  return InvalidArgumentError(std::string("truncated frame: ") + what);
}

/// Decoded frames must consume their body exactly — trailing bytes mean
/// the peer speaks a different (newer? hostile?) layout, and silently
/// ignoring them would mask the skew.
Status CheckDrained(const WireReader& reader, const char* what) {
  if (reader.Empty()) return Status::Ok();
  return InvalidArgumentError(std::string(what) + ": " +
                              std::to_string(reader.Remaining()) +
                              " trailing bytes after body");
}

}  // namespace

QueryRequest ToQueryRequest(const WireQuery& wire) {
  QueryRequest request;
  request.venue_id = wire.venue_id;
  request.source.p.x = wire.source_x;
  request.source.p.y = wire.source_y;
  request.source.floor = wire.source_floor;
  request.target.p.x = wire.target_x;
  request.target.p.y = wire.target_y;
  request.target.floor = wire.target_floor;
  request.departure = Instant(wire.departure_seconds);
  request.options.use_snapshot_cache = wire.use_snapshot_cache;
  request.options.partition_visited_pruning = wire.partition_visited_pruning;
  request.kind = wire.kind;
  request.budget_seconds = wire.budget_seconds;
  request.k = wire.k;
  request.facilities = wire.facilities;
  request.waypoints = wire.waypoints;
  return request;
}

WireQuery FromQueryRequest(const QueryRequest& request, uint64_t request_id,
                           QosClass qos, double deadline_micros) {
  WireQuery wire;
  wire.request_id = request_id;
  wire.venue_id = request.venue_id;
  wire.qos = qos;
  wire.deadline_micros = deadline_micros;
  wire.use_snapshot_cache = request.options.use_snapshot_cache;
  wire.partition_visited_pruning = request.options.partition_visited_pruning;
  wire.source_x = request.source.p.x;
  wire.source_y = request.source.p.y;
  wire.source_floor = request.source.floor;
  wire.target_x = request.target.p.x;
  wire.target_y = request.target.p.y;
  wire.target_floor = request.target.floor;
  wire.departure_seconds = request.departure.seconds();
  wire.kind = request.kind;
  wire.budget_seconds = request.budget_seconds;
  wire.k = request.k;
  wire.facilities = request.facilities;
  wire.waypoints = request.waypoints;
  return wire;
}

WireReply MakeReply(uint64_t request_id, const StatusOr<QueryResult>& result) {
  WireReply reply;
  reply.request_id = request_id;
  if (!result.ok()) {
    reply.code = result.status().code();
    reply.message = result.status().message();
    return reply;
  }
  reply.code = StatusCode::kOk;
  reply.found = result->found;
  if (result->found) {
    reply.length_m = result->path.length_m();
    reply.departure_seconds = result->path.departure_seconds();
    reply.steps = result->path.steps();
  }
  // Family payloads: empty for point-to-point answers (and cost
  // nothing there); a kTemporalReply frame carries them verbatim. The
  // legs of a found == false multi-stop answer (the routed prefix) are
  // included deliberately — the contract keeps the prefix.
  reply.reachable = result->reachable;
  reply.legs.reserve(result->legs.size());
  for (const Path& leg : result->legs) {
    WireLeg wire_leg;
    wire_leg.length_m = leg.length_m();
    wire_leg.departure_seconds = leg.departure_seconds();
    wire_leg.steps = leg.steps();
    reply.legs.push_back(std::move(wire_leg));
  }
  return reply;
}

WireStats MakeWireStats(const ServiceStats& stats) {
  WireStats wire;
  wire.submitted = stats.submitted;
  wire.served = stats.served;
  wire.shed = stats.shed_displaced + stats.shed_infeasible;
  wire.rejected = stats.rejected_queue_full + stats.rejected_expired +
                  stats.rejected_invalid + stats.rejected_shutdown;
  wire.timed_out = stats.timed_out_in_queue + stats.timed_out_in_flight;
  for (size_t i = 0; i < kNumQosClasses; ++i) {
    wire.served_by_class[i] = stats.served_by_class[i];
    wire.shed_by_class[i] = stats.shed_by_class[i];
  }
  wire.p50_micros = stats.latency.P50();
  wire.p99_micros = stats.latency.P99();
  return wire;
}

namespace {

void PutQueryCommon(WireWriter& w, const WireQuery& query) {
  w.PutU64(query.request_id);
  w.PutI32(query.venue_id);
  w.PutU8(static_cast<uint8_t>(query.qos));
  uint8_t flags = 0;
  if (query.use_snapshot_cache) flags |= 1u;
  if (query.partition_visited_pruning) flags |= 2u;
  w.PutU8(flags);
  w.PutF64(query.deadline_micros);
  w.PutF64(query.source_x);
  w.PutF64(query.source_y);
  w.PutI32(query.source_floor);
  w.PutF64(query.target_x);
  w.PutF64(query.target_y);
  w.PutI32(query.target_floor);
  w.PutF64(query.departure_seconds);
}

Status GetQueryCommon(WireReader& r, WireQuery* query) {
  uint8_t qos_byte = 0;
  uint8_t flags = 0;
  if (!r.GetU64(&query->request_id)) return Truncated("query request_id");
  if (!r.GetI32(&query->venue_id)) return Truncated("query venue_id");
  if (!r.GetU8(&qos_byte)) return Truncated("query qos");
  if (qos_byte >= kNumQosClasses) {
    return InvalidArgumentError("unknown QoS class byte " +
                                std::to_string(qos_byte));
  }
  query->qos = static_cast<QosClass>(qos_byte);
  if (!r.GetU8(&flags)) return Truncated("query flags");
  query->use_snapshot_cache = (flags & 1u) != 0;
  query->partition_visited_pruning = (flags & 2u) != 0;
  if (!r.GetF64(&query->deadline_micros)) return Truncated("query deadline");
  // NaN would read as "no deadline" in every admission comparison and a
  // negative budget is meaningless; both are peer bugs, stopped at the
  // edge before they can reach Submit.
  if (std::isnan(query->deadline_micros) || query->deadline_micros < 0) {
    return InvalidArgumentError("query deadline_micros is NaN or negative");
  }
  if (!r.GetF64(&query->source_x) || !r.GetF64(&query->source_y) ||
      !r.GetI32(&query->source_floor)) {
    return Truncated("query source point");
  }
  if (!r.GetF64(&query->target_x) || !r.GetF64(&query->target_y) ||
      !r.GetI32(&query->target_floor)) {
    return Truncated("query target point");
  }
  if (!r.GetF64(&query->departure_seconds)) return Truncated("query departure");
  // A NaN/inf departure is the same class of peer bug as a NaN
  // deadline: it would sail through WrapTimeOfDay into the search and
  // come back as a silent found == false. Stopped at the edge so the
  // wire fails exactly like a local Route() call (kInvalidArgument).
  if (!std::isfinite(query->departure_seconds)) {
    return InvalidArgumentError("query departure_seconds is not finite");
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeQueryFrame(const WireQuery& query) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kQuery));
  PutQueryCommon(w, query);
  return std::move(w).Frame();
}

Status DecodeQueryBody(std::string_view body, WireQuery* query) {
  WireReader r(body);
  Status common = GetQueryCommon(r, query);
  if (!common.ok()) return common;
  return CheckDrained(r, "query");
}

std::string EncodeTemporalQueryFrame(const WireQuery& query) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kTemporalQuery));
  PutQueryCommon(w, query);
  w.PutU8(static_cast<uint8_t>(query.kind));
  w.PutF64(query.budget_seconds);
  w.PutU32(query.k);
  w.PutU32(static_cast<uint32_t>(query.facilities.size()));
  for (DoorId door : query.facilities) w.PutI32(door);
  w.PutU32(static_cast<uint32_t>(query.waypoints.size()));
  for (const IndoorPoint& p : query.waypoints) {
    w.PutF64(p.p.x);
    w.PutF64(p.p.y);
    w.PutI32(p.floor);
  }
  return std::move(w).Frame();
}

Status DecodeTemporalQueryBody(std::string_view body, WireQuery* query) {
  WireReader r(body);
  Status common = GetQueryCommon(r, query);
  if (!common.ok()) return common;
  uint8_t kind_byte = 0;
  if (!r.GetU8(&kind_byte)) return Truncated("temporal query kind");
  if (kind_byte >= kNumQueryKinds) {
    return InvalidArgumentError("unknown query kind byte " +
                                std::to_string(kind_byte));
  }
  query->kind = static_cast<QueryKind>(kind_byte);
  if (!r.GetF64(&query->budget_seconds)) {
    return Truncated("temporal query budget");
  }
  // Structural sanity only — semantic checks (k >= 1, doors in range)
  // are the router's and fail per-query, not per-connection. A NaN/inf
  // budget, like a NaN deadline, poisons comparisons and is stopped
  // here.
  if (query->kind == QueryKind::kReachability &&
      !std::isfinite(query->budget_seconds)) {
    return InvalidArgumentError(
        "temporal query budget_seconds is not finite");
  }
  if (!r.GetU32(&query->k)) return Truncated("temporal query k");
  uint32_t num_facilities = 0;
  if (!r.GetU32(&num_facilities)) return Truncated("temporal facility count");
  if (num_facilities > kMaxWireFacilities) {
    return InvalidArgumentError(
        "temporal query claims " + std::to_string(num_facilities) +
        " facilities (limit " + std::to_string(kMaxWireFacilities) + ")");
  }
  // 4 bytes per facility door id; bound before the reserve so a short
  // hostile frame cannot trigger a large allocation.
  if (r.Remaining() < static_cast<size_t>(num_facilities) * 4) {
    return Truncated("temporal facility doors");
  }
  query->facilities.clear();
  query->facilities.reserve(num_facilities);
  for (uint32_t i = 0; i < num_facilities; ++i) {
    DoorId door = 0;
    if (!r.GetI32(&door)) return Truncated("temporal facility door");
    query->facilities.push_back(door);
  }
  uint32_t num_waypoints = 0;
  if (!r.GetU32(&num_waypoints)) return Truncated("temporal waypoint count");
  if (num_waypoints > kMaxWireWaypoints) {
    return InvalidArgumentError(
        "temporal query claims " + std::to_string(num_waypoints) +
        " waypoints (limit " + std::to_string(kMaxWireWaypoints) + ")");
  }
  // 20 bytes per waypoint (x, y, floor).
  if (r.Remaining() < static_cast<size_t>(num_waypoints) * 20) {
    return Truncated("temporal waypoints");
  }
  query->waypoints.clear();
  query->waypoints.reserve(num_waypoints);
  for (uint32_t i = 0; i < num_waypoints; ++i) {
    IndoorPoint p;
    if (!r.GetF64(&p.p.x) || !r.GetF64(&p.p.y) || !r.GetI32(&p.floor)) {
      return Truncated("temporal waypoint");
    }
    query->waypoints.push_back(p);
  }
  return CheckDrained(r, "temporal query");
}

namespace {

void PutSteps(WireWriter& w, const std::vector<PathStep>& steps) {
  w.PutU32(static_cast<uint32_t>(steps.size()));
  for (const PathStep& step : steps) {
    w.PutI32(step.door);
    w.PutF64(step.cumulative_m);
    w.PutF64(step.arrival_seconds);
  }
}

Status GetSteps(WireReader& r, std::vector<PathStep>* steps,
                const char* what) {
  uint32_t num_steps = 0;
  if (!r.GetU32(&num_steps)) return Truncated(what);
  if (num_steps > kMaxWireSteps) {
    return InvalidArgumentError("reply claims " + std::to_string(num_steps) +
                                " path steps (limit " +
                                std::to_string(kMaxWireSteps) + ")");
  }
  // Each step is 20 bytes on the wire; a count exceeding the remaining
  // bytes is caught here, before the reserve, so a short hostile frame
  // cannot make the decoder allocate for steps it never sent.
  if (r.Remaining() < static_cast<size_t>(num_steps) * 20) {
    return Truncated(what);
  }
  steps->clear();
  steps->reserve(num_steps);
  for (uint32_t i = 0; i < num_steps; ++i) {
    PathStep step;
    if (!r.GetI32(&step.door) || !r.GetF64(&step.cumulative_m) ||
        !r.GetF64(&step.arrival_seconds)) {
      return Truncated(what);
    }
    steps->push_back(step);
  }
  return Status::Ok();
}

Status GetReplyCommon(WireReader& r, WireReply* reply) {
  uint8_t code_byte = 0;
  uint8_t found_byte = 0;
  if (!r.GetU64(&reply->request_id)) return Truncated("reply request_id");
  if (!r.GetU8(&code_byte)) return Truncated("reply status code");
  if (!StatusCodeFromWire(code_byte, &reply->code)) {
    return InvalidArgumentError("unknown status code byte " +
                                std::to_string(code_byte));
  }
  if (!r.GetString(&reply->message)) return Truncated("reply message");
  if (!r.GetU8(&found_byte)) return Truncated("reply found flag");
  reply->found = found_byte != 0;
  if (!r.GetF64(&reply->length_m)) return Truncated("reply length");
  if (!r.GetF64(&reply->departure_seconds)) return Truncated("reply departure");
  return GetSteps(r, &reply->steps, "reply path steps");
}

}  // namespace

std::string EncodeReplyFrame(const WireReply& reply, MsgType type) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(reply.request_id);
  w.PutU8(StatusCodeToWire(reply.code));
  w.PutString(reply.message);
  w.PutU8(reply.found ? 1 : 0);
  w.PutF64(reply.length_m);
  w.PutF64(reply.departure_seconds);
  PutSteps(w, reply.steps);
  if (type == MsgType::kTemporalReply) {
    w.PutU32(static_cast<uint32_t>(reply.reachable.size()));
    for (const ReachableDoor& door : reply.reachable) {
      w.PutI32(door.door);
      w.PutF64(door.distance_m);
      w.PutF64(door.arrival_seconds);
    }
    w.PutU32(static_cast<uint32_t>(reply.legs.size()));
    for (const WireLeg& leg : reply.legs) {
      w.PutF64(leg.length_m);
      w.PutF64(leg.departure_seconds);
      PutSteps(w, leg.steps);
    }
  }
  return std::move(w).Frame();
}

Status DecodeReplyBody(std::string_view body, WireReply* reply) {
  WireReader r(body);
  Status common = GetReplyCommon(r, reply);
  if (!common.ok()) return common;
  return CheckDrained(r, "reply");
}

Status DecodeTemporalReplyBody(std::string_view body, WireReply* reply) {
  WireReader r(body);
  Status common = GetReplyCommon(r, reply);
  if (!common.ok()) return common;
  uint32_t num_reachable = 0;
  if (!r.GetU32(&num_reachable)) return Truncated("reply reachable count");
  if (num_reachable > kMaxWireReachable) {
    return InvalidArgumentError(
        "reply claims " + std::to_string(num_reachable) +
        " reachable doors (limit " + std::to_string(kMaxWireReachable) + ")");
  }
  // 20 bytes per reachable entry (door, distance, arrival).
  if (r.Remaining() < static_cast<size_t>(num_reachable) * 20) {
    return Truncated("reply reachable doors");
  }
  reply->reachable.clear();
  reply->reachable.reserve(num_reachable);
  for (uint32_t i = 0; i < num_reachable; ++i) {
    ReachableDoor door;
    if (!r.GetI32(&door.door) || !r.GetF64(&door.distance_m) ||
        !r.GetF64(&door.arrival_seconds)) {
      return Truncated("reply reachable door");
    }
    reply->reachable.push_back(door);
  }
  uint32_t num_legs = 0;
  if (!r.GetU32(&num_legs)) return Truncated("reply leg count");
  if (num_legs > kMaxWireLegs) {
    return InvalidArgumentError("reply claims " + std::to_string(num_legs) +
                                " legs (limit " +
                                std::to_string(kMaxWireLegs) + ")");
  }
  // A leg is at least 20 bytes (length, departure, empty step count);
  // the per-leg step decode re-checks its own count against what
  // actually remains.
  if (r.Remaining() < static_cast<size_t>(num_legs) * 20) {
    return Truncated("reply legs");
  }
  reply->legs.clear();
  reply->legs.reserve(num_legs);
  for (uint32_t i = 0; i < num_legs; ++i) {
    WireLeg leg;
    if (!r.GetF64(&leg.length_m) || !r.GetF64(&leg.departure_seconds)) {
      return Truncated("reply leg");
    }
    Status steps = GetSteps(r, &leg.steps, "reply leg steps");
    if (!steps.ok()) return steps;
    reply->legs.push_back(std::move(leg));
  }
  return CheckDrained(r, "temporal reply");
}

std::string EncodeStatsReplyFrame(const WireStats& stats) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kStatsReply));
  w.PutU64(stats.submitted);
  w.PutU64(stats.served);
  w.PutU64(stats.shed);
  w.PutU64(stats.rejected);
  w.PutU64(stats.timed_out);
  for (size_t i = 0; i < kNumQosClasses; ++i) {
    w.PutU64(stats.served_by_class[i]);
  }
  for (size_t i = 0; i < kNumQosClasses; ++i) {
    w.PutU64(stats.shed_by_class[i]);
  }
  w.PutF64(stats.p50_micros);
  w.PutF64(stats.p99_micros);
  return std::move(w).Frame();
}

Status DecodeStatsReplyBody(std::string_view body, WireStats* stats) {
  WireReader r(body);
  if (!r.GetU64(&stats->submitted) || !r.GetU64(&stats->served) ||
      !r.GetU64(&stats->shed) || !r.GetU64(&stats->rejected) ||
      !r.GetU64(&stats->timed_out)) {
    return Truncated("stats totals");
  }
  for (size_t i = 0; i < kNumQosClasses; ++i) {
    if (!r.GetU64(&stats->served_by_class[i])) {
      return Truncated("stats served_by_class");
    }
  }
  for (size_t i = 0; i < kNumQosClasses; ++i) {
    if (!r.GetU64(&stats->shed_by_class[i])) {
      return Truncated("stats shed_by_class");
    }
  }
  if (!r.GetF64(&stats->p50_micros) || !r.GetF64(&stats->p99_micros)) {
    return Truncated("stats percentiles");
  }
  return CheckDrained(r, "stats");
}

std::string EncodeEmptyFrame(MsgType type) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(type));
  return std::move(w).Frame();
}

Status DecodeFrameHeader(std::string_view payload, MsgType* type,
                         std::string_view* body) {
  if (payload.empty()) {
    return InvalidArgumentError("empty frame payload (no message type)");
  }
  const uint8_t type_byte = static_cast<uint8_t>(payload[0]);
  if (type_byte < static_cast<uint8_t>(MsgType::kQuery) ||
      type_byte > static_cast<uint8_t>(MsgType::kTemporalReply)) {
    return InvalidArgumentError("unknown message type byte " +
                                std::to_string(type_byte));
  }
  *type = static_cast<MsgType>(type_byte);
  *body = payload.substr(1);
  return Status::Ok();
}

}  // namespace net
}  // namespace itspq

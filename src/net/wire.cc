#include "net/wire.h"

#include <cmath>
#include <cstring>

namespace itspq {
namespace net {
namespace {

// ---------------------------------------------------------------------
// Little-endian primitive writers over a growing string buffer.

class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutRaw(&v, sizeof v); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof v); }
  void PutI32(int32_t v) { PutRaw(&v, sizeof v); }
  void PutF64(double v) { PutRaw(&v, sizeof v); }

  void PutString(std::string_view s) {
    if (s.size() > kMaxWireString) s = s.substr(0, kMaxWireString);
    PutU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  /// Seals the frame: prefixes the accumulated payload with its length.
  std::string Frame() && {
    const uint32_t len = static_cast<uint32_t>(buf_.size());
    std::string frame;
    frame.reserve(sizeof len + buf_.size());
    frame.append(reinterpret_cast<const char*>(&len), sizeof len);
    frame += buf_;
    return frame;
  }

 private:
  void PutRaw(const void* p, size_t n) {
    buf_.append(reinterpret_cast<const char*>(p), n);
  }

  std::string buf_;
};

// ---------------------------------------------------------------------
// Bounds-checked little-endian readers over a frame body. Every getter
// returns false once the body runs short; the caller converts that into
// one precise truncation Status so a hostile frame can never read past
// the buffer.

class WireReader {
 public:
  explicit WireReader(std::string_view body) : rest_(body) {}

  bool GetU8(uint8_t* v) { return GetRaw(v, sizeof *v); }
  bool GetU32(uint32_t* v) { return GetRaw(v, sizeof *v); }
  bool GetU64(uint64_t* v) { return GetRaw(v, sizeof *v); }
  bool GetI32(int32_t* v) { return GetRaw(v, sizeof *v); }
  bool GetF64(double* v) { return GetRaw(v, sizeof *v); }

  /// False on a truncated count, a count beyond kMaxWireString, or
  /// fewer bytes remaining than the count claims.
  bool GetString(std::string* s) {
    uint32_t n = 0;
    if (!GetU32(&n)) return false;
    if (n > kMaxWireString || n > rest_.size()) return false;
    s->assign(rest_.data(), n);
    rest_.remove_prefix(n);
    return true;
  }

  bool Empty() const { return rest_.empty(); }
  size_t Remaining() const { return rest_.size(); }

 private:
  bool GetRaw(void* v, size_t n) {
    if (rest_.size() < n) return false;
    std::memcpy(v, rest_.data(), n);
    rest_.remove_prefix(n);
    return true;
  }

  std::string_view rest_;
};

Status Truncated(const char* what) {
  return InvalidArgumentError(std::string("truncated frame: ") + what);
}

/// Decoded frames must consume their body exactly — trailing bytes mean
/// the peer speaks a different (newer? hostile?) layout, and silently
/// ignoring them would mask the skew.
Status CheckDrained(const WireReader& reader, const char* what) {
  if (reader.Empty()) return Status::Ok();
  return InvalidArgumentError(std::string(what) + ": " +
                              std::to_string(reader.Remaining()) +
                              " trailing bytes after body");
}

}  // namespace

QueryRequest ToQueryRequest(const WireQuery& wire) {
  QueryRequest request;
  request.venue_id = wire.venue_id;
  request.source.p.x = wire.source_x;
  request.source.p.y = wire.source_y;
  request.source.floor = wire.source_floor;
  request.target.p.x = wire.target_x;
  request.target.p.y = wire.target_y;
  request.target.floor = wire.target_floor;
  request.departure = Instant(wire.departure_seconds);
  request.options.use_snapshot_cache = wire.use_snapshot_cache;
  request.options.partition_visited_pruning = wire.partition_visited_pruning;
  return request;
}

WireQuery FromQueryRequest(const QueryRequest& request, uint64_t request_id,
                           QosClass qos, double deadline_micros) {
  WireQuery wire;
  wire.request_id = request_id;
  wire.venue_id = request.venue_id;
  wire.qos = qos;
  wire.deadline_micros = deadline_micros;
  wire.use_snapshot_cache = request.options.use_snapshot_cache;
  wire.partition_visited_pruning = request.options.partition_visited_pruning;
  wire.source_x = request.source.p.x;
  wire.source_y = request.source.p.y;
  wire.source_floor = request.source.floor;
  wire.target_x = request.target.p.x;
  wire.target_y = request.target.p.y;
  wire.target_floor = request.target.floor;
  wire.departure_seconds = request.departure.seconds();
  return wire;
}

WireReply MakeReply(uint64_t request_id, const StatusOr<QueryResult>& result) {
  WireReply reply;
  reply.request_id = request_id;
  if (!result.ok()) {
    reply.code = result.status().code();
    reply.message = result.status().message();
    return reply;
  }
  reply.code = StatusCode::kOk;
  reply.found = result->found;
  if (result->found) {
    reply.length_m = result->path.length_m();
    reply.departure_seconds = result->path.departure_seconds();
    reply.steps = result->path.steps();
  }
  return reply;
}

WireStats MakeWireStats(const ServiceStats& stats) {
  WireStats wire;
  wire.submitted = stats.submitted;
  wire.served = stats.served;
  wire.shed = stats.shed_displaced + stats.shed_infeasible;
  wire.rejected = stats.rejected_queue_full + stats.rejected_expired +
                  stats.rejected_invalid + stats.rejected_shutdown;
  wire.timed_out = stats.timed_out_in_queue + stats.timed_out_in_flight;
  for (size_t i = 0; i < kNumQosClasses; ++i) {
    wire.served_by_class[i] = stats.served_by_class[i];
    wire.shed_by_class[i] = stats.shed_by_class[i];
  }
  wire.p50_micros = stats.latency.P50();
  wire.p99_micros = stats.latency.P99();
  return wire;
}

std::string EncodeQueryFrame(const WireQuery& query) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kQuery));
  w.PutU64(query.request_id);
  w.PutI32(query.venue_id);
  w.PutU8(static_cast<uint8_t>(query.qos));
  uint8_t flags = 0;
  if (query.use_snapshot_cache) flags |= 1u;
  if (query.partition_visited_pruning) flags |= 2u;
  w.PutU8(flags);
  w.PutF64(query.deadline_micros);
  w.PutF64(query.source_x);
  w.PutF64(query.source_y);
  w.PutI32(query.source_floor);
  w.PutF64(query.target_x);
  w.PutF64(query.target_y);
  w.PutI32(query.target_floor);
  w.PutF64(query.departure_seconds);
  return std::move(w).Frame();
}

Status DecodeQueryBody(std::string_view body, WireQuery* query) {
  WireReader r(body);
  uint8_t qos_byte = 0;
  uint8_t flags = 0;
  if (!r.GetU64(&query->request_id)) return Truncated("query request_id");
  if (!r.GetI32(&query->venue_id)) return Truncated("query venue_id");
  if (!r.GetU8(&qos_byte)) return Truncated("query qos");
  if (qos_byte >= kNumQosClasses) {
    return InvalidArgumentError("unknown QoS class byte " +
                                std::to_string(qos_byte));
  }
  query->qos = static_cast<QosClass>(qos_byte);
  if (!r.GetU8(&flags)) return Truncated("query flags");
  query->use_snapshot_cache = (flags & 1u) != 0;
  query->partition_visited_pruning = (flags & 2u) != 0;
  if (!r.GetF64(&query->deadline_micros)) return Truncated("query deadline");
  // NaN would read as "no deadline" in every admission comparison and a
  // negative budget is meaningless; both are peer bugs, stopped at the
  // edge before they can reach Submit.
  if (std::isnan(query->deadline_micros) || query->deadline_micros < 0) {
    return InvalidArgumentError("query deadline_micros is NaN or negative");
  }
  if (!r.GetF64(&query->source_x) || !r.GetF64(&query->source_y) ||
      !r.GetI32(&query->source_floor)) {
    return Truncated("query source point");
  }
  if (!r.GetF64(&query->target_x) || !r.GetF64(&query->target_y) ||
      !r.GetI32(&query->target_floor)) {
    return Truncated("query target point");
  }
  if (!r.GetF64(&query->departure_seconds)) return Truncated("query departure");
  return CheckDrained(r, "query");
}

std::string EncodeReplyFrame(const WireReply& reply, MsgType type) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(type));
  w.PutU64(reply.request_id);
  w.PutU8(StatusCodeToWire(reply.code));
  w.PutString(reply.message);
  w.PutU8(reply.found ? 1 : 0);
  w.PutF64(reply.length_m);
  w.PutF64(reply.departure_seconds);
  w.PutU32(static_cast<uint32_t>(reply.steps.size()));
  for (const PathStep& step : reply.steps) {
    w.PutI32(step.door);
    w.PutF64(step.cumulative_m);
    w.PutF64(step.arrival_seconds);
  }
  return std::move(w).Frame();
}

Status DecodeReplyBody(std::string_view body, WireReply* reply) {
  WireReader r(body);
  uint8_t code_byte = 0;
  uint8_t found_byte = 0;
  uint32_t num_steps = 0;
  if (!r.GetU64(&reply->request_id)) return Truncated("reply request_id");
  if (!r.GetU8(&code_byte)) return Truncated("reply status code");
  if (!StatusCodeFromWire(code_byte, &reply->code)) {
    return InvalidArgumentError("unknown status code byte " +
                                std::to_string(code_byte));
  }
  if (!r.GetString(&reply->message)) return Truncated("reply message");
  if (!r.GetU8(&found_byte)) return Truncated("reply found flag");
  reply->found = found_byte != 0;
  if (!r.GetF64(&reply->length_m)) return Truncated("reply length");
  if (!r.GetF64(&reply->departure_seconds)) return Truncated("reply departure");
  if (!r.GetU32(&num_steps)) return Truncated("reply step count");
  if (num_steps > kMaxWireSteps) {
    return InvalidArgumentError("reply claims " + std::to_string(num_steps) +
                                " path steps (limit " +
                                std::to_string(kMaxWireSteps) + ")");
  }
  // Each step is 20 bytes on the wire; a count exceeding the remaining
  // bytes is caught here, before the reserve, so a short hostile frame
  // cannot make the decoder allocate for steps it never sent.
  if (r.Remaining() < static_cast<size_t>(num_steps) * 20) {
    return Truncated("reply path steps");
  }
  reply->steps.clear();
  reply->steps.reserve(num_steps);
  for (uint32_t i = 0; i < num_steps; ++i) {
    PathStep step;
    if (!r.GetI32(&step.door) || !r.GetF64(&step.cumulative_m) ||
        !r.GetF64(&step.arrival_seconds)) {
      return Truncated("reply path step");
    }
    reply->steps.push_back(step);
  }
  return CheckDrained(r, "reply");
}

std::string EncodeStatsReplyFrame(const WireStats& stats) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(MsgType::kStatsReply));
  w.PutU64(stats.submitted);
  w.PutU64(stats.served);
  w.PutU64(stats.shed);
  w.PutU64(stats.rejected);
  w.PutU64(stats.timed_out);
  for (size_t i = 0; i < kNumQosClasses; ++i) {
    w.PutU64(stats.served_by_class[i]);
  }
  for (size_t i = 0; i < kNumQosClasses; ++i) {
    w.PutU64(stats.shed_by_class[i]);
  }
  w.PutF64(stats.p50_micros);
  w.PutF64(stats.p99_micros);
  return std::move(w).Frame();
}

Status DecodeStatsReplyBody(std::string_view body, WireStats* stats) {
  WireReader r(body);
  if (!r.GetU64(&stats->submitted) || !r.GetU64(&stats->served) ||
      !r.GetU64(&stats->shed) || !r.GetU64(&stats->rejected) ||
      !r.GetU64(&stats->timed_out)) {
    return Truncated("stats totals");
  }
  for (size_t i = 0; i < kNumQosClasses; ++i) {
    if (!r.GetU64(&stats->served_by_class[i])) {
      return Truncated("stats served_by_class");
    }
  }
  for (size_t i = 0; i < kNumQosClasses; ++i) {
    if (!r.GetU64(&stats->shed_by_class[i])) {
      return Truncated("stats shed_by_class");
    }
  }
  if (!r.GetF64(&stats->p50_micros) || !r.GetF64(&stats->p99_micros)) {
    return Truncated("stats percentiles");
  }
  return CheckDrained(r, "stats");
}

std::string EncodeEmptyFrame(MsgType type) {
  WireWriter w;
  w.PutU8(static_cast<uint8_t>(type));
  return std::move(w).Frame();
}

Status DecodeFrameHeader(std::string_view payload, MsgType* type,
                         std::string_view* body) {
  if (payload.empty()) {
    return InvalidArgumentError("empty frame payload (no message type)");
  }
  const uint8_t type_byte = static_cast<uint8_t>(payload[0]);
  if (type_byte < static_cast<uint8_t>(MsgType::kQuery) ||
      type_byte > static_cast<uint8_t>(MsgType::kError)) {
    return InvalidArgumentError("unknown message type byte " +
                                std::to_string(type_byte));
  }
  *type = static_cast<MsgType>(type_byte);
  *body = payload.substr(1);
  return Status::Ok();
}

}  // namespace net
}  // namespace itspq

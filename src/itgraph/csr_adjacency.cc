#include "itgraph/csr_adjacency.h"

#include "venue/venue.h"

namespace itspq {

CsrAdjacency CsrAdjacency::Compile(const Venue& venue) {
  CsrAdjacency adj;
  const size_t n = venue.NumDoors();
  adj.num_doors = n;
  adj.seg_offsets.reserve(2 * n + 1);
  adj.seg_partition.reserve(2 * n);

  size_t total = 0;
  for (size_t d = 0; d < n; ++d) {
    for (PartitionId p : venue.door(static_cast<DoorId>(d)).partitions) {
      total += venue.DoorsOf(p).size() - 1;  // every partition door but d
    }
  }
  adj.neighbor_ids.reserve(total);
  adj.neighbor_weights.reserve(total);

  adj.seg_offsets.push_back(0);
  for (size_t d = 0; d < n; ++d) {
    const DoorId door = static_cast<DoorId>(d);
    for (PartitionId p : venue.door(door).partitions) {
      const DistanceMatrix& dm = venue.distance_matrix(p);
      for (DoorId v : venue.DoorsOf(p)) {
        if (v == door) continue;
        const double w = dm.DistanceUnchecked(door, v);
        adj.neighbor_ids.push_back(static_cast<uint32_t>(v));
        adj.neighbor_weights.push_back(w);
        if (w < adj.min_edge_weight) adj.min_edge_weight = w;
        if (w > adj.max_edge_weight) adj.max_edge_weight = w;
      }
      adj.seg_partition.push_back(p);
      adj.seg_offsets.push_back(
          static_cast<uint32_t>(adj.neighbor_ids.size()));
    }
  }
  return adj;
}

}  // namespace itspq

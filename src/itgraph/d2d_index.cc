#include "itgraph/d2d_index.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/rng.h"
#include "itgraph/door_search.h"
#include "itgraph/graph_update.h"

namespace itspq {

StatusOr<D2dIndex> D2dIndex::Build(const ItGraph& graph) {
  const size_t n = graph.NumDoors();
  if (n == 0) {
    return FailedPreconditionError("cannot build D2D index: graph is empty");
  }
  D2dIndex index(graph);
  index.num_doors_ = n;
  index.matrix_.assign(n * n, internal::kInfDistance);
  for (size_t from = 0; from < n; ++from) {
    const internal::DoorSearchResult result = internal::DoorDijkstra(
        graph, {{static_cast<DoorId>(from), 0.0}}, nullptr);
    for (size_t to = 0; to < n; ++to) {
      index.matrix_[from * n + to] = result.Dist(to);
    }
  }
  index.checkpoints_ = CheckpointSet::FromGraph(graph);
  return index;
}

StatusOr<D2dAnswer> D2dIndex::Query(const IndoorPoint& ps,
                                    const IndoorPoint& pt) const {
  const Venue& venue = graph_->venue();
  auto src = internal::AttachPoint(venue, ps);
  if (!src.ok()) return src.status();
  auto dst = internal::AttachPoint(venue, pt);
  if (!dst.ok()) return dst.status();

  const auto [best, entry_door] = internal::BestCompletion(
      *src, *dst, ps.p, pt.p, [&](DoorId target_door) {
        double to_door = internal::kInfDistance;
        for (const auto& [sd, so] : src->door_offsets) {
          to_door = std::min(to_door, so + DoorDistance(sd, target_door));
        }
        return to_door;
      });
  (void)entry_door;

  D2dAnswer answer;
  answer.found = std::isfinite(best);
  answer.distance_m = answer.found ? best : 0.0;
  return answer;
}

D2dIndex::Staleness D2dIndex::SampleStaleness(Instant t, size_t samples,
                                              uint64_t seed) const {
  Staleness staleness;
  const size_t n = num_doors_;
  if (n < 2) return staleness;

  const GraphSnapshot snapshot = BuildSnapshot(
      *graph_, checkpoints_, checkpoints_.IntervalIndexOf(t.TimeOfDay()));

  Rng rng(seed);
  size_t attempts = 0;
  // Sample materialised (finite) entries; bound attempts so a venue with
  // few reachable pairs cannot loop forever.
  while (staleness.sampled < samples && attempts < samples * 50) {
    ++attempts;
    const DoorId from = static_cast<DoorId>(rng.UniformIndex(n));
    const DoorId to = static_cast<DoorId>(rng.UniformIndex(n));
    if (from == to) continue;
    const double materialized = DoorDistance(from, to);
    if (!std::isfinite(materialized)) continue;
    ++staleness.sampled;

    if (!snapshot.IsOpen(from) || !snapshot.IsOpen(to)) {
      ++staleness.unreachable;
      continue;
    }
    const internal::DoorSearchResult now =
        internal::DoorDijkstra(*graph_, {{from, 0.0}}, &snapshot.open);
    const double current = now.Dist(static_cast<size_t>(to));
    if (!std::isfinite(current)) {
      ++staleness.unreachable;
    } else if (std::abs(current - materialized) > 1e-6) {
      ++staleness.changed;
    }
  }
  return staleness;
}

}  // namespace itspq

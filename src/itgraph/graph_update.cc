#include "itgraph/graph_update.h"

namespace itspq {

GraphSnapshot BuildSnapshot(const ItGraph& graph, const CheckpointSet& cps,
                            size_t interval_index) {
  GraphSnapshot snap;
  snap.interval_index = interval_index;
  const size_t n = graph.NumDoors();
  snap.open.assign(n, 0);
  const double probe = cps.IntervalMidpoint(interval_index);
  for (size_t d = 0; d < n; ++d) {
    if (graph.Ati(static_cast<DoorId>(d)).ContainsTimeOfDay(probe)) {
      snap.open[d] = 1;
      ++snap.open_door_count;
    }
  }
  return snap;
}

}  // namespace itspq

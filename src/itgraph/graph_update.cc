#include "itgraph/graph_update.h"

#include <cassert>
#include <cstdlib>

namespace itspq {

GraphSnapshot BuildSnapshot(const ItGraph& graph, const CheckpointSet& cps,
                            size_t interval_index) {
  GraphSnapshot snap;
  snap.interval_index = interval_index;
  const size_t n = graph.NumDoors();
  snap.open = DoorMask(n);
  const double probe = cps.IntervalMidpoint(interval_index);
  // Membership via the graph's flat ATI rows: one linear pass over two
  // contiguous pools instead of a pointer chase into each door's
  // AtiSet. Same normalised-interval logic, same answers.
  for (size_t d = 0; d < n; ++d) {
    if (graph.AtiContainsTimeOfDay(static_cast<DoorId>(d), probe)) {
      snap.open.Set(static_cast<DoorId>(d));
      ++snap.open_door_count;
    }
  }
  return snap;
}

GraphSnapshot BuildSnapshotDelta(const ItGraph& graph,
                                 const CheckpointSet& cps,
                                 const BoundaryFlipIndex& flips,
                                 const GraphSnapshot& from,
                                 size_t to_interval,
                                 size_t* doors_touched) {
  const size_t from_interval = from.interval_index;
  assert(to_interval < cps.NumIntervals());
  // The flip list is only exact across one shared boundary; for any
  // other (from, to) pair the delta would silently produce a wrong
  // mask, so guard unconditionally and fall back to the from-G0 build.
  if (from_interval + 1 != to_interval && to_interval + 1 != from_interval) {
    assert(false && "delta source must be an adjacent interval");
    if (doors_touched != nullptr) *doors_touched = graph.NumDoors();
    return BuildSnapshot(graph, cps, to_interval);
  }
  // Boundary b separates intervals b and b+1, so the shared boundary of
  // two adjacent intervals is the smaller index.
  const size_t boundary =
      from_interval < to_interval ? from_interval : to_interval;

  GraphSnapshot snap;
  snap.interval_index = to_interval;
  snap.open = from.open;
  snap.open_door_count = from.open_door_count;
  const DoorId* it = flips.FlipsBegin(boundary);
  const DoorId* end = flips.FlipsEnd(boundary);
  for (; it != end; ++it) {
    if (snap.open.Flip(*it)) {
      ++snap.open_door_count;
    } else {
      --snap.open_door_count;
    }
  }
  if (doors_touched != nullptr) *doors_touched = flips.NumFlips(boundary);
  return snap;
}

}  // namespace itspq

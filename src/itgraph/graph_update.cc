#include "itgraph/graph_update.h"

namespace itspq {

GraphSnapshot BuildSnapshot(const ItGraph& graph, const CheckpointSet& cps,
                            size_t interval_index) {
  GraphSnapshot snap;
  snap.interval_index = interval_index;
  const size_t n = graph.NumDoors();
  snap.open.assign(n, 0);
  const double probe = cps.IntervalMidpoint(interval_index);
  for (size_t d = 0; d < n; ++d) {
    if (graph.Ati(static_cast<DoorId>(d)).ContainsTimeOfDay(probe)) {
      snap.open[d] = 1;
      ++snap.open_door_count;
    }
  }
  return snap;
}

SnapshotCache::SnapshotCache(const ItGraph& graph, const CheckpointSet& cps)
    : graph_(&graph), cps_(&cps), slots_(cps.NumIntervals()) {
  // A value-initialised std::atomic is formally uninitialised in C++17 —
  // store explicitly.
  for (auto& slot : slots_) slot.store(nullptr, std::memory_order_relaxed);
}

SnapshotCache::~SnapshotCache() {
  for (auto& slot : slots_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

const GraphSnapshot& SnapshotCache::Get(size_t interval_index,
                                        bool* built_now) const {
  if (built_now != nullptr) *built_now = false;
  std::atomic<const GraphSnapshot*>& slot = slots_[interval_index];
  const GraphSnapshot* snap = slot.load(std::memory_order_acquire);
  if (snap == nullptr) {
    std::lock_guard<std::mutex> lock(build_mu_);
    snap = slot.load(std::memory_order_relaxed);
    if (snap == nullptr) {
      snap = new GraphSnapshot(BuildSnapshot(*graph_, *cps_, interval_index));
      slot.store(snap, std::memory_order_release);
      build_count_.fetch_add(1, std::memory_order_relaxed);
      if (built_now != nullptr) *built_now = true;
    }
  }
  return *snap;
}

size_t SnapshotCache::MemoryUsage() const {
  size_t total = slots_.capacity() * sizeof(slots_[0]);
  for (const auto& slot : slots_) {
    const GraphSnapshot* snap = slot.load(std::memory_order_acquire);
    if (snap != nullptr) total += sizeof(*snap) + snap->MemoryUsage();
  }
  return total;
}

}  // namespace itspq

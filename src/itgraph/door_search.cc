#include "itgraph/door_search.h"

#include <algorithm>
#include <queue>

namespace itspq {
namespace internal {

namespace {

struct HeapEntry {
  double dist;
  DoorId door;
  bool operator>(const HeapEntry& other) const { return dist > other.dist; }
};

}  // namespace

void DoorDijkstra(const ItGraph& graph,
                  const std::vector<std::pair<DoorId, double>>& sources,
                  const DoorMask* open_mask, DoorSearchResult* out) {
  const size_t n = graph.NumDoors();
  out->dist.assign(n, kInfDistance);
  out->parent.assign(n, kInvalidDoor);
  out->settled.assign(n, 0);
  std::vector<uint8_t>& settled = out->settled;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  for (const auto& [door, offset] : sources) {
    const size_t d = static_cast<size_t>(door);
    if (open_mask != nullptr && !open_mask->Test(door)) continue;
    if (offset < out->dist[d]) {
      out->dist[d] = offset;
      heap.push(HeapEntry{offset, door});
    }
  }

  const Venue& venue = graph.venue();
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const size_t u = static_cast<size_t>(top.door);
    if (settled[u]) continue;
    settled[u] = 1;

    for (PartitionId p : graph.DoorPartitions(top.door)) {
      const DistanceMatrix& dm = venue.distance_matrix(p);
      for (DoorId v : venue.DoorsOf(p)) {
        if (v == top.door) continue;
        const size_t vi = static_cast<size_t>(v);
        if (settled[vi]) continue;
        if (open_mask != nullptr && !open_mask->Test(v)) continue;
        const double nd = top.dist + dm.DistanceUnchecked(top.door, v);
        if (nd < out->dist[vi]) {
          out->dist[vi] = nd;
          out->parent[vi] = top.door;
          heap.push(HeapEntry{nd, v});
        }
      }
    }
  }
}

StatusOr<PointAttachment> AttachPoint(const Venue& venue,
                                      const IndoorPoint& point) {
  PointAttachment attachment;
  attachment.partitions = venue.LocateAll(point);
  if (attachment.partitions.empty()) {
    return InvalidArgumentError("point lies outside every partition");
  }
  for (PartitionId p : attachment.partitions) {
    for (DoorId d : venue.DoorsOf(p)) {
      attachment.door_offsets.emplace_back(
          d, EuclideanDistance(point.p, venue.door(d).pos));
    }
  }
  return attachment;
}

bool SharesPartition(const PointAttachment& a, const PointAttachment& b) {
  for (PartitionId pa : a.partitions) {
    if (std::find(b.partitions.begin(), b.partitions.end(), pa) !=
        b.partitions.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace internal
}  // namespace itspq

#include "itgraph/door_search.h"

#include <algorithm>

#include "itgraph/csr_adjacency.h"

namespace itspq {
namespace internal {

void DoorDijkstra(const ItGraph& graph,
                  const std::vector<std::pair<DoorId, double>>& sources,
                  const DoorMask* open_mask, DoorSearchResult* out) {
  const size_t n = graph.NumDoors();
  out->PrepareForSearch(n);

  const CsrAdjacency& adj = graph.adjacency();
  FrontierQueue& frontier = out->frontier;
  // Plain (time-oblivious) Dijkstra is pop-order independent within a
  // bucket when every edge weight covers the bucket width, so Dial's
  // queue is exact here whenever the graph's weights allow it.
  if (adj.BucketEligible()) {
    frontier.ResetBuckets(adj.min_edge_weight);
  } else {
    frontier.ResetHeap(FrontierQueue::Kind::kFourAryHeap);
  }

  for (const auto& [door, offset] : sources) {
    const size_t d = static_cast<size_t>(door);
    if (open_mask != nullptr && !open_mask->Test(door)) continue;
    if (offset < out->Dist(d)) {
      out->Label(d, offset, kInvalidDoor);
      frontier.Push(offset, static_cast<uint32_t>(door));
    }
  }

  double top_dist;
  uint32_t top_id;
  while (frontier.Pop(&top_dist, &top_id)) {
    const size_t u = top_id;
    if (out->Settled(u)) continue;
    out->settled_stamp[u] = out->generation;

    // Both CSR segments of u in one contiguous sweep (the per-segment
    // partition only matters for the pruned temporal search).
    const uint32_t begin = adj.seg_offsets[2 * u];
    const uint32_t end = adj.seg_offsets[2 * u + 2];
    const uint32_t* ids = adj.neighbor_ids.data() + begin;
    const double* weights = adj.neighbor_weights.data() + begin;
    auto relax = [&](size_t k) {
      const size_t vi = ids[k];
      if (out->Settled(vi)) return;
      const double nd = top_dist + weights[k];
      if (nd < out->Dist(vi)) {
        out->Label(vi, nd, static_cast<DoorId>(u));
        frontier.Push(nd, static_cast<uint32_t>(vi));
      }
    };
    if (open_mask != nullptr) {
      open_mask->ForEachSetAmong(ids, end - begin, relax);
    } else {
      for (size_t k = 0; k < end - begin; ++k) relax(k);
    }
  }
}

StatusOr<PointAttachment> AttachPoint(const Venue& venue,
                                      const IndoorPoint& point) {
  PointAttachment attachment;
  attachment.partitions = venue.LocateAll(point);
  if (attachment.partitions.empty()) {
    return InvalidArgumentError("point lies outside every partition");
  }
  for (PartitionId p : attachment.partitions) {
    for (DoorId d : venue.DoorsOf(p)) {
      attachment.door_offsets.emplace_back(
          d, EuclideanDistance(point.p, venue.door(d).pos));
    }
  }
  return attachment;
}

bool SharesPartition(const PointAttachment& a, const PointAttachment& b) {
  for (PartitionId pa : a.partitions) {
    if (std::find(b.partitions.begin(), b.partitions.end(), pa) !=
        b.partitions.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace internal
}  // namespace itspq

#include "itgraph/snapshot_store.h"

#include <algorithm>
#include <list>
#include <utility>

namespace itspq {

namespace {

/// Today's behaviour as a policy: everything stays resident, so a
/// budgeted store with "keep-all" simply stops evicting (the budget is
/// advisory) and an unbudgeted one is the old SnapshotCache.
class KeepAllPolicy : public EvictionPolicy {
 public:
  const std::string& name() const override {
    static const std::string kName = "keep-all";
    return kName;
  }
  void OnInsert(size_t) override {}
  void OnAccess(size_t) override {}
  void OnEvict(size_t) override {}
  bool ChooseVictim(size_t, size_t*) override { return false; }
};

/// Least-recently-used over Get() order (hits and inserts both count as
/// uses). Interval count is small (|T|+1), so a list + iterator table
/// is plenty.
class LruPolicy : public EvictionPolicy {
 public:
  explicit LruPolicy(size_t num_intervals)
      : where_(num_intervals, order_.end()) {}

  const std::string& name() const override {
    static const std::string kName = "lru";
    return kName;
  }

  void OnInsert(size_t interval) override { Touch(interval); }
  void OnAccess(size_t interval) override { Touch(interval); }

  void OnEvict(size_t interval) override {
    order_.erase(where_[interval]);
    where_[interval] = order_.end();
  }

  bool ChooseVictim(size_t protect, size_t* victim) override {
    // Oldest first; `protect` (at most one resident interval) is
    // skipped, so inspecting the back two suffices.
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      if (*it == protect) continue;
      *victim = *it;
      return true;
    }
    return false;
  }

 private:
  void Touch(size_t interval) {
    if (where_[interval] != order_.end()) order_.erase(where_[interval]);
    order_.push_front(interval);
    where_[interval] = order_.begin();
  }

  std::list<size_t> order_;  // front = most recent
  std::vector<std::list<size_t>::iterator> where_;
};

/// Second-chance clock: a hit sets the interval's reference bit; the
/// sweeping hand clears bits until it lands on an unreferenced resident
/// interval. Approximates LRU without per-access list surgery.
class ClockPolicy : public EvictionPolicy {
 public:
  explicit ClockPolicy(size_t num_intervals)
      : resident_(num_intervals, 0), referenced_(num_intervals, 0) {}

  const std::string& name() const override {
    static const std::string kName = "clock";
    return kName;
  }

  void OnInsert(size_t interval) override {
    resident_[interval] = 1;
    referenced_[interval] = 1;
  }
  void OnAccess(size_t interval) override { referenced_[interval] = 1; }
  void OnEvict(size_t interval) override {
    resident_[interval] = 0;
    referenced_[interval] = 0;
  }

  bool ChooseVictim(size_t protect, size_t* victim) override {
    const size_t n = resident_.size();
    // Two full sweeps bound the scan: the first may only be clearing
    // reference bits, the second must find an unreferenced interval.
    for (size_t step = 0; step < 2 * n; ++step) {
      const size_t at = hand_;
      hand_ = (hand_ + 1) % n;
      if (!resident_[at] || at == protect) continue;
      if (referenced_[at]) {
        referenced_[at] = 0;
        continue;
      }
      *victim = at;
      return true;
    }
    return false;
  }

 private:
  std::vector<uint8_t> resident_;
  std::vector<uint8_t> referenced_;
  size_t hand_ = 0;
};

/// Store ids start at 1 so 0 stays the "no pins held" sentinel in
/// SearchScratch::pinned_store_id.
std::atomic<uint64_t> g_next_store_id{1};

}  // namespace

StatusOr<std::unique_ptr<EvictionPolicy>> MakeEvictionPolicy(
    const std::string& name, size_t num_intervals) {
  if (name == "keep-all") {
    return std::unique_ptr<EvictionPolicy>(new KeepAllPolicy());
  }
  if (name == "lru") {
    return std::unique_ptr<EvictionPolicy>(new LruPolicy(num_intervals));
  }
  if (name == "clock") {
    return std::unique_ptr<EvictionPolicy>(new ClockPolicy(num_intervals));
  }
  return NotFoundError("unknown eviction policy '" + name +
                       "' (known: keep-all, lru, clock)");
}

void CacheStatsSnapshot::Accumulate(const CacheStatsSnapshot& other) {
  if (policy.empty()) {
    policy = other.policy;
  } else if (!other.policy.empty() && other.policy != policy) {
    policy = "mixed";
  }
  budget_bytes += other.budget_bytes;
  resident_snapshots += other.resident_snapshots;
  resident_bytes += other.resident_bytes;
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  full_builds += other.full_builds;
  delta_builds += other.delta_builds;
  delta_door_touches += other.delta_door_touches;
  snapshots_carried += other.snapshots_carried;
  snapshots_rebased += other.snapshots_rebased;
  intervals_invalidated += other.intervals_invalidated;
}

SnapshotStore::SnapshotStore(const ItGraph& graph, const CheckpointSet& cps,
                             SnapshotStoreOptions options,
                             const SnapshotWarmStart* warm)
    : SnapshotStore(graph, cps, options, nullptr, warm) {}

SnapshotStore::SnapshotStore(const ItGraph& graph, const CheckpointSet& cps,
                             SnapshotStoreOptions options,
                             std::unique_ptr<EvictionPolicy> policy,
                             const SnapshotWarmStart* warm)
    : graph_(&graph),
      cps_(&cps),
      id_(g_next_store_id.fetch_add(1, std::memory_order_relaxed)),
      options_(std::move(options)),
      slots_(cps.NumIntervals()),
      policy_(std::move(policy)) {
  if (policy_ == nullptr) {
    auto made = MakeEvictionPolicy(options_.policy, cps.NumIntervals());
    if (!made.ok()) made = MakeEvictionPolicy("keep-all", cps.NumIntervals());
    policy_ = *std::move(made);
  }
  options_.policy = policy_->name();
  if (warm == nullptr) return;

  if (warm->flip_index != nullptr) {
    // Adopt the incrementally patched index; call_once so a later
    // EnsureFlips is a no-op rather than a second build.
    std::call_once(flips_once_, [this, warm] {
      flips_ = *warm->flip_index;
      flips_built_.store(true, std::memory_order_release);
    });
  }

  if (warm->carry_from == nullptr || warm->carry_plan.empty()) return;
  const SnapshotStore& prev = *warm->carry_from;
  // The construction-time carry needs no lock on *this (no other thread
  // can see a half-built store), but resident slots of the previous
  // version are still being served to in-flight readers of the old
  // epoch, so its mutex is taken for the whole scan.
  std::lock_guard<std::mutex> prev_lock(prev.mu_);
  for (size_t j = 0; j < slots_.size() && j < warm->carry_plan.size(); ++j) {
    const ptrdiff_t src = warm->carry_plan[j];
    if (src < 0 || static_cast<size_t>(src) >= prev.slots_.size()) continue;
    const std::shared_ptr<const GraphSnapshot>& old_slot =
        prev.slots_[static_cast<size_t>(src)];
    if (old_slot == nullptr) continue;
    if (std::find(warm->invalidate.begin(), warm->invalidate.end(), j) !=
        warm->invalidate.end()) {
      // The span survived but its open-door set changed: the old mask is
      // stale for the new graph and must be rebuilt on demand.
      ++invalidated_;
      continue;
    }
    std::shared_ptr<const GraphSnapshot> snap;
    if (static_cast<size_t>(src) == j) {
      snap = old_slot;  // same index, same mask: share the slot verbatim
      ++carried_;
    } else {
      // Index shifted under the new checkpoint set; re-issue the mask
      // under the corrected interval_index without any Graph_Update
      // derivation.
      snap = std::make_shared<GraphSnapshot>(
          GraphSnapshot{j, old_slot->open, old_slot->open_door_count});
      ++rebased_;
    }
    slots_[j] = std::move(snap);
    resident_bytes_ += slots_[j]->TotalBytes();
    ++resident_count_;
    policy_->OnInsert(j);
  }
  if (options_.budget_bytes != 0) {
    // slots_.size() is not a valid interval: protect nothing.
    EvictToFitLocked(options_.budget_bytes, slots_.size());
  }
}

const BoundaryFlipIndex& SnapshotStore::EnsureFlips() const {
  std::call_once(flips_once_, [this] {
    flips_ = BoundaryFlipIndex::Build(*graph_, *cps_);
    flips_built_.store(true, std::memory_order_release);
  });
  return flips_;
}

std::shared_ptr<const GraphSnapshot> SnapshotStore::Get(
    size_t interval_index, bool* built_now) const {
  if (built_now != nullptr) *built_now = false;
  // Resolve the flip index before taking the mutex: the one-time
  // O(intervals x doors) build must not block concurrent readers.
  const BoundaryFlipIndex* flips =
      options_.delta_builds ? &EnsureFlips() : nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<const GraphSnapshot>& slot = slots_[interval_index];
  if (slot != nullptr) {
    ++hits_;
    policy_->OnAccess(interval_index);
    return slot;
  }

  ++misses_;
  std::shared_ptr<const GraphSnapshot> snap;
  if (flips != nullptr) {
    // Either resident neighbour works; adjacency is symmetric.
    const GraphSnapshot* neighbour = nullptr;
    if (interval_index > 0 && slots_[interval_index - 1] != nullptr) {
      neighbour = slots_[interval_index - 1].get();
    } else if (interval_index + 1 < slots_.size() &&
               slots_[interval_index + 1] != nullptr) {
      neighbour = slots_[interval_index + 1].get();
    }
    if (neighbour != nullptr) {
      size_t touched = 0;
      snap = std::make_shared<GraphSnapshot>(BuildSnapshotDelta(
          *graph_, *cps_, *flips, *neighbour, interval_index, &touched));
      ++delta_builds_;
      delta_door_touches_ += touched;
    }
  }
  if (snap == nullptr) {
    snap = std::make_shared<GraphSnapshot>(
        BuildSnapshot(*graph_, *cps_, interval_index));
    ++full_builds_;
  }
  if (built_now != nullptr) *built_now = true;

  slot = snap;
  resident_bytes_ += snap->TotalBytes();
  ++resident_count_;
  policy_->OnInsert(interval_index);
  if (options_.budget_bytes != 0) {
    EvictToFitLocked(options_.budget_bytes, interval_index);
  }
  return snap;
}

void SnapshotStore::EvictToFitLocked(size_t budget, size_t protect) const {
  while (resident_bytes_ > budget) {
    size_t victim = 0;
    if (!policy_->ChooseVictim(protect, &victim)) break;
    std::shared_ptr<const GraphSnapshot>& slot = slots_[victim];
    resident_bytes_ -= slot->TotalBytes();
    // Readers holding the shared_ptr keep the mask alive; the store
    // just forgets it.
    slot.reset();
    --resident_count_;
    ++evictions_;
    policy_->OnEvict(victim);
  }
}

size_t SnapshotStore::InvalidateIntervals(
    const std::vector<size_t>& intervals) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (size_t interval : intervals) {
    if (interval >= slots_.size()) continue;
    std::shared_ptr<const GraphSnapshot>& slot = slots_[interval];
    if (slot == nullptr) continue;
    resident_bytes_ -= slot->TotalBytes();
    // Pinned readers keep the mask alive; the store just forgets it.
    slot.reset();
    --resident_count_;
    ++invalidated_;
    ++dropped;
    policy_->OnEvict(interval);
  }
  return dropped;
}

void SnapshotStore::SetBudget(size_t budget_bytes) const {
  std::lock_guard<std::mutex> lock(mu_);
  options_.budget_bytes = budget_bytes;
  if (budget_bytes != 0) {
    // slots_.size() is not a valid interval: protect nothing.
    EvictToFitLocked(budget_bytes, slots_.size());
  }
}

CacheStatsSnapshot SnapshotStore::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStatsSnapshot stats;
  stats.policy = policy_->name();
  stats.budget_bytes = options_.budget_bytes;
  stats.resident_snapshots = resident_count_;
  stats.resident_bytes = resident_bytes_;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.full_builds = full_builds_;
  stats.delta_builds = delta_builds_;
  stats.delta_door_touches = delta_door_touches_;
  stats.snapshots_carried = carried_;
  stats.snapshots_rebased = rebased_;
  stats.intervals_invalidated = invalidated_;
  return stats;
}

size_t SnapshotStore::MemoryUsage() const {
  const size_t flips_bytes = flips_built_.load(std::memory_order_acquire)
                                 ? flips_.MemoryUsage()
                                 : 0;
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.capacity() * sizeof(slots_[0]) + resident_bytes_ +
         flips_bytes;
}

}  // namespace itspq

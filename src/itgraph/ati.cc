#include "itgraph/ati.h"

#include <algorithm>
#include <string>
#include <utility>

namespace itspq {

StatusOr<AtiSet> AtiSet::Create(std::vector<TimeInterval> intervals) {
  std::vector<TimeInterval> flat;
  flat.reserve(intervals.size() + 1);
  for (const TimeInterval& iv : intervals) {
    if (iv.start < 0 || iv.start > kSecondsPerDay || iv.end < 0 ||
        iv.end > kSecondsPerDay) {
      return InvalidArgumentError(
          "ATI interval outside [0, 86400]: [" + std::to_string(iv.start) +
          ", " + std::to_string(iv.end) + ")");
    }
    if (iv.start == iv.end) {
      return InvalidArgumentError("zero-length ATI interval at " +
                                  std::to_string(iv.start));
    }
    // A start at 24:00 is the same instant as 00:00; normalising it here
    // keeps the wrap branch from emitting a degenerate [86400, 86400)
    // piece whose boundary would leak into the checkpoint set. The
    // zero-length check must repeat on the normalised value: {86400, 0}
    // is the same empty instant as {0, 0}.
    const double start = iv.start == kSecondsPerDay ? 0.0 : iv.start;
    if (start == iv.end) {
      return InvalidArgumentError("zero-length ATI interval at " +
                                  std::to_string(start));
    }
    if (iv.end > start) {
      flat.push_back(TimeInterval{start, iv.end});
    } else {
      // Wraps past midnight: split into the evening and morning parts.
      flat.push_back(TimeInterval{start, kSecondsPerDay});
      if (iv.end > 0) flat.push_back(TimeInterval{0, iv.end});
    }
  }

  std::sort(flat.begin(), flat.end(),
            [](const TimeInterval& a, const TimeInterval& b) {
              return a.start < b.start;
            });

  AtiSet set;
  for (const TimeInterval& iv : flat) {
    if (!set.starts_.empty() && iv.start <= set.ends_.back()) {
      set.ends_.back() = std::max(set.ends_.back(), iv.end);
    } else {
      set.starts_.push_back(iv.start);
      set.ends_.push_back(iv.end);
    }
  }

  // A single interval covering the whole day is "always open".
  if (set.starts_.size() == 1 && set.starts_[0] == 0 &&
      set.ends_[0] == kSecondsPerDay) {
    set.starts_.clear();
    set.ends_.clear();
  }
  return set;
}

std::vector<double> AtiSet::InteriorBoundaries() const {
  std::vector<double> out;
  out.reserve(starts_.size() * 2);
  for (size_t i = 0; i < starts_.size(); ++i) {
    if (starts_[i] > 0) out.push_back(starts_[i]);
    if (ends_[i] < kSecondsPerDay) out.push_back(ends_[i]);
  }
  return out;
}

}  // namespace itspq

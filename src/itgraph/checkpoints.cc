#include "itgraph/checkpoints.h"

#include <algorithm>
#include <string>

#include "itgraph/itgraph.h"

namespace itspq {

StatusOr<CheckpointSet> CheckpointSet::FromTimes(std::vector<double> times) {
  for (double t : times) {
    if (t <= 0 || t >= kSecondsPerDay) {
      return InvalidArgumentError("checkpoint outside (0, 86400): " +
                                  std::to_string(t));
    }
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  CheckpointSet set;
  set.times_ = std::move(times);
  return set;
}

CheckpointSet CheckpointSet::FromGraph(const ItGraph& graph) {
  std::vector<double> times;
  const size_t n = graph.NumDoors();
  for (size_t d = 0; d < n; ++d) {
    const std::vector<double> boundaries =
        graph.Ati(static_cast<DoorId>(d)).InteriorBoundaries();
    times.insert(times.end(), boundaries.begin(), boundaries.end());
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  CheckpointSet set;
  set.times_ = std::move(times);
  return set;
}

}  // namespace itspq

#include "itgraph/checkpoints.h"

#include <algorithm>
#include <string>
#include <utility>

#include "itgraph/graph_update.h"
#include "itgraph/itgraph.h"

namespace itspq {

StatusOr<CheckpointSet> CheckpointSet::FromTimes(std::vector<double> times) {
  for (double t : times) {
    if (t <= 0 || t >= kSecondsPerDay) {
      return InvalidArgumentError("checkpoint outside (0, 86400): " +
                                  std::to_string(t));
    }
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  CheckpointSet set;
  set.times_ = std::move(times);
  return set;
}

CheckpointSet CheckpointSet::FromGraph(const ItGraph& graph) {
  std::vector<double> times;
  const size_t n = graph.NumDoors();
  for (size_t d = 0; d < n; ++d) {
    const std::vector<double> boundaries =
        graph.Ati(static_cast<DoorId>(d)).InteriorBoundaries();
    times.insert(times.end(), boundaries.begin(), boundaries.end());
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  CheckpointSet set;
  set.times_ = std::move(times);
  return set;
}

BoundaryFlipIndex BoundaryFlipIndex::Build(const ItGraph& graph,
                                           const CheckpointSet& cps) {
  BoundaryFlipIndex index;
  const size_t boundaries = cps.NumCheckpoints();
  index.offsets_.assign(boundaries + 1, 0);

  // One from-G0 mask per interval — a single ATI probe per (door,
  // interval) — then each boundary's flip list is the XOR diff of its
  // two masks, emitted in ascending door order. Paid once per router
  // instead of per query.
  GraphSnapshot prev = BuildSnapshot(graph, cps, 0);
  for (size_t b = 0; b < boundaries; ++b) {
    GraphSnapshot next = BuildSnapshot(graph, cps, b + 1);
    prev.open.ForEachDifference(
        next.open, [&index](DoorId door) { index.doors_.push_back(door); });
    index.offsets_[b + 1] = index.doors_.size();
    prev = std::move(next);
  }
  return index;
}

BoundaryFlipIndex BoundaryFlipIndex::FromLists(
    const std::vector<std::vector<DoorId>>& per_boundary) {
  BoundaryFlipIndex index;
  index.offsets_.assign(per_boundary.size() + 1, 0);
  size_t total = 0;
  for (const auto& list : per_boundary) total += list.size();
  index.doors_.reserve(total);
  for (size_t b = 0; b < per_boundary.size(); ++b) {
    index.doors_.insert(index.doors_.end(), per_boundary[b].begin(),
                        per_boundary[b].end());
    index.offsets_[b + 1] = index.doors_.size();
  }
  return index;
}

}  // namespace itspq

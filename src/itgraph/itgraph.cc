#include "itgraph/itgraph.h"

#include <string>
#include <utility>

namespace itspq {

StatusOr<ItGraph> ItGraph::Build(const Venue& venue) {
  ItGraph graph(venue);
  graph.atis_.reserve(venue.NumDoors());
  for (size_t d = 0; d < venue.NumDoors(); ++d) {
    auto ati = AtiSet::Create(venue.door(static_cast<DoorId>(d)).ati_intervals);
    if (!ati.ok()) {
      return Status(ati.status().code(), "door " + std::to_string(d) + ": " +
                                             ati.status().message());
    }
    graph.atis_.push_back(std::move(*ati));
  }
  return graph;
}

StatusOr<ItGraph> ItGraph::BuildFrom(const ItGraph& prev, const Venue& venue,
                                     DoorId changed_door) {
  if (venue.NumDoors() != prev.NumDoors()) {
    return InvalidArgumentError(
        "BuildFrom: door count changed (" + std::to_string(prev.NumDoors()) +
        " -> " + std::to_string(venue.NumDoors()) +
        "); online updates only edit ATIs");
  }
  if (changed_door < 0 ||
      static_cast<size_t>(changed_door) >= venue.NumDoors()) {
    return InvalidArgumentError("BuildFrom: unknown door " +
                                std::to_string(changed_door));
  }
  auto ati = AtiSet::Create(venue.door(changed_door).ati_intervals);
  if (!ati.ok()) {
    return Status(ati.status().code(),
                  "door " + std::to_string(changed_door) + ": " +
                      ati.status().message());
  }
  ItGraph graph(venue);
  graph.atis_ = prev.atis_;
  graph.atis_[static_cast<size_t>(changed_door)] = std::move(*ati);
  return graph;
}

size_t ItGraph::MemoryUsage() const {
  size_t total = atis_.capacity() * sizeof(AtiSet);
  for (const AtiSet& a : atis_) total += a.MemoryUsage();
  return total;
}

}  // namespace itspq

#include "itgraph/itgraph.h"

#include <string>
#include <utility>

namespace itspq {

StatusOr<ItGraph> ItGraph::Build(const Venue& venue) {
  ItGraph graph(venue);
  graph.atis_.reserve(venue.NumDoors());
  for (size_t d = 0; d < venue.NumDoors(); ++d) {
    auto ati = AtiSet::Create(venue.door(static_cast<DoorId>(d)).ati_intervals);
    if (!ati.ok()) {
      return Status(ati.status().code(), "door " + std::to_string(d) + ": " +
                                             ati.status().message());
    }
    graph.atis_.push_back(std::move(*ati));
  }
  return graph;
}

size_t ItGraph::MemoryUsage() const {
  size_t total = atis_.capacity() * sizeof(AtiSet);
  for (const AtiSet& a : atis_) total += a.MemoryUsage();
  return total;
}

}  // namespace itspq

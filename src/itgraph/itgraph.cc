#include "itgraph/itgraph.h"

#include <string>
#include <utility>

namespace itspq {

void ItGraph::CompileAtiRows() {
  const size_t n = atis_.size();
  ati_offsets_.clear();
  ati_starts_.clear();
  ati_ends_.clear();
  ati_offsets_.reserve(n + 1);
  ati_offsets_.push_back(0);
  for (const AtiSet& a : atis_) {
    ati_starts_.insert(ati_starts_.end(), a.starts().begin(), a.starts().end());
    ati_ends_.insert(ati_ends_.end(), a.ends().begin(), a.ends().end());
    ati_offsets_.push_back(static_cast<uint32_t>(ati_starts_.size()));
  }
}

StatusOr<ItGraph> ItGraph::Build(const Venue& venue) {
  ItGraph graph(venue);
  graph.atis_.reserve(venue.NumDoors());
  for (size_t d = 0; d < venue.NumDoors(); ++d) {
    auto ati = AtiSet::Create(venue.door(static_cast<DoorId>(d)).ati_intervals);
    if (!ati.ok()) {
      return Status(ati.status().code(), "door " + std::to_string(d) + ": " +
                                             ati.status().message());
    }
    graph.atis_.push_back(std::move(*ati));
  }
  graph.adj_ = std::make_shared<const CsrAdjacency>(CsrAdjacency::Compile(venue));
  graph.CompileAtiRows();
  return graph;
}

StatusOr<ItGraph> ItGraph::BuildFrom(const ItGraph& prev, const Venue& venue,
                                     DoorId changed_door) {
  if (venue.NumDoors() != prev.NumDoors()) {
    return InvalidArgumentError(
        "BuildFrom: door count changed (" + std::to_string(prev.NumDoors()) +
        " -> " + std::to_string(venue.NumDoors()) +
        "); online updates only edit ATIs");
  }
  if (changed_door < 0 ||
      static_cast<size_t>(changed_door) >= venue.NumDoors()) {
    return InvalidArgumentError("BuildFrom: unknown door " +
                                std::to_string(changed_door));
  }
  auto ati = AtiSet::Create(venue.door(changed_door).ati_intervals);
  if (!ati.ok()) {
    return Status(ati.status().code(),
                  "door " + std::to_string(changed_door) + ": " +
                      ati.status().message());
  }
  ItGraph graph(venue);
  graph.atis_ = prev.atis_;
  graph.atis_[static_cast<size_t>(changed_door)] = std::move(*ati);
  // ATI edits never touch geometry (door-count guard above), so the
  // compiled adjacency is shared across epochs; only the flat ATI rows
  // are recompiled (O(total intervals), trivial next to the atis_ copy).
  graph.adj_ = prev.adj_;
  graph.CompileAtiRows();
  return graph;
}

size_t ItGraph::MemoryUsage() const {
  size_t total = atis_.capacity() * sizeof(AtiSet);
  for (const AtiSet& a : atis_) total += a.MemoryUsage();
  total += ati_offsets_.capacity() * sizeof(uint32_t) +
           (ati_starts_.capacity() + ati_ends_.capacity()) * sizeof(double);
  if (adj_ != nullptr) total += adj_->MemoryUsage();
  return total;
}

}  // namespace itspq

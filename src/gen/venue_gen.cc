#include "gen/venue_gen.h"

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace itspq {

namespace {

// Vertical stair doors at one shop centre would sit on top of each
// other (zero intra-stairwell distance); nudging them apart by parity
// charges a small, constant climb cost per floor crossed.
constexpr double kStairDoorOffsetM = 3.0;

}  // namespace

StatusOr<Venue> GenerateMall(const MallConfig& config) {
  if (config.floors < 1 || config.shop_rows < 1 || config.shops_per_row < 1 ||
      config.cross_door_stride < 1) {
    return InvalidArgumentError("mall config: counts must be positive");
  }
  const int corridors = config.shop_rows + 1;
  const double shop_row_height =
      (config.floor_size_m - corridors * config.corridor_height_m) /
      config.shop_rows;
  if (config.floor_size_m <= 0 || config.corridor_height_m <= 0 ||
      shop_row_height <= 0) {
    return InvalidArgumentError(
        "mall config: corridor bands do not fit the floor (shop row height " +
        std::to_string(shop_row_height) + " m)");
  }
  const double shop_width = config.floor_size_m / config.shops_per_row;

  Rng rng(config.seed);
  Venue::Builder builder;

  // Per-floor partition layout: corridors [0, shop_rows], then shops
  // row-major. Ids are floor-major so the same shop repeats every
  // `per_floor` ids — which is how staircase shops line up vertically.
  const int per_floor = corridors + config.shop_rows * config.shops_per_row;
  auto corridor_id = [&](int floor, int band) {
    return static_cast<PartitionId>(floor * per_floor + band);
  };
  auto shop_id = [&](int floor, int row, int i) {
    return static_cast<PartitionId>(floor * per_floor + corridors +
                                    row * config.shops_per_row + i);
  };

  for (int floor = 0; floor < config.floors; ++floor) {
    // Corridor band `b` sits below shop row `b` (and above row b-1).
    for (int band = 0; band < corridors; ++band) {
      const double y0 =
          band * (config.corridor_height_m + shop_row_height);
      builder.AddPartition(Rect{0, y0, config.floor_size_m,
                                y0 + config.corridor_height_m},
                           floor);
    }
    for (int row = 0; row < config.shop_rows; ++row) {
      const double y0 = config.corridor_height_m +
                        row * (config.corridor_height_m + shop_row_height);
      for (int i = 0; i < config.shops_per_row; ++i) {
        builder.AddPartition(Rect{i * shop_width, y0, (i + 1) * shop_width,
                                  y0 + shop_row_height},
                             floor);
      }
    }
  }

  // Horizontal doors. Positions are jittered along the shared wall so
  // different seeds yield different geometry (and non-degenerate
  // distance matrices).
  auto door_x = [&](int i) {
    return i * shop_width +
           rng.UniformDouble(0.2 * shop_width, 0.8 * shop_width);
  };
  for (int floor = 0; floor < config.floors; ++floor) {
    for (int row = 0; row < config.shop_rows; ++row) {
      const double y_bottom = config.corridor_height_m +
                              row * (config.corridor_height_m +
                                     shop_row_height);
      const double y_top = y_bottom + shop_row_height;
      for (int i = 0; i < config.shops_per_row; ++i) {
        builder.AddDoor(Point2d{door_x(i), y_bottom}, floor,
                        shop_id(floor, row, i), corridor_id(floor, row));
        if (i % config.cross_door_stride != 0) {
          builder.AddDoor(Point2d{door_x(i), y_top}, floor,
                          shop_id(floor, row, i),
                          corridor_id(floor, row + 1));
        }
      }
    }
  }

  // Vertical stair doors between the two staircase shops of adjacent
  // floors: shop (row 0, 0) and shop (last row, last shop).
  const std::vector<std::pair<int, int>> staircases = {
      {0, 0}, {config.shop_rows - 1, config.shops_per_row - 1}};
  for (int floor = 0; floor + 1 < config.floors; ++floor) {
    for (const auto& [row, i] : staircases) {
      const PartitionId below = shop_id(floor, row, i);
      const PartitionId above = shop_id(floor + 1, row, i);
      const double y0 = config.corridor_height_m +
                        row * (config.corridor_height_m + shop_row_height);
      const Point2d center{(i + 0.5) * shop_width,
                           y0 + 0.5 * shop_row_height};
      const double offset =
          (floor % 2 == 0) ? kStairDoorOffsetM : -kStairDoorOffsetM;
      builder.AddDoor(Point2d{center.x, center.y + offset}, floor, below,
                      above);
    }
  }

  return std::move(builder).Build();
}

}  // namespace itspq

#include "gen/ati_gen.h"

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace itspq {

namespace {

// Draws `count` distinct times in [lo, hi), re-rolling collisions (the
// windows are hours wide, so collisions are vanishingly rare).
std::vector<double> DrawPool(Rng& rng, int count, double lo, double hi) {
  std::vector<double> pool;
  pool.reserve(count);
  while (static_cast<int>(pool.size()) < count) {
    const double t = rng.UniformDouble(lo, hi);
    if (std::find(pool.begin(), pool.end(), t) == pool.end()) {
      pool.push_back(t);
    }
  }
  return pool;
}

}  // namespace

StatusOr<Venue> AssignTemporalVariations(
    const Venue& venue, const AtiGenConfig& config,
    std::vector<double>* checkpoints_out) {
  if (config.checkpoint_count < 2) {
    return InvalidArgumentError(
        "checkpoint_count must be at least 2 (one opening, one closing)");
  }
  if (!(0 < config.morning_window_start &&
        config.morning_window_start < config.morning_window_end &&
        config.morning_window_end <= config.evening_window_start &&
        config.evening_window_start < config.evening_window_end &&
        config.evening_window_end < kSecondsPerDay)) {
    return InvalidArgumentError(
        "ati windows must satisfy 0 < morning < evening < 86400");
  }

  Rng rng(config.seed);
  const int openings = (config.checkpoint_count + 1) / 2;
  const int closings = config.checkpoint_count - openings;
  const std::vector<double> open_pool =
      DrawPool(rng, openings, config.morning_window_start,
               config.morning_window_end);
  const std::vector<double> close_pool =
      DrawPool(rng, closings, config.evening_window_start,
               config.evening_window_end);

  Venue::Builder builder = Venue::Builder::FromVenue(venue);
  for (size_t d = 0; d < venue.NumDoors(); ++d) {
    const Door& door = venue.door(static_cast<DoorId>(d));
    // Vertical stair doors (connecting partitions on different floors)
    // stay always open.
    const Partition& a = venue.partition(door.partitions[0]);
    const Partition& b = venue.partition(door.partitions[1]);
    if (a.floor != b.floor) continue;

    const double open = open_pool[rng.UniformIndex(open_pool.size())];
    const double close = close_pool[rng.UniformIndex(close_pool.size())];
    Status status = builder.SetDoorAti(static_cast<DoorId>(d),
                                       {TimeInterval{open, close}});
    if (!status.ok()) return status;
  }

  if (checkpoints_out != nullptr) {
    checkpoints_out->clear();
    checkpoints_out->insert(checkpoints_out->end(), open_pool.begin(),
                            open_pool.end());
    checkpoints_out->insert(checkpoints_out->end(), close_pool.begin(),
                            close_pool.end());
    std::sort(checkpoints_out->begin(), checkpoints_out->end());
  }
  return std::move(builder).Build();
}

}  // namespace itspq

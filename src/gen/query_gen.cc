#include "gen/query_gen.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "itgraph/door_search.h"

namespace itspq {

namespace {

// Uniform point strictly inside a partition (10% inset keeps points off
// shared walls, where they would belong to several partitions).
IndoorPoint InteriorPoint(const Partition& partition, Rng& rng) {
  const Rect& r = partition.rect;
  return IndoorPoint{
      Point2d{rng.UniformDouble(r.min_x + 0.1 * r.width(),
                                r.max_x - 0.1 * r.width()),
              rng.UniformDouble(r.min_y + 0.1 * r.height(),
                                r.max_y - 0.1 * r.height())},
      partition.floor};
}

}  // namespace

StatusOr<std::vector<QueryInstance>> GenerateQueries(
    const ItGraph& graph, const QueryGenConfig& config) {
  if (config.num_pairs < 1 || config.s2t_distance <= 0 ||
      config.tolerance < 0) {
    return InvalidArgumentError("query gen config: bad band or pair count");
  }
  const Venue& venue = graph.venue();
  if (venue.NumPartitions() == 0) {
    return FailedPreconditionError("query gen: empty venue");
  }

  Rng rng(config.seed);
  std::vector<QueryInstance> queries;
  const double lo = config.s2t_distance - config.tolerance;
  const double hi = config.s2t_distance + config.tolerance;

  for (int attempt = 0;
       attempt < config.max_source_attempts &&
       static_cast<int>(queries.size()) < config.num_pairs;
       ++attempt) {
    const PartitionId sp =
        static_cast<PartitionId>(rng.UniformIndex(venue.NumPartitions()));
    const IndoorPoint ps = InteriorPoint(venue.partition(sp), rng);
    auto src = internal::AttachPoint(venue, ps);
    if (!src.ok()) continue;
    const internal::DoorSearchResult from_source =
        internal::DoorDijkstra(graph, src->door_offsets, nullptr);

    for (int probe = 0; probe < config.targets_per_source &&
                        static_cast<int>(queries.size()) < config.num_pairs;
         ++probe) {
      const PartitionId tp =
          static_cast<PartitionId>(rng.UniformIndex(venue.NumPartitions()));
      const Partition& target_partition = venue.partition(tp);
      const IndoorPoint pt = InteriorPoint(target_partition, rng);
      auto dst = internal::AttachPoint(venue, pt);
      if (!dst.ok()) continue;

      const auto [best, entry_door] = internal::BestCompletion(
          *src, *dst, ps.p, pt.p, [&](DoorId d) {
            return from_source.Dist(static_cast<size_t>(d));
          });
      (void)entry_door;
      if (best >= lo && best <= hi) {
        queries.push_back(QueryInstance{ps, pt, best});
      }
    }
  }

  if (static_cast<int>(queries.size()) < config.num_pairs) {
    return ResourceExhaustedError(
        "could only generate " + std::to_string(queries.size()) + " of " +
        std::to_string(config.num_pairs) + " query pairs in the [" +
        std::to_string(lo) + ", " + std::to_string(hi) + "] m band");
  }
  return queries;
}

StatusOr<std::vector<QueryRequest>> GenerateFamilyQueries(
    const ItGraph& graph, const FamilyGenConfig& config) {
  if (config.kind == QueryKind::kPointToPoint) {
    return InvalidArgumentError(
        "family gen: use GenerateQueries for point-to-point pairs");
  }
  if (config.num_queries < 1) {
    return InvalidArgumentError("family gen: num_queries must be >= 1");
  }
  if (!(config.min_departure_seconds <= config.max_departure_seconds)) {
    return InvalidArgumentError("family gen: bad departure window");
  }
  const Venue& venue = graph.venue();
  if (venue.NumPartitions() == 0) {
    return FailedPreconditionError("family gen: empty venue");
  }
  switch (config.kind) {
    case QueryKind::kReachability:
      if (!(config.min_budget_seconds >= 0) ||
          !(config.min_budget_seconds <= config.max_budget_seconds)) {
        return InvalidArgumentError("family gen: bad budget range");
      }
      break;
    case QueryKind::kNearestFacility:
      if (config.min_k < 1 || config.min_k > config.max_k ||
          config.num_facilities < 1) {
        return InvalidArgumentError("family gen: bad k/facility config");
      }
      if (static_cast<size_t>(config.num_facilities) > graph.NumDoors()) {
        return FailedPreconditionError(
            "family gen: venue has " + std::to_string(graph.NumDoors()) +
            " doors, fewer than num_facilities = " +
            std::to_string(config.num_facilities));
      }
      break;
    case QueryKind::kMultiStop:
      if (config.num_waypoints < 1) {
        return InvalidArgumentError("family gen: num_waypoints must be >= 1");
      }
      break;
    default:
      return InvalidArgumentError("family gen: unknown query kind");
  }

  Rng rng(config.seed);
  auto random_point = [&] {
    const PartitionId p =
        static_cast<PartitionId>(rng.UniformIndex(venue.NumPartitions()));
    return InteriorPoint(venue.partition(p), rng);
  };

  std::vector<QueryRequest> requests;
  requests.reserve(static_cast<size_t>(config.num_queries));
  for (int i = 0; i < config.num_queries; ++i) {
    QueryRequest request;
    request.kind = config.kind;
    request.source = random_point();
    request.departure = Instant(rng.UniformDouble(
        config.min_departure_seconds, config.max_departure_seconds));
    switch (config.kind) {
      case QueryKind::kReachability:
        request.budget_seconds = rng.UniformDouble(config.min_budget_seconds,
                                                   config.max_budget_seconds);
        break;
      case QueryKind::kNearestFacility: {
        request.k = config.min_k + static_cast<uint32_t>(rng.UniformIndex(
                                       config.max_k - config.min_k + 1));
        // Distinct doors via rejection — facility sets are tiny next to
        // a venue's door count, so repeats are rare.
        while (request.facilities.size() <
               static_cast<size_t>(config.num_facilities)) {
          const DoorId door =
              static_cast<DoorId>(rng.UniformIndex(graph.NumDoors()));
          if (std::find(request.facilities.begin(), request.facilities.end(),
                        door) == request.facilities.end()) {
            request.facilities.push_back(door);
          }
        }
        break;
      }
      case QueryKind::kMultiStop:
        for (int s = 0; s < config.num_waypoints; ++s) {
          request.waypoints.push_back(random_point());
        }
        request.target = random_point();
        break;
      default:
        break;
    }
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace itspq

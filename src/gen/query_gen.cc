#include "gen/query_gen.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "itgraph/door_search.h"

namespace itspq {

namespace {

// Uniform point strictly inside a partition (10% inset keeps points off
// shared walls, where they would belong to several partitions).
IndoorPoint InteriorPoint(const Partition& partition, Rng& rng) {
  const Rect& r = partition.rect;
  return IndoorPoint{
      Point2d{rng.UniformDouble(r.min_x + 0.1 * r.width(),
                                r.max_x - 0.1 * r.width()),
              rng.UniformDouble(r.min_y + 0.1 * r.height(),
                                r.max_y - 0.1 * r.height())},
      partition.floor};
}

}  // namespace

StatusOr<std::vector<QueryInstance>> GenerateQueries(
    const ItGraph& graph, const QueryGenConfig& config) {
  if (config.num_pairs < 1 || config.s2t_distance <= 0 ||
      config.tolerance < 0) {
    return InvalidArgumentError("query gen config: bad band or pair count");
  }
  const Venue& venue = graph.venue();
  if (venue.NumPartitions() == 0) {
    return FailedPreconditionError("query gen: empty venue");
  }

  Rng rng(config.seed);
  std::vector<QueryInstance> queries;
  const double lo = config.s2t_distance - config.tolerance;
  const double hi = config.s2t_distance + config.tolerance;

  for (int attempt = 0;
       attempt < config.max_source_attempts &&
       static_cast<int>(queries.size()) < config.num_pairs;
       ++attempt) {
    const PartitionId sp =
        static_cast<PartitionId>(rng.UniformIndex(venue.NumPartitions()));
    const IndoorPoint ps = InteriorPoint(venue.partition(sp), rng);
    auto src = internal::AttachPoint(venue, ps);
    if (!src.ok()) continue;
    const internal::DoorSearchResult from_source =
        internal::DoorDijkstra(graph, src->door_offsets, nullptr);

    for (int probe = 0; probe < config.targets_per_source &&
                        static_cast<int>(queries.size()) < config.num_pairs;
         ++probe) {
      const PartitionId tp =
          static_cast<PartitionId>(rng.UniformIndex(venue.NumPartitions()));
      const Partition& target_partition = venue.partition(tp);
      const IndoorPoint pt = InteriorPoint(target_partition, rng);
      auto dst = internal::AttachPoint(venue, pt);
      if (!dst.ok()) continue;

      const auto [best, entry_door] = internal::BestCompletion(
          *src, *dst, ps.p, pt.p, [&](DoorId d) {
            return from_source.Dist(static_cast<size_t>(d));
          });
      (void)entry_door;
      if (best >= lo && best <= hi) {
        queries.push_back(QueryInstance{ps, pt, best});
      }
    }
  }

  if (static_cast<int>(queries.size()) < config.num_pairs) {
    return ResourceExhaustedError(
        "could only generate " + std::to_string(queries.size()) + " of " +
        std::to_string(config.num_pairs) + " query pairs in the [" +
        std::to_string(lo) + ", " + std::to_string(hi) + "] m band");
  }
  return queries;
}

}  // namespace itspq

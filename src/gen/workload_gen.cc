#include "gen/workload_gen.h"

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "gen/query_gen.h"

namespace itspq {

StatusOr<std::vector<Venue>> GenerateVenueFleet(const FleetConfig& config) {
  if (config.num_venues < 1) {
    return InvalidArgumentError("fleet config: num_venues must be positive");
  }
  if (config.min_floors < 1 || config.max_floors < config.min_floors ||
      config.min_shop_rows < 1 ||
      config.max_shop_rows < config.min_shop_rows ||
      config.min_checkpoints < 2 ||
      config.max_checkpoints < config.min_checkpoints) {
    return InvalidArgumentError("fleet config: malformed [min, max] range");
  }

  Rng rng(config.seed);
  std::vector<Venue> fleet;
  fleet.reserve(static_cast<size_t>(config.num_venues));
  for (int i = 0; i < config.num_venues; ++i) {
    MallConfig mall = config.base_mall;
    mall.floors =
        static_cast<int>(rng.UniformInt(config.min_floors, config.max_floors));
    mall.shop_rows = static_cast<int>(
        rng.UniformInt(config.min_shop_rows, config.max_shop_rows));
    mall.seed = rng.Next();
    auto shell = GenerateMall(mall);
    if (!shell.ok()) return shell.status();

    AtiGenConfig ati = config.base_ati;
    ati.checkpoint_count = static_cast<int>(
        rng.UniformInt(config.min_checkpoints, config.max_checkpoints));
    ati.seed = rng.Next();
    auto varied = AssignTemporalVariations(*shell, ati);
    if (!varied.ok()) return varied.status();
    fleet.push_back(*std::move(varied));
  }
  return fleet;
}

StatusOr<std::vector<QueryRequest>> GenerateMultiVenueWorkload(
    const VenueCatalog& catalog, const MultiVenueWorkloadConfig& config) {
  if (catalog.NumVenues() == 0) {
    return InvalidArgumentError("workload config: catalog has no venues");
  }
  if (config.num_requests < 0 || config.pairs_per_venue < 1 ||
      config.zipf_exponent < 0 || config.hours.empty()) {
    return InvalidArgumentError("workload config: malformed parameters");
  }

  const size_t venues = catalog.NumVenues();
  Rng rng(config.seed);

  // Per-venue endpoint pools.
  std::vector<std::vector<QueryInstance>> pools;
  pools.reserve(venues);
  for (size_t v = 0; v < venues; ++v) {
    QueryGenConfig qc;
    qc.s2t_distance = config.s2t_distance;
    qc.tolerance = config.tolerance;
    qc.num_pairs = config.pairs_per_venue;
    qc.seed = rng.Next();
    auto pool = GenerateQueries(catalog.graph(static_cast<VenueId>(v)), qc);
    if (!pool.ok()) {
      return Status(pool.status().code(),
                    "venue " + std::to_string(v) + ": " +
                        pool.status().message());
    }
    pools.push_back(*std::move(pool));
  }

  // Zipf CDF over venues in catalog order (shard 0 most popular).
  std::vector<double> cdf(venues);
  double mass = 0;
  for (size_t v = 0; v < venues; ++v) {
    mass += 1.0 / std::pow(static_cast<double>(v + 1), config.zipf_exponent);
    cdf[v] = mass;
  }

  std::vector<QueryRequest> requests;
  requests.reserve(static_cast<size_t>(config.num_requests));
  for (int i = 0; i < config.num_requests; ++i) {
    const double u = rng.UniformDouble(0, mass);
    size_t v = 0;
    while (v + 1 < venues && cdf[v] <= u) ++v;
    const QueryInstance& pair = pools[v][rng.UniformIndex(pools[v].size())];
    const int hour = config.hours[rng.UniformIndex(config.hours.size())];
    const double departure =
        hour * 3600.0 + rng.UniformDouble(0, 3600.0);

    QueryRequest request;
    request.source = pair.ps;
    request.target = pair.pt;
    request.departure = Instant(departure);
    request.options = config.options;
    request.venue_id = static_cast<VenueId>(v);
    requests.push_back(request);
  }
  return requests;
}

StatusOr<std::vector<double>> GenerateOpenLoopArrivals(
    int num_requests, const ArrivalScheduleConfig& config) {
  if (num_requests < 0) {
    return InvalidArgumentError(
        "arrival schedule: num_requests must be non-negative");
  }
  if (!(config.offered_qps > 0) || !std::isfinite(config.offered_qps)) {
    return InvalidArgumentError(
        "arrival schedule: offered_qps must be positive and finite");
  }

  Rng rng(config.seed);
  std::vector<double> offsets;
  offsets.reserve(static_cast<size_t>(num_requests));
  double t = 0;
  for (int i = 0; i < num_requests; ++i) {
    // Exponential inter-arrival gap: -ln(1 - u) / rate, with u in
    // [0, 1) so the log argument never hits zero.
    const double u = rng.UniformDouble(0, 1);
    t += -std::log1p(-u) / config.offered_qps;
    offsets.push_back(t);
  }
  return offsets;
}

StatusOr<std::vector<TimedAtiUpdate>> GenerateUpdateStream(
    const VenueCatalog& catalog, const UpdateStreamConfig& config) {
  if (catalog.NumVenues() == 0) {
    return InvalidArgumentError("update stream: catalog has no venues");
  }
  if (config.num_updates < 0) {
    return InvalidArgumentError(
        "update stream: num_updates must be non-negative");
  }
  if (!(config.offered_ups > 0) || !std::isfinite(config.offered_ups)) {
    return InvalidArgumentError(
        "update stream: offered_ups must be positive and finite");
  }
  if (config.zipf_exponent < 0 || config.wrap_fraction < 0 ||
      config.always_open_fraction < 0 ||
      config.wrap_fraction + config.always_open_fraction > 1) {
    return InvalidArgumentError(
        "update stream: malformed skew or shape fractions");
  }
  if (!(config.min_open_hour >= 0) ||
      config.max_open_hour < config.min_open_hour ||
      config.min_close_hour <= config.max_open_hour ||
      config.max_close_hour < config.min_close_hour ||
      !(config.max_close_hour < 24)) {
    return InvalidArgumentError(
        "update stream: hour windows must satisfy 0 <= open < close < 24");
  }

  const size_t venues = catalog.NumVenues();
  Rng rng(config.seed);

  // Zipf CDF over venues in catalog order (shard 0 most churny).
  std::vector<double> cdf(venues);
  double mass = 0;
  for (size_t v = 0; v < venues; ++v) {
    mass += 1.0 / std::pow(static_cast<double>(v + 1), config.zipf_exponent);
    cdf[v] = mass;
  }

  std::vector<TimedAtiUpdate> stream;
  stream.reserve(static_cast<size_t>(config.num_updates));
  double t = 0;
  for (int i = 0; i < config.num_updates; ++i) {
    // Poisson arrivals, same form as GenerateOpenLoopArrivals.
    const double gap_u = rng.UniformDouble(0, 1);
    t += -std::log1p(-gap_u) / config.offered_ups;

    const double venue_u = rng.UniformDouble(0, mass);
    size_t v = 0;
    while (v + 1 < venues && cdf[v] <= venue_u) ++v;
    const Venue& venue = catalog.venue(static_cast<VenueId>(v));

    TimedAtiUpdate timed;
    timed.offset_seconds = t;
    timed.update.venue_id = static_cast<VenueId>(v);
    timed.update.door_id =
        static_cast<DoorId>(rng.UniformIndex(venue.NumDoors()));

    const double open_s =
        3600.0 *
        rng.UniformDouble(config.min_open_hour, config.max_open_hour);
    const double close_s =
        3600.0 *
        rng.UniformDouble(config.min_close_hour, config.max_close_hour);
    const double shape_u = rng.UniformDouble(0, 1);
    if (shape_u < config.always_open_fraction) {
      // Clear the door's variation entirely (empty = always open).
    } else if (shape_u < config.always_open_fraction + config.wrap_fraction) {
      // Night window wrapping midnight: [close, open) next day —
      // AtiSet::Create splits it at the day boundary.
      timed.update.intervals.push_back(TimeInterval{close_s, open_s});
    } else {
      timed.update.intervals.push_back(TimeInterval{open_s, close_s});
    }
    stream.push_back(std::move(timed));
  }
  return stream;
}

}  // namespace itspq

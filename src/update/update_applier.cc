#include "update/update_applier.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "itgraph/ati.h"
#include "itgraph/snapshot_store.h"

namespace itspq {

namespace {

/// Span of interval `index` under sorted boundary `times`:
/// [times[index-1], times[index]) with times[-1] = 0, times[n] = 86400.
struct Span {
  double lo;
  double hi;
};

Span SpanOf(const std::vector<double>& times, size_t index) {
  return Span{index == 0 ? 0.0 : times[index - 1],
              index == times.size() ? kSecondsPerDay : times[index]};
}

}  // namespace

StatusOr<std::shared_ptr<const VersionedGraph>> UpdateApplier::Apply(
    const VersionedGraph& current, const AtiUpdate& update,
    UpdateOutcome* outcome) {
  const Venue& old_venue = current.venue();
  const DoorId door = update.door_id;
  if (door < 0 || static_cast<size_t>(door) >= old_venue.NumDoors()) {
    return NotFoundError("ApplyAtiUpdate: venue has no door " +
                         std::to_string(door));
  }
  // Normalise the replacement first: a malformed update must fail
  // before anything is derived, leaving `current` the published world.
  auto new_ati = AtiSet::Create(update.intervals);
  if (!new_ati.ok()) {
    return Status(new_ati.status().code(),
                  "ApplyAtiUpdate: door " + std::to_string(door) + ": " +
                      new_ati.status().message());
  }

  std::shared_ptr<VersionedGraph> next(new VersionedGraph());
  next->epoch_ = current.epoch_ + 1;
  next->strategy_ = current.strategy_;
  next->options_ = current.options_;
  next->registry_ = current.registry_;
  // Budget may have been re-targeted since construction
  // (SetSnapshotBudget / ApportionSnapshotBudget hit the live store,
  // not the stored options) — read it back so the next epoch keeps it.
  const SnapshotStore* old_store = current.router().snapshot_store();
  if (old_store != nullptr) {
    next->options_.snapshot_cache.budget_bytes =
        old_store->Stats().budget_bytes;
  }

  // Copy-on-write venue: geometry carried, one ATI row replaced.
  Venue::Builder builder = Venue::Builder::FromVenue(old_venue);
  Status set = builder.SetDoorAti(door, update.intervals);
  if (!set.ok()) return set;
  auto venue = std::move(builder).Build();
  if (!venue.ok()) return venue.status();
  next->venue_ = std::make_unique<Venue>(*std::move(venue));

  auto graph = ItGraph::BuildFrom(current.graph(), *next->venue_, door);
  if (!graph.ok()) return graph.status();
  next->graph_ = std::make_unique<ItGraph>(*std::move(graph));

  // Patch the boundary ledger: remove the door's old contributions
  // (dropping times no other door holds), insert its new ones. Only
  // this door's ledger entries move — O(|T| + |old ATI| + |new ATI|).
  next->boundary_times_ = current.boundary_times_;
  next->boundary_doors_ = current.boundary_doors_;
  const std::vector<double> old_bounds =
      current.graph().Ati(door).InteriorBoundaries();
  for (double t : old_bounds) {
    const auto it = std::lower_bound(next->boundary_times_.begin(),
                                     next->boundary_times_.end(), t);
    const size_t b =
        static_cast<size_t>(it - next->boundary_times_.begin());
    std::vector<DoorId>& doors = next->boundary_doors_[b];
    doors.erase(std::remove(doors.begin(), doors.end(), door), doors.end());
    if (doors.empty()) {
      next->boundary_times_.erase(it);
      next->boundary_doors_.erase(next->boundary_doors_.begin() +
                                  static_cast<ptrdiff_t>(b));
    }
  }
  for (double t : new_ati->InteriorBoundaries()) {
    const auto it = std::lower_bound(next->boundary_times_.begin(),
                                     next->boundary_times_.end(), t);
    const size_t b =
        static_cast<size_t>(it - next->boundary_times_.begin());
    if (it == next->boundary_times_.end() || *it != t) {
      next->boundary_times_.insert(it, t);
      next->boundary_doors_.insert(
          next->boundary_doors_.begin() + static_cast<ptrdiff_t>(b),
          std::vector<DoorId>{door});
    } else {
      std::vector<DoorId>& doors = next->boundary_doors_[b];
      doors.insert(std::lower_bound(doors.begin(), doors.end(), door), door);
    }
  }

  // Carry plan: new interval j carries from old interval i iff their
  // spans are the SAME [lo, hi) — unchanged boundary times are
  // identical doubles, so exact equality is the right test. A matched
  // span contains no checkpoint of either world, hence both the old and
  // the new door ATI are constant across it and one midpoint probe
  // decides whether the open-door set changed there (-> invalidate).
  const std::vector<double>& old_times = current.boundary_times_;
  const std::vector<double>& new_times = next->boundary_times_;
  std::vector<ptrdiff_t> carry_plan(new_times.size() + 1, kNoCarrySource);
  std::vector<size_t> invalidate;
  const AtiSet& old_door_ati = current.graph().Ati(door);
  for (size_t j = 0; j <= new_times.size(); ++j) {
    const Span span = SpanOf(new_times, j);
    const double mid = (span.lo + span.hi) * 0.5;
    const size_t i = static_cast<size_t>(
        std::upper_bound(old_times.begin(), old_times.end(), mid) -
        old_times.begin());
    const Span old_span = SpanOf(old_times, i);
    if (old_span.lo != span.lo || old_span.hi != span.hi) continue;
    carry_plan[j] = static_cast<ptrdiff_t>(i);
    if (old_door_ati.ContainsTimeOfDay(mid) !=
        new_ati->ContainsTimeOfDay(mid)) {
      invalidate.push_back(j);
    }
  }

  if (outcome != nullptr) {
    *outcome = UpdateOutcome();
    outcome->epoch = next->epoch_;
    outcome->intervals_before = old_times.size() + 1;
    outcome->intervals_after = new_times.size() + 1;
    for (double t : old_times) {
      if (!std::binary_search(new_times.begin(), new_times.end(), t)) {
        ++outcome->checkpoints_removed;
      }
    }
    for (double t : new_times) {
      if (!std::binary_search(old_times.begin(), old_times.end(), t)) {
        ++outcome->checkpoints_added;
      }
    }
  }

  Status status = next->FinishBuild(old_store, std::move(carry_plan),
                                    std::move(invalidate));
  if (!status.ok()) return status;

  if (outcome != nullptr && next->router_->snapshot_store() != nullptr) {
    const CacheStatsSnapshot stats = next->router_->snapshot_store()->Stats();
    outcome->snapshots_carried = stats.snapshots_carried;
    outcome->snapshots_rebased = stats.snapshots_rebased;
    outcome->intervals_invalidated = stats.intervals_invalidated;
  }
  return std::shared_ptr<const VersionedGraph>(std::move(next));
}

}  // namespace itspq

#include "update/versioned_graph.h"

#include <algorithm>
#include <utility>

namespace itspq {

StatusOr<std::shared_ptr<const VersionedGraph>> VersionedGraph::Build(
    Venue venue, const std::string& strategy,
    const RouterBuildOptions& options, const RouterRegistry* registry) {
  // shared_ptr<VersionedGraph> first so FinishBuild can run on a
  // non-const object; published as const.
  std::shared_ptr<VersionedGraph> version(new VersionedGraph());
  version->strategy_ = strategy;
  version->options_ = options;
  version->options_.warm_start = nullptr;
  version->registry_ = registry;
  version->venue_ = std::make_unique<Venue>(std::move(venue));

  auto graph = ItGraph::Build(*version->venue_);
  if (!graph.ok()) return graph.status();
  version->graph_ = std::make_unique<ItGraph>(*std::move(graph));

  // Epoch-0 ledger: collect (time, door) contributions of every door,
  // then group by time. Doors are scanned in ascending id and
  // std::sort is stable on the (time, door) key, so each per-boundary
  // door list comes out sorted — matching BoundaryFlipIndex::Build's
  // ascending-door emission order.
  std::vector<std::pair<double, DoorId>> contributions;
  const size_t n = version->graph_->NumDoors();
  for (size_t d = 0; d < n; ++d) {
    for (double t :
         version->graph_->Ati(static_cast<DoorId>(d)).InteriorBoundaries()) {
      contributions.emplace_back(t, static_cast<DoorId>(d));
    }
  }
  std::sort(contributions.begin(), contributions.end());
  for (const auto& [t, d] : contributions) {
    if (version->boundary_times_.empty() ||
        version->boundary_times_.back() != t) {
      version->boundary_times_.push_back(t);
      version->boundary_doors_.emplace_back();
    }
    version->boundary_doors_.back().push_back(d);
  }

  Status status = version->FinishBuild(/*carry_from=*/nullptr, {}, {});
  if (!status.ok()) return status;
  return std::shared_ptr<const VersionedGraph>(std::move(version));
}

Status VersionedGraph::FinishBuild(const SnapshotStore* carry_from,
                                   std::vector<ptrdiff_t> carry_plan,
                                   std::vector<size_t> invalidate) {
  auto cps = CheckpointSet::FromTimes(boundary_times_);
  if (!cps.ok()) return cps.status();
  checkpoints_ = *std::move(cps);
  flips_ = BoundaryFlipIndex::FromLists(boundary_doors_);

  SnapshotWarmStart warm;
  warm.checkpoints = &checkpoints_;
  warm.flip_index = &flips_;
  warm.carry_from = carry_from;
  warm.carry_plan = std::move(carry_plan);
  warm.invalidate = std::move(invalidate);

  RouterBuildOptions build = options_;
  build.warm_start = &warm;
  const RouterRegistry& reg =
      registry_ != nullptr ? *registry_ : RouterRegistry::Global();
  auto router = reg.Create(strategy_, *graph_, build);
  if (!router.ok()) return router.status();
  router_ = *std::move(router);
  return Status::Ok();
}

size_t VersionedGraph::MemoryUsage() const {
  size_t ledger = boundary_times_.capacity() * sizeof(double) +
                  boundary_doors_.capacity() * sizeof(std::vector<DoorId>);
  for (const auto& doors : boundary_doors_) {
    ledger += doors.capacity() * sizeof(DoorId);
  }
  return venue_->MemoryUsage() + graph_->MemoryUsage() + ledger +
         flips_.MemoryUsage() + router_->MemoryUsage();
}

}  // namespace itspq

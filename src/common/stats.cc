#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace itspq {

void LatencyHistogram::Record(double micros) {
  size_t bucket = 0;
  if (micros >= 2.0) {
    bucket = static_cast<size_t>(std::log2(micros));
    bucket = std::min(bucket, kNumBuckets - 1);
  }
  ++counts[bucket];
  ++total;
}

void LatencyHistogram::Accumulate(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) counts[i] += other.counts[i];
  total += other.total;
}

double LatencyHistogram::Quantile(double q) const {
  if (total == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  const size_t target =
      std::max<size_t>(1, static_cast<size_t>(std::ceil(q * total)));
  size_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative >= target) return std::ldexp(1.0, static_cast<int>(i) + 1);
  }
  return std::ldexp(1.0, static_cast<int>(kNumBuckets));
}

}  // namespace itspq

#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace itspq {

void LatencyHistogram::Record(double micros) {
  // A NaN sample would otherwise compare false against every bucket
  // edge and land in bucket 0, skewing p50 downward forever.
  if (std::isnan(micros)) {
    ++nan_dropped;
    return;
  }
  size_t bucket = 0;
  if (micros >= std::ldexp(1.0, static_cast<int>(kNumBuckets) - 1)) {
    // Overflow bucket — also catches +infinity, where casting log2's
    // result would be undefined.
    bucket = kNumBuckets - 1;
  } else if (micros >= 2.0) {
    bucket = static_cast<size_t>(std::log2(micros));
  }
  ++counts[bucket];
  ++total;
}

void LatencyHistogram::Accumulate(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) counts[i] += other.counts[i];
  total += other.total;
  nan_dropped += other.nan_dropped;
}

double LatencyHistogram::Quantile(double q) const {
  if (total == 0) return 0;
  q = std::min(std::max(q, 0.0), 1.0);
  const size_t target =
      std::max<size_t>(1, static_cast<size_t>(std::ceil(q * total)));
  size_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += counts[i];
    if (cumulative >= target) return std::ldexp(1.0, static_cast<int>(i) + 1);
  }
  return std::ldexp(1.0, static_cast<int>(kNumBuckets));
}

}  // namespace itspq

#include "common/memory_tracker.h"

#include <cstdio>

namespace itspq {

std::string FormatBytes(size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  }
  return buf;
}

}  // namespace itspq

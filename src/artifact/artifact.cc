#include "artifact/artifact.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <utility>

#include "artifact/format.h"
#include "common/time.h"
#include "itgraph/checkpoints.h"
#include "itgraph/d2d_index.h"
#include "itgraph/itgraph.h"
#include "update/versioned_graph.h"

namespace itspq {
namespace {

const char* SectionName(uint32_t kind) {
  switch (static_cast<ArtifactSection>(kind)) {
    case ArtifactSection::kMeta:
      return "Meta";
    case ArtifactSection::kPartitions:
      return "Partitions";
    case ArtifactSection::kDoors:
      return "Doors";
    case ArtifactSection::kDoorAtis:
      return "DoorAtis";
    case ArtifactSection::kDoorsOf:
      return "DoorsOf";
    case ArtifactSection::kDistanceMatrices:
      return "DistanceMatrices";
    case ArtifactSection::kFloorIndex:
      return "FloorIndex";
    case ArtifactSection::kCompiledAtis:
      return "CompiledAtis";
    case ArtifactSection::kCheckpoints:
      return "Checkpoints";
    case ArtifactSection::kFlipIndex:
      return "FlipIndex";
    case ArtifactSection::kD2d:
      return "D2d";
    case ArtifactSection::kAdjacencyCsr:
      return "AdjacencyCsr";
  }
  return "?";
}

/// Little-endian append-only buffer for one section payload.
struct ByteWriter {
  std::vector<uint8_t> out;

  void Raw(const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    out.insert(out.end(), b, b + n);
  }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  template <typename T>
  void Pod(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Raw(v.data(), v.size() * sizeof(T));
  }
};

/// Bounds-checked cursor over one section payload. Every read either
/// succeeds or trips the fail flag; nothing ever reads past `size_`.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool Raw(void* p, size_t n) {
    if (n > size_ - pos_) {
      failed_ = true;
      return false;
    }
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I32(int32_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) { return Raw(v, sizeof(*v)); }

  /// Reads `count` trivially-copyable elements, guarding the resize
  /// against hostile counts (never allocates more than remains).
  template <typename T>
  bool Pod(std::vector<T>* v, uint64_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (count > Remaining() / sizeof(T)) {
      failed_ = true;
      return false;
    }
    v->resize(static_cast<size_t>(count));
    return Raw(v->data(), v->size() * sizeof(T));
  }

  size_t Remaining() const { return size_ - pos_; }
  bool failed() const { return failed_; }
  bool Exhausted() const { return !failed_ && pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool failed_ = false;
};

Status CorruptSection(uint32_t kind, const std::string& what) {
  return InvalidArgumentError(std::string("artifact section ") +
                              SectionName(kind) + ": " + what);
}

constexpr uint64_t kFlagHasD2d = 1;

struct MetaSection {
  uint64_t num_partitions = 0;
  uint64_t num_doors = 0;
  uint64_t flags = 0;
  std::string label;
};

}  // namespace

/// Befriended by Venue, DistanceMatrix, AtiSet, ItGraph, and
/// VersionedGraph: encodes their private representations verbatim and
/// re-adopts them at load time without recompiling anything.
class ArtifactCodec {
 public:
  static StatusOr<std::vector<uint8_t>> Encode(
      const Venue& venue, const ArtifactWriteOptions& options);
  static StatusOr<LoadedVenueWorld> Decode(const uint8_t* data, size_t size);
  static StatusOr<std::shared_ptr<const VersionedGraph>> BuildWorld(
      LoadedVenueWorld world, const std::string& strategy,
      const RouterBuildOptions& options, const RouterRegistry* registry);

 private:
  // --- encode helpers (one per section) ---
  static void EncodeMeta(const Venue& v, const ArtifactWriteOptions& o,
                         ByteWriter& w);
  static void EncodePartitions(const Venue& v, ByteWriter& w);
  static void EncodeDoors(const Venue& v, ByteWriter& w);
  static void EncodeDoorAtis(const Venue& v, ByteWriter& w);
  static void EncodeDoorsOf(const Venue& v, ByteWriter& w);
  static void EncodeDistanceMatrices(const Venue& v, ByteWriter& w);
  static void EncodeFloorIndex(const Venue& v, ByteWriter& w);
  static void EncodeCompiledAtis(const ItGraph& g, ByteWriter& w);
  static void EncodeAdjacencyCsr(const ItGraph& g, ByteWriter& w);

  // --- decode helpers ---
  static Status ParseMeta(ByteReader& r, MetaSection* meta);
  static Status ParseVenue(const MetaSection& meta,
                           const std::map<uint32_t, ByteReader>& sections,
                           Venue* venue);
  static Status ParseCompiledAtis(ByteReader& r, size_t num_doors,
                                  std::vector<AtiSet>* atis);
  static Status ParseAdjacencyCsr(ByteReader& r, const Venue& venue,
                                  std::shared_ptr<const CsrAdjacency>* adj);
};

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

void ArtifactCodec::EncodeMeta(const Venue& v, const ArtifactWriteOptions& o,
                               ByteWriter& w) {
  w.U64(v.partitions_.size());
  w.U64(v.doors_.size());
  w.U64(o.include_d2d ? kFlagHasD2d : 0);
  w.U64(o.label.size());
  w.Raw(o.label.data(), o.label.size());
}

void ArtifactCodec::EncodePartitions(const Venue& v, ByteWriter& w) {
  for (const Partition& p : v.partitions_) {
    w.F64(p.rect.min_x);
    w.F64(p.rect.min_y);
    w.F64(p.rect.max_x);
    w.F64(p.rect.max_y);
    w.I32(p.floor);
    w.U32(0);  // pad to 8-byte record multiple
  }
}

void ArtifactCodec::EncodeDoors(const Venue& v, ByteWriter& w) {
  for (const Door& d : v.doors_) {
    w.F64(d.pos.x);
    w.F64(d.pos.y);
    w.I32(d.floor);
    w.I32(d.partitions[0]);
    w.I32(d.partitions[1]);
    w.U32(0);
  }
}

void ArtifactCodec::EncodeDoorAtis(const Venue& v, ByteWriter& w) {
  // The SOURCE intervals (pre-normalisation) ride along so a loaded
  // venue behaves identically under Builder::FromVenue / SetDoorAti —
  // the online-update path re-derives from these, not from AtiSets.
  uint64_t total = 0;
  w.U64(v.doors_.size() + 1);
  w.U64(0);
  for (const Door& d : v.doors_) {
    total += d.ati_intervals.size();
    w.U64(total);
  }
  for (const Door& d : v.doors_) {
    for (const TimeInterval& ti : d.ati_intervals) {
      w.F64(ti.start);
      w.F64(ti.end);
    }
  }
}

void ArtifactCodec::EncodeDoorsOf(const Venue& v, ByteWriter& w) {
  uint64_t total = 0;
  w.U64(0);
  for (const auto& doors : v.doors_of_) {
    total += doors.size();
    w.U64(total);
  }
  for (const auto& doors : v.doors_of_) w.Pod(doors);
}

void ArtifactCodec::EncodeDistanceMatrices(const Venue& v, ByteWriter& w) {
  for (const DistanceMatrix& dm : v.distance_matrices_) {
    w.U64(dm.num_doors_);
    w.I32(dm.base_id_);
    w.U32(static_cast<uint32_t>(dm.local_index_.size()));
  }
  for (const DistanceMatrix& dm : v.distance_matrices_) w.Pod(dm.local_index_);
  for (const DistanceMatrix& dm : v.distance_matrices_) w.Pod(dm.matrix_);
}

void ArtifactCodec::EncodeFloorIndex(const Venue& v, ByteWriter& w) {
  w.I32(v.min_floor_);
  w.U32(static_cast<uint32_t>(v.floor_index_.size()));
  for (const Venue::FloorIndex& fi : v.floor_index_) {
    w.F64(fi.origin_x);
    w.F64(fi.origin_y);
    w.F64(fi.cell);
    w.I32(fi.cols);
    w.I32(fi.rows);
    uint64_t total = 0;
    w.U64(0);
    for (const auto& cell : fi.cells) {
      total += cell.size();
      w.U64(total);
    }
    for (const auto& cell : fi.cells) w.Pod(cell);
  }
}

void ArtifactCodec::EncodeCompiledAtis(const ItGraph& g, ByteWriter& w) {
  uint64_t total = 0;
  w.U64(0);
  for (const AtiSet& a : g.atis_) {
    total += a.starts_.size();
    w.U64(total);
  }
  for (const AtiSet& a : g.atis_) w.Pod(a.starts_);
  for (const AtiSet& a : g.atis_) w.Pod(a.ends_);
}

void ArtifactCodec::EncodeAdjacencyCsr(const ItGraph& g, ByteWriter& w) {
  // The search core's relaxation arrays, verbatim: 2 segments per door
  // (one per partition side), each a contiguous (neighbour id, weight)
  // run. Weight extremes are recomputed at load — cheaper than trusting
  // two floats a corrupt file could use to demote the bucket queue.
  const CsrAdjacency& adj = g.adjacency();
  w.U64(adj.num_doors);
  w.Pod(adj.seg_offsets);
  w.Pod(adj.seg_partition);
  w.Pod(adj.neighbor_ids);
  w.Pod(adj.neighbor_weights);
}

StatusOr<std::vector<uint8_t>> ArtifactCodec::Encode(
    const Venue& venue, const ArtifactWriteOptions& options) {
  // Pay the whole build pipeline once, here: graph compilation
  // (AtiSet normalisation), the checkpoint ledger, and optionally the
  // n^2 Dijkstra sweep for the D2D matrix.
  auto graph = ItGraph::Build(venue);
  if (!graph.ok()) return graph.status();

  std::vector<std::pair<uint32_t, ByteWriter>> sections;
  auto section = [&sections](ArtifactSection kind) -> ByteWriter& {
    sections.emplace_back(static_cast<uint32_t>(kind), ByteWriter{});
    return sections.back().second;
  };

  EncodeMeta(venue, options, section(ArtifactSection::kMeta));
  EncodePartitions(venue, section(ArtifactSection::kPartitions));
  EncodeDoors(venue, section(ArtifactSection::kDoors));
  EncodeDoorAtis(venue, section(ArtifactSection::kDoorAtis));
  EncodeDoorsOf(venue, section(ArtifactSection::kDoorsOf));
  EncodeDistanceMatrices(venue, section(ArtifactSection::kDistanceMatrices));
  EncodeFloorIndex(venue, section(ArtifactSection::kFloorIndex));
  EncodeCompiledAtis(*graph, section(ArtifactSection::kCompiledAtis));
  EncodeAdjacencyCsr(*graph, section(ArtifactSection::kAdjacencyCsr));

  // The boundary ledger, grouped exactly as VersionedGraph::Build does
  // it: (time, door) contributions sorted on the pair key, so each
  // per-boundary door list comes out ascending.
  std::vector<std::pair<double, DoorId>> contributions;
  const size_t n = graph->NumDoors();
  for (size_t d = 0; d < n; ++d) {
    for (double t : graph->Ati(static_cast<DoorId>(d)).InteriorBoundaries()) {
      contributions.emplace_back(t, static_cast<DoorId>(d));
    }
  }
  std::sort(contributions.begin(), contributions.end());
  std::vector<double> times;
  std::vector<std::vector<DoorId>> flip_lists;
  for (const auto& [t, d] : contributions) {
    if (times.empty() || times.back() != t) {
      times.push_back(t);
      flip_lists.emplace_back();
    }
    flip_lists.back().push_back(d);
  }

  {
    ByteWriter& w = section(ArtifactSection::kCheckpoints);
    w.U64(times.size());
    w.Pod(times);
  }
  {
    ByteWriter& w = section(ArtifactSection::kFlipIndex);
    w.U64(flip_lists.size());
    uint64_t total = 0;
    w.U64(0);
    for (const auto& doors : flip_lists) {
      total += doors.size();
      w.U64(total);
    }
    for (const auto& doors : flip_lists) w.Pod(doors);
  }

  if (options.include_d2d) {
    auto d2d = D2dIndex::Build(*graph);
    if (!d2d.ok()) return d2d.status();
    ByteWriter& w = section(ArtifactSection::kD2d);
    w.U64(n);
    for (size_t from = 0; from < n; ++from) {
      for (size_t to = 0; to < n; ++to) {
        w.F64(d2d->DoorDistance(static_cast<DoorId>(from),
                                static_cast<DoorId>(to)));
      }
    }
  }

  // Assemble: header | table | payloads, offsets laid out in order.
  ArtifactHeader header;
  std::memcpy(header.magic, kArtifactMagic, sizeof(header.magic));
  header.format_version = kArtifactFormatVersion;
  header.endian_tag = kArtifactEndianTag;
  header.header_bytes = sizeof(ArtifactHeader);
  header.section_count = static_cast<uint32_t>(sections.size());

  std::vector<ArtifactSectionEntry> table(sections.size());
  uint64_t offset =
      sizeof(ArtifactHeader) + table.size() * sizeof(ArtifactSectionEntry);
  for (size_t i = 0; i < sections.size(); ++i) {
    const std::vector<uint8_t>& payload = sections[i].second.out;
    table[i].kind = sections[i].first;
    table[i].reserved = 0;
    table[i].offset = offset;
    table[i].bytes = payload.size();
    table[i].checksum = ArtifactChecksum(payload.data(), payload.size());
    offset += payload.size();
  }
  header.file_bytes = offset;
  header.table_checksum =
      ArtifactChecksum(table.data(), table.size() * sizeof(table[0]));

  std::vector<uint8_t> image;
  image.reserve(offset);
  const auto* hp = reinterpret_cast<const uint8_t*>(&header);
  image.insert(image.end(), hp, hp + sizeof(header));
  const auto* tp = reinterpret_cast<const uint8_t*>(table.data());
  image.insert(image.end(), tp, tp + table.size() * sizeof(table[0]));
  for (const auto& [kind, w] : sections) {
    image.insert(image.end(), w.out.begin(), w.out.end());
  }
  return image;
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

namespace {

/// Validates the header + section table against `size` actual bytes.
/// On success fills `table` with the verified entries.
Status CheckHeaderAndTable(const uint8_t* data, size_t size,
                           std::vector<ArtifactSectionEntry>* table) {
  if (size < sizeof(ArtifactHeader)) {
    return InvalidArgumentError(
        "artifact truncated: " + std::to_string(size) +
        " bytes is smaller than the " +
        std::to_string(sizeof(ArtifactHeader)) + "-byte header");
  }
  ArtifactHeader header;
  std::memcpy(&header, data, sizeof(header));

  if (std::memcmp(header.magic, kArtifactMagic, sizeof(header.magic)) != 0) {
    return InvalidArgumentError("not an ITSPQ artifact (bad magic)");
  }
  if (header.endian_tag != kArtifactEndianTag) {
    return FailedPreconditionError(
        "artifact written with foreign byte order (endian tag mismatch)");
  }
  if (header.format_version != kArtifactFormatVersion) {
    if (header.format_version > kArtifactFormatVersion) {
      return FailedPreconditionError(
          "artifact format version " + std::to_string(header.format_version) +
          " is newer than this build supports (" +
          std::to_string(kArtifactFormatVersion) + "); rebuild the artifact");
    }
    return FailedPreconditionError(
        "unsupported artifact format version " +
        std::to_string(header.format_version) + " (supported: " +
        std::to_string(kArtifactFormatVersion) + ")");
  }
  if (header.header_bytes != sizeof(ArtifactHeader)) {
    return InvalidArgumentError("artifact header size field is corrupt");
  }
  if (header.file_bytes > size) {
    return InvalidArgumentError(
        "artifact truncated: header declares " +
        std::to_string(header.file_bytes) + " bytes but only " +
        std::to_string(size) + " are present");
  }
  if (header.file_bytes < size) {
    return InvalidArgumentError(
        "artifact has " + std::to_string(size - header.file_bytes) +
        " trailing bytes past the declared end");
  }

  const uint64_t table_bytes =
      static_cast<uint64_t>(header.section_count) *
      sizeof(ArtifactSectionEntry);
  if (table_bytes > size - sizeof(ArtifactHeader)) {
    return InvalidArgumentError("artifact truncated inside the section table");
  }
  const uint8_t* table_start = data + sizeof(ArtifactHeader);
  if (ArtifactChecksum(table_start, table_bytes) != header.table_checksum) {
    return InvalidArgumentError(
        "artifact section table checksum mismatch (corrupt file)");
  }

  table->resize(header.section_count);
  std::memcpy(table->data(), table_start, table_bytes);
  const uint64_t payload_start = sizeof(ArtifactHeader) + table_bytes;
  for (const ArtifactSectionEntry& e : *table) {
    if (e.offset < payload_start || e.bytes > size || e.offset > size - e.bytes) {
      return CorruptSection(e.kind, "extends past the end of the file");
    }
  }
  return Status::Ok();
}

/// CSR offsets helper: reads `count + 1` offsets, validates they start
/// at 0 and are non-decreasing. Returns false on malformed input.
bool ReadCsrOffsets(ByteReader& r, size_t count, std::vector<uint64_t>* out) {
  if (!r.Pod(out, count + 1)) return false;
  if ((*out)[0] != 0) return false;
  for (size_t i = 0; i + 1 < out->size(); ++i) {
    if ((*out)[i] > (*out)[i + 1]) return false;
  }
  return true;
}

}  // namespace

Status ArtifactCodec::ParseMeta(ByteReader& r, MetaSection* meta) {
  constexpr uint32_t kKind = static_cast<uint32_t>(ArtifactSection::kMeta);
  uint64_t label_len = 0;
  if (!r.U64(&meta->num_partitions) || !r.U64(&meta->num_doors) ||
      !r.U64(&meta->flags) || !r.U64(&label_len) ||
      label_len > r.Remaining()) {
    return CorruptSection(kKind, "malformed");
  }
  meta->label.resize(static_cast<size_t>(label_len));
  if (!r.Raw(meta->label.data(), meta->label.size()) || !r.Exhausted()) {
    return CorruptSection(kKind, "malformed");
  }
  // The in-memory structures index partitions and doors with int32 ids.
  if (meta->num_partitions > size_t{1} << 30 ||
      meta->num_doors > size_t{1} << 30) {
    return CorruptSection(kKind, "implausible partition/door count");
  }
  return Status::Ok();
}

Status ArtifactCodec::ParseCompiledAtis(ByteReader& r, size_t num_doors,
                                        std::vector<AtiSet>* atis) {
  constexpr uint32_t kKind =
      static_cast<uint32_t>(ArtifactSection::kCompiledAtis);
  std::vector<uint64_t> offsets;
  if (!ReadCsrOffsets(r, num_doors, &offsets)) {
    return CorruptSection(kKind, "malformed interval offsets");
  }
  std::vector<double> starts, ends;
  if (!r.Pod(&starts, offsets[num_doors]) ||
      !r.Pod(&ends, offsets[num_doors]) || !r.Exhausted()) {
    return CorruptSection(kKind, "interval pool truncated");
  }
  atis->resize(num_doors);
  for (size_t d = 0; d < num_doors; ++d) {
    const size_t begin = static_cast<size_t>(offsets[d]);
    const size_t end = static_cast<size_t>(offsets[d + 1]);
    // Adopted verbatim — but verify the normalisation invariant the
    // binary-search lookup relies on (sorted, disjoint, in-range), so a
    // corrupt-but-checksum-colliding file cannot produce silent wrong
    // answers.
    for (size_t i = begin; i < end; ++i) {
      const bool in_range = starts[i] >= 0 && starts[i] < ends[i] &&
                            ends[i] <= kSecondsPerDay;
      const bool disjoint = i + 1 >= end || ends[i] <= starts[i + 1];
      if (!in_range || !disjoint) {
        return CorruptSection(kKind, "door " + std::to_string(d) +
                                         " intervals are not normalised");
      }
    }
    AtiSet& a = (*atis)[d];
    a.starts_.assign(starts.begin() + begin, starts.begin() + end);
    a.ends_.assign(ends.begin() + begin, ends.begin() + end);
  }
  return Status::Ok();
}

Status ArtifactCodec::ParseAdjacencyCsr(
    ByteReader& r, const Venue& venue,
    std::shared_ptr<const CsrAdjacency>* adj) {
  constexpr uint32_t kKind =
      static_cast<uint32_t>(ArtifactSection::kAdjacencyCsr);
  const size_t n = venue.NumDoors();
  auto out = std::make_shared<CsrAdjacency>();
  uint64_t num_doors = 0;
  if (!r.U64(&num_doors) || num_doors != n) {
    return CorruptSection(kKind, "door count does not match the venue");
  }
  out->num_doors = n;
  if (!r.Pod(&out->seg_offsets, 2 * num_doors + 1) ||
      out->seg_offsets[0] != 0) {
    return CorruptSection(kKind, "malformed segment offsets");
  }
  for (size_t s = 0; s + 1 < out->seg_offsets.size(); ++s) {
    if (out->seg_offsets[s] > out->seg_offsets[s + 1]) {
      return CorruptSection(kKind, "segment offsets not non-decreasing");
    }
  }
  const uint64_t edges = out->seg_offsets[2 * n];
  if (!r.Pod(&out->seg_partition, 2 * num_doors) ||
      !r.Pod(&out->neighbor_ids, edges) ||
      !r.Pod(&out->neighbor_weights, edges) || !r.Exhausted()) {
    return CorruptSection(kKind, "edge pool truncated");
  }
  // Adopted verbatim — but verify the invariants the unchecked
  // relaxation loop relies on, so a checksum-colliding corruption can
  // never index out of bounds or poison the frontier with NaN.
  for (size_t d = 0; d < n; ++d) {
    const Door& door = venue.door(static_cast<DoorId>(d));
    for (size_t side = 0; side < 2; ++side) {
      if (out->seg_partition[2 * d + side] != door.partitions[side]) {
        return CorruptSection(
            kKind, "segment partition disagrees with door " +
                       std::to_string(d));
      }
    }
    for (uint32_t k = out->seg_offsets[2 * d]; k < out->seg_offsets[2 * d + 2];
         ++k) {
      const uint32_t id = out->neighbor_ids[k];
      const double weight = out->neighbor_weights[k];
      if (id >= n || id == d || !std::isfinite(weight) || weight < 0) {
        return CorruptSection(kKind, "corrupt edge out of door " +
                                         std::to_string(d));
      }
    }
  }
  out->RecomputeWeightExtremes();
  *adj = std::move(out);
  return Status::Ok();
}

Status ArtifactCodec::ParseVenue(
    const MetaSection& meta, const std::map<uint32_t, ByteReader>& sections,
    Venue* venue) {
  const size_t P = static_cast<size_t>(meta.num_partitions);
  const size_t n = static_cast<size_t>(meta.num_doors);
  auto reader = [&sections](ArtifactSection kind) {
    return sections.at(static_cast<uint32_t>(kind));  // copy: fresh cursor
  };

  {
    constexpr uint32_t kKind =
        static_cast<uint32_t>(ArtifactSection::kPartitions);
    ByteReader r = reader(ArtifactSection::kPartitions);
    venue->partitions_.resize(P);
    for (Partition& p : venue->partitions_) {
      uint32_t pad;
      if (!r.F64(&p.rect.min_x) || !r.F64(&p.rect.min_y) ||
          !r.F64(&p.rect.max_x) || !r.F64(&p.rect.max_y) ||
          !r.I32(&p.floor) || !r.U32(&pad)) {
        return CorruptSection(kKind, "truncated partition record");
      }
    }
    if (!r.Exhausted()) return CorruptSection(kKind, "trailing bytes");
  }

  {
    constexpr uint32_t kKind = static_cast<uint32_t>(ArtifactSection::kDoors);
    ByteReader r = reader(ArtifactSection::kDoors);
    venue->doors_.resize(n);
    for (Door& d : venue->doors_) {
      uint32_t pad;
      if (!r.F64(&d.pos.x) || !r.F64(&d.pos.y) || !r.I32(&d.floor) ||
          !r.I32(&d.partitions[0]) || !r.I32(&d.partitions[1]) ||
          !r.U32(&pad)) {
        return CorruptSection(kKind, "truncated door record");
      }
      for (PartitionId p : d.partitions) {
        if (p < 0 || static_cast<size_t>(p) >= P) {
          return CorruptSection(kKind, "door references unknown partition");
        }
      }
    }
    if (!r.Exhausted()) return CorruptSection(kKind, "trailing bytes");
  }

  {
    constexpr uint32_t kKind =
        static_cast<uint32_t>(ArtifactSection::kDoorAtis);
    ByteReader r = reader(ArtifactSection::kDoorAtis);
    uint64_t offset_count = 0;
    std::vector<uint64_t> offsets;
    if (!r.U64(&offset_count) || offset_count != n + 1 ||
        !ReadCsrOffsets(r, n, &offsets)) {
      return CorruptSection(kKind, "malformed interval offsets");
    }
    std::vector<TimeInterval> pool;
    if (!r.Pod(&pool, offsets[n]) || !r.Exhausted()) {
      return CorruptSection(kKind, "interval pool truncated");
    }
    for (size_t d = 0; d < n; ++d) {
      venue->doors_[d].ati_intervals.assign(
          pool.begin() + static_cast<size_t>(offsets[d]),
          pool.begin() + static_cast<size_t>(offsets[d + 1]));
    }
  }

  {
    constexpr uint32_t kKind = static_cast<uint32_t>(ArtifactSection::kDoorsOf);
    ByteReader r = reader(ArtifactSection::kDoorsOf);
    std::vector<uint64_t> offsets;
    if (!ReadCsrOffsets(r, P, &offsets)) {
      return CorruptSection(kKind, "malformed door-list offsets");
    }
    std::vector<DoorId> pool;
    if (!r.Pod(&pool, offsets[P]) || !r.Exhausted()) {
      return CorruptSection(kKind, "door pool truncated");
    }
    for (DoorId d : pool) {
      if (d < 0 || static_cast<size_t>(d) >= n) {
        return CorruptSection(kKind, "door id out of range");
      }
    }
    venue->doors_of_.resize(P);
    for (size_t p = 0; p < P; ++p) {
      venue->doors_of_[p].assign(
          pool.begin() + static_cast<size_t>(offsets[p]),
          pool.begin() + static_cast<size_t>(offsets[p + 1]));
    }
  }

  {
    constexpr uint32_t kKind =
        static_cast<uint32_t>(ArtifactSection::kDistanceMatrices);
    ByteReader r = reader(ArtifactSection::kDistanceMatrices);
    struct Record {
      uint64_t num_doors;
      int32_t base_id;
      uint32_t li_len;
    };
    std::vector<Record> records(P);
    for (Record& rec : records) {
      if (!r.U64(&rec.num_doors) || !r.I32(&rec.base_id) ||
          !r.U32(&rec.li_len) || rec.num_doors > n) {
        return CorruptSection(kKind, "malformed matrix record");
      }
    }
    venue->distance_matrices_.resize(P);
    for (size_t p = 0; p < P; ++p) {
      DistanceMatrix& dm = venue->distance_matrices_[p];
      dm.num_doors_ = static_cast<size_t>(records[p].num_doors);
      dm.base_id_ = records[p].base_id;
      if (!r.Pod(&dm.local_index_, records[p].li_len)) {
        return CorruptSection(kKind, "local-index pool truncated");
      }
    }
    for (size_t p = 0; p < P; ++p) {
      DistanceMatrix& dm = venue->distance_matrices_[p];
      if (!r.Pod(&dm.matrix_, static_cast<uint64_t>(dm.num_doors_) *
                                  dm.num_doors_)) {
        return CorruptSection(kKind, "matrix pool truncated");
      }
    }
    if (!r.Exhausted()) return CorruptSection(kKind, "trailing bytes");
    // DistanceUnchecked performs no bounds checks at query time, so
    // verify here that every door on a partition's boundary resolves to
    // a valid local index in that partition's matrix.
    for (size_t p = 0; p < P; ++p) {
      const DistanceMatrix& dm = venue->distance_matrices_[p];
      for (DoorId d : venue->doors_of_[p]) {
        const int64_t li = static_cast<int64_t>(d) - dm.base_id_;
        if (li < 0 || static_cast<size_t>(li) >= dm.local_index_.size() ||
            dm.local_index_[static_cast<size_t>(li)] < 0 ||
            static_cast<size_t>(dm.local_index_[static_cast<size_t>(li)]) >=
                dm.num_doors_) {
          return CorruptSection(
              kKind, "partition " + std::to_string(p) +
                         " matrix does not cover its boundary doors");
        }
      }
    }
  }

  {
    constexpr uint32_t kKind =
        static_cast<uint32_t>(ArtifactSection::kFloorIndex);
    ByteReader r = reader(ArtifactSection::kFloorIndex);
    uint32_t num_floors = 0;
    if (!r.I32(&venue->min_floor_) || !r.U32(&num_floors) ||
        num_floors > 4096) {
      return CorruptSection(kKind, "malformed floor header");
    }
    venue->floor_index_.resize(num_floors);
    for (Venue::FloorIndex& fi : venue->floor_index_) {
      if (!r.F64(&fi.origin_x) || !r.F64(&fi.origin_y) || !r.F64(&fi.cell) ||
          !r.I32(&fi.cols) || !r.I32(&fi.rows) || fi.cols < 0 || fi.rows < 0 ||
          fi.cell <= 0) {
        return CorruptSection(kKind, "malformed grid header");
      }
      const uint64_t ncells =
          static_cast<uint64_t>(fi.cols) * static_cast<uint64_t>(fi.rows);
      if (ncells > r.Remaining() / sizeof(uint64_t)) {
        return CorruptSection(kKind, "implausible grid size");
      }
      std::vector<uint64_t> offsets;
      if (!ReadCsrOffsets(r, static_cast<size_t>(ncells), &offsets)) {
        return CorruptSection(kKind, "malformed cell offsets");
      }
      std::vector<PartitionId> pool;
      if (!r.Pod(&pool, offsets[static_cast<size_t>(ncells)])) {
        return CorruptSection(kKind, "cell pool truncated");
      }
      for (PartitionId p : pool) {
        if (p < 0 || static_cast<size_t>(p) >= P) {
          return CorruptSection(kKind, "cell references unknown partition");
        }
      }
      fi.cells.resize(static_cast<size_t>(ncells));
      for (size_t c = 0; c < fi.cells.size(); ++c) {
        fi.cells[c].assign(pool.begin() + static_cast<size_t>(offsets[c]),
                           pool.begin() + static_cast<size_t>(offsets[c + 1]));
      }
    }
    if (!r.Exhausted()) return CorruptSection(kKind, "trailing bytes");
  }

  return Status::Ok();
}

StatusOr<LoadedVenueWorld> ArtifactCodec::Decode(const uint8_t* data,
                                                 size_t size) {
  std::vector<ArtifactSectionEntry> table;
  Status header_ok = CheckHeaderAndTable(data, size, &table);
  if (!header_ok.ok()) return header_ok;

  // Verify every payload checksum before interpreting a single byte.
  std::map<uint32_t, ByteReader> sections;
  for (const ArtifactSectionEntry& e : table) {
    if (ArtifactChecksum(data + e.offset, e.bytes) != e.checksum) {
      return CorruptSection(e.kind, "checksum mismatch (corrupt artifact)");
    }
    if (!sections.emplace(e.kind, ByteReader(data + e.offset, e.bytes))
             .second) {
      return CorruptSection(e.kind, "duplicate section");
    }
  }
  auto require = [&sections](ArtifactSection kind) -> Status {
    if (sections.count(static_cast<uint32_t>(kind)) == 0) {
      return InvalidArgumentError(
          std::string("artifact is missing required section ") +
          SectionName(static_cast<uint32_t>(kind)));
    }
    return Status::Ok();
  };
  for (ArtifactSection kind :
       {ArtifactSection::kMeta, ArtifactSection::kPartitions,
        ArtifactSection::kDoors, ArtifactSection::kDoorAtis,
        ArtifactSection::kDoorsOf, ArtifactSection::kDistanceMatrices,
        ArtifactSection::kFloorIndex, ArtifactSection::kCompiledAtis,
        ArtifactSection::kAdjacencyCsr, ArtifactSection::kCheckpoints,
        ArtifactSection::kFlipIndex}) {
    Status s = require(kind);
    if (!s.ok()) return s;
  }

  MetaSection meta;
  {
    ByteReader r = sections.at(static_cast<uint32_t>(ArtifactSection::kMeta));
    Status s = ParseMeta(r, &meta);
    if (!s.ok()) return s;
  }
  const size_t n = static_cast<size_t>(meta.num_doors);

  LoadedVenueWorld world;
  world.label = meta.label;
  {
    Venue venue;
    Status s = ParseVenue(meta, sections, &venue);
    if (!s.ok()) return s;
    world.venue = std::make_unique<Venue>(std::move(venue));
  }

  {
    ByteReader r =
        sections.at(static_cast<uint32_t>(ArtifactSection::kCompiledAtis));
    Status s = ParseCompiledAtis(r, n, &world.atis);
    if (!s.ok()) return s;
  }

  {
    ByteReader r =
        sections.at(static_cast<uint32_t>(ArtifactSection::kAdjacencyCsr));
    Status s = ParseAdjacencyCsr(r, *world.venue, &world.adjacency);
    if (!s.ok()) return s;
  }

  {
    constexpr uint32_t kKind =
        static_cast<uint32_t>(ArtifactSection::kCheckpoints);
    ByteReader r = sections.at(kKind);
    uint64_t count = 0;
    if (!r.U64(&count) || !r.Pod(&world.checkpoint_times, count) ||
        !r.Exhausted()) {
      return CorruptSection(kKind, "malformed");
    }
    for (size_t i = 0; i < world.checkpoint_times.size(); ++i) {
      const double t = world.checkpoint_times[i];
      const bool ordered = i == 0 || world.checkpoint_times[i - 1] < t;
      if (!(t > 0) || !(t < kSecondsPerDay) || !ordered) {
        return CorruptSection(kKind, "times not strictly increasing in (0, "
                                     "86400)");
      }
    }
  }

  {
    constexpr uint32_t kKind =
        static_cast<uint32_t>(ArtifactSection::kFlipIndex);
    ByteReader r = sections.at(kKind);
    uint64_t boundaries = 0;
    std::vector<uint64_t> offsets;
    if (!r.U64(&boundaries) ||
        boundaries != world.checkpoint_times.size() ||
        !ReadCsrOffsets(r, static_cast<size_t>(boundaries), &offsets)) {
      return CorruptSection(
          kKind, "boundary count does not match the checkpoint set");
    }
    std::vector<DoorId> pool;
    if (!r.Pod(&pool, offsets[static_cast<size_t>(boundaries)]) ||
        !r.Exhausted()) {
      return CorruptSection(kKind, "flip pool truncated");
    }
    world.flip_lists.resize(static_cast<size_t>(boundaries));
    for (size_t b = 0; b < world.flip_lists.size(); ++b) {
      const size_t begin = static_cast<size_t>(offsets[b]);
      const size_t end = static_cast<size_t>(offsets[b + 1]);
      if (begin == end) {
        return CorruptSection(kKind, "empty flip list for a checkpoint");
      }
      for (size_t i = begin; i < end; ++i) {
        const bool in_range = pool[i] >= 0 && static_cast<size_t>(pool[i]) < n;
        const bool ascending = i == begin || pool[i - 1] < pool[i];
        if (!in_range || !ascending) {
          return CorruptSection(kKind, "flip list corrupt at boundary " +
                                           std::to_string(b));
        }
      }
      world.flip_lists[b].assign(pool.begin() + begin, pool.begin() + end);
    }
  }

  const uint32_t d2d_kind = static_cast<uint32_t>(ArtifactSection::kD2d);
  if ((meta.flags & kFlagHasD2d) != 0) {
    if (sections.count(d2d_kind) == 0) {
      return InvalidArgumentError(
          "artifact flags declare a D2d section but none is present");
    }
    ByteReader r = sections.at(d2d_kind);
    uint64_t d2d_doors = 0;
    if (!r.U64(&d2d_doors) || d2d_doors != n ||
        !r.Pod(&world.d2d_matrix, d2d_doors * d2d_doors) || !r.Exhausted()) {
      return CorruptSection(d2d_kind, "malformed");
    }
  } else if (sections.count(d2d_kind) != 0) {
    return CorruptSection(d2d_kind, "present but not declared in Meta flags");
  }

  return world;
}

// ---------------------------------------------------------------------------
// World assembly
// ---------------------------------------------------------------------------

StatusOr<std::shared_ptr<const VersionedGraph>> ArtifactCodec::BuildWorld(
    LoadedVenueWorld world, const std::string& strategy,
    const RouterBuildOptions& options, const RouterRegistry* registry) {
  if (world.venue == nullptr) {
    return InvalidArgumentError("BuildWorldFromArtifact: world has no venue");
  }
  if (world.atis.size() != world.venue->NumDoors()) {
    return InvalidArgumentError(
        "BuildWorldFromArtifact: compiled AtiSet count does not match the "
        "venue's doors");
  }

  std::shared_ptr<VersionedGraph> version(new VersionedGraph());
  version->strategy_ = strategy;
  version->options_ = options;
  version->options_.warm_start = nullptr;
  version->registry_ = registry;
  version->venue_ = std::move(world.venue);

  // Adopt the compiled graph verbatim — the decode path already
  // verified the normalisation invariant, so no AtiSet::Create here.
  // The adjacency rides along from a v2 artifact; a hand-assembled
  // world without one pays the compile here instead.
  ItGraph graph(*version->venue_);
  graph.atis_ = std::move(world.atis);
  if (world.adjacency != nullptr &&
      world.adjacency->num_doors == version->venue_->NumDoors()) {
    graph.adj_ = std::move(world.adjacency);
  } else {
    graph.adj_ = std::make_shared<const CsrAdjacency>(
        CsrAdjacency::Compile(*version->venue_));
  }
  graph.CompileAtiRows();
  version->graph_ = std::make_unique<ItGraph>(std::move(graph));

  version->boundary_times_ = std::move(world.checkpoint_times);
  version->boundary_doors_ = std::move(world.flip_lists);

  Status status = version->FinishBuild(/*carry_from=*/nullptr, {}, {});
  if (!status.ok()) return status;
  return std::shared_ptr<const VersionedGraph>(std::move(version));
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

StatusOr<std::vector<uint8_t>> EncodeVenueArtifact(
    const Venue& venue, const ArtifactWriteOptions& options) {
  return ArtifactCodec::Encode(venue, options);
}

Status WriteVenueArtifact(const std::string& path, const Venue& venue,
                          const ArtifactWriteOptions& options) {
  auto image = ArtifactCodec::Encode(venue, options);
  if (!image.ok()) return image.status();

  // Write to a sibling temp file, then rename over the target, so a
  // crashed writer never leaves a half-written artifact at `path`.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return InternalError("cannot open " + tmp + " for writing");
    }
    out.write(reinterpret_cast<const char*>(image->data()),
              static_cast<std::streamsize>(image->size()));
    if (!out) {
      return InternalError("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return InternalError("cannot rename " + tmp + " to " + path);
  }
  return Status::Ok();
}

StatusOr<LoadedVenueWorld> DecodeVenueArtifact(const uint8_t* data,
                                               size_t size) {
  return ArtifactCodec::Decode(data, size);
}

namespace {

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return NotFoundError("cannot open artifact " + path);
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  out->resize(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(out->data()), size)) {
    return InternalError("short read from " + path);
  }
  return Status::Ok();
}

Status Annotate(const Status& status, const std::string& path) {
  if (status.ok()) return status;
  return Status(status.code(), path + ": " + status.message());
}

}  // namespace

StatusOr<LoadedVenueWorld> LoadVenueArtifact(const std::string& path) {
  std::vector<uint8_t> bytes;
  Status read = ReadFileBytes(path, &bytes);
  if (!read.ok()) return read;
  auto world = ArtifactCodec::Decode(bytes.data(), bytes.size());
  if (!world.ok()) return Annotate(world.status(), path);
  return world;
}

Status ValidateArtifactHeader(const std::string& path) {
  // Registration-time gate: reads only the header plus section table —
  // payload bytes stay on disk, so registering a whole fleet of shards
  // costs a few hundred bytes of I/O each, not the full file.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return NotFoundError("cannot open artifact " + path);
  }
  const size_t file_bytes = static_cast<size_t>(in.tellg());
  in.seekg(0);

  std::vector<uint8_t> prefix(std::min(file_bytes, sizeof(ArtifactHeader)));
  if (!prefix.empty() &&
      !in.read(reinterpret_cast<char*>(prefix.data()), prefix.size())) {
    return InternalError("short read from " + path);
  }
  std::vector<ArtifactSectionEntry> table;
  if (prefix.size() == sizeof(ArtifactHeader)) {
    // The header is intact enough to size the table; pull it in too.
    // A bogus section_count is clamped to the file — CheckHeaderAndTable
    // rejects "truncated inside the section table" before touching it.
    ArtifactHeader header;
    std::memcpy(&header, prefix.data(), sizeof(header));
    const uint64_t table_bytes =
        static_cast<uint64_t>(header.section_count) *
        sizeof(ArtifactSectionEntry);
    const size_t want = sizeof(ArtifactHeader) +
                        static_cast<size_t>(std::min<uint64_t>(
                            table_bytes, file_bytes - sizeof(ArtifactHeader)));
    prefix.resize(want);
    if (want > sizeof(ArtifactHeader) &&
        !in.read(reinterpret_cast<char*>(prefix.data() + sizeof(header)),
                 want - sizeof(header))) {
      return InternalError("short read from " + path);
    }
  }
  return Annotate(CheckHeaderAndTable(prefix.data(), file_bytes, &table),
                  path);
}

StatusOr<std::vector<std::string>> ReadFleetManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFoundError("cannot open manifest " + path);
  }
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? std::string() : path.substr(0, slash + 1);

  std::vector<std::string> artifacts;
  std::string line;
  while (std::getline(in, line)) {
    const size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos || line[begin] == '#') continue;
    const size_t end = line.find_last_not_of(" \t\r");
    std::string entry = line.substr(begin, end - begin + 1);
    if (entry[0] != '/') entry = dir + entry;
    artifacts.push_back(std::move(entry));
  }
  if (artifacts.empty()) {
    return InvalidArgumentError("manifest " + path + " lists no artifacts");
  }
  return artifacts;
}

StatusOr<std::shared_ptr<const VersionedGraph>> BuildWorldFromArtifact(
    LoadedVenueWorld world, const std::string& strategy,
    const RouterBuildOptions& options, const RouterRegistry* registry) {
  return ArtifactCodec::BuildWorld(std::move(world), strategy, options,
                                   registry);
}

}  // namespace itspq

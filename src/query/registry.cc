#include "query/registry.h"

#include <utility>

#include "query/strategies.h"

namespace itspq {

RouterRegistry& RouterRegistry::Global() {
  // Built-ins are registered in the accessor (not by file-scope
  // registrar objects) so static-library linking can never drop them.
  static RouterRegistry* registry = [] {
    auto* r = new RouterRegistry();
    auto add_itg = [&](TvMode mode) {
      (void)r->Register(TvModeName(mode),
                        [mode](const ItGraph& graph,
                               const RouterBuildOptions& options) {
                          return std::make_unique<ItgRouter>(graph, mode,
                                                             options);
                        });
    };
    add_itg(TvMode::kSynchronous);
    add_itg(TvMode::kAsynchronous);
    add_itg(TvMode::kAsynchronousStrict);
    (void)r->Register(
        "snap", [](const ItGraph& graph, const RouterBuildOptions& options) {
          return std::make_unique<SnapshotRouter>(graph, options);
        });
    (void)r->Register(
        "ntv", [](const ItGraph& graph, const RouterBuildOptions& options) {
          return std::make_unique<StaticRouter>(graph, options);
        });
    return r;
  }();
  return *registry;
}

Status RouterRegistry::Register(const std::string& name, Factory factory) {
  if (name.empty()) {
    return InvalidArgumentError("router name must be non-empty");
  }
  if (factory == nullptr) {
    return InvalidArgumentError("router factory must be non-null");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const bool inserted =
      factories_.emplace(name, std::move(factory)).second;
  if (!inserted) {
    return InvalidArgumentError("router '" + name + "' already registered");
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<Router>> RouterRegistry::Create(
    const std::string& name, const ItGraph& graph,
    const RouterBuildOptions& options) const {
  // Surface a bad policy name (including empty) here, where there is a
  // Status channel — the store constructor itself can only fall back.
  auto policy = MakeEvictionPolicy(options.snapshot_cache.policy, 1);
  if (!policy.ok()) return policy.status();
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = factories_.find(name);
    if (it == factories_.end()) {
      return NotFoundError("unknown router '" + name + "'");
    }
    factory = it->second;
  }
  return factory(graph, options);
}

bool RouterRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> RouterRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

StatusOr<std::unique_ptr<Router>> MakeRouter(const std::string& name,
                                             const ItGraph& graph,
                                             const RouterBuildOptions& options) {
  return RouterRegistry::Global().Create(name, graph, options);
}

}  // namespace itspq

#include "query/venue_catalog.h"

#include <atomic>
#include <utility>

#include "artifact/artifact.h"
#include "update/update_applier.h"

namespace itspq {

VenueCatalog::VenueCatalog(VenueCatalog&& other) noexcept
    : shards_(std::move(other.shards_)),
      residency_engaged_(
          other.residency_engaged_.load(std::memory_order_relaxed)),
      residency_policy_(std::move(other.residency_policy_)),
      residency_budget_bytes_(other.residency_budget_bytes_),
      resident_lazy_bytes_(other.resident_lazy_bytes_),
      shard_evictions_(other.shard_evictions_),
      load_latency_(other.load_latency_) {}

VenueCatalog& VenueCatalog::operator=(VenueCatalog&& other) noexcept {
  if (this != &other) {
    shards_ = std::move(other.shards_);
    residency_engaged_.store(
        other.residency_engaged_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    residency_policy_ = std::move(other.residency_policy_);
    residency_budget_bytes_ = other.residency_budget_bytes_;
    resident_lazy_bytes_ = other.resident_lazy_bytes_;
    shard_evictions_ = other.shard_evictions_;
    load_latency_ = other.load_latency_;
  }
  return *this;
}

StatusOr<VenueId> VenueCatalog::AddVenue(Venue venue,
                                         const std::string& strategy,
                                         std::string label,
                                         const RouterBuildOptions& options,
                                         const RouterRegistry* registry) {
  // Assemble the shard off to the side so a failed graph build or an
  // unknown strategy leaves the catalog untouched.
  auto shard = std::make_unique<Shard>();
  shard->strategy = strategy;
  shard->build_options = options;
  shard->build_options.warm_start = nullptr;
  // Stamp the shard's catalog id into the stored build options before
  // the first build: every router this shard ever constructs — now, on
  // an epoch rebuild after an update, or at lazy load time — inherits
  // the binding, so it can reject requests addressed to another venue.
  const VenueId id = static_cast<VenueId>(shards_.size());
  shard->build_options.bound_venue_id = id;

  auto world = VersionedGraph::Build(std::move(venue), strategy,
                                     shard->build_options, registry);
  if (!world.ok()) return world.status();
  shard->world = *std::move(world);

  shard->label = label.empty() ? "venue-" + std::to_string(id)
                               : std::move(label);
  shards_.push_back(std::move(shard));
  return id;
}

std::shared_ptr<const VersionedGraph> VenueCatalog::world(VenueId id) const {
  return std::atomic_load(&shard(id).world);
}

StatusOr<VenueId> VenueCatalog::AddArtifactShard(
    const std::string& path, const std::string& strategy, std::string label,
    const RouterBuildOptions& options, const RouterRegistry* registry) {
  // Fail registration — catalog untouched — on anything checkable
  // without loading payloads: a bad header/table or a strategy no
  // registry knows. Payload corruption surfaces at first load.
  Status header = ValidateArtifactHeader(path);
  if (!header.ok()) return header;
  const RouterRegistry& reg =
      registry != nullptr ? *registry : RouterRegistry::Global();
  if (!reg.Contains(strategy)) {
    return NotFoundError("AddArtifactShard: unknown strategy \"" + strategy +
                         "\"");
  }

  auto shard = std::make_unique<Shard>();
  shard->strategy = strategy;
  shard->build_options = options;
  shard->build_options.warm_start = nullptr;
  shard->artifact_path = path;
  shard->registry = registry;
  shard->lazy = true;

  // Same id stamping as AddVenue: the lazy load builds its router from
  // these stored options, so the binding survives load/evict cycles.
  const VenueId id = static_cast<VenueId>(shards_.size());
  shard->build_options.bound_venue_id = id;
  shard->label = label.empty() ? "venue-" + std::to_string(id)
                               : std::move(label);
  shards_.push_back(std::move(shard));
  return id;
}

StatusOr<std::shared_ptr<const VersionedGraph>> VenueCatalog::EnsureResident(
    VenueId id) const {
  const Shard& s = shard(id);
  std::shared_ptr<const VersionedGraph> world = std::atomic_load(&s.world);
  if (world != nullptr) {
    // Hot hit. Touch the eviction policy only when a budget is engaged
    // and the shard is actually in the evictable pool.
    if (s.lazy && residency_engaged_.load(std::memory_order_acquire) &&
        !s.unevictable.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(residency_mu_);
      if (s.policy_tracked) {
        residency_policy_->OnAccess(static_cast<size_t>(id));
      }
    }
    return world;
  }
  if (!s.lazy) {
    return InternalError("shard " + std::to_string(id) +
                         " is eager but has no world");
  }
  // Cold miss: serialize the load with the shard's writers so exactly
  // one thread pays the load and everyone else pins its result.
  std::lock_guard<std::mutex> lock(s.update_mu);
  world = std::atomic_load(&s.world);
  if (world != nullptr) return world;
  return LoadShardLocked(s, id);
}

StatusOr<std::shared_ptr<const VersionedGraph>> VenueCatalog::LoadShardLocked(
    const Shard& s, VenueId id) const {
  Timer timer;
  auto loaded = LoadVenueArtifact(s.artifact_path);
  if (!loaded.ok()) return loaded.status();
  auto built = BuildWorldFromArtifact(*std::move(loaded), s.strategy,
                                      s.build_options, s.registry);
  if (!built.ok()) return built.status();
  std::shared_ptr<const VersionedGraph> world = *std::move(built);

  std::atomic_store(&s.world, world);
  s.loads.fetch_add(1, std::memory_order_relaxed);
  const double micros = timer.ElapsedMicros();
  {
    std::lock_guard<std::mutex> lock(residency_mu_);
    load_latency_.Record(micros);
    // Pinned shards (first update in flight) serve outside the budget;
    // a racing SetResidencyBudget may have accounted us already.
    if (!s.unevictable.load(std::memory_order_relaxed) &&
        s.resident_bytes == 0) {
      s.resident_bytes = world->MemoryUsage();
      resident_lazy_bytes_ += s.resident_bytes;
      if (residency_policy_ != nullptr && !s.policy_tracked) {
        residency_policy_->OnInsert(static_cast<size_t>(id));
        s.policy_tracked = true;
        EvictToFitLocked(static_cast<size_t>(id));
      }
    }
  }
  return world;
}

void VenueCatalog::PinResidentLocked(const Shard& s, VenueId id) const {
  if (!s.lazy || s.unevictable.load(std::memory_order_relaxed)) return;
  s.unevictable.store(true, std::memory_order_relaxed);
  if (!residency_engaged_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(residency_mu_);
  if (s.policy_tracked) {
    // Untrack without dropping the world: the policy's OnEvict is its
    // "forget this id" hook, the published pointer stays.
    residency_policy_->OnEvict(static_cast<size_t>(id));
    s.policy_tracked = false;
  }
  resident_lazy_bytes_ -= s.resident_bytes;
  s.resident_bytes = 0;
}

void VenueCatalog::EvictToFitLocked(size_t protect) const {
  if (residency_policy_ == nullptr || residency_budget_bytes_ == 0) return;
  while (resident_lazy_bytes_ > residency_budget_bytes_) {
    size_t victim = 0;
    if (!residency_policy_->ChooseVictim(protect, &victim)) break;
    const Shard& v = *shards_[victim];
    residency_policy_->OnEvict(victim);
    v.policy_tracked = false;
    resident_lazy_bytes_ -= v.resident_bytes;
    v.resident_bytes = 0;
    // Readers that pinned this world finish on it; the slot going null
    // is what makes the next query reload.
    std::atomic_store(&v.world, std::shared_ptr<const VersionedGraph>());
    ++shard_evictions_;
  }
}

Status VenueCatalog::SetResidencyBudget(size_t budget_bytes,
                                        const std::string& policy) {
  auto made = MakeEvictionPolicy(policy, shards_.size());
  if (!made.ok()) return made.status();
  std::lock_guard<std::mutex> lock(residency_mu_);
  residency_policy_ = std::move(*made);
  residency_budget_bytes_ = budget_bytes;
  resident_lazy_bytes_ = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    s.policy_tracked = false;
    s.resident_bytes = 0;
    if (!s.lazy || s.unevictable.load(std::memory_order_relaxed)) continue;
    const std::shared_ptr<const VersionedGraph> world =
        std::atomic_load(&s.world);
    if (world == nullptr) continue;
    s.resident_bytes = world->MemoryUsage();
    resident_lazy_bytes_ += s.resident_bytes;
    residency_policy_->OnInsert(i);
    s.policy_tracked = true;
  }
  EvictToFitLocked(/*protect=*/shards_.size());
  residency_engaged_.store(true, std::memory_order_release);
  return Status::Ok();
}

StatusOr<UpdateOutcome> VenueCatalog::ApplyAtiUpdate(const AtiUpdate& update) {
  if (!Contains(update.venue_id)) {
    return NotFoundError("ApplyAtiUpdate: venue_id " +
                         std::to_string(update.venue_id) + " not in catalog (" +
                         std::to_string(shards_.size()) + " venues)");
  }
  Shard& s = *shards_[static_cast<size_t>(update.venue_id)];
  // One writer per shard at a time; readers keep loading the published
  // pointer throughout.
  std::lock_guard<std::mutex> lock(s.update_mu);
  // An updated shard diverges from its artifact, so pin it out of the
  // evictable pool BEFORE deriving the next epoch — the evictor must
  // never drop a world mid-transition.
  PinResidentLocked(s, update.venue_id);
  std::shared_ptr<const VersionedGraph> current = std::atomic_load(&s.world);
  if (current == nullptr) {
    // Updating a cold lazy shard: load it first, then apply on top.
    auto loaded = LoadShardLocked(s, update.venue_id);
    if (!loaded.ok()) {
      s.updates_rejected.fetch_add(1, std::memory_order_relaxed);
      return loaded.status();
    }
    current = *std::move(loaded);
  }
  UpdateOutcome outcome;
  auto next = UpdateApplier::Apply(*current, update, &outcome);
  if (!next.ok()) {
    s.updates_rejected.fetch_add(1, std::memory_order_relaxed);
    return next.status();
  }
  std::atomic_store(&s.world,
                    std::shared_ptr<const VersionedGraph>(*std::move(next)));
  s.updates_applied.fetch_add(1, std::memory_order_relaxed);
  s.update_snapshots_carried.fetch_add(outcome.snapshots_carried,
                                       std::memory_order_relaxed);
  s.update_snapshots_rebased.fetch_add(outcome.snapshots_rebased,
                                       std::memory_order_relaxed);
  s.update_intervals_invalidated.fetch_add(outcome.intervals_invalidated,
                                           std::memory_order_relaxed);
  return outcome;
}

void VenueCatalog::ApportionSnapshotBudget(size_t total_bytes) {
  if (shards_.empty()) return;
  // A non-zero total must stay a binding budget after the split: 0
  // means "unlimited" to the stores, so floor each slice at one byte
  // (each store keeps one snapshot resident regardless).
  size_t per_shard = total_bytes / shards_.size();
  if (total_bytes != 0 && per_shard == 0) per_shard = 1;
  for (auto& shard : shards_) {
    // Serialize against writers: SetSnapshotBudget hits the CURRENT
    // version's store, and recording the slice in build_options lets
    // the next epoch inherit it even if the store had no reads yet —
    // including the epoch a cold lazy shard will build at load time.
    std::lock_guard<std::mutex> lock(shard->update_mu);
    shard->build_options.snapshot_cache.budget_bytes = per_shard;
    const std::shared_ptr<const VersionedGraph> world =
        std::atomic_load(&shard->world);
    if (world != nullptr) world->router().SetSnapshotBudget(per_shard);
  }
}

CatalogStats VenueCatalog::Stats() const {
  CatalogStats report;
  report.shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    const std::shared_ptr<const VersionedGraph> world =
        std::atomic_load(&shard.world);
    ShardStats s;
    s.venue_id = static_cast<VenueId>(i);
    s.label = shard.label;
    s.strategy = shard.strategy;
    s.queries_served = shard.queries_served.load(std::memory_order_relaxed);
    s.routes_found = shard.routes_found.load(std::memory_order_relaxed);
    s.routes_not_found =
        shard.routes_not_found.load(std::memory_order_relaxed);
    s.route_errors = shard.route_errors.load(std::memory_order_relaxed);
    s.updates_applied = shard.updates_applied.load(std::memory_order_relaxed);
    s.updates_rejected =
        shard.updates_rejected.load(std::memory_order_relaxed);
    s.update_snapshots_carried =
        shard.update_snapshots_carried.load(std::memory_order_relaxed);
    s.update_snapshots_rebased =
        shard.update_snapshots_rebased.load(std::memory_order_relaxed);
    s.update_intervals_invalidated =
        shard.update_intervals_invalidated.load(std::memory_order_relaxed);
    s.lazy = shard.lazy;
    s.resident = world != nullptr;
    s.loads = shard.loads.load(std::memory_order_relaxed);
    if (world != nullptr) {
      s.epoch = world->epoch();
      s.cache = world->router().CacheStats();
      s.snapshot_builds = s.cache.builds();
      s.memory_bytes = world->MemoryUsage();
    }

    if (s.lazy) ++report.lazy_shards;
    if (s.resident) ++report.resident_shards;
    report.total_loads += s.loads;
    report.total_queries += s.queries_served;
    report.total_found += s.routes_found;
    report.total_not_found += s.routes_not_found;
    report.total_errors += s.route_errors;
    report.total_snapshot_builds += s.snapshot_builds;
    report.total_memory_bytes += s.memory_bytes;
    report.total_updates_applied += s.updates_applied;
    report.total_updates_rejected += s.updates_rejected;
    report.total_update_snapshots_carried += s.update_snapshots_carried;
    report.total_update_intervals_invalidated +=
        s.update_intervals_invalidated;
    report.total_cache.Accumulate(s.cache);
    report.shards.push_back(std::move(s));
  }
  {
    std::lock_guard<std::mutex> lock(residency_mu_);
    report.total_shard_evictions = shard_evictions_;
    report.residency_budget_bytes = residency_budget_bytes_;
    report.resident_lazy_bytes = resident_lazy_bytes_;
    report.load_latency = load_latency_;
  }
  return report;
}

}  // namespace itspq

#include "query/venue_catalog.h"

#include <atomic>
#include <utility>

#include "update/update_applier.h"

namespace itspq {

StatusOr<VenueId> VenueCatalog::AddVenue(Venue venue,
                                         const std::string& strategy,
                                         std::string label,
                                         const RouterBuildOptions& options,
                                         const RouterRegistry* registry) {
  // Assemble the shard off to the side so a failed graph build or an
  // unknown strategy leaves the catalog untouched.
  auto shard = std::make_unique<Shard>();
  shard->strategy = strategy;
  shard->build_options = options;
  shard->build_options.warm_start = nullptr;

  auto world = VersionedGraph::Build(std::move(venue), strategy,
                                     shard->build_options, registry);
  if (!world.ok()) return world.status();
  shard->world = *std::move(world);

  const VenueId id = static_cast<VenueId>(shards_.size());
  shard->label = label.empty() ? "venue-" + std::to_string(id)
                               : std::move(label);
  shards_.push_back(std::move(shard));
  return id;
}

std::shared_ptr<const VersionedGraph> VenueCatalog::world(VenueId id) const {
  return std::atomic_load(&shard(id).world);
}

StatusOr<UpdateOutcome> VenueCatalog::ApplyAtiUpdate(const AtiUpdate& update) {
  if (!Contains(update.venue_id)) {
    return NotFoundError("ApplyAtiUpdate: venue_id " +
                         std::to_string(update.venue_id) + " not in catalog (" +
                         std::to_string(shards_.size()) + " venues)");
  }
  Shard& s = *shards_[static_cast<size_t>(update.venue_id)];
  // One writer per shard at a time; readers keep loading the published
  // pointer throughout.
  std::lock_guard<std::mutex> lock(s.update_mu);
  const std::shared_ptr<const VersionedGraph> current =
      std::atomic_load(&s.world);
  UpdateOutcome outcome;
  auto next = UpdateApplier::Apply(*current, update, &outcome);
  if (!next.ok()) {
    s.updates_rejected.fetch_add(1, std::memory_order_relaxed);
    return next.status();
  }
  std::atomic_store(&s.world,
                    std::shared_ptr<const VersionedGraph>(*std::move(next)));
  s.updates_applied.fetch_add(1, std::memory_order_relaxed);
  s.update_snapshots_carried.fetch_add(outcome.snapshots_carried,
                                       std::memory_order_relaxed);
  s.update_snapshots_rebased.fetch_add(outcome.snapshots_rebased,
                                       std::memory_order_relaxed);
  s.update_intervals_invalidated.fetch_add(outcome.intervals_invalidated,
                                           std::memory_order_relaxed);
  return outcome;
}

void VenueCatalog::ApportionSnapshotBudget(size_t total_bytes) {
  if (shards_.empty()) return;
  // A non-zero total must stay a binding budget after the split: 0
  // means "unlimited" to the stores, so floor each slice at one byte
  // (each store keeps one snapshot resident regardless).
  size_t per_shard = total_bytes / shards_.size();
  if (total_bytes != 0 && per_shard == 0) per_shard = 1;
  for (auto& shard : shards_) {
    // Serialize against writers: SetSnapshotBudget hits the CURRENT
    // version's store, and recording the slice in build_options lets
    // the next epoch inherit it even if the store had no reads yet.
    std::lock_guard<std::mutex> lock(shard->update_mu);
    shard->build_options.snapshot_cache.budget_bytes = per_shard;
    std::atomic_load(&shard->world)->router().SetSnapshotBudget(per_shard);
  }
}

CatalogStats VenueCatalog::Stats() const {
  CatalogStats report;
  report.shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    const std::shared_ptr<const VersionedGraph> world =
        std::atomic_load(&shard.world);
    ShardStats s;
    s.venue_id = static_cast<VenueId>(i);
    s.label = shard.label;
    s.strategy = shard.strategy;
    s.queries_served = shard.queries_served.load(std::memory_order_relaxed);
    s.routes_found = shard.routes_found.load(std::memory_order_relaxed);
    s.route_errors = shard.route_errors.load(std::memory_order_relaxed);
    s.epoch = world->epoch();
    s.updates_applied = shard.updates_applied.load(std::memory_order_relaxed);
    s.updates_rejected =
        shard.updates_rejected.load(std::memory_order_relaxed);
    s.update_snapshots_carried =
        shard.update_snapshots_carried.load(std::memory_order_relaxed);
    s.update_snapshots_rebased =
        shard.update_snapshots_rebased.load(std::memory_order_relaxed);
    s.update_intervals_invalidated =
        shard.update_intervals_invalidated.load(std::memory_order_relaxed);
    s.cache = world->router().CacheStats();
    s.snapshot_builds = s.cache.builds();
    s.memory_bytes = world->MemoryUsage();

    report.total_queries += s.queries_served;
    report.total_found += s.routes_found;
    report.total_errors += s.route_errors;
    report.total_snapshot_builds += s.snapshot_builds;
    report.total_memory_bytes += s.memory_bytes;
    report.total_updates_applied += s.updates_applied;
    report.total_updates_rejected += s.updates_rejected;
    report.total_update_snapshots_carried += s.update_snapshots_carried;
    report.total_update_intervals_invalidated +=
        s.update_intervals_invalidated;
    report.total_cache.Accumulate(s.cache);
    report.shards.push_back(std::move(s));
  }
  return report;
}

}  // namespace itspq

#include "query/venue_catalog.h"

#include <atomic>
#include <utility>

namespace itspq {

StatusOr<VenueId> VenueCatalog::AddVenue(Venue venue,
                                         const std::string& strategy,
                                         std::string label,
                                         const RouterBuildOptions& options,
                                         const RouterRegistry* registry) {
  if (registry == nullptr) registry = &RouterRegistry::Global();

  // Assemble the shard off to the side so a failed graph build or an
  // unknown strategy leaves the catalog untouched.
  auto shard = std::make_unique<Shard>();
  shard->strategy = strategy;
  shard->venue = std::make_unique<Venue>(std::move(venue));

  auto graph = ItGraph::Build(*shard->venue);
  if (!graph.ok()) return graph.status();
  shard->graph = std::make_unique<ItGraph>(*std::move(graph));

  auto router = registry->Create(strategy, *shard->graph, options);
  if (!router.ok()) return router.status();
  shard->router = *std::move(router);

  const VenueId id = static_cast<VenueId>(shards_.size());
  shard->label = label.empty() ? "venue-" + std::to_string(id)
                               : std::move(label);
  shards_.push_back(std::move(shard));
  return id;
}

void VenueCatalog::ApportionSnapshotBudget(size_t total_bytes) {
  if (shards_.empty()) return;
  // A non-zero total must stay a binding budget after the split: 0
  // means "unlimited" to the stores, so floor each slice at one byte
  // (each store keeps one snapshot resident regardless).
  size_t per_shard = total_bytes / shards_.size();
  if (total_bytes != 0 && per_shard == 0) per_shard = 1;
  for (auto& shard : shards_) {
    shard->router->SetSnapshotBudget(per_shard);
  }
}

CatalogStats VenueCatalog::Stats() const {
  CatalogStats report;
  report.shards.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    ShardStats s;
    s.venue_id = static_cast<VenueId>(i);
    s.label = shard.label;
    s.strategy = shard.strategy;
    s.queries_served = shard.queries_served.load(std::memory_order_relaxed);
    s.routes_found = shard.routes_found.load(std::memory_order_relaxed);
    s.route_errors = shard.route_errors.load(std::memory_order_relaxed);
    s.cache = shard.router->CacheStats();
    s.snapshot_builds = s.cache.builds();
    s.memory_bytes = shard.venue->MemoryUsage() + shard.graph->MemoryUsage() +
                     shard.router->MemoryUsage();

    report.total_queries += s.queries_served;
    report.total_found += s.routes_found;
    report.total_errors += s.route_errors;
    report.total_snapshot_builds += s.snapshot_builds;
    report.total_memory_bytes += s.memory_bytes;
    report.total_cache.Accumulate(s.cache);
    report.shards.push_back(std::move(s));
  }
  return report;
}

}  // namespace itspq

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "itgraph/door_search.h"
#include "query/reconstruct.h"
#include "query/scratch.h"
#include "query/strategies.h"

namespace itspq {

namespace {

using internal::SearchScratch;

// Turns a full DoorDijkstra run into a QueryResult: picks the best
// (door route vs direct walk) completion and reconstructs the path with
// arrival-time projection from `dep` seconds.
QueryResult AssembleResult(const internal::DoorSearchResult& search,
                           const internal::PointAttachment& src,
                           const internal::PointAttachment& dst,
                           const QueryRequest& request, double dep) {
  QueryResult result;
  const auto [best_total, best_door] = internal::BestCompletion(
      src, dst, request.source.p, request.target.p,
      [&](DoorId door) { return search.Dist(static_cast<size_t>(door)); });
  if (!std::isfinite(best_total)) return result;

  result.found = true;
  result.path = internal::ReconstructPath(search.dist, search.parent,
                                          best_door, best_total, dep);
  return result;
}

// The sweep families over a static open-door mask, shared by SNAP
// (departure-interval mask) and NTV (no mask): one DoorDijkstra from
// the source, then collect the settled doors — within the time budget
// for kReachability, the k nearest of the requested facility doors for
// kNearestFacility. Arrivals are projected as dep + dist *
// kInvWalkSpeedMps, the exact multiplication the oracles replay.
QueryResult SweepFromSearch(const internal::DoorSearchResult& search,
                            size_t num_doors, const QueryRequest& request) {
  QueryResult result;
  const double dep = request.departure.seconds();
  if (request.kind == QueryKind::kReachability) {
    for (size_t i = 0; i < num_doors; ++i) {
      if (!search.Settled(i)) continue;
      const double d = search.Dist(i);
      if (d * kInvWalkSpeedMps > request.budget_seconds) continue;
      result.reachable.push_back({static_cast<DoorId>(i), d,
                                  dep + d * kInvWalkSpeedMps});
    }
  } else {
    // Dedup the requested doors so a repeated id yields one entry, as
    // the stamp-based ItgRouter sweep does.
    std::vector<DoorId> facilities = request.facilities;
    std::sort(facilities.begin(), facilities.end());
    facilities.erase(std::unique(facilities.begin(), facilities.end()),
                     facilities.end());
    for (DoorId door : facilities) {
      const size_t i = static_cast<size_t>(door);
      if (!search.Settled(i)) continue;
      const double d = search.Dist(i);
      result.reachable.push_back({door, d, dep + d * kInvWalkSpeedMps});
    }
  }
  internal::SortReachable(&result.reachable);
  if (request.kind == QueryKind::kNearestFacility &&
      result.reachable.size() > request.k) {
    result.reachable.resize(request.k);
  }
  result.found = !result.reachable.empty();
  return result;
}

}  // namespace

SnapshotRouter::SnapshotRouter(const ItGraph& graph,
                               const RouterBuildOptions& options)
    : Router("snap", graph,
             options.warm_start ? options.warm_start->checkpoints : nullptr),
      snapshot_store_(graph, checkpoints(), options.snapshot_cache,
                      options.warm_start) {
  BindVenueId(options.bound_venue_id);
}

CacheStatsSnapshot SnapshotRouter::CacheStats() const {
  return snapshot_store_.Stats();
}

void SnapshotRouter::SetSnapshotBudget(size_t budget_bytes) const {
  snapshot_store_.SetBudget(budget_bytes);
}

size_t SnapshotRouter::MemoryUsage() const {
  return Router::MemoryUsage() + snapshot_store_.MemoryUsage();
}

StatusOr<QueryResult> SnapshotRouter::Route(const QueryRequest& request,
                                            QueryContext* context) const {
  Timer timer;
  const Venue& venue = graph().venue();

  Status valid = internal::ValidateRequest(request, bound_venue_id(),
                                           graph().NumDoors());
  if (!valid.ok()) return valid;
  if (request.kind == QueryKind::kMultiStop) {
    return internal::RouteMultiStop(*this, request, context);
  }
  if (request.kind != QueryKind::kPointToPoint) {
    return RouteSweep(request, context);
  }

  internal::PointAttachment src, dst;
  Status attached = internal::AttachEndpoints(venue, request, &src, &dst);
  if (!attached.ok()) return attached;

  std::optional<QueryContext> local_context;
  SearchScratch& s = internal::ScratchFor(context, local_context);

  // The shared_ptr pins the snapshot for the whole search, so a
  // concurrent eviction can never free the mask under the Dijkstra.
  bool built_now = false;
  const std::shared_ptr<const GraphSnapshot> snapshot = snapshot_store_.Get(
      checkpoints().IntervalIndexOf(request.departure.TimeOfDay()),
      &built_now);
  internal::DoorDijkstra(graph(), src.door_offsets, &snapshot->open,
                         &s.door_search);

  QueryResult result = AssembleResult(s.door_search, src, dst, request,
                                      request.departure.seconds());
  if (built_now) result.stats.graph_updates = 1;
  result.stats.search_micros = timer.ElapsedMicros();
  return result;
}

StatusOr<QueryResult> SnapshotRouter::RouteSweep(const QueryRequest& request,
                                                 QueryContext* context) const {
  Timer timer;
  const Venue& venue = graph().venue();
  auto attached = internal::AttachPoint(venue, request.source);
  if (!attached.ok()) {
    return Status(attached.status().code(),
                  "source " + attached.status().message());
  }

  std::optional<QueryContext> local_context;
  SearchScratch& s = internal::ScratchFor(context, local_context);

  bool built_now = false;
  const std::shared_ptr<const GraphSnapshot> snapshot = snapshot_store_.Get(
      checkpoints().IntervalIndexOf(request.departure.TimeOfDay()),
      &built_now);
  internal::DoorDijkstra(graph(), attached->door_offsets, &snapshot->open,
                         &s.door_search);

  QueryResult result = SweepFromSearch(s.door_search, graph().NumDoors(),
                                       request);
  if (built_now) result.stats.graph_updates = 1;
  result.stats.search_micros = timer.ElapsedMicros();
  return result;
}

StaticRouter::StaticRouter(const ItGraph& graph,
                           const RouterBuildOptions& options)
    : Router("ntv", graph) {
  BindVenueId(options.bound_venue_id);
}

StatusOr<QueryResult> StaticRouter::Route(const QueryRequest& request,
                                          QueryContext* context) const {
  Timer timer;
  const Venue& venue = graph().venue();

  Status valid = internal::ValidateRequest(request, bound_venue_id(),
                                           graph().NumDoors());
  if (!valid.ok()) return valid;
  if (request.kind == QueryKind::kMultiStop) {
    return internal::RouteMultiStop(*this, request, context);
  }
  if (request.kind != QueryKind::kPointToPoint) {
    return RouteSweep(request, context);
  }

  internal::PointAttachment src, dst;
  Status attached = internal::AttachEndpoints(venue, request, &src, &dst);
  if (!attached.ok()) return attached;

  std::optional<QueryContext> local_context;
  SearchScratch& s = internal::ScratchFor(context, local_context);

  internal::DoorDijkstra(graph(), src.door_offsets, nullptr,
                         &s.door_search);

  QueryResult result = AssembleResult(s.door_search, src, dst, request,
                                      request.departure.seconds());
  result.stats.search_micros = timer.ElapsedMicros();
  return result;
}

StatusOr<QueryResult> StaticRouter::RouteSweep(const QueryRequest& request,
                                               QueryContext* context) const {
  Timer timer;
  const Venue& venue = graph().venue();
  auto attached = internal::AttachPoint(venue, request.source);
  if (!attached.ok()) {
    return Status(attached.status().code(),
                  "source " + attached.status().message());
  }

  std::optional<QueryContext> local_context;
  SearchScratch& s = internal::ScratchFor(context, local_context);

  internal::DoorDijkstra(graph(), attached->door_offsets, nullptr,
                         &s.door_search);

  QueryResult result = SweepFromSearch(s.door_search, graph().NumDoors(),
                                       request);
  result.stats.search_micros = timer.ElapsedMicros();
  return result;
}

}  // namespace itspq

#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "itgraph/door_search.h"
#include "query/reconstruct.h"
#include "query/scratch.h"
#include "query/strategies.h"

namespace itspq {

namespace {

using internal::SearchScratch;

// Turns a full DoorDijkstra run into a QueryResult: picks the best
// (door route vs direct walk) completion and reconstructs the path with
// arrival-time projection from `dep` seconds.
QueryResult AssembleResult(const internal::DoorSearchResult& search,
                           const internal::PointAttachment& src,
                           const internal::PointAttachment& dst,
                           const QueryRequest& request, double dep) {
  QueryResult result;
  const auto [best_total, best_door] = internal::BestCompletion(
      src, dst, request.source.p, request.target.p,
      [&](DoorId door) { return search.Dist(static_cast<size_t>(door)); });
  if (!std::isfinite(best_total)) return result;

  result.found = true;
  result.path = internal::ReconstructPath(search.dist, search.parent,
                                          best_door, best_total, dep);
  return result;
}

}  // namespace

SnapshotRouter::SnapshotRouter(const ItGraph& graph,
                               const RouterBuildOptions& options)
    : Router("snap", graph,
             options.warm_start ? options.warm_start->checkpoints : nullptr),
      snapshot_store_(graph, checkpoints(), options.snapshot_cache,
                      options.warm_start) {}

CacheStatsSnapshot SnapshotRouter::CacheStats() const {
  return snapshot_store_.Stats();
}

void SnapshotRouter::SetSnapshotBudget(size_t budget_bytes) const {
  snapshot_store_.SetBudget(budget_bytes);
}

size_t SnapshotRouter::MemoryUsage() const {
  return Router::MemoryUsage() + snapshot_store_.MemoryUsage();
}

StatusOr<QueryResult> SnapshotRouter::Route(const QueryRequest& request,
                                            QueryContext* context) const {
  Timer timer;
  const Venue& venue = graph().venue();
  internal::PointAttachment src, dst;
  Status attached = internal::AttachEndpoints(venue, request, &src, &dst);
  if (!attached.ok()) return attached;

  std::optional<QueryContext> local_context;
  SearchScratch& s = internal::ScratchFor(context, local_context);

  // The shared_ptr pins the snapshot for the whole search, so a
  // concurrent eviction can never free the mask under the Dijkstra.
  bool built_now = false;
  const std::shared_ptr<const GraphSnapshot> snapshot = snapshot_store_.Get(
      checkpoints().IntervalIndexOf(request.departure.TimeOfDay()),
      &built_now);
  internal::DoorDijkstra(graph(), src.door_offsets, &snapshot->open,
                         &s.door_search);

  QueryResult result = AssembleResult(s.door_search, src, dst, request,
                                      request.departure.seconds());
  if (built_now) result.stats.graph_updates = 1;
  result.stats.search_micros = timer.ElapsedMicros();
  return result;
}

StaticRouter::StaticRouter(const ItGraph& graph) : Router("ntv", graph) {}

StatusOr<QueryResult> StaticRouter::Route(const QueryRequest& request,
                                          QueryContext* context) const {
  Timer timer;
  const Venue& venue = graph().venue();
  internal::PointAttachment src, dst;
  Status attached = internal::AttachEndpoints(venue, request, &src, &dst);
  if (!attached.ok()) return attached;

  std::optional<QueryContext> local_context;
  SearchScratch& s = internal::ScratchFor(context, local_context);

  internal::DoorDijkstra(graph(), src.door_offsets, nullptr,
                         &s.door_search);

  QueryResult result = AssembleResult(s.door_search, src, dst, request,
                                      request.departure.seconds());
  result.stats.search_micros = timer.ElapsedMicros();
  return result;
}

}  // namespace itspq

#include "query/baseline.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "itgraph/door_search.h"
#include "query/reconstruct.h"

namespace itspq {

namespace {

using internal::kInfDistance;

// Turns a full DoorDijkstra run into a QueryResult: picks the best
// (door route vs direct walk) completion and reconstructs the path with
// arrival-time projection from `dep` seconds.
QueryResult AssembleResult(const internal::DoorSearchResult& search,
                           const internal::PointAttachment& src,
                           const internal::PointAttachment& dst,
                           const IndoorPoint& ps, const IndoorPoint& pt,
                           double dep) {
  QueryResult result;
  const auto [best_total, best_door] = internal::BestCompletion(
      src, dst, ps.p, pt.p,
      [&](DoorId door) { return search.dist[static_cast<size_t>(door)]; });
  if (!std::isfinite(best_total)) return result;

  result.found = true;
  result.path = internal::ReconstructPath(search.dist, search.parent,
                                          best_door, best_total, dep);
  return result;
}

}  // namespace

SnapshotDijkstra::SnapshotDijkstra(const ItGraph& graph)
    : graph_(&graph),
      checkpoints_(CheckpointSet::FromGraph(graph)),
      snapshots_(graph, checkpoints_) {}

StatusOr<QueryResult> SnapshotDijkstra::Query(const IndoorPoint& ps,
                                              const IndoorPoint& pt,
                                              Instant t) {
  Timer timer;
  const Venue& venue = graph_->venue();
  auto src = internal::AttachPoint(venue, ps);
  if (!src.ok()) return src.status();
  auto dst = internal::AttachPoint(venue, pt);
  if (!dst.ok()) return dst.status();

  const GraphSnapshot& snapshot =
      snapshots_.Get(checkpoints_.IntervalIndexOf(t.TimeOfDay()));
  const internal::DoorSearchResult search =
      internal::DoorDijkstra(*graph_, src->door_offsets, &snapshot.open);

  QueryResult result = AssembleResult(search, *src, *dst, ps, pt, t.seconds());
  result.stats.search_micros = timer.ElapsedMicros();
  return result;
}

StatusOr<QueryResult> StaticDijkstra::Query(const IndoorPoint& ps,
                                            const IndoorPoint& pt) const {
  Timer timer;
  const Venue& venue = graph_->venue();
  auto src = internal::AttachPoint(venue, ps);
  if (!src.ok()) return src.status();
  auto dst = internal::AttachPoint(venue, pt);
  if (!dst.ok()) return dst.status();

  const internal::DoorSearchResult search =
      internal::DoorDijkstra(*graph_, src->door_offsets, nullptr);

  QueryResult result =
      AssembleResult(search, *src, *dst, ps, pt, /*dep=*/0.0);
  result.stats.search_micros = timer.ElapsedMicros();
  return result;
}

}  // namespace itspq

#include "query/sharded_router.h"

#include <atomic>
#include <string>

namespace itspq {

ShardedRouter::ShardedRouter(const VenueCatalog& catalog)
    : Router("sharded"), catalog_(&catalog) {}

StatusOr<QueryResult> ShardedRouter::Route(const QueryRequest& request,
                                           QueryContext* context) const {
  if (!catalog_->Contains(request.venue_id)) {
    return NotFoundError("venue_id " + std::to_string(request.venue_id) +
                         " not in catalog (" +
                         std::to_string(catalog_->NumVenues()) + " venues)");
  }
  const VenueCatalog::Shard& shard = catalog_->shard(request.venue_id);
  // Pin the shard's current version for the whole search — loading it
  // from its artifact first when the shard is lazy and cold. A
  // concurrent ApplyAtiUpdate may publish a newer epoch (or an eviction
  // may drop the slot) mid-route, but this query finishes coherently on
  // the world it started in.
  //
  // The dispatch counter and its outcome counter are always bumped
  // together, so the shard ledger reconciles exactly —
  //   queries_served == routes_found + routes_not_found + route_errors
  // — at any quiesced point, even when the artifact load fails before a
  // router ever runs.
  StatusOr<std::shared_ptr<const VersionedGraph>> world =
      catalog_->EnsureResident(request.venue_id);
  if (!world.ok()) {
    shard.queries_served.fetch_add(1, std::memory_order_relaxed);
    shard.route_errors.fetch_add(1, std::memory_order_relaxed);
    return world.status();
  }
  StatusOr<QueryResult> result = (*world)->router().Route(request, context);
  shard.queries_served.fetch_add(1, std::memory_order_relaxed);
  if (!result.ok()) {
    shard.route_errors.fetch_add(1, std::memory_order_relaxed);
  } else if (result->found) {
    shard.routes_found.fetch_add(1, std::memory_order_relaxed);
  } else {
    shard.routes_not_found.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

CacheStatsSnapshot ShardedRouter::CacheStats() const {
  CacheStatsSnapshot total;
  for (size_t i = 0; i < catalog_->NumVenues(); ++i) {
    // Pin each shard's version so a concurrent update can't retire the
    // router out from under the stats read.
    const std::shared_ptr<const VersionedGraph> world =
        catalog_->world(static_cast<VenueId>(i));
    if (world == nullptr) continue;  // lazy shard currently cold
    total.Accumulate(world->router().CacheStats());
  }
  return total;
}

size_t ShardedRouter::MemoryUsage() const {
  size_t total = Router::MemoryUsage();
  for (size_t i = 0; i < catalog_->NumVenues(); ++i) {
    const std::shared_ptr<const VersionedGraph> world =
        catalog_->world(static_cast<VenueId>(i));
    if (world == nullptr) continue;  // lazy shard currently cold
    total += world->router().MemoryUsage();
  }
  return total;
}

}  // namespace itspq

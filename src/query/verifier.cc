#include "query/verifier.h"

#include <string>

#include "common/time.h"

namespace itspq {

Status VerifyPath(const ItGraph& graph, const Path& path) {
  for (const PathStep& step : path.steps()) {
    if (!graph.Ati(step.door).ContainsTimeOfDay(step.arrival_seconds)) {
      return FailedPreconditionError(
          "rule 1 violated: door " + std::to_string(step.door) +
          " is closed at arrival (" +
          std::to_string(WrapTimeOfDay(step.arrival_seconds)) + "s)");
    }
  }
  return Status::Ok();
}

}  // namespace itspq

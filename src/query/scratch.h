#ifndef ITSPQ_SRC_QUERY_SCRATCH_H_
#define ITSPQ_SRC_QUERY_SCRATCH_H_

// Private to src/query: the mutable search state behind QueryContext.
// One SearchScratch is everything any strategy mutates during a
// Route() call; the vectors keep their capacity across queries, which
// is what makes context reuse worthwhile.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "itgraph/door_search.h"
#include "itgraph/frontier_queue.h"
#include "itgraph/graph_update.h"
#include "query/router.h"
#include "venue/geometry.h"

namespace itspq {
namespace internal {

struct SearchScratch {
  // ITG search state (paper Alg. 1), generation-stamped: an entry is
  // valid only when its stamp equals `generation`, so opening a query
  // costs one counter bump instead of the five O(doors)+O(partitions)
  // assigns the arrays used to take. dist/parent share one stamp (they
  // are always written together); settled and the per-door target tail
  // each get their own; partition_stamp doubles as the visited-pruning
  // boolean (stamped == expanded this query).
  std::vector<double> dist;
  std::vector<DoorId> parent;
  std::vector<double> target_offset;
  std::vector<uint32_t> label_stamp;
  std::vector<uint32_t> settled_stamp;
  std::vector<uint32_t> target_stamp;
  std::vector<uint32_t> partition_stamp;
  uint32_t generation = 0;
  FrontierQueue frontier;

  // Reduced-graph scratch for the asynchronous checkers when the
  // shared snapshot cache is off: ITG/A keeps exactly one resident
  // snapshot (Alg. 3 as published); ITG/A+ keeps the intervals visited
  // this query so per-relaxation interval hops don't thrash rebuilds.
  // The resident mask stays warm across Route() calls — a workload
  // that re-queries the same interval skips the O(doors) rebuild
  // entirely. `resident_store_id` records which router epoch built it
  // (SnapshotStore ids are process-unique), so a context moved to
  // another router — or kept across an epoch swap — can never serve a
  // mask built from a different graph.
  std::optional<GraphSnapshot> resident;
  uint64_t resident_store_id = 0;
  std::vector<std::optional<GraphSnapshot>> visited_intervals;

  // Shared-store path: per-interval pins of SnapshotStore snapshots.
  // Pinning once per (query, interval) keeps the store's mutex off the
  // per-relaxation path and guarantees an evicted interval's mask stays
  // valid until the query completes. Released at the end of Route() —
  // unless `retain_pins` is set (RouteBatch sets it around a coalesced
  // batch so consecutive queries on the same shard share the pins and
  // skip the per-query store round-trip). `pinned_store_id` records
  // which store the pins came from: ids are process-unique, so a batch
  // crossing shards (or an epoch swap mid-batch) can never reuse a
  // stale pin vector by address coincidence.
  std::vector<std::shared_ptr<const GraphSnapshot>> pinned;
  uint64_t pinned_store_id = 0;
  bool retain_pins = false;

  // SNAP/NTV full-Dijkstra state.
  DoorSearchResult door_search;

  double Dist(size_t i) const {
    return label_stamp[i] == generation ? dist[i] : kInfDistance;
  }
  double TargetOffset(size_t i) const {
    return target_stamp[i] == generation ? target_offset[i] : kInfDistance;
  }
  bool Settled(size_t i) const { return settled_stamp[i] == generation; }

  /// Opens a new ITG query: O(1) except on first use, a venue-size
  /// change, or the once-per-2^32-queries stamp wrap.
  void PrepareItgSearch(size_t num_doors, size_t num_partitions) {
    if (dist.size() != num_doors) {
      dist.assign(num_doors, kInfDistance);
      parent.assign(num_doors, kInvalidDoor);
      target_offset.assign(num_doors, kInfDistance);
      label_stamp.assign(num_doors, 0);
      settled_stamp.assign(num_doors, 0);
      target_stamp.assign(num_doors, 0);
      // Restarting the generation at 1 makes every stamp array stale,
      // including a partition array whose size did not change.
      std::fill(partition_stamp.begin(), partition_stamp.end(), 0);
      generation = 0;
    }
    if (partition_stamp.size() != num_partitions) {
      partition_stamp.assign(num_partitions, 0);
      // The door stamps survive a partition resize only because the
      // generation keeps counting; nothing to clear here.
    }
    if (++generation == 0) {
      std::fill(label_stamp.begin(), label_stamp.end(), 0);
      std::fill(settled_stamp.begin(), settled_stamp.end(), 0);
      std::fill(target_stamp.begin(), target_stamp.end(), 0);
      std::fill(partition_stamp.begin(), partition_stamp.end(), 0);
      generation = 1;
    }
  }

  void ReleasePins() {
    pinned.clear();
    pinned_store_id = 0;
  }
};

/// Shared Route() prologue: the request-validation contract every
/// strategy enforces before touching any search state (the same checks
/// guard the wire decode, so a hostile frame and a local call fail
/// identically). kInvalidArgument on:
///   - a non-finite departure (NaN used to flow into WrapTimeOfDay and
///     surface as a silent found == false);
///   - a non-zero venue_id naming a venue other than the router's bound
///     one (used to be silently answered by the wrong venue);
///   - per-family parameter violations (non-finite/negative budget,
///     k == 0, empty or out-of-range facilities, empty waypoints).
inline Status ValidateRequest(const QueryRequest& request,
                              VenueId bound_venue_id, size_t num_doors) {
  if (!std::isfinite(request.departure.seconds())) {
    return InvalidArgumentError(
        "departure must be a finite time (NaN/inf rejected)");
  }
  if (request.venue_id != 0 && request.venue_id != bound_venue_id) {
    return InvalidArgumentError(
        "request venue_id " + std::to_string(request.venue_id) +
        " does not match this router's bound venue " +
        std::to_string(bound_venue_id));
  }
  switch (request.kind) {
    case QueryKind::kPointToPoint:
      return Status::Ok();
    case QueryKind::kReachability:
      if (!std::isfinite(request.budget_seconds) ||
          request.budget_seconds < 0) {
        return InvalidArgumentError(
            "reachability budget_seconds must be finite and >= 0");
      }
      return Status::Ok();
    case QueryKind::kNearestFacility:
      if (request.k == 0) {
        return InvalidArgumentError("nearest-facility k must be >= 1");
      }
      if (request.facilities.empty()) {
        return InvalidArgumentError(
            "nearest-facility request needs at least one facility door");
      }
      for (DoorId d : request.facilities) {
        if (d < 0 || static_cast<size_t>(d) >= num_doors) {
          return InvalidArgumentError(
              "facility door " + std::to_string(d) +
              " out of range (venue has " + std::to_string(num_doors) +
              " doors)");
        }
      }
      return Status::Ok();
    case QueryKind::kMultiStop:
      if (request.waypoints.empty()) {
        return InvalidArgumentError(
            "multi-stop request needs at least one waypoint");
      }
      return Status::Ok();
  }
  return InvalidArgumentError(
      "unknown query kind " +
      std::to_string(static_cast<int>(request.kind)));
}

/// The deterministic output contract of the sweep families, shared with
/// the brute-force oracles: (distance, door id) ascending, so equal
/// distances tie-break on the stable door id and two correct
/// implementations agree element for element.
inline void SortReachable(std::vector<ReachableDoor>* doors) {
  std::sort(doors->begin(), doors->end(),
            [](const ReachableDoor& a, const ReachableDoor& b) {
              if (a.distance_m != b.distance_m) {
                return a.distance_m < b.distance_m;
              }
              return a.door < b.door;
            });
}

/// The kMultiStop driver shared by every strategy: chains point-to-point
/// legs source -> waypoints... -> target through the strategy's own
/// Route(), each leg departing at the previous leg's projected arrival
/// (dep + length * kInvWalkSpeedMps — the same multiplication as the
/// search relaxation, so chained arrivals stay bit-identical to a
/// replay). Stops at the first leg with no valid route (found == false,
/// the routed prefix kept in `legs`); per-leg errors propagate with the
/// leg index prefixed.
inline StatusOr<QueryResult> RouteMultiStop(const Router& router,
                                            const QueryRequest& request,
                                            QueryContext* context) {
  Timer timer;
  QueryResult result;
  QueryRequest leg = request;
  leg.kind = QueryKind::kPointToPoint;
  leg.waypoints.clear();
  leg.facilities.clear();

  IndoorPoint from = request.source;
  double dep = request.departure.seconds();
  const size_t num_legs = request.waypoints.size() + 1;
  result.legs.reserve(num_legs);
  result.found = true;
  for (size_t i = 0; i < num_legs; ++i) {
    leg.source = from;
    leg.target = i < request.waypoints.size() ? request.waypoints[i]
                                              : request.target;
    leg.departure = Instant(dep);
    StatusOr<QueryResult> answer = router.Route(leg, context);
    if (!answer.ok()) {
      return Status(answer.status().code(),
                    "leg " + std::to_string(i) + ": " +
                        answer.status().message());
    }
    result.stats.doors_popped += answer->stats.doors_popped;
    result.stats.graph_updates += answer->stats.graph_updates;
    result.stats.peak_memory_bytes = std::max(
        result.stats.peak_memory_bytes, answer->stats.peak_memory_bytes);
    if (!answer->found) {
      result.found = false;
      break;
    }
    dep += answer->path.length_m() * kInvWalkSpeedMps;
    from = leg.target;
    result.legs.push_back(std::move(answer->path));
  }
  result.stats.search_micros = timer.ElapsedMicros();
  return result;
}

/// Shared Route() prologue: attaches both request endpoints to the
/// door graph, prefixing errors with the endpoint's role.
inline Status AttachEndpoints(const Venue& venue, const QueryRequest& request,
                              PointAttachment* src, PointAttachment* dst) {
  auto attached_src = AttachPoint(venue, request.source);
  if (!attached_src.ok()) {
    return Status(attached_src.status().code(),
                  "source " + attached_src.status().message());
  }
  auto attached_dst = AttachPoint(venue, request.target);
  if (!attached_dst.ok()) {
    return Status(attached_dst.status().code(),
                  "target " + attached_dst.status().message());
  }
  *src = *std::move(attached_src);
  *dst = *std::move(attached_dst);
  return Status::Ok();
}

/// Shared Route() prologue: resolves the caller's context, falling back
/// to a throwaway one in `local` for null-context convenience calls.
inline SearchScratch& ScratchFor(QueryContext* context,
                                 std::optional<QueryContext>& local) {
  if (context == nullptr) context = &local.emplace();
  return context->scratch();
}

}  // namespace internal
}  // namespace itspq

#endif  // ITSPQ_SRC_QUERY_SCRATCH_H_

#ifndef ITSPQ_SRC_QUERY_SCRATCH_H_
#define ITSPQ_SRC_QUERY_SCRATCH_H_

// Private to src/query: the mutable search state behind QueryContext.
// One SearchScratch is everything any strategy mutates during a
// Route() call; the vectors keep their capacity across queries, which
// is what makes context reuse worthwhile.

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "itgraph/door_search.h"
#include "itgraph/graph_update.h"
#include "query/router.h"
#include "venue/geometry.h"

namespace itspq {
namespace internal {

struct HeapEntry {
  double dist;
  DoorId door;
  /// std::push_heap/pop_heap with the default less<> yield a max-heap;
  /// inverting the comparison makes the backing vector a min-heap.
  bool operator<(const HeapEntry& other) const { return dist > other.dist; }
};

struct SearchScratch {
  // ITG search state (paper Alg. 1).
  std::vector<double> dist;
  std::vector<DoorId> parent;
  std::vector<uint8_t> settled;
  std::vector<uint8_t> partition_expanded;
  std::vector<double> target_offset;
  std::vector<HeapEntry> heap;

  // Reduced-graph scratch for the asynchronous checkers when the
  // shared snapshot cache is off: ITG/A keeps exactly one resident
  // snapshot (Alg. 3 as published); ITG/A+ keeps the intervals visited
  // this query so per-relaxation interval hops don't thrash rebuilds.
  std::optional<GraphSnapshot> resident;
  std::vector<std::optional<GraphSnapshot>> visited_intervals;

  // Shared-store path: per-interval pins of SnapshotStore snapshots.
  // Pinning once per (query, interval) keeps the store's mutex off the
  // per-relaxation path and guarantees an evicted interval's mask stays
  // valid until the query completes. Released at the end of Route().
  std::vector<std::shared_ptr<const GraphSnapshot>> pinned;

  // SNAP/NTV full-Dijkstra state.
  DoorSearchResult door_search;
};

/// Shared Route() prologue: attaches both request endpoints to the
/// door graph, prefixing errors with the endpoint's role.
inline Status AttachEndpoints(const Venue& venue, const QueryRequest& request,
                              PointAttachment* src, PointAttachment* dst) {
  auto attached_src = AttachPoint(venue, request.source);
  if (!attached_src.ok()) {
    return Status(attached_src.status().code(),
                  "source " + attached_src.status().message());
  }
  auto attached_dst = AttachPoint(venue, request.target);
  if (!attached_dst.ok()) {
    return Status(attached_dst.status().code(),
                  "target " + attached_dst.status().message());
  }
  *src = *std::move(attached_src);
  *dst = *std::move(attached_dst);
  return Status::Ok();
}

/// Shared Route() prologue: resolves the caller's context, falling back
/// to a throwaway one in `local` for null-context convenience calls.
inline SearchScratch& ScratchFor(QueryContext* context,
                                 std::optional<QueryContext>& local) {
  if (context == nullptr) context = &local.emplace();
  return context->scratch();
}

}  // namespace internal
}  // namespace itspq

#endif  // ITSPQ_SRC_QUERY_SCRATCH_H_

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "common/memory_tracker.h"
#include "itgraph/csr_adjacency.h"
#include "itgraph/door_search.h"
#include "query/reconstruct.h"
#include "query/scratch.h"
#include "query/strategies.h"

namespace itspq {

namespace {

using internal::kInfDistance;
using internal::SearchScratch;

// Estimated bytes of one touched door label (distance + parent + flags).
constexpr size_t kLabelBytes =
    sizeof(double) + sizeof(DoorId) + 2 * sizeof(uint8_t);

}  // namespace

const char* TvModeName(TvMode mode) {
  switch (mode) {
    case TvMode::kSynchronous:
      return "itg-s";
    case TvMode::kAsynchronous:
      return "itg-a";
    case TvMode::kAsynchronousStrict:
      return "itg-a+";
  }
  return "itg-?";
}

ItgRouter::ItgRouter(const ItGraph& graph, TvMode mode,
                     const RouterBuildOptions& options)
    : Router(TvModeName(mode), graph,
             options.warm_start ? options.warm_start->checkpoints : nullptr),
      mode_(mode),
      snapshot_store_(graph, checkpoints(), options.snapshot_cache,
                      options.warm_start) {
  BindVenueId(options.bound_venue_id);
}

CacheStatsSnapshot ItgRouter::CacheStats() const {
  return snapshot_store_.Stats();
}

void ItgRouter::SetSnapshotBudget(size_t budget_bytes) const {
  snapshot_store_.SetBudget(budget_bytes);
}

size_t ItgRouter::MemoryUsage() const {
  return Router::MemoryUsage() + snapshot_store_.MemoryUsage();
}

StatusOr<QueryResult> ItgRouter::Route(const QueryRequest& request,
                                       QueryContext* context) const {
  Timer timer;
  const ItGraph& graph = this->graph();
  const Venue& venue = graph.venue();

  Status valid = internal::ValidateRequest(request, bound_venue_id(),
                                           graph.NumDoors());
  if (!valid.ok()) return valid;
  if (request.kind == QueryKind::kMultiStop) {
    return internal::RouteMultiStop(*this, request, context);
  }
  if (request.kind != QueryKind::kPointToPoint) {
    return RouteSweep(request, context);
  }

  internal::PointAttachment src, dst;
  Status attached = internal::AttachEndpoints(venue, request, &src, &dst);
  if (!attached.ok()) return attached;

  std::optional<QueryContext> local_context;
  SearchScratch& s = internal::ScratchFor(context, local_context);

  const double dep = request.departure.seconds();
  const bool use_cache = request.options.use_snapshot_cache;

  QueryResult result;
  SearchStats& stats = result.stats;
  MemoryTracker memory;

  // Reduced-graph plumbing for the asynchronous checkers; see
  // SearchScratch for what each mode keeps resident. The resident mask
  // survives from the previous Route() on this context — valid only if
  // it was built by this router epoch's store (ids are process-unique).
  if (s.resident_store_id != snapshot_store_.id()) {
    s.resident.reset();
    s.resident_store_id = snapshot_store_.id();
  }
  if (s.resident.has_value()) memory.Add(s.resident->MemoryUsage());
  if (!use_cache && mode_ == TvMode::kAsynchronousStrict) {
    s.visited_intervals.assign(checkpoints().NumIntervals(), std::nullopt);
  }
  if (use_cache) {
    // A batch with retained pins reuses the previous query's pin
    // vector when it came from this router's store; anything else
    // (first query, another shard's store, an epoch swap that
    // republished the router) starts from empty pins.
    if (s.pinned_store_id != snapshot_store_.id() ||
        s.pinned.size() != checkpoints().NumIntervals()) {
      s.pinned.assign(checkpoints().NumIntervals(), nullptr);
      s.pinned_store_id = snapshot_store_.id();
    }
  }
  auto get_snapshot = [&](size_t interval) -> const GraphSnapshot& {
    if (use_cache) {
      std::shared_ptr<const GraphSnapshot>& pin = s.pinned[interval];
      if (pin == nullptr) {
        bool built_now = false;
        pin = snapshot_store_.Get(interval, &built_now);
        if (built_now) ++stats.graph_updates;
      }
      return *pin;
    }
    if (mode_ == TvMode::kAsynchronousStrict) {
      std::optional<GraphSnapshot>& slot = s.visited_intervals[interval];
      if (!slot.has_value()) {
        slot = BuildSnapshot(graph, checkpoints(), interval);
        ++stats.graph_updates;
        memory.Add(slot->MemoryUsage());
      }
      return *slot;
    }
    if (!s.resident.has_value() || s.resident->interval_index != interval) {
      if (s.resident.has_value()) memory.Release(s.resident->MemoryUsage());
      s.resident = BuildSnapshot(graph, checkpoints(), interval);
      ++stats.graph_updates;
      memory.Add(s.resident->MemoryUsage());
    }
    return *s.resident;
  };

  // Frontier snapshot for ITG/A, refreshed when the popped label's
  // projected arrival crosses a checkpoint. The current interval's
  // bounds are cached so the steady state is one wrap branch and two
  // compares per pop instead of an fmod plus a binary search; the
  // IntervalIndexOf search only reruns on an actual crossing.
  const GraphSnapshot* frontier_snapshot = nullptr;
  double frontier_lo = 0.0, frontier_hi = -1.0;  // empty: [0, -1)
  if (mode_ == TvMode::kAsynchronous) {
    const size_t interval = checkpoints().IntervalIndexOf(WrapTimeOfDay(dep));
    frontier_snapshot = &get_snapshot(interval);
    frontier_lo = checkpoints().IntervalStart(interval);
    frontier_hi = checkpoints().IntervalEnd(interval);
  }

  // ITG/A+ probes a snapshot per relaxation arrival; identical bounds
  // cache, refreshed whenever the arrival leaves the cached interval.
  const GraphSnapshot* strict_snapshot = nullptr;
  double strict_lo = 0.0, strict_hi = -1.0;

  auto door_usable = [&](DoorId door, double arrival_abs) {
    switch (mode_) {
      case TvMode::kSynchronous:
        return graph.AtiContainsTimeOfDay(door, arrival_abs);
      case TvMode::kAsynchronous:
        return frontier_snapshot->IsOpen(door);
      case TvMode::kAsynchronousStrict: {
        const double tod = (arrival_abs >= 0 && arrival_abs < kSecondsPerDay)
                               ? arrival_abs
                               : WrapTimeOfDay(arrival_abs);
        if (tod < strict_lo || tod >= strict_hi) {
          const size_t interval = checkpoints().IntervalIndexOf(tod);
          strict_snapshot = &get_snapshot(interval);
          strict_lo = checkpoints().IntervalStart(interval);
          strict_hi = checkpoints().IntervalEnd(interval);
        }
        return strict_snapshot->IsOpen(door);
      }
    }
    return false;
  };

  s.PrepareItgSearch(graph.NumDoors(), venue.NumPartitions());

  // Minimum straight-line tail from each target-partition door to pt.
  for (const auto& [door, offset] : dst.door_offsets) {
    const size_t i = static_cast<size_t>(door);
    if (offset < s.TargetOffset(i)) {
      s.target_offset[i] = offset;
      s.target_stamp[i] = s.generation;
    }
  }

  double best_total = kInfDistance;
  DoorId best_door = kInvalidDoor;
  if (internal::SharesPartition(src, dst)) {
    best_total = EuclideanDistance(request.source.p, request.target.p);
  }

  // Goal-directed A* (itg-s / itg-a+, exact mode only): every
  // completion from door u is a chain of exact 2D Euclidean edge
  // weights (the distance matrix) ending in a Euclidean tail to pt, so
  // by the triangle inequality it costs at least the straight-line
  // distance from u to pt. max(Chebyshev, (|dx|+|dy|)/sqrt(2))
  // lower-bounds that distance within ~8% with no sqrt on the hot
  // path. Gated off under Alg. 1's partition-visited pruning: the
  // pruned answer depends on which door first expands each partition,
  // i.e. on settle order, and A* reordering changes those answers —
  // measurably breaking the published ITG/A-vs-ITG/S agreement rate
  // (the paper's pruned mode must keep plain Dijkstra order). ITG/A is
  // always exempt: its semantics advance the frontier snapshot in
  // settle order. Without pruning the reorder is provably safe: the
  // bound is consistent (a norm bounded by the Euclidean norm, so
  // lb(u) - lb(v) <= w(u, v)) and relaxation admissibility depends
  // only on the candidate distance, so settle-once A* computes the
  // same distances as Dijkstra.
  const bool goal_directed = mode_ != TvMode::kAsynchronous &&
                             !request.options.partition_visited_pruning;
  const Point2d goal = request.target.p;
  auto remaining_lb = [&](size_t i) {
    const Point2d& p = graph.DoorPos(static_cast<DoorId>(i));
    const double dx = std::fabs(p.x - goal.x);
    const double dy = std::fabs(p.y - goal.y);
    const double cheb = dx > dy ? dx : dy;
    const double diag = (dx + dy) * 0.7071067811865475;
    return cheb > diag ? cheb : diag;
  };

  // Frontier selection. Goal-directed (exact-mode) searches run A* on
  // the 4-ary heap — f-keys rule out Dial's bucket queue, whose
  // exactness needs per-pop key increments of at least the bucket
  // width, and an A* edge's increment w + lb(v) - lb(u) can be
  // arbitrarily close to zero. ITG/A also stays on the sorted heap:
  // its published semantics advance the frontier snapshot in settle
  // order, which only a distance-sorted frontier reproduces. That
  // leaves the pruned itg-s / itg-a+ searches for Dial's buckets when
  // every edge weight covers the bucket width.
  const CsrAdjacency& adj = graph.adjacency();
  const bool bucketed = !goal_directed &&
                        mode_ != TvMode::kAsynchronous &&
                        adj.BucketEligible();
  if (bucketed) {
    s.frontier.ResetBuckets(adj.min_edge_weight);
  } else {
    s.frontier.ResetHeap(FrontierQueue::Kind::kFourAryHeap);
  }

  auto relax = [&](DoorId door, double nd, DoorId from) {
    const size_t i = static_cast<size_t>(door);
    if (nd >= s.Dist(i)) return;
    // A label at or past the best known total would be discarded at
    // pop (best_total never increases), so skip the ATI/snapshot probe
    // and the queue traffic now. Cannot change the answer: any
    // completion through it costs >= nd >= the final best_total, and
    // ties never replace the incumbent.
    if (nd >= best_total) return;
    double key = nd;
    if (goal_directed) {
      // Same discard argument with the straight-line remainder added
      // in; the surviving bound becomes the A* key.
      key += remaining_lb(i);
      if (key >= best_total) return;
    }
    const double arrival = dep + nd * kInvWalkSpeedMps;
    if (!door_usable(door, arrival)) return;
    if (s.label_stamp[i] != s.generation) memory.Add(kLabelBytes);
    s.dist[i] = nd;
    s.parent[i] = from;
    s.label_stamp[i] = s.generation;
    s.frontier.Push(key, static_cast<uint32_t>(i));
    memory.Add(FrontierQueue::kEntryBytes);
  };

  for (const auto& [door, offset] : src.door_offsets) {
    relax(door, offset, kInvalidDoor);
  }

  double top_key;
  uint32_t top_id;
  while (s.frontier.Pop(&top_key, &top_id)) {
    memory.Release(FrontierQueue::kEntryBytes);
    const size_t u = top_id;
    if (s.Settled(u)) continue;
    if (top_key >= best_total) {
      // Sorted pops (either heap keying): every completion through a
      // queued label costs at least its key (= d, or d plus an
      // admissible remainder), so nothing left can win — stop. Bucket
      // pops regress within a bucket, so stop only once the queue's
      // lower bound clears the best answer; this label alone can't
      // help (any completion through it is >= top_key), so skip it.
      if (s.frontier.PopsSorted() || s.frontier.MinBound() >= best_total) {
        break;
      }
      continue;
    }
    // Under A* keys the popped key is d + remaining_lb(u); the door's
    // own distance is read back from the label (the first unsettled
    // pop of u carries its minimal key, so dist[u] is exactly the d
    // that key was pushed with).
    const double top_dist = goal_directed ? s.dist[u] : top_key;
    s.settled_stamp[u] = s.generation;
    ++stats.doors_popped;

    if (mode_ == TvMode::kAsynchronous) {
      const double arr = dep + top_dist * kInvWalkSpeedMps;
      const double tod =
          (arr >= 0 && arr < kSecondsPerDay) ? arr : WrapTimeOfDay(arr);
      if (tod < frontier_lo || tod >= frontier_hi) {
        const size_t interval = checkpoints().IntervalIndexOf(tod);
        frontier_snapshot = &get_snapshot(interval);
        frontier_lo = checkpoints().IntervalStart(interval);
        frontier_hi = checkpoints().IntervalEnd(interval);
      }
    }

    const double tail = s.TargetOffset(u);
    if (tail < kInfDistance && top_dist + tail < best_total) {
      best_total = top_dist + tail;
      best_door = static_cast<DoorId>(u);
    }

    // CSR relaxation: door u owns segments 2u and 2u+1, one per
    // partition, each a contiguous run of (neighbour id, weight).
    for (size_t seg = 2 * u; seg < 2 * u + 2; ++seg) {
      if (request.options.partition_visited_pruning) {
        const size_t p = static_cast<size_t>(adj.seg_partition[seg]);
        if (s.partition_stamp[p] == s.generation) continue;
        s.partition_stamp[p] = s.generation;
      }
      const uint32_t begin = adj.seg_offsets[seg];
      const uint32_t end = adj.seg_offsets[seg + 1];
      for (uint32_t k = begin; k < end; ++k) {
        const size_t next = adj.neighbor_ids[k];
        if (s.Settled(next)) continue;
        relax(static_cast<DoorId>(next), top_dist + adj.neighbor_weights[k],
              static_cast<DoorId>(u));
      }
    }
  }

  if (std::isfinite(best_total)) {
    result.found = true;
    result.path = internal::ReconstructPath(s.dist, s.parent, best_door,
                                            best_total, dep);
  }

  // Release the per-query snapshots before returning so a long-lived
  // context doesn't pin door masks it will never reuse (or keep the
  // store from reclaiming evicted ones). The scratch-owned resident
  // mask is kept warm instead — it pins nothing, costs one mask of
  // memory, and spares the next same-interval query a full rebuild.
  // RouteBatch keeps the pins alive across its coalesced batch via
  // retain_pins and releases them itself after the last query.
  s.visited_intervals.clear();
  if (!s.retain_pins) s.ReleasePins();

  stats.peak_memory_bytes = memory.peak();
  stats.search_micros = timer.ElapsedMicros();
  return result;
}

// The kReachability / kNearestFacility sweep: one temporal Dijkstra
// from the source over the whole door graph, with the same per-mode
// door-usability semantics (and the same snapshot plumbing) as the
// point-to-point search, but no target, no goal direction, and no
// partition-visited pruning (see the header for why the sweeps are
// exempt). Distances and projected arrivals use exactly the
// point-to-point arithmetic — `top_dist + weight`, then
// `dep + nd * kInvWalkSpeedMps` — so the family property suite can pin
// the output bit-identically to a brute-force oracle.
StatusOr<QueryResult> ItgRouter::RouteSweep(const QueryRequest& request,
                                            QueryContext* context) const {
  Timer timer;
  const ItGraph& graph = this->graph();
  const Venue& venue = graph.venue();
  const bool reachability = request.kind == QueryKind::kReachability;

  auto attached = internal::AttachPoint(venue, request.source);
  if (!attached.ok()) {
    return Status(attached.status().code(),
                  "source " + attached.status().message());
  }
  const internal::PointAttachment& src = *attached;

  std::optional<QueryContext> local_context;
  SearchScratch& s = internal::ScratchFor(context, local_context);

  const double dep = request.departure.seconds();
  const bool use_cache = request.options.use_snapshot_cache;

  QueryResult result;
  SearchStats& stats = result.stats;
  MemoryTracker memory;

  // Snapshot plumbing — identical to Route(); see the comments there.
  if (s.resident_store_id != snapshot_store_.id()) {
    s.resident.reset();
    s.resident_store_id = snapshot_store_.id();
  }
  if (s.resident.has_value()) memory.Add(s.resident->MemoryUsage());
  if (!use_cache && mode_ == TvMode::kAsynchronousStrict) {
    s.visited_intervals.assign(checkpoints().NumIntervals(), std::nullopt);
  }
  if (use_cache) {
    if (s.pinned_store_id != snapshot_store_.id() ||
        s.pinned.size() != checkpoints().NumIntervals()) {
      s.pinned.assign(checkpoints().NumIntervals(), nullptr);
      s.pinned_store_id = snapshot_store_.id();
    }
  }
  auto get_snapshot = [&](size_t interval) -> const GraphSnapshot& {
    if (use_cache) {
      std::shared_ptr<const GraphSnapshot>& pin = s.pinned[interval];
      if (pin == nullptr) {
        bool built_now = false;
        pin = snapshot_store_.Get(interval, &built_now);
        if (built_now) ++stats.graph_updates;
      }
      return *pin;
    }
    if (mode_ == TvMode::kAsynchronousStrict) {
      std::optional<GraphSnapshot>& slot = s.visited_intervals[interval];
      if (!slot.has_value()) {
        slot = BuildSnapshot(graph, checkpoints(), interval);
        ++stats.graph_updates;
        memory.Add(slot->MemoryUsage());
      }
      return *slot;
    }
    if (!s.resident.has_value() || s.resident->interval_index != interval) {
      if (s.resident.has_value()) memory.Release(s.resident->MemoryUsage());
      s.resident = BuildSnapshot(graph, checkpoints(), interval);
      ++stats.graph_updates;
      memory.Add(s.resident->MemoryUsage());
    }
    return *s.resident;
  };

  const GraphSnapshot* frontier_snapshot = nullptr;
  double frontier_lo = 0.0, frontier_hi = -1.0;  // empty: [0, -1)
  if (mode_ == TvMode::kAsynchronous) {
    const size_t interval = checkpoints().IntervalIndexOf(WrapTimeOfDay(dep));
    frontier_snapshot = &get_snapshot(interval);
    frontier_lo = checkpoints().IntervalStart(interval);
    frontier_hi = checkpoints().IntervalEnd(interval);
  }

  const GraphSnapshot* strict_snapshot = nullptr;
  double strict_lo = 0.0, strict_hi = -1.0;

  auto door_usable = [&](DoorId door, double arrival_abs) {
    switch (mode_) {
      case TvMode::kSynchronous:
        return graph.AtiContainsTimeOfDay(door, arrival_abs);
      case TvMode::kAsynchronous:
        return frontier_snapshot->IsOpen(door);
      case TvMode::kAsynchronousStrict: {
        const double tod = (arrival_abs >= 0 && arrival_abs < kSecondsPerDay)
                               ? arrival_abs
                               : WrapTimeOfDay(arrival_abs);
        if (tod < strict_lo || tod >= strict_hi) {
          const size_t interval = checkpoints().IntervalIndexOf(tod);
          strict_snapshot = &get_snapshot(interval);
          strict_lo = checkpoints().IntervalStart(interval);
          strict_hi = checkpoints().IntervalEnd(interval);
        }
        return strict_snapshot->IsOpen(door);
      }
    }
    return false;
  };

  s.PrepareItgSearch(graph.NumDoors(), venue.NumPartitions());

  // kNearestFacility: mark the requested doors by reusing the target
  // tail stamps (a sweep has no target, so the array is free). A door
  // is a facility iff its target stamp is this generation; duplicate
  // ids in the request collapse on the stamp.
  if (!reachability) {
    for (DoorId door : request.facilities) {
      const size_t i = static_cast<size_t>(door);
      s.target_offset[i] = 0;
      s.target_stamp[i] = s.generation;
    }
  }

  // Frontier selection: the kNN early exit below needs globally sorted
  // pops, and ITG/A's semantics always do, so only the reachability
  // sweep on itg-s / itg-a+ may take Dial's buckets.
  const CsrAdjacency& adj = graph.adjacency();
  const bool bucketed = reachability && mode_ != TvMode::kAsynchronous &&
                        adj.BucketEligible();
  if (bucketed) {
    s.frontier.ResetBuckets(adj.min_edge_weight);
  } else {
    s.frontier.ResetHeap(FrontierQueue::Kind::kFourAryHeap);
  }

  auto relax = [&](DoorId door, double nd, DoorId from) {
    const size_t i = static_cast<size_t>(door);
    if (nd >= s.Dist(i)) return;
    // Budget prune: a label whose walk already overruns the budget can
    // never contribute a reachable door (weights are positive, so
    // anything through it is farther still).
    if (reachability && nd * kInvWalkSpeedMps > request.budget_seconds) {
      return;
    }
    const double arrival = dep + nd * kInvWalkSpeedMps;
    if (!door_usable(door, arrival)) return;
    if (s.label_stamp[i] != s.generation) memory.Add(kLabelBytes);
    s.dist[i] = nd;
    s.parent[i] = from;
    s.label_stamp[i] = s.generation;
    s.frontier.Push(nd, static_cast<uint32_t>(i));
    memory.Add(FrontierQueue::kEntryBytes);
  };

  for (const auto& [door, offset] : src.door_offsets) {
    relax(door, offset, kInvalidDoor);
  }

  // kNN early exit: once k facilities are settled, every facility tied
  // with the k-th is still ahead at the same key (pops are sorted on
  // the heap), so the sweep may stop at the first strictly larger pop.
  // The final sort + truncate then applies the (distance, door) tie
  // rule over the settled candidates.
  size_t facilities_settled = 0;
  double kth_dist = kInfDistance;

  double top_key;
  uint32_t top_id;
  while (s.frontier.Pop(&top_key, &top_id)) {
    memory.Release(FrontierQueue::kEntryBytes);
    const size_t u = top_id;
    if (s.Settled(u)) continue;
    if (top_key > kth_dist) break;
    s.settled_stamp[u] = s.generation;
    ++stats.doors_popped;

    if (mode_ == TvMode::kAsynchronous) {
      const double arr = dep + top_key * kInvWalkSpeedMps;
      const double tod =
          (arr >= 0 && arr < kSecondsPerDay) ? arr : WrapTimeOfDay(arr);
      if (tod < frontier_lo || tod >= frontier_hi) {
        const size_t interval = checkpoints().IntervalIndexOf(tod);
        frontier_snapshot = &get_snapshot(interval);
        frontier_lo = checkpoints().IntervalStart(interval);
        frontier_hi = checkpoints().IntervalEnd(interval);
      }
    }

    if (!reachability && s.target_stamp[u] == s.generation) {
      ++facilities_settled;
      if (facilities_settled == request.k) kth_dist = top_key;
    }

    for (size_t seg = 2 * u; seg < 2 * u + 2; ++seg) {
      const uint32_t begin = adj.seg_offsets[seg];
      const uint32_t end = adj.seg_offsets[seg + 1];
      for (uint32_t k = begin; k < end; ++k) {
        const size_t next = adj.neighbor_ids[k];
        if (s.Settled(next)) continue;
        relax(static_cast<DoorId>(next), top_key + adj.neighbor_weights[k],
              static_cast<DoorId>(u));
      }
    }
  }

  result.reachable.reserve(reachability ? stats.doors_popped
                                        : facilities_settled);
  for (size_t i = 0; i < graph.NumDoors(); ++i) {
    if (!s.Settled(i)) continue;
    if (!reachability && s.target_stamp[i] != s.generation) continue;
    ReachableDoor entry;
    entry.door = static_cast<DoorId>(i);
    entry.distance_m = s.dist[i];
    entry.arrival_seconds = dep + s.dist[i] * kInvWalkSpeedMps;
    result.reachable.push_back(entry);
  }
  internal::SortReachable(&result.reachable);
  if (!reachability && result.reachable.size() > request.k) {
    result.reachable.resize(request.k);
  }
  result.found = !result.reachable.empty();

  // Same pin-release epilogue as Route().
  s.visited_intervals.clear();
  if (!s.retain_pins) s.ReleasePins();

  stats.peak_memory_bytes = memory.peak();
  stats.search_micros = timer.ElapsedMicros();
  return result;
}

}  // namespace itspq

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "common/memory_tracker.h"
#include "itgraph/door_search.h"
#include "query/reconstruct.h"
#include "query/scratch.h"
#include "query/strategies.h"

namespace itspq {

namespace {

using internal::HeapEntry;
using internal::kInfDistance;
using internal::SearchScratch;

// Estimated bytes of one touched door label (distance + parent + flags).
constexpr size_t kLabelBytes =
    sizeof(double) + sizeof(DoorId) + 2 * sizeof(uint8_t);

}  // namespace

const char* TvModeName(TvMode mode) {
  switch (mode) {
    case TvMode::kSynchronous:
      return "itg-s";
    case TvMode::kAsynchronous:
      return "itg-a";
    case TvMode::kAsynchronousStrict:
      return "itg-a+";
  }
  return "itg-?";
}

ItgRouter::ItgRouter(const ItGraph& graph, TvMode mode,
                     const RouterBuildOptions& options)
    : Router(TvModeName(mode), graph,
             options.warm_start ? options.warm_start->checkpoints : nullptr),
      mode_(mode),
      snapshot_store_(graph, checkpoints(), options.snapshot_cache,
                      options.warm_start) {}

CacheStatsSnapshot ItgRouter::CacheStats() const {
  return snapshot_store_.Stats();
}

void ItgRouter::SetSnapshotBudget(size_t budget_bytes) const {
  snapshot_store_.SetBudget(budget_bytes);
}

size_t ItgRouter::MemoryUsage() const {
  return Router::MemoryUsage() + snapshot_store_.MemoryUsage();
}

StatusOr<QueryResult> ItgRouter::Route(const QueryRequest& request,
                                       QueryContext* context) const {
  Timer timer;
  const ItGraph& graph = this->graph();
  const Venue& venue = graph.venue();

  internal::PointAttachment src, dst;
  Status attached = internal::AttachEndpoints(venue, request, &src, &dst);
  if (!attached.ok()) return attached;

  std::optional<QueryContext> local_context;
  SearchScratch& s = internal::ScratchFor(context, local_context);

  const size_t n = graph.NumDoors();
  const double dep = request.departure.seconds();
  const bool use_cache = request.options.use_snapshot_cache;

  QueryResult result;
  SearchStats& stats = result.stats;
  MemoryTracker memory;

  // Reduced-graph plumbing for the asynchronous checkers; see
  // SearchScratch for what each mode keeps resident.
  s.resident.reset();
  if (!use_cache && mode_ == TvMode::kAsynchronousStrict) {
    s.visited_intervals.assign(checkpoints().NumIntervals(), std::nullopt);
  }
  if (use_cache) {
    s.pinned.assign(checkpoints().NumIntervals(), nullptr);
  }
  auto get_snapshot = [&](size_t interval) -> const GraphSnapshot& {
    if (use_cache) {
      std::shared_ptr<const GraphSnapshot>& pin = s.pinned[interval];
      if (pin == nullptr) {
        bool built_now = false;
        pin = snapshot_store_.Get(interval, &built_now);
        if (built_now) ++stats.graph_updates;
      }
      return *pin;
    }
    if (mode_ == TvMode::kAsynchronousStrict) {
      std::optional<GraphSnapshot>& slot = s.visited_intervals[interval];
      if (!slot.has_value()) {
        slot = BuildSnapshot(graph, checkpoints(), interval);
        ++stats.graph_updates;
        memory.Add(slot->MemoryUsage());
      }
      return *slot;
    }
    if (!s.resident.has_value() || s.resident->interval_index != interval) {
      if (s.resident.has_value()) memory.Release(s.resident->MemoryUsage());
      s.resident = BuildSnapshot(graph, checkpoints(), interval);
      ++stats.graph_updates;
      memory.Add(s.resident->MemoryUsage());
    }
    return *s.resident;
  };

  // Frontier snapshot for ITG/A, refreshed when the popped label's
  // projected arrival crosses a checkpoint.
  const GraphSnapshot* frontier = nullptr;
  if (mode_ == TvMode::kAsynchronous) {
    frontier =
        &get_snapshot(checkpoints().IntervalIndexOf(WrapTimeOfDay(dep)));
  }

  auto door_usable = [&](DoorId door, double arrival_abs) {
    switch (mode_) {
      case TvMode::kSynchronous:
        return graph.Ati(door).ContainsTimeOfDay(arrival_abs);
      case TvMode::kAsynchronous:
        return frontier->IsOpen(door);
      case TvMode::kAsynchronousStrict:
        return get_snapshot(
                   checkpoints().IntervalIndexOf(WrapTimeOfDay(arrival_abs)))
            .IsOpen(door);
    }
    return false;
  };

  // Minimum straight-line tail from each target-partition door to pt.
  s.target_offset.assign(n, kInfDistance);
  for (const auto& [door, offset] : dst.door_offsets) {
    s.target_offset[static_cast<size_t>(door)] =
        std::min(s.target_offset[static_cast<size_t>(door)], offset);
  }

  double best_total = kInfDistance;
  DoorId best_door = kInvalidDoor;
  if (internal::SharesPartition(src, dst)) {
    best_total = EuclideanDistance(request.source.p, request.target.p);
  }

  s.dist.assign(n, kInfDistance);
  s.parent.assign(n, kInvalidDoor);
  s.settled.assign(n, 0);
  s.partition_expanded.assign(venue.NumPartitions(), 0);
  s.heap.clear();

  auto relax = [&](DoorId door, double nd, DoorId from) {
    const size_t i = static_cast<size_t>(door);
    if (nd >= s.dist[i]) return;
    const double arrival = dep + nd / kWalkSpeedMps;
    if (!door_usable(door, arrival)) return;
    if (s.dist[i] == kInfDistance) memory.Add(kLabelBytes);
    s.dist[i] = nd;
    s.parent[i] = from;
    s.heap.push_back(HeapEntry{nd, door});
    std::push_heap(s.heap.begin(), s.heap.end());
    memory.Add(sizeof(HeapEntry));
  };

  for (const auto& [door, offset] : src.door_offsets) {
    relax(door, offset, kInvalidDoor);
  }

  while (!s.heap.empty()) {
    std::pop_heap(s.heap.begin(), s.heap.end());
    const HeapEntry top = s.heap.back();
    s.heap.pop_back();
    memory.Release(sizeof(HeapEntry));
    const size_t u = static_cast<size_t>(top.door);
    if (s.settled[u]) continue;
    if (top.dist >= best_total) break;  // every later label is longer
    s.settled[u] = 1;
    ++stats.doors_popped;

    if (mode_ == TvMode::kAsynchronous) {
      const size_t interval = checkpoints().IntervalIndexOf(
          WrapTimeOfDay(dep + top.dist / kWalkSpeedMps));
      if (interval != frontier->interval_index) {
        frontier = &get_snapshot(interval);
      }
    }

    if (s.target_offset[u] < kInfDistance &&
        top.dist + s.target_offset[u] < best_total) {
      best_total = top.dist + s.target_offset[u];
      best_door = top.door;
    }

    for (PartitionId p : graph.DoorPartitions(top.door)) {
      if (request.options.partition_visited_pruning) {
        uint8_t& expanded = s.partition_expanded[static_cast<size_t>(p)];
        if (expanded) continue;
        expanded = 1;
      }
      const DistanceMatrix& dm = venue.distance_matrix(p);
      for (DoorId next : venue.DoorsOf(p)) {
        if (next == top.door || s.settled[static_cast<size_t>(next)]) {
          continue;
        }
        relax(next, top.dist + dm.DistanceUnchecked(top.door, next),
              top.door);
      }
    }
  }

  if (std::isfinite(best_total)) {
    result.found = true;
    result.path = internal::ReconstructPath(s.dist, s.parent, best_door,
                                            best_total, dep);
  }

  // Release the per-query snapshots before returning so a long-lived
  // context doesn't pin door masks it will never reuse (or keep the
  // store from reclaiming evicted ones).
  s.resident.reset();
  s.visited_intervals.clear();
  s.pinned.clear();

  stats.peak_memory_bytes = memory.peak();
  stats.search_micros = timer.ElapsedMicros();
  return result;
}

}  // namespace itspq

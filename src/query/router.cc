#include "query/router.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "query/scratch.h"

namespace itspq {

const char* QueryKindName(QueryKind kind) {
  switch (kind) {
    case QueryKind::kPointToPoint:
      return "point-to-point";
    case QueryKind::kReachability:
      return "reachability";
    case QueryKind::kNearestFacility:
      return "nearest-facility";
    case QueryKind::kMultiStop:
      return "multi-stop";
  }
  return "unknown";
}

QueryContext::QueryContext()
    : scratch_(std::make_unique<internal::SearchScratch>()) {}
QueryContext::~QueryContext() = default;
QueryContext::QueryContext(QueryContext&&) noexcept = default;
QueryContext& QueryContext::operator=(QueryContext&&) noexcept = default;

Router::Router(std::string name, const ItGraph& graph,
               const CheckpointSet* precomputed)
    : name_(std::move(name)),
      graph_(&graph),
      checkpoints_(precomputed != nullptr ? *precomputed
                                          : CheckpointSet::FromGraph(graph)) {}

Router::Router(std::string name) : name_(std::move(name)), graph_(nullptr) {}

size_t Router::MemoryUsage() const {
  return checkpoints_.times().capacity() * sizeof(double);
}

std::vector<StatusOr<QueryResult>> Router::RouteBatch(
    const std::vector<QueryRequest>& requests,
    const BatchOptions& options) const {
  // Empty batch: nothing to route, no context (caller's or throwaway)
  // is touched. Without this early-out the n == 0 case used to fall
  // into the sequential branch and construct a QueryContext for a loop
  // that never runs.
  if (requests.empty()) return {};

  // Slots start as a placeholder error so a worker dying mid-batch can
  // never surface an uninitialised answer as OK.
  std::vector<StatusOr<QueryResult>> results(
      requests.size(), StatusOr<QueryResult>(InternalError("not routed")));

  const size_t n = requests.size();
  const int threads =
      options.num_threads > 1
          ? static_cast<int>(
                std::min<size_t>(static_cast<size_t>(options.num_threads), n))
          : 1;
  if (threads <= 1) {
    QueryContext local;
    QueryContext* context = options.context ? options.context : &local;
    // A coalesced batch lands on one shard with clustered departures:
    // retain snapshot pins across the loop so consecutive queries skip
    // the per-query store round-trip, then release before returning so
    // a long-lived context doesn't hold masks hostage between batches.
    internal::SearchScratch& scratch = context->scratch();
    scratch.retain_pins = true;
    for (size_t i = 0; i < n; ++i) {
      results[i] = Route(requests[i], context);
    }
    scratch.retain_pins = false;
    scratch.ReleasePins();
    return results;
  }

  // Work-stealing over a shared index: requests vary wildly in cost
  // (off-hours queries finish in microseconds), so static striping
  // would leave workers idle.
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    QueryContext context;
    internal::SearchScratch& scratch = context.scratch();
    scratch.retain_pins = true;
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      results[i] = Route(requests[i], &context);
    }
    // The context dies with the worker; the explicit release just keeps
    // the pin lifetime rule uniform with the sequential path.
    scratch.retain_pins = false;
    scratch.ReleasePins();
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return results;
}

}  // namespace itspq

#include "query/itspq.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "common/memory_tracker.h"
#include "itgraph/door_search.h"
#include "query/reconstruct.h"

namespace itspq {

namespace {

using internal::kInfDistance;

struct HeapEntry {
  double dist;
  DoorId door;
  bool operator>(const HeapEntry& other) const { return dist > other.dist; }
};

// Estimated bytes of one touched door label (distance + parent + flags).
constexpr size_t kLabelBytes =
    sizeof(double) + sizeof(DoorId) + 2 * sizeof(uint8_t);

}  // namespace

ItspqEngine::ItspqEngine(const ItGraph& graph)
    : graph_(&graph),
      checkpoints_(CheckpointSet::FromGraph(graph)),
      snapshot_cache_(graph, checkpoints_) {}

StatusOr<QueryResult> ItspqEngine::Query(const IndoorPoint& ps,
                                         const IndoorPoint& pt, Instant t,
                                         const ItspqOptions& options) {
  Timer timer;
  const Venue& venue = graph_->venue();

  auto src = internal::AttachPoint(venue, ps);
  if (!src.ok()) {
    return Status(src.status().code(),
                  "source " + src.status().message());
  }
  auto dst = internal::AttachPoint(venue, pt);
  if (!dst.ok()) {
    return Status(dst.status().code(),
                  "target " + dst.status().message());
  }

  const size_t n = graph_->NumDoors();
  const double dep = t.seconds();
  const bool async = options.mode != TvMode::kSynchronous;

  QueryResult result;
  SearchStats& stats = result.stats;
  MemoryTracker memory;

  // Reduced-graph plumbing for the asynchronous checkers. Without the
  // cross-query cache, ITG/A keeps exactly one resident snapshot and
  // re-derives it from G0 on every frontier interval switch (Alg. 3 as
  // published); ITG/A+ keeps the intervals it has visited this query so
  // per-relaxation interval hops don't thrash rebuilds.
  std::optional<GraphSnapshot> resident;
  std::vector<std::optional<GraphSnapshot>> visited_intervals;
  if (async && !options.use_snapshot_cache &&
      options.mode == TvMode::kAsynchronousStrict) {
    visited_intervals.resize(checkpoints_.NumIntervals());
  }
  auto get_snapshot = [&](size_t interval) -> const GraphSnapshot& {
    if (options.use_snapshot_cache) {
      const size_t before = snapshot_cache_.build_count();
      const GraphSnapshot& snap = snapshot_cache_.Get(interval);
      stats.graph_updates += snapshot_cache_.build_count() - before;
      return snap;
    }
    if (options.mode == TvMode::kAsynchronousStrict) {
      std::optional<GraphSnapshot>& slot = visited_intervals[interval];
      if (!slot.has_value()) {
        slot = BuildSnapshot(*graph_, checkpoints_, interval);
        ++stats.graph_updates;
        memory.Add(slot->MemoryUsage());
      }
      return *slot;
    }
    if (!resident.has_value() || resident->interval_index != interval) {
      if (resident.has_value()) memory.Release(resident->MemoryUsage());
      resident = BuildSnapshot(*graph_, checkpoints_, interval);
      ++stats.graph_updates;
      memory.Add(resident->MemoryUsage());
    }
    return *resident;
  };

  // Frontier snapshot for ITG/A, refreshed when the popped label's
  // projected arrival crosses a checkpoint.
  const GraphSnapshot* frontier = nullptr;
  if (options.mode == TvMode::kAsynchronous) {
    frontier = &get_snapshot(checkpoints_.IntervalIndexOf(WrapTimeOfDay(dep)));
  }

  auto door_usable = [&](DoorId door, double arrival_abs) {
    switch (options.mode) {
      case TvMode::kSynchronous:
        return graph_->Ati(door).ContainsTimeOfDay(arrival_abs);
      case TvMode::kAsynchronous:
        return frontier->IsOpen(door);
      case TvMode::kAsynchronousStrict:
        return get_snapshot(
                   checkpoints_.IntervalIndexOf(WrapTimeOfDay(arrival_abs)))
            .IsOpen(door);
    }
    return false;
  };

  // Minimum straight-line tail from each target-partition door to pt.
  std::vector<double> target_offset(n, kInfDistance);
  for (const auto& [door, offset] : dst->door_offsets) {
    target_offset[static_cast<size_t>(door)] =
        std::min(target_offset[static_cast<size_t>(door)], offset);
  }

  double best_total = kInfDistance;
  DoorId best_door = kInvalidDoor;
  if (internal::SharesPartition(*src, *dst)) {
    best_total = EuclideanDistance(ps.p, pt.p);
  }

  std::vector<double> dist(n, kInfDistance);
  std::vector<DoorId> parent(n, kInvalidDoor);
  std::vector<uint8_t> settled(n, 0);
  std::vector<uint8_t> partition_expanded(venue.NumPartitions(), 0);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;

  auto relax = [&](DoorId door, double nd, DoorId from) {
    const size_t i = static_cast<size_t>(door);
    if (nd >= dist[i]) return;
    const double arrival = dep + nd / kWalkSpeedMps;
    if (!door_usable(door, arrival)) return;
    if (dist[i] == kInfDistance) memory.Add(kLabelBytes);
    dist[i] = nd;
    parent[i] = from;
    heap.push(HeapEntry{nd, door});
    memory.Add(sizeof(HeapEntry));
  };

  for (const auto& [door, offset] : src->door_offsets) {
    relax(door, offset, kInvalidDoor);
  }

  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    memory.Release(sizeof(HeapEntry));
    const size_t u = static_cast<size_t>(top.door);
    if (settled[u]) continue;
    if (top.dist >= best_total) break;  // every later label is longer
    settled[u] = 1;
    ++stats.doors_popped;

    if (options.mode == TvMode::kAsynchronous) {
      const size_t interval = checkpoints_.IntervalIndexOf(
          WrapTimeOfDay(dep + top.dist / kWalkSpeedMps));
      if (interval != frontier->interval_index) {
        frontier = &get_snapshot(interval);
      }
    }

    if (target_offset[u] < kInfDistance &&
        top.dist + target_offset[u] < best_total) {
      best_total = top.dist + target_offset[u];
      best_door = top.door;
    }

    for (PartitionId p : graph_->DoorPartitions(top.door)) {
      if (options.partition_visited_pruning) {
        uint8_t& expanded = partition_expanded[static_cast<size_t>(p)];
        if (expanded) continue;
        expanded = 1;
      }
      const DistanceMatrix& dm = venue.distance_matrix(p);
      for (DoorId next : venue.DoorsOf(p)) {
        if (next == top.door || settled[static_cast<size_t>(next)]) continue;
        relax(next, top.dist + dm.DistanceUnchecked(top.door, next),
              top.door);
      }
    }
  }

  if (std::isfinite(best_total)) {
    result.found = true;
    result.path =
        internal::ReconstructPath(dist, parent, best_door, best_total, dep);
  }

  stats.peak_memory_bytes = memory.peak();
  stats.search_micros = timer.ElapsedMicros();
  return result;
}

}  // namespace itspq

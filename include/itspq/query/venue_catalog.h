#ifndef ITSPQ_QUERY_VENUE_CATALOG_H_
#define ITSPQ_QUERY_VENUE_CATALOG_H_

// The multi-venue serving state: N independently built venues (each
// with its own ItGraph, per-venue Router resolved by strategy name,
// and — inside the strategy — its own SnapshotStore), addressed by
// the dense VenueId carried in QueryRequest::venue_id.
//
//   VenueCatalog catalog;
//   for (Venue& v : fleet) {
//     StatusOr<VenueId> id = catalog.AddVenue(std::move(v), "itg-s");
//   }
//   ShardedRouter router(catalog);              // sharded_router.h
//   BatchOptions fan_out;
//   fan_out.num_threads = 8;
//   router.RouteBatch(requests, fan_out);       // requests carry venue_id
//   CatalogStats report = catalog.Stats();
//
// Build the catalog fully before sharing it; once built, every
// accessor and the per-shard traffic counters are safe for concurrent
// use (the counters are atomics bumped by ShardedRouter::Route).

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "itgraph/itgraph.h"
#include "query/registry.h"
#include "query/router.h"
#include "venue/venue.h"

namespace itspq {

/// Point-in-time counters and footprint for one venue shard.
struct ShardStats {
  VenueId venue_id = 0;
  std::string label;
  std::string strategy;
  /// Requests dispatched to this shard through a ShardedRouter
  /// (including ones that came back as per-request errors).
  size_t queries_served = 0;
  size_t routes_found = 0;
  size_t route_errors = 0;
  /// The shard router's snapshot-store counters (policy, budget,
  /// hits/misses/evictions, full vs delta builds, resident bytes).
  CacheStatsSnapshot cache;
  /// Graph_Update derivations in the shard router's snapshot store
  /// (= cache.builds(), kept as a flat column for reports).
  size_t snapshot_builds = 0;
  /// Venue + IT-Graph + router shared state, bytes.
  size_t memory_bytes = 0;
};

/// Stats() report: one entry per shard plus catalog-wide totals.
struct CatalogStats {
  std::vector<ShardStats> shards;
  size_t total_queries = 0;
  size_t total_found = 0;
  size_t total_errors = 0;
  size_t total_snapshot_builds = 0;
  size_t total_memory_bytes = 0;
  /// Catalog-wide snapshot-store aggregate across shards.
  CacheStatsSnapshot total_cache;
};

class VenueCatalog {
 public:
  VenueCatalog() = default;

  VenueCatalog(VenueCatalog&&) = default;
  VenueCatalog& operator=(VenueCatalog&&) = default;
  VenueCatalog(const VenueCatalog&) = delete;
  VenueCatalog& operator=(const VenueCatalog&) = delete;

  /// Takes ownership of `venue`, compiles its IT-Graph, and resolves
  /// `strategy` through `registry` (the global registry when null),
  /// building the shard router under `options` (snapshot-store budget /
  /// eviction policy). Returns the new shard's VenueId — ids are dense,
  /// in insertion order, starting at 0. On error the catalog is
  /// unchanged.
  StatusOr<VenueId> AddVenue(
      Venue venue, const std::string& strategy,
      std::string label = std::string(),
      const RouterBuildOptions& options = RouterBuildOptions(),
      const RouterRegistry* registry = nullptr);

  /// Splits a catalog-wide snapshot budget evenly across the current
  /// shards and applies it via Router::SetSnapshotBudget (shards whose
  /// strategy has no snapshot store simply ignore theirs). Overflowing
  /// shards evict immediately — provided their stores run an evicting
  /// policy ("lru"/"clock", set via AddVenue's options); the default
  /// "keep-all" records the budget but never evicts. Call after the
  /// fleet is assembled; re-call to re-apportion after adding venues.
  void ApportionSnapshotBudget(size_t total_bytes);

  size_t NumVenues() const { return shards_.size(); }
  bool Contains(VenueId id) const {
    return id >= 0 && static_cast<size_t>(id) < shards_.size();
  }

  /// Accessors require Contains(id). References stay valid for the
  /// catalog's lifetime (shards are never dropped or reordered).
  const Venue& venue(VenueId id) const { return *shard(id).venue; }
  const ItGraph& graph(VenueId id) const { return *shard(id).graph; }
  const Router& router(VenueId id) const { return *shard(id).router; }
  const std::string& label(VenueId id) const { return shard(id).label; }

  /// Point-in-time report; safe to call while queries are in flight.
  CatalogStats Stats() const;

 private:
  friend class ShardedRouter;

  struct Shard {
    std::string label;
    std::string strategy;
    // Destruction order (reverse of declaration) matters: the graph
    // points into the venue and the router into the graph.
    std::unique_ptr<Venue> venue;
    std::unique_ptr<ItGraph> graph;
    std::unique_ptr<Router> router;
    // Traffic counters, bumped by ShardedRouter::Route (mutable: the
    // whole query path is const).
    mutable std::atomic<size_t> queries_served{0};
    mutable std::atomic<size_t> routes_found{0};
    mutable std::atomic<size_t> route_errors{0};
  };

  const Shard& shard(VenueId id) const {
    return *shards_[static_cast<size_t>(id)];
  }

  // unique_ptr keeps shard addresses stable across catalog moves and
  // vector growth, so routers and stats readers can hold references.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace itspq

#endif  // ITSPQ_QUERY_VENUE_CATALOG_H_

#ifndef ITSPQ_QUERY_VENUE_CATALOG_H_
#define ITSPQ_QUERY_VENUE_CATALOG_H_

// The multi-venue serving state: N independently built venues (each
// with its own ItGraph, per-venue Router resolved by strategy name,
// and — inside the strategy — its own SnapshotStore), addressed by
// the dense VenueId carried in QueryRequest::venue_id.
//
//   VenueCatalog catalog;
//   for (Venue& v : fleet) {
//     StatusOr<VenueId> id = catalog.AddVenue(std::move(v), "itg-s");
//   }
//   ShardedRouter router(catalog);              // sharded_router.h
//   BatchOptions fan_out;
//   fan_out.num_threads = 8;
//   router.RouteBatch(requests, fan_out);       // requests carry venue_id
//   CatalogStats report = catalog.Stats();
//
// Build the catalog fully before sharing it; once built, every
// accessor and the per-shard traffic counters are safe for concurrent
// use (the counters are atomics bumped by ShardedRouter::Route).
//
// Since the update plane (update/) landed, each shard's serving state
// lives in an immutable VersionedGraph published RCU-style: readers pin
// the current version with world(id) (a shared_ptr load), writers go
// through ApplyAtiUpdate, which derives the next version incrementally
// and atomically swaps the pointer. In-flight queries pinned to the old
// epoch finish on it bit-identically; per-shard writes are serialized
// by a per-shard mutex, reads never block on writes.

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "itgraph/itgraph.h"
#include "query/registry.h"
#include "query/router.h"
#include "update/ati_update.h"
#include "update/versioned_graph.h"
#include "venue/venue.h"

namespace itspq {

/// Point-in-time counters and footprint for one venue shard.
struct ShardStats {
  VenueId venue_id = 0;
  std::string label;
  std::string strategy;
  /// Requests dispatched to this shard through a ShardedRouter
  /// (including ones that came back as per-request errors).
  size_t queries_served = 0;
  size_t routes_found = 0;
  size_t route_errors = 0;
  /// The epoch the shard currently serves (0 until the first update).
  uint64_t epoch = 0;
  /// Write-path counters: ApplyAtiUpdate commits / failures, and the
  /// cumulative snapshot economics of those epoch transitions.
  size_t updates_applied = 0;
  size_t updates_rejected = 0;
  size_t update_snapshots_carried = 0;
  size_t update_snapshots_rebased = 0;
  size_t update_intervals_invalidated = 0;
  /// The shard router's snapshot-store counters (policy, budget,
  /// hits/misses/evictions, full vs delta builds, resident bytes).
  CacheStatsSnapshot cache;
  /// Graph_Update derivations in the shard router's snapshot store
  /// (= cache.builds(), kept as a flat column for reports).
  size_t snapshot_builds = 0;
  /// Venue + IT-Graph + router shared state, bytes.
  size_t memory_bytes = 0;
};

/// Stats() report: one entry per shard plus catalog-wide totals.
struct CatalogStats {
  std::vector<ShardStats> shards;
  size_t total_queries = 0;
  size_t total_found = 0;
  size_t total_errors = 0;
  size_t total_snapshot_builds = 0;
  size_t total_memory_bytes = 0;
  /// Catalog-wide write-path totals.
  size_t total_updates_applied = 0;
  size_t total_updates_rejected = 0;
  size_t total_update_snapshots_carried = 0;
  size_t total_update_intervals_invalidated = 0;
  /// Catalog-wide snapshot-store aggregate across shards.
  CacheStatsSnapshot total_cache;
};

class VenueCatalog {
 public:
  VenueCatalog() = default;

  VenueCatalog(VenueCatalog&&) = default;
  VenueCatalog& operator=(VenueCatalog&&) = default;
  VenueCatalog(const VenueCatalog&) = delete;
  VenueCatalog& operator=(const VenueCatalog&) = delete;

  /// Takes ownership of `venue`, compiles its IT-Graph, and resolves
  /// `strategy` through `registry` (the global registry when null),
  /// building the shard router under `options` (snapshot-store budget /
  /// eviction policy). Returns the new shard's VenueId — ids are dense,
  /// in insertion order, starting at 0. On error the catalog is
  /// unchanged.
  StatusOr<VenueId> AddVenue(
      Venue venue, const std::string& strategy,
      std::string label = std::string(),
      const RouterBuildOptions& options = RouterBuildOptions(),
      const RouterRegistry* registry = nullptr);

  /// Splits a catalog-wide snapshot budget evenly across the current
  /// shards and applies it via Router::SetSnapshotBudget (shards whose
  /// strategy has no snapshot store simply ignore theirs). Overflowing
  /// shards evict immediately — provided their stores run an evicting
  /// policy ("lru"/"clock", set via AddVenue's options); the default
  /// "keep-all" records the budget but never evicts. Call after the
  /// fleet is assembled; re-call to re-apportion after adding venues.
  void ApportionSnapshotBudget(size_t total_bytes);

  /// Applies one online ATI mutation to its shard: derives the next
  /// VersionedGraph incrementally (UpdateApplier::Apply) and publishes
  /// it with an atomic pointer swap. Per-shard writes are serialized
  /// under the shard's update mutex; reads are never blocked — they pin
  /// whichever version was current when they started. Errors (the
  /// catalog stays on the current epoch, the rejection is counted):
  ///   kNotFound        — unknown venue_id or door_id.
  ///   kInvalidArgument — replacement intervals fail normalisation.
  StatusOr<UpdateOutcome> ApplyAtiUpdate(const AtiUpdate& update);

  /// Pins the shard's current version: the returned shared_ptr keeps
  /// that epoch's venue/graph/router alive across any number of
  /// concurrent updates. The read side of the RCU contract — one atomic
  /// load, never blocks on writers. Requires Contains(id).
  std::shared_ptr<const VersionedGraph> world(VenueId id) const;

  /// The epoch shard `id` currently serves. Requires Contains(id).
  uint64_t epoch(VenueId id) const { return world(id)->epoch(); }

  size_t NumVenues() const { return shards_.size(); }
  bool Contains(VenueId id) const {
    return id >= 0 && static_cast<size_t>(id) < shards_.size();
  }

  /// Accessors require Contains(id). The references point into the
  /// shard's CURRENT version and stay valid only until the next
  /// ApplyAtiUpdate on that shard retires it — single-threaded callers
  /// (tests, benches) may use them freely; concurrent readers must pin
  /// via world(id) instead.
  const Venue& venue(VenueId id) const { return world(id)->venue(); }
  const ItGraph& graph(VenueId id) const { return world(id)->graph(); }
  const Router& router(VenueId id) const { return world(id)->router(); }
  const std::string& label(VenueId id) const { return shard(id).label; }

  /// Point-in-time report; safe to call while queries and updates are
  /// in flight.
  CatalogStats Stats() const;

 private:
  friend class ShardedRouter;

  struct Shard {
    std::string label;
    std::string strategy;
    /// Router construction config, re-used when an update rebuilds the
    /// shard router (the applier refreshes the budget from the live
    /// store). Guarded by update_mu.
    RouterBuildOptions build_options;
    /// The published version. Accessed with std::atomic_load /
    /// std::atomic_store (C++17's shared_ptr atomic free functions):
    /// readers pin, the single in-flight writer (under update_mu)
    /// swaps.
    std::shared_ptr<const VersionedGraph> world;
    /// Serializes writers per shard.
    mutable std::mutex update_mu;
    // Traffic counters, bumped by ShardedRouter::Route (mutable: the
    // whole query path is const).
    mutable std::atomic<size_t> queries_served{0};
    mutable std::atomic<size_t> routes_found{0};
    mutable std::atomic<size_t> route_errors{0};
    // Write-path counters, bumped by ApplyAtiUpdate.
    mutable std::atomic<size_t> updates_applied{0};
    mutable std::atomic<size_t> updates_rejected{0};
    mutable std::atomic<size_t> update_snapshots_carried{0};
    mutable std::atomic<size_t> update_snapshots_rebased{0};
    mutable std::atomic<size_t> update_intervals_invalidated{0};
  };

  const Shard& shard(VenueId id) const {
    return *shards_[static_cast<size_t>(id)];
  }

  // unique_ptr keeps shard addresses stable across catalog moves and
  // vector growth, so routers and stats readers can hold references.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace itspq

#endif  // ITSPQ_QUERY_VENUE_CATALOG_H_

#ifndef ITSPQ_QUERY_VENUE_CATALOG_H_
#define ITSPQ_QUERY_VENUE_CATALOG_H_

// The multi-venue serving state: N independently built venues (each
// with its own ItGraph, per-venue Router resolved by strategy name,
// and — inside the strategy — its own SnapshotStore), addressed by
// the dense VenueId carried in QueryRequest::venue_id.
//
//   VenueCatalog catalog;
//   for (Venue& v : fleet) {
//     StatusOr<VenueId> id = catalog.AddVenue(std::move(v), "itg-s");
//   }
//   ShardedRouter router(catalog);              // sharded_router.h
//   BatchOptions fan_out;
//   fan_out.num_threads = 8;
//   router.RouteBatch(requests, fan_out);       // requests carry venue_id
//   CatalogStats report = catalog.Stats();
//
// Build the catalog fully before sharing it; once built, every
// accessor and the per-shard traffic counters are safe for concurrent
// use (the counters are atomics bumped by ShardedRouter::Route).
//
// Since the update plane (update/) landed, each shard's serving state
// lives in an immutable VersionedGraph published RCU-style: readers pin
// the current version with world(id) (a shared_ptr load), writers go
// through ApplyAtiUpdate, which derives the next version incrementally
// and atomically swaps the pointer. In-flight queries pinned to the old
// epoch finish on it bit-identically; per-shard writes are serialized
// by a per-shard mutex, reads never block on writes.
//
// Shards come in two flavours:
//   AddVenue(...)          — eager: built in-process, always resident.
//   AddArtifactShard(path) — lazy: registered by `.itspq` artifact path
//     (artifact/artifact.h), loaded on first query (EnsureResident) and
//     published as VersionedGraph epoch 0, so ApplyAtiUpdate composes
//     unchanged. SetResidencyBudget caps the bytes lazy shards keep
//     resident; overflow evicts cold shards (pluggable policy, the
//     SnapshotStore eviction vocabulary) by nulling the published
//     pointer — pinned readers finish on their epoch, the next query
//     reloads. A shard that has taken an online update is pinned
//     resident for good (its state has diverged from the artifact).

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "itgraph/itgraph.h"
#include "itgraph/snapshot_store.h"
#include "query/registry.h"
#include "query/router.h"
#include "update/ati_update.h"
#include "update/versioned_graph.h"
#include "venue/venue.h"

namespace itspq {

/// Point-in-time counters and footprint for one venue shard.
struct ShardStats {
  VenueId venue_id = 0;
  std::string label;
  std::string strategy;
  /// Requests dispatched to this shard through a ShardedRouter
  /// (including ones that came back as per-request errors). Every
  /// dispatch lands in exactly one outcome bucket, so
  ///   queries_served == routes_found + routes_not_found + route_errors
  /// holds whenever the shard is quiescent.
  size_t queries_served = 0;
  size_t routes_found = 0;
  /// OK answers with no temporally valid route (found == false).
  size_t routes_not_found = 0;
  size_t route_errors = 0;
  /// The epoch the shard currently serves (0 until the first update).
  uint64_t epoch = 0;
  /// Write-path counters: ApplyAtiUpdate commits / failures, and the
  /// cumulative snapshot economics of those epoch transitions.
  size_t updates_applied = 0;
  size_t updates_rejected = 0;
  size_t update_snapshots_carried = 0;
  size_t update_snapshots_rebased = 0;
  size_t update_intervals_invalidated = 0;
  /// The shard router's snapshot-store counters (policy, budget,
  /// hits/misses/evictions, full vs delta builds, resident bytes).
  CacheStatsSnapshot cache;
  /// Graph_Update derivations in the shard router's snapshot store
  /// (= cache.builds(), kept as a flat column for reports).
  size_t snapshot_builds = 0;
  /// Venue + IT-Graph + router shared state, bytes. 0 while a lazy
  /// shard is not resident.
  size_t memory_bytes = 0;
  /// Lazy-residency state: artifact-backed shard, currently resident,
  /// and how many times its artifact has been (re)loaded.
  bool lazy = false;
  bool resident = true;
  size_t loads = 0;
};

/// Stats() report: one entry per shard plus catalog-wide totals.
struct CatalogStats {
  std::vector<ShardStats> shards;
  size_t total_queries = 0;
  size_t total_found = 0;
  size_t total_not_found = 0;
  size_t total_errors = 0;
  size_t total_snapshot_builds = 0;
  size_t total_memory_bytes = 0;
  /// Catalog-wide write-path totals.
  size_t total_updates_applied = 0;
  size_t total_updates_rejected = 0;
  size_t total_update_snapshots_carried = 0;
  size_t total_update_intervals_invalidated = 0;
  /// Catalog-wide snapshot-store aggregate across shards.
  CacheStatsSnapshot total_cache;
  /// Lazy-residency report: artifact-backed shard count, how many
  /// shards are currently resident (eager ones always are), cumulative
  /// artifact loads and shard evictions, the configured budget, and the
  /// bytes the evictable lazy shards currently hold against it.
  size_t lazy_shards = 0;
  size_t resident_shards = 0;
  size_t total_loads = 0;
  size_t total_shard_evictions = 0;
  size_t residency_budget_bytes = 0;
  size_t resident_lazy_bytes = 0;
  /// Artifact load + world assembly latency of every cold load.
  LatencyHistogram load_latency;
};

class VenueCatalog {
 public:
  VenueCatalog() = default;

  /// Moves are for catalog assembly and handoff (e.g. into a
  /// QueryService) BEFORE the catalog is shared — they are not
  /// synchronized against concurrent readers or writers.
  VenueCatalog(VenueCatalog&& other) noexcept;
  VenueCatalog& operator=(VenueCatalog&& other) noexcept;
  VenueCatalog(const VenueCatalog&) = delete;
  VenueCatalog& operator=(const VenueCatalog&) = delete;

  /// Takes ownership of `venue`, compiles its IT-Graph, and resolves
  /// `strategy` through `registry` (the global registry when null),
  /// building the shard router under `options` (snapshot-store budget /
  /// eviction policy). Returns the new shard's VenueId — ids are dense,
  /// in insertion order, starting at 0. On error the catalog is
  /// unchanged.
  StatusOr<VenueId> AddVenue(
      Venue venue, const std::string& strategy,
      std::string label = std::string(),
      const RouterBuildOptions& options = RouterBuildOptions(),
      const RouterRegistry* registry = nullptr);

  /// Registers a lazy shard backed by the `.itspq` artifact at `path`
  /// WITHOUT loading it: only the artifact header + section table are
  /// validated (wrong magic, foreign endianness, a future format
  /// version, or truncation are rejected here and leave the catalog
  /// unchanged; payload corruption surfaces at first load). The shard
  /// becomes resident on the first EnsureResident — typically a
  /// ShardedRouter query — publishing the loaded world as epoch 0.
  StatusOr<VenueId> AddArtifactShard(
      const std::string& path, const std::string& strategy,
      std::string label = std::string(),
      const RouterBuildOptions& options = RouterBuildOptions(),
      const RouterRegistry* registry = nullptr);

  /// Caps the bytes clean lazy shards keep resident (0 = unlimited) and
  /// installs the eviction policy choosing victims — the SnapshotStore
  /// vocabulary over shard ids: "keep-all" (advisory budget) | "lru" |
  /// "clock". kNotFound on an unknown policy name. Call after the fleet
  /// is registered; re-call to re-target. Evicts immediately when the
  /// currently resident set overflows the new budget. Shards that have
  /// taken an online update are pinned resident and leave the budget's
  /// accounting.
  Status SetResidencyBudget(size_t budget_bytes,
                            const std::string& policy = "lru");

  /// Pins shard `id`'s world, loading its artifact first when the shard
  /// is lazy and cold (the returned status is the load error when that
  /// fails — the shard stays cold and the next call retries). The
  /// miss path serializes on the shard's update mutex; hits are one
  /// atomic load (plus a policy touch when a residency budget is
  /// engaged). Requires Contains(id).
  StatusOr<std::shared_ptr<const VersionedGraph>> EnsureResident(
      VenueId id) const;

  /// True when shard `id` currently has a published world (always true
  /// for eager shards). Requires Contains(id).
  bool IsResident(VenueId id) const {
    return std::atomic_load(&shard(id).world) != nullptr;
  }

  /// Splits a catalog-wide snapshot budget evenly across the current
  /// shards and applies it via Router::SetSnapshotBudget (shards whose
  /// strategy has no snapshot store simply ignore theirs). Overflowing
  /// shards evict immediately — provided their stores run an evicting
  /// policy ("lru"/"clock", set via AddVenue's options); the default
  /// "keep-all" records the budget but never evicts. Call after the
  /// fleet is assembled; re-call to re-apportion after adding venues.
  void ApportionSnapshotBudget(size_t total_bytes);

  /// Applies one online ATI mutation to its shard: derives the next
  /// VersionedGraph incrementally (UpdateApplier::Apply) and publishes
  /// it with an atomic pointer swap. Per-shard writes are serialized
  /// under the shard's update mutex; reads are never blocked — they pin
  /// whichever version was current when they started. Errors (the
  /// catalog stays on the current epoch, the rejection is counted):
  ///   kNotFound        — unknown venue_id or door_id.
  ///   kInvalidArgument — replacement intervals fail normalisation.
  StatusOr<UpdateOutcome> ApplyAtiUpdate(const AtiUpdate& update);

  /// Pins the shard's current version: the returned shared_ptr keeps
  /// that epoch's venue/graph/router alive across any number of
  /// concurrent updates. The read side of the RCU contract — one atomic
  /// load, never blocks on writers. Null when a lazy shard is not
  /// resident (use EnsureResident to load-and-pin). Requires
  /// Contains(id).
  std::shared_ptr<const VersionedGraph> world(VenueId id) const;

  /// The epoch shard `id` currently serves. Requires Contains(id).
  uint64_t epoch(VenueId id) const { return world(id)->epoch(); }

  size_t NumVenues() const { return shards_.size(); }
  bool Contains(VenueId id) const {
    return id >= 0 && static_cast<size_t>(id) < shards_.size();
  }

  /// Accessors require Contains(id) and a RESIDENT shard. The
  /// references point into the shard's CURRENT version and stay valid
  /// only until the next ApplyAtiUpdate on that shard retires it (or an
  /// eviction drops it) — single-threaded callers (tests, benches) may
  /// use them freely; concurrent readers must pin via world(id) /
  /// EnsureResident instead.
  const Venue& venue(VenueId id) const { return world(id)->venue(); }
  const ItGraph& graph(VenueId id) const { return world(id)->graph(); }
  const Router& router(VenueId id) const { return world(id)->router(); }
  const std::string& label(VenueId id) const { return shard(id).label; }

  /// Point-in-time report; safe to call while queries and updates are
  /// in flight.
  CatalogStats Stats() const;

 private:
  friend class ShardedRouter;

  struct Shard {
    std::string label;
    std::string strategy;
    /// Router construction config, re-used when an update rebuilds the
    /// shard router (the applier refreshes the budget from the live
    /// store). Guarded by update_mu.
    RouterBuildOptions build_options;
    /// Lazy shards only: the backing `.itspq` artifact (empty = eager)
    /// and the registry strategies resolve through on load.
    std::string artifact_path;
    const RouterRegistry* registry = nullptr;
    bool lazy = false;
    /// The published version. Accessed with std::atomic_load /
    /// std::atomic_store (C++17's shared_ptr atomic free functions):
    /// readers pin, the single in-flight writer (under update_mu, or
    /// the evictor under residency_mu_) swaps. mutable: cold loads and
    /// evictions happen on the const query path.
    mutable std::shared_ptr<const VersionedGraph> world;
    /// Serializes writers per shard.
    mutable std::mutex update_mu;
    /// Once set, the residency policy never evicts this shard (it has
    /// taken an online update, so its state has diverged from the
    /// artifact on disk).
    mutable std::atomic<bool> unevictable{false};
    /// Artifact (re)loads performed for this shard.
    mutable std::atomic<size_t> loads{0};
    /// Residency accounting, guarded by the catalog's residency_mu_:
    /// bytes this shard contributes to the lazy budget (0 when cold or
    /// pinned) and whether the eviction policy currently tracks it.
    mutable size_t resident_bytes = 0;
    mutable bool policy_tracked = false;
    // Traffic counters, bumped by ShardedRouter::Route (mutable: the
    // whole query path is const). Route bumps queries_served together
    // with exactly one outcome counter so the ledger reconciles.
    mutable std::atomic<size_t> queries_served{0};
    mutable std::atomic<size_t> routes_found{0};
    mutable std::atomic<size_t> routes_not_found{0};
    mutable std::atomic<size_t> route_errors{0};
    // Write-path counters, bumped by ApplyAtiUpdate.
    mutable std::atomic<size_t> updates_applied{0};
    mutable std::atomic<size_t> updates_rejected{0};
    mutable std::atomic<size_t> update_snapshots_carried{0};
    mutable std::atomic<size_t> update_snapshots_rebased{0};
    mutable std::atomic<size_t> update_intervals_invalidated{0};
  };

  const Shard& shard(VenueId id) const {
    return *shards_[static_cast<size_t>(id)];
  }

  /// Loads shard `s`'s artifact and publishes it as epoch 0. Caller
  /// holds s.update_mu; takes residency_mu_ for the accounting +
  /// evict-to-fit pass (lock order: update_mu before residency_mu_,
  /// never the reverse — the evictor never touches a victim's
  /// update_mu).
  StatusOr<std::shared_ptr<const VersionedGraph>> LoadShardLocked(
      const Shard& s, VenueId id) const;

  /// Pins shard `id` out of the evictable pool (first online update).
  /// Caller holds the shard's update_mu.
  void PinResidentLocked(const Shard& s, VenueId id) const;

  /// Evicts clean lazy shards until resident_lazy_bytes_ fits the
  /// budget, never evicting `protect`. Caller holds residency_mu_.
  void EvictToFitLocked(size_t protect) const;

  // unique_ptr keeps shard addresses stable across catalog moves and
  // vector growth, so routers and stats readers can hold references.
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Lazy-residency state. residency_mu_ guards the policy, the byte
  /// accounting, the load-latency histogram, and every shard's
  /// resident_bytes / policy_tracked. Cheap flag first: the query hot
  /// path skips the mutex entirely until SetResidencyBudget engages.
  mutable std::atomic<bool> residency_engaged_{false};
  mutable std::mutex residency_mu_;
  mutable std::unique_ptr<EvictionPolicy> residency_policy_;
  mutable size_t residency_budget_bytes_ = 0;
  mutable size_t resident_lazy_bytes_ = 0;
  mutable size_t shard_evictions_ = 0;
  mutable LatencyHistogram load_latency_;
};

}  // namespace itspq

#endif  // ITSPQ_QUERY_VENUE_CATALOG_H_

#ifndef ITSPQ_QUERY_PATH_H_
#define ITSPQ_QUERY_PATH_H_

// The answer types shared by the ITSPQ engine and the baselines.
//
// A Path records the doors crossed in order, each with the cumulative
// walking distance and the projected arrival time (departure time +
// distance / kWalkSpeedMps). Arrival times are absolute seconds and may
// run past midnight; consumers wrap them when checking ATIs.

#include <cstddef>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "venue/geometry.h"

namespace itspq {

struct PathStep {
  DoorId door = kInvalidDoor;
  /// Metres walked from the source when reaching this door.
  double cumulative_m = 0;
  /// Projected arrival time at this door (absolute seconds).
  double arrival_seconds = 0;
};

class Path {
 public:
  Path() = default;
  Path(double departure_seconds, double total_m, std::vector<PathStep> steps)
      : departure_seconds_(departure_seconds),
        total_m_(total_m),
        steps_(std::move(steps)) {}

  /// Total walking distance source -> target, in metres.
  double length_m() const { return total_m_; }

  double departure_seconds() const { return departure_seconds_; }
  const std::vector<PathStep>& steps() const { return steps_; }

 private:
  double departure_seconds_ = 0;
  double total_m_ = 0;
  std::vector<PathStep> steps_;
};

/// Result of one shortest-path query. `found == false` with an OK
/// status means no temporally valid route exists.
struct QueryResult {
  bool found = false;
  Path path;
  SearchStats stats;
};

}  // namespace itspq

#endif  // ITSPQ_QUERY_PATH_H_

#ifndef ITSPQ_QUERY_PATH_H_
#define ITSPQ_QUERY_PATH_H_

// The answer types shared by the ITSPQ engine and the baselines.
//
// A Path records the doors crossed in order, each with the cumulative
// walking distance and the projected arrival time (departure time +
// distance / kWalkSpeedMps). Arrival times are absolute seconds and may
// run past midnight; consumers wrap them when checking ATIs.

#include <cstddef>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "venue/geometry.h"

namespace itspq {

struct PathStep {
  DoorId door = kInvalidDoor;
  /// Metres walked from the source when reaching this door.
  double cumulative_m = 0;
  /// Projected arrival time at this door (absolute seconds).
  double arrival_seconds = 0;
};

class Path {
 public:
  Path() = default;
  Path(double departure_seconds, double total_m, std::vector<PathStep> steps)
      : departure_seconds_(departure_seconds),
        total_m_(total_m),
        steps_(std::move(steps)) {}

  /// Total walking distance source -> target, in metres.
  double length_m() const { return total_m_; }

  double departure_seconds() const { return departure_seconds_; }
  const std::vector<PathStep>& steps() const { return steps_; }

 private:
  double departure_seconds_ = 0;
  double total_m_ = 0;
  std::vector<PathStep> steps_;
};

/// One door reached by a reachability or k-nearest-facility sweep.
struct ReachableDoor {
  DoorId door = kInvalidDoor;
  /// Temporal walking distance from the source, metres.
  double distance_m = 0;
  /// Projected arrival at the door (absolute seconds):
  /// departure + distance_m * kInvWalkSpeedMps, bit-identical to the
  /// arrivals the point-to-point search projects.
  double arrival_seconds = 0;
};

/// Result of one query. `found == false` with an OK status means no
/// temporally valid answer exists. Which payload is populated depends
/// on the request's QueryKind:
///   kPointToPoint    — `path`; found == a valid route exists.
///   kReachability    — `reachable`, sorted by (distance, door);
///                      found == at least one door is in budget.
///   kNearestFacility — `reachable` holds the <= k nearest requested
///                      facility doors, sorted by (distance, door);
///                      found == at least one facility is reachable.
///   kMultiStop       — `legs`, one Path per completed leg in
///                      itinerary order; found == every leg routed.
///                      On the first infeasible leg the sweep stops,
///                      found == false, and `legs` keeps the routed
///                      prefix (its size names the failing leg).
struct QueryResult {
  bool found = false;
  Path path;
  std::vector<ReachableDoor> reachable;
  std::vector<Path> legs;
  SearchStats stats;
};

}  // namespace itspq

#endif  // ITSPQ_QUERY_PATH_H_

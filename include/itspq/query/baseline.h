#ifndef ITSPQ_QUERY_BASELINE_H_
#define ITSPQ_QUERY_BASELINE_H_

// The two non-temporal baselines the paper's experiments compare
// against:
//
//   SnapshotDijkstra (SNAP) — freezes the reduced graph at the query
//   time and runs a plain Dijkstra on it. No arrival-time projection,
//   so its answers can walk through doors that close mid-route (the
//   ITSPQ rule-1 violations quantified in ablation_checkers).
//
//   StaticDijkstra (NTV) — ignores temporal variation entirely; the
//   conventional indoor distance query the D2D ablation compares with.

#include "common/status.h"
#include "common/time.h"
#include "itgraph/checkpoints.h"
#include "itgraph/graph_update.h"
#include "itgraph/itgraph.h"
#include "query/path.h"
#include "venue/geometry.h"

namespace itspq {

/// Snapshot-at-query-time Dijkstra. `graph` must outlive the instance.
class SnapshotDijkstra {
 public:
  explicit SnapshotDijkstra(const ItGraph& graph);

  SnapshotDijkstra(const SnapshotDijkstra&) = delete;
  SnapshotDijkstra& operator=(const SnapshotDijkstra&) = delete;

  /// Shortest path on the reduced graph frozen at `t`. The returned
  /// path carries projected arrival times so VerifyPath can expose
  /// rule-1 violations. Errors when a point is outside the venue.
  StatusOr<QueryResult> Query(const IndoorPoint& ps, const IndoorPoint& pt,
                              Instant t);

 private:
  const ItGraph* graph_;
  CheckpointSet checkpoints_;
  SnapshotCache snapshots_;
};

/// Temporal-variation-oblivious Dijkstra (all doors always passable).
class StaticDijkstra {
 public:
  explicit StaticDijkstra(const ItGraph& graph) : graph_(&graph) {}

  /// Shortest path ignoring every ATI. Errors when a point is outside
  /// the venue.
  StatusOr<QueryResult> Query(const IndoorPoint& ps,
                              const IndoorPoint& pt) const;

 private:
  const ItGraph* graph_;
};

}  // namespace itspq

#endif  // ITSPQ_QUERY_BASELINE_H_

#ifndef ITSPQ_QUERY_RECONSTRUCT_H_
#define ITSPQ_QUERY_RECONSTRUCT_H_

// Internal: turning a settled Dijkstra parent array into a Path, with
// arrival-time projection from the departure time. Shared by the ITSPQ
// engine and the baselines so the two can never diverge on PathStep
// semantics.
//
// Not part of the stable public API — symbols live in itspq::internal.

#include <algorithm>
#include <vector>

#include "common/time.h"
#include "query/path.h"
#include "venue/geometry.h"

namespace itspq {
namespace internal {

/// Walks `parent` back from `last_door` (kInvalidDoor for a direct
/// in-partition answer with no doors) and builds the Path of total
/// length `total_m` departing at `departure_seconds`.
inline Path ReconstructPath(const std::vector<double>& dist,
                            const std::vector<DoorId>& parent,
                            DoorId last_door, double total_m,
                            double departure_seconds) {
  std::vector<PathStep> steps;
  for (DoorId d = last_door; d != kInvalidDoor;
       d = parent[static_cast<size_t>(d)]) {
    PathStep step;
    step.door = d;
    step.cumulative_m = dist[static_cast<size_t>(d)];
    // Multiplying by the reciprocal matches the search's relaxation
    // arithmetic bit for bit (see kInvWalkSpeedMps) — the verifier
    // replays these arrivals against the same ATI boundaries.
    step.arrival_seconds =
        departure_seconds + step.cumulative_m * kInvWalkSpeedMps;
    steps.push_back(step);
  }
  std::reverse(steps.begin(), steps.end());
  return Path(departure_seconds, total_m, std::move(steps));
}

}  // namespace internal
}  // namespace itspq

#endif  // ITSPQ_QUERY_RECONSTRUCT_H_

#ifndef ITSPQ_QUERY_VERIFIER_H_
#define ITSPQ_QUERY_VERIFIER_H_

// ITSPQ rule-1 validation (paper §II-A): a returned path is valid only
// if every door on it is applicable at the moment the walker arrives
// there. The engine guarantees this by construction; the baselines do
// not — ablation_checkers uses VerifyPath to quantify how often the
// SNAP baseline hands out routes that shut mid-walk.

#include "common/status.h"
#include "itgraph/itgraph.h"
#include "query/path.h"

namespace itspq {

/// OK when every door on `path` is applicable at its projected arrival
/// time; kFailedPrecondition naming the first violating door otherwise.
Status VerifyPath(const ItGraph& graph, const Path& path);

}  // namespace itspq

#endif  // ITSPQ_QUERY_VERIFIER_H_

#ifndef ITSPQ_QUERY_ROUTER_H_
#define ITSPQ_QUERY_ROUTER_H_

// The unified, concurrency-ready query API.
//
// A Router is the immutable, shareable side of a query strategy: the
// IT-Graph, its derived CheckpointSet, and (for strategies that need
// one) a thread-safe SnapshotStore, all constructed once. Everything
// mutable during a search — distance/parent/visited arrays, the
// priority queue, per-query snapshot scratch — lives in a QueryContext
// owned by the caller. Route() is const and safe to call concurrently
// from any number of threads, each with its own context:
//
//   auto router = MakeRouter("itg-s", graph);      // or RouterRegistry
//   QueryContext ctx;                               // one per thread
//   StatusOr<QueryResult> r =
//       (*router)->Route({ps, pt, Instant::FromHMS(12)}, &ctx);
//
// RouteBatch answers many requests in one call, optionally fanning out
// over a thread pool — the first scaling surface for the serving path.
//
// Strategies are resolved by name through RouterRegistry (registry.h):
// "itg-s", "itg-a", "itg-a+", "snap", "ntv".

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "itgraph/checkpoints.h"
#include "itgraph/itgraph.h"
#include "itgraph/snapshot_store.h"
#include "query/path.h"
#include "venue/geometry.h"

namespace itspq {

namespace internal {
struct SearchScratch;
}  // namespace internal

/// Which question a QueryRequest asks. Every concrete strategy answers
/// all four, so the families inherit sharding, batching, snapshot
/// budgets, QoS admission, and the wire protocol from the point-to-point
/// machinery for free. The numeric values double as the network edge's
/// wire encoding (net/wire.h) — frozen, append only.
enum class QueryKind : uint8_t {
  /// Shortest temporally valid path source -> target (the paper's
  /// δs2t query). The default; family fields below are ignored.
  kPointToPoint = 0,
  /// Every door reachable from `source` within `budget_seconds` of
  /// walking, each temporally valid at its projected arrival.
  kReachability = 1,
  /// The `k` nearest of the `facilities` doors by temporal walking
  /// distance from `source`, each open at its projected arrival.
  kNearestFacility = 2,
  /// An ordered itinerary source -> waypoints... -> target, each leg
  /// departing at the previous leg's arrival, rule-1 valid end to end.
  kMultiStop = 3,
};

/// One past the last valid wire value; bytes at or above it fail the
/// temporal-frame decode.
inline constexpr uint8_t kNumQueryKinds = 4;

const char* QueryKindName(QueryKind kind);

/// Per-request knobs. Strategies ignore options that don't apply to
/// them (SNAP/NTV have no pruning or snapshot-cache choice).
struct QueryOptions {
  /// Alg. 1 lines 18-19: expand each partition through exactly one
  /// entry door. Off = conventional door-graph Dijkstra.
  bool partition_visited_pruning = true;
  /// ITG/A, ITG/A+: read reduced graphs from the router's shared
  /// per-interval SnapshotStore instead of rebuilding from G0 per
  /// query (extension measured in ablation_snapshot_cache). The
  /// store's budget/policy are construction-time config
  /// (RouterBuildOptions below).
  bool use_snapshot_cache = false;
};

/// Construction-time config for a query strategy — how the shared
/// snapshot cache behaves (byte budget, eviction policy name, delta
/// builds). Threaded through RouterRegistry::Create / MakeRouter and
/// the concrete strategy constructors; strategies without a snapshot
/// store ("ntv") ignore it.
struct RouterBuildOptions {
  SnapshotStoreOptions snapshot_cache;
  /// Non-null only on the update plane's epoch-transition path
  /// (update/update_applier.h): the router adopts the precomputed
  /// checkpoint set and flip index instead of re-deriving them from the
  /// graph, and its snapshot store carries resident snapshots from the
  /// previous version. Borrowed for construction only — never stored.
  const SnapshotWarmStart* warm_start = nullptr;
  /// The VenueId this router answers for. Route() accepts requests
  /// whose venue_id is 0 (unaddressed) or equals the bound id, and
  /// rejects every other id with kInvalidArgument — before this check
  /// a mismatched id was silently answered by the wrong venue whenever
  /// callers bypassed ShardedRouter. VenueCatalog stamps each shard's
  /// id here at AddVenue / AddArtifactShard, so epoch rebuilds and
  /// lazy artifact loads inherit the binding.
  VenueId bound_venue_id = 0;
};

/// One temporal query: where from, where to, departing when, and which
/// question (`kind`) to answer. `departure` must be finite — NaN/±inf
/// is rejected with kInvalidArgument by every strategy (and at the wire
/// decode) instead of silently surfacing as found == false.
struct QueryRequest {
  IndoorPoint source;
  /// kPointToPoint / kMultiStop: the (final) destination. Ignored by
  /// kReachability and kNearestFacility.
  IndoorPoint target;
  Instant departure;
  QueryOptions options;
  /// Which venue shard answers this request. The composite
  /// ShardedRouter (sharded_router.h) dispatches on it; single-venue
  /// routers accept 0 or their bound id and reject the rest
  /// (RouterBuildOptions::bound_venue_id).
  VenueId venue_id = 0;
  /// The query family; family fields below apply per the kind's doc.
  QueryKind kind = QueryKind::kPointToPoint;
  /// kReachability: walking-time budget from departure, seconds.
  /// Must be finite and >= 0.
  double budget_seconds = 0;
  /// kNearestFacility: how many facilities to return. Must be >= 1.
  uint32_t k = 0;
  /// kNearestFacility: candidate facility doors (e.g. every café door
  /// in the venue). Ids must be in range; duplicates collapse.
  std::vector<DoorId> facilities;
  /// kMultiStop: ordered intermediate stops between source and target.
  /// Must be non-empty (otherwise ask kPointToPoint).
  std::vector<IndoorPoint> waypoints;
};

/// Caller-owned mutable scratch for Route(). Reusing one context across
/// sequential queries amortises allocations; concurrent callers must
/// use one context per thread. Contents are implementation scratch —
/// opaque to API consumers.
class QueryContext {
 public:
  QueryContext();
  ~QueryContext();

  QueryContext(QueryContext&&) noexcept;
  QueryContext& operator=(QueryContext&&) noexcept;
  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// Strategy-internal accessor (complete type in src/query/scratch.h).
  internal::SearchScratch& scratch() { return *scratch_; }

 private:
  std::unique_ptr<internal::SearchScratch> scratch_;
};

/// Options for Router::RouteBatch.
struct BatchOptions {
  /// Worker threads. <= 1 answers sequentially on the calling thread;
  /// N > 1 fans the batch out over N threads, each with its own
  /// QueryContext.
  int num_threads = 1;
  /// Scratch reuse for the sequential path: when non-null and
  /// num_threads <= 1, routes with the caller's context instead of a
  /// per-call throwaway — this is how QueryService's workers amortise
  /// allocations across coalesced batches.
  ///
  /// CONTRACT: the threaded fan-out (num_threads > 1 with two or more
  /// requests) IGNORES this field entirely. Pool workers each bring
  /// their own context (contexts are single-threaded by design, so one
  /// shared context cannot serve N workers), and the caller's context
  /// is neither read nor mutated by the batch. Results are identical
  /// either way; only scratch reuse differs. An empty batch returns
  /// immediately and touches no context at all.
  QueryContext* context = nullptr;
};

/// A query strategy bound to one IT-Graph. Immutable after
/// construction; see the file comment for the concurrency contract.
/// The graph must outlive the router.
class Router {
 public:
  virtual ~Router() = default;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Shortest temporally-valid path for `request`. Errors when either
  /// endpoint lies outside the venue; an unreachable target yields
  /// ok() with `found == false`. `context` may be null for one-off
  /// calls (a throwaway context is created); pass one per thread to
  /// reuse scratch.
  virtual StatusOr<QueryResult> Route(const QueryRequest& request,
                                      QueryContext* context) const = 0;

  /// Answers every request, in order. Per-request failures (e.g. an
  /// endpoint outside the venue) land in that slot's Status without
  /// affecting the rest of the batch.
  std::vector<StatusOr<QueryResult>> RouteBatch(
      const std::vector<QueryRequest>& requests,
      const BatchOptions& options = BatchOptions()) const;

  /// Registry name of the strategy ("itg-s", "snap", ...).
  const std::string& name() const { return name_; }

  /// The venue id this router answers for
  /// (RouterBuildOptions::bound_venue_id); requests carrying any other
  /// non-zero venue_id are rejected with kInvalidArgument. Always 0 for
  /// composites (ShardedRouter dispatches instead of validating).
  VenueId bound_venue_id() const { return bound_venue_id_; }

  /// False only for composite routers (ShardedRouter) that span several
  /// graphs; graph() and checkpoints() require has_graph().
  bool has_graph() const { return graph_ != nullptr; }
  const ItGraph& graph() const { return *graph_; }
  /// Checkpoints derived from the graph's ATI boundaries at
  /// construction.
  const CheckpointSet& checkpoints() const { return checkpoints_; }

  /// Point-in-time counters of the router's shared snapshot store —
  /// hits, misses, evictions, full-vs-delta builds, resident bytes.
  /// Default-constructed (empty policy name) for strategies without a
  /// store; composite routers aggregate over their shards. Thread-safe.
  virtual CacheStatsSnapshot CacheStats() const {
    return CacheStatsSnapshot();
  }

  /// Cumulative Graph_Update derivations (full + delta) performed by
  /// this router's shared snapshot store; 0 without one. Thread-safe.
  size_t SnapshotBuildCount() const { return CacheStats().builds(); }

  /// Re-targets the snapshot store's byte budget (0 = unlimited),
  /// evicting immediately when over — under an evicting policy; the
  /// default "keep-all" records the budget but never evicts. No-op for
  /// strategies without a store. This is the hook VenueCatalog uses to
  /// apportion a catalog-wide budget across shards. Thread-safe (const:
  /// the store synchronises internally, and the update plane publishes
  /// routers behind shared_ptr<const VersionedGraph>).
  virtual void SetSnapshotBudget(size_t budget_bytes) const {
    (void)budget_bytes;
  }

  /// Bytes of shared cross-query state owned by the router itself
  /// (checkpoints, snapshot store). The graph and venue are accounted
  /// separately by whoever owns them.
  virtual size_t MemoryUsage() const;

  /// The router's shared snapshot store, or null for strategies without
  /// one ("ntv") and composites. The update plane reads it to carry
  /// resident snapshots (and the live budget) into the next epoch.
  virtual const SnapshotStore* snapshot_store() const { return nullptr; }

 protected:
  /// A non-null `precomputed` checkpoint set is copied instead of
  /// derived via CheckpointSet::FromGraph — the update plane passes the
  /// incrementally maintained set through RouterBuildOptions::warm_start.
  Router(std::string name, const ItGraph& graph,
         const CheckpointSet* precomputed = nullptr);
  /// Composite routers: no single backing graph, empty checkpoints.
  explicit Router(std::string name);

  /// Concrete strategies call this from their constructor with
  /// RouterBuildOptions::bound_venue_id.
  void BindVenueId(VenueId id) { bound_venue_id_ = id; }

 private:
  std::string name_;
  const ItGraph* graph_;
  CheckpointSet checkpoints_;
  VenueId bound_venue_id_ = 0;
};

}  // namespace itspq

#endif  // ITSPQ_QUERY_ROUTER_H_

#ifndef ITSPQ_QUERY_REGISTRY_H_
#define ITSPQ_QUERY_REGISTRY_H_

// Name -> Router factory resolution. The global registry is pre-loaded
// with the five paper strategies ("itg-s", "itg-a", "itg-a+", "snap",
// "ntv"); extensions (sharded venues, remote backends, ...) register
// additional factories at startup and become reachable through the
// same entry point. All methods are thread-safe.

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "itgraph/itgraph.h"
#include "query/router.h"

namespace itspq {

class RouterRegistry {
 public:
  /// Factories receive the construction-time cache config alongside the
  /// graph; strategies without a snapshot store ignore it.
  using Factory = std::function<std::unique_ptr<Router>(
      const ItGraph&, const RouterBuildOptions&)>;

  /// The process-wide registry, with the built-in strategies already
  /// registered.
  static RouterRegistry& Global();

  /// An empty registry (tests, isolated setups).
  RouterRegistry() = default;

  RouterRegistry(const RouterRegistry&) = delete;
  RouterRegistry& operator=(const RouterRegistry&) = delete;

  /// Errors with kInvalidArgument on an empty name or a duplicate.
  Status Register(const std::string& name, Factory factory);

  /// Instantiates the strategy `name` on `graph` under `options`
  /// (snapshot-store budget/policy). Errors with kNotFound for an
  /// unknown name.
  StatusOr<std::unique_ptr<Router>> Create(
      const std::string& name, const ItGraph& graph,
      const RouterBuildOptions& options = RouterBuildOptions()) const;

  bool Contains(const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Factory> factories_;
};

/// Shorthand for RouterRegistry::Global().Create(name, graph, options).
StatusOr<std::unique_ptr<Router>> MakeRouter(
    const std::string& name, const ItGraph& graph,
    const RouterBuildOptions& options = RouterBuildOptions());

}  // namespace itspq

#endif  // ITSPQ_QUERY_REGISTRY_H_

#ifndef ITSPQ_QUERY_ITSPQ_H_
#define ITSPQ_QUERY_ITSPQ_H_

// The ITSPQ engine (paper Alg. 1): temporal-variation-aware shortest
// path on the IT-Graph. Expansion is a door-graph Dijkstra with
// arrival-time projection — a door is usable only if it is applicable
// when the walker reaches it — and the partition-visited pruning of
// Alg. 1 lines 18-19 (each partition expanded through one entry door).
//
// The TV_Check strategy is selectable (paper §II-D):
//   kSynchronous        ITG/S — every relaxation checks the target
//                       door's ATI at its projected arrival time.
//   kAsynchronous       ITG/A — door applicability is read from the
//                       reduced graph of the checkpoint interval the
//                       search frontier is in; Graph_Update re-derives
//                       it when the frontier crosses a checkpoint.
//   kAsynchronousStrict ITG/A+ — as ITG/A, but the reduced graph is
//                       chosen per relaxation from the *arriving*
//                       door's interval, closing ITG/A's
//                       frontier-vs-arrival gap (agrees with ITG/S).

#include "common/status.h"
#include "common/time.h"
#include "itgraph/checkpoints.h"
#include "itgraph/graph_update.h"
#include "itgraph/itgraph.h"
#include "query/path.h"
#include "venue/geometry.h"

namespace itspq {

enum class TvMode {
  kSynchronous,
  kAsynchronous,
  kAsynchronousStrict,
};

struct ItspqOptions {
  TvMode mode = TvMode::kSynchronous;
  /// Alg. 1 lines 18-19: expand each partition through exactly one
  /// entry door. Off = conventional door-graph Dijkstra.
  bool partition_visited_pruning = true;
  /// Memoise one reduced graph per checkpoint interval across queries
  /// instead of rebuilding from G0 on every Graph_Update (extension
  /// measured in ablation_snapshot_cache).
  bool use_snapshot_cache = false;
};

class ItspqEngine {
 public:
  /// `graph` must outlive the engine. Checkpoints are derived from the
  /// graph's ATI boundaries once, here.
  explicit ItspqEngine(const ItGraph& graph);

  // The snapshot cache points into this engine's own checkpoint set, so
  // the engine is pinned in place.
  ItspqEngine(const ItspqEngine&) = delete;
  ItspqEngine& operator=(const ItspqEngine&) = delete;

  /// Shortest temporally-valid path from `ps` to `pt` departing at `t`.
  /// Errors when either point lies outside the venue; an unreachable
  /// target yields ok() with `found == false`.
  StatusOr<QueryResult> Query(const IndoorPoint& ps, const IndoorPoint& pt,
                              Instant t, const ItspqOptions& options);

  const CheckpointSet& checkpoints() const { return checkpoints_; }
  const ItGraph& graph() const { return *graph_; }

 private:
  const ItGraph* graph_;
  CheckpointSet checkpoints_;
  /// Cross-query reduced-graph store used when
  /// ItspqOptions::use_snapshot_cache is set.
  SnapshotCache snapshot_cache_;
};

}  // namespace itspq

#endif  // ITSPQ_QUERY_ITSPQ_H_

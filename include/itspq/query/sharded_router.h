#ifndef ITSPQ_QUERY_SHARDED_ROUTER_H_
#define ITSPQ_QUERY_SHARDED_ROUTER_H_

// The composite Router over a VenueCatalog. Route() dispatches each
// request to the shard named by QueryRequest::venue_id and bumps that
// shard's traffic counters; the inherited RouteBatch fans a mixed-venue
// batch out over the opt-in thread pool, each worker's QueryContext
// hopping shards as the work-stealing order dictates (per-query scratch
// is re-sized per graph, so context hopping is safe — locked in by
// tests/sharding_test.cc).
//
// ShardedRouter is itself a Router, so the serving frontend can speak
// one interface whether it fronts one venue or a whole fleet. It is a
// composite: has_graph() is false, and per-request failures (unknown
// venue_id, endpoint outside the shard's venue) come back as that
// request's Status, never as process-wide state.

#include <cstddef>

#include "common/status.h"
#include "query/router.h"
#include "query/venue_catalog.h"

namespace itspq {

class ShardedRouter : public Router {
 public:
  /// `catalog` must outlive the router and must not gain venues while
  /// queries are in flight.
  explicit ShardedRouter(const VenueCatalog& catalog);

  /// Routes on the shard `request.venue_id` names; kNotFound when the
  /// catalog has no such venue.
  StatusOr<QueryResult> Route(const QueryRequest& request,
                              QueryContext* context) const override;

  const VenueCatalog& catalog() const { return *catalog_; }

  /// Aggregates over all shards (policy name is "mixed" when shards
  /// run different eviction policies).
  CacheStatsSnapshot CacheStats() const override;
  size_t MemoryUsage() const override;

 private:
  const VenueCatalog* catalog_;
};

}  // namespace itspq

#endif  // ITSPQ_QUERY_SHARDED_ROUTER_H_

#ifndef ITSPQ_QUERY_STRATEGIES_H_
#define ITSPQ_QUERY_STRATEGIES_H_

// The five Router strategies the paper's experiments compare
// (§II-D, §III). All share the Router concurrency contract: the
// shared side is immutable (the SnapshotStore members synchronise
// internally), every mutable search structure lives in the caller's
// QueryContext.
//
//   ItgRouter ("itg-s" | "itg-a" | "itg-a+") — the ITSPQ engine
//   (paper Alg. 1): door-graph Dijkstra with arrival-time projection
//   and partition-visited pruning, with a selectable TV_Check:
//     kSynchronous        ITG/S — every relaxation checks the target
//                         door's ATI at its projected arrival time.
//     kAsynchronous       ITG/A — door applicability is read from the
//                         reduced graph of the checkpoint interval the
//                         search frontier is in; Graph_Update
//                         re-derives it when the frontier crosses a
//                         checkpoint.
//     kAsynchronousStrict ITG/A+ — as ITG/A, but the reduced graph is
//                         chosen per relaxation from the *arriving*
//                         door's interval, closing ITG/A's
//                         frontier-vs-arrival gap (agrees with ITG/S).
//
//   SnapshotRouter ("snap") — freezes the reduced graph at the query
//   time and runs a plain Dijkstra on it. No arrival-time projection,
//   so its answers can walk through doors that close mid-route (the
//   rule-1 violations quantified in ablation_checkers).
//
//   StaticRouter ("ntv") — ignores temporal variation entirely; the
//   conventional indoor distance query the D2D ablation compares with.
//
// Prefer resolving these through RouterRegistry (registry.h); the
// concrete classes are public so strategies can be constructed
// directly when the name indirection isn't wanted.

#include "common/status.h"
#include "itgraph/graph_update.h"
#include "itgraph/itgraph.h"
#include "itgraph/snapshot_store.h"
#include "query/path.h"
#include "query/router.h"

namespace itspq {

/// TV_Check strategy selector for ItgRouter (paper §II-D).
enum class TvMode {
  kSynchronous,
  kAsynchronous,
  kAsynchronousStrict,
};

/// The registry name a TvMode resolves to ("itg-s", "itg-a", "itg-a+").
const char* TvModeName(TvMode mode);

/// The ITSPQ engine (paper Alg. 1) under one of the three TV_Check
/// strategies.
class ItgRouter : public Router {
 public:
  ItgRouter(const ItGraph& graph, TvMode mode,
            const RouterBuildOptions& options = RouterBuildOptions());

  StatusOr<QueryResult> Route(const QueryRequest& request,
                              QueryContext* context) const override;

  TvMode mode() const { return mode_; }

  CacheStatsSnapshot CacheStats() const override;
  void SetSnapshotBudget(size_t budget_bytes) const override;
  size_t MemoryUsage() const override;
  const SnapshotStore* snapshot_store() const override {
    return &snapshot_store_;
  }

 private:
  /// kReachability / kNearestFacility: one temporal Dijkstra sweep from
  /// the source over the whole door graph, door usability per mode_.
  /// The sweeps ignore QueryOptions::partition_visited_pruning — Alg.
  /// 1's pruning expands each partition through one entry door, which
  /// is sound for a single target but hides every other door of the
  /// partition from an enumeration, and makes per-door distances
  /// settle-order dependent.
  StatusOr<QueryResult> RouteSweep(const QueryRequest& request,
                                   QueryContext* context) const;

  TvMode mode_;
  /// Shared cross-query reduced-graph store, consulted when a request
  /// sets QueryOptions::use_snapshot_cache. Thread-safe.
  SnapshotStore snapshot_store_;
};

/// Snapshot-at-query-time Dijkstra (SNAP baseline). The returned paths
/// carry projected arrival times so VerifyPath can expose rule-1
/// violations.
class SnapshotRouter : public Router {
 public:
  explicit SnapshotRouter(
      const ItGraph& graph,
      const RouterBuildOptions& options = RouterBuildOptions());

  StatusOr<QueryResult> Route(const QueryRequest& request,
                              QueryContext* context) const override;

  CacheStatsSnapshot CacheStats() const override;
  void SetSnapshotBudget(size_t budget_bytes) const override;
  size_t MemoryUsage() const override;
  const SnapshotStore* snapshot_store() const override {
    return &snapshot_store_;
  }

 private:
  /// The sweep families over the departure-frozen snapshot (so, like
  /// SNAP's point answers, they can miss doors that open mid-walk and
  /// include doors that close — the baseline the ablation quantifies).
  StatusOr<QueryResult> RouteSweep(const QueryRequest& request,
                                   QueryContext* context) const;

  SnapshotStore snapshot_store_;
};

/// Temporal-variation-oblivious Dijkstra (NTV baseline): all doors
/// always passable.
class StaticRouter : public Router {
 public:
  explicit StaticRouter(
      const ItGraph& graph,
      const RouterBuildOptions& options = RouterBuildOptions());

  StatusOr<QueryResult> Route(const QueryRequest& request,
                              QueryContext* context) const override;

 private:
  StatusOr<QueryResult> RouteSweep(const QueryRequest& request,
                                   QueryContext* context) const;
};

}  // namespace itspq

#endif  // ITSPQ_QUERY_STRATEGIES_H_

#ifndef ITSPQ_UPDATE_UPDATE_APPLIER_H_
#define ITSPQ_UPDATE_UPDATE_APPLIER_H_

// The incremental epoch transition (the tentpole of the update plane).
//
// Given a shard's current VersionedGraph and one AtiUpdate,
// UpdateApplier::Apply derives the NEXT version without rebuilding the
// world from scratch:
//
//   venue        — Venue::Builder::FromVenue copy; geometry (distance
//                  matrices, point-location grid) carried, only the
//                  door's ATI row replaced.
//   graph        — ItGraph::BuildFrom: every compiled AtiSet adopted
//                  verbatim except the changed door's.
//   checkpoints  — the boundary ledger is patched: the changed door's
//                  old boundary contributions removed (dropping times
//                  no other door contributes), its new ones inserted.
//   flip index   — BoundaryFlipIndex::FromLists over the patched
//                  ledger; no (interval x door) re-probe.
//   snapshots    — a carry plan maps each new interval to the old
//                  interval spanning the identical time range; resident
//                  snapshots carry their shared_ptr slots across unless
//                  the changed door's applicability differs there
//                  (SnapshotStore warm start / InvalidateIntervals).
//
// Apply never touches `current` beyond const reads of its store (one
// mutex hold to lift resident slots): published versions are immutable.
// Cost is O(|old ATI| + |new ATI| + |T| + carry work), independent of
// door count — the paper's Graph_Update economics extended to writes.

#include <memory>

#include "common/status.h"
#include "update/ati_update.h"
#include "update/versioned_graph.h"

namespace itspq {

class UpdateApplier {
 public:
  /// Derives the next version of `current` under `update`. Errors:
  ///   kNotFound          — update.door_id is not a door of the venue.
  ///   kInvalidArgument   — the replacement intervals fail AtiSet
  ///                        normalisation (e.g. zero-length interval).
  /// On error `current` is untouched and nothing is published. On
  /// success the returned version has epoch() == current.epoch() + 1
  /// and `outcome` (when non-null) holds the transition receipt.
  static StatusOr<std::shared_ptr<const VersionedGraph>> Apply(
      const VersionedGraph& current, const AtiUpdate& update,
      UpdateOutcome* outcome = nullptr);
};

}  // namespace itspq

#endif  // ITSPQ_UPDATE_UPDATE_APPLIER_H_

#ifndef ITSPQ_UPDATE_ATI_UPDATE_H_
#define ITSPQ_UPDATE_ATI_UPDATE_H_

// The wire format of the live-world write path: one ATI mutation.
//
// An AtiUpdate replaces one door's applicable time intervals wholesale
// (shops opening late, incident closures, seasonal hours). Replacement
// rather than patching keeps the operation idempotent and the
// normalisation story identical to construction: the intervals pass
// through AtiSet::Create exactly as a venue generator's would, so
// midnight wraps, overlaps, and full-day covers are legal inputs.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/time.h"
#include "venue/geometry.h"

namespace itspq {

/// One online ATI mutation: replace `door_id`'s applicable time
/// intervals in venue `venue_id`. An empty `intervals` means the door
/// is always open (the AtiSet convention).
struct AtiUpdate {
  VenueId venue_id = 0;
  DoorId door_id = kInvalidDoor;
  std::vector<TimeInterval> intervals;
};

/// What one successful ApplyAtiUpdate did — the receipt surfaced
/// through VenueCatalog::ApplyAtiUpdate and folded into ShardStats.
struct UpdateOutcome {
  /// The epoch the shard now serves (previous epoch + 1).
  uint64_t epoch = 0;
  /// Checkpoint churn: boundaries only the old ATI contributed
  /// (removed) and ones only the new ATI contributes (added).
  size_t checkpoints_removed = 0;
  size_t checkpoints_added = 0;
  /// Constant-graph interval counts before and after.
  size_t intervals_before = 0;
  size_t intervals_after = 0;
  /// Snapshot economics of the epoch transition: resident snapshots
  /// whose shared_ptr slots moved verbatim, ones re-issued under a
  /// shifted interval index, and spans whose resident snapshot was
  /// dropped because the door's applicability there changed.
  size_t snapshots_carried = 0;
  size_t snapshots_rebased = 0;
  size_t intervals_invalidated = 0;
};

}  // namespace itspq

#endif  // ITSPQ_UPDATE_ATI_UPDATE_H_

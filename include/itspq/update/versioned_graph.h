#ifndef ITSPQ_UPDATE_VERSIONED_GRAPH_H_
#define ITSPQ_UPDATE_VERSIONED_GRAPH_H_

// One immutable epoch of a venue's serving state.
//
// A VersionedGraph bundles everything a shard needs to answer queries —
// the venue, its compiled ItGraph, the checkpoint set, the per-boundary
// flip index, and the strategy Router (whose SnapshotStore memoises
// reduced graphs) — under a single epoch number. It is immutable after
// Build: the update plane (update_applier.h) never mutates a published
// version, it derives the NEXT version incrementally and VenueCatalog
// swaps the shard's shared_ptr<const VersionedGraph> RCU-style. Readers
// that pinned the old epoch finish on it bit-identically; the old
// version is destroyed when the last pin drops.
//
// Internally the checkpoint structure is kept as a "boundary ledger":
// per checkpoint time, the sorted list of doors contributing that time
// as an interior ATI boundary. For normalised AtiSets every interior
// boundary is a genuine applicability flip, so the ledger IS the flip
// index (CSR-ified via BoundaryFlipIndex::FromLists) — and a
// single-door update edits only that door's ledger entries instead of
// re-probing every (interval, door) pair.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "itgraph/checkpoints.h"
#include "itgraph/itgraph.h"
#include "query/registry.h"
#include "query/router.h"
#include "venue/venue.h"

namespace itspq {

class UpdateApplier;

class VersionedGraph {
 public:
  /// Builds epoch 0 for `venue` under `strategy` (resolved through
  /// `registry`, the global one when null). The ledger and flip index
  /// are derived from the compiled graph; the router adopts them via a
  /// warm start so nothing is computed twice. `options.warm_start` is
  /// ignored (the version builds its own).
  static StatusOr<std::shared_ptr<const VersionedGraph>> Build(
      Venue venue, const std::string& strategy,
      const RouterBuildOptions& options = RouterBuildOptions(),
      const RouterRegistry* registry = nullptr);

  VersionedGraph(const VersionedGraph&) = delete;
  VersionedGraph& operator=(const VersionedGraph&) = delete;

  uint64_t epoch() const { return epoch_; }
  const std::string& strategy() const { return strategy_; }
  const Venue& venue() const { return *venue_; }
  const ItGraph& graph() const { return *graph_; }
  const Router& router() const { return *router_; }
  const CheckpointSet& checkpoints() const { return router_->checkpoints(); }
  const BoundaryFlipIndex& flip_index() const { return flips_; }

  /// Venue + graph + router shared state + flip index, bytes.
  size_t MemoryUsage() const;

 private:
  friend class UpdateApplier;
  /// The artifact loader (artifact/artifact.h) assembles epoch 0 from a
  /// decoded file: it fills the ledger directly and calls FinishBuild,
  /// skipping the graph compilation Build() performs.
  friend class ArtifactCodec;

  VersionedGraph() = default;

  /// Compiles the ledger + flip index from `graph_` (epoch 0 only; the
  /// update path patches the previous version's ledger instead) and
  /// builds router_ with a warm start. Both ctor paths funnel here.
  Status FinishBuild(const SnapshotStore* carry_from,
                     std::vector<ptrdiff_t> carry_plan,
                     std::vector<size_t> invalidate);

  uint64_t epoch_ = 0;
  std::string strategy_;
  /// Router construction config, retained so the next epoch rebuilds
  /// under the same policy/budget (the applier refreshes budget_bytes
  /// from the live store first). warm_start is always null here.
  RouterBuildOptions options_;
  const RouterRegistry* registry_ = nullptr;

  // Destruction order (reverse of declaration) matters: graph_ points
  // into venue_, router_ into graph_ and checkpoints.
  std::unique_ptr<Venue> venue_;
  std::unique_ptr<ItGraph> graph_;
  /// The boundary ledger: boundary_times_[i] is contributed by exactly
  /// the doors in boundary_doors_[i] (sorted ascending). times are the
  /// checkpoint set; doors are the flip lists.
  std::vector<double> boundary_times_;
  std::vector<std::vector<DoorId>> boundary_doors_;
  CheckpointSet checkpoints_;
  BoundaryFlipIndex flips_;
  std::unique_ptr<Router> router_;
};

}  // namespace itspq

#endif  // ITSPQ_UPDATE_VERSIONED_GRAPH_H_

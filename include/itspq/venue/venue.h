#ifndef ITSPQ_VENUE_VENUE_H_
#define ITSPQ_VENUE_VENUE_H_

// The indoor space model (paper §II): a multi-floor set of partitions
// (axis-aligned rooms/corridors) connected by doors. Each door lies on
// the boundary of exactly two partitions; vertical doors (staircases)
// connect partitions on adjacent floors. Temporal variation is attached
// per door as a set of applicable time intervals (empty = always open);
// the IT-Graph layer compiles those into AtiSets.
//
// Venues are immutable once built. Construct through Venue::Builder:
//
//   Venue::Builder b;
//   PartitionId room = b.AddPartition({0, 0, 10, 10}, /*floor=*/0);
//   PartitionId hall = b.AddPartition({0, 10, 10, 20}, 0);
//   b.AddDoor({5, 10}, 0, room, hall);
//   StatusOr<Venue> venue = std::move(b).Build();

#include <array>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "venue/distance_matrix.h"
#include "venue/geometry.h"

namespace itspq {

struct Partition {
  Rect rect;
  int floor = 0;
};

struct Door {
  Point2d pos;
  /// Floor the door is drawn on. A vertical (staircase) door connecting
  /// floors f and f+1 records the lower floor.
  int floor = 0;
  /// The two partitions the door connects.
  std::array<PartitionId, 2> partitions = {kInvalidPartition,
                                           kInvalidPartition};
  /// Applicable time intervals; empty means always open.
  std::vector<TimeInterval> ati_intervals;
};

class Venue {
 public:
  class Builder;

  Venue(Venue&&) = default;
  Venue& operator=(Venue&&) = default;
  Venue(const Venue&) = default;
  Venue& operator=(const Venue&) = default;

  size_t NumPartitions() const { return partitions_.size(); }
  size_t NumDoors() const { return doors_.size(); }

  const Partition& partition(PartitionId p) const {
    return partitions_[static_cast<size_t>(p)];
  }
  const Door& door(DoorId d) const { return doors_[static_cast<size_t>(d)]; }

  /// Doors on the boundary of partition `p`.
  const std::vector<DoorId>& DoorsOf(PartitionId p) const {
    return doors_of_[static_cast<size_t>(p)];
  }

  /// Intra-partition door-to-door distances for partition `p`.
  const DistanceMatrix& distance_matrix(PartitionId p) const {
    return distance_matrices_[static_cast<size_t>(p)];
  }

  /// All partitions containing `point` (several when the point lies on a
  /// shared boundary; empty when it is outside every partition).
  std::vector<PartitionId> LocateAll(const IndoorPoint& point) const;

  size_t MemoryUsage() const;

 private:
  friend class Builder;
  /// The artifact serializer (artifact/artifact.h) reads and re-adopts
  /// the private representation verbatim, skipping geometry recompute.
  friend class ArtifactCodec;
  Venue() = default;

  // Uniform per-floor grid accelerating LocateAll.
  struct FloorIndex {
    double origin_x = 0, origin_y = 0;
    double cell = 1;
    int cols = 0, rows = 0;
    std::vector<std::vector<PartitionId>> cells;
  };

  void BuildLocationIndex();

  std::vector<Partition> partitions_;
  std::vector<Door> doors_;
  std::vector<std::vector<DoorId>> doors_of_;
  std::vector<DistanceMatrix> distance_matrices_;
  int min_floor_ = 0;
  std::vector<FloorIndex> floor_index_;  // indexed by floor - min_floor_
};

/// Accumulates partitions and doors, then validates and freezes them
/// into a Venue (computing door lists, distance matrices, and the
/// point-location index).
class Venue::Builder {
 public:
  PartitionId AddPartition(const Rect& rect, int floor);

  /// Adds a door at `pos` on `floor` connecting partitions `a` and `b`.
  /// For a vertical door, `floor` is the lower of the two floors.
  DoorId AddDoor(const Point2d& pos, int floor, PartitionId a, PartitionId b);

  /// Replaces door `d`'s applicable time intervals (doors start always
  /// open). Venues are immutable once built — ATIs can only be set
  /// here, so an ItGraph can never silently desynchronise from its
  /// venue. Errors on an unknown door.
  Status SetDoorAti(DoorId d, std::vector<TimeInterval> intervals);

  /// Seeds the builder with a copy of an existing venue's partitions,
  /// doors, and ATIs — how the temporal-variation generator re-derives
  /// a varied venue from a frozen one. As long as no partition or door
  /// is added afterwards, Build() carries over the source venue's
  /// distance matrices and point-location index instead of recomputing
  /// them (ATI edits via SetDoorAti don't change geometry).
  static Builder FromVenue(const Venue& venue);

  /// Validates the accumulated venue. Errors: a door referencing an
  /// unknown partition or connecting a partition to itself, or a
  /// degenerate partition rectangle.
  StatusOr<Venue> Build() &&;

 private:
  /// Derived structures copied from the source venue by FromVenue and
  /// dropped on any geometry mutation; lets Build() skip recomputing
  /// distance matrices and the point-location index.
  struct CarriedGeometry {
    std::vector<std::vector<DoorId>> doors_of;
    std::vector<DistanceMatrix> distance_matrices;
    int min_floor = 0;
    std::vector<FloorIndex> floor_index;
  };

  std::vector<Partition> partitions_;
  std::vector<Door> doors_;
  std::optional<CarriedGeometry> carried_;
};

}  // namespace itspq

#endif  // ITSPQ_VENUE_VENUE_H_

#ifndef ITSPQ_VENUE_GEOMETRY_H_
#define ITSPQ_VENUE_GEOMETRY_H_

// Planar primitives for the indoor space model. Partitions are
// axis-aligned rectangles on a floor; doors are points on partition
// boundaries. Distances are metres.

#include <cmath>
#include <cstdint>

namespace itspq {

/// Index of a partition within a Venue.
using PartitionId = int32_t;
/// Index of a door within a Venue (and node id within an ItGraph).
using DoorId = int32_t;
/// Index of a venue within a VenueCatalog (the shard key of the
/// multi-venue serving layer; see query/venue_catalog.h).
using VenueId = int32_t;

inline constexpr PartitionId kInvalidPartition = -1;
inline constexpr DoorId kInvalidDoor = -1;

struct Point2d {
  double x = 0;
  double y = 0;
};

inline double EuclideanDistance(const Point2d& a, const Point2d& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// A point somewhere in the venue: planar position + floor number.
struct IndoorPoint {
  Point2d p;
  int floor = 0;
};

/// Axis-aligned rectangle, closed on all edges.
struct Rect {
  double min_x = 0;
  double min_y = 0;
  double max_x = 0;
  double max_y = 0;

  bool Contains(const Point2d& pt) const {
    return pt.x >= min_x && pt.x <= max_x && pt.y >= min_y && pt.y <= max_y;
  }

  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }

  Point2d Center() const {
    return Point2d{(min_x + max_x) * 0.5, (min_y + max_y) * 0.5};
  }
};

}  // namespace itspq

#endif  // ITSPQ_VENUE_GEOMETRY_H_

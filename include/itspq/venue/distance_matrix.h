#ifndef ITSPQ_VENUE_DISTANCE_MATRIX_H_
#define ITSPQ_VENUE_DISTANCE_MATRIX_H_

// Per-partition intra-partition door-to-door distances.
//
// Partitions are convex (axis-aligned rectangles), so the intra-partition
// distance between two of its doors is the straight line between them.
// The matrix is materialised once at venue build time; `DistanceUnchecked`
// is the hot-path lookup used by every search (no bounds or membership
// checks — both doors must belong to the partition).

#include <cstddef>
#include <vector>

#include "venue/geometry.h"

namespace itspq {

class DistanceMatrix {
 public:
  DistanceMatrix() = default;

  /// Builds the all-pairs matrix for `doors` at the given positions
  /// (parallel arrays). Door ids are mapped to local indices through a
  /// dense lookup table spanning [min_id, max_id] of the partition's
  /// doors, so lookups are two array reads.
  DistanceMatrix(const std::vector<DoorId>& doors,
                 const std::vector<Point2d>& positions);

  /// Straight-line distance between two doors of this partition.
  /// Precondition: both doors belong to the partition.
  double DistanceUnchecked(DoorId a, DoorId b) const {
    const size_t ia = static_cast<size_t>(local_index_[a - base_id_]);
    const size_t ib = static_cast<size_t>(local_index_[b - base_id_]);
    return matrix_[ia * num_doors_ + ib];
  }

  size_t NumDoors() const { return num_doors_; }
  size_t MemoryUsage() const {
    return matrix_.capacity() * sizeof(double) +
           local_index_.capacity() * sizeof(int32_t);
  }

 private:
  friend class ArtifactCodec;  // serializes the packed representation

  size_t num_doors_ = 0;
  DoorId base_id_ = 0;
  std::vector<int32_t> local_index_;  // door id - base_id_ -> local index
  std::vector<double> matrix_;        // num_doors_ x num_doors_, row-major
};

}  // namespace itspq

#endif  // ITSPQ_VENUE_DISTANCE_MATRIX_H_

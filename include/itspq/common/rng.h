#ifndef ITSPQ_COMMON_RNG_H_
#define ITSPQ_COMMON_RNG_H_

// Deterministic pseudo-random source used by the generators and benches.
//
// splitmix64 core: tiny state, fast, and — unlike std::mt19937 seeded via
// seed_seq — bit-identical across standard libraries, which keeps the
// synthetic mall reproducible everywhere.

#include <cstdint>

namespace itspq {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    const double unit =
        static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
    return lo + unit * (hi - lo);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform index in [0, n).
  size_t UniformIndex(size_t n) { return static_cast<size_t>(Next() % n); }

 private:
  uint64_t state_;
};

}  // namespace itspq

#endif  // ITSPQ_COMMON_RNG_H_

#ifndef ITSPQ_COMMON_STATUS_H_
#define ITSPQ_COMMON_STATUS_H_

// Lightweight error propagation for every fallible call in the library.
//
// `Status` is a (code, message) pair; `StatusOr<T>` carries either a value
// or a non-OK Status. Both mirror the absl types the codebase idiom is
// based on, trimmed down to what the ITSPQ layers actually use:
//
//   auto graph = ItGraph::Build(venue);
//   if (!graph.ok()) return graph.status();
//   graph->NumDoors();

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace itspq {

// The numeric values double as the network edge's wire encoding (see
// net/wire.h and the README recoverability table), so they are frozen:
// append new codes at the end, never renumber or reuse a value.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kResourceExhausted = 4,
  kDeadlineExceeded = 5,
  kInternal = 6,
};

/// One past the last valid wire value; bytes at or above it fail
/// StatusCodeFromWire.
inline constexpr uint8_t kNumWireStatusCodes = 7;

/// The frozen one-byte wire encoding of a StatusCode.
inline uint8_t StatusCodeToWire(StatusCode code) {
  return static_cast<uint8_t>(code);
}

/// Decodes a wire byte back into a StatusCode. False (and `*code`
/// untouched) for bytes outside the frozen table — a hostile or
/// version-skewed peer, surfaced as a decode error rather than UB on a
/// switch over a garbage enum.
inline bool StatusCodeFromWire(uint8_t wire, StatusCode* code) {
  if (wire >= kNumWireStatusCodes) return false;
  *code = static_cast<StatusCode>(wire);
  return true;
}

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
inline Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

// Value-or-error. The value is accessible through `*` / `->` only when
// `ok()`; accessing it otherwise is a programming error (asserted in
// debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(const T& value) : rep_(value) {}        // NOLINT
  StatusOr(T&& value) : rep_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    // An OK status carries no value; constructing a StatusOr from one
    // would launder an error-free-but-valueless state into callers.
    assert(!std::get<Status>(rep_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  T& operator*() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& operator*() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& operator*() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T* operator->() {
    assert(ok());
    return &std::get<T>(rep_);
  }
  const T* operator->() const {
    assert(ok());
    return &std::get<T>(rep_);
  }

  const T& value() const& { return **this; }
  T&& value() && { return *std::move(*this); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace itspq

#endif  // ITSPQ_COMMON_STATUS_H_

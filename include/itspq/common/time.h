#ifndef ITSPQ_COMMON_TIME_H_
#define ITSPQ_COMMON_TIME_H_

// Time-of-day model shared by every layer.
//
// The paper's temporal variations repeat daily, so all times are seconds
// since midnight (double). An `Instant` is a thin wrapper used at API
// boundaries; raw doubles are used in hot loops. Absolute times produced
// by arrival projection may exceed one day (a walk started at 23:55 ends
// tomorrow); `WrapTimeOfDay` folds them back into [0, kSecondsPerDay).

#include <cmath>

namespace itspq {

inline constexpr double kSecondsPerDay = 86400.0;

/// Pedestrian walking speed used for arrival-time projection (m/s).
inline constexpr double kWalkSpeedMps = 1.2;

/// Reciprocal used for the actual projection: `dep + dist *
/// kInvWalkSpeedMps`. Every component — search relaxation, path
/// reconstruction, the verifier's replay — must project with this same
/// multiplication so they all compute bit-identical arrivals; mixing a
/// division in one place can disagree in the last ulp and flip an ATI
/// membership test right at an interval boundary.
inline constexpr double kInvWalkSpeedMps = 1.0 / kWalkSpeedMps;

/// Folds an absolute time (seconds, possibly negative or > 1 day) into
/// a time of day in [0, kSecondsPerDay).
inline double WrapTimeOfDay(double seconds) {
  double t = std::fmod(seconds, kSecondsPerDay);
  if (t < 0) t += kSecondsPerDay;
  return t;
}

/// A point in time, in seconds since midnight.
class Instant {
 public:
  Instant() : seconds_(0) {}
  explicit Instant(double seconds) : seconds_(seconds) {}

  static Instant FromHMS(int hour, int minute = 0, int second = 0) {
    return Instant(hour * 3600.0 + minute * 60.0 + second);
  }

  double seconds() const { return seconds_; }
  double TimeOfDay() const { return WrapTimeOfDay(seconds_); }

  friend bool operator==(Instant a, Instant b) {
    return a.seconds_ == b.seconds_;
  }
  friend bool operator<(Instant a, Instant b) {
    return a.seconds_ < b.seconds_;
  }

 private:
  double seconds_;
};

/// A half-open daily time interval [start, end), in seconds since
/// midnight. `end < start` denotes an interval wrapping past midnight
/// (e.g. 22:00 -> 02:00); AtiSet::Create normalises such intervals.
struct TimeInterval {
  double start = 0;
  double end = 0;
};

/// Builds a [start, end) interval from wall-clock hours/minutes.
inline TimeInterval MakeInterval(int start_hour, int start_minute,
                                 int end_hour, int end_minute) {
  return TimeInterval{start_hour * 3600.0 + start_minute * 60.0,
                      end_hour * 3600.0 + end_minute * 60.0};
}

}  // namespace itspq

#endif  // ITSPQ_COMMON_TIME_H_

#ifndef ITSPQ_COMMON_STATS_H_
#define ITSPQ_COMMON_STATS_H_

// Wall-clock timing, the per-query search counters reported by the
// engines (and consumed by the figure benches), and the fixed-bucket
// latency histogram shared by the serving frontend and the lazy
// catalog's cold-load accounting.

#include <chrono>
#include <cstddef>

namespace itspq {

/// Starts on construction; Elapsed* may be called repeatedly.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Counters for one shortest-path query (DESIGN in README.md: memory is
/// the peak of search state — heap + touched labels — plus, for the
/// asynchronous checkers, the resident reduced graph).
struct SearchStats {
  double search_micros = 0;
  size_t peak_memory_bytes = 0;
  size_t doors_popped = 0;
  /// Number of Graph_Update reduced-graph (re)builds this query.
  size_t graph_updates = 0;
};

/// Fixed-bucket latency histogram: bucket i counts samples in
/// [2^i, 2^(i+1)) microseconds (bucket 0 absorbs sub-microsecond
/// samples), so 40 buckets span sub-µs to 2^40 µs ≈ 12.7 days with
/// zero allocation on the record path.
///
/// The last bucket is an overflow bucket: samples at or above 2^39 µs
/// (including crazy out-of-range ones) clamp into it, and a quantile
/// that lands there reports the 2^40 µs bucket edge — a saturation
/// marker, not a measurement. NaN samples (a network RTT computed from
/// a poisoned clock, say) are dropped on the record path and tallied in
/// `nan_dropped` instead of silently polluting bucket 0.
struct LatencyHistogram {
  static constexpr size_t kNumBuckets = 40;
  size_t counts[kNumBuckets] = {};
  size_t total = 0;
  /// NaN samples rejected by Record (not part of `total`).
  size_t nan_dropped = 0;

  void Record(double micros);
  void Accumulate(const LatencyHistogram& other);

  /// Upper-bound estimate (µs) of the q-quantile, q in [0, 1]: the
  /// upper edge of the first bucket whose cumulative count reaches
  /// q * total. 0 when the histogram is empty; the 2^40 overflow edge
  /// when the quantile saturates the last bucket (see above).
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P99() const { return Quantile(0.99); }
};

}  // namespace itspq

#endif  // ITSPQ_COMMON_STATS_H_

#ifndef ITSPQ_COMMON_STATS_H_
#define ITSPQ_COMMON_STATS_H_

// Wall-clock timing and the per-query search counters reported by the
// engines (and consumed by the figure benches).

#include <chrono>
#include <cstddef>

namespace itspq {

/// Starts on construction; Elapsed* may be called repeatedly.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Counters for one shortest-path query (DESIGN in README.md: memory is
/// the peak of search state — heap + touched labels — plus, for the
/// asynchronous checkers, the resident reduced graph).
struct SearchStats {
  double search_micros = 0;
  size_t peak_memory_bytes = 0;
  size_t doors_popped = 0;
  /// Number of Graph_Update reduced-graph (re)builds this query.
  size_t graph_updates = 0;
};

}  // namespace itspq

#endif  // ITSPQ_COMMON_STATS_H_

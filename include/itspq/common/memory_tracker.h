#ifndef ITSPQ_COMMON_MEMORY_TRACKER_H_
#define ITSPQ_COMMON_MEMORY_TRACKER_H_

// Byte accounting for the memory-cost figures. The engines charge their
// search structures (heap entries, door labels, resident reduced graph)
// against a MemoryTracker and report the peak; FormatBytes renders sizes
// for the construction benches.

#include <algorithm>
#include <cstddef>
#include <string>

namespace itspq {

/// Tracks a running byte total and its high-water mark.
class MemoryTracker {
 public:
  void Add(size_t bytes) {
    current_ += bytes;
    peak_ = std::max(peak_, current_);
  }

  void Release(size_t bytes) {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  size_t current() const { return current_; }
  size_t peak() const { return peak_; }

  void Reset() { current_ = peak_ = 0; }

 private:
  size_t current_ = 0;
  size_t peak_ = 0;
};

/// Human-readable byte count: "512 B", "1.5 KB", "10.2 MB", ...
std::string FormatBytes(size_t bytes);

}  // namespace itspq

#endif  // ITSPQ_COMMON_MEMORY_TRACKER_H_

#ifndef ITSPQ_ARTIFACT_ARTIFACT_H_
#define ITSPQ_ARTIFACT_ARTIFACT_H_

// Packed venue artifacts: build-once/load-fast serialization of a full
// venue world (format.h documents the on-disk layout).
//
// The write side compiles everything expensive exactly once — distance
// matrices ride along from the venue, AtiSets are normalised, the
// checkpoint ledger and flip CSR are derived, the D2D matrix optionally
// materialised — and packs it into one flat `.itspq` file:
//
//   ItGraph + ledger + (D2D)   EncodeVenueArtifact / WriteVenueArtifact
//
// The load side is O(file size): every section is checksummed, bounds-
// checked, and adopted verbatim — no AtiSet::Create, no Dijkstra, no
// checkpoint probe. BuildWorldFromArtifact then publishes the decoded
// world as a `VersionedGraph` epoch 0, so lazy shards compose with the
// online-update plane unchanged:
//
//   LoadVenueArtifact(path) -> LoadedVenueWorld
//     -> BuildWorldFromArtifact(world, "itg-a+") -> shared_ptr<const VersionedGraph>
//
// A fleet directory is tied together by a plain-text manifest (one
// artifact filename per line, '#' comments) written by tools/itspq_build.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "itgraph/ati.h"
#include "itgraph/csr_adjacency.h"
#include "query/registry.h"
#include "query/router.h"
#include "venue/venue.h"

namespace itspq {

class VersionedGraph;

struct ArtifactWriteOptions {
  /// Materialise and embed the n x n D2D matrix (one static Dijkstra
  /// per door at encode time — the whole point is paying it offline).
  bool include_d2d = false;
  /// Human-readable shard label carried in the Meta section.
  std::string label;
};

/// A decoded artifact: everything needed to assemble a serving world
/// with zero re-normalisation. `venue` is heap-held because Venue has
/// no public default constructor.
struct LoadedVenueWorld {
  std::unique_ptr<Venue> venue;
  /// Compiled per-door AtiSets, adopted verbatim into the ItGraph.
  std::vector<AtiSet> atis;
  /// Compiled CSR adjacency (format v2+), adopted verbatim into the
  /// ItGraph. Null in a hand-assembled world: BuildWorldFromArtifact
  /// then compiles it from the venue instead.
  std::shared_ptr<const CsrAdjacency> adjacency;
  /// The boundary ledger: checkpoint_times[i] is contributed by exactly
  /// the (ascending) doors in flip_lists[i].
  std::vector<double> checkpoint_times;
  std::vector<std::vector<DoorId>> flip_lists;
  /// Row-major n x n materialised distances; empty when the artifact
  /// was written without --d2d.
  std::vector<double> d2d_matrix;
  std::string label;
};

/// Compiles `venue` into a packed artifact image. Errors when the
/// venue's ATIs fail graph compilation.
StatusOr<std::vector<uint8_t>> EncodeVenueArtifact(
    const Venue& venue,
    const ArtifactWriteOptions& options = ArtifactWriteOptions());

/// EncodeVenueArtifact + atomic-ish write to `path` (errors on I/O).
Status WriteVenueArtifact(const std::string& path, const Venue& venue,
                          const ArtifactWriteOptions& options =
                              ArtifactWriteOptions());

/// Parses and validates a full artifact image. Rejection is always a
/// precise Status — wrong magic, foreign endianness, future format
/// version, truncation, checksum mismatch, or structural corruption —
/// never UB on hostile bytes.
StatusOr<LoadedVenueWorld> DecodeVenueArtifact(const uint8_t* data,
                                               size_t size);

/// Reads `path` into memory and decodes it. O(file size).
StatusOr<LoadedVenueWorld> LoadVenueArtifact(const std::string& path);

/// Cheap registration-time check: reads only the header + section table
/// and validates magic/version/endianness/sizes/table checksum without
/// touching section payloads. A file passing this can still fail
/// LoadVenueArtifact on a payload checksum.
Status ValidateArtifactHeader(const std::string& path);

/// Reads a fleet manifest: one artifact filename per line, blank lines
/// and '#' comments skipped, entries resolved relative to the manifest's
/// directory.
StatusOr<std::vector<std::string>> ReadFleetManifest(const std::string& path);

/// Assembles a serving world from a decoded artifact and publishes it
/// as a `VersionedGraph` epoch 0 under `strategy` — the lazy-load
/// equivalent of VersionedGraph::Build(venue, ...), minus all the
/// compilation that build performs (the artifact already carries it).
StatusOr<std::shared_ptr<const VersionedGraph>> BuildWorldFromArtifact(
    LoadedVenueWorld world, const std::string& strategy,
    const RouterBuildOptions& options = RouterBuildOptions(),
    const RouterRegistry* registry = nullptr);

}  // namespace itspq

#endif  // ITSPQ_ARTIFACT_ARTIFACT_H_

#ifndef ITSPQ_ARTIFACT_FORMAT_H_
#define ITSPQ_ARTIFACT_FORMAT_H_

// On-disk layout of a packed venue artifact (`.itspq`).
//
// An artifact is one flat, offset-based binary file holding everything a
// shard needs to serve: the Venue (geometry, doors, ATIs, distance
// matrices, point-location grid), the compiled IT-Graph AtiSets, the
// compiled CSR adjacency (the search core's relaxation arrays), the
// CheckpointSet, the BoundaryFlipIndex CSR, and optionally the
// materialized D2D matrix. The loader reconstructs a serving world in
// O(file size) with zero re-normalisation — no distance recompute, no
// AtiSet::Create, no adjacency compile, no checkpoint probe.
//
//   [ArtifactHeader | section table | section 0 | section 1 | ... ]
//
// Every field is little-endian (the header carries an endianness tag;
// big-endian files are rejected, never byte-swapped). Sections are
// independently checksummed with FNV-1a 64, so a corrupt or truncated
// file is rejected with a precise Status — never undefined behaviour.
// The format version is bumped on any incompatible layout change;
// readers reject versions they do not know.

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace itspq {

/// First eight bytes of every artifact.
inline constexpr char kArtifactMagic[8] = {'I', 'T', 'S', 'P',
                                           'Q', 'A', 'R', 'T'};

/// Current format version. Bump on incompatible changes; loaders reject
/// files with a version they do not understand.
///
/// History:
///   1 — initial layout (sections kMeta..kD2d).
///   2 — adds the mandatory AdjacencyCsr section (the compiled search
///       core relaxation arrays); v1 files lack it and must be rebuilt.
inline constexpr uint32_t kArtifactFormatVersion = 2;

/// Written as 0x01020304 by a little-endian writer; a reader seeing the
/// byte-swapped value knows the file came from the other endianness.
inline constexpr uint32_t kArtifactEndianTag = 0x01020304u;

/// Section kinds, in the order the writer emits them. Readers locate
/// sections by kind through the table, not by position.
enum class ArtifactSection : uint32_t {
  kMeta = 1,              // counts, flags, label
  kPartitions = 2,        // Rect + floor per partition
  kDoors = 3,             // position, floor, partition pair per door
  kDoorAtis = 4,          // per-door source TimeInterval CSR (pre-normalisation)
  kDoorsOf = 5,           // partition -> door-list CSR
  kDistanceMatrices = 6,  // per-partition dense lookup + row-major matrix
  kFloorIndex = 7,        // per-floor point-location grids
  kCompiledAtis = 8,      // per-door normalised AtiSet CSR (starts/ends)
  kCheckpoints = 9,       // sorted checkpoint times
  kFlipIndex = 10,        // per-boundary flip-list CSR (the ledger)
  kD2d = 11,              // optional n x n materialized distance matrix
  kAdjacencyCsr = 12,     // compiled door-adjacency CSR (v2+)
};

/// Fixed 40-byte file header. `table_checksum` covers the raw bytes of
/// the section table (header fields are validated directly: magic,
/// version, endianness, and the sizes must all be self-consistent).
struct ArtifactHeader {
  char magic[8];
  uint32_t format_version;
  uint32_t endian_tag;
  /// Total file size the writer produced; a shorter file is truncated.
  uint64_t file_bytes;
  uint32_t header_bytes;   // sizeof(ArtifactHeader)
  uint32_t section_count;
  uint64_t table_checksum;  // FNV-1a 64 over the section table bytes
};
static_assert(sizeof(ArtifactHeader) == 40, "header layout is fixed");

/// One section-table entry (32 bytes). `offset` is absolute from the
/// start of the file; `checksum` is FNV-1a 64 over the section bytes.
struct ArtifactSectionEntry {
  uint32_t kind;      // ArtifactSection
  uint32_t reserved;  // zero
  uint64_t offset;
  uint64_t bytes;
  uint64_t checksum;
};
static_assert(sizeof(ArtifactSectionEntry) == 32, "table layout is fixed");

/// The per-section integrity checksum: FNV-1a 64 widened to consume
/// eight bytes per multiply. One multiply per word instead of per byte
/// keeps cold-load verification off the critical path (~8x the byte
/// loop's throughput) while still cascading every input bit through the
/// 64-bit product, which is all corruption detection needs. The tail
/// word folds in the total length so trailing zero bytes still change
/// the digest. Deterministic and dependency-free; any change here is a
/// format break and must bump kArtifactFormatVersion.
inline uint64_t ArtifactChecksum(const void* data, size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  constexpr uint64_t kPrime = 1099511628211ull;  // FNV prime
  uint64_t hash = 1469598103934665603ull;        // FNV offset basis
  size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    uint64_t word;
    std::memcpy(&word, p + i, 8);  // little-endian files, L-E readers
    hash = (hash ^ word) * kPrime;
  }
  if (i < bytes || bytes == 0) {
    uint64_t word = 0;
    if (i < bytes) std::memcpy(&word, p + i, bytes - i);
    hash = (hash ^ (word + bytes)) * kPrime;
  }
  return hash;
}

}  // namespace itspq

#endif  // ITSPQ_ARTIFACT_FORMAT_H_

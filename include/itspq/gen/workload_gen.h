#ifndef ITSPQ_GEN_WORKLOAD_GEN_H_
#define ITSPQ_GEN_WORKLOAD_GEN_H_

// Multi-venue workload generation for the sharded serving layer: a
// fleet of heterogeneous venues (malls differing in floor count, shop
// density, and shop-hours pool) and a Zipf-skewed request stream across
// them — the production shape where a few flagship venues carry most of
// the traffic and a long tail of small ones carries the rest.

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "gen/ati_gen.h"
#include "gen/venue_gen.h"
#include "query/router.h"
#include "query/venue_catalog.h"
#include "venue/venue.h"

namespace itspq {

/// Knobs for GenerateVenueFleet. Venue i draws its shape uniformly
/// from the [min, max] ranges below (seeded per venue off `seed`), so
/// shards are genuinely heterogeneous: different partition/door counts
/// and different checkpoint sets.
struct FleetConfig {
  int num_venues = 4;
  uint64_t seed = 7;

  /// Base mall every venue derives from; floors/shop_rows/seed are
  /// overridden per venue.
  MallConfig base_mall = MallConfig::Paper();
  int min_floors = 1;
  int max_floors = 3;
  int min_shop_rows = 2;
  int max_shop_rows = 4;

  /// Base shop-hours pool; checkpoint_count/seed overridden per venue.
  AtiGenConfig base_ati;
  int min_checkpoints = 4;
  int max_checkpoints = 10;
};

/// Generates `num_venues` malls with temporal variations attached,
/// in VenueId order (venue i is meant to become catalog shard i).
/// Errors on empty/invalid ranges or a mall config that doesn't fit.
StatusOr<std::vector<Venue>> GenerateVenueFleet(const FleetConfig& config);

/// Knobs for GenerateMultiVenueWorkload.
struct MultiVenueWorkloadConfig {
  int num_requests = 512;
  uint64_t seed = 99;

  /// Venue popularity skew: catalog shard k gets weight 1/(k+1)^s.
  /// 0 = uniform traffic.
  double zipf_exponent = 1.0;

  /// Endpoint pairs pre-drawn per venue; requests sample from the pool.
  int pairs_per_venue = 6;
  /// Target static source-to-target distance of the pairs (metres).
  double s2t_distance = 600;
  double tolerance = 200;

  /// Departure hours sampled uniformly per request, with a uniform
  /// offset inside the hour.
  std::vector<int> hours = {8, 12, 18, 21};

  /// Applied to every request (e.g. turn on the shared snapshot cache
  /// for serving-shaped runs).
  QueryOptions options;
};

/// Draws `num_requests` QueryRequests across the catalog's venues,
/// venue_id set to the Zipf-chosen shard. Errors when the catalog is
/// empty, the config ranges are invalid, or some venue cannot produce
/// `pairs_per_venue` endpoint pairs in the δs2t band.
StatusOr<std::vector<QueryRequest>> GenerateMultiVenueWorkload(
    const VenueCatalog& catalog, const MultiVenueWorkloadConfig& config);

/// Knobs for GenerateOpenLoopArrivals.
struct ArrivalScheduleConfig {
  /// Offered load, requests per second of wall-clock submission time.
  double offered_qps = 1000;
  uint64_t seed = 7;
};

/// Open-loop (Poisson) arrival offsets for a serving-load driver:
/// `num_requests` non-decreasing seconds-from-stream-start, with
/// exponential inter-arrival gaps at `offered_qps`. Submitting request
/// i at start + offsets[i] regardless of completions is what makes the
/// load *offered* rather than closed-loop — the service's admission
/// control, not the driver, absorbs overload. Errors on a negative
/// request count or a non-positive/non-finite rate.
StatusOr<std::vector<double>> GenerateOpenLoopArrivals(
    int num_requests, const ArrivalScheduleConfig& config);

/// Knobs for GenerateUpdateStream.
struct UpdateStreamConfig {
  int num_updates = 64;
  uint64_t seed = 11;

  /// Offered write load, updates per second of wall-clock submission
  /// time (Poisson arrivals, like GenerateOpenLoopArrivals).
  double offered_ups = 50;

  /// Venue churn skew: catalog shard k draws weight 1/(k+1)^s — busy
  /// flagship venues also mutate most. 0 = uniform.
  double zipf_exponent = 1.0;

  /// Replacement-ATI shape. Each update's new hours are drawn as
  /// [open, close) with open in [min_open_hour, max_open_hour] and
  /// close in [min_close_hour, max_close_hour]; a slice of updates is
  /// instead a midnight-wrapping [close-ish, open-ish) night window,
  /// and another slice clears the door to always-open.
  double min_open_hour = 6, max_open_hour = 10;
  double min_close_hour = 20, max_close_hour = 23;
  double wrap_fraction = 0.1;
  double always_open_fraction = 0.1;
};

/// One scheduled mutation of GenerateUpdateStream's stream.
struct TimedAtiUpdate {
  /// Seconds from stream start at which to submit (non-decreasing).
  double offset_seconds = 0;
  AtiUpdate update;
};

/// Draws `num_updates` door mutations across the catalog's venues:
/// Poisson arrival offsets at `offered_ups`, Zipf-skewed venue choice,
/// uniform door within the venue, and replacement hours per the config
/// mix (regular daytime window / midnight wrap / always-open). Errors
/// on an empty catalog or malformed rates/fractions/hour windows.
StatusOr<std::vector<TimedAtiUpdate>> GenerateUpdateStream(
    const VenueCatalog& catalog, const UpdateStreamConfig& config);

}  // namespace itspq

#endif  // ITSPQ_GEN_WORKLOAD_GEN_H_

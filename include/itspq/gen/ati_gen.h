#ifndef ITSPQ_GEN_ATI_GEN_H_
#define ITSPQ_GEN_ATI_GEN_H_

// Temporal-variation generator (paper §III): synthetic shop-hours pools
// with |T| checkpoints.
//
// A pool of |T| checkpoint times is drawn — opening times in the
// morning window, closing times in the evening window — and every
// horizontal door is assigned one [open, close) interval from the pool.
// Since every door boundary comes from the pool, the venue's derived
// checkpoint set is exactly those |T| times. Vertical (stair) doors
// stay always open. This reproduces the paper's day shape: everything
// shut before the morning checkpoints, fully open around noon, closing
// through the evening ones.

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "venue/venue.h"

namespace itspq {

struct AtiGenConfig {
  /// |T|: total checkpoints in the pool. At least 2 (one opening, one
  /// closing). Opening times get the larger half when odd.
  int checkpoint_count = 8;
  uint64_t seed = 1;

  /// Morning (opening) pool window, seconds since midnight.
  double morning_window_start = 6 * 3600.0;
  double morning_window_end = 10 * 3600.0;
  /// Evening (closing) pool window, seconds since midnight.
  double evening_window_start = 20 * 3600.0;
  double evening_window_end = 23 * 3600.0;
};

/// Returns a copy of `venue` with shop-hours ATIs assigned to every
/// horizontal door. When `checkpoints_out` is non-null it receives the
/// sorted pool times. Errors on checkpoint_count < 2 or malformed
/// windows.
StatusOr<Venue> AssignTemporalVariations(
    const Venue& venue, const AtiGenConfig& config,
    std::vector<double>* checkpoints_out = nullptr);

}  // namespace itspq

#endif  // ITSPQ_GEN_ATI_GEN_H_

#ifndef ITSPQ_GEN_VENUE_GEN_H_
#define ITSPQ_GEN_VENUE_GEN_H_

// Synthetic-venue generator for the paper's experimental setup (§III):
// a multi-floor shopping mall. Each floor is a full tiling of
// alternating corridor bands and shop rows:
//
//   corridor ─ shops ─ corridor ─ shops ─ ... ─ corridor
//
// Every shop has a door to the corridor below it; a subset also get a
// second door to the corridor above (the cross-doors that connect
// corridor bands). Two shops per floor act as staircases, linked by
// vertical doors to the floors above/below. With the Paper() defaults
// this yields 141 partitions and 224 horizontal doors per floor — 705
// partitions and 1128 doors (incl. 8 stair doors) at 5 floors,
// matching the paper's 705/1120 mall up to the stairwells.

#include <cstdint>

#include "common/status.h"
#include "venue/venue.h"

namespace itspq {

struct MallConfig {
  int floors = 5;
  uint64_t seed = 42;

  /// Shop rows per floor (between consecutive corridor bands).
  int shop_rows = 4;
  /// Shops per row.
  int shops_per_row = 34;
  /// Every shop whose index in its row is not a multiple of this stride
  /// gets a second door to the corridor above.
  int cross_door_stride = 3;
  /// Corridor band height (m).
  double corridor_height_m = 24.0;
  /// Floor side length (m); floors are square.
  double floor_size_m = 1368.0;

  /// The defaults above — the paper's 5-floor mall.
  static MallConfig Paper() { return MallConfig{}; }
};

/// Generates the synthetic mall. All doors are created always-open;
/// gen/ati_gen.h attaches the temporal variations. Errors on
/// non-positive dimensions or configs whose bands don't fit the floor.
StatusOr<Venue> GenerateMall(const MallConfig& config);

}  // namespace itspq

#endif  // ITSPQ_GEN_VENUE_GEN_H_

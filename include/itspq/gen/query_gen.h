#ifndef ITSPQ_GEN_QUERY_GEN_H_
#define ITSPQ_GEN_QUERY_GEN_H_

// Workload generator (paper §III): (ps, pt) query pairs whose indoor
// source-to-target distance δs2t is controlled. Distances are measured
// on the static (temporal-variation-oblivious) door graph, so the pairs
// are routable whenever the doors on the way happen to be open.

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "itgraph/itgraph.h"
#include "venue/geometry.h"

namespace itspq {

struct QueryInstance {
  IndoorPoint ps;
  IndoorPoint pt;
  /// Static indoor distance of the pair, metres (diagnostic).
  double s2t_m = 0;
};

struct QueryGenConfig {
  /// Target δs2t (m).
  double s2t_distance = 1500;
  /// Accept pairs with |distance - s2t_distance| <= tolerance.
  double tolerance = 150;
  int num_pairs = 5;
  uint64_t seed = 99;
  /// Give up after this many source draws without filling num_pairs.
  int max_source_attempts = 400;
  /// Target draws tried per source.
  int targets_per_source = 200;
};

/// Draws random interior points and keeps pairs whose static indoor
/// distance falls in the δs2t band. Errors (kResourceExhausted) when
/// the venue cannot produce enough pairs within the attempt budget.
StatusOr<std::vector<QueryInstance>> GenerateQueries(
    const ItGraph& graph, const QueryGenConfig& config);

}  // namespace itspq

#endif  // ITSPQ_GEN_QUERY_GEN_H_

#ifndef ITSPQ_GEN_QUERY_GEN_H_
#define ITSPQ_GEN_QUERY_GEN_H_

// Workload generator (paper §III): (ps, pt) query pairs whose indoor
// source-to-target distance δs2t is controlled. Distances are measured
// on the static (temporal-variation-oblivious) door graph, so the pairs
// are routable whenever the doors on the way happen to be open.

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "itgraph/itgraph.h"
#include "query/router.h"
#include "venue/geometry.h"

namespace itspq {

struct QueryInstance {
  IndoorPoint ps;
  IndoorPoint pt;
  /// Static indoor distance of the pair, metres (diagnostic).
  double s2t_m = 0;
};

struct QueryGenConfig {
  /// Target δs2t (m).
  double s2t_distance = 1500;
  /// Accept pairs with |distance - s2t_distance| <= tolerance.
  double tolerance = 150;
  int num_pairs = 5;
  uint64_t seed = 99;
  /// Give up after this many source draws without filling num_pairs.
  int max_source_attempts = 400;
  /// Target draws tried per source.
  int targets_per_source = 200;
};

/// Draws random interior points and keeps pairs whose static indoor
/// distance falls in the δs2t band. Errors (kResourceExhausted) when
/// the venue cannot produce enough pairs within the attempt budget.
StatusOr<std::vector<QueryInstance>> GenerateQueries(
    const ItGraph& graph, const QueryGenConfig& config);

/// Workload shape for one temporal query family (the three QueryKinds
/// beyond point-to-point). Each generated request draws its source (and
/// waypoints/target for kMultiStop) as interior points of random
/// partitions, its departure uniformly from the window, and its family
/// parameters from the ranges below.
struct FamilyGenConfig {
  QueryKind kind = QueryKind::kReachability;
  int num_queries = 5;
  uint64_t seed = 99;
  /// Departure window, absolute seconds (may span past midnight).
  double min_departure_seconds = 0;
  double max_departure_seconds = 86400;
  /// kReachability: time budget drawn uniformly from this range (s).
  double min_budget_seconds = 60;
  double max_budget_seconds = 1800;
  /// kNearestFacility: k drawn uniformly from [min_k, max_k], facility
  /// set of `num_facilities` distinct random doors.
  uint32_t min_k = 1;
  uint32_t max_k = 4;
  int num_facilities = 8;
  /// kMultiStop: intermediate stops between source and target.
  int num_waypoints = 2;
};

/// Generates `num_queries` ready-to-Route requests of the configured
/// family. kInvalidArgument on a malformed config (bad counts/ranges or
/// kPointToPoint — use GenerateQueries for distance-controlled pairs);
/// kFailedPrecondition on an empty venue or, for kNearestFacility, a
/// venue with fewer doors than num_facilities.
StatusOr<std::vector<QueryRequest>> GenerateFamilyQueries(
    const ItGraph& graph, const FamilyGenConfig& config);

}  // namespace itspq

#endif  // ITSPQ_GEN_QUERY_GEN_H_

#ifndef ITSPQ_NET_SERVER_H_
#define ITSPQ_NET_SERVER_H_

// The network edge: a loopback TCP server speaking the net/wire.h frame
// protocol in front of a QueryService.
//
//   auto service = MakeQueryService(std::move(catalog), opts);
//   NetServerOptions net_opts;                 // port 0 = kernel picks
//   auto server = MakeNetServer(std::move(*service), net_opts);
//   printf("listening on %u\n", (*server)->port());
//   (*server)->WaitForShutdownRequest();       // a client sent kShutdown
//   (*server)->Stop();
//
// Threading: one accept thread, two threads per connection. The reader
// decodes frames and submits queries straight into the service (the
// admission queue is the backpressure point — the socket never buffers
// unbounded work); the writer drains the connection's reply queue in
// submission order, waiting on each future, so pipelined replies come
// back FIFO per connection.
//
// Hostile input never takes the server down: a malformed frame earns a
// best-effort kError reply with the precise decode Status and the
// connection is closed; an oversized length prefix is rejected before
// any allocation; a peer that stalls mid-frame trips the SO_RCVTIMEO
// slow-loris guard and is dropped, while a connection idle BETWEEN
// frames is kept indefinitely.
//
// A kShutdown frame acks, then unblocks WaitForShutdownRequest() — how
// the loadgen's --shutdown flag stops the server tool from across the
// socket when a smoke run finishes.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"
#include "server/query_service.h"

namespace itspq {
namespace net {

struct NetServerOptions {
  /// Loopback port to bind; 0 asks the kernel for an ephemeral port
  /// (read the result back through port()).
  uint16_t port = 0;
  /// Frame payload ceiling enforced on receive.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Slow-loris guard: a peer that started a frame must finish it
  /// within this window or the connection is dropped. Idle time between
  /// frames is not limited. 0 disables the guard (blocking reads).
  double recv_timeout_seconds = 5.0;
};

/// Edge-level counters (the query-level ledger lives in ServiceStats).
struct NetServerStats {
  size_t connections_accepted = 0;
  /// Connections closed by the server because the peer broke protocol
  /// (malformed frame, oversized prefix, mid-frame stall/disconnect).
  size_t connections_dropped = 0;
  size_t frames_received = 0;
  size_t frames_sent = 0;
  size_t decode_errors = 0;
};

class NetServer {
 public:
  ~NetServer();  ///< Stops if the caller has not already.

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// The bound port (the kernel's pick when options.port was 0).
  uint16_t port() const { return port_; }

  /// Blocks until a client sends kShutdown or Stop() is called.
  void WaitForShutdownRequest();
  bool shutdown_requested() const;

  /// Stops accepting, shuts the owned service down (draining admitted
  /// work so every in-flight reply future resolves), then unblocks and
  /// joins every connection thread and closes all sockets. Idempotent;
  /// Stats()/service().Stats() stay readable afterwards.
  void Stop();

  NetServerStats Stats() const;

  /// The fronted service — for Stats() audits and direct-vs-wire replay
  /// comparisons in tests.
  QueryService& service() { return *service_; }
  const QueryService& service() const { return *service_; }

 private:
  friend StatusOr<std::unique_ptr<NetServer>> MakeNetServer(
      std::unique_ptr<QueryService> service, NetServerOptions options);

  struct Connection;

  NetServer(std::unique_ptr<QueryService> service, NetServerOptions options,
            ScopedFd listen_fd, uint16_t port);

  void AcceptLoop();
  void ReaderLoop(Connection* conn);
  void WriterLoop(Connection* conn);
  /// Handles one decoded frame; false = close the connection.
  bool HandleFrame(Connection* conn, MsgType type, std::string_view body);

  std::unique_ptr<QueryService> service_;
  NetServerOptions options_;
  ScopedFd listen_fd_;
  uint16_t port_ = 0;

  std::thread accept_thread_;
  mutable std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;           // guarded by mu_
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<Connection>> connections_;  // guarded by mu_
  std::once_flag stop_once_;

  std::atomic<size_t> connections_accepted_{0};
  std::atomic<size_t> connections_dropped_{0};
  std::atomic<size_t> frames_received_{0};
  std::atomic<size_t> frames_sent_{0};
  std::atomic<size_t> decode_errors_{0};
};

/// Binds the loopback listener and starts the accept thread. The server
/// owns the service from here on. kInternal when the bind fails;
/// kInvalidArgument for a null service or nonsensical options.
StatusOr<std::unique_ptr<NetServer>> MakeNetServer(
    std::unique_ptr<QueryService> service,
    NetServerOptions options = NetServerOptions());

}  // namespace net
}  // namespace itspq

#endif  // ITSPQ_NET_SERVER_H_

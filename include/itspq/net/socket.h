#ifndef ITSPQ_NET_SOCKET_H_
#define ITSPQ_NET_SOCKET_H_

// Thin POSIX socket helpers shared by the server and the client: an
// RAII fd, loop-until-done frame writes, and a frame reader that tells
// its four outcomes apart — a complete frame, a clean close between
// frames, an idle timeout between frames (the caller decides whether to
// keep waiting), and an error (malformed prefix, mid-frame disconnect,
// or a peer trickling bytes past the receive timeout — the slow-loris
// guard). The distinction is the whole point: a server must keep a
// quiet connection but drop a stalled one.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "common/status.h"

namespace itspq {
namespace net {

/// Owns one file descriptor; closes on destruction. Movable only.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { Reset(); }

  ScopedFd(ScopedFd&& other) noexcept : fd_(other.Release()) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.Release();
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// What one ReadFrame call observed on the connection.
enum class FrameRead {
  kFrame,        ///< `payload` holds a complete frame payload.
  kCleanClose,   ///< Peer closed between frames — a normal goodbye.
  kIdleTimeout,  ///< Receive timeout fired before any byte of the next
                 ///< frame; the connection is quiet, not stalled.
  kError,        ///< `error` says why: oversized/zero length prefix,
                 ///< disconnect or timeout mid-frame, recv failure.
};

/// Reads one length-prefixed frame (the payload AFTER the 4-byte
/// prefix) from `fd`. A length prefix of 0 or beyond `max_frame_bytes`
/// is rejected before any body allocation. If the fd carries a
/// SO_RCVTIMEO, a timeout mid-frame is an error (a peer must send a
/// started frame promptly) while a timeout before the first byte is
/// kIdleTimeout.
FrameRead ReadFrame(int fd, size_t max_frame_bytes, std::string* payload,
                    Status* error);

/// Writes all of `frame` (length prefix included), looping over partial
/// sends. kInternal on a send failure or a peer that closed mid-write.
Status WriteFrame(int fd, std::string_view frame);

/// Sets SO_RCVTIMEO. 0 disables (blocking reads).
Status SetRecvTimeout(int fd, double seconds);

/// Connects to 127.0.0.1:`port`. kInternal on socket/connect failure
/// (message carries errno text).
StatusOr<ScopedFd> ConnectLoopback(uint16_t port);

/// Creates a loopback listener on `port` (0 = kernel-assigned) and
/// returns the fd plus the actual bound port.
StatusOr<std::pair<ScopedFd, uint16_t>> ListenLoopback(uint16_t port,
                                                       int backlog = 64);

}  // namespace net
}  // namespace itspq

#endif  // ITSPQ_NET_SOCKET_H_

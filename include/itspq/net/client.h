#ifndef ITSPQ_NET_CLIENT_H_
#define ITSPQ_NET_CLIENT_H_

// Client side of the net/wire.h protocol: one connection, synchronous
// or pipelined.
//
//   auto client = NetClient::Connect(port);
//   StatusOr<WireReply> answer = client->Query(request, 50'000,
//                                              QosClass::kInteractive);
//
// Pipelining (the loadgen's open-loop mode): Send() pushes a query
// frame without waiting, ReceiveReply() blocks for the next reply in
// FIFO order. The server guarantees per-connection submission-order
// replies, so the k-th ReceiveReply answers the k-th Send.
//
// Transport failures are kInternal; a kError frame from the server
// (protocol violation verdict) surfaces as kFailedPrecondition carrying
// the server's message, since the connection is dead afterwards — see
// the README recoverability table. Per-query outcomes (kNotFound,
// kResourceExhausted, kDeadlineExceeded, ...) arrive INSIDE the
// WireReply, leaving transport and application errors distinguishable.
//
// Not thread-safe: one NetClient per thread, like QueryContext.

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/socket.h"
#include "net/wire.h"
#include "query/router.h"
#include "server/query_service.h"

namespace itspq {
namespace net {

class NetClient {
 public:
  /// Connects to 127.0.0.1:port. `max_frame_bytes` bounds what the
  /// client will accept back.
  static StatusOr<std::unique_ptr<NetClient>> Connect(
      uint16_t port, size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Sends one query and waits for its reply (request_id checked).
  StatusOr<WireReply> Query(const QueryRequest& request, double deadline_micros,
                            QosClass qos);

  /// Pipelined send: frames the query with the next request id and
  /// pushes it; returns the id without waiting for the reply.
  StatusOr<uint64_t> Send(const QueryRequest& request, double deadline_micros,
                          QosClass qos);

  /// Blocks for the next reply frame. Replies arrive in Send() order.
  StatusOr<WireReply> ReceiveReply();

  /// Fetches the server's accounting summary. Callers must have drained
  /// their pipelined replies first (stats share the FIFO).
  StatusOr<WireStats> FetchStats();

  /// Asks the server to shut down; waits for the ack.
  Status RequestShutdown();

 private:
  NetClient(ScopedFd fd, size_t max_frame_bytes)
      : fd_(std::move(fd)), max_frame_bytes_(max_frame_bytes) {}

  /// Reads one frame into `payload`, reporting its type; `body` views
  /// into `payload`. A kError frame becomes the kFailedPrecondition
  /// described above.
  Status ReadReplyFrame(std::string* payload, MsgType* type,
                        std::string_view* body);
  /// ReadReplyFrame, then insists the type is exactly `want`.
  Status ReadExpected(MsgType want, std::string* payload,
                      std::string_view* body);

  ScopedFd fd_;
  size_t max_frame_bytes_;
  uint64_t next_request_id_ = 1;  // 0 is reserved for server errors
};

}  // namespace net
}  // namespace itspq

#endif  // ITSPQ_NET_CLIENT_H_

#ifndef ITSPQ_NET_WIRE_H_
#define ITSPQ_NET_WIRE_H_

// The binary RPC wire contract of the network edge.
//
// Every message is one length-prefixed frame:
//
//   offset  size  field
//   0       4     payload length N (uint32, little-endian) — the bytes
//                 that FOLLOW this prefix; N >= 1, bounded by the
//                 receiver's max_frame_bytes (oversized prefixes are
//                 rejected before any allocation)
//   4       1     message type (MsgType)
//   5       N-1   message body, layout per type below
//
// All integers are little-endian, all doubles are IEEE-754 binary64
// copied verbatim (the same convention as the artifact format:
// declared, never byte-swapped — answers travel bit-identically).
// Strings are a uint32 byte count followed by raw bytes, capped at
// kMaxWireString. Decoders validate every length against the bytes
// remaining and every enum byte against its frozen table, returning a
// precise Status instead of reading out of bounds — hostile frames are
// an expected input, not an error path.
//
// Message bodies:
//   kQuery        WireQuery   (client -> server)
//   kQueryReply   WireReply   (server -> client, echoes request_id)
//   kStatsRequest empty       (client -> server)
//   kStatsReply   WireStats   (server -> client)
//   kShutdown     empty       (client -> server: drain and exit)
//   kShutdownAck  empty       (server -> client, sent before draining)
//   kError        WireReply with request_id 0 (server -> client: the
//                 connection-fatal decode error, sent best-effort
//                 before the server closes the connection)
//   kTemporalQuery  WireQuery with the family extension (kind, budget,
//                 k + facilities, waypoints) appended after the kQuery
//                 fields (client -> server). Carries any QueryKind;
//                 clients send plain kQuery for point-to-point so old
//                 peers keep interoperating.
//   kTemporalReply  WireReply with the family extension (reachable
//                 doors, itinerary legs) appended after the kQueryReply
//                 fields (server -> client; answers kTemporalQuery)
//
// Replies to pipelined queries come back in submission order per
// connection. The per-status recoverability contract is documented in
// README.md ("Network edge"); the code bytes themselves are
// StatusCodeToWire (common/status.h) — frozen, append only.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "query/path.h"
#include "query/router.h"
#include "server/query_service.h"

namespace itspq {
namespace net {

/// Frame message types. Frozen wire values — append only.
enum class MsgType : uint8_t {
  kQuery = 1,
  kQueryReply = 2,
  kStatsRequest = 3,
  kStatsReply = 4,
  kShutdown = 5,
  kShutdownAck = 6,
  kError = 7,
  kTemporalQuery = 8,
  kTemporalReply = 9,
};

/// Default ceiling on one frame's payload. A reply carrying a path of
/// a few hundred steps is ~10 KB; 1 MiB leaves two orders of magnitude
/// of headroom while keeping a hostile 4 GB length prefix un-allocable.
inline constexpr size_t kDefaultMaxFrameBytes = 1 << 20;

/// Ceiling on one encoded string (status messages). Longer messages are
/// truncated by encoders and rejected by decoders.
inline constexpr size_t kMaxWireString = 4096;

/// Ceiling on the steps in one reply path — a venue walk is hundreds of
/// doors, not millions; a decoder seeing more is reading a hostile or
/// corrupt frame.
inline constexpr size_t kMaxWireSteps = 1 << 16;

/// Ceilings on the temporal-query extension's counts, enforced before
/// any allocation (same posture as kMaxWireSteps): facility lists are
/// door subsets, reachable sets are bounded by a venue's door count,
/// and an itinerary of more than a thousand stops is hostile input.
inline constexpr size_t kMaxWireFacilities = 1 << 16;
inline constexpr size_t kMaxWireWaypoints = 1 << 10;
inline constexpr size_t kMaxWireReachable = 1 << 16;
inline constexpr size_t kMaxWireLegs = kMaxWireWaypoints + 1;

/// One query as it travels the wire. Doubles are carried verbatim, so a
/// round trip is bit-exact.
struct WireQuery {
  /// Client-chosen correlation id, echoed in the reply. Ids let a
  /// client pipeline many queries per connection; 0 is reserved for
  /// server-originated kError frames.
  uint64_t request_id = 0;
  VenueId venue_id = 0;
  QosClass qos = QosClass::kInteractive;
  /// Deadline budget from server receipt, µs. +infinity = none. NaN and
  /// negatives are rejected at decode (kInvalidArgument) — they must
  /// never reach admission.
  double deadline_micros = 0;
  bool use_snapshot_cache = false;
  bool partition_visited_pruning = true;
  double source_x = 0, source_y = 0;
  int32_t source_floor = 0;
  double target_x = 0, target_y = 0;
  int32_t target_floor = 0;
  /// Rejected at decode when non-finite — a NaN departure would
  /// otherwise surface as a silent found == false (see ValidateRequest
  /// in the query layer; the edge fails the same way a local call does).
  double departure_seconds = 0;

  /// Temporal-query extension, carried only by kTemporalQuery frames
  /// (a kQuery frame always describes a kPointToPoint request).
  QueryKind kind = QueryKind::kPointToPoint;
  double budget_seconds = 0;            ///< kReachability
  uint32_t k = 0;                       ///< kNearestFacility
  std::vector<DoorId> facilities;       ///< kNearestFacility
  std::vector<IndoorPoint> waypoints;   ///< kMultiStop
};

/// Builds the router request a decoded WireQuery describes.
QueryRequest ToQueryRequest(const WireQuery& wire);
/// Captures `request` (+ serving knobs) for the wire.
WireQuery FromQueryRequest(const QueryRequest& request, uint64_t request_id,
                           QosClass qos, double deadline_micros);

/// One leg of a multi-stop itinerary on the wire: the same
/// (length, departure, steps) triple a point-to-point reply carries.
struct WireLeg {
  double length_m = 0;
  double departure_seconds = 0;
  std::vector<PathStep> steps;
};

/// One answer as it travels the wire.
struct WireReply {
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kOk;
  /// Error detail for non-OK codes; empty on success.
  std::string message;
  /// Valid only when code == kOk.
  bool found = false;
  double length_m = 0;
  double departure_seconds = 0;
  std::vector<PathStep> steps;

  /// Temporal-reply extension, carried only by kTemporalReply frames:
  /// the reachable/nearest door set (kReachability, kNearestFacility)
  /// and the itinerary legs (kMultiStop), doubles verbatim so the
  /// served answer round-trips bit-identically.
  std::vector<ReachableDoor> reachable;
  std::vector<WireLeg> legs;
};

/// Flattens a served answer (or its error Status) into a reply.
WireReply MakeReply(uint64_t request_id, const StatusOr<QueryResult>& result);

/// The server-side accounting summary the loadgen's --smoke mode
/// audits. Mirrors the ServiceStats contract: submitted == served +
/// shed + rejected + timed_out at quiescence.
struct WireStats {
  uint64_t submitted = 0;
  uint64_t served = 0;
  uint64_t shed = 0;      ///< shed_displaced + shed_infeasible
  uint64_t rejected = 0;  ///< rejected_{queue_full,expired,invalid,shutdown}
  uint64_t timed_out = 0; ///< timed_out_{in_queue,in_flight}
  uint64_t served_by_class[kNumQosClasses] = {};
  uint64_t shed_by_class[kNumQosClasses] = {};
  double p50_micros = 0;
  double p99_micros = 0;
};

/// Summarises a service report for the wire.
WireStats MakeWireStats(const ServiceStats& stats);

// ---------------------------------------------------------------------
// Frame codecs. Encoders return a complete frame (prefix included);
// decoders take the BODY of a frame whose type byte has already been
// dispatched on, and return a precise Status on any malformation.

std::string EncodeQueryFrame(const WireQuery& query);
Status DecodeQueryBody(std::string_view body, WireQuery* query);

/// The kTemporalQuery codec: the kQuery fields followed by the family
/// extension. The decoder additionally rejects an unknown kind byte, a
/// non-finite budget, and facility/waypoint counts beyond their caps.
std::string EncodeTemporalQueryFrame(const WireQuery& query);
Status DecodeTemporalQueryBody(std::string_view body, WireQuery* query);

/// `type` selects the layout: kTemporalReply frames append the family
/// extension (reachable + legs) after the base fields; every other
/// type (kQueryReply, kError) encodes the base reply alone.
std::string EncodeReplyFrame(const WireReply& reply, MsgType type);
Status DecodeReplyBody(std::string_view body, WireReply* reply);
Status DecodeTemporalReplyBody(std::string_view body, WireReply* reply);

std::string EncodeStatsReplyFrame(const WireStats& stats);
Status DecodeStatsReplyBody(std::string_view body, WireStats* stats);

/// Frames with an empty body (kStatsRequest, kShutdown, kShutdownAck).
std::string EncodeEmptyFrame(MsgType type);

/// Splits a complete frame's bytes (after the length prefix) into type
/// + body; kInvalidArgument on an empty payload or an unknown type
/// byte.
Status DecodeFrameHeader(std::string_view payload, MsgType* type,
                         std::string_view* body);

}  // namespace net
}  // namespace itspq

#endif  // ITSPQ_NET_WIRE_H_

#ifndef ITSPQ_ITGRAPH_FRONTIER_QUEUE_H_
#define ITSPQ_ITGRAPH_FRONTIER_QUEUE_H_

// The Dijkstra frontier behind every search in the repo, replacing the
// per-call-site std::priority_queue / std::push_heap code.
//
// Three disciplines behind one Push/Pop API:
//
//   kBinaryHeap   — implicit 2-ary min-heap; the reference discipline
//                   the cross-check tests compare against.
//   kFourAryHeap  — implicit 4-ary min-heap. Same asymptotics, ~half
//                   the sift-down levels and 4 children per cache line,
//                   which is what the memory-bound door search wants.
//   kBucketQueue  — Dial's algorithm: an array of buckets of width w
//                   indexed by floor(dist / w), drained low-to-high.
//                   O(1) push, amortised O(span) pop. Exact for
//                   Dijkstra only when every edge weight is >= w, so
//                   callers gate it on the graph's minimum edge weight
//                   (CsrAdjacency::BucketEligible).
//
// Pops from the heaps are globally nondecreasing; bucket pops are
// nondecreasing only at bucket granularity (PopsSorted() tells callers
// which guarantee they have, MinBound() gives the early-exit bound that
// is valid either way). Entries are never decrease-keyed: duplicates
// are pushed and stale ones skipped by the caller's settled check.
//
// Push rejects NaN distances (returns false and counts them) instead
// of feeding them to a comparator: NaN breaks the strict weak ordering
// std::push_heap requires, which silently corrupts the heap — the
// latent HeapEntry hazard this class retires. Rejections are counted
// (rejected_nan()), so the bug is diagnosable in every build type.

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace itspq {

class FrontierQueue {
 public:
  enum class Kind : uint8_t { kBinaryHeap, kFourAryHeap, kBucketQueue };

  struct Entry {
    double dist;
    uint32_t id;
  };

  /// Bytes one queued entry is accounted as by MemoryTracker callers.
  static constexpr size_t kEntryBytes = sizeof(Entry);

  FrontierQueue() = default;

  /// Starts a new search under a heap discipline. Keeps the backing
  /// vector's capacity — contexts reuse one queue across queries.
  void ResetHeap(Kind kind = Kind::kFourAryHeap) {
    assert(kind != Kind::kBucketQueue);
    kind_ = kind;
    heap_.clear();
    size_ = 0;
    rejected_nan_ = 0;
  }

  /// Starts a new search under the bucket discipline with buckets of
  /// `bucket_width` (> 0, finite — callers gate on BucketEligible).
  /// Bucket storage is retained across searches; only the cursor and
  /// occupancy reset.
  void ResetBuckets(double bucket_width) {
    assert(bucket_width > 0 && std::isfinite(bucket_width));
    kind_ = Kind::kBucketQueue;
    width_ = bucket_width;
    inv_width_ = 1.0 / bucket_width;
    cur_bucket_ = 0;
    if (buckets_.empty()) buckets_.resize(kInitialBuckets);
    ring_mask_ = buckets_.size() - 1;
    for (auto& b : buckets_) b.clear();
    overflow_.clear();
    size_ = 0;
    rejected_nan_ = 0;
  }

  /// Enqueues (dist, id). Returns false — rejecting the entry — when
  /// `dist` is NaN; +inf is accepted (parked in an overflow list under
  /// the bucket discipline and popped after every finite entry).
  bool Push(double dist, uint32_t id) {
    if (std::isnan(dist)) {
      // Rejected, not asserted: the regression test drives this path in
      // every build type, and a counted rejection is diagnosable where
      // an aborted Debug run is not.
      ++rejected_nan_;
      return false;
    }
    if (kind_ != Kind::kBucketQueue) {
      heap_.push_back(Entry{dist, id});
      SiftUp(heap_.size() - 1);
    } else if (!std::isfinite(dist)) {
      overflow_.push_back(Entry{dist, id});
    } else {
      // floor(dist / w), clamped below to the drain cursor: a push can
      // never land behind it when weights >= width, but floating-point
      // slack gets folded into the current bucket instead of lost.
      uint64_t b = static_cast<uint64_t>(dist * inv_width_);
      if (b < cur_bucket_) b = cur_bucket_;
      if (b - cur_bucket_ >= buckets_.size()) Grow(b);
      // Ring slot by mask: the bucket count is always a power of two
      // (kInitialBuckets, doubled by Grow), and a 64-bit modulo by a
      // runtime divisor costs more than the rest of the push combined.
      buckets_[static_cast<size_t>(b & ring_mask_)].push_back(
          Entry{dist, id});
    }
    ++size_;
    return true;
  }

  /// Dequeues the minimum (heaps) or an entry of the lowest occupied
  /// bucket (bucket queue). False when empty.
  bool Pop(double* dist, uint32_t* id) {
    if (size_ == 0) return false;
    --size_;
    if (kind_ != Kind::kBucketQueue) {
      *dist = heap_[0].dist;
      *id = heap_[0].id;
      heap_[0] = heap_.back();
      heap_.pop_back();
      if (!heap_.empty()) SiftDown(0);
      return true;
    }
    const size_t finite = size_ + 1 - overflow_.size();
    if (finite == 0) {
      *dist = overflow_.back().dist;
      *id = overflow_.back().id;
      overflow_.pop_back();
      return true;
    }
    std::vector<Entry>* bucket =
        &buckets_[static_cast<size_t>(cur_bucket_ & ring_mask_)];
    while (bucket->empty()) {
      ++cur_bucket_;
      bucket = &buckets_[static_cast<size_t>(cur_bucket_ & ring_mask_)];
    }
    *dist = bucket->back().dist;
    *id = bucket->back().id;
    bucket->pop_back();
    return true;
  }

  bool Empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// True when pops are globally nondecreasing in dist. The bucket
  /// queue only guarantees nondecreasing bucket indices, so exact
  /// early-exit ("every later label is longer") must use MinBound().
  bool PopsSorted() const { return kind_ != Kind::kBucketQueue; }

  /// A lower bound on every entry still queued; +inf when empty. Heaps:
  /// the top. Bucket queue: the drain cursor's bucket floor.
  double MinBound() const {
    if (size_ == 0) return std::numeric_limits<double>::infinity();
    if (kind_ != Kind::kBucketQueue) return heap_[0].dist;
    if (size_ == overflow_.size()) {
      return std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(cur_bucket_) * width_;
  }

  Kind kind() const { return kind_; }

  /// NaN pushes rejected since the last Reset*.
  size_t rejected_nan() const { return rejected_nan_; }

  size_t MemoryUsage() const {
    size_t total = heap_.capacity() * sizeof(Entry) +
                   overflow_.capacity() * sizeof(Entry) +
                   buckets_.capacity() * sizeof(buckets_[0]);
    for (const auto& b : buckets_) total += b.capacity() * sizeof(Entry);
    return total;
  }

 private:
  static constexpr size_t kInitialBuckets = 64;

  size_t Arity() const { return kind_ == Kind::kBinaryHeap ? 2 : 4; }

  void SiftUp(size_t i) {
    const size_t d = Arity();
    const Entry e = heap_[i];
    while (i > 0) {
      const size_t p = (i - 1) / d;
      if (heap_[p].dist <= e.dist) break;
      heap_[i] = heap_[p];
      i = p;
    }
    heap_[i] = e;
  }

  void SiftDown(size_t i) {
    const size_t d = Arity();
    const size_t n = heap_.size();
    const Entry e = heap_[i];
    for (;;) {
      const size_t first = i * d + 1;
      if (first >= n) break;
      size_t best = first;
      const size_t last = first + d < n ? first + d : n;
      for (size_t c = first + 1; c < last; ++c) {
        if (heap_[c].dist < heap_[best].dist) best = c;
      }
      if (e.dist <= heap_[best].dist) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  /// Widens the ring until abs bucket `target` fits alongside the drain
  /// cursor, re-slotting occupied buckets (their abs index is recovered
  /// from any member's dist — all of a bucket's entries share it).
  void Grow(uint64_t target) {
    size_t want = buckets_.size();
    while (target - cur_bucket_ >= want) want *= 2;
    std::vector<std::vector<Entry>> wider(want);
    const uint64_t want_mask = want - 1;
    for (auto& bucket : buckets_) {
      if (bucket.empty()) continue;
      uint64_t b = static_cast<uint64_t>(bucket.front().dist * inv_width_);
      if (b < cur_bucket_) b = cur_bucket_;
      std::vector<Entry>& slot = wider[static_cast<size_t>(b & want_mask)];
      if (slot.empty()) {
        slot = std::move(bucket);
      } else {
        slot.insert(slot.end(), bucket.begin(), bucket.end());
      }
    }
    buckets_ = std::move(wider);
    ring_mask_ = want_mask;
  }

  Kind kind_ = Kind::kFourAryHeap;
  std::vector<Entry> heap_;

  // Bucket state. `cur_bucket_` is the absolute index of the lowest
  // possibly-occupied bucket; ring slot = abs & ring_mask_ (the bucket
  // count stays a power of two), valid because Push grows the ring
  // before an abs index could collide with a live lower one.
  std::vector<std::vector<Entry>> buckets_;
  std::vector<Entry> overflow_;  // +inf entries, drained after finite ones
  double width_ = 1.0;
  double inv_width_ = 1.0;
  uint64_t cur_bucket_ = 0;
  uint64_t ring_mask_ = kInitialBuckets - 1;

  size_t size_ = 0;
  size_t rejected_nan_ = 0;
};

}  // namespace itspq

#endif  // ITSPQ_ITGRAPH_FRONTIER_QUEUE_H_

#ifndef ITSPQ_ITGRAPH_DOOR_SEARCH_H_
#define ITSPQ_ITGRAPH_DOOR_SEARCH_H_

// Internal: plain (time-oblivious) Dijkstra over the door graph, shared
// by the D2D index, the NTV/SNAP routers, and the query generator.
// The temporal-variation-aware search lives in query/strategies.h
// (ItgRouter); this one only supports a static open-door mask.
//
// Not part of the stable public API — symbols live in itspq::internal.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "itgraph/door_mask.h"
#include "itgraph/frontier_queue.h"
#include "itgraph/itgraph.h"
#include "venue/venue.h"

namespace itspq {
namespace internal {

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// Per-door labels of one Dijkstra run, generation-stamped: a label is
/// valid only when its stamp matches the run's generation, so starting
/// a new search over the same arrays costs one counter bump instead of
/// three O(doors) assigns. Read through Dist/Parent/Settled — the raw
/// vectors hold stale garbage at unstamped indices (path walks may read
/// them directly: every door on a found path was labelled this run).
struct DoorSearchResult {
  std::vector<double> dist;
  std::vector<DoorId> parent;
  /// label_stamp[i] == generation  <=>  dist/parent[i] are this run's.
  std::vector<uint32_t> label_stamp;
  /// settled_stamp[i] == generation  <=>  door i was settled this run.
  std::vector<uint32_t> settled_stamp;
  uint32_t generation = 0;
  /// The frontier, owned here so SNAP/NTV contexts reuse its storage.
  FrontierQueue frontier;

  double Dist(size_t i) const {
    return label_stamp[i] == generation ? dist[i] : kInfDistance;
  }
  DoorId Parent(size_t i) const {
    return label_stamp[i] == generation ? parent[i] : kInvalidDoor;
  }
  bool Settled(size_t i) const { return settled_stamp[i] == generation; }

  void Label(size_t i, double d, DoorId from) {
    dist[i] = d;
    parent[i] = from;
    label_stamp[i] = generation;
  }

  /// Opens a new run over `n` doors: O(1) generation bump, O(n) only on
  /// first use, a size change, or the (once per 2^32 runs) stamp wrap.
  void PrepareForSearch(size_t n) {
    if (dist.size() != n) {
      dist.assign(n, kInfDistance);
      parent.assign(n, kInvalidDoor);
      label_stamp.assign(n, 0);
      settled_stamp.assign(n, 0);
      generation = 0;
    }
    if (++generation == 0) {
      std::fill(label_stamp.begin(), label_stamp.end(), 0);
      std::fill(settled_stamp.begin(), settled_stamp.end(), 0);
      generation = 1;
    }
  }
};

/// Multi-source Dijkstra over the implicit door graph. `sources` seed
/// doors with initial offsets (e.g. the walk from a query point to each
/// door of its partition). Doors whose `open_mask` bit is clear are
/// skipped entirely; pass nullptr to treat every door as open. Writes
/// into `out`, reusing its vectors' capacity — how QueryContext
/// amortises allocations across queries.
void DoorDijkstra(const ItGraph& graph,
                  const std::vector<std::pair<DoorId, double>>& sources,
                  const DoorMask* open_mask, DoorSearchResult* out);

/// Convenience overload returning a fresh result.
inline DoorSearchResult DoorDijkstra(
    const ItGraph& graph,
    const std::vector<std::pair<DoorId, double>>& sources,
    const DoorMask* open_mask) {
  DoorSearchResult result;
  DoorDijkstra(graph, sources, open_mask, &result);
  return result;
}

/// How a free-standing indoor point connects to the door graph: its
/// containing partitions and the straight-line offset to each of their
/// doors.
struct PointAttachment {
  std::vector<PartitionId> partitions;
  std::vector<std::pair<DoorId, double>> door_offsets;
};

/// Errors with kInvalidArgument when the point lies outside every
/// partition of the venue.
StatusOr<PointAttachment> AttachPoint(const Venue& venue,
                                      const IndoorPoint& point);

/// True when the two attachments share a partition (direct in-partition
/// walk possible, no door needed).
bool SharesPartition(const PointAttachment& a, const PointAttachment& b);

/// Best way to finish a search at `pt`: the direct in-partition walk
/// (when `src` and `dst` share a partition) against entering through
/// each of `dst`'s doors, where `cost_to_door(door)` is the search's
/// cost of reaching that door. Returns {total metres, entry door used}
/// with door == kInvalidDoor for the direct walk, and
/// {kInfDistance, kInvalidDoor} when nothing completes. Every consumer
/// of a door-graph search (engine agreement checks, baselines, D2D
/// index, workload generator) must share this definition — the bench
/// comparisons assume identical completion semantics.
template <typename CostToDoorFn>
std::pair<double, DoorId> BestCompletion(const PointAttachment& src,
                                         const PointAttachment& dst,
                                         const Point2d& ps, const Point2d& pt,
                                         CostToDoorFn&& cost_to_door) {
  double best =
      SharesPartition(src, dst) ? EuclideanDistance(ps, pt) : kInfDistance;
  DoorId last = kInvalidDoor;
  for (const auto& [door, offset] : dst.door_offsets) {
    const double total = cost_to_door(door) + offset;
    if (total < best) {
      best = total;
      last = door;
    }
  }
  return {best, last};
}

}  // namespace internal
}  // namespace itspq

#endif  // ITSPQ_ITGRAPH_DOOR_SEARCH_H_

#ifndef ITSPQ_ITGRAPH_GRAPH_UPDATE_H_
#define ITSPQ_ITGRAPH_GRAPH_UPDATE_H_

// Graph_Update (paper Alg. 3): deriving the reduced graph for one
// checkpoint interval — the subgraph of doors whose ATIs are applicable
// throughout that interval. Door applicability is constant inside an
// interval (checkpoints are exactly the ATI boundaries), so sampling
// the interval midpoint is exact.
//
// A GraphSnapshot is a plain bit-packed open-door mask; the routers
// interpret it. Two builders produce one:
//   BuildSnapshot       — from G0, probing every door (Alg. 3 as
//                         published).
//   BuildSnapshotDelta  — from an adjacent interval's snapshot, flipping
//                         only the doors whose applicability changes at
//                         the shared checkpoint (BoundaryFlipIndex).
// The memoising, budgeted store over these builders is SnapshotStore
// (snapshot_store.h).

#include <cstddef>

#include "itgraph/checkpoints.h"
#include "itgraph/door_mask.h"
#include "itgraph/itgraph.h"

namespace itspq {

/// The reduced graph for one checkpoint interval.
struct GraphSnapshot {
  size_t interval_index = 0;
  /// Bit d set iff door d is applicable during the interval.
  DoorMask open;
  size_t open_door_count = 0;

  bool IsOpen(DoorId d) const { return open.Test(d); }

  size_t MemoryUsage() const { return open.MemoryUsage(); }

  /// Struct + mask bytes — the unit SnapshotStore budgets charge in
  /// (tests size eviction budgets in multiples of this).
  size_t TotalBytes() const { return sizeof(GraphSnapshot) + MemoryUsage(); }
};

/// Derives the reduced graph for interval `interval_index` of `cps`
/// from the full graph G0.
GraphSnapshot BuildSnapshot(const ItGraph& graph, const CheckpointSet& cps,
                            size_t interval_index);

/// Derives interval `to_interval` from `from`, an already-built snapshot
/// of an ADJACENT interval (|from.interval_index - to_interval| == 1),
/// by toggling exactly the doors in `flips`' list for the shared
/// boundary — O(flip-list size) instead of O(doors). `flips` must be
/// built from the same (graph, cps) pair. When `doors_touched` is
/// non-null it receives the number of door bits applied, which equals
/// the boundary's flip-list size. A non-adjacent `from` (an API misuse;
/// asserts in debug builds) falls back to the from-G0 build, touching
/// every door.
GraphSnapshot BuildSnapshotDelta(const ItGraph& graph,
                                 const CheckpointSet& cps,
                                 const BoundaryFlipIndex& flips,
                                 const GraphSnapshot& from,
                                 size_t to_interval,
                                 size_t* doors_touched = nullptr);

}  // namespace itspq

#endif  // ITSPQ_ITGRAPH_GRAPH_UPDATE_H_

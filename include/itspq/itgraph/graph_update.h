#ifndef ITSPQ_ITGRAPH_GRAPH_UPDATE_H_
#define ITSPQ_ITGRAPH_GRAPH_UPDATE_H_

// Graph_Update (paper Alg. 3): deriving the reduced graph for one
// checkpoint interval — the subgraph of doors whose ATIs are applicable
// throughout that interval. Door applicability is constant inside an
// interval (checkpoints are exactly the ATI boundaries), so sampling
// the interval midpoint is exact.
//
// A GraphSnapshot is a plain open-door mask; the routers interpret it.
// SnapshotCache memoises one snapshot per interval — the extension
// measured against rebuild-from-G0 in ablation_snapshot_cache. The
// cache is safe to share across threads: routers query it concurrently
// from const Route() calls.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "itgraph/checkpoints.h"
#include "itgraph/itgraph.h"

namespace itspq {

/// The reduced graph for one checkpoint interval.
struct GraphSnapshot {
  size_t interval_index = 0;
  /// open[d] != 0 iff door d is applicable during the interval.
  std::vector<uint8_t> open;
  size_t open_door_count = 0;

  bool IsOpen(DoorId d) const { return open[static_cast<size_t>(d)] != 0; }

  size_t MemoryUsage() const { return open.capacity() * sizeof(uint8_t); }
};

/// Derives the reduced graph for interval `interval_index` of `cps`
/// from the full graph G0.
GraphSnapshot BuildSnapshot(const ItGraph& graph, const CheckpointSet& cps,
                            size_t interval_index);

/// Per-interval memoisation of BuildSnapshot, safe for concurrent use.
/// `Get` builds on first access and reuses afterwards; `build_count`
/// exposes how many real Graph_Update derivations happened. Lookups of
/// an already-built interval are a single atomic load; only the first
/// derivation of an interval takes the mutex. Returned references stay
/// valid for the cache's lifetime.
class SnapshotCache {
 public:
  SnapshotCache(const ItGraph& graph, const CheckpointSet& cps);
  ~SnapshotCache();

  SnapshotCache(const SnapshotCache&) = delete;
  SnapshotCache& operator=(const SnapshotCache&) = delete;

  /// Thread-safe. When `built_now` is non-null it is set to whether
  /// this call performed the Graph_Update derivation (so callers can
  /// attribute builds to the query that triggered them).
  const GraphSnapshot& Get(size_t interval_index,
                           bool* built_now = nullptr) const;

  size_t build_count() const {
    return build_count_.load(std::memory_order_relaxed);
  }

  size_t MemoryUsage() const;

 private:
  const ItGraph* graph_;
  const CheckpointSet* cps_;
  /// One atomically-published slot per interval; written once under
  /// `build_mu_`, read lock-free afterwards. Sized at construction and
  /// never resized, so loaded pointers are stable.
  mutable std::vector<std::atomic<const GraphSnapshot*>> slots_;
  mutable std::mutex build_mu_;
  mutable std::atomic<size_t> build_count_{0};
};

}  // namespace itspq

#endif  // ITSPQ_ITGRAPH_GRAPH_UPDATE_H_

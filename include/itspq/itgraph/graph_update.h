#ifndef ITSPQ_ITGRAPH_GRAPH_UPDATE_H_
#define ITSPQ_ITGRAPH_GRAPH_UPDATE_H_

// Graph_Update (paper Alg. 3): deriving the reduced graph for one
// checkpoint interval — the subgraph of doors whose ATIs are applicable
// throughout that interval. Door applicability is constant inside an
// interval (checkpoints are exactly the ATI boundaries), so sampling
// the interval midpoint is exact.
//
// A GraphSnapshot is a plain open-door mask; the engines interpret it.
// SnapshotCache memoises one snapshot per interval — the extension
// measured against rebuild-from-G0 in ablation_snapshot_cache.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "itgraph/checkpoints.h"
#include "itgraph/itgraph.h"

namespace itspq {

/// The reduced graph for one checkpoint interval.
struct GraphSnapshot {
  size_t interval_index = 0;
  /// open[d] != 0 iff door d is applicable during the interval.
  std::vector<uint8_t> open;
  size_t open_door_count = 0;

  bool IsOpen(DoorId d) const { return open[static_cast<size_t>(d)] != 0; }

  size_t MemoryUsage() const { return open.capacity() * sizeof(uint8_t); }
};

/// Derives the reduced graph for interval `interval_index` of `cps`
/// from the full graph G0.
GraphSnapshot BuildSnapshot(const ItGraph& graph, const CheckpointSet& cps,
                            size_t interval_index);

/// Per-interval memoisation of BuildSnapshot. `Get` builds on first
/// access and reuses afterwards; `build_count` exposes how many real
/// Graph_Update derivations happened.
class SnapshotCache {
 public:
  SnapshotCache(const ItGraph& graph, const CheckpointSet& cps)
      : graph_(&graph), cps_(&cps), slots_(cps.NumIntervals()) {}

  const GraphSnapshot& Get(size_t interval_index) {
    std::optional<GraphSnapshot>& slot = slots_[interval_index];
    if (!slot.has_value()) {
      slot = BuildSnapshot(*graph_, *cps_, interval_index);
      ++build_count_;
    }
    return *slot;
  }

  size_t build_count() const { return build_count_; }

  size_t MemoryUsage() const {
    size_t total = slots_.capacity() * sizeof(slots_[0]);
    for (const auto& slot : slots_) {
      if (slot.has_value()) total += slot->MemoryUsage();
    }
    return total;
  }

 private:
  const ItGraph* graph_;
  const CheckpointSet* cps_;
  std::vector<std::optional<GraphSnapshot>> slots_;
  size_t build_count_ = 0;
};

}  // namespace itspq

#endif  // ITSPQ_ITGRAPH_GRAPH_UPDATE_H_

#ifndef ITSPQ_ITGRAPH_CHECKPOINTS_H_
#define ITSPQ_ITGRAPH_CHECKPOINTS_H_

// Temporal-variation checkpoints (paper §II-B): the sorted set T of
// times of day at which some door's applicability flips. The |T|
// checkpoints cut the day into |T|+1 intervals inside which the reduced
// graph is constant — the invariant Graph_Update (graph_update.h) and
// the asynchronous checkers rely on.
//
// BoundaryFlipIndex materialises the converse view: per checkpoint,
// WHICH doors flip there. Adjacent intervals differ in exactly those
// doors, which is what lets BuildSnapshotDelta derive interval k from
// interval k∓1 by touching |flips| doors instead of all of them.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "venue/geometry.h"

namespace itspq {

class ItGraph;

class CheckpointSet {
 public:
  /// An empty set: the whole day is one interval.
  CheckpointSet() = default;

  /// Validates, sorts, and dedups `times` (each must lie in
  /// (0, kSecondsPerDay)). Errors on out-of-range values.
  static StatusOr<CheckpointSet> FromTimes(std::vector<double> times);

  /// Collects the ATI boundaries of every door in `graph`. Cannot fail:
  /// graph ATIs are normalised by construction.
  static CheckpointSet FromGraph(const ItGraph& graph);

  /// The first checkpoint strictly after time-of-day `tod`, or
  /// kSecondsPerDay when `tod` is at/after the last checkpoint. The
  /// first checkpoint after `tod` closes the interval containing it, so
  /// this is IntervalIndexOf's upper boundary.
  double NextCheckpoint(double tod) const {
    const size_t i = IntervalIndexOf(tod);
    return i == times_.size() ? kSecondsPerDay : times_[i];
  }

  /// Index in [0, NumIntervals()) of the constant-graph interval
  /// containing time-of-day `tod`. Interval i spans
  /// [times[i-1], times[i]) with times[-1] = 0 and times[|T|] = 86400.
  size_t IntervalIndexOf(double tod) const {
    return static_cast<size_t>(
        std::upper_bound(times_.begin(), times_.end(), tod) - times_.begin());
  }

  /// Midpoint of interval `index` — a representative time at which to
  /// sample door applicability for that interval.
  double IntervalMidpoint(size_t index) const {
    const double lo = index == 0 ? 0.0 : times_[index - 1];
    const double hi = index == times_.size() ? kSecondsPerDay : times_[index];
    return (lo + hi) * 0.5;
  }

  /// Inclusive lower bound of interval `index`, for membership tests
  /// that cache the current interval instead of re-running the
  /// IntervalIndexOf binary search per probe.
  double IntervalStart(size_t index) const {
    return index == 0 ? 0.0 : times_[index - 1];
  }
  /// Exclusive upper bound of interval `index`.
  double IntervalEnd(size_t index) const {
    return index == times_.size() ? kSecondsPerDay : times_[index];
  }

  size_t NumCheckpoints() const { return times_.size(); }
  size_t NumIntervals() const { return times_.size() + 1; }
  const std::vector<double>& times() const { return times_; }

 private:
  std::vector<double> times_;  // sorted, unique, all in (0, 86400)
};

/// For each checkpoint boundary b — the shared edge between intervals b
/// and b+1, at times()[b] — the doors whose applicability differs across
/// it. Computed once per (graph, checkpoint set) pair; CSR layout so a
/// venue-wide index is two flat vectors. Immutable after Build, safe to
/// share across threads.
class BoundaryFlipIndex {
 public:
  BoundaryFlipIndex() = default;

  /// `cps` must be the checkpoint set of `graph` (every ATI boundary a
  /// checkpoint); under that invariant every door's applicability is
  /// constant inside an interval and the midpoint probe is exact.
  static BoundaryFlipIndex Build(const ItGraph& graph,
                                 const CheckpointSet& cps);

  /// Builds the CSR directly from per-boundary flip lists — the update
  /// plane's incremental path, which maintains a time → contributing
  /// doors ledger instead of re-probing every (interval, door) pair.
  /// For a graph of normalised AtiSets every interior ATI boundary is a
  /// genuine applicability flip, so `per_boundary[b]` (sorted ascending
  /// by door) must equal Build()'s list for boundary b; callers assert
  /// that equivalence in tests.
  static BoundaryFlipIndex FromLists(
      const std::vector<std::vector<DoorId>>& per_boundary);

  size_t NumBoundaries() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }

  /// Doors flipping at boundary `b`, as a [begin, end) range into the
  /// flat door array.
  const DoorId* FlipsBegin(size_t b) const { return doors_.data() + offsets_[b]; }
  const DoorId* FlipsEnd(size_t b) const {
    return doors_.data() + offsets_[b + 1];
  }
  size_t NumFlips(size_t b) const { return offsets_[b + 1] - offsets_[b]; }

  /// Total flip entries across all boundaries.
  size_t TotalFlips() const { return doors_.size(); }

  size_t MemoryUsage() const {
    return offsets_.capacity() * sizeof(size_t) +
           doors_.capacity() * sizeof(DoorId);
  }

 private:
  std::vector<size_t> offsets_;  // NumBoundaries() + 1 entries
  std::vector<DoorId> doors_;    // concatenated per-boundary flip lists
};

}  // namespace itspq

#endif  // ITSPQ_ITGRAPH_CHECKPOINTS_H_

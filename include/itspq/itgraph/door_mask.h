#ifndef ITSPQ_ITGRAPH_DOOR_MASK_H_
#define ITSPQ_ITGRAPH_DOOR_MASK_H_

// A bit-packed open-door set, indexed by DoorId. One bit per door
// instead of the byte-per-door mask GraphSnapshot used to carry — 8x
// smaller, which is what makes hundreds of shards x hundreds of
// resident intervals fit a serving process's memory budget, and
// popcount-friendly for open_door_count.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "venue/geometry.h"

namespace itspq {

class DoorMask {
 public:
  DoorMask() = default;

  /// All `num_doors` bits cleared.
  explicit DoorMask(size_t num_doors)
      : num_bits_(num_doors), words_((num_doors + 63) / 64, 0) {}

  bool Test(DoorId d) const {
    const size_t i = static_cast<size_t>(d);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void Set(DoorId d) {
    const size_t i = static_cast<size_t>(d);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void Reset(DoorId d) {
    const size_t i = static_cast<size_t>(d);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  /// Flips bit `d` and returns its new value — the one-touch primitive
  /// the delta snapshot builder applies per flip-list entry.
  bool Flip(DoorId d) {
    const size_t i = static_cast<size_t>(d);
    words_[i >> 6] ^= uint64_t{1} << (i & 63);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Number of set bits, one popcount per word.
  size_t Count() const {
    size_t total = 0;
    for (uint64_t word : words_) {
#if defined(__GNUC__) || defined(__clang__)
      total += static_cast<size_t>(__builtin_popcountll(word));
#else
      while (word != 0) {
        word &= word - 1;
        ++total;
      }
#endif
    }
    return total;
  }

  /// Calls `fn(DoorId)` for every bit that differs from `other` (same
  /// size required), in ascending door order — one XOR + count-trailing-
  /// zeros sweep per word, which is how BoundaryFlipIndex diffs adjacent
  /// intervals without re-probing ATIs.
  template <typename Fn>
  void ForEachDifference(const DoorMask& other, Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t diff = words_[w] ^ other.words_[w];
      while (diff != 0) {
#if defined(__GNUC__) || defined(__clang__)
        const int bit = __builtin_ctzll(diff);
#else
        int bit = 0;
        while (((diff >> bit) & 1u) == 0) ++bit;
#endif
        fn(static_cast<DoorId>(w * 64 + static_cast<size_t>(bit)));
        diff &= diff - 1;
      }
    }
  }

  /// Calls `fn(k)` for every k in [0, count) whose door ids[k] has its
  /// bit set — the masked-neighbour scan of the CSR relaxation loop.
  /// CSR neighbour segments are ascending and partition door ids are
  /// clustered, so the current 64-bit word is cached across iterations:
  /// one word load per ~64 doors of a partition instead of one per
  /// neighbour.
  template <typename Fn>
  void ForEachSetAmong(const uint32_t* ids, size_t count, Fn&& fn) const {
    size_t cached = static_cast<size_t>(-1);
    uint64_t word = 0;
    for (size_t k = 0; k < count; ++k) {
      const size_t i = ids[k];
      const size_t w = i >> 6;
      if (w != cached) {
        cached = w;
        word = words_[w];
      }
      if ((word >> (i & 63)) & 1u) fn(k);
    }
  }

  /// Calls `fn(DoorId)` for every set bit in [lo, hi), ascending — a
  /// word-wise popcount/ctz sweep that skips empty words entirely
  /// (dense-range companion of ForEachSetAmong; benchmarked against the
  /// per-bit Test loop in BM_MaskedNeighborScan).
  template <typename Fn>
  void ForEachSetInRange(size_t lo, size_t hi, Fn&& fn) const {
    if (hi > num_bits_) hi = num_bits_;
    if (lo >= hi) return;
    for (size_t w = lo >> 6; w <= (hi - 1) >> 6; ++w) {
      uint64_t word = words_[w];
      if (w == lo >> 6) word &= ~uint64_t{0} << (lo & 63);
      if (w == (hi - 1) >> 6 && (hi & 63) != 0) {
        word &= (uint64_t{1} << (hi & 63)) - 1;
      }
      while (word != 0) {
#if defined(__GNUC__) || defined(__clang__)
        const int bit = __builtin_ctzll(word);
#else
        int bit = 0;
        while (((word >> bit) & 1u) == 0) ++bit;
#endif
        fn(static_cast<DoorId>(w * 64 + static_cast<size_t>(bit)));
        word &= word - 1;
      }
    }
  }

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  size_t MemoryUsage() const { return words_.capacity() * sizeof(uint64_t); }

  /// Bit-identical comparison — what the eviction-correctness tests
  /// assert after an evicted interval is rebuilt.
  friend bool operator==(const DoorMask& a, const DoorMask& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }
  friend bool operator!=(const DoorMask& a, const DoorMask& b) {
    return !(a == b);
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace itspq

#endif  // ITSPQ_ITGRAPH_DOOR_MASK_H_

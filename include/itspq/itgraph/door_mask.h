#ifndef ITSPQ_ITGRAPH_DOOR_MASK_H_
#define ITSPQ_ITGRAPH_DOOR_MASK_H_

// A bit-packed open-door set, indexed by DoorId. One bit per door
// instead of the byte-per-door mask GraphSnapshot used to carry — 8x
// smaller, which is what makes hundreds of shards x hundreds of
// resident intervals fit a serving process's memory budget, and
// popcount-friendly for open_door_count.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "venue/geometry.h"

namespace itspq {

class DoorMask {
 public:
  DoorMask() = default;

  /// All `num_doors` bits cleared.
  explicit DoorMask(size_t num_doors)
      : num_bits_(num_doors), words_((num_doors + 63) / 64, 0) {}

  bool Test(DoorId d) const {
    const size_t i = static_cast<size_t>(d);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void Set(DoorId d) {
    const size_t i = static_cast<size_t>(d);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }

  void Reset(DoorId d) {
    const size_t i = static_cast<size_t>(d);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  /// Flips bit `d` and returns its new value — the one-touch primitive
  /// the delta snapshot builder applies per flip-list entry.
  bool Flip(DoorId d) {
    const size_t i = static_cast<size_t>(d);
    words_[i >> 6] ^= uint64_t{1} << (i & 63);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Number of set bits, one popcount per word.
  size_t Count() const {
    size_t total = 0;
    for (uint64_t word : words_) {
#if defined(__GNUC__) || defined(__clang__)
      total += static_cast<size_t>(__builtin_popcountll(word));
#else
      while (word != 0) {
        word &= word - 1;
        ++total;
      }
#endif
    }
    return total;
  }

  /// Calls `fn(DoorId)` for every bit that differs from `other` (same
  /// size required), in ascending door order — one XOR + count-trailing-
  /// zeros sweep per word, which is how BoundaryFlipIndex diffs adjacent
  /// intervals without re-probing ATIs.
  template <typename Fn>
  void ForEachDifference(const DoorMask& other, Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t diff = words_[w] ^ other.words_[w];
      while (diff != 0) {
#if defined(__GNUC__) || defined(__clang__)
        const int bit = __builtin_ctzll(diff);
#else
        int bit = 0;
        while (((diff >> bit) & 1u) == 0) ++bit;
#endif
        fn(static_cast<DoorId>(w * 64 + static_cast<size_t>(bit)));
        diff &= diff - 1;
      }
    }
  }

  size_t size() const { return num_bits_; }
  bool empty() const { return num_bits_ == 0; }

  size_t MemoryUsage() const { return words_.capacity() * sizeof(uint64_t); }

  /// Bit-identical comparison — what the eviction-correctness tests
  /// assert after an evicted interval is rebuilt.
  friend bool operator==(const DoorMask& a, const DoorMask& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }
  friend bool operator!=(const DoorMask& a, const DoorMask& b) {
    return !(a == b);
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace itspq

#endif  // ITSPQ_ITGRAPH_DOOR_MASK_H_

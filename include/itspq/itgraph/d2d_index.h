#ifndef ITSPQ_ITGRAPH_D2D_INDEX_H_
#define ITSPQ_ITGRAPH_D2D_INDEX_H_

// Materialized all-pairs door-to-door distance index — the pre-computed
// approach the paper's introduction argues against. Distances are
// computed once on the static graph (temporal variations ignored), so
// entries go stale as doors close: SampleStaleness quantifies how many
// materialized routes are wrong (detour needed) or dead (no route) at a
// given time of day.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "itgraph/checkpoints.h"
#include "itgraph/itgraph.h"

namespace itspq {

/// Answer to a static point-to-point distance lookup.
struct D2dAnswer {
  bool found = false;
  double distance_m = 0;
};

class D2dIndex {
 public:
  /// Runs one static Dijkstra per door to materialise the full n x n
  /// distance matrix. Errors when the graph has no doors.
  static StatusOr<D2dIndex> Build(const ItGraph& graph);

  /// Door-to-door materialised distance (kInfDistance-like huge value
  /// replaced by `found = false` in point queries). No temporal checks.
  double DoorDistance(DoorId from, DoorId to) const {
    return matrix_[static_cast<size_t>(from) * num_doors_ +
                   static_cast<size_t>(to)];
  }

  /// Static point query: best of direct in-partition walk and
  /// door-to-door materialised routes. Errors when either point lies
  /// outside the venue.
  StatusOr<D2dAnswer> Query(const IndoorPoint& ps,
                            const IndoorPoint& pt) const;

  struct Staleness {
    size_t sampled = 0;
    /// Entries whose true distance at the probe time differs (detour).
    size_t changed = 0;
    /// Entries with no valid route at the probe time.
    size_t unreachable = 0;

    double InvalidFraction() const {
      return sampled == 0
                 ? 0.0
                 : static_cast<double>(changed + unreachable) /
                       static_cast<double>(sampled);
    }
  };

  /// Re-solves `samples` random materialised door pairs on the reduced
  /// graph at time `t` and reports how many index entries are invalid.
  Staleness SampleStaleness(Instant t, size_t samples, uint64_t seed) const;

  size_t NumDoors() const { return num_doors_; }
  size_t MemoryUsage() const { return matrix_.capacity() * sizeof(double); }

 private:
  explicit D2dIndex(const ItGraph& graph) : graph_(&graph) {}

  const ItGraph* graph_;
  size_t num_doors_ = 0;
  std::vector<double> matrix_;  // row-major n x n, inf when unreachable
  CheckpointSet checkpoints_;
};

}  // namespace itspq

#endif  // ITSPQ_ITGRAPH_D2D_INDEX_H_

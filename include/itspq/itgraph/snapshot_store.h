#ifndef ITSPQ_ITGRAPH_SNAPSHOT_STORE_H_
#define ITSPQ_ITGRAPH_SNAPSHOT_STORE_H_

// The budgeted, policy-pluggable memoisation layer over Graph_Update.
//
// SnapshotStore replaces the grow-forever SnapshotCache: it owns a byte
// budget and an EvictionPolicy, hands snapshots out as
// shared_ptr<const GraphSnapshot> so concurrent Route() readers keep a
// pinned mask alive across an eviction, and fills misses with the cheap
// delta builder (BuildSnapshotDelta from a resident adjacent interval)
// whenever it can, falling back to the from-G0 Alg. 3 build.
//
//   SnapshotStoreOptions opts;
//   opts.budget_bytes = 64 << 10;   // 0 = unlimited
//   opts.policy = "lru";            // "keep-all" (default) | "lru" | "clock"
//   SnapshotStore store(graph, cps, opts);
//   std::shared_ptr<const GraphSnapshot> snap = store.Get(interval);
//
// All methods are thread-safe. Get() serialises on one mutex; callers
// on the query hot path pin the returned shared_ptr per interval in
// their QueryContext so the lock is taken once per (query, interval),
// not per relaxation.

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "itgraph/checkpoints.h"
#include "itgraph/graph_update.h"
#include "itgraph/itgraph.h"

namespace itspq {

/// Which resident interval to evict next. Implementations are NOT
/// thread-safe on their own — SnapshotStore calls them under its mutex.
/// Built-ins: "keep-all" (never evicts — the pre-store behaviour),
/// "lru" (least recently Get), "clock" (second-chance ref bits).
class EvictionPolicy {
 public:
  virtual ~EvictionPolicy() = default;

  virtual const std::string& name() const = 0;

  /// Interval `interval` became resident.
  virtual void OnInsert(size_t interval) = 0;
  /// A Get() hit interval `interval`.
  virtual void OnAccess(size_t interval) = 0;
  /// The store evicted interval `interval`.
  virtual void OnEvict(size_t interval) = 0;

  /// Picks the next victim among resident intervals, skipping
  /// `protect` (the interval the current Get() is about to return).
  /// False when nothing is evictable.
  virtual bool ChooseVictim(size_t protect, size_t* victim) = 0;
};

/// Resolves a policy by name for stores over `num_intervals` intervals.
/// kNotFound on an unknown name.
StatusOr<std::unique_ptr<EvictionPolicy>> MakeEvictionPolicy(
    const std::string& name, size_t num_intervals);

class SnapshotStore;

/// Marks a new interval with no carry source in SnapshotWarmStart's plan.
inline constexpr ptrdiff_t kNoCarrySource = -1;

/// Warm-start state for rebuilding a store (and its router) after an
/// online ATI update — produced by UpdateApplier (update/update_applier.h)
/// from the venue's previous VersionedGraph. All pointers are borrowed
/// for the duration of construction only.
struct SnapshotWarmStart {
  /// The new graph's checkpoint set, derived incrementally by the update
  /// plane. Router adopts it verbatim instead of re-deriving FromGraph.
  const CheckpointSet* checkpoints = nullptr;
  /// Flip index of (new graph, checkpoints), patched incrementally;
  /// copied into the store so the first delta build never pays the
  /// O(intervals x doors) probe.
  const BoundaryFlipIndex* flip_index = nullptr;
  /// The previous version's store; resident snapshots carry across.
  const SnapshotStore* carry_from = nullptr;
  /// Per new interval: the old interval covering the identical time
  /// span, or kNoCarrySource when the span itself changed. Size must be
  /// checkpoints->NumIntervals().
  std::vector<ptrdiff_t> carry_plan;
  /// New interval indices whose open-door set changed across the update
  /// (the changed door's applicability differs there). Their carry-plan
  /// entries are not carried; a resident old snapshot counts as
  /// invalidated instead.
  std::vector<size_t> invalidate;
};

/// Construction knobs; the cache config QueryOptions/router construction
/// carry (query/router.h threads these through RouterBuildOptions).
struct SnapshotStoreOptions {
  /// Resident-snapshot byte ceiling; 0 = unlimited. One snapshot always
  /// stays resident even when it alone exceeds the budget (the caller
  /// needs the mask it just asked for). Only binding under an evicting
  /// policy: "keep-all" never evicts, so a budget combined with it is
  /// advisory (Stats() still reports both numbers) — pick "lru" or
  /// "clock" for an enforced ceiling.
  size_t budget_bytes = 0;
  /// EvictionPolicy name: "keep-all" | "lru" | "clock".
  std::string policy = "keep-all";
  /// Fill misses from a resident adjacent interval via the boundary
  /// flip list instead of rebuilding from G0 when possible.
  bool delta_builds = true;
};

/// Point-in-time counters of one store — also the payload of
/// Router::CacheStats(), which is how ShardStats/CatalogStats surface
/// per-shard cache behaviour.
struct CacheStatsSnapshot {
  /// Empty when the router has no snapshot store at all (e.g. "ntv").
  std::string policy;
  size_t budget_bytes = 0;
  size_t resident_snapshots = 0;
  size_t resident_bytes = 0;
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;
  /// Miss fills, split by builder.
  size_t full_builds = 0;
  size_t delta_builds = 0;
  /// Door bits applied across all delta builds (each delta touches
  /// exactly its boundary's flip-list size).
  size_t delta_door_touches = 0;
  /// Epoch-transition accounting (zero outside the update plane):
  /// resident snapshots whose shared_ptr slot moved verbatim from the
  /// previous version's store, ones re-issued under a shifted interval
  /// index (mask shared logically, never re-derived), and intervals
  /// whose resident snapshot was dropped because its open-door set
  /// changed (ctor warm start or InvalidateIntervals).
  size_t snapshots_carried = 0;
  size_t snapshots_rebased = 0;
  size_t intervals_invalidated = 0;

  size_t builds() const { return full_builds + delta_builds; }

  /// Shard/catalog aggregation (policy strings keep the first non-empty
  /// value, or "mixed" when shards disagree).
  void Accumulate(const CacheStatsSnapshot& other);
};

class SnapshotStore {
 public:
  /// Resolves `options.policy` by name; an unknown name falls back to
  /// "keep-all" (Construct via MakeEvictionPolicy + the policy overload
  /// to surface the error instead). `graph` and `cps` must outlive the
  /// store. A non-null `warm` seeds the store from a previous version:
  /// the flip index is adopted and resident snapshots are carried per
  /// warm->carry_plan (skipping warm->invalidate) — see SnapshotWarmStart.
  SnapshotStore(const ItGraph& graph, const CheckpointSet& cps,
                SnapshotStoreOptions options = SnapshotStoreOptions(),
                const SnapshotWarmStart* warm = nullptr);

  /// Full control: non-null `policy` built for cps.NumIntervals().
  SnapshotStore(const ItGraph& graph, const CheckpointSet& cps,
                SnapshotStoreOptions options,
                std::unique_ptr<EvictionPolicy> policy,
                const SnapshotWarmStart* warm = nullptr);

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// The snapshot for `interval_index`, built on miss (delta from a
  /// resident neighbour when allowed, else from G0). The returned
  /// shared_ptr pins the snapshot: it stays valid after the store
  /// evicts that interval. When `built_now` is non-null it is set to
  /// whether this call performed a Graph_Update derivation.
  std::shared_ptr<const GraphSnapshot> Get(size_t interval_index,
                                           bool* built_now = nullptr) const;

  /// Re-targets the byte budget (0 = unlimited), evicting immediately
  /// if the resident set now overflows. Thread-safe — this is how
  /// VenueCatalog apportions a catalog-wide budget across shards after
  /// the shard routers exist.
  void SetBudget(size_t budget_bytes) const;

  CacheStatsSnapshot Stats() const;

  /// Drops the resident snapshots of exactly `intervals` (indices out of
  /// range or already non-resident are ignored) and returns how many
  /// were actually dropped. Pinned shared_ptrs held by in-flight queries
  /// stay valid — only the store's slots are released. Thread-safe; the
  /// update plane calls this when an ATI change flips a door inside an
  /// interval whose span survived the checkpoint re-derivation.
  size_t InvalidateIntervals(const std::vector<size_t>& intervals) const;

  size_t NumIntervals() const { return slots_.size(); }

  /// Process-unique store identity. Query contexts that retain pins
  /// across a batch record this id so pins are reused only against the
  /// store that issued them — a recycled heap address (epoch swap,
  /// another shard's router) can never alias a previous store.
  uint64_t id() const { return id_; }

  /// Store overhead + resident snapshots + the flip index.
  size_t MemoryUsage() const;

  /// The per-boundary flip lists delta builds apply. Built at most
  /// once, on the first delta-enabled Get (or this call), so stores
  /// that are never read pay nothing.
  const BoundaryFlipIndex& flip_index() const { return EnsureFlips(); }

 private:
  /// Evicts under `mu_` until the resident set fits `budget`, never
  /// evicting `protect`.
  void EvictToFitLocked(size_t budget, size_t protect) const;

  /// Builds flips_ at most once, OUTSIDE mu_ — the O(intervals x doors)
  /// build must never stall concurrent readers of resident snapshots.
  const BoundaryFlipIndex& EnsureFlips() const;

  const ItGraph* graph_;
  const CheckpointSet* cps_;
  const uint64_t id_;
  /// mutable: SetBudget is const (stores live behind const routers once
  /// published) and re-targets budget_bytes under mu_.
  mutable SnapshotStoreOptions options_;
  mutable std::once_flag flips_once_;
  /// Set (release) after flips_ is built; lets MemoryUsage read the
  /// index size without forcing a build.
  mutable std::atomic<bool> flips_built_{false};
  mutable BoundaryFlipIndex flips_;

  mutable std::mutex mu_;
  /// One slot per interval; null when not resident. Guarded by mu_.
  mutable std::vector<std::shared_ptr<const GraphSnapshot>> slots_;
  mutable std::unique_ptr<EvictionPolicy> policy_;
  mutable size_t resident_bytes_ = 0;
  mutable size_t resident_count_ = 0;
  mutable size_t hits_ = 0;
  mutable size_t misses_ = 0;
  mutable size_t evictions_ = 0;
  mutable size_t full_builds_ = 0;
  mutable size_t delta_builds_ = 0;
  mutable size_t delta_door_touches_ = 0;
  mutable size_t carried_ = 0;
  mutable size_t rebased_ = 0;
  mutable size_t invalidated_ = 0;
};

}  // namespace itspq

#endif  // ITSPQ_ITGRAPH_SNAPSHOT_STORE_H_

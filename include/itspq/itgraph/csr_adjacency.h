#ifndef ITSPQ_ITGRAPH_CSR_ADJACENCY_H_
#define ITSPQ_ITGRAPH_CSR_ADJACENCY_H_

// Flat CSR adjacency over the implicit door graph.
//
// The door graph's edges were never materialised: a relaxation walked
// venue.DoorsOf(partition) and read each weight from the partition's
// DistanceMatrix — three pointer hops per neighbour, none of them
// sequential. CsrAdjacency compiles that walk once, at graph build
// time, into index-aligned contiguous arrays so the Dijkstra inner
// loop streams neighbour ids and weights from adjacent cache lines.
//
// Layout: door d owns two segments, 2d and 2d+1, one per entry of
// DoorPartitions(d) in order (a door always records two partitions;
// the segments preserve the exact legacy relaxation order, including
// the duplicate scan when both entries name the same partition and
// partition-visited pruning is off):
//
//   seg_offsets  : 2n+1 offsets into the neighbour pool
//   seg_partition: the partition segment s expands (pruning key)
//   neighbor_ids : the other doors of that partition, ascending
//   neighbor_weights: DistanceUnchecked(d, neighbour), index-aligned
//
// min/max edge weight ride along for the frontier selection rule: the
// bucket queue (frontier_queue.h) is exact only when every edge weight
// is at least the bucket width, so BucketEligible() demands a strictly
// positive minimum and a bounded max/min ratio (the ring would
// otherwise grow with the ratio).

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "venue/geometry.h"

namespace itspq {

class Venue;

struct CsrAdjacency {
  std::vector<uint32_t> seg_offsets;       // size 2 * num_doors + 1
  std::vector<PartitionId> seg_partition;  // size 2 * num_doors
  std::vector<uint32_t> neighbor_ids;
  std::vector<double> neighbor_weights;  // aligned with neighbor_ids

  /// Extremes over every edge weight (duplicates included); min is
  /// +inf and max 0 on an edgeless graph. A zero min (two doors at the
  /// same position) is what disqualifies the bucket queue.
  double min_edge_weight = std::numeric_limits<double>::infinity();
  double max_edge_weight = 0;
  size_t num_doors = 0;

  /// Compiles the venue's implicit adjacency. Geometry-only: ATIs play
  /// no part, which is why one compiled adjacency is shared across all
  /// update-plane epochs of a venue.
  static CsrAdjacency Compile(const Venue& venue);

  /// Max bucket-ring span the frontier selection rule tolerates before
  /// falling back to the 4-ary heap.
  static constexpr double kMaxBucketSpan = 4096.0;

  /// True when Dial's bucket queue with width = min_edge_weight is
  /// exact and affordable for this graph.
  bool BucketEligible() const {
    return min_edge_weight > 0 &&
           min_edge_weight < std::numeric_limits<double>::infinity() &&
           max_edge_weight <= min_edge_weight * kMaxBucketSpan;
  }

  /// Recomputes the weight extremes from the arrays — the artifact
  /// loader calls this after adopting a decoded adjacency instead of
  /// trusting two more bytes of the file.
  void RecomputeWeightExtremes() {
    min_edge_weight = std::numeric_limits<double>::infinity();
    max_edge_weight = 0;
    for (double w : neighbor_weights) {
      if (w < min_edge_weight) min_edge_weight = w;
      if (w > max_edge_weight) max_edge_weight = w;
    }
  }

  size_t MemoryUsage() const {
    return seg_offsets.capacity() * sizeof(uint32_t) +
           seg_partition.capacity() * sizeof(PartitionId) +
           neighbor_ids.capacity() * sizeof(uint32_t) +
           neighbor_weights.capacity() * sizeof(double);
  }
};

}  // namespace itspq

#endif  // ITSPQ_ITGRAPH_CSR_ADJACENCY_H_

#ifndef ITSPQ_ITGRAPH_ATI_H_
#define ITSPQ_ITGRAPH_ATI_H_

// Applicable Time Intervals (paper §II-B): the daily intervals during
// which a door can be passed. An empty/full set means always open.
//
// Intervals are normalised at construction — wrapped past-midnight
// intervals are split, overlaps merged — so membership is a binary
// search over disjoint sorted [start, end) intervals.

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "common/time.h"

namespace itspq {

class AtiSet {
 public:
  /// An always-open set (no temporal variation).
  AtiSet() = default;

  /// Normalises and validates `intervals`. Each interval must have
  /// start and end within [0, kSecondsPerDay]; `end < start` wraps past
  /// midnight and is split into two. Errors on out-of-range or
  /// zero-length intervals. An empty list yields an always-open set.
  static StatusOr<AtiSet> Create(std::vector<TimeInterval> intervals);

  /// True when the door is passable at time-of-day `tod` (any absolute
  /// time is accepted and wrapped into one day).
  bool ContainsTimeOfDay(double tod) const {
    if (starts_.empty()) return true;  // always open
    const double t = (tod >= 0 && tod < kSecondsPerDay) ? tod
                                                        : WrapTimeOfDay(tod);
    // Last interval starting at or before t.
    size_t lo = 0, hi = starts_.size();
    while (lo < hi) {
      const size_t mid = (lo + hi) / 2;
      if (starts_[mid] <= t) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo > 0 && t < ends_[lo - 1];
  }

  bool IsAlwaysOpen() const { return starts_.empty(); }

  /// Interval boundaries strictly inside the day, i.e. excluding 0 and
  /// kSecondsPerDay — these are the temporal-variation checkpoints this
  /// door contributes.
  std::vector<double> InteriorBoundaries() const;

  size_t NumIntervals() const { return starts_.empty() ? 1 : starts_.size(); }

  /// The normalised parallel bounds (empty = always open). Read-only —
  /// this is what ItGraph flattens into its contiguous ATI rows.
  const std::vector<double>& starts() const { return starts_; }
  const std::vector<double>& ends() const { return ends_; }

  size_t MemoryUsage() const {
    return (starts_.capacity() + ends_.capacity()) * sizeof(double);
  }

 private:
  friend class ArtifactCodec;  // adopts pre-normalised intervals verbatim

  // Parallel arrays of disjoint, sorted [start, end) intervals. Empty
  // arrays encode "always open". A set covering the whole day collapses
  // to empty during normalisation.
  std::vector<double> starts_;
  std::vector<double> ends_;
};

}  // namespace itspq

#endif  // ITSPQ_ITGRAPH_ATI_H_

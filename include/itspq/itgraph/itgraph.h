#ifndef ITSPQ_ITGRAPH_ITGRAPH_H_
#define ITSPQ_ITGRAPH_ITGRAPH_H_

// The IT-Graph (paper §II-C): doors as nodes, with an AtiSet per door
// compiled from the venue's temporal variations. Intra-partition edges
// are implicit — a door's neighbours are the other doors of its two
// partitions, with weights read from the venue's distance matrices —
// so the graph stays small and always consistent with the venue.
//
// The graph keeps a pointer to the venue it was built from; the venue
// must outlive the graph.
//
// Alongside the per-door AtiSet objects (the source of truth for
// checkpoint derivation, artifact encoding, and copy-on-write epoch
// rebuilds), the graph compiles two hot-path views at build time:
//
//   - a CsrAdjacency (csr_adjacency.h): the implicit door graph
//     flattened into contiguous neighbour-id/weight arrays, shared by
//     shared_ptr across update-plane epochs (ATI edits never change
//     geometry, which BuildFrom already enforces);
//   - flat ATI rows (offsets + start/end pools): AtiContainsTimeOfDay
//     answers the ITG/S per-relaxation membership probe with a short
//     linear scan over one contiguous row instead of a binary search
//     through a heap-allocated AtiSet.

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/time.h"
#include "itgraph/ati.h"
#include "itgraph/csr_adjacency.h"
#include "venue/venue.h"

namespace itspq {

class ItGraph {
 public:
  /// Compiles `venue`'s doors and per-door time intervals into an
  /// IT-Graph. Errors when some door's intervals fail AtiSet
  /// normalisation. `venue` must outlive the returned graph.
  static StatusOr<ItGraph> Build(const Venue& venue);

  /// Copy-on-write rebuild after a single-door ATI edit: adopts
  /// `prev`'s compiled AtiSet rows verbatim and re-normalises only
  /// `changed_door` from `venue` (which must hold the post-edit state
  /// with the same door count as prev.venue(), else kInvalidArgument).
  /// The returned graph points at `venue`, not prev's venue.
  static StatusOr<ItGraph> BuildFrom(const ItGraph& prev, const Venue& venue,
                                     DoorId changed_door);

  ItGraph(ItGraph&&) = default;
  ItGraph& operator=(ItGraph&&) = default;

  size_t NumDoors() const { return atis_.size(); }

  const AtiSet& Ati(DoorId d) const { return atis_[static_cast<size_t>(d)]; }

  /// Hot-path equivalent of Ati(d).ContainsTimeOfDay(tod) over the
  /// compiled flat rows: true when door `d` is passable at `tod` (any
  /// absolute time accepted and wrapped). Rows are tiny (a handful of
  /// disjoint sorted intervals), so a forward scan beats the AtiSet
  /// binary search and never leaves the row's cache lines.
  bool AtiContainsTimeOfDay(DoorId d, double tod) const {
    const uint32_t begin = ati_offsets_[static_cast<size_t>(d)];
    const uint32_t end = ati_offsets_[static_cast<size_t>(d) + 1];
    if (begin == end) return true;  // always open
    const double t =
        (tod >= 0 && tod < kSecondsPerDay) ? tod : WrapTimeOfDay(tod);
    // Last interval starting at or before t, as in AtiSet.
    uint32_t last = end;
    for (uint32_t i = begin; i < end && ati_starts_[i] <= t; ++i) last = i;
    return last != end && t < ati_ends_[last];
  }

  /// The compiled flat adjacency every search iterates.
  const CsrAdjacency& adjacency() const { return *adj_; }

  /// The shared adjacency handle — epochs built via BuildFrom alias
  /// their predecessor's (the update plane's geometry-immutability
  /// guarantee makes that sound), which tests assert by pointer.
  const std::shared_ptr<const CsrAdjacency>& adjacency_handle() const {
    return adj_;
  }

  const Point2d& DoorPos(DoorId d) const {
    return venue_->door(d).pos;
  }

  /// The two partitions door `d` connects.
  const std::array<PartitionId, 2>& DoorPartitions(DoorId d) const {
    return venue_->door(d).partitions;
  }

  const Venue& venue() const { return *venue_; }

  size_t MemoryUsage() const;

 private:
  friend class ArtifactCodec;  // adopts compiled AtiSets without re-normalising

  explicit ItGraph(const Venue& venue) : venue_(&venue) {}

  /// Flattens atis_ into the ati_offsets_/starts_/ends_ rows. Every
  /// construction path (Build, BuildFrom, artifact adoption) ends here.
  void CompileAtiRows();

  const Venue* venue_;
  std::vector<AtiSet> atis_;  // indexed by DoorId; the source of truth

  // Compiled hot-path views (see file comment).
  std::shared_ptr<const CsrAdjacency> adj_;
  std::vector<uint32_t> ati_offsets_;  // NumDoors() + 1
  std::vector<double> ati_starts_;
  std::vector<double> ati_ends_;
};

}  // namespace itspq

#endif  // ITSPQ_ITGRAPH_ITGRAPH_H_

#ifndef ITSPQ_ITGRAPH_ITGRAPH_H_
#define ITSPQ_ITGRAPH_ITGRAPH_H_

// The IT-Graph (paper §II-C): doors as nodes, with an AtiSet per door
// compiled from the venue's temporal variations. Intra-partition edges
// are implicit — a door's neighbours are the other doors of its two
// partitions, with weights read from the venue's distance matrices —
// so the graph stays small and always consistent with the venue.
//
// The graph keeps a pointer to the venue it was built from; the venue
// must outlive the graph.

#include <array>
#include <cstddef>
#include <vector>

#include "common/status.h"
#include "itgraph/ati.h"
#include "venue/venue.h"

namespace itspq {

class ItGraph {
 public:
  /// Compiles `venue`'s doors and per-door time intervals into an
  /// IT-Graph. Errors when some door's intervals fail AtiSet
  /// normalisation. `venue` must outlive the returned graph.
  static StatusOr<ItGraph> Build(const Venue& venue);

  /// Copy-on-write rebuild after a single-door ATI edit: adopts
  /// `prev`'s compiled AtiSet rows verbatim and re-normalises only
  /// `changed_door` from `venue` (which must hold the post-edit state
  /// with the same door count as prev.venue(), else kInvalidArgument).
  /// The returned graph points at `venue`, not prev's venue.
  static StatusOr<ItGraph> BuildFrom(const ItGraph& prev, const Venue& venue,
                                     DoorId changed_door);

  ItGraph(ItGraph&&) = default;
  ItGraph& operator=(ItGraph&&) = default;

  size_t NumDoors() const { return atis_.size(); }

  const AtiSet& Ati(DoorId d) const { return atis_[static_cast<size_t>(d)]; }

  const Point2d& DoorPos(DoorId d) const {
    return venue_->door(d).pos;
  }

  /// The two partitions door `d` connects.
  const std::array<PartitionId, 2>& DoorPartitions(DoorId d) const {
    return venue_->door(d).partitions;
  }

  const Venue& venue() const { return *venue_; }

  size_t MemoryUsage() const;

 private:
  friend class ArtifactCodec;  // adopts compiled AtiSets without re-normalising

  explicit ItGraph(const Venue& venue) : venue_(&venue) {}

  const Venue* venue_;
  std::vector<AtiSet> atis_;  // indexed by DoorId
};

}  // namespace itspq

#endif  // ITSPQ_ITGRAPH_ITGRAPH_H_

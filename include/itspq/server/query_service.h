#ifndef ITSPQ_SERVER_QUERY_SERVICE_H_
#define ITSPQ_SERVER_QUERY_SERVICE_H_

// The asynchronous serving frontend over the Router API.
//
// A QueryService owns a fully built VenueCatalog, fronts it with a
// ShardedRouter, and serves Submit()ed requests through a bounded
// admission queue drained by worker threads. Each worker coalesces up
// to `max_batch` queued requests (waiting at most `max_wait_micros`
// after the first) into one RouteBatch call, re-checking per-request
// deadlines before and after dispatch. Admission control is explicit:
//
//   queue full            -> kResourceExhausted  (backpressure)
//   deadline already past -> kDeadlineExceeded   (never enqueued)
//   expired while queued  -> kDeadlineExceeded   (never dispatched)
//   expired mid-dispatch  -> kDeadlineExceeded   (answer dropped)
//   submit after Shutdown -> kFailedPrecondition
//
//   VenueCatalog catalog = BuildFleet();
//   ServiceOptions opts;
//   opts.num_workers = 4;
//   opts.max_batch = 16;
//   opts.default_deadline_micros = 50'000;          // 50 ms SLO
//   auto service = MakeQueryService(std::move(catalog), opts);
//   std::future<StatusOr<QueryResult>> answer =
//       (*service)->Submit(request);
//   ...
//   ServiceStats report = (*service)->Stats();       // any time
//   (*service)->Shutdown();                          // drains in-flight
//
// Submit() is thread-safe and non-blocking: every call returns a
// future that is eventually fulfilled, rejections included. Shutdown()
// (also run by the destructor) stops admission, serves everything
// already admitted whose deadline still allows, and joins the workers.
//
// The service is also the write plane's front door: SubmitUpdate()
// feeds online ATI mutations through a bounded queue drained by one
// dedicated updater thread (strict FIFO, one epoch transition at a
// time), while queries keep flowing — reads pin their epoch, writes
// publish the next one RCU-style (see query/venue_catalog.h).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "query/router.h"
#include "query/sharded_router.h"
#include "query/venue_catalog.h"
#include "update/ati_update.h"

namespace itspq {

/// Construction-time serving knobs, validated by MakeQueryService.
struct ServiceOptions {
  /// Admission queue bound; submits beyond it bounce with
  /// kResourceExhausted instead of growing memory without limit.
  size_t queue_capacity = 1024;
  /// Worker threads draining the queue. Each worker owns one
  /// QueryContext for its whole lifetime.
  int num_workers = 2;
  /// Micro-batching shape: a worker coalesces up to `max_batch` queued
  /// requests into one RouteBatch call, waiting at most
  /// `max_wait_micros` after the first request for stragglers.
  /// max_batch = 1 disables coalescing.
  size_t max_batch = 16;
  double max_wait_micros = 200;
  /// Deadline applied by the one-argument Submit(); 0 = no deadline.
  double default_deadline_micros = 0;
  /// Bound on the update queue SubmitUpdate feeds; submits beyond it
  /// bounce with kResourceExhausted. Updates are orders of magnitude
  /// rarer than queries, so the default is small.
  size_t update_queue_capacity = 64;
  /// Start with dispatch paused: requests are admitted (and rejected
  /// under backpressure) but nothing is served until Resume() or
  /// Shutdown(). Deterministic admission tests and coordinated warm-up
  /// starts use this; production services leave it off.
  bool start_paused = false;
};

/// Point-in-time serving counters. Every submitted request lands in
/// exactly one of {rejected_*, timed_out_*, served} once the service
/// quiesces, so after Shutdown:
///   submitted == rejected_queue_full + rejected_expired +
///                rejected_shutdown + timed_out_in_queue +
///                timed_out_in_flight + served.
struct ServiceStats {
  size_t submitted = 0;
  /// Admitted to the queue (eventually dispatched, timed out, or — for
  /// a snapshot taken while serving — still queued/in flight).
  size_t admitted = 0;
  size_t rejected_queue_full = 0;
  /// Deadline already expired at Submit(); never enqueued.
  size_t rejected_expired = 0;
  size_t rejected_shutdown = 0;
  /// Deadline expired between admission and dispatch.
  size_t timed_out_in_queue = 0;
  /// Deadline expired while the batch was being routed; the computed
  /// answer was dropped in favour of kDeadlineExceeded.
  size_t timed_out_in_flight = 0;
  /// Delivered a router answer (OK-found, OK-not-found, or a
  /// per-request router error).
  size_t served = 0;
  size_t served_found = 0;
  size_t route_errors = 0;

  /// Write path: SubmitUpdate calls, updates committed by the updater
  /// thread, and ones that failed anywhere (queue full, shutdown, or
  /// ApplyAtiUpdate error). After Shutdown:
  ///   updates_submitted == updates_applied + updates_rejected.
  size_t updates_submitted = 0;
  size_t updates_applied = 0;
  size_t updates_rejected = 0;

  /// Queue shape: current depth and the deepest it has ever been.
  size_t queue_depth = 0;
  size_t queue_high_water = 0;

  /// Dispatch shape: batch_size_counts[b] = dispatched batches of size
  /// b (index 0 unused; sized max_batch + 1). Sum of b * count == the
  /// requests that reached RouteBatch.
  size_t batches = 0;
  std::vector<size_t> batch_size_counts;

  /// Submit-to-delivery latency of served requests.
  LatencyHistogram latency;

  /// Lazy-fleet serving: artifact loads triggered by queries on cold
  /// shards and their load latency, surfaced flat so dashboards don't
  /// dig through the catalog report (same data as catalog.total_loads /
  /// catalog.load_latency).
  size_t cold_loads = 0;
  LatencyHistogram cold_load_latency;

  /// The owned catalog's per-shard traffic / snapshot-cache report.
  CatalogStats catalog;
};

class QueryService {
 public:
  /// Shuts down (draining) if the caller has not already.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits under options().default_deadline_micros.
  std::future<StatusOr<QueryResult>> Submit(const QueryRequest& request);

  /// Submits with an explicit deadline, `deadline_micros` from now.
  /// A non-positive deadline is already expired (immediate
  /// kDeadlineExceeded, never enqueued); +infinity disables the
  /// deadline regardless of the default. Thread-safe, non-blocking;
  /// rejections are delivered through the returned future.
  std::future<StatusOr<QueryResult>> Submit(const QueryRequest& request,
                                            double deadline_micros);

  /// Submits one online ATI mutation. Updates drain through a dedicated
  /// updater thread in strict FIFO order (one ApplyAtiUpdate at a time
  /// service-wide), so reads never block on writes and writers never
  /// starve behind query batches. The future resolves with the commit
  /// status:
  ///   kOk                 — the new epoch is published; queries
  ///                         submitted after the future resolves see it.
  ///   kResourceExhausted  — update queue full (backpressure).
  ///   kFailedPrecondition — service already shut down.
  ///   kNotFound           — unknown venue_id or door_id.
  ///   kInvalidArgument    — replacement intervals fail normalisation.
  /// The updater ignores start_paused — pausing gates query dispatch
  /// only, so an update stream keeps flowing under a paused service.
  std::future<Status> SubmitUpdate(const AtiUpdate& update);

  /// Lifts start_paused: workers begin draining. No-op when already
  /// running.
  void Resume();

  /// Stops admission, serves every already-admitted request whose
  /// deadline still allows (rejecting the rest with kDeadlineExceeded),
  /// applies every already-admitted update, and joins the workers plus
  /// the updater. Idempotent; concurrent callers block until the drain
  /// completes.
  void Shutdown();

  /// Point-in-time counters; safe to call while traffic is in flight.
  ServiceStats Stats() const;

  const ServiceOptions& options() const { return options_; }
  /// The owned serving state. The catalog's routers stay directly
  /// callable (Router::Route is const) — the replay test compares
  /// served answers against exactly that.
  const VenueCatalog& catalog() const { return catalog_; }
  const Router& router() const { return router_; }

 private:
  friend StatusOr<std::unique_ptr<QueryService>> MakeQueryService(
      VenueCatalog catalog, ServiceOptions options);

  using Clock = std::chrono::steady_clock;

  struct Pending {
    QueryRequest request;
    Clock::time_point submit;
    /// Clock::time_point::max() = no deadline.
    Clock::time_point deadline;
    std::promise<StatusOr<QueryResult>> promise;
  };

  struct PendingUpdate {
    AtiUpdate update;
    std::promise<Status> promise;
  };

  QueryService(VenueCatalog catalog, ServiceOptions options);

  void WorkerLoop();
  /// Deadline-checks and dispatches one coalesced batch, fulfilling
  /// every promise in it.
  void Dispatch(std::vector<Pending>* batch, QueryContext* context);
  /// The dedicated writer: drains the update queue FIFO, one
  /// ApplyAtiUpdate at a time.
  void UpdaterLoop();

  // Construction order matters: router_ points at catalog_.
  VenueCatalog catalog_;
  ShardedRouter router_;
  ServiceOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;   // guarded by mu_
  bool paused_;                 // guarded by mu_
  bool draining_ = false;       // guarded by mu_
  size_t queue_high_water_ = 0;  // guarded by mu_
  std::once_flag join_once_;
  std::vector<std::thread> workers_;

  // The write plane: its own queue, lock, and single updater thread so
  // updates never contend with query admission on mu_.
  mutable std::mutex update_mu_;
  std::condition_variable update_cv_;
  std::deque<PendingUpdate> update_queue_;  // guarded by update_mu_
  bool update_draining_ = false;            // guarded by update_mu_
  std::thread updater_;

  std::atomic<size_t> submitted_{0};
  std::atomic<size_t> admitted_{0};
  std::atomic<size_t> rejected_queue_full_{0};
  std::atomic<size_t> rejected_expired_{0};
  std::atomic<size_t> rejected_shutdown_{0};
  std::atomic<size_t> timed_out_in_queue_{0};
  std::atomic<size_t> timed_out_in_flight_{0};
  std::atomic<size_t> served_{0};
  std::atomic<size_t> served_found_{0};
  std::atomic<size_t> route_errors_{0};
  std::atomic<size_t> updates_submitted_{0};
  std::atomic<size_t> updates_applied_{0};
  std::atomic<size_t> updates_rejected_{0};

  mutable std::mutex stats_mu_;
  size_t batches_ = 0;                       // guarded by stats_mu_
  std::vector<size_t> batch_size_counts_;    // guarded by stats_mu_
  LatencyHistogram latency_;                 // guarded by stats_mu_
};

/// Validates `options` (positive queue capacity, workers, and batch
/// size; non-negative waits/deadlines — kInvalidArgument otherwise),
/// requires a non-empty catalog (kFailedPrecondition), and starts the
/// worker threads. The service owns the catalog from here on.
StatusOr<std::unique_ptr<QueryService>> MakeQueryService(
    VenueCatalog catalog, ServiceOptions options = ServiceOptions());

}  // namespace itspq

#endif  // ITSPQ_SERVER_QUERY_SERVICE_H_

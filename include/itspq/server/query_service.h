#ifndef ITSPQ_SERVER_QUERY_SERVICE_H_
#define ITSPQ_SERVER_QUERY_SERVICE_H_

// The asynchronous serving frontend over the Router API.
//
// A QueryService owns a fully built VenueCatalog, fronts it with a
// ShardedRouter, and serves Submit()ed requests through a bounded
// admission queue drained by worker threads. Each worker coalesces up
// to `max_batch` queued requests (waiting at most `max_wait_micros`
// after the first) into one RouteBatch call, re-checking per-request
// deadlines before and after dispatch. Admission control is explicit:
//
//   queue full            -> kResourceExhausted  (backpressure)
//   displaced while queued-> kResourceExhausted  (shed: a higher QoS
//                                                 class took the slot)
//   infeasible deadline   -> kResourceExhausted  (shed: cannot make the
//                                                 deadline at current
//                                                 queue depth)
//   NaN/negative deadline -> kInvalidArgument    (never enqueued)
//   deadline already past -> kDeadlineExceeded   (never enqueued)
//   expired while queued  -> kDeadlineExceeded   (never dispatched)
//   expired mid-dispatch  -> kDeadlineExceeded   (answer dropped)
//   submit after Shutdown -> kFailedPrecondition
//
// Overload control is QoS-aware. Every request carries a QosClass;
// workers drain strictly by class (interactive before batch before
// background), and when the queue is at its limit an arriving request
// of a higher class displaces the youngest queued request of the
// lowest class present — overload sheds the cheapest traffic first and
// never silently delays the most valuable. Two further mechanisms grow
// the fixed-capacity admission of the original frontend into real
// overload control:
//
//   * Deadline-feasibility shedding: a request whose deadline cannot be
//     met given the queue depth ahead of it and the observed per-
//     request route time (EWMA over dispatched batches) is shed at
//     admission instead of wasting a queue slot to time out later.
//   * Adaptive queue limits: when target_queue_delay_micros is set, the
//     admission limit tracks target_delay / observed_route_time instead
//     of the fixed queue_capacity (which remains the hard ceiling), so
//     the queue holds roughly target_delay worth of work no matter how
//     slow the backend currently is.
//
//   VenueCatalog catalog = BuildFleet();
//   ServiceOptions opts;
//   opts.num_workers = 4;
//   opts.max_batch = 16;
//   opts.default_deadline_micros = 50'000;          // 50 ms SLO
//   auto service = MakeQueryService(std::move(catalog), opts);
//   std::future<StatusOr<QueryResult>> answer =
//       (*service)->Submit(request);
//   ...
//   ServiceStats report = (*service)->Stats();       // any time
//   (*service)->Shutdown();                          // drains in-flight
//
// Submit() is thread-safe and non-blocking: every call returns a
// future that is eventually fulfilled, rejections included. Shutdown()
// (also run by the destructor) stops admission, serves everything
// already admitted whose deadline still allows, and joins the workers.
//
// The service is also the write plane's front door: SubmitUpdate()
// feeds online ATI mutations through a bounded queue drained by one
// dedicated updater thread (strict FIFO, one epoch transition at a
// time), while queries keep flowing — reads pin their epoch, writes
// publish the next one RCU-style (see query/venue_catalog.h).

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "query/router.h"
#include "query/sharded_router.h"
#include "query/venue_catalog.h"
#include "update/ati_update.h"

namespace itspq {

/// Request priority class, carried on the wire by the network edge
/// (net/wire.h) and into admission by Submit(). Lower value = higher
/// priority; workers drain strictly in class order and overload sheds
/// the highest value (lowest class) first. The numeric values are part
/// of the wire contract — frozen, append only.
enum class QosClass : uint8_t {
  kInteractive = 0,  ///< A user is waiting on the answer.
  kBatch = 1,        ///< Throughput-sensitive offline work.
  kBackground = 2,   ///< Crawlers, prefetchers — first to shed.
};

inline constexpr size_t kNumQosClasses = 3;

inline const char* QosClassName(QosClass qos) {
  switch (qos) {
    case QosClass::kInteractive:
      return "interactive";
    case QosClass::kBatch:
      return "batch";
    case QosClass::kBackground:
      return "background";
  }
  return "unknown";
}

/// Construction-time serving knobs, validated by MakeQueryService.
struct ServiceOptions {
  /// Admission queue bound; submits beyond it bounce with
  /// kResourceExhausted instead of growing memory without limit.
  size_t queue_capacity = 1024;
  /// Worker threads draining the queue. Each worker owns one
  /// QueryContext for its whole lifetime.
  int num_workers = 2;
  /// Micro-batching shape: a worker coalesces up to `max_batch` queued
  /// requests into one RouteBatch call, waiting at most
  /// `max_wait_micros` after the first request for stragglers.
  /// max_batch = 1 disables coalescing.
  size_t max_batch = 16;
  double max_wait_micros = 200;
  /// Deadline applied by the one-argument Submit(); 0 = no deadline.
  double default_deadline_micros = 0;
  /// Adaptive queue limit: when > 0, the admission limit is
  ///   min(queue_capacity,
  ///       max(min_queue_limit,
  ///           target_queue_delay_micros * num_workers / ewma))
  /// where ewma is the observed per-request route time — the queue
  /// holds roughly this much wall-clock worth of work instead of a
  /// fixed request count. 0 keeps the fixed queue_capacity.
  /// queue_capacity stays the hard memory ceiling either way.
  double target_queue_delay_micros = 0;
  /// Floor under the adaptive limit so a latency spike cannot collapse
  /// admission to zero.
  size_t min_queue_limit = 4;
  /// Deadline-feasibility shedding: reject a finite-deadline request at
  /// admission (kResourceExhausted, counted in shed_infeasible) when
  /// (queued_ahead + 1) * ewma / num_workers already overruns its
  /// deadline. Engages only once an EWMA exists, so cold starts and
  /// paused tests admit everything.
  bool feasibility_shedding = true;
  /// Bound on the update queue SubmitUpdate feeds; submits beyond it
  /// bounce with kResourceExhausted. Updates are orders of magnitude
  /// rarer than queries, so the default is small.
  size_t update_queue_capacity = 64;
  /// Start with dispatch paused: requests are admitted (and rejected
  /// under backpressure) but nothing is served until Resume() or
  /// Shutdown(). Deterministic admission tests and coordinated warm-up
  /// starts use this; production services leave it off.
  bool start_paused = false;
};

/// Point-in-time serving counters. Every submitted request lands in
/// exactly one of {rejected_*, shed_*, timed_out_*, served} once the
/// service quiesces, so after Shutdown:
///   submitted == rejected_queue_full + rejected_expired +
///                rejected_invalid + rejected_shutdown +
///                shed_displaced + shed_infeasible +
///                timed_out_in_queue + timed_out_in_flight + served.
struct ServiceStats {
  size_t submitted = 0;
  /// Admitted to the queue (eventually dispatched, timed out, shed by a
  /// later displacement, or — for a snapshot taken while serving —
  /// still queued/in flight).
  size_t admitted = 0;
  size_t rejected_queue_full = 0;
  /// Deadline already expired at Submit(); never enqueued.
  size_t rejected_expired = 0;
  /// Malformed submission (NaN/negative deadline, unknown QoS class);
  /// never enqueued.
  size_t rejected_invalid = 0;
  size_t rejected_shutdown = 0;
  /// Overload shed: admitted, then evicted from the queue to make room
  /// for a higher-QoS arrival.
  size_t shed_displaced = 0;
  /// Overload shed: the deadline was infeasible at the observed service
  /// rate given the queue depth ahead; never enqueued.
  size_t shed_infeasible = 0;
  /// Deadline expired between admission and dispatch.
  size_t timed_out_in_queue = 0;
  /// Deadline expired while the batch was being routed; the computed
  /// answer was dropped in favour of kDeadlineExceeded.
  size_t timed_out_in_flight = 0;
  /// Delivered a router answer (OK-found, OK-not-found, or a
  /// per-request router error).
  size_t served = 0;
  size_t served_found = 0;
  size_t route_errors = 0;

  /// Write path: SubmitUpdate calls, updates committed by the updater
  /// thread, and ones that failed anywhere (queue full, shutdown, or
  /// ApplyAtiUpdate error). After Shutdown:
  ///   updates_submitted == updates_applied + updates_rejected.
  size_t updates_submitted = 0;
  size_t updates_applied = 0;
  size_t updates_rejected = 0;

  /// Per-class ledger, indexed by QosClass value. Sheds cover both
  /// displacement and infeasibility; under overload the shed mass
  /// should sit entirely in the lowest class present.
  std::array<size_t, kNumQosClasses> submitted_by_class = {};
  std::array<size_t, kNumQosClasses> served_by_class = {};
  std::array<size_t, kNumQosClasses> shed_by_class = {};

  /// Per-family ledger, indexed by QueryKind value: every Submit()
  /// with a known kind lands in submitted_by_kind, every delivered
  /// router answer in served_by_kind. An out-of-range kind is rejected
  /// at admission (kInvalidArgument, counted in rejected_invalid) and
  /// appears in neither array, so sum(submitted_by_kind) == submitted
  /// minus those rejections, and sum(served_by_kind) == served.
  std::array<size_t, kNumQueryKinds> submitted_by_kind = {};
  std::array<size_t, kNumQueryKinds> served_by_kind = {};

  /// Queue shape: current depth (all classes), the deepest it has ever
  /// been, the admission limit currently in force (== queue_capacity
  /// until the adaptive limit engages), and the observed per-request
  /// route-time EWMA driving it (0 until the first dispatch).
  size_t queue_depth = 0;
  size_t queue_high_water = 0;
  size_t queue_limit = 0;
  double ewma_route_micros = 0;

  /// Dispatch shape: batch_size_counts[b] = dispatched batches of size
  /// b (index 0 unused; sized max_batch + 1). Sum of b * count == the
  /// requests that reached RouteBatch.
  size_t batches = 0;
  std::vector<size_t> batch_size_counts;

  /// Submit-to-delivery latency of served requests.
  LatencyHistogram latency;

  /// Lazy-fleet serving: artifact loads triggered by queries on cold
  /// shards and their load latency, surfaced flat so dashboards don't
  /// dig through the catalog report (same data as catalog.total_loads /
  /// catalog.load_latency).
  size_t cold_loads = 0;
  LatencyHistogram cold_load_latency;

  /// The owned catalog's per-shard traffic / snapshot-cache report.
  CatalogStats catalog;
};

class QueryService {
 public:
  /// Shuts down (draining) if the caller has not already.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits under options().default_deadline_micros as kInteractive.
  std::future<StatusOr<QueryResult>> Submit(const QueryRequest& request);

  /// Submits with an explicit deadline, `deadline_micros` from now.
  /// A zero deadline is already expired (immediate kDeadlineExceeded,
  /// never enqueued); NaN or negative is malformed (immediate
  /// kInvalidArgument — NaN must never be admitted, since every
  /// comparison against it would read "no deadline"); +infinity
  /// disables the deadline regardless of the default. Thread-safe,
  /// non-blocking; rejections are delivered through the returned
  /// future.
  std::future<StatusOr<QueryResult>> Submit(const QueryRequest& request,
                                            double deadline_micros);

  /// Full-control submit: explicit deadline and QoS class. The class
  /// orders both service (workers drain interactive before batch
  /// before background) and shedding (overload displaces the lowest
  /// class first); see the file comment.
  std::future<StatusOr<QueryResult>> Submit(const QueryRequest& request,
                                            double deadline_micros,
                                            QosClass qos);

  /// Submits one online ATI mutation. Updates drain through a dedicated
  /// updater thread in strict FIFO order (one ApplyAtiUpdate at a time
  /// service-wide), so reads never block on writes and writers never
  /// starve behind query batches. The future resolves with the commit
  /// status:
  ///   kOk                 — the new epoch is published; queries
  ///                         submitted after the future resolves see it.
  ///   kResourceExhausted  — update queue full (backpressure).
  ///   kFailedPrecondition — service already shut down.
  ///   kNotFound           — unknown venue_id or door_id.
  ///   kInvalidArgument    — replacement intervals fail normalisation.
  /// The updater ignores start_paused — pausing gates query dispatch
  /// only, so an update stream keeps flowing under a paused service.
  std::future<Status> SubmitUpdate(const AtiUpdate& update);

  /// Lifts start_paused: workers begin draining. No-op when already
  /// running.
  void Resume();

  /// Stops admission, serves every already-admitted request whose
  /// deadline still allows (rejecting the rest with kDeadlineExceeded),
  /// applies every already-admitted update, and joins the workers plus
  /// the updater. Idempotent; concurrent callers block until the drain
  /// completes.
  void Shutdown();

  /// Point-in-time counters; safe to call while traffic is in flight.
  ServiceStats Stats() const;

  const ServiceOptions& options() const { return options_; }
  /// The owned serving state. The catalog's routers stay directly
  /// callable (Router::Route is const) — the replay test compares
  /// served answers against exactly that.
  const VenueCatalog& catalog() const { return catalog_; }
  const Router& router() const { return router_; }

 private:
  friend StatusOr<std::unique_ptr<QueryService>> MakeQueryService(
      VenueCatalog catalog, ServiceOptions options);

  using Clock = std::chrono::steady_clock;

  struct Pending {
    QueryRequest request;
    QosClass qos = QosClass::kInteractive;
    Clock::time_point submit;
    /// Clock::time_point::max() = no deadline.
    Clock::time_point deadline;
    std::promise<StatusOr<QueryResult>> promise;
  };

  struct PendingUpdate {
    AtiUpdate update;
    std::promise<Status> promise;
  };

  QueryService(VenueCatalog catalog, ServiceOptions options);

  void WorkerLoop();
  /// Deadline-checks and dispatches one coalesced batch, fulfilling
  /// every promise in it.
  void Dispatch(std::vector<Pending>* batch, QueryContext* context);
  /// The dedicated writer: drains the update queue FIFO, one
  /// ApplyAtiUpdate at a time.
  void UpdaterLoop();

  size_t TotalQueuedLocked() const;
  /// The admission limit currently in force: queue_capacity, shrunk by
  /// the adaptive target-delay limit once an EWMA exists.
  size_t QueueLimitLocked() const;
  /// Pops the oldest request of the highest-priority non-empty class.
  /// Requires TotalQueuedLocked() > 0.
  Pending PopHighestLocked();

  // Construction order matters: router_ points at catalog_.
  VenueCatalog catalog_;
  ShardedRouter router_;
  ServiceOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// One FIFO per QoS class, drained in class order. Guarded by mu_.
  std::array<std::deque<Pending>, kNumQosClasses> queues_;
  bool paused_;                 // guarded by mu_
  bool draining_ = false;       // guarded by mu_
  size_t queue_high_water_ = 0;  // guarded by mu_
  std::once_flag join_once_;
  std::vector<std::thread> workers_;

  // The write plane: its own queue, lock, and single updater thread so
  // updates never contend with query admission on mu_.
  mutable std::mutex update_mu_;
  std::condition_variable update_cv_;
  std::deque<PendingUpdate> update_queue_;  // guarded by update_mu_
  bool update_draining_ = false;            // guarded by update_mu_
  std::thread updater_;

  std::atomic<size_t> submitted_{0};
  std::atomic<size_t> admitted_{0};
  std::atomic<size_t> rejected_queue_full_{0};
  std::atomic<size_t> rejected_expired_{0};
  std::atomic<size_t> rejected_invalid_{0};
  std::atomic<size_t> rejected_shutdown_{0};
  std::atomic<size_t> shed_displaced_{0};
  std::atomic<size_t> shed_infeasible_{0};
  std::atomic<size_t> timed_out_in_queue_{0};
  std::atomic<size_t> timed_out_in_flight_{0};
  std::atomic<size_t> served_{0};
  std::atomic<size_t> served_found_{0};
  std::atomic<size_t> route_errors_{0};
  std::array<std::atomic<size_t>, kNumQosClasses> submitted_by_class_{};
  std::array<std::atomic<size_t>, kNumQosClasses> served_by_class_{};
  std::array<std::atomic<size_t>, kNumQosClasses> shed_by_class_{};
  std::array<std::atomic<size_t>, kNumQueryKinds> submitted_by_kind_{};
  std::array<std::atomic<size_t>, kNumQueryKinds> served_by_kind_{};
  /// Observed per-request route time (µs), smoothed over dispatched
  /// batches. Written by workers, read by admission and Stats; a
  /// last-writer-wins race between workers is fine for a smoothed
  /// signal.
  std::atomic<double> ewma_route_micros_{0};
  std::atomic<size_t> updates_submitted_{0};
  std::atomic<size_t> updates_applied_{0};
  std::atomic<size_t> updates_rejected_{0};

  mutable std::mutex stats_mu_;
  size_t batches_ = 0;                       // guarded by stats_mu_
  std::vector<size_t> batch_size_counts_;    // guarded by stats_mu_
  LatencyHistogram latency_;                 // guarded by stats_mu_
};

/// Validates `options` (positive queue capacity, workers, and batch
/// size; non-negative waits/deadlines — kInvalidArgument otherwise),
/// requires a non-empty catalog (kFailedPrecondition), and starts the
/// worker threads. The service owns the catalog from here on.
StatusOr<std::unique_ptr<QueryService>> MakeQueryService(
    VenueCatalog catalog, ServiceOptions options = ServiceOptions());

}  // namespace itspq

#endif  // ITSPQ_SERVER_QUERY_SERVICE_H_
